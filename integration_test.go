// Cross-module integration tests: end-to-end shape assertions for the
// experiment claims (fast, scaled-down versions of EXPERIMENTS.md) and
// failure-injection scenarios across the storage/compute substrates.
package repro_test

import (
	"context"
	"errors"
	"io"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/aggregate"
	"repro/internal/catalog"
	"repro/internal/cluster"
	"repro/internal/diskstore"
	"repro/internal/mapreduce"
	"repro/internal/metrics"
	"repro/internal/postevent"
	"repro/internal/rdbms"
	"repro/internal/synth"
	"repro/internal/yelt"
)

func smallScenario(t *testing.T, seed uint64, occOnly bool) *synth.Scenario {
	t.Helper()
	p := synth.Small(seed)
	p.OccurrenceOnly = occOnly
	s, err := synth.Build(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// E1 shape: the parallel engine must beat sequential on multi-core
// hosts for a non-trivial workload (wall-clock, not modeled).
func TestShapeParallelFasterThanSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if runtime.GOMAXPROCS(0) < 2 {
		// The claim under test is the multi-core speedup; on one CPU
		// parallel ≈ sequential and the comparison is a coin flip.
		t.Skip("needs multiple CPUs")
	}
	p := synth.Small(3)
	p.NumTrials = 30_000
	s, err := synth.Build(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	in := &aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	cfg := aggregate.Config{Seed: 1, Sampling: true}

	timeIt := func(e aggregate.Engine) float64 {
		t0 := nowSeconds()
		if _, err := e.Run(context.Background(), in, cfg); err != nil {
			t.Fatal(err)
		}
		return nowSeconds() - t0
	}
	// Warm up, then measure.
	timeIt(aggregate.Sequential{})
	seq := timeIt(aggregate.Sequential{})
	par := timeIt(aggregate.Parallel{})
	if par > seq {
		t.Fatalf("parallel (%vs) slower than sequential (%vs)", par, seq)
	}
}

// E4 shape: chunked device kernel must cost fewer modeled cycles than
// the naive kernel while agreeing numerically with the host engines.
func TestShapeChunkingBeatsNaive(t *testing.T) {
	s := smallScenario(t, 4, true)
	in := &aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	seq, err := (aggregate.Sequential{}).Run(context.Background(), in, aggregate.Config{})
	if err != nil {
		t.Fatal(err)
	}
	chunked := &aggregate.Chunked{}
	cres, err := chunked.Run(context.Background(), in, aggregate.Config{})
	if err != nil {
		t.Fatal(err)
	}
	naive := &aggregate.Chunked{Naive: true}
	if _, err := naive.Run(context.Background(), in, aggregate.Config{}); err != nil {
		t.Fatal(err)
	}
	if chunked.LastStats.BlockCycles*2 > naive.LastStats.BlockCycles {
		t.Fatalf("chunking advantage below 2x: %d vs %d cycles",
			chunked.LastStats.BlockCycles, naive.LastStats.BlockCycles)
	}
	for i := range seq.Portfolio.Agg {
		if math.Abs(seq.Portfolio.Agg[i]-cres.Portfolio.Agg[i]) > 1e-9*(1+seq.Portfolio.Agg[i]) {
			t.Fatalf("device result diverges from host at trial %d", i)
		}
	}
}

// E5 shape: per-row page touches of indexed access must exceed those
// of a scan by at least the tree height.
func TestShapeScanBeatsRandomAccessOnPages(t *testing.T) {
	s := smallScenario(t, 5, false)
	tbl, err := rdbms.New(1, 32)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range s.ELTs {
		for _, r := range e.Records {
			if err := tbl.Insert(uint64(r.EventID), []float64{r.MeanLoss}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tbl.ResetStats()
	for _, occ := range s.YELT.Occs[:10_000] {
		tbl.Get(uint64(occ.EventID))
	}
	randPages := tbl.Stats().PageReads
	tbl.ResetStats()
	if err := tbl.Scan(func(uint64, []float64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	scanPages := tbl.Stats().PageReads
	if randPages < 10*scanPages {
		t.Fatalf("random pages %d should dwarf scan pages %d", randPages, scanPages)
	}
}

// E6 shape: MapReduce over diskstore partitions must agree exactly
// with a direct in-memory computation of the same per-trial sums.
func TestShapeMapReduceMatchesDirect(t *testing.T) {
	s := smallScenario(t, 6, false)
	vec := map[uint32]float64{}
	for _, e := range s.ELTs {
		for _, r := range e.Records {
			vec[r.EventID] += r.MeanLoss
		}
	}
	direct := make([]float64, s.YELT.NumTrials)
	for trial := 0; trial < s.YELT.NumTrials; trial++ {
		for _, occ := range s.YELT.OccurrencesOf(trial) {
			direct[trial] += vec[occ.EventID]
		}
	}

	dir := t.TempDir()
	store, err := diskstore.Create(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	type split struct{ part, lo, hi int }
	var splits []split
	const parts = 5
	per := (s.YELT.NumTrials + parts - 1) / parts
	for p := 0; p < parts; p++ {
		lo, hi := p*per, (p+1)*per
		if hi > s.YELT.NumTrials {
			hi = s.YELT.NumTrials
		}
		sub, err := s.YELT.Slice(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.WritePartition("y", p, func(w io.Writer) error {
			_, err := sub.WriteTo(w)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		splits = append(splits, split{p, lo, hi})
	}
	sum := func(_ uint64, vs []float64) (float64, error) {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s, nil
	}
	got, err := mapreduce.Run(context.Background(), splits,
		func(_ context.Context, sp split, emit func(uint64, float64)) error {
			return store.ReadPartition("y", sp.part, func(r io.Reader) error {
				return yelt.StreamTrials(r, func(trial int, occs []yelt.Occurrence) error {
					var s float64
					for _, occ := range occs {
						s += vec[occ.EventID]
					}
					emit(uint64(sp.lo+trial), s)
					return nil
				})
			})
		}, sum, sum, mapreduce.Config{Reducers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for trial, want := range direct {
		if g := got[uint64(trial)]; math.Abs(g-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: mapreduce %v vs direct %v", trial, g, want)
		}
	}
}

// Failure injection: a corrupted partition must fail the job with a
// diagnosable error after exhausting retries, not hang or misreport.
func TestFailureInjectionCorruptPartition(t *testing.T) {
	s := smallScenario(t, 7, false)
	dir := t.TempDir()
	store, err := diskstore.Create(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := s.YELT.Slice(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if err := store.WritePartition("y", p, func(w io.Writer) error {
			_, err := sub.WriteTo(w)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Corrupt("y", 1); err != nil {
		t.Fatal(err)
	}
	sum := func(_ uint64, vs []float64) (float64, error) { return float64(len(vs)), nil }
	_, err = mapreduce.Run(context.Background(), []int{0, 1, 2},
		func(_ context.Context, part int, emit func(uint64, float64)) error {
			return store.ReadPartition("y", part, func(r io.Reader) error {
				return yelt.StreamTrials(r, func(trial int, _ []yelt.Occurrence) error {
					emit(uint64(trial), 1)
					return nil
				})
			})
		}, nil, sum, mapreduce.Config{MaxAttempts: 2})
	if !errors.Is(err, mapreduce.ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
}

// Post-event rapid estimation integrates with the stage-1 portfolio:
// the estimate for a catalogue event should be of the same order as
// that event's ELT row (same modules, different aggregation paths).
func TestPostEventConsistentWithELT(t *testing.T) {
	s := smallScenario(t, 8, false)
	est, err := postevent.New(s.Exposures[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	// Find an event with a substantial ELT loss on contract 1.
	var best catalog.Event
	var bestLoss float64
	for _, r := range s.ELTs[0].Records {
		if r.MeanLoss > bestLoss {
			ev, ok := s.Catalog.Lookup(r.EventID)
			if ok {
				best, bestLoss = ev, r.MeanLoss
			}
		}
	}
	if bestLoss == 0 {
		t.Skip("scenario produced no material losses")
	}
	res, err := est.Estimate(context.Background(), best)
	if err != nil {
		t.Fatal(err)
	}
	if res.GrossMean <= 0 {
		t.Fatal("post-event estimate is zero for the book's worst event")
	}
	ratio := res.GrossMean / bestLoss
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("post-event estimate %v vs ELT mean %v (ratio %v) — paths diverged", res.GrossMean, bestLoss, ratio)
	}
}

// E7 shape plus E8 linkage: the measured stage-2 work fits the
// elasticity model's premise that stage 2 dominates stage 1.
func TestShapeStage2DominatesStage1(t *testing.T) {
	phases := cluster.PipelinePhases(100)
	if phases[1].Work/phases[0].Work < 100 {
		t.Fatal("demand profile should make stage 2 dominate")
	}
}

// Metrics sanity across the whole pipeline: OEP <= AEP at every return
// period of a real stage-2 output.
func TestShapeOEPBelowAEP(t *testing.T) {
	s := smallScenario(t, 9, false)
	res, err := (aggregate.Parallel{}).Run(context.Background(),
		&aggregate.Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio},
		aggregate.Config{Seed: 2, Sampling: true})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := metrics.Summarize(res.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range sum.ReturnRows {
		if row.OEP > row.AEP+1e-9 {
			t.Fatalf("RP %v: OEP %v > AEP %v", row.ReturnPeriod, row.OEP, row.AEP)
		}
	}
}

func nowSeconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}
