// Package memstore is the "accumulate large quantities of physical
// memory" strategy from the paper's conclusions: an in-memory,
// chunked, columnar table store built for scan-oriented analytics
// ("data needs to be scanned over rather than randomly accessed",
// §II). It enforces an explicit memory budget so experiments can
// locate the point where in-memory analytics stops being viable and
// the distributed-file strategy must take over (<1 TB in the paper;
// scaled down here).
package memstore

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/stream"
)

// ErrBudgetExceeded is returned when an append would push the store
// past its memory budget — the signal that the dataset has outgrown
// the in-memory strategy.
var ErrBudgetExceeded = errors.New("memstore: memory budget exceeded")

// DefaultChunkRows is the row count per chunk. 64K rows keeps chunks
// around cache-friendly sizes for float64 columns.
const DefaultChunkRows = 1 << 16

// Schema describes the columns of a table.
type Schema struct {
	Float64Cols []string
	Uint32Cols  []string
}

// rowBytes is the memory footprint of one row under the schema.
func (s Schema) rowBytes() int64 {
	return int64(8*len(s.Float64Cols) + 4*len(s.Uint32Cols))
}

// chunk is a block of rows in columnar layout.
type chunk struct {
	f64 [][]float64
	u32 [][]uint32
	n   int
}

// Table is a chunked columnar table with a hard memory budget shared
// through an optional Arena.
type Table struct {
	schema    Schema
	chunkRows int
	chunks    []*chunk
	rows      int64
	arena     *Arena
}

// Arena is a byte budget shared by a set of tables, standing in for
// the physical memory of the analysis host.
type Arena struct {
	budget int64
	used   atomic.Int64
}

// NewArena returns an arena with the given byte budget; budget <= 0
// means unlimited.
func NewArena(budget int64) *Arena { return &Arena{budget: budget} }

// Used returns the bytes currently accounted to the arena.
func (a *Arena) Used() int64 { return a.used.Load() }

// Budget returns the arena's byte budget (0 = unlimited).
func (a *Arena) Budget() int64 { return a.budget }

func (a *Arena) reserve(n int64) error {
	if a == nil {
		return nil
	}
	newUsed := a.used.Add(n)
	if a.budget > 0 && newUsed > a.budget {
		a.used.Add(-n)
		return fmt.Errorf("%w: used %d + %d > budget %d", ErrBudgetExceeded, newUsed-n, n, a.budget)
	}
	return nil
}

func (a *Arena) release(n int64) {
	if a != nil {
		a.used.Add(-n)
	}
}

// NewTable returns an empty table. arena may be nil (unlimited);
// chunkRows <= 0 uses DefaultChunkRows.
func NewTable(schema Schema, arena *Arena, chunkRows int) *Table {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	return &Table{schema: schema, chunkRows: chunkRows, arena: arena}
}

// Rows returns the number of rows appended so far.
func (t *Table) Rows() int64 { return t.rows }

// NumChunks returns the number of storage chunks.
func (t *Table) NumChunks() int { return len(t.chunks) }

// SizeBytes returns the memory accounted for the table's data.
func (t *Table) SizeBytes() int64 {
	return int64(len(t.chunks)) * int64(t.chunkRows) * t.schema.rowBytes()
}

func (t *Table) addChunk() error {
	bytes := int64(t.chunkRows) * t.schema.rowBytes()
	if err := t.arena.reserve(bytes); err != nil {
		return err
	}
	c := &chunk{
		f64: make([][]float64, len(t.schema.Float64Cols)),
		u32: make([][]uint32, len(t.schema.Uint32Cols)),
	}
	for i := range c.f64 {
		c.f64[i] = make([]float64, t.chunkRows)
	}
	for i := range c.u32 {
		c.u32[i] = make([]uint32, t.chunkRows)
	}
	t.chunks = append(t.chunks, c)
	return nil
}

// Append adds one row. f64 and u32 must match the schema arity.
func (t *Table) Append(f64 []float64, u32 []uint32) error {
	if len(f64) != len(t.schema.Float64Cols) || len(u32) != len(t.schema.Uint32Cols) {
		return fmt.Errorf("memstore: row arity (%d,%d) does not match schema (%d,%d)",
			len(f64), len(u32), len(t.schema.Float64Cols), len(t.schema.Uint32Cols))
	}
	idx := int(t.rows) % t.chunkRows
	if idx == 0 && int(t.rows)/t.chunkRows == len(t.chunks) {
		if err := t.addChunk(); err != nil {
			return err
		}
	}
	c := t.chunks[len(t.chunks)-1]
	for i, v := range f64 {
		c.f64[i][idx] = v
	}
	for i, v := range u32 {
		c.u32[i][idx] = v
	}
	c.n = idx + 1
	t.rows++
	return nil
}

// Release returns the table's memory to the arena and drops the data.
func (t *Table) Release() {
	t.arena.release(t.SizeBytes())
	t.chunks = nil
	t.rows = 0
}

// ChunkView is the read-only view scan callbacks receive.
type ChunkView struct {
	F64 [][]float64
	U32 [][]uint32
	// Base is the global row index of the first row in the view.
	Base int64
}

// Rows returns the number of valid rows in the view.
func (v ChunkView) Rows() int {
	if len(v.F64) > 0 {
		return len(v.F64[0])
	}
	if len(v.U32) > 0 {
		return len(v.U32[0])
	}
	return 0
}

// Scan streams every chunk through fn sequentially — the baseline
// single-process scan.
func (t *Table) Scan(fn func(ChunkView) error) error {
	for ci, c := range t.chunks {
		if err := fn(t.view(ci, c)); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) view(ci int, c *chunk) ChunkView {
	v := ChunkView{Base: int64(ci) * int64(t.chunkRows)}
	v.F64 = make([][]float64, len(c.f64))
	for i := range c.f64 {
		v.F64[i] = c.f64[i][:c.n]
	}
	v.U32 = make([][]uint32, len(c.u32))
	for i := range c.u32 {
		v.U32[i] = c.u32[i][:c.n]
	}
	return v
}

// ScanParallel streams chunks through fn on up to workers goroutines.
// fn must be safe for concurrent calls on distinct chunks; use
// per-worker accumulators and merge afterwards (MapReduceLocal-style).
func (t *Table) ScanParallel(ctx context.Context, workers int, fn func(ChunkView) error) error {
	return stream.ForEach(ctx, len(t.chunks), workers, func(_ context.Context, ci int) error {
		return fn(t.view(ci, t.chunks[ci]))
	})
}

// Float64Col returns the schema index of a float64 column by name.
func (t *Table) Float64Col(name string) (int, error) {
	for i, n := range t.schema.Float64Cols {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("memstore: no float64 column %q", name)
}

// Uint32Col returns the schema index of a uint32 column by name.
func (t *Table) Uint32Col(name string) (int, error) {
	for i, n := range t.schema.Uint32Cols {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("memstore: no uint32 column %q", name)
}
