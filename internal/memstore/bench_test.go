package memstore

import (
	"context"
	"testing"
)

func benchTableRows(b *testing.B, rows int) *Table {
	b.Helper()
	t := NewTable(Schema{Float64Cols: []string{"loss"}, Uint32Cols: []string{"trial"}}, nil, DefaultChunkRows)
	for i := 0; i < rows; i++ {
		if err := t.Append([]float64{float64(i)}, []uint32{uint32(i >> 4)}); err != nil {
			b.Fatal(err)
		}
	}
	return t
}

func BenchmarkAppend(b *testing.B) {
	t := NewTable(Schema{Float64Cols: []string{"loss"}, Uint32Cols: []string{"trial"}}, nil, DefaultChunkRows)
	row := []float64{1.5}
	u := []uint32{7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Append(row, u); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanSequential(b *testing.B) {
	t := benchTableRows(b, 2_000_000)
	b.SetBytes(2_000_000 * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		if err := t.Scan(func(v ChunkView) error {
			col := v.F64[0]
			for _, x := range col {
				sink += x
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		_ = sink
	}
}

func BenchmarkScanParallel(b *testing.B) {
	t := benchTableRows(b, 2_000_000)
	b.SetBytes(2_000_000 * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.ScanParallel(context.Background(), 0, func(v ChunkView) error {
			var local float64
			for _, x := range v.F64[0] {
				local += x
			}
			_ = local
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
