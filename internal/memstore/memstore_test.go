package memstore

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func testSchema() Schema {
	return Schema{Float64Cols: []string{"loss"}, Uint32Cols: []string{"event"}}
}

func TestAppendAndScan(t *testing.T) {
	tbl := NewTable(testSchema(), nil, 16)
	const n = 100
	for i := 0; i < n; i++ {
		if err := tbl.Append([]float64{float64(i)}, []uint32{uint32(i * 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Rows() != n {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	if tbl.NumChunks() != (n+15)/16 {
		t.Fatalf("NumChunks = %d", tbl.NumChunks())
	}
	var sum float64
	var rows int
	var base int64 = -1
	err := tbl.Scan(func(v ChunkView) error {
		if v.Base <= base {
			t.Fatal("chunks out of order in sequential scan")
		}
		base = v.Base
		for i := 0; i < v.Rows(); i++ {
			sum += v.F64[0][i]
			if v.U32[0][i] != uint32((v.Base+int64(i))*2) {
				t.Fatalf("u32 column mismatch at row %d", v.Base+int64(i))
			}
			rows++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("scanned %d rows", rows)
	}
	if sum != float64(n*(n-1)/2) {
		t.Fatalf("sum = %v", sum)
	}
}

func TestAppendArityChecked(t *testing.T) {
	tbl := NewTable(testSchema(), nil, 4)
	if err := tbl.Append([]float64{1, 2}, []uint32{1}); err == nil {
		t.Fatal("wrong f64 arity should error")
	}
	if err := tbl.Append([]float64{1}, nil); err == nil {
		t.Fatal("wrong u32 arity should error")
	}
}

func TestScanParallelMatchesSequential(t *testing.T) {
	tbl := NewTable(testSchema(), nil, 32)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tbl.Append([]float64{float64(i)}, []uint32{0}); err != nil {
			t.Fatal(err)
		}
	}
	var seq float64
	if err := tbl.Scan(func(v ChunkView) error {
		for _, x := range v.F64[0] {
			seq += x
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var bits atomic.Uint64
	addFloat := func(x float64) {
		for {
			old := bits.Load()
			nf := float64frombits(old) + x
			if bits.CompareAndSwap(old, float64bits(nf)) {
				return
			}
		}
	}
	if err := tbl.ScanParallel(context.Background(), 8, func(v ChunkView) error {
		var local float64
		for _, x := range v.F64[0] {
			local += x
		}
		addFloat(local)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := float64frombits(bits.Load()); got != seq {
		t.Fatalf("parallel sum %v != sequential %v", got, seq)
	}
}

func TestScanError(t *testing.T) {
	tbl := NewTable(testSchema(), nil, 4)
	for i := 0; i < 20; i++ {
		if err := tbl.Append([]float64{1}, []uint32{1}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("scan boom")
	if err := tbl.Scan(func(ChunkView) error { return boom }); !errors.Is(err, boom) {
		t.Fatal("sequential scan should propagate error")
	}
	if err := tbl.ScanParallel(context.Background(), 4, func(ChunkView) error { return boom }); !errors.Is(err, boom) {
		t.Fatal("parallel scan should propagate error")
	}
}

func TestArenaBudgetEnforced(t *testing.T) {
	// Each chunk of 16 rows costs 16 * 12 = 192 bytes. Budget for 2.
	arena := NewArena(400)
	tbl := NewTable(testSchema(), arena, 16)
	var appended int
	var budgetErr error
	for i := 0; i < 100; i++ {
		if err := tbl.Append([]float64{1}, []uint32{1}); err != nil {
			budgetErr = err
			break
		}
		appended++
	}
	if !errors.Is(budgetErr, ErrBudgetExceeded) {
		t.Fatalf("expected budget error, got %v after %d rows", budgetErr, appended)
	}
	if appended != 32 {
		t.Fatalf("appended %d rows before budget, want 32", appended)
	}
	if arena.Used() != 384 {
		t.Fatalf("arena used = %d", arena.Used())
	}
	tbl.Release()
	if arena.Used() != 0 {
		t.Fatalf("after Release arena used = %d", arena.Used())
	}
	if tbl.Rows() != 0 || tbl.NumChunks() != 0 {
		t.Fatal("Release should drop data")
	}
}

func TestArenaSharedBetweenTables(t *testing.T) {
	arena := NewArena(400)
	a := NewTable(testSchema(), arena, 16)
	b := NewTable(testSchema(), arena, 16)
	if err := a.Append([]float64{1}, []uint32{1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Append([]float64{1}, []uint32{1}); err != nil {
		t.Fatal(err)
	}
	// Third chunk anywhere must fail: 3*192 > 400.
	c := NewTable(testSchema(), arena, 16)
	if err := c.Append([]float64{1}, []uint32{1}); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if arena.Budget() != 400 {
		t.Fatal("Budget accessor")
	}
}

func TestColumnLookup(t *testing.T) {
	tbl := NewTable(Schema{Float64Cols: []string{"a", "b"}, Uint32Cols: []string{"x"}}, nil, 4)
	if i, err := tbl.Float64Col("b"); err != nil || i != 1 {
		t.Fatalf("Float64Col(b) = %d, %v", i, err)
	}
	if _, err := tbl.Float64Col("zzz"); err == nil {
		t.Fatal("unknown float column should error")
	}
	if i, err := tbl.Uint32Col("x"); err != nil || i != 0 {
		t.Fatalf("Uint32Col(x) = %d, %v", i, err)
	}
	if _, err := tbl.Uint32Col("zzz"); err == nil {
		t.Fatal("unknown u32 column should error")
	}
}

func TestChunkViewRows(t *testing.T) {
	v := ChunkView{}
	if v.Rows() != 0 {
		t.Fatal("empty view rows")
	}
	v = ChunkView{U32: [][]uint32{{1, 2, 3}}}
	if v.Rows() != 3 {
		t.Fatal("u32-only view rows")
	}
}

// Tiny helpers for the atomic float accumulation above.
func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }
