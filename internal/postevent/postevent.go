// Package postevent implements rapid post-event loss estimation — the
// operational companion of stage 1 that the authors describe in
// "Rapid Post-Event Catastrophe Modelling and Visualisation" (paper
// reference [2]): when a real catastrophe strikes, the book must be
// re-priced against the observed footprint in seconds, not in the
// weekly batch cycle.
//
// The estimator flattens the portfolio's exposures once into columnar
// arrays and a spatial grid index; each incoming event then touches
// only the grid cells inside its footprint, evaluated by a parallel
// worker pool. A full-scan path without the index exists for
// benchmarking the indexing gain.
package postevent

import (
	"context"
	"errors"
	"math"
	"time"

	"repro/internal/catalog"
	"repro/internal/exposure"
	"repro/internal/financial"
	"repro/internal/hazard"
	"repro/internal/mathx"
	"repro/internal/stream"
	"repro/internal/vulnerability"
)

// cellDegrees is the spatial grid pitch. One degree of latitude is
// ~111 km, the same order as large-event footprints, so footprints
// touch a handful of cells.
const cellDegrees = 1.0

type cellKey struct{ lat, lon int16 }

func keyOf(lat, lon float64) cellKey {
	return cellKey{int16(math.Floor(lat / cellDegrees)), int16(math.Floor(lon / cellDegrees))}
}

// Estimator holds the prepared portfolio. Create once with New; safe
// for concurrent Estimate calls.
type Estimator struct {
	Hazard hazard.Model
	Vuln   *vulnerability.Matrix
	// Workers bounds footprint evaluation parallelism; <= 0 GOMAXPROCS.
	Workers int

	lats, lons []float64
	values     []float64
	cons       []exposure.Construction
	terms      []financial.Terms
	grid       map[cellKey][]int32
}

// New prepares an estimator over the given exposure databases.
// termsFor selects policy terms per interest; nil applies standard
// terms by occupancy (as the stage-1 engine does).
func New(dbs []*exposure.Database, termsFor func(exposure.Interest) financial.Terms) (*Estimator, error) {
	if len(dbs) == 0 {
		return nil, errors.New("postevent: no exposure databases")
	}
	e := &Estimator{
		Vuln: vulnerability.Default(),
		grid: make(map[cellKey][]int32),
	}
	for _, db := range dbs {
		for _, in := range db.Interests {
			loc := db.Locations[in.LocationIndex]
			idx := int32(len(e.lats))
			e.lats = append(e.lats, loc.Lat)
			e.lons = append(e.lons, loc.Lon)
			e.values = append(e.values, in.Value)
			e.cons = append(e.cons, in.Construction)
			var t financial.Terms
			if termsFor != nil {
				t = termsFor(in)
			} else {
				switch in.Occupancy {
				case exposure.Commercial, exposure.Industrial:
					t = financial.StandardCommercial(in.Value)
				default:
					t = financial.StandardResidential(in.Value)
				}
			}
			e.terms = append(e.terms, t)
			k := keyOf(loc.Lat, loc.Lon)
			e.grid[k] = append(e.grid[k], idx)
		}
	}
	if len(e.lats) == 0 {
		return nil, errors.New("postevent: databases contain no interests")
	}
	return e, nil
}

// Sites returns the number of indexed insured interests.
func (e *Estimator) Sites() int { return len(e.lats) }

// Estimate is a rapid loss estimate for one realized event.
type Estimate struct {
	EventID      uint32
	SitesTouched int
	ExposedValue float64 // insured value inside the footprint
	GroundUpMean float64
	GrossMean    float64
	GrossSD      float64
	// Low/High are a ±1.645σ (90%) band around the gross mean,
	// floored at zero.
	Low, High float64
	Elapsed   time.Duration
}

// Estimate evaluates the event against the indexed footprint cells.
func (e *Estimator) Estimate(ctx context.Context, ev catalog.Event) (*Estimate, error) {
	start := time.Now()
	idxs := e.candidates(ev)
	est, err := e.evaluate(ctx, ev, idxs)
	if err != nil {
		return nil, err
	}
	est.Elapsed = time.Since(start)
	return est, nil
}

// EstimateFullScan evaluates the event against every site, bypassing
// the spatial index — the baseline the index is measured against.
func (e *Estimator) EstimateFullScan(ctx context.Context, ev catalog.Event) (*Estimate, error) {
	start := time.Now()
	idxs := make([]int32, len(e.lats))
	for i := range idxs {
		idxs[i] = int32(i)
	}
	est, err := e.evaluate(ctx, ev, idxs)
	if err != nil {
		return nil, err
	}
	est.Elapsed = time.Since(start)
	return est, nil
}

// candidates returns site indices in grid cells intersecting the
// event's maximum footprint.
func (e *Estimator) candidates(ev catalog.Event) []int32 {
	maxRange := ev.RadiusKm * 3 // matches hazard.Model's default cutoff factor
	if e.Hazard.MaxRangeFactor > 0 {
		maxRange = ev.RadiusKm * e.Hazard.MaxRangeFactor
	}
	dLat := maxRange / 111.0
	cosLat := math.Cos(ev.Lat * math.Pi / 180)
	if cosLat < 0.2 {
		cosLat = 0.2
	}
	dLon := maxRange / (111.0 * cosLat)
	var out []int32
	lo := keyOf(ev.Lat-dLat, ev.Lon-dLon)
	hi := keyOf(ev.Lat+dLat, ev.Lon+dLon)
	for la := lo.lat; la <= hi.lat; la++ {
		for lo := lo.lon; lo <= hi.lon; lo++ {
			out = append(out, e.grid[cellKey{la, lo}]...)
		}
	}
	return out
}

type partialEstimate struct {
	sites   int
	exposed float64
	guMean  float64
	gMean   float64
	gVar    float64
}

func (e *Estimator) evaluate(ctx context.Context, ev catalog.Event, idxs []int32) (*Estimate, error) {
	vuln := e.Vuln
	if vuln == nil {
		vuln = vulnerability.Default()
	}
	total, err := stream.MapReduceLocal(ctx, len(idxs), e.Workers,
		func() *partialEstimate { return &partialEstimate{} },
		func(_ context.Context, r stream.Range, acc *partialEstimate) error {
			for k := r.Lo; k < r.Hi; k++ {
				i := idxs[k]
				inten := e.Hazard.IntensityAt(ev, e.lats[i], e.lons[i])
				if inten <= 0 {
					continue
				}
				mdr, sd := vuln.DamageMoments(ev.Peril, e.cons[i], inten)
				if mdr <= 0 {
					continue
				}
				gu := mdr * e.values[i]
				guSD := sd * e.values[i]
				gm, gsd := e.terms[i].ApplyMoments(gu, guSD)
				acc.sites++
				acc.exposed += e.values[i]
				acc.guMean += gu
				acc.gMean += gm
				acc.gVar += gsd * gsd // site-independent approximation
			}
			return nil
		},
		func(into, from *partialEstimate) {
			into.sites += from.sites
			into.exposed += from.exposed
			into.guMean += from.guMean
			into.gMean += from.gMean
			into.gVar += from.gVar
		},
	)
	if err != nil {
		return nil, err
	}
	sd := math.Sqrt(total.gVar)
	z := 1.6448536269514722 // Φ⁻¹(0.95)
	return &Estimate{
		EventID:      ev.ID,
		SitesTouched: total.sites,
		ExposedValue: total.exposed,
		GroundUpMean: total.guMean,
		GrossMean:    total.gMean,
		GrossSD:      sd,
		Low:          mathx.Clamp(total.gMean-z*sd, 0, math.Inf(1)),
		High:         total.gMean + z*sd,
	}, nil
}
