package postevent

import (
	"context"
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exposure"
	"repro/internal/financial"
)

func testDBs(t testing.TB, n int, seed uint64) []*exposure.Database {
	t.Helper()
	dbs := make([]*exposure.Database, n)
	for i := range dbs {
		cfg := exposure.DefaultConfig()
		cfg.NumLocations = 500
		db, err := exposure.Generate(cfg, seed+uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		dbs[i] = db
	}
	return dbs
}

func eventNear(dbs []*exposure.Database) catalog.Event {
	// Drop the event on the first location so the footprint is
	// guaranteed to touch exposure.
	loc := dbs[0].Locations[0]
	return catalog.Event{
		ID: 77, Peril: catalog.Earthquake,
		Lat: loc.Lat, Lon: loc.Lon,
		Magnitude: 7.8, RadiusKm: 80, AnnualRate: 0.001,
	}
}

func TestEstimateBasics(t *testing.T) {
	dbs := testDBs(t, 2, 11)
	est, err := New(dbs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sites() == 0 {
		t.Fatal("no sites indexed")
	}
	res, err := est.Estimate(context.Background(), eventNear(dbs))
	if err != nil {
		t.Fatal(err)
	}
	if res.SitesTouched == 0 {
		t.Fatal("event on top of exposure touched no sites")
	}
	if res.GrossMean <= 0 || res.GroundUpMean <= 0 {
		t.Fatalf("expected positive losses: %+v", res)
	}
	if res.GrossMean > res.GroundUpMean+1e-9 {
		t.Fatal("gross cannot exceed ground-up")
	}
	if res.Low > res.GrossMean || res.High < res.GrossMean {
		t.Fatal("band must bracket the mean")
	}
	if res.Low < 0 {
		t.Fatal("band floor broken")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no timing")
	}
}

func TestIndexedMatchesFullScan(t *testing.T) {
	dbs := testDBs(t, 3, 13)
	est, err := New(dbs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := eventNear(dbs)
	fast, err := est.Estimate(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := est.EstimateFullScan(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	if fast.SitesTouched != slow.SitesTouched {
		t.Fatalf("indexed touched %d sites, full scan %d", fast.SitesTouched, slow.SitesTouched)
	}
	if math.Abs(fast.GrossMean-slow.GrossMean) > 1e-6*(1+slow.GrossMean) {
		t.Fatalf("indexed %v vs full %v", fast.GrossMean, slow.GrossMean)
	}
	if math.Abs(fast.GrossSD-slow.GrossSD) > 1e-6*(1+slow.GrossSD) {
		t.Fatalf("sd mismatch: %v vs %v", fast.GrossSD, slow.GrossSD)
	}
}

func TestRemoteEventTouchesNothing(t *testing.T) {
	dbs := testDBs(t, 1, 17)
	est, err := New(dbs, nil)
	if err != nil {
		t.Fatal(err)
	}
	far := catalog.Event{
		ID: 1, Peril: catalog.Hurricane,
		Lat: -44, Lon: 170, // the default regions are all in North America
		Magnitude: 55, RadiusKm: 150,
	}
	res, err := est.Estimate(context.Background(), far)
	if err != nil {
		t.Fatal(err)
	}
	if res.SitesTouched != 0 || res.GrossMean != 0 {
		t.Fatalf("antipodal event produced losses: %+v", res)
	}
}

func TestSeverityMonotonicity(t *testing.T) {
	dbs := testDBs(t, 2, 19)
	est, err := New(dbs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := eventNear(dbs)
	small := ev
	small.Magnitude = 5.5
	big := ev
	big.Magnitude = 8.4
	sres, err := est.Estimate(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := est.Estimate(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	if bres.GrossMean <= sres.GrossMean {
		t.Fatalf("M8.4 loss %v should exceed M5.5 loss %v", bres.GrossMean, sres.GrossMean)
	}
}

func TestCustomTerms(t *testing.T) {
	dbs := testDBs(t, 1, 23)
	full, err := New(dbs, func(exposure.Interest) financial.Terms { return financial.Terms{} })
	if err != nil {
		t.Fatal(err)
	}
	half, err := New(dbs, func(exposure.Interest) financial.Terms { return financial.Terms{Share: 0.5} })
	if err != nil {
		t.Fatal(err)
	}
	ev := eventNear(dbs)
	fres, err := full.Estimate(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := half.Estimate(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hres.GrossMean-fres.GrossMean/2) > 1e-6*fres.GrossMean {
		t.Fatalf("50%% share: %v vs full %v", hres.GrossMean, fres.GrossMean)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("no databases should error")
	}
	if _, err := New([]*exposure.Database{{}}, nil); err == nil {
		t.Fatal("empty databases should error")
	}
}

func TestCancellation(t *testing.T) {
	dbs := testDBs(t, 2, 29)
	est, err := New(dbs, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := est.EstimateFullScan(ctx, eventNear(dbs)); err == nil {
		t.Fatal("cancelled estimate should error")
	}
}

func BenchmarkEstimateIndexed(b *testing.B) {
	dbs := testDBs(b, 8, 31)
	est, err := New(dbs, nil)
	if err != nil {
		b.Fatal(err)
	}
	ev := eventNear(dbs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Estimate(context.Background(), ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateFullScan(b *testing.B) {
	dbs := testDBs(b, 8, 31)
	est, err := New(dbs, nil)
	if err != nil {
		b.Fatal(err)
	}
	ev := eventNear(dbs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.EstimateFullScan(context.Background(), ev); err != nil {
			b.Fatal(err)
		}
	}
}
