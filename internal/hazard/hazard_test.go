package hazard

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
)

func TestDistanceKnown(t *testing.T) {
	// London to Paris ≈ 344 km.
	d := DistanceKm(51.5074, -0.1278, 48.8566, 2.3522)
	if math.Abs(d-344) > 5 {
		t.Fatalf("London-Paris = %v km, want ~344", d)
	}
	if DistanceKm(10, 20, 10, 20) != 0 {
		t.Fatal("zero distance to self")
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		lat1 := math.Mod(math.Abs(a), 90)
		lon1 := math.Mod(math.Abs(b), 180)
		lat2 := math.Mod(math.Abs(c), 90)
		lon2 := math.Mod(math.Abs(d), 180)
		d1 := DistanceKm(lat1, lon1, lat2, lon2)
		d2 := DistanceKm(lat2, lon2, lat1, lon1)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func eventAt(p catalog.Peril, mag, radius float64) catalog.Event {
	return catalog.Event{ID: 1, Peril: p, Lat: 30, Lon: -90, Magnitude: mag, RadiusKm: radius}
}

func TestIntensityDecaysWithDistance(t *testing.T) {
	var m Model
	for _, p := range []catalog.Peril{catalog.Earthquake, catalog.Hurricane, catalog.Flood, catalog.WinterStorm, catalog.Tornado} {
		ev := eventAt(p, 7.5, 100)
		if p == catalog.Hurricane {
			ev.Magnitude = 55
		}
		if p == catalog.Flood {
			ev.Magnitude = 3
		}
		if p == catalog.WinterStorm {
			ev.Magnitude = 40
		}
		if p == catalog.Tornado {
			ev.Magnitude = 4
		}
		prev := m.IntensityAt(ev, ev.Lat, ev.Lon)
		if prev <= 0 {
			t.Fatalf("%v: zero intensity at epicenter", p)
		}
		for _, dLat := range []float64{0.2, 0.5, 1.0, 2.0, 4.0} {
			cur := m.IntensityAt(ev, ev.Lat+dLat, ev.Lon)
			if cur > prev+1e-9 {
				t.Fatalf("%v: intensity increased with distance (%v -> %v at dLat %v)", p, prev, cur, dLat)
			}
			prev = cur
		}
	}
}

func TestIntensityZeroBeyondCutoff(t *testing.T) {
	var m Model
	ev := eventAt(catalog.Earthquake, 8, 50)
	// cutoff = 3 * 50 km = 150 km ≈ 1.35 degrees latitude
	if i := m.IntensityAt(ev, ev.Lat+2.0, ev.Lon); i != 0 {
		t.Fatalf("intensity %v beyond cutoff, want 0", i)
	}
}

func TestIntensityGrowsWithMagnitude(t *testing.T) {
	var m Model
	small := eventAt(catalog.Earthquake, 5.5, 60)
	big := eventAt(catalog.Earthquake, 8.0, 60)
	at := func(ev catalog.Event) Intensity { return m.IntensityAt(ev, ev.Lat+0.3, ev.Lon) }
	if at(big) <= at(small) {
		t.Fatalf("M8 intensity %v <= M5.5 intensity %v", at(big), at(small))
	}
}

func TestIntensityBounds(t *testing.T) {
	var m Model
	f := func(magRaw, dRaw uint16) bool {
		mag := 5 + float64(magRaw%35)/10 // 5 .. 8.5
		d := float64(dRaw%500) / 100     // 0 .. 5 degrees
		ev := eventAt(catalog.Earthquake, mag, 80)
		i := m.IntensityAt(ev, ev.Lat+d, ev.Lon)
		return i >= 0 && i <= 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFootprintMatchesPointwise(t *testing.T) {
	var m Model
	ev := eventAt(catalog.Hurricane, 50, 150)
	lats := []float64{30, 30.5, 31, 29, 35}
	lons := []float64{-90, -90.2, -89, -91, -95}
	out := m.Footprint(ev, lats, lons, nil)
	if len(out) != len(lats) {
		t.Fatal("length mismatch")
	}
	for i := range lats {
		if out[i] != m.IntensityAt(ev, lats[i], lons[i]) {
			t.Fatalf("footprint[%d] mismatch", i)
		}
	}
	// Reuse buffer path.
	out2 := m.Footprint(ev, lats, lons, out)
	if &out2[0] != &out[0] {
		t.Error("expected buffer reuse")
	}
}

func TestTornadoSharpFalloff(t *testing.T) {
	var m Model
	ev := eventAt(catalog.Tornado, 4.5, 5)
	center := m.IntensityAt(ev, ev.Lat, ev.Lon)
	off := m.IntensityAt(ev, ev.Lat+0.1, ev.Lon) // ~11 km off track
	if center < 5 {
		t.Fatalf("direct tornado hit intensity %v too small", center)
	}
	if off > center/2 {
		t.Fatalf("tornado intensity %v at 11km should be far below center %v", off, center)
	}
}

func TestDecayProfile(t *testing.T) {
	if decay(0, 100) != 1 || decay(50, 100) != 1 {
		t.Error("flat inside half radius")
	}
	if d := decay(100, 100); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("decay at radius = %v, want 0.5", d)
	}
	if decay(10, 0) != 0 {
		t.Error("zero radius yields zero")
	}
}
