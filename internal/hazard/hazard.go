// Package hazard implements the first of the three catastrophe-model
// modules the paper names (§II): quantifying "the hazard intensity at
// exposure sites". Given an event's footprint anchor and severity, it
// returns a normalized intensity at any location.
//
// The functional forms are simplified versions of the published model
// families (ground-motion attenuation for earthquake, radial wind
// decay for hurricane, depth decay for flood); vendor-grade models are
// proprietary, and the pipeline only needs intensities with the right
// spatial structure: monotone decay with distance, scale set by event
// severity.
package hazard

import (
	"math"

	"repro/internal/catalog"
)

// Intensity is a normalized local hazard measure in [0, 10]. The
// vulnerability module maps it to damage; 0 means unfelt, 10 is the
// practical ceiling (MMI-like for quake, saturated wind/flood damage
// regimes otherwise).
type Intensity float64

// EarthRadiusKm is the mean Earth radius used by the haversine metric.
const EarthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two points.
func DistanceKm(lat1, lon1, lat2, lon2 float64) float64 {
	const deg = math.Pi / 180
	dLat := (lat2 - lat1) * deg
	dLon := (lon2 - lon1) * deg
	a := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1*deg)*math.Cos(lat2*deg)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(a)))
}

// Model computes local intensities for events. The zero value is a
// usable default model.
type Model struct {
	// MaxRangeFactor times the event radius bounds the footprint;
	// beyond it intensity is exactly 0 so engines can skip sites
	// cheaply. Defaults to 3.
	MaxRangeFactor float64
}

func (m Model) maxRange() float64 {
	if m.MaxRangeFactor <= 0 {
		return 3
	}
	return m.MaxRangeFactor
}

// IntensityAt returns the hazard intensity event ev produces at
// (lat, lon). It is pure and deterministic: all stochasticity in the
// pipeline lives in event occurrence and damage uncertainty, not in
// the physics approximation.
func (m Model) IntensityAt(ev catalog.Event, lat, lon float64) Intensity {
	d := DistanceKm(ev.Lat, ev.Lon, lat, lon)
	cut := ev.RadiusKm * m.maxRange()
	if d >= cut {
		return 0
	}
	var raw float64
	switch ev.Peril {
	case catalog.Earthquake:
		// Attenuation: intensity grows with magnitude, decays with
		// log-distance (a Gutenberg-style macroseismic relation).
		raw = 1.8*ev.Magnitude - 3.2*math.Log(d+8) + 2.0
	case catalog.Hurricane:
		// Wind decays roughly linearly inside the radius of maximum
		// winds envelope, then with inverse distance outside it.
		v := ev.Magnitude * decay(d, ev.RadiusKm)
		raw = (v - 20) / 6 // 20 m/s threshold of damage, saturate ~80
	case catalog.Flood:
		depth := ev.Magnitude * decay(d, ev.RadiusKm)
		raw = 3 * depth
	case catalog.WinterStorm:
		gust := ev.Magnitude * decay(d, ev.RadiusKm)
		raw = (gust - 15) / 5
	case catalog.Tornado:
		// Tornado tracks are tiny and violent: sharp exponential decay.
		raw = 2.2*ev.Magnitude*math.Exp(-d/ev.RadiusKm) - 0.2
	}
	if raw <= 0 {
		return 0
	}
	if raw > 10 {
		return 10
	}
	return Intensity(raw)
}

// decay is the shared radial decay profile: flat to half the footprint
// radius, then smooth inverse-distance falloff.
func decay(d, radius float64) float64 {
	if radius <= 0 {
		return 0
	}
	half := radius / 2
	if d <= half {
		return 1
	}
	return half / (d - half + half) // = half/d', normalized to 1 at half
}

// Footprint computes intensities for one event across a set of sites,
// returning a dense slice aligned with the sites. It exists so callers
// iterate events outermost (streaming the big table once) — the
// access pattern the paper's stage 1 prescribes.
func (m Model) Footprint(ev catalog.Event, lats, lons []float64, out []Intensity) []Intensity {
	if cap(out) < len(lats) {
		out = make([]Intensity, len(lats))
	}
	out = out[:len(lats)]
	for i := range lats {
		out[i] = m.IntensityAt(ev, lats[i], lons[i])
	}
	return out
}
