// Package diskstore is the "accumulate large distributed file space"
// strategy from the paper (§II, §III): datasets partitioned across the
// local directories of a set of (simulated) storage nodes, written
// once and consumed by sequential scans. It is the storage layer under
// internal/mapreduce, standing in for HDFS-style distributed file
// systems, and it deliberately offers no random access — matching the
// paper's observation that these workloads scan.
package diskstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// ErrNotFound is returned for missing datasets or partitions.
var ErrNotFound = errors.New("diskstore: not found")

// Store is a dataset namespace partitioned across node directories.
// A partition may be replicated: the same file written under several
// node directories (see ReplicaNodesFor for the placement rule). All
// replica-aware methods treat the file under any node directory as
// the same logical partition.
type Store struct {
	root  string
	nodes int
	// readFault, when set, is consulted before every partition read
	// attempt — the deterministic fault-injection hook. It must be set
	// (SetReadFault) before concurrent readers start.
	readFault func(dataset string, part, node int) error
}

// SetReadFault installs a fault-injection hook consulted before each
// read attempt of (dataset, part) on a node; a non-nil error fails the
// attempt as if the disk had. Install before readers start; nil clears.
func (s *Store) SetReadFault(fn func(dataset string, part, node int) error) {
	s.readFault = fn
}

// Create initializes a store rooted at dir with the given node count,
// creating node directories. dir is created if missing.
func Create(dir string, nodes int) (*Store, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("diskstore: node count %d", nodes)
	}
	for i := 0; i < nodes; i++ {
		if err := os.MkdirAll(nodeDir(dir, i), 0o755); err != nil {
			return nil, fmt.Errorf("diskstore: creating node %d: %w", i, err)
		}
	}
	return &Store{root: dir, nodes: nodes}, nil
}

// Open attaches to an existing store, discovering its node count.
func Open(dir string) (*Store, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	nodes := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "node-") {
			nodes++
		}
	}
	if nodes == 0 {
		return nil, fmt.Errorf("%w: no node directories under %s", ErrNotFound, dir)
	}
	return &Store{root: dir, nodes: nodes}, nil
}

func nodeDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("node-%03d", i))
}

// Nodes returns the number of storage nodes.
func (s *Store) Nodes() int { return s.nodes }

// NodeOf returns the node a partition primarily lives on (round-robin
// placement). With replication this is the first replica's node.
func (s *Store) NodeOf(part int) int { return part % s.nodes }

// ReplicaNodesFor returns the placement rule for r replicas of a
// partition: consecutive nodes starting at the primary, (NodeOf+k) mod
// nodes — chained declustering, so losing one node leaves every
// partition with a survivor on the next node. r is clamped to the node
// count (more replicas than nodes would collide).
func (s *Store) ReplicaNodesFor(part, replicas int) []int {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > s.nodes {
		replicas = s.nodes
	}
	nodes := make([]int, replicas)
	for k := range nodes {
		nodes[k] = (s.NodeOf(part) + k) % s.nodes
	}
	return nodes
}

func (s *Store) partPath(dataset string, part int) string {
	return s.pathAt(dataset, part, s.NodeOf(part))
}

func (s *Store) pathAt(dataset string, part, node int) string {
	return filepath.Join(nodeDir(s.root, node),
		fmt.Sprintf("%s.part-%05d", dataset, part))
}

// WritePartition creates partition part of dataset, streaming content
// through fn. The content is written to a temporary file on the
// partition's node and renamed into place only after fn, Sync and
// Close succeed, so a crash or error mid-write can never leave a torn
// partition that Open/Partitions would treat as valid: the partition
// either exists complete or not at all. The commit is durable, not
// just atomic: the content is fsynced before the rename and the node
// directory is fsynced after it, so a power loss between the rename
// and an unmount cannot roll a committed shard back to absent (the
// rename itself lives in the directory, which is its own file). Stray
// temp files (a leading dot, no ".part-" infix) are invisible to
// Partitions and ReadPartition.
func (s *Store) WritePartition(dataset string, part int, fn func(io.Writer) error) error {
	return s.WritePartitionAt(dataset, part, s.NodeOf(part), fn)
}

// WritePartitionAt writes one replica of a partition under an explicit
// node's directory, with the same temp+fsync+rename commit protocol as
// WritePartition. Replicated spills call it once per replica node;
// each replica commits (or fails) independently, and the dataset-level
// commit record (e.g. a manifest) is what makes the set authoritative.
func (s *Store) WritePartitionAt(dataset string, part, node int, fn func(io.Writer) error) error {
	if node < 0 || node >= s.nodes {
		return fmt.Errorf("diskstore: node %d out of range [0,%d)", node, s.nodes)
	}
	path := s.pathAt(dataset, part, node)
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("diskstore: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	// CreateTemp makes the file 0600; restore os.Create's world-readable
	// mode so committed partitions stay shareable across processes.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diskstore: chmod %s: %w", path, err)
	}
	if err := fn(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diskstore: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diskstore: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskstore: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskstore: commit %s: %w", path, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("diskstore: sync node dir for %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename recorded in it survives a
// crash. Filesystems that refuse fsync on directories (some network
// mounts) report EINVAL or ENOTSUP; durability is best-effort there,
// matching what the platform can promise.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// ReadPartition streams partition part of dataset through fn, from its
// primary node. Replica-aware callers use ReadPartitionAt and supply
// their own failover order.
func (s *Store) ReadPartition(dataset string, part int, fn func(io.Reader) error) error {
	return s.ReadPartitionAt(dataset, part, s.NodeOf(part), fn)
}

// ReadPartitionAt streams one replica of a partition through fn. The
// read-fault hook (SetReadFault) is consulted first, so an injected
// fault fails the attempt even when the file on disk is healthy —
// modelling a node whose disk errors, not a missing file.
func (s *Store) ReadPartitionAt(dataset string, part, node int, fn func(io.Reader) error) error {
	if s.readFault != nil {
		if err := s.readFault(dataset, part, node); err != nil {
			return err
		}
	}
	path := s.pathAt(dataset, part, node)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s part %d (node %d)", ErrNotFound, dataset, part, node)
		}
		return fmt.Errorf("diskstore: open %s: %w", path, err)
	}
	defer f.Close()
	return fn(f)
}

// ReplicaNodes discovers which nodes hold a copy of a partition by
// scanning node directories, in placement order (primary first, then
// successive nodes). It reads the filesystem, not a manifest, so it
// also sees replicas a manifest does not know about.
func (s *Store) ReplicaNodes(dataset string, part int) ([]int, error) {
	var nodes []int
	for k := 0; k < s.nodes; k++ {
		n := (s.NodeOf(part) + k) % s.nodes
		if _, err := os.Stat(s.pathAt(dataset, part, n)); err == nil {
			nodes = append(nodes, n)
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("%w: %s part %d", ErrNotFound, dataset, part)
	}
	return nodes, nil
}

// Partitions returns the sorted partition numbers of a dataset. A
// partition replicated on several nodes is reported once: the logical
// partition set, not the physical file set.
func (s *Store) Partitions(dataset string) ([]int, error) {
	seen := map[int]bool{}
	prefix := dataset + ".part-"
	for n := 0; n < s.nodes; n++ {
		entries, err := os.ReadDir(nodeDir(s.root, n))
		if err != nil {
			return nil, fmt.Errorf("diskstore: listing node %d: %w", n, err)
		}
		for _, e := range entries {
			if !strings.HasPrefix(e.Name(), prefix) {
				continue
			}
			p, err := strconv.Atoi(strings.TrimPrefix(e.Name(), prefix))
			if err != nil {
				continue
			}
			seen[p] = true
		}
	}
	if len(seen) == 0 {
		return nil, fmt.Errorf("%w: dataset %s", ErrNotFound, dataset)
	}
	parts := make([]int, 0, len(seen))
	for p := range seen {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	return parts, nil
}

// SizeBytes returns the logical on-disk size of a dataset: each
// partition counted once, from its first surviving replica. Compare
// TotalSizeBytes for the physical footprint including replicas.
func (s *Store) SizeBytes(dataset string) (int64, error) {
	parts, err := s.Partitions(dataset)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range parts {
		n, err := s.PartitionSizeBytes(dataset, p)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// TotalSizeBytes returns the physical on-disk size of a dataset —
// every replica of every partition. The replication cost column.
func (s *Store) TotalSizeBytes(dataset string) (int64, error) {
	parts, err := s.Partitions(dataset)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range parts {
		nodes, err := s.ReplicaNodes(dataset, p)
		if err != nil {
			return 0, err
		}
		for _, n := range nodes {
			info, err := os.Stat(s.pathAt(dataset, p, n))
			if err != nil {
				return 0, fmt.Errorf("diskstore: stat part %d node %d: %w", p, n, err)
			}
			total += info.Size()
		}
	}
	return total, nil
}

// Delete removes all partitions of a dataset, every replica included.
func (s *Store) Delete(dataset string) error {
	parts, err := s.Partitions(dataset)
	if err != nil {
		return err
	}
	for _, p := range parts {
		nodes, err := s.ReplicaNodes(dataset, p)
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if err := os.Remove(s.pathAt(dataset, p, n)); err != nil {
				return fmt.Errorf("diskstore: delete part %d node %d: %w", p, n, err)
			}
		}
	}
	return nil
}

// PartitionSizeBytes returns the on-disk size of one partition — the
// unit of data-motion accounting for shard-affine mappers. When the
// primary replica is gone it falls back to the first survivor, so
// accounting keeps working through a node loss.
func (s *Store) PartitionSizeBytes(dataset string, part int) (int64, error) {
	info, err := os.Stat(s.partPath(dataset, part))
	if os.IsNotExist(err) {
		nodes, nerr := s.ReplicaNodes(dataset, part)
		if nerr != nil {
			return 0, fmt.Errorf("%w: %s part %d", ErrNotFound, dataset, part)
		}
		info, err = os.Stat(s.pathAt(dataset, part, nodes[0]))
	}
	if err != nil {
		return 0, fmt.Errorf("diskstore: stat part %d: %w", part, err)
	}
	return info.Size(), nil
}

// Remove deletes a single partition's primary replica — a
// failure-injection hook for re-attach tests (a shard lost between
// spill and aggregate).
func (s *Store) Remove(dataset string, part int) error {
	return s.RemoveAt(dataset, part, s.NodeOf(part))
}

// RemoveAt deletes one replica of a partition from one node — the
// replicated-store failure-injection hook.
func (s *Store) RemoveAt(dataset string, part, node int) error {
	if err := os.Remove(s.pathAt(dataset, part, node)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s part %d (node %d)", ErrNotFound, dataset, part, node)
		}
		return fmt.Errorf("diskstore: remove part %d node %d: %w", part, node, err)
	}
	return nil
}

// Corrupt truncates a partition's primary replica to half its size —
// a failure-injection hook for recovery tests.
func (s *Store) Corrupt(dataset string, part int) error {
	return s.CorruptAt(dataset, part, s.NodeOf(part))
}

// CorruptAt truncates one replica of a partition to half its size,
// leaving the other replicas intact — the torn-replica injection hook.
func (s *Store) CorruptAt(dataset string, part, node int) error {
	path := s.pathAt(dataset, part, node)
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("%w: %s part %d (node %d)", ErrNotFound, dataset, part, node)
	}
	return os.Truncate(path, info.Size()/2)
}
