// Package diskstore is the "accumulate large distributed file space"
// strategy from the paper (§II, §III): datasets partitioned across the
// local directories of a set of (simulated) storage nodes, written
// once and consumed by sequential scans. It is the storage layer under
// internal/mapreduce, standing in for HDFS-style distributed file
// systems, and it deliberately offers no random access — matching the
// paper's observation that these workloads scan.
package diskstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
)

// ErrNotFound is returned for missing datasets or partitions.
var ErrNotFound = errors.New("diskstore: not found")

// Store is a dataset namespace partitioned across node directories.
type Store struct {
	root  string
	nodes int
}

// Create initializes a store rooted at dir with the given node count,
// creating node directories. dir is created if missing.
func Create(dir string, nodes int) (*Store, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("diskstore: node count %d", nodes)
	}
	for i := 0; i < nodes; i++ {
		if err := os.MkdirAll(nodeDir(dir, i), 0o755); err != nil {
			return nil, fmt.Errorf("diskstore: creating node %d: %w", i, err)
		}
	}
	return &Store{root: dir, nodes: nodes}, nil
}

// Open attaches to an existing store, discovering its node count.
func Open(dir string) (*Store, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	nodes := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "node-") {
			nodes++
		}
	}
	if nodes == 0 {
		return nil, fmt.Errorf("%w: no node directories under %s", ErrNotFound, dir)
	}
	return &Store{root: dir, nodes: nodes}, nil
}

func nodeDir(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("node-%03d", i))
}

// Nodes returns the number of storage nodes.
func (s *Store) Nodes() int { return s.nodes }

// NodeOf returns the node a partition lives on (round-robin placement).
func (s *Store) NodeOf(part int) int { return part % s.nodes }

func (s *Store) partPath(dataset string, part int) string {
	return filepath.Join(nodeDir(s.root, s.NodeOf(part)),
		fmt.Sprintf("%s.part-%05d", dataset, part))
}

// WritePartition creates partition part of dataset, streaming content
// through fn. The content is written to a temporary file on the
// partition's node and renamed into place only after fn, Sync and
// Close succeed, so a crash or error mid-write can never leave a torn
// partition that Open/Partitions would treat as valid: the partition
// either exists complete or not at all. The commit is durable, not
// just atomic: the content is fsynced before the rename and the node
// directory is fsynced after it, so a power loss between the rename
// and an unmount cannot roll a committed shard back to absent (the
// rename itself lives in the directory, which is its own file). Stray
// temp files (a leading dot, no ".part-" infix) are invisible to
// Partitions and ReadPartition.
func (s *Store) WritePartition(dataset string, part int, fn func(io.Writer) error) error {
	path := s.partPath(dataset, part)
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("diskstore: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	// CreateTemp makes the file 0600; restore os.Create's world-readable
	// mode so committed partitions stay shareable across processes.
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diskstore: chmod %s: %w", path, err)
	}
	if err := fn(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diskstore: write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("diskstore: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskstore: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskstore: commit %s: %w", path, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("diskstore: sync node dir for %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename recorded in it survives a
// crash. Filesystems that refuse fsync on directories (some network
// mounts) report EINVAL or ENOTSUP; durability is best-effort there,
// matching what the platform can promise.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// ReadPartition streams partition part of dataset through fn.
func (s *Store) ReadPartition(dataset string, part int, fn func(io.Reader) error) error {
	path := s.partPath(dataset, part)
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s part %d", ErrNotFound, dataset, part)
		}
		return fmt.Errorf("diskstore: open %s: %w", path, err)
	}
	defer f.Close()
	return fn(f)
}

// Partitions returns the sorted partition numbers of a dataset.
func (s *Store) Partitions(dataset string) ([]int, error) {
	var parts []int
	prefix := dataset + ".part-"
	for n := 0; n < s.nodes; n++ {
		entries, err := os.ReadDir(nodeDir(s.root, n))
		if err != nil {
			return nil, fmt.Errorf("diskstore: listing node %d: %w", n, err)
		}
		for _, e := range entries {
			if !strings.HasPrefix(e.Name(), prefix) {
				continue
			}
			p, err := strconv.Atoi(strings.TrimPrefix(e.Name(), prefix))
			if err != nil {
				continue
			}
			parts = append(parts, p)
		}
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%w: dataset %s", ErrNotFound, dataset)
	}
	sort.Ints(parts)
	return parts, nil
}

// SizeBytes returns the total on-disk size of a dataset.
func (s *Store) SizeBytes(dataset string) (int64, error) {
	parts, err := s.Partitions(dataset)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, p := range parts {
		info, err := os.Stat(s.partPath(dataset, p))
		if err != nil {
			return 0, fmt.Errorf("diskstore: stat part %d: %w", p, err)
		}
		total += info.Size()
	}
	return total, nil
}

// Delete removes all partitions of a dataset.
func (s *Store) Delete(dataset string) error {
	parts, err := s.Partitions(dataset)
	if err != nil {
		return err
	}
	for _, p := range parts {
		if err := os.Remove(s.partPath(dataset, p)); err != nil {
			return fmt.Errorf("diskstore: delete part %d: %w", p, err)
		}
	}
	return nil
}

// PartitionSizeBytes returns the on-disk size of one partition —
// the unit of data-motion accounting for shard-affine mappers.
func (s *Store) PartitionSizeBytes(dataset string, part int) (int64, error) {
	info, err := os.Stat(s.partPath(dataset, part))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s part %d", ErrNotFound, dataset, part)
		}
		return 0, fmt.Errorf("diskstore: stat part %d: %w", part, err)
	}
	return info.Size(), nil
}

// Remove deletes a single partition — a failure-injection hook for
// re-attach tests (a shard lost between spill and aggregate).
func (s *Store) Remove(dataset string, part int) error {
	if err := os.Remove(s.partPath(dataset, part)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s part %d", ErrNotFound, dataset, part)
		}
		return fmt.Errorf("diskstore: remove part %d: %w", part, err)
	}
	return nil
}

// Corrupt truncates a partition to half its size — a failure-injection
// hook for recovery tests.
func (s *Store) Corrupt(dataset string, part int) error {
	path := s.partPath(dataset, part)
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("%w: %s part %d", ErrNotFound, dataset, part)
	}
	return os.Truncate(path, info.Size()/2)
}
