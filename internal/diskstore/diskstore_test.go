package diskstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func newStore(t *testing.T, nodes int) *Store {
	t.Helper()
	s, err := Create(t.TempDir(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(t.TempDir(), 0); err == nil {
		t.Fatal("zero nodes should error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newStore(t, 3)
	for p := 0; p < 7; p++ {
		p := p
		err := s.WritePartition("yelt", p, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "partition-%d", p)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 7; p++ {
		var got string
		err := s.ReadPartition("yelt", p, func(r io.Reader) error {
			b, err := io.ReadAll(r)
			got = string(b)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("partition-%d", p); got != want {
			t.Fatalf("partition %d = %q, want %q", p, got, want)
		}
	}
}

func TestPartitionsSortedAndPlacement(t *testing.T) {
	s := newStore(t, 3)
	for _, p := range []int{4, 0, 2, 1, 3} {
		if err := s.WritePartition("ds", p, func(w io.Writer) error {
			_, err := w.Write([]byte{1})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	parts, err := s.Partitions("ds")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if p != i {
			t.Fatalf("Partitions = %v", parts)
		}
	}
	// Round-robin placement across nodes.
	if s.NodeOf(0) != 0 || s.NodeOf(4) != 1 || s.NodeOf(5) != 2 {
		t.Fatal("placement broken")
	}
	if s.Nodes() != 3 {
		t.Fatal("Nodes()")
	}
}

func TestMissingDataset(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.Partitions("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := s.ReadPartition("nope", 0, func(io.Reader) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.SizeBytes("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteErrorCleansUp(t *testing.T) {
	s := newStore(t, 1)
	boom := errors.New("write boom")
	err := s.WritePartition("bad", 0, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Partitions("bad"); !errors.Is(err, ErrNotFound) {
		t.Fatal("failed write should leave no partition behind")
	}
}

// nodeFiles lists the file names under one node directory.
func nodeFiles(t *testing.T, s *Store, node int) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(s.root, fmt.Sprintf("node-%03d", node)))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

// A failed write must leave nothing on disk — not even the temp file
// the atomic-rename protocol writes through.
func TestWriteErrorLeavesNoTempFile(t *testing.T) {
	s := newStore(t, 1)
	err := s.WritePartition("torn", 0, func(w io.Writer) error {
		// Partial content followed by a failure — the torn-write shape.
		if _, err := w.Write([]byte("half a part")); err != nil {
			return err
		}
		return errors.New("crash mid-write")
	})
	if err == nil {
		t.Fatal("failed write should error")
	}
	if files := nodeFiles(t, s, 0); len(files) != 0 {
		t.Fatalf("failed write left files behind: %v", files)
	}
}

// A write interrupted before commit (simulated by a stray in-progress
// temp file) must be invisible to Partitions, ReadPartition, and
// SizeBytes: only renamed-in partitions exist.
func TestInProgressTempInvisible(t *testing.T) {
	s := newStore(t, 1)
	if err := s.WritePartition("ds", 0, func(w io.Writer) error {
		_, err := w.Write([]byte("good"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// What a crash between CreateTemp and Rename leaves behind.
	stray := filepath.Join(s.root, "node-000", ".ds.part-00001.tmp-1234")
	if err := os.WriteFile(stray, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	parts, err := s.Partitions("ds")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || parts[0] != 0 {
		t.Fatalf("Partitions = %v, want [0] (temp file must be invisible)", parts)
	}
	if err := s.ReadPartition("ds", 1, func(io.Reader) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reading the torn partition: err = %v, want ErrNotFound", err)
	}
	size, err := s.SizeBytes("ds")
	if err != nil {
		t.Fatal(err)
	}
	if size != 4 {
		t.Fatalf("SizeBytes = %d, want 4 (committed partition only)", size)
	}
}

// A successful write commits exactly one file — the final partition —
// with the temp file gone.
func TestWriteCommitsAtomically(t *testing.T) {
	s := newStore(t, 1)
	if err := s.WritePartition("ok", 3, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	files := nodeFiles(t, s, 0)
	if len(files) != 1 || files[0] != "ok.part-00003" {
		t.Fatalf("node files = %v, want exactly [ok.part-00003]", files)
	}
	var got string
	if err := s.ReadPartition("ok", 3, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		got = string(b)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Fatalf("content = %q", got)
	}
}

func TestSizeAndDelete(t *testing.T) {
	s := newStore(t, 2)
	payload := make([]byte, 1000)
	for p := 0; p < 4; p++ {
		if err := s.WritePartition("big", p, func(w io.Writer) error {
			_, err := w.Write(payload)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	size, err := s.SizeBytes("big")
	if err != nil {
		t.Fatal(err)
	}
	if size != 4000 {
		t.Fatalf("size = %d", size)
	}
	if err := s.Delete("big"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Partitions("big"); !errors.Is(err, ErrNotFound) {
		t.Fatal("dataset should be gone")
	}
}

func TestCorruptTruncates(t *testing.T) {
	s := newStore(t, 1)
	if err := s.WritePartition("c", 0, func(w io.Writer) error {
		_, err := w.Write(make([]byte, 100))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt("c", 0); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := s.ReadPartition("c", 0, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		n = len(b)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("corrupted partition has %d bytes, want 50", n)
	}
	if err := s.Corrupt("c", 9); !errors.Is(err, ErrNotFound) {
		t.Fatal("corrupting a missing partition should report not found")
	}
}

func TestOpenDiscoversNodes(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, 4); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 4 {
		t.Fatalf("Nodes = %d", s.Nodes())
	}
	empty := t.TempDir()
	if _, err := Open(empty); !errors.Is(err, ErrNotFound) {
		t.Fatal("empty dir should not open")
	}
	if _, err := Open(filepath.Join(empty, "missing")); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestNodeDirectoriesOnDisk(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("node-%03d", i))); err != nil {
			t.Fatalf("node dir %d missing: %v", i, err)
		}
	}
}

// The durable-commit path (content fsync, rename, node-dir fsync) must
// still present exactly the committed file: no temp residue survives,
// and the commit is readable immediately after WritePartition returns.
func TestWriteDurableCommitLeavesOnlyFinalFile(t *testing.T) {
	s := newStore(t, 2)
	for p := 0; p < 4; p++ {
		payload := fmt.Sprintf("shard-%d", p)
		if err := s.WritePartition("dur", p, func(w io.Writer) error {
			_, err := w.Write([]byte(payload))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < 2; n++ {
		for _, f := range nodeFiles(t, s, n) {
			if strings.Contains(f, ".tmp-") {
				t.Fatalf("node %d holds temp residue %q after durable commit", n, f)
			}
		}
	}
	for p := 0; p < 4; p++ {
		var got string
		if err := s.ReadPartition("dur", p, func(r io.Reader) error {
			b, err := io.ReadAll(r)
			got = string(b)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("shard-%d", p); got != want {
			t.Fatalf("part %d content = %q, want %q", p, got, want)
		}
	}
}

func TestPartitionSizeBytes(t *testing.T) {
	s := newStore(t, 2)
	for p, n := range []int{100, 250, 7} {
		if err := s.WritePartition("sz", p, func(w io.Writer) error {
			_, err := w.Write(make([]byte, n))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	for p, want := range []int64{100, 250, 7} {
		got, err := s.PartitionSizeBytes("sz", p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("part %d size = %d, want %d", p, got, want)
		}
	}
	if _, err := s.PartitionSizeBytes("sz", 9); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing partition size should report not found")
	}
}

func TestRemoveSinglePartition(t *testing.T) {
	s := newStore(t, 3)
	for p := 0; p < 3; p++ {
		if err := s.WritePartition("rm", p, func(w io.Writer) error {
			_, err := w.Write([]byte{1})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Remove("rm", 1); err != nil {
		t.Fatal(err)
	}
	parts, err := s.Partitions("rm")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 || parts[0] != 0 || parts[1] != 2 {
		t.Fatalf("Partitions = %v, want [0 2]", parts)
	}
	if err := s.Remove("rm", 1); !errors.Is(err, ErrNotFound) {
		t.Fatal("removing a missing partition should report not found")
	}
}
