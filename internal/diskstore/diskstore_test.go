package diskstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func newStore(t *testing.T, nodes int) *Store {
	t.Helper()
	s, err := Create(t.TempDir(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(t.TempDir(), 0); err == nil {
		t.Fatal("zero nodes should error")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newStore(t, 3)
	for p := 0; p < 7; p++ {
		p := p
		err := s.WritePartition("yelt", p, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "partition-%d", p)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < 7; p++ {
		var got string
		err := s.ReadPartition("yelt", p, func(r io.Reader) error {
			b, err := io.ReadAll(r)
			got = string(b)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("partition-%d", p); got != want {
			t.Fatalf("partition %d = %q, want %q", p, got, want)
		}
	}
}

func TestPartitionsSortedAndPlacement(t *testing.T) {
	s := newStore(t, 3)
	for _, p := range []int{4, 0, 2, 1, 3} {
		if err := s.WritePartition("ds", p, func(w io.Writer) error {
			_, err := w.Write([]byte{1})
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	parts, err := s.Partitions("ds")
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range parts {
		if p != i {
			t.Fatalf("Partitions = %v", parts)
		}
	}
	// Round-robin placement across nodes.
	if s.NodeOf(0) != 0 || s.NodeOf(4) != 1 || s.NodeOf(5) != 2 {
		t.Fatal("placement broken")
	}
	if s.Nodes() != 3 {
		t.Fatal("Nodes()")
	}
}

func TestMissingDataset(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.Partitions("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := s.ReadPartition("nope", 0, func(io.Reader) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.SizeBytes("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteErrorCleansUp(t *testing.T) {
	s := newStore(t, 1)
	boom := errors.New("write boom")
	err := s.WritePartition("bad", 0, func(io.Writer) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Partitions("bad"); !errors.Is(err, ErrNotFound) {
		t.Fatal("failed write should leave no partition behind")
	}
}

func TestSizeAndDelete(t *testing.T) {
	s := newStore(t, 2)
	payload := make([]byte, 1000)
	for p := 0; p < 4; p++ {
		if err := s.WritePartition("big", p, func(w io.Writer) error {
			_, err := w.Write(payload)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	size, err := s.SizeBytes("big")
	if err != nil {
		t.Fatal(err)
	}
	if size != 4000 {
		t.Fatalf("size = %d", size)
	}
	if err := s.Delete("big"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Partitions("big"); !errors.Is(err, ErrNotFound) {
		t.Fatal("dataset should be gone")
	}
}

func TestCorruptTruncates(t *testing.T) {
	s := newStore(t, 1)
	if err := s.WritePartition("c", 0, func(w io.Writer) error {
		_, err := w.Write(make([]byte, 100))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt("c", 0); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := s.ReadPartition("c", 0, func(r io.Reader) error {
		b, err := io.ReadAll(r)
		n = len(b)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("corrupted partition has %d bytes, want 50", n)
	}
	if err := s.Corrupt("c", 9); !errors.Is(err, ErrNotFound) {
		t.Fatal("corrupting a missing partition should report not found")
	}
}

func TestOpenDiscoversNodes(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, 4); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes() != 4 {
		t.Fatalf("Nodes = %d", s.Nodes())
	}
	empty := t.TempDir()
	if _, err := Open(empty); !errors.Is(err, ErrNotFound) {
		t.Fatal("empty dir should not open")
	}
	if _, err := Open(filepath.Join(empty, "missing")); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestNodeDirectoriesOnDisk(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(dir, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("node-%03d", i))); err != nil {
			t.Fatalf("node dir %d missing: %v", i, err)
		}
	}
}
