package diskstore

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
)

// writeReplicated writes part to its r placement nodes with content.
func writeReplicated(t *testing.T, s *Store, dataset string, part, replicas int, content string) {
	t.Helper()
	for _, node := range s.ReplicaNodesFor(part, replicas) {
		err := s.WritePartitionAt(dataset, part, node, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
		if err != nil {
			t.Fatalf("write part %d node %d: %v", part, node, err)
		}
	}
}

func TestReplicaNodesForPlacement(t *testing.T) {
	s, err := Create(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ReplicaNodesFor(2, 2); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("ReplicaNodesFor(2, 2) = %v, want [2 3]", got)
	}
	if got := s.ReplicaNodesFor(3, 2); !reflect.DeepEqual(got, []int{3, 0}) {
		t.Fatalf("ReplicaNodesFor(3, 2) = %v, want [3 0] (wraps)", got)
	}
	if got := s.ReplicaNodesFor(1, 0); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("ReplicaNodesFor(1, 0) = %v, want [1] (clamped up)", got)
	}
	if got := s.ReplicaNodesFor(0, 9); len(got) != 4 {
		t.Fatalf("ReplicaNodesFor(0, 9) = %v, want 4 nodes (clamped down)", got)
	}
}

func TestReplicatedPartitionsDeduped(t *testing.T) {
	s, err := Create(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		writeReplicated(t, s, "ds", p, 2, fmt.Sprintf("part %d", p))
	}
	parts, err := s.Partitions("ds")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parts, []int{0, 1, 2}) {
		t.Fatalf("Partitions = %v, want [0 1 2] (replicas deduped)", parts)
	}
}

func TestReplicaDiscoveryAndSizes(t *testing.T) {
	s, err := Create(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	writeReplicated(t, s, "ds", 1, 2, "0123456789")
	nodes, err := s.ReplicaNodes("ds", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(nodes, []int{1, 2}) {
		t.Fatalf("ReplicaNodes = %v, want [1 2]", nodes)
	}
	if n, err := s.SizeBytes("ds"); err != nil || n != 10 {
		t.Fatalf("SizeBytes = %d, %v; want 10 (logical)", n, err)
	}
	if n, err := s.TotalSizeBytes("ds"); err != nil || n != 20 {
		t.Fatalf("TotalSizeBytes = %d, %v; want 20 (physical)", n, err)
	}

	// Losing the primary: discovery, sizing and Delete survive on the
	// second replica.
	if err := s.RemoveAt("ds", 1, 1); err != nil {
		t.Fatal(err)
	}
	nodes, err = s.ReplicaNodes("ds", 1)
	if err != nil || !reflect.DeepEqual(nodes, []int{2}) {
		t.Fatalf("after primary loss ReplicaNodes = %v, %v; want [2]", nodes, err)
	}
	if n, err := s.PartitionSizeBytes("ds", 1); err != nil || n != 10 {
		t.Fatalf("PartitionSizeBytes after primary loss = %d, %v; want 10", n, err)
	}
	if err := s.Delete("ds"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Partitions("ds"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after Delete: want ErrNotFound, got %v", err)
	}
}

func TestReadPartitionAtAndFaultHook(t *testing.T) {
	s, err := Create(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	writeReplicated(t, s, "ds", 0, 2, "payload")

	read := func(node int) (string, error) {
		var got string
		err := s.ReadPartitionAt("ds", 0, node, func(r io.Reader) error {
			b, err := io.ReadAll(r)
			got = string(b)
			return err
		})
		return got, err
	}
	for _, node := range []int{0, 1} {
		if got, err := read(node); err != nil || got != "payload" {
			t.Fatalf("node %d: got %q, %v", node, got, err)
		}
	}
	if _, err := read(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("node 2 holds no replica: want ErrNotFound, got %v", err)
	}

	// An injected fault fails the read even though the file is healthy,
	// and only on the node the hook names.
	boom := errors.New("injected")
	s.SetReadFault(func(dataset string, part, node int) error {
		if dataset == "ds" && part == 0 && node == 0 {
			return boom
		}
		return nil
	})
	if _, err := read(0); !errors.Is(err, boom) {
		t.Fatalf("node 0: want injected fault, got %v", err)
	}
	if got, err := read(1); err != nil || got != "payload" {
		t.Fatalf("node 1 should be unaffected: %q, %v", got, err)
	}
	s.SetReadFault(nil)
	if _, err := read(0); err != nil {
		t.Fatalf("hook cleared, node 0 should read: %v", err)
	}
}

func TestCorruptAtLeavesOtherReplicaIntact(t *testing.T) {
	s, err := Create(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	writeReplicated(t, s, "ds", 1, 2, "0123456789")
	if err := s.CorruptAt("ds", 1, 1); err != nil {
		t.Fatal(err)
	}
	size := func(node int) int64 {
		var n int64
		err := s.ReadPartitionAt("ds", 1, node, func(r io.Reader) error {
			b, err := io.ReadAll(r)
			n = int64(len(b))
			return err
		})
		if err != nil {
			t.Fatalf("read node %d: %v", node, err)
		}
		return n
	}
	if got := size(1); got != 5 {
		t.Fatalf("corrupted replica size = %d, want 5", got)
	}
	if got := size(2); got != 10 {
		t.Fatalf("healthy replica size = %d, want 10", got)
	}
}

func TestWritePartitionAtRejectsBadNode(t *testing.T) {
	s, err := Create(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePartitionAt("ds", 0, 5, func(io.Writer) error { return nil }); err == nil {
		t.Fatal("node out of range should fail")
	}
}
