package dfa

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/rng"
)

func newBenchStream() *rng.Stream { return rng.New(77) }

func BenchmarkIntegrate(b *testing.B) {
	cat := catTable(100_000, 3)
	for _, k := range []int{6, 24} {
		base := StandardSources(cat.Mean())
		sources := make([]Source, 0, k)
		for len(sources) < k {
			sources = append(sources, base[len(sources)%len(base)])
		}
		ig := &Integrator{Sources: sources}
		b.Run(fmt.Sprintf("sources=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ig.Run(context.Background(), cat, Config{Seed: 7, Rho: 0.2}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cat.NumTrials())*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

func BenchmarkSourceDraws(b *testing.B) {
	cat := catTable(1000, 4)
	for _, src := range StandardSources(cat.Mean()) {
		b.Run(src.Name(), func(b *testing.B) {
			st := newBenchStream()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += src.Loss(0.3+0.4*float64(i%2), st)
			}
			_ = sink
		})
	}
}
