package dfa

import (
	"context"
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/rng"
	"repro/internal/ylt"
)

func catTable(n int, seed uint64) *ylt.Table {
	t := ylt.New("cat", n)
	st := rng.New(seed)
	for i := range t.Agg {
		// Heavy-tailed cat losses: many small years, some huge.
		if st.Float64() < 0.3 {
			t.Agg[i] = st.Pareto(1e6, 1.6)
		}
		t.OccMax[i] = t.Agg[i] * 0.7
	}
	return t
}

func TestRunShapes(t *testing.T) {
	cat := catTable(5000, 1)
	ig := &Integrator{Sources: StandardSources(cat.Mean())}
	res, err := ig.Run(context.Background(), cat, Config{Seed: 3, Rho: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSource) != 6 {
		t.Fatalf("sources = %d", len(res.PerSource))
	}
	if res.Enterprise.NumTrials() != 5000 {
		t.Fatal("enterprise trials wrong")
	}
	if !res.Enterprise.HasOccurrence() {
		t.Fatal("enterprise should inherit occurrence data from cat")
	}
	if res.TotalBytes <= cat.SizeBytes() {
		t.Fatal("TotalBytes should count all tables")
	}
	// Enterprise = cat + sum of sources, per trial.
	for trial := 0; trial < 5000; trial += 97 {
		sum := cat.Agg[trial]
		for _, s := range res.PerSource {
			sum += s.Agg[trial]
		}
		if math.Abs(sum-res.Enterprise.Agg[trial]) > 1e-9*(1+math.Abs(sum)) {
			t.Fatalf("trial %d: enterprise %v != sum %v", trial, res.Enterprise.Agg[trial], sum)
		}
	}
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cat := catTable(3000, 2)
	ig := &Integrator{Sources: StandardSources(cat.Mean())}
	a, err := ig.Run(context.Background(), cat, Config{Seed: 7, Rho: 0.15, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ig.Run(context.Background(), cat, Config{Seed: 7, Rho: 0.15, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Enterprise.Agg {
		if a.Enterprise.Agg[i] != b.Enterprise.Agg[i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

func TestCorrelationInducedByCopula(t *testing.T) {
	// A continuous, finite-variance cat book so Pearson correlation is
	// an informative statistic (the production Pareto book with 70%
	// zero years dilutes Pearson even under strong rank dependence).
	cat := ylt.New("cat", 20000)
	st := rng.New(33)
	for i := range cat.Agg {
		cat.Agg[i] = st.LogNormal(13, 0.8)
		cat.OccMax[i] = cat.Agg[i] * 0.7
	}
	// A single investment source, strongly correlated to the cat book:
	// bad cat years should co-occur with investment losses.
	ig := &Integrator{Sources: []Source{Investment{Assets: 1e8, MeanReturn: 0.04, Volatility: 0.12}}}
	strong, err := ig.Run(context.Background(), cat, Config{Seed: 5, Rho: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	rStrong := mathx.Correlation(cat.Agg, strong.PerSource[0].Agg)

	weak, err := ig.Run(context.Background(), cat, Config{Seed: 5, Rho: 0.0})
	if err != nil {
		t.Fatal(err)
	}
	rWeak := mathx.Correlation(cat.Agg, weak.PerSource[0].Agg)

	if rStrong < 0.2 {
		t.Fatalf("rho=0.7 should induce visible loss correlation, got %v", rStrong)
	}
	if math.Abs(rWeak) > 0.05 {
		t.Fatalf("rho=0 should leave sources uncorrelated, got %v", rWeak)
	}
	if rStrong <= rWeak {
		t.Fatal("correlation should increase with rho")
	}
}

func TestCorrelationRaisesTail(t *testing.T) {
	// With positive dependence the enterprise tail must be fatter than
	// under independence — the reason DFA bothers with copulas at all.
	cat := catTable(20000, 4)
	ig := &Integrator{Sources: StandardSources(cat.Mean())}
	dep, err := ig.Run(context.Background(), cat, Config{Seed: 9, Rho: 0.35})
	if err != nil {
		t.Fatal(err)
	}
	ind, err := ig.Run(context.Background(), cat, Config{Seed: 9, Rho: 0})
	if err != nil {
		t.Fatal(err)
	}
	q := func(xs []float64) float64 {
		v, err := mathx.Quantile(xs, 0.995)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if q(dep.Enterprise.Agg) <= q(ind.Enterprise.Agg) {
		t.Fatalf("dependent 99.5%% quantile %v should exceed independent %v",
			q(dep.Enterprise.Agg), q(ind.Enterprise.Agg))
	}
}

func TestSourceMoments(t *testing.T) {
	st := rng.New(77)
	// Investment: mean loss ≈ -assets*meanReturn.
	inv := Investment{Assets: 1e6, MeanReturn: 0.05, Volatility: 0.1}
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += inv.Loss(st.Float64Open(), st)
	}
	if got := sum / n; math.Abs(got+50_000) > 1500 {
		t.Errorf("investment mean loss = %v, want ~-50000", got)
	}

	// Reserve: mean-one development => mean loss ≈ 0.
	rsv := Reserve{Reserves: 1e6, CoV: 0.15}
	sum = 0
	for i := 0; i < n; i++ {
		sum += rsv.Loss(st.Float64Open(), st)
	}
	if got := sum / n; math.Abs(got) > 2000 {
		t.Errorf("reserve mean loss = %v, want ~0", got)
	}

	// Counterparty: mean ≈ recoverables · PD · LGD.
	cp := Counterparty{Recoverables: 1e6, N: 50, PD: 0.02, LGD: 0.5, FactorRho: 0.2}
	sum = 0
	for i := 0; i < n; i++ {
		sum += cp.Loss(st.Float64Open(), st)
	}
	want := 1e6 * 0.02 * 0.5
	if got := sum / n; math.Abs(got-want)/want > 0.1 {
		t.Errorf("counterparty mean loss = %v, want ~%v", got, want)
	}

	// Operational: mean ≈ freq · sevMean.
	op := Operational{Freq: 2, SevMean: 1000, SevCoV: 1.0, StressBeta: 0.2}
	sum = 0
	for i := 0; i < n; i++ {
		sum += op.Loss(st.Float64Open(), st)
	}
	if got := sum / n; math.Abs(got-2000)/2000 > 0.08 {
		t.Errorf("operational mean loss = %v, want ~2000", got)
	}
}

func TestCounterpartyEdgeCases(t *testing.T) {
	st := rng.New(1)
	if (Counterparty{N: 0, PD: 0.1}).Loss(0.5, st) != 0 {
		t.Error("no counterparties means no loss")
	}
	if (Counterparty{N: 10, PD: 0}).Loss(0.5, st) != 0 {
		t.Error("zero PD means no loss")
	}
}

func TestOperationalZeroFrequency(t *testing.T) {
	st := rng.New(1)
	op := Operational{Freq: 0, SevMean: 1000, SevCoV: 1}
	if op.Loss(0.9, st) != 0 {
		t.Error("zero frequency must produce zero loss")
	}
}

func TestMarketCycleStates(t *testing.T) {
	mc := MarketCycle{Premium: 1000, SoftProb: 0.3, HardProb: 0.2, SoftMargin: 0.1, HardMargin: 0.05}
	st := rng.New(1)
	if got := mc.Loss(0.9, st); got != 100 {
		t.Errorf("soft market loss = %v, want 100", got)
	}
	if got := mc.Loss(0.5, st); got != 0 {
		t.Errorf("neutral market loss = %v, want 0", got)
	}
	if got := mc.Loss(0.05, st); got != -50 {
		t.Errorf("hard market loss = %v, want -50", got)
	}
}

func TestRunValidation(t *testing.T) {
	ig := &Integrator{Sources: StandardSources(1)}
	if _, err := ig.Run(context.Background(), nil, Config{}); err == nil {
		t.Error("nil cat should error")
	}
	if _, err := ig.Run(context.Background(), ylt.New("c", 0), Config{}); err == nil {
		t.Error("empty cat should error")
	}
	empty := &Integrator{}
	if _, err := empty.Run(context.Background(), catTable(10, 1), Config{}); err == nil {
		t.Error("no sources should error")
	}
	// Wrong-size custom correlation matrix.
	bad := mathx.Identity(3)
	if _, err := ig.Run(context.Background(), catTable(10, 1), Config{Corr: bad}); err == nil {
		t.Error("wrong correlation size should error")
	}
	// Invalid rho.
	if _, err := ig.Run(context.Background(), catTable(10, 1), Config{Rho: 1.5}); err == nil {
		t.Error("invalid rho should error")
	}
}

func TestRunCancellation(t *testing.T) {
	cat := catTable(100000, 5)
	ig := &Integrator{Sources: StandardSources(cat.Mean())}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ig.Run(ctx, cat, Config{Rho: 0.1}); err == nil {
		t.Error("cancelled run should error")
	}
}

func TestStandardSourcesScale(t *testing.T) {
	srcs := StandardSources(0) // degenerate AAL
	if len(srcs) != 6 {
		t.Fatalf("sources = %d", len(srcs))
	}
	names := map[string]bool{}
	for _, s := range srcs {
		names[s.Name()] = true
	}
	for _, want := range []string{"investment", "interest-rate", "reserve", "market-cycle", "counterparty", "operational"} {
		if !names[want] {
			t.Errorf("missing source %q", want)
		}
	}
}
