// Package dfa implements stage 3, Dynamic Financial Analysis: "The
// aggregate YLTs of catastrophe risks are integrated with investment,
// reserving, interest rate, market cycle, counter-party, and
// operational risks in the simulation" (§II). The integrator runs one
// enterprise trial per pre-simulated year, couples the risk sources
// through a Gaussian copula (conditioning on the catastrophe year's
// severity rank so financial stress co-moves with cat years), and
// emits per-source and enterprise Year-Loss Tables from which PML and
// TVaR flow to enterprise risk management.
package dfa

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/mathx"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/ylt"
)

// Source is one non-catastrophe risk model. Implementations must be
// pure functions of their arguments: u is the copula-correlated
// uniform in (0,1) driving the source's systematic severity, aux is a
// per-(trial, source) stream for idiosyncratic draws.
//
// Severity convention: higher u must mean a worse outcome (larger
// loss) for the enterprise. The integrator pins u's dependence to the
// catastrophe year's severity rank, so a source violating this
// convention would hedge cat years instead of compounding them.
type Source interface {
	// Name labels the source's YLT.
	Name() string
	// Loss returns the annual loss for one trial. Negative losses are
	// gains (e.g. investment income).
	Loss(u float64, aux *rng.Stream) float64
}

// --- concrete sources ---

// Investment models asset-portfolio return risk: a normal annual
// return on invested assets; loss is the negative return.
type Investment struct {
	Assets     float64
	MeanReturn float64 // e.g. 0.05
	Volatility float64 // e.g. 0.12
}

// Name implements Source.
func (s Investment) Name() string { return "investment" }

// Loss implements Source.
func (s Investment) Loss(u float64, _ *rng.Stream) float64 {
	// High severity u = poor markets = low return (severity convention).
	ret := s.MeanReturn - s.Volatility*mathx.StdNormalQuantile(u)
	return -s.Assets * ret
}

// InterestRate models mark-to-market loss on a bond book from a
// parallel yield-curve shift: loss = notional · duration · Δr.
type InterestRate struct {
	Notional  float64
	Duration  float64 // modified duration, years
	MeanShift float64 // expected annual rate drift
	Vol       float64 // annual rate volatility, e.g. 0.01
}

// Name implements Source.
func (s InterestRate) Name() string { return "interest-rate" }

// Loss implements Source.
func (s InterestRate) Loss(u float64, _ *rng.Stream) float64 {
	shift := s.MeanShift + s.Vol*mathx.StdNormalQuantile(u)
	return s.Notional * s.Duration * shift
}

// Reserve models adverse development of held loss reserves as a
// mean-one lognormal deviation: loss = reserves · (X − 1).
type Reserve struct {
	Reserves float64
	CoV      float64 // coefficient of variation of development
}

// Name implements Source.
func (s Reserve) Name() string { return "reserve" }

// Loss implements Source.
func (s Reserve) Loss(u float64, _ *rng.Stream) float64 {
	mu, sigma := mathx.LogNormalMeanStd(1, s.CoV)
	x := mathx.StdNormalQuantile(u)*sigma + mu
	// exp(x) - 1 via Expm1 to avoid cancellation for mild developments.
	return s.Reserves * math.Expm1(x)
}

// Counterparty models default of reinsurance counterparties holding
// recoverables, using the Vasicek one-factor portfolio model: the
// copula normal is the systematic factor that stresses every
// counterparty's conditional default probability; defaults themselves
// are idiosyncratic binomial draws.
type Counterparty struct {
	Recoverables float64 // total ceded recoverables at risk
	N            int     // number of counterparties
	PD           float64 // unconditional annual default probability
	LGD          float64 // loss given default, (0, 1]
	FactorRho    float64 // asset correlation to the systematic factor
}

// Name implements Source.
func (s Counterparty) Name() string { return "counterparty" }

// Loss implements Source.
func (s Counterparty) Loss(u float64, aux *rng.Stream) float64 {
	if s.N <= 0 || s.PD <= 0 {
		return 0
	}
	z := mathx.StdNormalQuantile(u)
	rho := mathx.Clamp(s.FactorRho, 0, 0.97)
	// Vasicek conditional PD given systematic factor z (stress when z
	// is large: cat-heavy years impair reinsurers).
	pdCond := mathx.StdNormalCDF((mathx.StdNormalQuantile(s.PD) + math.Sqrt(rho)*z) / math.Sqrt(1-rho))
	defaults := aux.Binomial(s.N, pdCond)
	return s.Recoverables * float64(defaults) / float64(s.N) * s.LGD
}

// Operational models operational-loss risk as a compound Poisson with
// lognormal severities, scaled by a mild systematic stress factor.
type Operational struct {
	Freq       float64 // expected loss events per year
	SevMean    float64 // mean severity
	SevCoV     float64
	StressBeta float64 // exposure of severity to the systematic factor
}

// Name implements Source.
func (s Operational) Name() string { return "operational" }

// Loss implements Source.
func (s Operational) Loss(u float64, aux *rng.Stream) float64 {
	n := aux.Poisson(s.Freq)
	if n == 0 {
		return 0
	}
	mu, sigma := mathx.LogNormalMeanStd(s.SevMean, s.SevMean*s.SevCoV)
	var sum float64
	for i := 0; i < n; i++ {
		sum += aux.LogNormal(mu, sigma)
	}
	z := mathx.StdNormalQuantile(u)
	beta := s.StressBeta
	stress := math.Exp(beta*z - beta*beta/2)
	return sum * stress
}

// MarketCycle models the underwriting cycle: soft markets erode
// premium adequacy (a loss relative to plan), hard markets add margin.
type MarketCycle struct {
	Premium    float64
	SoftProb   float64 // probability of a soft-market year
	HardProb   float64
	SoftMargin float64 // e.g. 0.08: 8% of premium lost vs plan
	HardMargin float64 // e.g. 0.06: 6% gained
}

// Name implements Source.
func (s MarketCycle) Name() string { return "market-cycle" }

// Loss implements Source.
func (s MarketCycle) Loss(u float64, _ *rng.Stream) float64 {
	switch {
	case u > 1-s.SoftProb:
		// High severity = soft market = inadequate premium.
		return s.Premium * s.SoftMargin
	case u < s.HardProb:
		return -s.Premium * s.HardMargin
	default:
		return 0
	}
}

// StandardSources returns the paper's six-risk integration set, sized
// relative to the catastrophe book's average annual loss so that the
// enterprise distribution has realistic proportions.
func StandardSources(catAAL float64) []Source {
	scale := catAAL
	if scale <= 0 {
		scale = 1
	}
	return []Source{
		Investment{Assets: 20 * scale, MeanReturn: 0.05, Volatility: 0.10},
		InterestRate{Notional: 15 * scale, Duration: 4.5, MeanShift: 0, Vol: 0.008},
		Reserve{Reserves: 8 * scale, CoV: 0.10},
		MarketCycle{Premium: 3 * scale, SoftProb: 0.3, HardProb: 0.25, SoftMargin: 0.08, HardMargin: 0.06},
		Counterparty{Recoverables: 2 * scale, N: 40, PD: 0.01, LGD: 0.55, FactorRho: 0.25},
		Operational{Freq: 1.5, SevMean: 0.05 * scale, SevCoV: 1.5, StressBeta: 0.25},
	}
}

// Config controls an integration run.
type Config struct {
	Seed    uint64
	Workers int
	// Rho is the equicorrelation among all risk coordinates (the cat
	// book is coordinate 0). Ignored when Corr is set.
	Rho float64
	// Corr optionally supplies the full (1+len(Sources))² correlation
	// matrix.
	Corr *mathx.Matrix
}

// Result is the output of an integration.
type Result struct {
	// Cat is the input catastrophe YLT (coordinate 0).
	Cat *ylt.Table
	// PerSource holds one YLT per non-cat source, in input order.
	PerSource []*ylt.Table
	// Enterprise is the per-trial sum of cat and all sources.
	Enterprise *ylt.Table
	// TotalBytes is the summed serialized size of every YLT involved —
	// the stage-3 data-volume accounting for experiment E9.
	TotalBytes int64
}

// Integrator couples a catastrophe YLT with parametric risk sources.
type Integrator struct {
	Sources []Source
}

// Run executes the integration over the cat table's trials.
func (ig *Integrator) Run(ctx context.Context, cat *ylt.Table, cfg Config) (*Result, error) {
	if cat == nil || cat.NumTrials() == 0 {
		return nil, errors.New("dfa: missing catastrophe YLT")
	}
	if len(ig.Sources) == 0 {
		return nil, errors.New("dfa: no sources to integrate")
	}
	k := len(ig.Sources) + 1 // coordinate 0 is the cat book

	corr := cfg.Corr
	if corr == nil {
		rho := cfg.Rho
		var err error
		corr, err = mathx.CorrelationMatrix(k, rho)
		if err != nil {
			return nil, fmt.Errorf("dfa: correlation: %w", err)
		}
	}
	if corr.N != k {
		return nil, fmt.Errorf("dfa: correlation matrix is %d×%d, need %d", corr.N, corr.N, k)
	}
	chol, jitter, err := mathx.CholeskyJittered(corr, 12)
	if err != nil {
		return nil, fmt.Errorf("dfa: correlation not factorizable (jitter reached %g): %w", jitter, err)
	}

	n := cat.NumTrials()

	// Rank-transform the cat losses into standard normals: the copula
	// conditions every financial source on how bad the catastrophe
	// year was. Ties (e.g. many zero-loss years) share the rank range
	// deterministically by trial order.
	zCat := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return cat.Agg[idx[a]] < cat.Agg[idx[b]] })
	for rank, trial := range idx {
		zCat[trial] = mathx.StdNormalQuantile((float64(rank) + 0.5) / float64(n))
	}

	res := &Result{Cat: cat, PerSource: make([]*ylt.Table, len(ig.Sources))}
	for i, s := range ig.Sources {
		res.PerSource[i] = ylt.NewAggOnly(s.Name(), n)
	}
	var enterprise *ylt.Table
	if cat.HasOccurrence() {
		enterprise = ylt.New("enterprise", n)
	} else {
		enterprise = ylt.NewAggOnly("enterprise", n)
	}
	res.Enterprise = enterprise

	err = stream.ForEachRange(ctx, n, cfg.Workers, func(ctx context.Context, r stream.Range, _ int) error {
		w := make([]float64, k)
		z := make([]float64, k)
		for trial := r.Lo; trial < r.Hi; trial++ {
			if trial%4096 == 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				default:
				}
			}
			st := rng.NewStream(cfg.Seed, uint64(trial))
			// Conditional Gaussian copula: coordinate 0 is pinned to
			// the cat year's z-score (L[0][0] == 1 for a correlation
			// matrix, so w[0] = z[0]).
			w[0] = zCat[trial]
			for i := 1; i < k; i++ {
				w[i] = st.StdNormal()
			}
			chol.LowerMulVec(w, z)
			total := cat.Agg[trial]
			for i, s := range ig.Sources {
				u := mathx.StdNormalCDF(z[i+1])
				loss := s.Loss(u, st)
				res.PerSource[i].Agg[trial] = loss
				total += loss
			}
			enterprise.Agg[trial] = total
			if enterprise.OccMax != nil {
				enterprise.OccMax[trial] = cat.OccMax[trial]
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res.TotalBytes = cat.SizeBytes() + enterprise.SizeBytes()
	for _, t := range res.PerSource {
		res.TotalBytes += t.SizeBytes()
	}
	return res, nil
}
