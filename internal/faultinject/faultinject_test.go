package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNilPlanInjectsNothing(t *testing.T) {
	var p *Plan
	if err := p.DiskRead("yelt", 0, 0); err != nil {
		t.Fatalf("nil plan DiskRead: %v", err)
	}
	if err := p.NodeTask(0); err != nil {
		t.Fatalf("nil plan NodeTask: %v", err)
	}
	if d := p.SplitDelay(0); d != 0 {
		t.Fatalf("nil plan SplitDelay = %v", d)
	}
	if n := p.Injected(); n != 0 {
		t.Fatalf("nil plan Injected = %d", n)
	}
}

func TestFailShardReadBurnsAttempts(t *testing.T) {
	p := New(1, FailShardRead{Shard: 3, Node: Any, Attempts: 2})
	for attempt := 0; attempt < 2; attempt++ {
		if err := p.DiskRead("yelt", 3, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: want ErrInjected, got %v", attempt, err)
		}
	}
	if err := p.DiskRead("yelt", 3, 0); err != nil {
		t.Fatalf("attempt 2 should succeed: %v", err)
	}
	if err := p.DiskRead("yelt", 2, 0); err != nil {
		t.Fatalf("unmatched shard should succeed: %v", err)
	}
	if got := p.Injected(); got != 2 {
		t.Fatalf("Injected = %d, want 2", got)
	}
}

func TestFailShardReadPerNodeCounters(t *testing.T) {
	// Node-scoped failure: replica on node 1 is bad, node 2 is healthy —
	// the shape of "failover picks the healthy replica".
	p := New(1, FailShardRead{Shard: 0, Node: 1, Attempts: 1})
	if err := p.DiskRead("yelt", 0, 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("node 1 first read: want ErrInjected, got %v", err)
	}
	if err := p.DiskRead("yelt", 0, 2); err != nil {
		t.Fatalf("node 2 read should succeed: %v", err)
	}
}

func TestManifestReadsExempt(t *testing.T) {
	p := New(1, FailShardRead{Shard: Any, Node: Any, Attempts: 99},
		FailShardReadRate{Rate: 1})
	if err := p.DiskRead("yelt.manifest", 0, 0); err != nil {
		t.Fatalf("manifest read must be exempt, got %v", err)
	}
	if err := p.DiskRead("yelt", 0, 0); err == nil {
		t.Fatal("data shard read should fail")
	}
}

func TestRateIsDeterministicPerSite(t *testing.T) {
	// Two plans with the same seed must make identical decisions for
	// the same access sequence; a different seed must diverge somewhere.
	draw := func(seed uint64) []bool {
		p := New(seed, FailShardReadRate{Rate: 0.5})
		var out []bool
		for part := 0; part < 8; part++ {
			for attempt := 0; attempt < 8; attempt++ {
				out = append(out, p.DiskRead("yelt", part, 0) != nil)
			}
		}
		return out
	}
	a, b, c := draw(7), draw(7), draw(8)
	same := true
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diverged = true
		}
	}
	if !same {
		t.Fatal("same seed produced different fault sequences")
	}
	if !diverged {
		t.Fatal("different seeds produced identical fault sequences")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("rate 0.5 fired %d/%d times — not a rate", fired, len(a))
	}
}

func TestKillNodeAfterTasks(t *testing.T) {
	p := New(1, KillNode{Node: 1, AfterTasks: 2})
	for i := 0; i < 2; i++ {
		if err := p.NodeTask(1); err != nil {
			t.Fatalf("task %d on node 1 should start: %v", i, err)
		}
	}
	if err := p.NodeTask(1); !errors.Is(err, ErrNodeLost) {
		t.Fatalf("node 1 should be dead, got %v", err)
	}
	if err := p.NodeTask(1); !errors.Is(err, ErrNodeLost) {
		t.Fatal("death must be permanent")
	}
	if err := p.NodeTask(0); err != nil {
		t.Fatalf("node 0 unaffected: %v", err)
	}
}

func TestDelaySplitFirstRunOnly(t *testing.T) {
	p := New(1, DelaySplit{Split: 2, Delay: 50 * time.Millisecond})
	if d := p.SplitDelay(2); d != 50*time.Millisecond {
		t.Fatalf("first run delay = %v, want 50ms", d)
	}
	if d := p.SplitDelay(2); d != 0 {
		t.Fatalf("second run delay = %v, want 0 (backup runs at full speed)", d)
	}
	if d := p.SplitDelay(0); d != 0 {
		t.Fatalf("unmatched split delay = %v", d)
	}
}

func TestParse(t *testing.T) {
	p, err := Parse("rate=0.1, shard=3@1, kill=1@4, delay=2@50ms", 7)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := p.DiskRead("yelt", 3, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("shard rule not compiled: %v", err)
	}
	for i := 0; i < 4; i++ {
		_ = p.NodeTask(1)
	}
	if err := p.NodeTask(1); !errors.Is(err, ErrNodeLost) {
		t.Fatal("kill rule not compiled")
	}
	if d := p.SplitDelay(2); d != 50*time.Millisecond {
		t.Fatalf("delay rule not compiled: %v", d)
	}

	if p, err := Parse("", 1); err != nil || p != nil {
		t.Fatalf("empty spec: want nil plan, got %v, %v", p, err)
	}
	if p, err := Parse("shard=*@1", 1); err != nil {
		t.Fatalf("wildcard shard: %v", err)
	} else if err := p.DiskRead("yelt", 9, 3); !errors.Is(err, ErrInjected) {
		t.Fatal("wildcard shard rule should match every shard")
	}
	for _, bad := range []string{"bogus", "what=1", "rate=2", "rate=x",
		"shard=3", "shard=x@1", "kill=*@1", "kill=1", "delay=1",
		"delay=x@50ms", "delay=1@zzz", "shard=1@-1"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
