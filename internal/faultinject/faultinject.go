// Package faultinject is the deterministic chaos layer for the
// distributed stage 2. The companion Hadoop work (PAPERS.md, arXiv
// 1311.5686) gets its fault tolerance "for free" from the framework;
// reproducing that property here requires the opposite of free — a
// failure model we can *pin in tests*. A Plan is a pure function of
// (seed, rules, per-site attempt index): the decision whether shard
// read N fails on attempt k, whether node K is dead after its T-th
// task, or how long split S's first run is delayed never consults wall
// clocks or global state, so a chaos scenario replays byte-for-byte
// for any fixed access interleaving — and the engines it is injected
// into are required (by the equivalence suites) to produce bit-identical
// results under *any* interleaving.
//
// The hooks are shaped for their injection points:
//
//   - DiskRead(dataset, part, node)  → diskstore read attempts
//   - NodeTask(node)                 → mapreduce lane workers, per task
//   - SplitDelay(split)              → mapreduce task execution, per run
//
// A nil *Plan is valid everywhere and injects nothing, so production
// paths pay one nil check.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks a shard-read failure manufactured by a Plan. It is
// deliberately not wrapped as a corruption error: callers exercise the
// same retry/failover paths a real I/O error would take.
var ErrInjected = errors.New("faultinject: injected shard-read failure")

// ErrNodeLost marks a lane worker retired by a KillNode rule. The
// mapreduce scheduler treats it as the node leaving the cluster, not as
// a task failure: the worker exits and its splits are stolen.
var ErrNodeLost = errors.New("faultinject: node lost")

// Any matches every shard or node in a rule field.
const Any = -1

// Rule is one injected failure. Rules are data; all decision logic
// lives in Plan so determinism is auditable in one place.
type Rule interface{ isRule() }

// FailShardRead fails the first Attempts read attempts of one shard
// (or every shard, with Shard == Any). Node restricts the failure to
// one replica's storage node (Any = every replica), which is how tests
// pin "replica 0 is torn, replica 1 is healthy". Attempt indices are
// per (dataset, shard, node), so a retry or a failover sees a fresh
// decision.
type FailShardRead struct {
	Shard    int
	Node     int
	Attempts int
}

func (FailShardRead) isRule() {}

// FailShardReadRate fails each shard-read attempt independently with
// probability Rate. The draw hashes (seed, dataset, shard, node,
// attempt index), so a fixed access sequence replays exactly.
type FailShardReadRate struct {
	Rate float64
}

func (FailShardReadRate) isRule() {}

// KillNode retires node Node after it has started AfterTasks tasks
// (0 = dead on arrival). Logical task counts stand in for the wall
// time T of the scenario description — same shape, reproducible.
type KillNode struct {
	Node       int
	AfterTasks int
}

func (KillNode) isRule() {}

// DelaySplit stretches split Split's first execution by Delay,
// manufacturing a straggler. Only the first run is delayed so a
// speculative backup attempt runs at full speed and can win.
type DelaySplit struct {
	Split int
	Delay time.Duration
}

func (DelaySplit) isRule() {}

// Plan is a compiled, seeded fault-injection plan. All methods are
// safe for concurrent use; the only mutable state is per-site attempt
// counters behind one mutex (injection sits on I/O paths, so the lock
// is noise). The zero Plan and the nil Plan inject nothing.
type Plan struct {
	seed  uint64
	fails []FailShardRead
	rate  float64
	kills map[int]int // node -> tasks allowed before death
	delay map[int]time.Duration

	mu        sync.Mutex
	readSeq   map[readSite]int // per-(dataset, shard, node) attempt counter
	nodeTasks map[int]int

	injected atomic.Int64
}

type readSite struct {
	dataset string
	part    int
	node    int
}

// New compiles rules into a Plan. Multiple rules compose: a read
// attempt fails if any FailShardRead matches or the rate draw fires.
func New(seed uint64, rules ...Rule) *Plan {
	p := &Plan{
		seed:      seed,
		kills:     map[int]int{},
		delay:     map[int]time.Duration{},
		readSeq:   map[readSite]int{},
		nodeTasks: map[int]int{},
	}
	for _, r := range rules {
		switch r := r.(type) {
		case FailShardRead:
			p.fails = append(p.fails, r)
		case FailShardReadRate:
			if r.Rate > p.rate {
				p.rate = r.Rate
			}
		case KillNode:
			if cur, ok := p.kills[r.Node]; !ok || r.AfterTasks < cur {
				p.kills[r.Node] = r.AfterTasks
			}
		case DelaySplit:
			if r.Delay > p.delay[r.Split] {
				p.delay[r.Split] = r.Delay
			}
		}
	}
	return p
}

// DiskRead decides the fate of one shard-read attempt. It is wired
// into diskstore via Store.SetReadFault. Manifest partitions (datasets
// ending in ".manifest") are exempt: the manifest is the spill's commit
// record, and losing it is the crashed-spill case OpenDiskSource
// already refuses — chaos targets data shards.
func (p *Plan) DiskRead(dataset string, part, node int) error {
	if p == nil || strings.HasSuffix(dataset, ".manifest") {
		return nil
	}
	p.mu.Lock()
	site := readSite{dataset, part, node}
	attempt := p.readSeq[site]
	p.readSeq[site] = attempt + 1
	p.mu.Unlock()

	for _, f := range p.fails {
		if (f.Shard == Any || f.Shard == part) &&
			(f.Node == Any || f.Node == node) &&
			attempt < f.Attempts {
			p.injected.Add(1)
			return fmt.Errorf("%w: %s shard %d node %d attempt %d",
				ErrInjected, dataset, part, node, attempt)
		}
	}
	if p.rate > 0 {
		h := splitmix64(p.seed ^ hashString(dataset) ^
			uint64(part)*0x9e3779b97f4a7c15 ^
			uint64(node)*0xc2b2ae3d27d4eb4f ^
			uint64(attempt)*0x165667b19e3779f9)
		if float64(h>>11)/(1<<53) < p.rate {
			p.injected.Add(1)
			return fmt.Errorf("%w: %s shard %d node %d attempt %d (rate %.2f)",
				ErrInjected, dataset, part, node, attempt, p.rate)
		}
	}
	return nil
}

// NodeTask records that node is about to start a task and reports
// whether the node is still alive. Once a KillNode threshold passes,
// every subsequent call for that node returns ErrNodeLost.
func (p *Plan) NodeTask(node int) error {
	if p == nil {
		return nil
	}
	after, ok := p.kills[node]
	if !ok {
		return nil
	}
	p.mu.Lock()
	started := p.nodeTasks[node]
	dead := started >= after
	if !dead {
		p.nodeTasks[node] = started + 1
	}
	p.mu.Unlock()
	if dead {
		p.injected.Add(1)
		return fmt.Errorf("%w: node %d (after %d tasks)", ErrNodeLost, node, after)
	}
	return nil
}

// SplitDelay returns the injected straggler delay for split's first
// execution, and zero for every later (speculative or retried) run.
func (p *Plan) SplitDelay(split int) time.Duration {
	if p == nil {
		return 0
	}
	d, ok := p.delay[split]
	if !ok {
		return 0
	}
	p.mu.Lock()
	site := readSite{"\x00delay", split, 0}
	run := p.readSeq[site]
	p.readSeq[site] = run + 1
	p.mu.Unlock()
	if run > 0 {
		return 0
	}
	p.injected.Add(1)
	return d
}

// Injected reports how many faults the plan has fired so far — the
// ground truth chaos tests compare recovery counters against.
func (p *Plan) Injected() int64 {
	if p == nil {
		return 0
	}
	return p.injected.Load()
}

// Parse compiles a CLI/CI spec into a Plan. The spec is a
// comma-separated rule list:
//
//	rate=0.1          fail 10% of shard-read attempts
//	shard=3@2         fail shard 3's first 2 read attempts (shard=* for all)
//	kill=1@4          node 1 dies after starting 4 tasks
//	delay=2@50ms      split 2's first run is stretched by 50ms
//
// An empty spec returns a nil Plan (inject nothing).
func Parse(spec string, seed uint64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var rules []Rule
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: rule %q: want key=value", field)
		}
		switch key {
		case "rate":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || r < 0 || r > 1 {
				return nil, fmt.Errorf("faultinject: rate %q: want a probability in [0,1]", val)
			}
			rules = append(rules, FailShardReadRate{Rate: r})
		case "shard":
			at, n, err := parseAt(val)
			if err != nil {
				return nil, fmt.Errorf("faultinject: shard rule %q: %v (want shard=P@N)", val, err)
			}
			rules = append(rules, FailShardRead{Shard: at, Node: Any, Attempts: n})
		case "kill":
			at, n, err := parseAt(val)
			if err != nil || at == Any {
				return nil, fmt.Errorf("faultinject: kill rule %q: want kill=NODE@TASKS", val)
			}
			rules = append(rules, KillNode{Node: at, AfterTasks: n})
		case "delay":
			target, dur, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("faultinject: delay rule %q: want delay=SPLIT@DURATION", val)
			}
			split, err := strconv.Atoi(target)
			if err != nil {
				return nil, fmt.Errorf("faultinject: delay split %q: %v", target, err)
			}
			d, err := time.ParseDuration(dur)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faultinject: delay duration %q: want a positive duration", dur)
			}
			rules = append(rules, DelaySplit{Split: split, Delay: d})
		default:
			return nil, fmt.Errorf("faultinject: unknown rule %q (want rate/shard/kill/delay)", key)
		}
	}
	return New(seed, rules...), nil
}

// parseAt splits "P@N" into (P, N); P may be "*" for Any.
func parseAt(s string) (target, count int, err error) {
	ts, cs, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, errors.New("missing '@'")
	}
	if ts == "*" {
		target = Any
	} else if target, err = strconv.Atoi(ts); err != nil {
		return 0, 0, err
	}
	if count, err = strconv.Atoi(cs); err != nil {
		return 0, 0, err
	}
	if count < 0 {
		return 0, 0, errors.New("negative count")
	}
	return target, count, nil
}

// splitmix64 is the finalizer from Vigna's SplitMix64 — a cheap,
// well-mixed hash so rate draws are uniform and attempt-independent.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
