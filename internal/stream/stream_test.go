package stream

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPartitionCoversExactly(t *testing.T) {
	f := func(nRaw, pRaw uint16) bool {
		n := int(nRaw%5000) + 1
		parts := int(pRaw%64) + 1
		rs := Partition(n, parts)
		if len(rs) == 0 {
			return false
		}
		// Contiguous, non-empty, covering [0, n).
		if rs[0].Lo != 0 || rs[len(rs)-1].Hi != n {
			return false
		}
		for i, r := range rs {
			if r.Len() <= 0 {
				return false
			}
			if i > 0 && rs[i-1].Hi != r.Lo {
				return false
			}
		}
		// Balanced: sizes differ by at most 1.
		lo, hi := rs[0].Len(), rs[0].Len()
		for _, r := range rs {
			if r.Len() < lo {
				lo = r.Len()
			}
			if r.Len() > hi {
				hi = r.Len()
			}
		}
		return hi-lo <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPartitionEdge(t *testing.T) {
	if Partition(0, 4) != nil {
		t.Error("n=0 should return nil")
	}
	if Partition(4, 0) != nil {
		t.Error("parts=0 should return nil")
	}
	rs := Partition(3, 10)
	if len(rs) != 3 {
		t.Errorf("expected 3 singleton ranges, got %v", rs)
	}
}

func TestChunksCoverExactly(t *testing.T) {
	rs := Chunks(10, 3)
	want := []Range{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if len(rs) != len(want) {
		t.Fatalf("got %v", rs)
	}
	for i := range want {
		if rs[i] != want[i] {
			t.Fatalf("chunk %d = %v, want %v", i, rs[i], want[i])
		}
	}
	if Chunks(0, 3) != nil || Chunks(3, 0) != nil {
		t.Error("degenerate chunks should be nil")
	}
}

func TestForEachVisitsAllOnce(t *testing.T) {
	const n = 1000
	visited := make([]int32, n)
	err := ForEach(context.Background(), n, 8, func(_ context.Context, i int) error {
		atomic.AddInt32(&visited[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForEachPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(context.Background(), 1000, 4, func(_ context.Context, i int) error {
		if i == 137 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestForEachRespectsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 100000, 4, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if err == nil {
		t.Fatal("expected context error")
	}
	if int(ran.Load()) > 10000 {
		t.Fatalf("cancelled run still executed %d items", ran.Load())
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachRangeCoverage(t *testing.T) {
	const n = 777
	visited := make([]int32, n)
	err := ForEachRange(context.Background(), n, 5, func(_ context.Context, r Range, w int) error {
		for i := r.Lo; i < r.Hi; i++ {
			atomic.AddInt32(&visited[i], 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range visited {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestForEachRangeError(t *testing.T) {
	boom := errors.New("range boom")
	err := ForEachRange(context.Background(), 100, 4, func(_ context.Context, r Range, w int) error {
		if w == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelineProcessesAll(t *testing.T) {
	var sum atomic.Int64
	p := NewPipeline(4, 8,
		func(x int) (int64, error) { return int64(x) * 2, nil },
		func(y int64) error { sum.Add(y); return nil },
	)
	for i := 1; i <= 100; i++ {
		if err := p.Submit(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 10100 {
		t.Fatalf("sum = %d, want 10100", got)
	}
}

func TestPipelineTransformError(t *testing.T) {
	boom := errors.New("transform boom")
	p := NewPipeline(2, 4,
		func(x int) (int, error) {
			if x == 5 {
				return 0, boom
			}
			return x, nil
		},
		func(int) error { return nil },
	)
	for i := 0; i < 10; i++ {
		_ = p.Submit(i)
	}
	if err := p.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close err = %v, want boom", err)
	}
}

func TestPipelineConsumerError(t *testing.T) {
	boom := errors.New("consume boom")
	p := NewPipeline(2, 4,
		func(x int) (int, error) { return x, nil },
		func(y int) error {
			if y == 3 {
				return boom
			}
			return nil
		},
	)
	for i := 0; i < 10; i++ {
		_ = p.Submit(i)
	}
	if err := p.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close err = %v, want boom", err)
	}
}

func TestPipelineSubmitAfterClose(t *testing.T) {
	p := NewPipeline(1, 1,
		func(x int) (int, error) { return x, nil },
		func(int) error { return nil },
	)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(1); !errors.Is(err, ErrPipelineClosed) {
		t.Fatalf("err = %v, want ErrPipelineClosed", err)
	}
	// Idempotent close.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMapReduceLocalSum(t *testing.T) {
	type acc struct{ sum int64 }
	got, err := MapReduceLocal(context.Background(), 1000, 7,
		func() *acc { return &acc{} },
		func(_ context.Context, r Range, a *acc) error {
			for i := r.Lo; i < r.Hi; i++ {
				a.sum += int64(i)
			}
			return nil
		},
		func(into, from *acc) { into.sum += from.sum },
	)
	if err != nil {
		t.Fatal(err)
	}
	if got.sum != 499500 {
		t.Fatalf("sum = %d, want 499500", got.sum)
	}
}

func TestMapReduceLocalMatchesSequentialProperty(t *testing.T) {
	f := func(nRaw uint16, wRaw uint8) bool {
		n := int(nRaw % 2000)
		workers := int(wRaw%16) + 1
		type acc struct{ v uint64 }
		got, err := MapReduceLocal(context.Background(), n, workers,
			func() *acc { return &acc{} },
			func(_ context.Context, r Range, a *acc) error {
				for i := r.Lo; i < r.Hi; i++ {
					a.v += uint64(i)*2654435761 + 1
				}
				return nil
			},
			func(into, from *acc) { into.v += from.v },
		)
		if err != nil {
			return false
		}
		var want uint64
		for i := 0; i < n; i++ {
			want += uint64(i)*2654435761 + 1
		}
		return got.v == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMapReduceLocalError(t *testing.T) {
	boom := errors.New("mr boom")
	_, err := MapReduceLocal(context.Background(), 100, 4,
		func() *int { v := 0; return &v },
		func(_ context.Context, r Range, a *int) error { return boom },
		func(into, from *int) {},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestProgress(t *testing.T) {
	p := NewProgress(100)
	p.Add(25)
	if p.Done() != 25 || p.Total() != 100 {
		t.Fatal("counters wrong")
	}
	if s := p.String(); s != "25/100 (25.0%)" {
		t.Fatalf("String = %q", s)
	}
	free := NewProgress(0)
	free.Add(3)
	if s := free.String(); s != "3" {
		t.Fatalf("String = %q", s)
	}
}
