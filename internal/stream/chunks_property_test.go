package stream

import (
	"testing"
	"testing/quick"
)

// Property: Chunks, like Partition, yields no empty ranges and covers
// [0, n) exactly — and additionally every range except the last has
// exactly chunk items. This is the invariant the streaming batch loops
// (aggregate engines, YELT scans) rely on for lossless coverage.
func TestChunksInvariantsProperty(t *testing.T) {
	prop := func(nRaw, cRaw uint16) bool {
		n := int(nRaw%5000) + 1
		chunk := int(cRaw%600) + 1
		rs := Chunks(n, chunk)
		if len(rs) != (n+chunk-1)/chunk {
			return false
		}
		prevHi := 0
		for i, r := range rs {
			if r.Len() <= 0 || r.Lo != prevHi {
				return false // empty range or gap
			}
			if r.Len() > chunk {
				return false
			}
			if i < len(rs)-1 && r.Len() != chunk {
				return false // only the tail may be short
			}
			prevHi = r.Hi
		}
		return prevHi == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
