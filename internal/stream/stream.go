// Package stream provides the parallel streaming substrate for stage 1
// of the pipeline. The paper's stage-1 data challenge (§II) is that
// "data needs to be organised in a small number of very large tables
// and streamed by independent processes, further to which the results
// need to be aggregated" — this package supplies exactly that pattern:
// range partitioning, bounded worker pools with error propagation and
// cancellation, and ordered fan-in of per-worker partial results.
package stream

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Range is a half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition splits [0, n) into at most parts contiguous ranges of
// near-equal size. It never returns empty ranges; fewer than parts
// ranges are returned when n < parts.
func Partition(n, parts int) []Range {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	base := n / parts
	rem := n % parts
	lo := 0
	for i := 0; i < parts; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out = append(out, Range{lo, lo + sz})
		lo += sz
	}
	return out
}

// Chunks splits [0, n) into consecutive ranges of size at most chunk.
// It is the unit of streaming I/O throughout the repo: YELT scans,
// memstore scans and mapreduce splits all iterate chunk-wise.
func Chunks(n, chunk int) []Range {
	if n <= 0 || chunk <= 0 {
		return nil
	}
	out := make([]Range, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, Range{lo, hi})
	}
	return out
}

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines.
// The first error cancels outstanding work (fn should poll ctx for
// long-running items); all workers are joined before return.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var next int64 = -1
	var firstErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				select {
				case <-ctx.Done():
					return
				default:
				}
				if err := fn(ctx, i); err != nil {
					firstErr.CompareAndSwap(nil, err)
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return ctx.Err()
}

// ForEachRange runs fn over a static partition of [0, n) into exactly
// min(workers, n) contiguous ranges, one goroutine per range. Use this
// instead of ForEach when per-item dispatch would dominate (the
// aggregate engines process millions of trials; work-stealing per trial
// would spend more time on atomics than on losses).
func ForEachRange(ctx context.Context, n, workers int, fn func(ctx context.Context, r Range, worker int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ranges := Partition(n, workers)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var firstErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for w, r := range ranges {
		go func(w int, r Range) {
			defer wg.Done()
			if err := fn(ctx, r, w); err != nil {
				firstErr.CompareAndSwap(nil, err)
				cancel()
			}
		}(w, r)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return ctx.Err()
}

// ErrPipelineClosed is returned by Pipeline.Submit after Close.
var ErrPipelineClosed = errors.New("stream: pipeline closed")

// Pipeline is a bounded produce/transform/consume pipeline with
// backpressure: Submit blocks when workers are saturated, so a fast
// producer (e.g. an event-catalogue reader) cannot flood memory — the
// in-memory footprint is bounded by queue depth, not table size.
type Pipeline[In, Out any] struct {
	in      chan In
	out     chan Out
	done    chan struct{}
	err     atomic.Value
	wg      sync.WaitGroup
	closed  atomic.Bool
	drainWG sync.WaitGroup
}

// NewPipeline starts workers goroutines applying transform to submitted
// items, and one consumer goroutine applying consume to each result in
// arbitrary order. depth bounds both queues.
func NewPipeline[In, Out any](workers, depth int, transform func(In) (Out, error), consume func(Out) error) *Pipeline[In, Out] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = workers * 2
	}
	p := &Pipeline[In, Out]{
		in:   make(chan In, depth),
		out:  make(chan Out, depth),
		done: make(chan struct{}),
	}
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer p.wg.Done()
			for item := range p.in {
				o, err := transform(item)
				if err != nil {
					p.err.CompareAndSwap(nil, err)
					continue
				}
				select {
				case p.out <- o:
				case <-p.done:
					return
				}
			}
		}()
	}
	p.drainWG.Add(1)
	go func() {
		defer p.drainWG.Done()
		for o := range p.out {
			if err := consume(o); err != nil {
				p.err.CompareAndSwap(nil, err)
			}
		}
	}()
	return p
}

// Submit enqueues one item, blocking when the pipeline is saturated.
func (p *Pipeline[In, Out]) Submit(item In) error {
	if p.closed.Load() {
		return ErrPipelineClosed
	}
	if e := p.err.Load(); e != nil {
		return e.(error)
	}
	p.in <- item
	return nil
}

// Close drains the pipeline and returns the first error encountered by
// any transform or the consumer. Close is idempotent.
func (p *Pipeline[In, Out]) Close() error {
	if p.closed.Swap(true) {
		if e := p.err.Load(); e != nil {
			return e.(error)
		}
		return nil
	}
	close(p.in)
	p.wg.Wait()
	close(p.out)
	p.drainWG.Wait()
	close(p.done)
	if e := p.err.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// MapReduceLocal computes reduce over fn(i) for i in [0, n) with one
// partial accumulator per worker and a final sequential merge — the
// "streamed by independent processes, then aggregated" shape from the
// paper's stage 1, in process-local form.
func MapReduceLocal[T any](ctx context.Context, n, workers int, zero func() T, fn func(ctx context.Context, r Range, acc T) error, merge func(into, from T)) (T, error) {
	var result T
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ranges := Partition(n, workers)
	accs := make([]T, len(ranges))
	for i := range accs {
		accs[i] = zero()
	}
	err := ForEachRange(ctx, n, workers, func(ctx context.Context, r Range, w int) error {
		return fn(ctx, r, accs[w])
	})
	result = zero()
	if err != nil {
		return result, err
	}
	for _, a := range accs {
		merge(result, a)
	}
	return result, nil
}

// Progress is a lightweight atomic progress counter that long-running
// engines expose so CLIs can report throughput without locks.
type Progress struct {
	done  atomic.Int64
	total int64
}

// NewProgress returns a counter expecting total units of work.
func NewProgress(total int64) *Progress { return &Progress{total: total} }

// Add records n completed units.
func (p *Progress) Add(n int64) { p.done.Add(n) }

// Done returns completed units.
func (p *Progress) Done() int64 { return p.done.Load() }

// Total returns the expected total.
func (p *Progress) Total() int64 { return p.total }

// String formats as "done/total (pct%)".
func (p *Progress) String() string {
	d := p.Done()
	if p.total <= 0 {
		return fmt.Sprintf("%d", d)
	}
	return fmt.Sprintf("%d/%d (%.1f%%)", d, p.total, 100*float64(d)/float64(p.total))
}
