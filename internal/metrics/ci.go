package metrics

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/rng"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point    float64
	Lo, Hi   float64
	Level    float64
	Resample int
}

// ReturnPeriodCI estimates the sampling uncertainty of a
// return-period loss by bootstrap over trials. Tail quantiles from
// finite trial counts are noisy — the reason the paper pushes trial
// counts toward a million — and this quantifies exactly how noisy:
// expect the 100-year interval to tighten roughly with √trials.
func ReturnPeriodCI(losses []float64, returnPeriod, level float64, resamples int, seed uint64) (CI, error) {
	if len(losses) == 0 {
		return CI{}, ErrNoData
	}
	if returnPeriod <= 1 {
		return CI{}, fmt.Errorf("metrics: return period %g must exceed 1", returnPeriod)
	}
	if resamples <= 0 {
		resamples = 500
	}
	q := 1 - 1/returnPeriod
	curve, err := NewEPCurve(losses)
	if err != nil {
		return CI{}, err
	}
	point := curve.LossAt(1 / returnPeriod)

	st := rng.NewStream(seed, 0xC1)
	lo, hi, err := mathx.BootstrapCI(losses, level, resamples, st.Uint64, func(xs []float64) float64 {
		v, err := mathx.Quantile(xs, q)
		if err != nil {
			return 0
		}
		return v
	})
	if err != nil {
		return CI{}, err
	}
	return CI{Point: point, Lo: lo, Hi: hi, Level: level, Resample: resamples}, nil
}

// TVaRCI bootstraps the sampling uncertainty of TVaR at confidence p.
func TVaRCI(losses []float64, p, level float64, resamples int, seed uint64) (CI, error) {
	if len(losses) == 0 {
		return CI{}, ErrNoData
	}
	if resamples <= 0 {
		resamples = 500
	}
	point, err := TVaR(losses, p)
	if err != nil {
		return CI{}, err
	}
	st := rng.NewStream(seed, 0xC2)
	lo, hi, err := mathx.BootstrapCI(losses, level, resamples, st.Uint64, func(xs []float64) float64 {
		v, err := TVaR(xs, p)
		if err != nil {
			return 0
		}
		return v
	})
	if err != nil {
		return CI{}, err
	}
	return CI{Point: point, Lo: lo, Hi: hi, Level: level, Resample: resamples}, nil
}
