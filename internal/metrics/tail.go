package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrTailDegenerate is returned when the tail cannot support a Hill
// fit (too few positive exceedances or a flat tail).
var ErrTailDegenerate = errors.New("metrics: degenerate tail")

// HillTailIndex estimates the Pareto tail index α from the top k order
// statistics via the Hill estimator:
//
//	1/α = (1/k) Σ_{i=1..k} ln(x_{(n-i+1)} / x_{(n-k)})
//
// Catastrophe loss distributions are heavy-tailed by construction
// (§II's motivation for million-trial YLTs); α quantifies how heavy.
// Smaller α = heavier tail; α < 1 means an infinite-mean regime.
func HillTailIndex(losses []float64, k int) (float64, error) {
	c, err := NewEPCurve(losses)
	if err != nil {
		return 0, err
	}
	return c.hill(k)
}

func (c *EPCurve) hill(k int) (float64, error) {
	n := len(c.sorted)
	if k < 2 || k >= n {
		return 0, fmt.Errorf("metrics: Hill k=%d must be in [2, %d)", k, n)
	}
	threshold := c.sorted[n-1-k]
	if threshold <= 0 {
		return 0, fmt.Errorf("%w: threshold %g not positive", ErrTailDegenerate, threshold)
	}
	var sum float64
	for i := n - k; i < n; i++ {
		sum += math.Log(c.sorted[i] / threshold)
	}
	if sum <= 0 {
		return 0, fmt.Errorf("%w: flat upper tail", ErrTailDegenerate)
	}
	return float64(k) / sum, nil
}

// ExtrapolatedLossAtReturnPeriod extends the empirical EP curve beyond
// the resolution of the trial count by fitting a Pareto tail to the
// top k observations: for exceedance probability p below k/n,
//
//	loss(p) = u · ((k/n)/p)^(1/α),  u = x_{(n-k)}.
//
// Return periods resolvable empirically (rp <= trials) fall back to
// the empirical quantile. This is how finite simulations quote
// 10,000-year losses without 10,000+ years of trials — with the caveat
// (quantified by ReturnPeriodCI) that extrapolation inherits the
// fit's uncertainty.
func (c *EPCurve) ExtrapolatedLossAtReturnPeriod(rp float64, k int) (float64, error) {
	if rp <= 1 {
		return 0, fmt.Errorf("metrics: return period %g must exceed 1", rp)
	}
	n := float64(len(c.sorted))
	p := 1 / rp
	if p >= float64(k)/n {
		// Inside the empirical range of the fitted tail: stay empirical.
		return c.LossAt(p), nil
	}
	alpha, err := c.hill(k)
	if err != nil {
		return 0, err
	}
	u := c.sorted[len(c.sorted)-1-k]
	return u * math.Pow(float64(k)/n/p, 1/alpha), nil
}
