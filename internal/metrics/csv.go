package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteSummaryCSV emits the summary as a two-section CSV: scalar
// metrics, then the return-period table — the export format analysts
// pull into spreadsheets and regulators ingest.
func WriteSummaryCSV(w io.Writer, s *Summary) error {
	cw := csv.NewWriter(w)
	rows := [][]string{
		{"metric", "value"},
		{"name", s.Name},
		{"trials", strconv.Itoa(s.Trials)},
		{"aal", formatF(s.AAL)},
		{"agg_stddev", formatF(s.AggStdDev)},
		{"var_99", formatF(s.VaR99)},
		{"tvar_99", formatF(s.TVaR99)},
		{"var_995", formatF(s.VaR995)},
		{"tvar_995", formatF(s.TVaR995)},
	}
	for _, r := range rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("metrics: csv: %w", err)
		}
	}
	if err := cw.Write([]string{"return_period_years", "oep", "aep"}); err != nil {
		return fmt.Errorf("metrics: csv: %w", err)
	}
	for _, row := range s.ReturnRows {
		rec := []string{
			formatF(row.ReturnPeriod), formatF(row.OEP), formatF(row.AEP),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("metrics: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteEPCurveCSV emits the full empirical exceedance curve (one row
// per distinct probability step) for plotting.
func WriteEPCurveCSV(w io.Writer, c *EPCurve, points int) error {
	if points <= 1 {
		points = 100
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"exceedance_prob", "loss"}); err != nil {
		return fmt.Errorf("metrics: csv: %w", err)
	}
	for i := 0; i < points; i++ {
		// Log-spaced probabilities from 0.5 down to 1/trials.
		frac := float64(i) / float64(points-1)
		p := 0.5 * pow(2.0/float64(c.Trials()), frac)
		rec := []string{formatF(p), formatF(c.LossAt(p))}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("metrics: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

func pow(base, exp float64) float64 {
	if base <= 0 {
		return 0
	}
	return math.Pow(base, exp)
}
