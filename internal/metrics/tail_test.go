package metrics

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func paretoSample(n int, alpha float64, seed uint64) []float64 {
	st := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = st.Pareto(1000, alpha)
	}
	return xs
}

func TestHillRecoversAlpha(t *testing.T) {
	for _, alpha := range []float64{1.5, 2.5, 4.0} {
		xs := paretoSample(100_000, alpha, 7)
		got, err := HillTailIndex(xs, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-alpha)/alpha > 0.08 {
			t.Errorf("alpha = %v, Hill = %v", alpha, got)
		}
	}
}

func TestHillValidation(t *testing.T) {
	if _, err := HillTailIndex(nil, 10); !errors.Is(err, ErrNoData) {
		t.Fatal("empty should error")
	}
	xs := paretoSample(100, 2, 1)
	if _, err := HillTailIndex(xs, 1); err == nil {
		t.Fatal("k < 2 should error")
	}
	if _, err := HillTailIndex(xs, 100); err == nil {
		t.Fatal("k >= n should error")
	}
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = 5
	}
	if _, err := HillTailIndex(flat, 10); !errors.Is(err, ErrTailDegenerate) {
		t.Fatal("flat tail should be degenerate")
	}
	zeros := make([]float64, 100)
	if _, err := HillTailIndex(zeros, 10); !errors.Is(err, ErrTailDegenerate) {
		t.Fatal("zero threshold should be degenerate")
	}
}

func TestExtrapolationMatchesTheory(t *testing.T) {
	alpha := 2.0
	xs := paretoSample(50_000, alpha, 9)
	c, err := NewEPCurve(xs)
	if err != nil {
		t.Fatal(err)
	}
	// True 500,000-year loss for Pareto(1000, 2): 1000·(5e5)^(1/2).
	rp := 500_000.0
	want := 1000 * math.Pow(rp, 1/alpha)
	got, err := c.ExtrapolatedLossAtReturnPeriod(rp, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.25 {
		t.Fatalf("extrapolated %v, theory %v", got, want)
	}
	// Beyond-sample extrapolation must exceed the observed maximum for
	// return periods far past the sample size.
	maxObs := c.sorted[len(c.sorted)-1]
	if got < maxObs {
		t.Fatalf("500k-year loss %v below observed max %v", got, maxObs)
	}
}

func TestExtrapolationFallsBackEmpirically(t *testing.T) {
	xs := paretoSample(10_000, 2, 11)
	c, err := NewEPCurve(xs)
	if err != nil {
		t.Fatal(err)
	}
	// rp=100 → p=0.01 ≥ k/n=0.05? With k=500, k/n = 0.05 > 0.01 is
	// false... choose rp=10 → p=0.1 > 0.05: empirical path.
	emp, err := c.ExtrapolatedLossAtReturnPeriod(10, 500)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.LossAtReturnPeriod(10)
	if err != nil {
		t.Fatal(err)
	}
	if emp != direct {
		t.Fatalf("inside empirical range should match: %v vs %v", emp, direct)
	}
	if _, err := c.ExtrapolatedLossAtReturnPeriod(0.5, 500); err == nil {
		t.Fatal("rp <= 1 should error")
	}
}

func TestExtrapolationMonotoneInRP(t *testing.T) {
	xs := paretoSample(20_000, 2.2, 13)
	c, err := NewEPCurve(xs)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, rp := range []float64{100, 1_000, 50_000, 1_000_000} {
		got, err := c.ExtrapolatedLossAtReturnPeriod(rp, 800)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Fatalf("extrapolated losses must grow with rp: %v then %v", prev, got)
		}
		prev = got
	}
}
