// Package metrics derives portfolio risk measures from Year-Loss
// Tables: "From a YLT, a reinsurer can derive important portfolio risk
// metrics such as the Probable Maximum Loss (PML) and the Tail Value
// at Risk (TVAR) which are used for both internal risk management and
// reporting to regulators and rating agencies" (§II).
//
// Conventions: exceedance-probability curves come in occurrence form
// (OEP, from per-trial maximum occurrence losses) and aggregate form
// (AEP, from per-trial annual losses). PML at a return period R is the
// OEP loss quantile with exceedance probability 1/R; VaR/TVaR are
// quantile and tail-conditional mean of the aggregate distribution.
package metrics

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/mathx"
	"repro/internal/ylt"
)

// ErrNoData is returned when a metric is requested over no trials.
var ErrNoData = errors.New("metrics: no data")

// ErrNoOccurrence is returned for occurrence-basis metrics on a YLT
// without occurrence detail.
var ErrNoOccurrence = errors.New("metrics: YLT has no occurrence data")

// StandardReturnPeriods are the rows reinsurers conventionally report.
var StandardReturnPeriods = []float64{2, 5, 10, 25, 50, 100, 250, 500, 1000}

// EPCurve is an exceedance-probability curve built from per-trial
// losses. It answers both directions: loss at a given exceedance
// probability and exceedance probability of a given loss.
type EPCurve struct {
	sorted []float64 // ascending
}

// NewEPCurve builds a curve from per-trial losses (copied, sorted).
func NewEPCurve(losses []float64) (*EPCurve, error) {
	if len(losses) == 0 {
		return nil, ErrNoData
	}
	s := make([]float64, len(losses))
	copy(s, losses)
	sort.Float64s(s)
	return &EPCurve{sorted: s}, nil
}

// Trials returns the number of trials behind the curve.
func (c *EPCurve) Trials() int { return len(c.sorted) }

// LossAt returns the loss with exceedance probability p — the
// (1-p)-quantile of the trial losses.
func (c *EPCurve) LossAt(p float64) float64 {
	return mathx.QuantileSorted(c.sorted, 1-mathx.Clamp(p, 0, 1))
}

// LossAtReturnPeriod returns the loss exceeded on average once every
// rp years. rp must be > 1 trial period.
func (c *EPCurve) LossAtReturnPeriod(rp float64) (float64, error) {
	if rp <= 1 {
		return 0, fmt.Errorf("metrics: return period %g must exceed 1", rp)
	}
	return c.LossAt(1 / rp), nil
}

// ExceedanceProb returns the empirical P(loss > x).
func (c *EPCurve) ExceedanceProb(x float64) float64 {
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(len(c.sorted)-i) / float64(len(c.sorted))
}

// VaR returns the p-quantile of per-trial losses (value at risk at
// confidence p, e.g. 0.99).
func VaR(losses []float64, p float64) (float64, error) {
	if len(losses) == 0 {
		return 0, ErrNoData
	}
	return mathx.Quantile(losses, p)
}

// TVaR returns the tail value at risk at confidence p: the mean of
// losses at or above the p-quantile. TVaR(p) >= VaR(p) always.
func TVaR(losses []float64, p float64) (float64, error) {
	v, err := VaR(losses, p)
	if err != nil {
		return 0, err
	}
	var sum float64
	var n int
	for _, l := range losses {
		if l >= v {
			sum += l
			n++
		}
	}
	if n == 0 {
		return v, nil
	}
	return sum / float64(n), nil
}

// Summary is the standard one-portfolio risk report.
type Summary struct {
	Name       string
	Trials     int
	AAL        float64 // average annual loss
	AggStdDev  float64
	VaR99      float64
	TVaR99     float64
	VaR995     float64
	TVaR995    float64
	ReturnRows []ReturnRow
}

// ReturnRow is one line of the return-period table.
type ReturnRow struct {
	ReturnPeriod float64
	OEP          float64 // occurrence exceedance (PML) — 0 if unavailable
	AEP          float64 // aggregate exceedance
}

// Summarize computes the standard report from a YLT. OEP columns are
// filled only when the table has occurrence detail.
func Summarize(t *ylt.Table) (*Summary, error) {
	if t.NumTrials() == 0 {
		return nil, ErrNoData
	}
	aep, err := NewEPCurve(t.Agg)
	if err != nil {
		return nil, err
	}
	var oep *EPCurve
	if t.HasOccurrence() {
		if oep, err = NewEPCurve(t.OccMax); err != nil {
			return nil, err
		}
	}
	s := &Summary{
		Name:      t.Name,
		Trials:    t.NumTrials(),
		AAL:       t.Mean(),
		AggStdDev: t.StdDev(),
	}
	if s.VaR99, err = VaR(t.Agg, 0.99); err != nil {
		return nil, err
	}
	if s.TVaR99, err = TVaR(t.Agg, 0.99); err != nil {
		return nil, err
	}
	if s.VaR995, err = VaR(t.Agg, 0.995); err != nil {
		return nil, err
	}
	if s.TVaR995, err = TVaR(t.Agg, 0.995); err != nil {
		return nil, err
	}
	for _, rp := range StandardReturnPeriods {
		if float64(s.Trials) < rp {
			continue // not enough trials to resolve this tail
		}
		row := ReturnRow{ReturnPeriod: rp}
		if row.AEP, err = aep.LossAtReturnPeriod(rp); err != nil {
			return nil, err
		}
		if oep != nil {
			if row.OEP, err = oep.LossAtReturnPeriod(rp); err != nil {
				return nil, err
			}
		}
		s.ReturnRows = append(s.ReturnRows, row)
	}
	return s, nil
}

// PML returns the probable maximum loss at a return period — the
// occurrence-basis exceedance loss, per Woo's definition the paper
// cites [8].
func PML(t *ylt.Table, returnPeriod float64) (float64, error) {
	if !t.HasOccurrence() {
		return 0, ErrNoOccurrence
	}
	c, err := NewEPCurve(t.OccMax)
	if err != nil {
		return 0, err
	}
	return c.LossAtReturnPeriod(returnPeriod)
}

// String renders the summary as the fixed-width report the CLI tools
// print.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Portfolio: %s  (%d trials)\n", s.Name, s.Trials)
	fmt.Fprintf(&b, "  AAL:        %16.2f\n", s.AAL)
	fmt.Fprintf(&b, "  Std dev:    %16.2f\n", s.AggStdDev)
	fmt.Fprintf(&b, "  VaR 99%%:    %16.2f   TVaR 99%%:  %16.2f\n", s.VaR99, s.TVaR99)
	fmt.Fprintf(&b, "  VaR 99.5%%:  %16.2f   TVaR 99.5%%:%16.2f\n", s.VaR995, s.TVaR995)
	if len(s.ReturnRows) > 0 {
		fmt.Fprintf(&b, "  %10s %18s %18s\n", "RP (yr)", "OEP (PML)", "AEP")
		for _, r := range s.ReturnRows {
			fmt.Fprintf(&b, "  %10.0f %18.2f %18.2f\n", r.ReturnPeriod, r.OEP, r.AEP)
		}
	}
	return b.String()
}
