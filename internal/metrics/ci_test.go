package metrics

import (
	"errors"
	"testing"

	"repro/internal/rng"
)

func heavyLosses(n int, seed uint64) []float64 {
	st := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		if st.Float64() < 0.4 {
			xs[i] = st.Pareto(1e5, 2.0)
		}
	}
	return xs
}

func TestReturnPeriodCIBracketsPoint(t *testing.T) {
	losses := heavyLosses(20_000, 5)
	ci, err := ReturnPeriodCI(losses, 100, 0.90, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Fatalf("CI [%v, %v] does not bracket point %v", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Lo >= ci.Hi {
		t.Fatal("degenerate interval")
	}
}

func TestReturnPeriodCITightensWithTrials(t *testing.T) {
	small, err := ReturnPeriodCI(heavyLosses(2_000, 11), 50, 0.90, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ReturnPeriodCI(heavyLosses(50_000, 11), 50, 0.90, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	relSmall := (small.Hi - small.Lo) / small.Point
	relBig := (big.Hi - big.Lo) / big.Point
	if relBig >= relSmall {
		t.Fatalf("more trials should tighten the interval: %v vs %v", relBig, relSmall)
	}
}

func TestReturnPeriodCIDeterministic(t *testing.T) {
	losses := heavyLosses(5_000, 3)
	a, err := ReturnPeriodCI(losses, 100, 0.95, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReturnPeriodCI(losses, 100, 0.95, 200, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("bootstrap not reproducible from seed")
	}
}

func TestReturnPeriodCIValidation(t *testing.T) {
	if _, err := ReturnPeriodCI(nil, 100, 0.9, 100, 1); !errors.Is(err, ErrNoData) {
		t.Fatal("empty input should error")
	}
	if _, err := ReturnPeriodCI([]float64{1, 2}, 0.5, 0.9, 100, 1); err == nil {
		t.Fatal("rp <= 1 should error")
	}
}

func TestTVaRCI(t *testing.T) {
	losses := heavyLosses(20_000, 9)
	ci, err := TVaRCI(losses, 0.99, 0.90, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Fatalf("CI [%v, %v] does not bracket point %v", ci.Lo, ci.Hi, ci.Point)
	}
	if _, err := TVaRCI(nil, 0.99, 0.9, 100, 1); !errors.Is(err, ErrNoData) {
		t.Fatal("empty input should error")
	}
	// Default resamples path.
	if _, err := TVaRCI(losses[:500], 0.95, 0.9, 0, 1); err != nil {
		t.Fatal(err)
	}
}
