package metrics

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

func TestWriteSummaryCSV(t *testing.T) {
	tbl := buildYLT(5000)
	s, err := Summarize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSummaryCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"aal", "tvar_99", "return_period_years"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
	// Parse back: the header section has 2 columns, the RP section 3;
	// use FieldsPerRecord=-1 and count RP rows.
	r := csv.NewReader(strings.NewReader(out))
	r.FieldsPerRecord = -1
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	var rpRows int
	var inRP bool
	for _, rec := range recs {
		if rec[0] == "return_period_years" {
			inRP = true
			continue
		}
		if inRP {
			if len(rec) != 3 {
				t.Fatalf("RP row has %d fields: %v", len(rec), rec)
			}
			rpRows++
			if _, err := strconv.ParseFloat(rec[1], 64); err != nil {
				t.Fatalf("OEP not numeric: %v", rec)
			}
		}
	}
	if rpRows != len(s.ReturnRows) {
		t.Fatalf("CSV has %d RP rows, summary %d", rpRows, len(s.ReturnRows))
	}
}

func TestWriteEPCurveCSV(t *testing.T) {
	losses := make([]float64, 10_000)
	for i := range losses {
		losses[i] = float64(i)
	}
	c, err := NewEPCurve(losses)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEPCurveCSV(&buf, c, 50); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 51 { // header + 50 points
		t.Fatalf("rows = %d", len(recs))
	}
	// Probabilities strictly decreasing, losses non-decreasing.
	var prevP, prevL float64
	for i, rec := range recs[1:] {
		p, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			t.Fatal(err)
		}
		l, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if p >= prevP {
				t.Fatalf("probabilities should decrease: %v then %v", prevP, p)
			}
			if l < prevL {
				t.Fatalf("losses should not decrease as p falls: %v then %v", prevL, l)
			}
		}
		prevP, prevL = p, l
	}
	// Default points path.
	var buf2 bytes.Buffer
	if err := WriteEPCurveCSV(&buf2, c, 0); err != nil {
		t.Fatal(err)
	}
}
