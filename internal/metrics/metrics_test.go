package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ylt"
)

func TestEPCurveKnown(t *testing.T) {
	// 100 trials with losses 1..100: the 100-year loss is the max.
	losses := make([]float64, 100)
	for i := range losses {
		losses[i] = float64(i + 1)
	}
	c, err := NewEPCurve(losses)
	if err != nil {
		t.Fatal(err)
	}
	if c.Trials() != 100 {
		t.Fatalf("Trials = %d", c.Trials())
	}
	l100, err := c.LossAtReturnPeriod(100)
	if err != nil {
		t.Fatal(err)
	}
	// 1-1/100 quantile of 1..100 (type-7) = 99.01
	if math.Abs(l100-99.01) > 0.011 {
		t.Fatalf("100-year loss = %v", l100)
	}
	l2, err := c.LossAtReturnPeriod(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-50.5) > 0.01 {
		t.Fatalf("2-year loss = %v, want ~50.5", l2)
	}
}

func TestEPCurveErrors(t *testing.T) {
	if _, err := NewEPCurve(nil); !errors.Is(err, ErrNoData) {
		t.Fatal("empty curve should error")
	}
	c, _ := NewEPCurve([]float64{1, 2, 3})
	if _, err := c.LossAtReturnPeriod(0.5); err == nil {
		t.Fatal("rp <= 1 should error")
	}
}

func TestExceedanceProb(t *testing.T) {
	c, _ := NewEPCurve([]float64{10, 20, 30, 40})
	cases := []struct{ x, want float64 }{
		{5, 1}, {10, 0.75}, {25, 0.5}, {40, 0}, {100, 0},
	}
	for _, cse := range cases {
		if got := c.ExceedanceProb(cse.x); got != cse.want {
			t.Errorf("ExceedanceProb(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestExceedanceInverseProperty(t *testing.T) {
	// For any p in (0,1), P(L > LossAt(p)) <= p (empirical inverse).
	losses := make([]float64, 500)
	s := uint64(3)
	for i := range losses {
		s = s*6364136223846793005 + 1442695040888963407
		losses[i] = float64(s % 100000)
	}
	c, _ := NewEPCurve(losses)
	// Interpolated quantiles sit between order statistics, so the
	// empirical exceedance can overshoot p by up to one trial weight.
	slack := 1.0 / float64(c.Trials())
	f := func(pRaw uint16) bool {
		p := (float64(pRaw%998) + 1) / 1000
		return c.ExceedanceProb(c.LossAt(p)) <= p+slack
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVaRTVaR(t *testing.T) {
	losses := make([]float64, 1000)
	for i := range losses {
		losses[i] = float64(i)
	}
	v, err := VaR(losses, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-989.01) > 0.02 {
		t.Fatalf("VaR99 = %v", v)
	}
	tv, err := TVaR(losses, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// Mean of 990..999 = 994.5 (losses >= 989.01)
	if math.Abs(tv-994.5) > 0.5 {
		t.Fatalf("TVaR99 = %v", tv)
	}
	if tv < v {
		t.Fatal("TVaR must be >= VaR")
	}
	if _, err := VaR(nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Fatal("VaR of empty should error")
	}
	if _, err := TVaR(nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Fatal("TVaR of empty should error")
	}
}

func TestTVaRGeqVaRProperty(t *testing.T) {
	f := func(raw []uint32, pRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		losses := make([]float64, len(raw))
		for i, v := range raw {
			losses[i] = float64(v % 1_000_000)
		}
		p := float64(pRaw%999) / 1000
		v, err1 := VaR(losses, p)
		tv, err2 := TVaR(losses, p)
		return err1 == nil && err2 == nil && tv >= v-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTVaRDegenerate(t *testing.T) {
	// All losses equal: TVaR == VaR == the value.
	losses := []float64{7, 7, 7, 7}
	tv, err := TVaR(losses, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if tv != 7 {
		t.Fatalf("TVaR = %v", tv)
	}
}

func buildYLT(n int) *ylt.Table {
	t := ylt.New("test", n)
	s := uint64(11)
	for i := range t.Agg {
		s = s*6364136223846793005 + 1442695040888963407
		t.Agg[i] = float64(s % 1_000_000)
		t.OccMax[i] = t.Agg[i] * 0.6
	}
	return t
}

func TestSummarize(t *testing.T) {
	tbl := buildYLT(10_000)
	s, err := Summarize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if s.Trials != 10_000 || s.Name != "test" {
		t.Fatal("header wrong")
	}
	if s.TVaR99 < s.VaR99 || s.TVaR995 < s.VaR995 {
		t.Fatal("tail metrics inverted")
	}
	if s.VaR995 < s.VaR99 {
		t.Fatal("VaR should grow with confidence")
	}
	// 10k trials resolve up to RP 1000: all 9 standard rows.
	if len(s.ReturnRows) != len(StandardReturnPeriods) {
		t.Fatalf("return rows = %d", len(s.ReturnRows))
	}
	prev := ReturnRow{}
	for _, r := range s.ReturnRows {
		if r.AEP < prev.AEP || r.OEP < prev.OEP {
			t.Fatal("EP losses must grow with return period")
		}
		if r.OEP > r.AEP+1e-9 {
			t.Fatal("OEP cannot exceed AEP (occ max <= annual agg)")
		}
		prev = r
	}
	if !strings.Contains(s.String(), "AAL") || !strings.Contains(s.String(), "RP") {
		t.Fatal("String() should render report")
	}
}

func TestSummarizeSkipsUnresolvedTails(t *testing.T) {
	tbl := buildYLT(100)
	s, err := Summarize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.ReturnRows {
		if r.ReturnPeriod > 100 {
			t.Fatalf("RP %v not resolvable with 100 trials", r.ReturnPeriod)
		}
	}
}

func TestSummarizeAggOnly(t *testing.T) {
	tbl := ylt.NewAggOnly("inv", 1000)
	for i := range tbl.Agg {
		tbl.Agg[i] = float64(i)
	}
	s, err := Summarize(tbl)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.ReturnRows {
		if r.OEP != 0 {
			t.Fatal("agg-only table should have zero OEP columns")
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(ylt.New("e", 0)); !errors.Is(err, ErrNoData) {
		t.Fatal("empty YLT should error")
	}
}

func TestPML(t *testing.T) {
	tbl := buildYLT(5000)
	p, err := PML(tbl, 250)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Fatal("PML should be positive")
	}
	agg := ylt.NewAggOnly("x", 10)
	if _, err := PML(agg, 100); !errors.Is(err, ErrNoOccurrence) {
		t.Fatalf("err = %v, want ErrNoOccurrence", err)
	}
	empty := &ylt.Table{Name: "z", Agg: []float64{}, OccMax: []float64{}}
	if _, err := PML(empty, 100); err == nil {
		t.Fatal("empty occurrence data should error")
	}
}
