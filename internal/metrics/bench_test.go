package metrics

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/ylt"
)

func benchLosses(n int) []float64 {
	st := rng.New(1)
	xs := make([]float64, n)
	for i := range xs {
		if st.Float64() < 0.4 {
			xs[i] = st.Pareto(1e5, 2.0)
		}
	}
	return xs
}

func BenchmarkEPCurveBuild(b *testing.B) {
	losses := benchLosses(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewEPCurve(losses); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTVaR(b *testing.B) {
	losses := benchLosses(1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TVaR(losses, 0.99); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSummarize(b *testing.B) {
	t := ylt.New("bench", 500_000)
	st := rng.New(2)
	for i := range t.Agg {
		if st.Float64() < 0.4 {
			t.Agg[i] = st.Pareto(1e5, 2.0)
			t.OccMax[i] = t.Agg[i] * 0.7
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Summarize(t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReturnPeriodCI(b *testing.B) {
	losses := benchLosses(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReturnPeriodCI(losses, 100, 0.9, 200, 1); err != nil {
			b.Fatal(err)
		}
	}
}
