package lossindex

import (
	"context"
	"testing"

	"repro/internal/elt"
	"repro/internal/layers"
	"repro/internal/synth"
)

func flatScenario(t *testing.T) (*synth.Scenario, *Index, *Flat) {
	t.Helper()
	s, err := synth.Build(context.Background(), synth.Small(51))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := Flatten(ix, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	return s, ix, fx
}

// Every per-entry column must agree with recomputing from the entry's
// record and its contract's layers — the pre-application is a cache,
// never a re-derivation.
func TestFlattenColumnsMatchEntries(t *testing.T) {
	s, ix, fx := flatScenario(t)
	if fx.NumEntries() != ix.NumEntries() || fx.NumContracts() != ix.NumContracts() {
		t.Fatalf("shape mismatch: %d/%d entries, %d/%d contracts",
			fx.NumEntries(), ix.NumEntries(), fx.NumContracts(), ix.NumContracts())
	}
	for row := int32(0); row < int32(ix.NumRows()); row++ {
		lo := ix.offsets[row]
		for j, e := range ix.Entries(row) {
			k := lo + int32(j)
			if fx.Contract[k] != e.Contract {
				t.Fatalf("entry %d: contract %d, want %d", k, fx.Contract[k], e.Contract)
			}
			c := &s.Portfolio.Contracts[e.Contract]
			if fx.LayerOff[k] != fx.Terms.First[e.Contract] {
				t.Fatalf("entry %d: layer offset %d, want %d", k, fx.LayerOff[k], fx.Terms.First[e.Contract])
			}
			if n := fx.ExpOff[k+1] - fx.ExpOff[k]; int(n) != len(c.Layers) {
				t.Fatalf("entry %d: %d exp slots for %d layers", k, n, len(c.Layers))
			}
			var sum float64
			for li := range c.Layers {
				want := c.Layers[li].ApplyOccurrence(e.Rec.MeanLoss)
				if got := fx.ExpRec[fx.ExpOff[k]+int32(li)]; got != want {
					t.Fatalf("entry %d layer %d: pre-applied %g, want %g", k, li, got, want)
				}
				sum += want
			}
			if fx.ExpSum[k] != sum {
				t.Fatalf("entry %d: exp sum %g, want %g", k, fx.ExpSum[k], sum)
			}
			if fx.Mean[k] != e.Rec.MeanLoss {
				t.Fatalf("entry %d: mean %g, want %g", k, fx.Mean[k], e.Rec.MeanLoss)
			}
			wc, wa, wb, ws := elt.SampleParams(e.Rec)
			if fx.SampleConst[k] != wc || fx.SampleA[k] != wa || fx.SampleB[k] != wb || fx.SampleScale[k] != ws {
				t.Fatalf("entry %d: sampling plan (%g,%g,%g,%g), want (%g,%g,%g,%g)",
					k, fx.SampleConst[k], fx.SampleA[k], fx.SampleB[k], fx.SampleScale[k], wc, wa, wb, ws)
			}
		}
	}
}

// Span must frame exactly the entries EntriesFor returns, for both
// loss-bearing and loss-free event IDs (including beyond the indexed
// range).
func TestFlatSpanMatchesEntriesFor(t *testing.T) {
	_, ix, fx := flatScenario(t)
	maxID := uint32(len(ix.rowOf)) + 10
	for ev := uint32(0); ev < maxID; ev++ {
		lo, hi := fx.Span(ev)
		ents := ix.EntriesFor(ev)
		if int(hi-lo) != len(ents) {
			t.Fatalf("event %d: span %d entries, EntriesFor %d", ev, hi-lo, len(ents))
		}
		for j, e := range ents {
			if fx.Contract[lo+int32(j)] != e.Contract {
				t.Fatalf("event %d entry %d: contract mismatch", ev, j)
			}
		}
	}
}

// DenseMeansAll must reproduce the per-ELT projection it replaces:
// for every contract, scan the contract's records, keep positive
// means of indexed events, and leave every other row zero.
func TestFlatDenseMeansAll(t *testing.T) {
	s, ix, fx := flatScenario(t)
	all := fx.DenseMeansAll()
	if len(all) != len(s.Portfolio.Contracts) {
		t.Fatalf("%d mean vectors for %d contracts", len(all), len(s.Portfolio.Contracts))
	}
	for ci, c := range s.Portfolio.Contracts {
		want := make([]float64, ix.NumRows())
		for _, r := range s.ELTs[c.ELTIndex].Records {
			if r.MeanLoss <= 0 {
				continue
			}
			if row := ix.Row(r.EventID); row >= 0 {
				want[row] = r.MeanLoss
			}
		}
		got := all[ci]
		if len(got) != len(want) {
			t.Fatalf("contract %d: %d rows, want %d", ci, len(got), len(want))
		}
		for row := range want {
			if got[row] != want[row] {
				t.Fatalf("contract %d row %d: %g, want %g", ci, row, got[row], want[row])
			}
		}
	}
}

func TestFlattenRejectsMismatchedPortfolio(t *testing.T) {
	s, ix, fx := flatScenario(t)
	if _, err := Flatten(ix, nil); err == nil {
		t.Fatal("nil portfolio accepted")
	}
	short := &layers.Portfolio{Contracts: s.Portfolio.Contracts[:1]}
	if _, err := Flatten(ix, short); err == nil {
		t.Fatal("contract-count mismatch accepted")
	}
	if _, err := Flatten(nil, s.Portfolio); err == nil {
		t.Fatal("nil index accepted")
	}
	if fx.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive")
	}
	if fx.Index() != ix {
		t.Fatal("Index() does not return the source index")
	}
	if fx.NumLayers() != fx.Terms.NumLayers() {
		t.Fatal("NumLayers disagrees with Terms")
	}
}
