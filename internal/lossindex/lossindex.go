// Package lossindex implements the portfolio-wide, event-major
// pre-joined loss index shared by every stage-2 aggregate engine.
//
// The paper's central data-management claim is that risk analytics must
// be restructured around scan-oriented, pre-joined layouts: "data needs
// to be scanned over rather than randomly accessed" (§II). The
// MapReduce companion (Yao, Varghese & Rau-Chaplin, arXiv:1311.5686)
// realizes this by combining the per-contract ELTs into one pre-joined
// structure before the trial loop. This package is that structure for
// our engines: built once per (ELT set, portfolio), it maps a catalogue
// event ID — via a dense event-id → row table — to a packed,
// contract-ordered slice of (contract index, ELT record) entries.
//
// The trial kernel then becomes "index the event's row, scan the
// contracts that actually have loss": no per-(occurrence × contract)
// binary search, no visits to zero-loss contracts. Because entries
// within a row preserve portfolio contract order, and because records
// with non-positive mean loss (which the engines always skipped before
// drawing) are excluded at build time, the secondary-uncertainty draw
// order — and therefore bit-determinism across engines — is unchanged
// relative to the lookup-based kernels.
package lossindex

import (
	"fmt"

	"repro/internal/elt"
	"repro/internal/layers"
)

// Entry is one contract's loss distribution for one event: the unit of
// the pre-join. Entries of a row are sorted by Contract ascending.
type Entry struct {
	// Contract indexes into the portfolio's contract slice.
	Contract int32
	// Rec is the contract's ELT record for the row's event.
	Rec elt.Record
}

// entryBytes is the in-memory footprint of one Entry (int32 padded to
// 8, then 4+4 pad + 4×8 of the record).
const entryBytes = 8 + 40

// Index is the pre-joined event-major loss index. It is immutable
// after Build and safe for concurrent readers — every engine worker
// shares one instance.
type Index struct {
	// rowOf maps event ID → row, dense over [0, maxEvent]; -1 marks
	// events on which no contract has loss.
	rowOf []int32
	// offsets frames entries: row r spans entries[offsets[r]:offsets[r+1]].
	offsets []int32
	// entries is the packed pre-join, event-major, contract-ordered
	// within each event.
	entries []Entry
	// events[r] is the event ID of row r; rows are assigned in
	// ascending event order, so this is sorted.
	events []uint32

	numContracts int
}

// Build constructs the index for a portfolio over its ELT set. Each
// contract contributes the records of its referenced table with
// positive mean loss; contracts may share tables (single-contract
// views do). Build is a pure function of its inputs.
func Build(elts []*elt.Table, pf *layers.Portfolio) (*Index, error) {
	if pf == nil || len(pf.Contracts) == 0 {
		return nil, fmt.Errorf("lossindex: empty portfolio")
	}
	for _, c := range pf.Contracts {
		if c.ELTIndex < 0 || c.ELTIndex >= len(elts) {
			return nil, fmt.Errorf("lossindex: contract %d references ELT %d of %d", c.ID, c.ELTIndex, len(elts))
		}
	}

	// Pass 1: count contributions per event across the book.
	var maxEvent uint32
	for _, c := range pf.Contracts {
		t := elts[c.ELTIndex]
		if n := t.Len(); n > 0 {
			if id := t.Records[n-1].EventID; id > maxEvent {
				maxEvent = id
			}
		}
	}
	counts := make([]int32, maxEvent+1)
	var total int
	for _, c := range pf.Contracts {
		for _, r := range elts[c.ELTIndex].Records {
			if r.MeanLoss <= 0 {
				continue
			}
			counts[r.EventID]++
			total++
		}
	}

	// Assign rows to loss-bearing events in ascending event order and
	// prefix-sum the counts into offsets.
	ix := &Index{
		rowOf:        make([]int32, maxEvent+1),
		numContracts: len(pf.Contracts),
	}
	numRows := 0
	for _, n := range counts {
		if n > 0 {
			numRows++
		}
	}
	ix.offsets = make([]int32, numRows+1)
	ix.events = make([]uint32, numRows)
	row := int32(0)
	var off int32
	for ev, n := range counts {
		if n == 0 {
			ix.rowOf[ev] = -1
			continue
		}
		ix.rowOf[ev] = row
		ix.events[row] = uint32(ev)
		ix.offsets[row] = off
		off += n
		row++
	}
	ix.offsets[numRows] = off

	// Pass 2: scatter entries. Iterating contracts in portfolio order
	// fills each row in ascending contract order — the draw order the
	// engines' kernels depend on.
	ix.entries = make([]Entry, total)
	next := make([]int32, numRows)
	copy(next, ix.offsets[:numRows])
	for ci, c := range pf.Contracts {
		for _, r := range elts[c.ELTIndex].Records {
			if r.MeanLoss <= 0 {
				continue
			}
			rw := ix.rowOf[r.EventID]
			ix.entries[next[rw]] = Entry{Contract: int32(ci), Rec: r}
			next[rw]++
		}
	}
	return ix, nil
}

// Row returns the row of an event ID, or -1 when no contract has loss
// for it (including IDs beyond the indexed range).
func (ix *Index) Row(eventID uint32) int32 {
	if int(eventID) >= len(ix.rowOf) {
		return -1
	}
	return ix.rowOf[eventID]
}

// Entries returns row r's packed entries, contract-ascending.
func (ix *Index) Entries(r int32) []Entry {
	return ix.entries[ix.offsets[r]:ix.offsets[r+1]]
}

// EntriesFor returns the entries for an event ID, nil when the event
// carries no loss anywhere in the book. This is the trial kernels' one
// probe per occurrence.
func (ix *Index) EntriesFor(eventID uint32) []Entry {
	r := ix.Row(eventID)
	if r < 0 {
		return nil
	}
	return ix.Entries(r)
}

// EventAt returns the event ID of row r. Rows are in ascending event
// order.
func (ix *Index) EventAt(r int32) uint32 { return ix.events[r] }

// NumRows returns the number of loss-bearing events in the index.
func (ix *Index) NumRows() int { return len(ix.events) }

// NumEntries returns the total number of (event, contract) pre-joined
// entries.
func (ix *Index) NumEntries() int { return len(ix.entries) }

// NumContracts returns the contract count of the portfolio the index
// was built for.
func (ix *Index) NumContracts() int { return ix.numContracts }

// SizeBytes returns the in-memory footprint of the index — the
// data-volume line the CLIs report next to the YELT and YLT sizes.
func (ix *Index) SizeBytes() int64 {
	return int64(len(ix.rowOf))*4 +
		int64(len(ix.offsets))*4 +
		int64(len(ix.events))*4 +
		int64(len(ix.entries))*entryBytes
}
