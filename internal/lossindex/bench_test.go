package lossindex

import (
	"context"
	"sync"
	"testing"

	"repro/internal/synth"
)

var (
	benchOnce sync.Once
	benchScen *synth.Scenario
	benchErr  error
)

func benchScenario(b *testing.B) *synth.Scenario {
	b.Helper()
	benchOnce.Do(func() {
		benchScen, benchErr = synth.Build(context.Background(), synth.Params{
			Seed: 42, NumEvents: 10_000, NumContracts: 16,
			LocationsPerContract: 250, NumTrials: 10_000,
			MeanEventsPerYear: 10, TwoLayers: true,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchScen
}

func BenchmarkBuild(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	var ix *Index
	for i := 0; i < b.N; i++ {
		var err error
		ix, err = Build(s.ELTs, s.Portfolio)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ix.NumEntries()), "entries")
	b.SetBytes(ix.SizeBytes())
}

// BenchmarkProbeIndexed vs BenchmarkProbeBinarySearch measure the two
// access paths of the hot trial loop over the same occurrence stream:
// one dense row probe per occurrence against one binary search per
// (occurrence × contract).
func BenchmarkProbeIndexed(b *testing.B) {
	s := benchScenario(b)
	ix, err := Build(s.ELTs, s.Portfolio)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, occ := range s.YELT.Occs {
			for _, e := range ix.EntriesFor(occ.EventID) {
				sink += e.Rec.MeanLoss
			}
		}
	}
	_ = sink
	b.ReportMetric(float64(len(s.YELT.Occs))*float64(b.N)/b.Elapsed().Seconds(), "occs/s")
}

func BenchmarkProbeBinarySearch(b *testing.B) {
	s := benchScenario(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, occ := range s.YELT.Occs {
			for _, c := range s.Portfolio.Contracts {
				if rec, ok := s.ELTs[c.ELTIndex].Lookup(occ.EventID); ok && rec.MeanLoss > 0 {
					sink += rec.MeanLoss
				}
			}
		}
	}
	_ = sink
	b.ReportMetric(float64(len(s.YELT.Occs))*float64(b.N)/b.Elapsed().Seconds(), "occs/s")
}
