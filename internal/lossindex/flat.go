package lossindex

import (
	"fmt"

	"repro/internal/elt"
	"repro/internal/layers"
)

// Flat is the flat structure-of-arrays trial-kernel layout derived
// from an Index and the portfolio's layer terms — the last step of the
// paper's "scanned over rather than randomly accessed" restructuring.
// Where the indexed kernel still dereferenced a Contract struct and
// walked its nested []Layer per entry, the flat layout gives the
// kernel nothing but contiguous arrays, all parallel to the index's
// packed entry order:
//
//	Contract[k]          portfolio contract of entry k (per-contract outputs)
//	LayerOff[k]          first flat layer slot of entry k's contract
//	Mean[k]              entry k's raw mean loss (the stateful kernels and
//	                     dense per-contract projections still need the
//	                     pre-terms loss)
//	ExpOff[k]..ExpOff[k+1]  entry k's frame in ExpRec (one cell per layer)
//	ExpRec[...]          pre-applied occurrence recovery of the entry's
//	                     mean loss through each layer (expected mode)
//	ExpDst[e]            flat layer slot ExpRec[e] accumulates into —
//	                     the scatter index that lets the blocked kernel
//	                     sweep a whole event's ExpRec frame in one flat
//	                     loop, no per-entry re-slicing
//	ExpSum[k]            sum of entry k's ExpRec frame, in layer order
//	RowSum[r]            sum of row r's ExpSum values, in entry order —
//	                     the event's whole-portfolio expected occurrence
//	                     recovery, precomputed in exactly the kernels'
//	                     accumulation order (hence bit-identical to the
//	                     per-occurrence running sum it replaces)
//	SampleConst/A/B/Scale[k]  the entry's precomputed sampling plan
//	                     (elt.SampleParams of its record)
//	Terms                the portfolio's layer terms as SoA columns
//	                     (layers.FlatTerms), framed per contract
//
// In expected mode (Sampling=false) the per-(entry, layer) occurrence
// recovery is a constant — min(max(mean-ret,0),lim) never changes
// across trials — so it is applied once here at build time and the
// kernel's inner loop collapses to gather-adds from ExpRec. ExpSum is
// accumulated in the same layer order the kernel used, so substituting
// it for the per-entry running sum is bit-identical. The annual
// aggregate terms still apply per trial (they depend on the per-year
// sums) via Terms.
//
// Flat is immutable after Flatten and safe for concurrent readers —
// every engine worker shares one instance alongside the Index.
type Flat struct {
	ix    *Index
	Terms *layers.FlatTerms

	Contract []int32
	LayerOff []int32
	Mean     []float64
	ExpOff   []int32 // len NumEntries+1
	ExpRec   []float64
	ExpDst   []int32 // parallel to ExpRec
	ExpSum   []float64
	RowSum   []float64 // len Index().NumRows()

	SampleConst []float64
	SampleA     []float64
	SampleB     []float64
	SampleScale []float64
}

// Flatten derives the flat kernel layout from a built index and the
// portfolio it was built for. Like Build it is a pure function of its
// inputs.
func Flatten(ix *Index, pf *layers.Portfolio) (*Flat, error) {
	if ix == nil {
		return nil, fmt.Errorf("lossindex: flatten of nil index")
	}
	if pf == nil || ix.numContracts != len(pf.Contracts) {
		n := 0
		if pf != nil {
			n = len(pf.Contracts)
		}
		return nil, fmt.Errorf("lossindex: flatten: index built for %d contracts, portfolio has %d",
			ix.numContracts, n)
	}
	ft, err := layers.FlattenTerms(pf)
	if err != nil {
		return nil, err
	}

	n := len(ix.entries)
	f := &Flat{
		ix:          ix,
		Terms:       ft,
		Contract:    make([]int32, n),
		LayerOff:    make([]int32, n),
		Mean:        make([]float64, n),
		ExpOff:      make([]int32, n+1),
		ExpSum:      make([]float64, n),
		SampleConst: make([]float64, n),
		SampleA:     make([]float64, n),
		SampleB:     make([]float64, n),
		SampleScale: make([]float64, n),
	}
	var total int32
	for k, e := range ix.entries {
		ci := e.Contract
		f.Contract[k] = ci
		f.LayerOff[k] = ft.First[ci]
		f.Mean[k] = e.Rec.MeanLoss
		f.ExpOff[k] = total
		total += ft.First[ci+1] - ft.First[ci]
	}
	f.ExpOff[n] = total

	// Pre-apply the occurrence terms to each entry's mean loss through
	// the original Layer methods, so the constants are by construction
	// the values the indexed kernel recomputed per trial.
	f.ExpRec = make([]float64, total)
	f.ExpDst = make([]int32, total)
	for k, e := range ix.entries {
		c := &pf.Contracts[e.Contract]
		off := f.ExpOff[k]
		var sum float64
		for li := range c.Layers {
			r := c.Layers[li].ApplyOccurrence(e.Rec.MeanLoss)
			f.ExpRec[off+int32(li)] = r
			f.ExpDst[off+int32(li)] = f.LayerOff[k] + int32(li)
			sum += r
		}
		f.ExpSum[k] = sum
		f.SampleConst[k], f.SampleA[k], f.SampleB[k], f.SampleScale[k] = elt.SampleParams(e.Rec)
	}

	// Row totals, accumulated entry-then-layer exactly as the kernels'
	// per-occurrence running sums, so substituting RowSum for them is
	// bit-identical (ExpSum itself was accumulated in layer order above).
	f.RowSum = make([]float64, ix.NumRows())
	for r := 0; r+1 < len(ix.offsets); r++ {
		var s float64
		for k := ix.offsets[r]; k < ix.offsets[r+1]; k++ {
			s += f.ExpSum[k]
		}
		f.RowSum[r] = s
	}
	return f, nil
}

// ExpSpan returns, for an event ID, the contiguous ExpRec frame
// [lo, hi) covering every entry of the event (entries are packed, so
// their per-layer frames concatenate) and the event's precomputed
// whole-portfolio expected occurrence recovery (RowSum). lo == hi and
// a zero sum when the event carries no loss anywhere in the book —
// exactly the running sum an empty span would have produced.
func (f *Flat) ExpSpan(eventID uint32) (lo, hi int32, occSum float64) {
	r := f.ix.Row(eventID)
	if r < 0 {
		return 0, 0, 0
	}
	return f.ExpOff[f.ix.offsets[r]], f.ExpOff[f.ix.offsets[r+1]], f.RowSum[r]
}

// Span returns the packed-entry range [lo, hi) for an event ID — the
// flat kernel's one probe per occurrence (lo == hi when the event
// carries no loss anywhere in the book). Entries k in the span index
// every per-entry column of the Flat.
func (f *Flat) Span(eventID uint32) (lo, hi int32) {
	r := f.ix.Row(eventID)
	if r < 0 {
		return 0, 0
	}
	return f.ix.offsets[r], f.ix.offsets[r+1]
}

// DenseMeansAll returns every contract's dense row → mean-loss
// vector (out[ci][row]), filled in ONE linear sweep of the packed
// entry columns, so contract-decomposed engines can project their
// per-contract loss vectors straight from the flat layout instead of
// re-scanning each contract's ELT and probing Row per record — and
// without a per-contract pass over the entries, which would be
// quadratic in the contract count on the many-contract books the
// decomposition exists for. Rows where a contract has no (positive)
// loss stay zero, matching the per-ELT projection exactly; when a
// contract's table carries duplicate records for an event, the last
// one wins, as it did in the record scan (entries of a row are packed
// in contract-then-record order).
func (f *Flat) DenseMeansAll() [][]float64 {
	rows := f.ix.NumRows()
	out := make([][]float64, f.NumContracts())
	for ci := range out {
		out[ci] = make([]float64, rows)
	}
	for r := 0; r+1 < len(f.ix.offsets); r++ {
		for k := f.ix.offsets[r]; k < f.ix.offsets[r+1]; k++ {
			out[f.Contract[k]][r] = f.Mean[k]
		}
	}
	return out
}

// DeviceVectors returns the per-row portfolio recovery vectors the
// device engine uploads: aggVec folds each layer's share into the
// pre-applied occurrence recovery, occVec is the share-free recovery
// that drives OccMax. Both are projected in one linear sweep of the
// packed ExpRec column — no Contract struct walk, no per-record layer
// dispatch. The sweep visits row → entry → layer exactly as the
// legacy per-row construction did, and adding a zero recovery is
// exact, so the vectors are bit-identical to the nested walk they
// replace (TestChunkedVectorsMatchLegacy pins it).
func (f *Flat) DeviceVectors() (aggVec, occVec []float64) {
	rows := f.ix.NumRows()
	aggVec = make([]float64, rows)
	occVec = make([]float64, rows)
	share := f.Terms.Share
	for r := 0; r+1 < len(f.ix.offsets); r++ {
		var av, ov float64
		for k := f.ix.offsets[r]; k < f.ix.offsets[r+1]; k++ {
			for e := f.ExpOff[k]; e < f.ExpOff[k+1]; e++ {
				rec := f.ExpRec[e]
				av += rec * share[f.ExpDst[e]]
				ov += rec
			}
		}
		aggVec[r] = av
		occVec[r] = ov
	}
	return aggVec, occVec
}

// Index returns the index the layout was derived from.
func (f *Flat) Index() *Index { return f.ix }

// NumContracts returns the contract count of the portfolio the layout
// was built for.
func (f *Flat) NumContracts() int { return f.ix.numContracts }

// NumLayers returns the total flattened layer count (the flat kernel's
// per-trial scratch length).
func (f *Flat) NumLayers() int { return f.Terms.NumLayers() }

// NumEntries returns the number of pre-joined entries the layout
// parallels.
func (f *Flat) NumEntries() int { return len(f.Contract) }

// SizeBytes returns the in-memory footprint of the flat layout beyond
// the index it references — the data-volume line the pipeline reports
// next to the index size.
func (f *Flat) SizeBytes() int64 {
	return int64(len(f.Contract))*4 +
		int64(len(f.LayerOff))*4 +
		int64(len(f.Mean))*8 +
		int64(len(f.ExpOff))*4 +
		int64(len(f.ExpRec))*8 +
		int64(len(f.ExpDst))*4 +
		int64(len(f.ExpSum))*8 +
		int64(len(f.RowSum))*8 +
		int64(len(f.SampleConst)+len(f.SampleA)+len(f.SampleB)+len(f.SampleScale))*8 +
		f.Terms.SizeBytes()
}
