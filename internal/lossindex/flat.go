package lossindex

import (
	"fmt"

	"repro/internal/elt"
	"repro/internal/layers"
)

// Flat is the flat structure-of-arrays trial-kernel layout derived
// from an Index and the portfolio's layer terms — the last step of the
// paper's "scanned over rather than randomly accessed" restructuring.
// Where the indexed kernel still dereferenced a Contract struct and
// walked its nested []Layer per entry, the flat layout gives the
// kernel nothing but contiguous arrays, all parallel to the index's
// packed entry order:
//
//	Contract[k]          portfolio contract of entry k (per-contract outputs)
//	LayerOff[k]          first flat layer slot of entry k's contract
//	Mean[k]              entry k's raw mean loss (the stateful kernels and
//	                     dense per-contract projections still need the
//	                     pre-terms loss)
//	ExpOff[k]..ExpOff[k+1]  entry k's frame in ExpRec (one cell per layer)
//	ExpRec[...]          pre-applied occurrence recovery of the entry's
//	                     mean loss through each layer (expected mode)
//	ExpSum[k]            sum of entry k's ExpRec frame, in layer order
//	SampleConst/A/B/Scale[k]  the entry's precomputed sampling plan
//	                     (elt.SampleParams of its record)
//	Terms                the portfolio's layer terms as SoA columns
//	                     (layers.FlatTerms), framed per contract
//
// In expected mode (Sampling=false) the per-(entry, layer) occurrence
// recovery is a constant — min(max(mean-ret,0),lim) never changes
// across trials — so it is applied once here at build time and the
// kernel's inner loop collapses to gather-adds from ExpRec. ExpSum is
// accumulated in the same layer order the kernel used, so substituting
// it for the per-entry running sum is bit-identical. The annual
// aggregate terms still apply per trial (they depend on the per-year
// sums) via Terms.
//
// Flat is immutable after Flatten and safe for concurrent readers —
// every engine worker shares one instance alongside the Index.
type Flat struct {
	ix    *Index
	Terms *layers.FlatTerms

	Contract []int32
	LayerOff []int32
	Mean     []float64
	ExpOff   []int32 // len NumEntries+1
	ExpRec   []float64
	ExpSum   []float64

	SampleConst []float64
	SampleA     []float64
	SampleB     []float64
	SampleScale []float64
}

// Flatten derives the flat kernel layout from a built index and the
// portfolio it was built for. Like Build it is a pure function of its
// inputs.
func Flatten(ix *Index, pf *layers.Portfolio) (*Flat, error) {
	if ix == nil {
		return nil, fmt.Errorf("lossindex: flatten of nil index")
	}
	if pf == nil || ix.numContracts != len(pf.Contracts) {
		n := 0
		if pf != nil {
			n = len(pf.Contracts)
		}
		return nil, fmt.Errorf("lossindex: flatten: index built for %d contracts, portfolio has %d",
			ix.numContracts, n)
	}
	ft, err := layers.FlattenTerms(pf)
	if err != nil {
		return nil, err
	}

	n := len(ix.entries)
	f := &Flat{
		ix:          ix,
		Terms:       ft,
		Contract:    make([]int32, n),
		LayerOff:    make([]int32, n),
		Mean:        make([]float64, n),
		ExpOff:      make([]int32, n+1),
		ExpSum:      make([]float64, n),
		SampleConst: make([]float64, n),
		SampleA:     make([]float64, n),
		SampleB:     make([]float64, n),
		SampleScale: make([]float64, n),
	}
	var total int32
	for k, e := range ix.entries {
		ci := e.Contract
		f.Contract[k] = ci
		f.LayerOff[k] = ft.First[ci]
		f.Mean[k] = e.Rec.MeanLoss
		f.ExpOff[k] = total
		total += ft.First[ci+1] - ft.First[ci]
	}
	f.ExpOff[n] = total

	// Pre-apply the occurrence terms to each entry's mean loss through
	// the original Layer methods, so the constants are by construction
	// the values the indexed kernel recomputed per trial.
	f.ExpRec = make([]float64, total)
	for k, e := range ix.entries {
		c := &pf.Contracts[e.Contract]
		off := f.ExpOff[k]
		var sum float64
		for li := range c.Layers {
			r := c.Layers[li].ApplyOccurrence(e.Rec.MeanLoss)
			f.ExpRec[off+int32(li)] = r
			sum += r
		}
		f.ExpSum[k] = sum
		f.SampleConst[k], f.SampleA[k], f.SampleB[k], f.SampleScale[k] = elt.SampleParams(e.Rec)
	}
	return f, nil
}

// Span returns the packed-entry range [lo, hi) for an event ID — the
// flat kernel's one probe per occurrence (lo == hi when the event
// carries no loss anywhere in the book). Entries k in the span index
// every per-entry column of the Flat.
func (f *Flat) Span(eventID uint32) (lo, hi int32) {
	r := f.ix.Row(eventID)
	if r < 0 {
		return 0, 0
	}
	return f.ix.offsets[r], f.ix.offsets[r+1]
}

// DenseMeansAll returns every contract's dense row → mean-loss
// vector (out[ci][row]), filled in ONE linear sweep of the packed
// entry columns, so contract-decomposed engines can project their
// per-contract loss vectors straight from the flat layout instead of
// re-scanning each contract's ELT and probing Row per record — and
// without a per-contract pass over the entries, which would be
// quadratic in the contract count on the many-contract books the
// decomposition exists for. Rows where a contract has no (positive)
// loss stay zero, matching the per-ELT projection exactly; when a
// contract's table carries duplicate records for an event, the last
// one wins, as it did in the record scan (entries of a row are packed
// in contract-then-record order).
func (f *Flat) DenseMeansAll() [][]float64 {
	rows := f.ix.NumRows()
	out := make([][]float64, f.NumContracts())
	for ci := range out {
		out[ci] = make([]float64, rows)
	}
	for r := 0; r+1 < len(f.ix.offsets); r++ {
		for k := f.ix.offsets[r]; k < f.ix.offsets[r+1]; k++ {
			out[f.Contract[k]][r] = f.Mean[k]
		}
	}
	return out
}

// Index returns the index the layout was derived from.
func (f *Flat) Index() *Index { return f.ix }

// NumContracts returns the contract count of the portfolio the layout
// was built for.
func (f *Flat) NumContracts() int { return f.ix.numContracts }

// NumLayers returns the total flattened layer count (the flat kernel's
// per-trial scratch length).
func (f *Flat) NumLayers() int { return f.Terms.NumLayers() }

// NumEntries returns the number of pre-joined entries the layout
// parallels.
func (f *Flat) NumEntries() int { return len(f.Contract) }

// SizeBytes returns the in-memory footprint of the flat layout beyond
// the index it references — the data-volume line the pipeline reports
// next to the index size.
func (f *Flat) SizeBytes() int64 {
	return int64(len(f.Contract))*4 +
		int64(len(f.LayerOff))*4 +
		int64(len(f.Mean))*8 +
		int64(len(f.ExpOff))*4 +
		int64(len(f.ExpRec))*8 +
		int64(len(f.ExpSum))*8 +
		int64(len(f.SampleConst)+len(f.SampleA)+len(f.SampleB)+len(f.SampleScale))*8 +
		f.Terms.SizeBytes()
}
