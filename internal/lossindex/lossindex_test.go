package lossindex

import (
	"testing"

	"repro/internal/elt"
	"repro/internal/layers"
)

func testPortfolio(n int) *layers.Portfolio {
	pf := &layers.Portfolio{}
	for c := 0; c < n; c++ {
		pf.Contracts = append(pf.Contracts, layers.Contract{
			ID: uint32(c + 1), ELTIndex: c,
			Layers: []layers.Layer{{OccLimit: 100, Share: 1}},
		})
	}
	return pf
}

func testTables() []*elt.Table {
	// Three contracts with overlapping, disjoint and zero-mean events.
	return []*elt.Table{
		elt.New(1, []elt.Record{
			{EventID: 2, MeanLoss: 10, SigmaI: 1, ExposedValue: 50},
			{EventID: 5, MeanLoss: 3, SigmaC: 2, ExposedValue: 20},
			{EventID: 9, MeanLoss: 0, ExposedValue: 4}, // zero mean: excluded
		}),
		elt.New(2, []elt.Record{
			{EventID: 2, MeanLoss: 7, ExposedValue: 30},
			{EventID: 7, MeanLoss: 1, ExposedValue: 9},
		}),
		elt.New(3, []elt.Record{
			{EventID: 11, MeanLoss: 4, ExposedValue: 12},
		}),
	}
}

// The index must round-trip exactly the records reachable via
// elt.Table.Lookup (with positive mean loss), for every event in the
// indexed range and beyond it.
func TestRoundTripAgainstLookup(t *testing.T) {
	elts := testTables()
	pf := testPortfolio(len(elts))
	ix, err := Build(elts, pf)
	if err != nil {
		t.Fatal(err)
	}
	for ev := uint32(0); ev < 64; ev++ {
		entries := ix.EntriesFor(ev)
		j := 0
		for ci, c := range pf.Contracts {
			rec, ok := elts[c.ELTIndex].Lookup(ev)
			if !ok || rec.MeanLoss <= 0 {
				continue
			}
			if j >= len(entries) {
				t.Fatalf("event %d: missing entry for contract %d", ev, ci)
			}
			e := entries[j]
			if int(e.Contract) != ci || e.Rec != rec {
				t.Fatalf("event %d entry %d: got contract %d rec %+v, want contract %d rec %+v",
					ev, j, e.Contract, e.Rec, ci, rec)
			}
			j++
		}
		if j != len(entries) {
			t.Fatalf("event %d: %d extra entries beyond Lookup-reachable records", ev, len(entries)-j)
		}
	}
}

func TestRowTableShape(t *testing.T) {
	elts := testTables()
	ix, err := Build(elts, testPortfolio(len(elts)))
	if err != nil {
		t.Fatal(err)
	}
	// Loss-bearing events: 2, 5, 7, 11 (9 is zero-mean).
	wantRows := []uint32{2, 5, 7, 11}
	if ix.NumRows() != len(wantRows) {
		t.Fatalf("NumRows = %d, want %d", ix.NumRows(), len(wantRows))
	}
	for r, ev := range wantRows {
		if ix.EventAt(int32(r)) != ev {
			t.Fatalf("row %d holds event %d, want %d", r, ix.EventAt(int32(r)), ev)
		}
		if ix.Row(ev) != int32(r) {
			t.Fatalf("Row(%d) = %d, want %d", ev, ix.Row(ev), r)
		}
	}
	for _, ev := range []uint32{0, 1, 9, 10, 12, 1 << 20} {
		if ix.Row(ev) != -1 {
			t.Fatalf("Row(%d) = %d, want -1", ev, ix.Row(ev))
		}
		if ix.EntriesFor(ev) != nil {
			t.Fatalf("EntriesFor(%d) non-nil for loss-free event", ev)
		}
	}
	// Event 2 is shared by contracts 0 and 1, in that order.
	e := ix.EntriesFor(2)
	if len(e) != 2 || e[0].Contract != 0 || e[1].Contract != 1 {
		t.Fatalf("event 2 entries = %+v, want contracts [0 1]", e)
	}
	if ix.NumEntries() != 5 {
		t.Fatalf("NumEntries = %d, want 5", ix.NumEntries())
	}
	if ix.NumContracts() != 3 {
		t.Fatalf("NumContracts = %d, want 3", ix.NumContracts())
	}
	if ix.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

// Contracts sharing one table (the single-contract pricing view) must
// each contribute an entry.
func TestSharedTable(t *testing.T) {
	tbl := elt.New(1, []elt.Record{{EventID: 3, MeanLoss: 2, ExposedValue: 8}})
	pf := &layers.Portfolio{Contracts: []layers.Contract{
		{ID: 1, ELTIndex: 0, Layers: []layers.Layer{{}}},
		{ID: 2, ELTIndex: 0, Layers: []layers.Layer{{}}},
	}}
	ix, err := Build([]*elt.Table{tbl}, pf)
	if err != nil {
		t.Fatal(err)
	}
	e := ix.EntriesFor(3)
	if len(e) != 2 || e[0].Contract != 0 || e[1].Contract != 1 {
		t.Fatalf("shared-table entries = %+v", e)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, &layers.Portfolio{}); err == nil {
		t.Fatal("empty portfolio must fail")
	}
	if _, err := Build(nil, nil); err == nil {
		t.Fatal("nil portfolio must fail")
	}
	pf := &layers.Portfolio{Contracts: []layers.Contract{{ID: 1, ELTIndex: 3}}}
	if _, err := Build([]*elt.Table{elt.New(1, nil)}, pf); err == nil {
		t.Fatal("dangling ELT index must fail")
	}
}

// An all-zero-mean book yields an index with no rows but still answers
// probes.
func TestAllZeroMeans(t *testing.T) {
	tbl := elt.New(1, []elt.Record{{EventID: 1, MeanLoss: 0, ExposedValue: 5}})
	ix, err := Build([]*elt.Table{tbl}, testPortfolio(1))
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumRows() != 0 || ix.NumEntries() != 0 {
		t.Fatalf("rows=%d entries=%d, want 0,0", ix.NumRows(), ix.NumEntries())
	}
	if ix.EntriesFor(1) != nil {
		t.Fatal("zero-mean event must not be indexed")
	}
}
