// Package mapreduce is a stdlib-only MapReduce engine, the execution
// model the paper proposes for the distributed-file strategy: "relying
// on MapReduce or Hadoop style computations on the cloud" (§II). Jobs
// map over dataset splits in parallel, optionally combine map-side,
// shuffle by key hash into reducer buckets, and reduce in parallel.
// Mapper failures are retried with bounded attempts, mirroring
// speculative re-execution in the systems it stands in for.
//
// When the splits live on distinct storage nodes (internal/diskstore),
// the scheduler can be made locality-aware: Config.Nodes/NodeOf carve
// the mapper pool into per-node lanes, each split is queued on the lane
// of the node that owns it, and a lane's workers drain their own queue
// before stealing from the most-loaded other lane. Moving the mapper to
// the data instead of the data to the mapper is the central lever of
// the companion Hadoop work (arXiv 1311.5686); Config.OnTask reports
// each task's placement so callers can account local versus remote data
// motion.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stream"
)

// Config tunes a job.
type Config struct {
	// Mappers bounds concurrent map tasks; <= 0 means GOMAXPROCS.
	Mappers int
	// Reducers is the shuffle fan-in; <= 0 means GOMAXPROCS.
	Reducers int
	// MaxAttempts per map task (>= 1). Transient map failures are
	// retried up to this bound.
	MaxAttempts int
	// Nodes, with NodeOf, turns on locality-aware lane scheduling:
	// mapper w belongs to node w mod Nodes, and split i is queued on
	// the lane of node NodeOf(i). A worker drains its own lane first
	// and steals from the most-loaded other lane only when its own is
	// empty (load balance on skewed splits costs remote motion, never
	// idle workers). <= 0 leaves scheduling placement-free.
	Nodes int
	// NodeOf returns the storage node owning split i. Required when
	// Nodes > 0.
	NodeOf func(split int) int
	// Blind, with Nodes > 0, keeps the per-node mapper homes but serves
	// splits from one global queue in index order regardless of
	// ownership — the placement-blind baseline locality is measured
	// against. Placement accounting (OnTask's local flag) still applies.
	Blind bool
	// OnTask, if non-nil, is called once per successful map task with
	// the split index, whether the task ran on the lane of the node
	// owning the split (always true when locality is off), and the
	// task's wall-clock duration. Called concurrently from worker
	// goroutines; implementations must be safe for concurrent use.
	OnTask func(split int, local bool, d time.Duration)
}

func (c Config) normalized() Config {
	if c.Mappers <= 0 {
		c.Mappers = runtime.GOMAXPROCS(0)
	}
	if c.Reducers <= 0 {
		c.Reducers = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	return c
}

// MapFunc processes one split, emitting key/value pairs. It may be
// retried; it must be idempotent from the job's perspective (emissions
// of failed attempts are discarded).
type MapFunc[S any, K comparable, V any] func(ctx context.Context, split S, emit func(K, V)) error

// ReduceFunc folds the values of one key. Values arrive in unspecified
// order; the function must be insensitive to it (commutative monoid),
// which is what makes the computation deterministic under parallelism.
type ReduceFunc[K comparable, V any] func(key K, values []V) (V, error)

// ErrTooManyFailures is returned when a map task exhausts its attempts.
var ErrTooManyFailures = errors.New("mapreduce: map task exhausted attempts")

// laneScheduler hands out split indices to workers keyed by the
// worker's home node. In affine mode each node has its own FIFO lane
// and a worker steals from the most-loaded foreign lane only when its
// own is dry; in blind mode one global FIFO serves every worker. The
// caller decides locality (owner node == home node) itself — the
// scheduler only orders the work.
type laneScheduler struct {
	mu    sync.Mutex
	lanes [][]int // per-lane FIFO of split indices; one lane when blind
	heads []int   // consumed prefix per lane
}

func newLaneScheduler(n, nodes int, nodeOf func(int) int, blind bool) *laneScheduler {
	s := &laneScheduler{}
	if blind {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		s.lanes = [][]int{all}
		s.heads = []int{0}
		return s
	}
	s.lanes = make([][]int, nodes)
	s.heads = make([]int, nodes)
	for i := 0; i < n; i++ {
		lane := nodeOf(i) % nodes
		if lane < 0 {
			lane += nodes
		}
		s.lanes[lane] = append(s.lanes[lane], i)
	}
	return s
}

// next returns the next split for a worker homed on the given node,
// preferring the home lane and stealing from the longest foreign lane
// otherwise. ok is false when no work remains.
func (s *laneScheduler) next(home int) (split int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lane := home % len(s.lanes)
	if s.heads[lane] < len(s.lanes[lane]) {
		split = s.lanes[lane][s.heads[lane]]
		s.heads[lane]++
		return split, true
	}
	// Steal from the lane with the most unconsumed work.
	best, bestLeft := -1, 0
	for l := range s.lanes {
		if left := len(s.lanes[l]) - s.heads[l]; left > bestLeft {
			best, bestLeft = l, left
		}
	}
	if best < 0 {
		return 0, false
	}
	split = s.lanes[best][s.heads[best]]
	s.heads[best]++
	return split, true
}

// Run executes a MapReduce job over splits and returns the reduced
// key/value map. combine, if non-nil, is applied map-side per split to
// shrink shuffle volume (classic combiner; usually the same function
// as reduce for associative aggregations).
func Run[S any, K comparable, V any](
	ctx context.Context,
	splits []S,
	mapf MapFunc[S, K, V],
	combine ReduceFunc[K, V],
	reduce ReduceFunc[K, V],
	cfg Config,
) (map[K]V, error) {
	if mapf == nil || reduce == nil {
		return nil, errors.New("mapreduce: nil map or reduce function")
	}
	cfg = cfg.normalized()
	if cfg.Nodes > 0 && cfg.NodeOf == nil {
		return nil, errors.New("mapreduce: Nodes set without NodeOf")
	}
	if len(splits) == 0 {
		return map[K]V{}, nil
	}

	seed := maphash.MakeSeed()
	nRed := cfg.Reducers

	// Each map task owns a private bucket set; buckets are merged into
	// reducer inputs after the map phase (no locks on the hot path).
	type bucketSet struct {
		buckets []map[K][]V
	}
	taskBuckets := make([]*bucketSet, len(splits))

	// runTask executes split i with the retry loop; local records how
	// the scheduler placed it, for the OnTask accounting callback.
	runTask := func(ctx context.Context, i int, local bool) error {
		start := time.Now()
		var lastErr error
		for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
			bs := &bucketSet{buckets: make([]map[K][]V, nRed)}
			emit := func(k K, v V) {
				var h maphash.Hash
				h.SetSeed(seed)
				writeKey(&h, k)
				b := int(h.Sum64() % uint64(nRed))
				if bs.buckets[b] == nil {
					bs.buckets[b] = make(map[K][]V)
				}
				bs.buckets[b][k] = append(bs.buckets[b][k], v)
			}
			if err := mapf(ctx, splits[i], emit); err != nil {
				// Cancellation is not a task failure: retrying a
				// cancelled mapper can only fail again, so surface it
				// immediately instead of burning the attempt budget.
				if ctx.Err() != nil {
					return ctx.Err()
				}
				lastErr = err
				continue // retry with fresh buckets
			}
			// Map-side combine.
			if combine != nil {
				for _, bucket := range bs.buckets {
					for k, vs := range bucket {
						if len(vs) > 1 {
							c, err := combine(k, vs)
							if err != nil {
								return fmt.Errorf("mapreduce: combine: %w", err)
							}
							bucket[k] = append(vs[:0], c)
						}
					}
				}
			}
			taskBuckets[i] = bs
			if cfg.OnTask != nil {
				cfg.OnTask(i, local, time.Since(start))
			}
			return nil
		}
		return fmt.Errorf("%w: split %d after %d attempts: %v", ErrTooManyFailures, i, cfg.MaxAttempts, lastErr)
	}

	var mapErr error
	if cfg.Nodes > 0 {
		mapErr = runLanes(ctx, len(splits), cfg, runTask)
	} else {
		mapErr = stream.ForEach(ctx, len(splits), cfg.Mappers, func(ctx context.Context, i int) error {
			return runTask(ctx, i, true)
		})
	}
	if mapErr != nil {
		return nil, mapErr
	}

	// Shuffle: merge per-task buckets into per-reducer inputs.
	reducerIn := make([]map[K][]V, nRed)
	for r := 0; r < nRed; r++ {
		reducerIn[r] = make(map[K][]V)
	}
	for _, bs := range taskBuckets {
		if bs == nil {
			continue
		}
		for r, bucket := range bs.buckets {
			for k, vs := range bucket {
				reducerIn[r][k] = append(reducerIn[r][k], vs...)
			}
		}
	}

	// Reduce phase: one goroutine per reducer partition.
	results := make([]map[K]V, nRed)
	var wg sync.WaitGroup
	errCh := make(chan error, nRed)
	wg.Add(nRed)
	for r := 0; r < nRed; r++ {
		go func(r int) {
			defer wg.Done()
			out := make(map[K]V, len(reducerIn[r]))
			for k, vs := range reducerIn[r] {
				v, err := reduce(k, vs)
				if err != nil {
					errCh <- fmt.Errorf("mapreduce: reduce key %v: %w", k, err)
					return
				}
				out[k] = v
			}
			results[r] = out
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	final := make(map[K]V)
	for _, m := range results {
		for k, v := range m {
			final[k] = v
		}
	}
	return final, nil
}

// runLanes is the locality-aware map-phase dispatcher: cfg.Mappers
// workers, worker w homed on node w mod cfg.Nodes, pulling splits from
// a laneScheduler (per-node lanes in affine mode, one global queue in
// blind mode). A task is local when the split's owning node equals the
// worker's home — true by construction for a home-lane pop, false for
// a steal, and ~1/Nodes of the time under the blind baseline. The
// first error cancels outstanding work, like stream.ForEach.
func runLanes(ctx context.Context, n int, cfg Config, runTask func(ctx context.Context, i int, local bool) error) error {
	workers := cfg.Mappers
	if workers > n {
		workers = n
	}
	sched := newLaneScheduler(n, cfg.Nodes, cfg.NodeOf, cfg.Blind)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var firstErr atomic.Value
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(home int) {
			defer wg.Done()
			for {
				i, ok := sched.next(home)
				if !ok {
					return
				}
				select {
				case <-ctx.Done():
					return
				default:
				}
				local := cfg.NodeOf(i)%cfg.Nodes == home
				if err := runTask(ctx, i, local); err != nil {
					firstErr.CompareAndSwap(nil, err)
					cancel()
					return
				}
			}
		}(w % cfg.Nodes)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return e.(error)
	}
	return ctx.Err()
}

// writeKey hashes a comparable key. Common key kinds get fast paths;
// everything else goes through fmt, which is slower but total.
func writeKey[K comparable](h *maphash.Hash, k K) {
	switch v := any(k).(type) {
	case string:
		h.WriteString(v)
	case int:
		writeUint64(h, uint64(v))
	case int64:
		writeUint64(h, uint64(v))
	case uint64:
		writeUint64(h, v)
	case uint32:
		writeUint64(h, uint64(v))
	case int32:
		writeUint64(h, uint64(v))
	default:
		fmt.Fprintf(h, "%v", v)
	}
}

func writeUint64(h *maphash.Hash, v uint64) {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}
