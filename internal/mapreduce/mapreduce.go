// Package mapreduce is a stdlib-only MapReduce engine, the execution
// model the paper proposes for the distributed-file strategy: "relying
// on MapReduce or Hadoop style computations on the cloud" (§II). Jobs
// map over dataset splits in parallel, optionally combine map-side,
// shuffle by key hash into reducer buckets, and reduce in parallel.
// Mapper failures are retried with bounded attempts, mirroring
// speculative re-execution in the systems it stands in for.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sync"

	"repro/internal/stream"
)

// Config tunes a job.
type Config struct {
	// Mappers bounds concurrent map tasks; <= 0 means GOMAXPROCS.
	Mappers int
	// Reducers is the shuffle fan-in; <= 0 means GOMAXPROCS.
	Reducers int
	// MaxAttempts per map task (>= 1). Transient map failures are
	// retried up to this bound.
	MaxAttempts int
}

func (c Config) normalized() Config {
	if c.Mappers <= 0 {
		c.Mappers = runtime.GOMAXPROCS(0)
	}
	if c.Reducers <= 0 {
		c.Reducers = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	return c
}

// MapFunc processes one split, emitting key/value pairs. It may be
// retried; it must be idempotent from the job's perspective (emissions
// of failed attempts are discarded).
type MapFunc[S any, K comparable, V any] func(ctx context.Context, split S, emit func(K, V)) error

// ReduceFunc folds the values of one key. Values arrive in unspecified
// order; the function must be insensitive to it (commutative monoid),
// which is what makes the computation deterministic under parallelism.
type ReduceFunc[K comparable, V any] func(key K, values []V) (V, error)

// ErrTooManyFailures is returned when a map task exhausts its attempts.
var ErrTooManyFailures = errors.New("mapreduce: map task exhausted attempts")

// Run executes a MapReduce job over splits and returns the reduced
// key/value map. combine, if non-nil, is applied map-side per split to
// shrink shuffle volume (classic combiner; usually the same function
// as reduce for associative aggregations).
func Run[S any, K comparable, V any](
	ctx context.Context,
	splits []S,
	mapf MapFunc[S, K, V],
	combine ReduceFunc[K, V],
	reduce ReduceFunc[K, V],
	cfg Config,
) (map[K]V, error) {
	if mapf == nil || reduce == nil {
		return nil, errors.New("mapreduce: nil map or reduce function")
	}
	cfg = cfg.normalized()
	if len(splits) == 0 {
		return map[K]V{}, nil
	}

	seed := maphash.MakeSeed()
	nRed := cfg.Reducers

	// Each map task owns a private bucket set; buckets are merged into
	// reducer inputs after the map phase (no locks on the hot path).
	type bucketSet struct {
		buckets []map[K][]V
	}
	taskBuckets := make([]*bucketSet, len(splits))

	mapErr := stream.ForEach(ctx, len(splits), cfg.Mappers, func(ctx context.Context, i int) error {
		var lastErr error
		for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
			bs := &bucketSet{buckets: make([]map[K][]V, nRed)}
			emit := func(k K, v V) {
				var h maphash.Hash
				h.SetSeed(seed)
				writeKey(&h, k)
				b := int(h.Sum64() % uint64(nRed))
				if bs.buckets[b] == nil {
					bs.buckets[b] = make(map[K][]V)
				}
				bs.buckets[b][k] = append(bs.buckets[b][k], v)
			}
			if err := mapf(ctx, splits[i], emit); err != nil {
				// Cancellation is not a task failure: retrying a
				// cancelled mapper can only fail again, so surface it
				// immediately instead of burning the attempt budget.
				if ctx.Err() != nil {
					return ctx.Err()
				}
				lastErr = err
				continue // retry with fresh buckets
			}
			// Map-side combine.
			if combine != nil {
				for _, bucket := range bs.buckets {
					for k, vs := range bucket {
						if len(vs) > 1 {
							c, err := combine(k, vs)
							if err != nil {
								return fmt.Errorf("mapreduce: combine: %w", err)
							}
							bucket[k] = append(vs[:0], c)
						}
					}
				}
			}
			taskBuckets[i] = bs
			return nil
		}
		return fmt.Errorf("%w: split %d after %d attempts: %v", ErrTooManyFailures, i, cfg.MaxAttempts, lastErr)
	})
	if mapErr != nil {
		return nil, mapErr
	}

	// Shuffle: merge per-task buckets into per-reducer inputs.
	reducerIn := make([]map[K][]V, nRed)
	for r := 0; r < nRed; r++ {
		reducerIn[r] = make(map[K][]V)
	}
	for _, bs := range taskBuckets {
		if bs == nil {
			continue
		}
		for r, bucket := range bs.buckets {
			for k, vs := range bucket {
				reducerIn[r][k] = append(reducerIn[r][k], vs...)
			}
		}
	}

	// Reduce phase: one goroutine per reducer partition.
	results := make([]map[K]V, nRed)
	var wg sync.WaitGroup
	errCh := make(chan error, nRed)
	wg.Add(nRed)
	for r := 0; r < nRed; r++ {
		go func(r int) {
			defer wg.Done()
			out := make(map[K]V, len(reducerIn[r]))
			for k, vs := range reducerIn[r] {
				v, err := reduce(k, vs)
				if err != nil {
					errCh <- fmt.Errorf("mapreduce: reduce key %v: %w", k, err)
					return
				}
				out[k] = v
			}
			results[r] = out
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	final := make(map[K]V)
	for _, m := range results {
		for k, v := range m {
			final[k] = v
		}
	}
	return final, nil
}

// writeKey hashes a comparable key. Common key kinds get fast paths;
// everything else goes through fmt, which is slower but total.
func writeKey[K comparable](h *maphash.Hash, k K) {
	switch v := any(k).(type) {
	case string:
		h.WriteString(v)
	case int:
		writeUint64(h, uint64(v))
	case int64:
		writeUint64(h, uint64(v))
	case uint64:
		writeUint64(h, v)
	case uint32:
		writeUint64(h, uint64(v))
	case int32:
		writeUint64(h, uint64(v))
	default:
		fmt.Fprintf(h, "%v", v)
	}
}

func writeUint64(h *maphash.Hash, v uint64) {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}
