// Package mapreduce is a stdlib-only MapReduce engine, the execution
// model the paper proposes for the distributed-file strategy: "relying
// on MapReduce or Hadoop style computations on the cloud" (§II). Jobs
// map over dataset splits in parallel, optionally combine map-side,
// shuffle by key hash into reducer buckets, and reduce in parallel.
//
// The failure model mirrors the frameworks it stands in for. Map
// attempts that fail (errors or recovered panics) are retried with
// capped exponential backoff and deterministic jitter, up to
// Config.MaxAttempts. A worker whose node is reported lost
// (Config.NodeFault) stops taking tasks; its queued splits are stolen
// by survivors. With Config.Speculate, splits whose runtime exceeds a
// robust percentile of completed tasks get a backup attempt on an idle
// worker — first finisher wins, the loser's emissions are discarded.
// All of this is safe because every attempt emits into a private
// bucket set that is published exactly once, by the winning attempt.
//
// When the splits live on distinct storage nodes (internal/diskstore),
// the scheduler can be made locality-aware: Config.Nodes/NodeOf carve
// the mapper pool into per-node lanes, each split is queued on the lane
// of the node that owns it, and a lane's workers drain their own queue
// before stealing from the most-loaded other lane. Moving the mapper to
// the data instead of the data to the mapper is the central lever of
// the companion Hadoop work (arXiv 1311.5686); Config.OnTask reports
// each task's placement so callers can account local versus remote data
// motion.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a job.
type Config struct {
	// Mappers bounds concurrent map tasks; <= 0 means GOMAXPROCS.
	Mappers int
	// Reducers is the shuffle fan-in; <= 0 means GOMAXPROCS.
	Reducers int
	// MaxAttempts per map task (>= 1). Transient map failures are
	// retried up to this bound.
	MaxAttempts int
	// RetryBaseDelay is the backoff before the first retry; each later
	// retry doubles it up to RetryMaxDelay. Defaults: 1ms base, 250ms
	// cap. The actual sleep is jittered to 50–100% of the nominal
	// delay, deterministically from (RetrySeed, split, attempt), so
	// retry storms decorrelate without a global RNG making runs
	// unreproducible. Backoff sleeps watch the context: cancellation
	// is never delayed by a pending retry.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// RetrySeed seeds the deterministic backoff jitter.
	RetrySeed uint64
	// Nodes, with NodeOf, turns on locality-aware lane scheduling:
	// mapper w belongs to node w mod Nodes, and split i is queued on
	// the lane of node NodeOf(i). A worker drains its own lane first
	// and steals from the most-loaded other lane only when its own is
	// empty (load balance on skewed splits costs remote motion, never
	// idle workers). <= 0 leaves scheduling placement-free.
	Nodes int
	// NodeOf returns the storage node owning split i. Required when
	// Nodes > 0.
	NodeOf func(split int) int
	// Blind, with Nodes > 0, keeps the per-node mapper homes but serves
	// splits from one global queue in index order regardless of
	// ownership — the placement-blind baseline locality is measured
	// against. Placement accounting (OnTask's local flag) still applies.
	Blind bool
	// LocalOf, if non-nil, overrides the placement predicate used for
	// accounting: whether a worker homed on node home scans split i
	// locally. The default is NodeOf(i) mod Nodes == home; replicated
	// stores pass "home holds any replica of the split's shard".
	LocalOf func(split, home int) bool
	// NodeFault, if non-nil, is consulted by each lane worker before it
	// takes another task; a non-nil error retires the worker (its node
	// left the cluster). Queued splits of a retired lane are stolen by
	// surviving workers, so a node kill degrades throughput, never
	// correctness. Tasks already started by the worker run to
	// completion — the model is a node drained between tasks.
	NodeFault func(node int) error
	// TaskDelay, if non-nil, returns an injected extra runtime for one
	// execution of split i — the deterministic straggler hook
	// (faultinject.Plan.SplitDelay). The sleep watches the context.
	TaskDelay func(split int) time.Duration
	// Speculate launches a backup attempt for a split whose runtime
	// exceeds SpecMultiplier × the SpecQuantile-quantile of completed
	// task durations (once SpecMinDone tasks have completed), on a
	// worker that would otherwise idle. First finisher wins; the
	// loser's emissions are discarded. Defaults: quantile 0.75,
	// multiplier 2, min done 3.
	Speculate      bool
	SpecQuantile   float64
	SpecMultiplier float64
	SpecMinDone    int
	// Stats, if non-nil, accumulates failure/retry/speculation counters
	// for the run (added to, not reset — callers aggregate across jobs).
	Stats *Stats
	// OnTask, if non-nil, is called once per successful map task with
	// the split index, whether the task ran on the lane of the node
	// owning the split (always true when locality is off), and the
	// winning attempt's wall-clock duration. Called concurrently from
	// worker goroutines; implementations must be safe for concurrent
	// use.
	OnTask func(split int, local bool, d time.Duration)
}

// Stats counts the failure-model events of one or more jobs. All
// fields are updated atomically and may be read while a job runs.
type Stats struct {
	// Attempts counts map attempts started; Failures counts attempts
	// that returned an error or panicked; Retries counts re-attempts
	// after a failure (Failures minus permanently failed splits).
	Attempts atomic.Int64
	Failures atomic.Int64
	Retries  atomic.Int64
	// Panics counts attempts that failed by recovered panic
	// (a subset of Failures).
	Panics atomic.Int64
	// SpecLaunched counts backup attempts launched; SpecWins counts
	// backups that finished before the original attempt.
	SpecLaunched atomic.Int64
	SpecWins     atomic.Int64
	// WorkersLost counts lane workers retired by NodeFault.
	WorkersLost atomic.Int64
}

func (c Config) normalized() Config {
	if c.Mappers <= 0 {
		c.Mappers = runtime.GOMAXPROCS(0)
	}
	if c.Reducers <= 0 {
		c.Reducers = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = 250 * time.Millisecond
	}
	if c.SpecQuantile <= 0 || c.SpecQuantile > 1 {
		c.SpecQuantile = 0.75
	}
	if c.SpecMultiplier <= 0 {
		c.SpecMultiplier = 2
	}
	if c.SpecMinDone <= 0 {
		c.SpecMinDone = 3
	}
	return c
}

// MapFunc processes one split, emitting key/value pairs. It may be
// retried or run twice concurrently (speculation); it must be
// idempotent from the job's perspective (emissions of losing attempts
// are discarded).
type MapFunc[S any, K comparable, V any] func(ctx context.Context, split S, emit func(K, V)) error

// ReduceFunc folds the values of one key. Values arrive in unspecified
// order; the function must be insensitive to it (commutative monoid),
// which is what makes the computation deterministic under parallelism.
type ReduceFunc[K comparable, V any] func(key K, values []V) (V, error)

// ErrTooManyFailures is returned when a map task exhausts its attempts.
var ErrTooManyFailures = errors.New("mapreduce: map task exhausted attempts")

// ErrWorkersLost is returned when every worker has been retired by
// NodeFault while splits remain unprocessed — the whole cluster died.
var ErrWorkersLost = errors.New("mapreduce: all workers lost")

// laneScheduler hands out split indices to workers keyed by the
// worker's home node. In affine mode each node has its own FIFO lane
// and a worker steals from the most-loaded foreign lane only when its
// own is dry; in blind mode one global FIFO serves every worker. The
// caller decides locality (owner node == home node) itself — the
// scheduler only orders the work.
type laneScheduler struct {
	mu    sync.Mutex
	lanes [][]int // per-lane FIFO of split indices; one lane when blind
	heads []int   // consumed prefix per lane
}

func newLaneScheduler(n, nodes int, nodeOf func(int) int, blind bool) *laneScheduler {
	s := &laneScheduler{}
	if blind {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		s.lanes = [][]int{all}
		s.heads = []int{0}
		return s
	}
	s.lanes = make([][]int, nodes)
	s.heads = make([]int, nodes)
	for i := 0; i < n; i++ {
		lane := nodeOf(i) % nodes
		if lane < 0 {
			lane += nodes
		}
		s.lanes[lane] = append(s.lanes[lane], i)
	}
	return s
}

// next returns the next split for a worker homed on the given node,
// preferring the home lane and stealing from the longest foreign lane
// otherwise. ok is false when no work remains.
func (s *laneScheduler) next(home int) (split int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lane := home % len(s.lanes)
	if s.heads[lane] < len(s.lanes[lane]) {
		split = s.lanes[lane][s.heads[lane]]
		s.heads[lane]++
		return split, true
	}
	// Steal from the lane with the most unconsumed work.
	best, bestLeft := -1, 0
	for l := range s.lanes {
		if left := len(s.lanes[l]) - s.heads[l]; left > bestLeft {
			best, bestLeft = l, left
		}
	}
	if best < 0 {
		return 0, false
	}
	split = s.lanes[best][s.heads[best]]
	s.heads[best]++
	return split, true
}

// splitState tracks one split's attempt chains. done flips exactly
// once (CAS by the winning attempt — the commit point that makes
// duplicate speculative execution safe); chains counts attempt chains
// that could still produce the split's result (the original, plus a
// speculative backup), so a chain's permanent failure is fatal only
// when it was the last hope; spec latches that a backup was launched.
type splitState struct {
	done   atomic.Bool
	chains atomic.Int32
	spec   atomic.Bool
}

// specCtl decides when a running split is a straggler worth backing
// up: its elapsed time exceeds a robust percentile of completed task
// durations by a configurable multiple.
type specCtl struct {
	mu      sync.Mutex
	durs    []time.Duration
	running map[int]time.Time // split -> original chain's start
}

func newSpecCtl() *specCtl { return &specCtl{running: map[int]time.Time{}} }

func (c *specCtl) start(i int) {
	c.mu.Lock()
	c.running[i] = time.Now()
	c.mu.Unlock()
}

func (c *specCtl) complete(i int, d time.Duration) {
	c.mu.Lock()
	delete(c.running, i)
	c.durs = append(c.durs, d)
	c.mu.Unlock()
}

// candidate returns the longest-running eligible split past the
// straggler threshold, if any.
func (c *specCtl) candidate(cfg Config, eligible func(int) bool) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.durs) < cfg.SpecMinDone || len(c.running) == 0 {
		return 0, false
	}
	sorted := append([]time.Duration(nil), c.durs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	q := sorted[int(cfg.SpecQuantile*float64(len(sorted)-1))]
	thr := time.Duration(float64(q) * cfg.SpecMultiplier)
	if thr < time.Millisecond {
		// Floor: with microsecond tasks, an OS scheduling hiccup would
		// otherwise look like a straggler.
		thr = time.Millisecond
	}
	now := time.Now()
	best, bestElapsed := -1, thr
	for i, t0 := range c.running {
		if !eligible(i) {
			continue
		}
		if el := now.Sub(t0); el >= bestElapsed {
			best, bestElapsed = i, el
		}
	}
	return best, best >= 0
}

// Run executes a MapReduce job over splits and returns the reduced
// key/value map. combine, if non-nil, is applied map-side per split to
// shrink shuffle volume (classic combiner; usually the same function
// as reduce for associative aggregations).
func Run[S any, K comparable, V any](
	ctx context.Context,
	splits []S,
	mapf MapFunc[S, K, V],
	combine ReduceFunc[K, V],
	reduce ReduceFunc[K, V],
	cfg Config,
) (map[K]V, error) {
	if mapf == nil || reduce == nil {
		return nil, errors.New("mapreduce: nil map or reduce function")
	}
	if cfg.Nodes > 0 && cfg.NodeOf == nil {
		return nil, errors.New("mapreduce: Nodes set without NodeOf")
	}
	cfg = cfg.normalized()
	if cfg.Nodes <= 0 {
		// Placement-free jobs run as a single-lane cluster: same FIFO
		// order and worker bound, and the failure model (retry backoff,
		// panic recovery, node faults against node 0, speculation)
		// applies uniformly.
		cfg.Nodes = 1
		cfg.NodeOf = func(int) int { return 0 }
		cfg.Blind = false
	}
	if len(splits) == 0 {
		return map[K]V{}, nil
	}
	stats := cfg.Stats
	if stats == nil {
		stats = &Stats{}
	}

	seed := maphash.MakeSeed()
	nRed := cfg.Reducers

	// Each map attempt owns a private bucket set; the winning attempt
	// publishes its set exactly once (splitState.done CAS), and buckets
	// are merged into reducer inputs after the map phase — no locks on
	// the hot path, and no way for a retried or speculative duplicate
	// to leak emissions.
	type bucketSet struct {
		buckets []map[K][]V
	}
	taskBuckets := make([]*bucketSet, len(splits))
	states := make([]splitState, len(splits))
	var remaining atomic.Int64
	remaining.Store(int64(len(splits)))
	ctl := newSpecCtl()

	// runAttempt executes one map attempt of split i with panics
	// recovered into errors, so a poisoned split burns its attempt
	// budget instead of crashing the process.
	runAttempt := func(ctx context.Context, i int, bs *bucketSet) (err error) {
		defer func() {
			if r := recover(); r != nil {
				stats.Panics.Add(1)
				err = fmt.Errorf("mapreduce: map attempt panicked on split %d: %v", i, r)
			}
		}()
		emit := func(k K, v V) {
			var h maphash.Hash
			h.SetSeed(seed)
			writeKey(&h, k)
			b := int(h.Sum64() % uint64(nRed))
			if bs.buckets[b] == nil {
				bs.buckets[b] = make(map[K][]V)
			}
			bs.buckets[b][k] = append(bs.buckets[b][k], v)
		}
		if err := mapf(ctx, splits[i], emit); err != nil {
			return err
		}
		if combine != nil {
			for _, bucket := range bs.buckets {
				for k, vs := range bucket {
					if len(vs) > 1 {
						c, err := combine(k, vs)
						if err != nil {
							return fmt.Errorf("mapreduce: combine: %w", err)
						}
						bucket[k] = append(vs[:0], c)
					}
				}
			}
		}
		return nil
	}

	// runChain drives one attempt chain of split i through the retry
	// loop. Two chains may run concurrently for the same split (the
	// original and a speculative backup); whichever commits the done
	// CAS first wins and publishes its buckets, the other's work is
	// dropped on the floor.
	runChain := func(ctx context.Context, i int, local, backup bool) error {
		var lastErr error
		for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
			if states[i].done.Load() {
				return nil // the other chain already won
			}
			if attempt > 0 {
				stats.Retries.Add(1)
				if err := sleepBackoff(ctx, cfg, i, attempt); err != nil {
					return err
				}
			}
			start := time.Now()
			if cfg.TaskDelay != nil {
				if d := cfg.TaskDelay(i); d > 0 {
					if err := sleepCtx(ctx, d); err != nil {
						return err
					}
				}
			}
			stats.Attempts.Add(1)
			bs := &bucketSet{buckets: make([]map[K][]V, nRed)}
			if err := runAttempt(ctx, i, bs); err != nil {
				// Cancellation is not a task failure: retrying a
				// cancelled mapper can only fail again, so surface it
				// immediately instead of burning the attempt budget.
				if ctx.Err() != nil {
					return ctx.Err()
				}
				stats.Failures.Add(1)
				lastErr = err
				continue // retry with fresh buckets
			}
			if states[i].done.CompareAndSwap(false, true) {
				taskBuckets[i] = bs
				d := time.Since(start)
				ctl.complete(i, d)
				remaining.Add(-1)
				if backup {
					stats.SpecWins.Add(1)
				}
				if cfg.OnTask != nil {
					cfg.OnTask(i, local, d)
				}
			}
			return nil
		}
		return fmt.Errorf("%w: split %d after %d attempts: %w", ErrTooManyFailures, i, cfg.MaxAttempts, lastErr)
	}

	if err := runLanes(ctx, len(splits), cfg, stats, states, ctl, &remaining, runChain); err != nil {
		return nil, err
	}

	// Shuffle: merge per-task buckets into per-reducer inputs.
	reducerIn := make([]map[K][]V, nRed)
	for r := 0; r < nRed; r++ {
		reducerIn[r] = make(map[K][]V)
	}
	for _, bs := range taskBuckets {
		if bs == nil {
			continue
		}
		for r, bucket := range bs.buckets {
			for k, vs := range bucket {
				reducerIn[r][k] = append(reducerIn[r][k], vs...)
			}
		}
	}

	// Reduce phase: one goroutine per reducer partition. Panics in the
	// reduce function surface as job errors, not process crashes.
	results := make([]map[K]V, nRed)
	var wg sync.WaitGroup
	errCh := make(chan error, nRed)
	wg.Add(nRed)
	for r := 0; r < nRed; r++ {
		go func(r int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					stats.Panics.Add(1)
					errCh <- fmt.Errorf("mapreduce: reduce panicked: %v", rec)
				}
			}()
			out := make(map[K]V, len(reducerIn[r]))
			for k, vs := range reducerIn[r] {
				v, err := reduce(k, vs)
				if err != nil {
					errCh <- fmt.Errorf("mapreduce: reduce key %v: %w", k, err)
					return
				}
				out[k] = v
			}
			results[r] = out
		}(r)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	final := make(map[K]V)
	for _, m := range results {
		for k, v := range m {
			final[k] = v
		}
	}
	return final, nil
}

// runLanes is the locality-aware map-phase dispatcher: cfg.Mappers
// workers, worker w homed on node w mod cfg.Nodes, pulling splits from
// a laneScheduler (per-node lanes in affine mode, one global queue in
// blind mode). A task is local when the split's owning node equals the
// worker's home — true by construction for a home-lane pop, false for
// a steal, and ~1/Nodes of the time under the blind baseline
// (Config.LocalOf overrides the predicate for replicated stores). The
// first fatal error cancels outstanding work, like stream.ForEach.
//
// A worker checks NodeFault before each pop, so a killed node strands
// nothing: unpopped splits are stolen by surviving lanes. When the
// scheduler runs dry but splits are still in flight, speculating
// workers stay to run backups of stragglers instead of idling.
func runLanes(ctx context.Context, n int, cfg Config, stats *Stats,
	states []splitState, ctl *specCtl, remaining *atomic.Int64,
	runChain func(ctx context.Context, i int, local, backup bool) error,
) error {
	workers := cfg.Mappers
	if workers > n {
		workers = n
	}
	sched := newLaneScheduler(n, cfg.Nodes, cfg.NodeOf, cfg.Blind)
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// When the last split commits, the phase cancels its own context so
	// attempts that lost a speculative race (possibly stuck on a
	// straggling replica) abort instead of pinning the job open; the
	// flag distinguishes that benign teardown from a real failure.
	var mapComplete atomic.Bool
	finishPhase := func() {
		mapComplete.Store(true)
		cancel()
	}

	isLocal := func(split, home int) bool {
		if cfg.LocalOf != nil {
			return cfg.LocalOf(split, home)
		}
		return cfg.NodeOf(split)%cfg.Nodes == home
	}

	var errMu sync.Mutex
	var firstErr error
	latchErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	// finish consumes a chain's outcome; false retires the worker.
	finish := func(i int, err error) bool {
		if err == nil {
			return true
		}
		if ctx.Err() != nil {
			// Job-level cancellation, first fatal error elsewhere, or the
			// phase completing while this chain was a speculative loser.
			if !mapComplete.Load() {
				latchErr(err)
			}
			cancel()
			return false
		}
		if states[i].chains.Add(-1) > 0 || states[i].done.Load() {
			// A concurrent chain can still (or already did) produce this
			// split — the failure is absorbed, the worker moves on.
			return true
		}
		latchErr(err)
		return false
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(home int) {
			defer wg.Done()
			for {
				// Fault check precedes the ctx check so a dead worker is
				// counted exactly once even when the job finishes first.
				if cfg.NodeFault != nil {
					if cfg.NodeFault(home) != nil {
						stats.WorkersLost.Add(1)
						return
					}
				}
				select {
				case <-ctx.Done():
					return
				default:
				}
				if i, ok := sched.next(home); ok {
					states[i].chains.Add(1)
					ctl.start(i)
					if !finish(i, runChain(ctx, i, isLocal(i, home), false)) {
						return
					}
					continue
				}
				if remaining.Load() == 0 {
					finishPhase()
					return
				}
				if !cfg.Speculate {
					// Splits still in flight belong to live chains on
					// other workers; without speculation there is
					// nothing useful left for this one.
					return
				}
				i, ok := ctl.candidate(cfg, func(s int) bool {
					return !states[s].spec.Load() && !states[s].done.Load()
				})
				if ok && states[i].spec.CompareAndSwap(false, true) {
					states[i].chains.Add(1)
					stats.SpecLaunched.Add(1)
					if !finish(i, runChain(ctx, i, isLocal(i, home), true)) {
						return
					}
					continue
				}
				if err := sleepCtx(ctx, 200*time.Microsecond); err != nil {
					return
				}
			}
		}(w % cfg.Nodes)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if remaining.Load() == 0 {
		return nil
	}
	if err := parent.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: %d splits unprocessed", ErrWorkersLost, remaining.Load())
}

// sleepBackoff sleeps the capped-exponential, deterministically
// jittered delay before retry number attempt of split, returning early
// with the context's error on cancellation.
func sleepBackoff(ctx context.Context, cfg Config, split, attempt int) error {
	return sleepCtx(ctx, backoffDelay(cfg, split, attempt))
}

// backoffDelay is the pure delay schedule: base·2^(attempt-1) capped at
// RetryMaxDelay, jittered to 50–100% of nominal by a hash of
// (RetrySeed, split, attempt) — the same run replays the same sleeps,
// different splits decorrelate.
func backoffDelay(cfg Config, split, attempt int) time.Duration {
	d := cfg.RetryMaxDelay
	if shift := attempt - 1; shift < 20 {
		if base := cfg.RetryBaseDelay << shift; base < d {
			d = base
		}
	}
	h := mix64(cfg.RetrySeed ^ uint64(split)*0x9e3779b97f4a7c15 ^ uint64(attempt)*0xc2b2ae3d27d4eb4f)
	frac := float64(h>>11) / (1 << 53)
	return d/2 + time.Duration(frac*float64(d/2))
}

// sleepCtx sleeps d unless the context is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// mix64 is the SplitMix64 finalizer — cheap, well-distributed bits for
// the deterministic jitter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// writeKey hashes a comparable key. Common key kinds get fast paths;
// everything else goes through fmt, which is slower but total.
func writeKey[K comparable](h *maphash.Hash, k K) {
	switch v := any(k).(type) {
	case string:
		h.WriteString(v)
	case int:
		writeUint64(h, uint64(v))
	case int64:
		writeUint64(h, uint64(v))
	case uint64:
		writeUint64(h, v)
	case uint32:
		writeUint64(h, uint64(v))
	case int32:
		writeUint64(h, uint64(v))
	default:
		fmt.Fprintf(h, "%v", v)
	}
}

func writeUint64(h *maphash.Hash, v uint64) {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}
