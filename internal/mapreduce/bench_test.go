package mapreduce

import (
	"context"
	"fmt"
	"testing"
)

func BenchmarkRunSumJob(b *testing.B) {
	const itemsPerSplit = 100_000
	splits := make([]int, 16)
	for i := range splits {
		splits[i] = i
	}
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		for i := 0; i < itemsPerSplit; i++ {
			emit(uint64(i%1024), float64(i))
		}
		return nil
	}
	for _, cfg := range []Config{
		{Mappers: 1, Reducers: 1},
		{Mappers: 8, Reducers: 4},
	} {
		b.Run(fmt.Sprintf("m%dr%d", cfg.Mappers, cfg.Reducers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), splits, mapf, sumReduce, sumReduce, cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(splits)*itemsPerSplit)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		})
	}
}

func BenchmarkCombinerEffect(b *testing.B) {
	splits := make([]int, 8)
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		for i := 0; i < 200_000; i++ {
			emit(uint64(i%64), 1) // few keys, many values: combiner shines
		}
		return nil
	}
	for _, withCombiner := range []bool{false, true} {
		name := "without"
		comb := ReduceFunc[uint64, float64](nil)
		if withCombiner {
			name = "with"
			comb = sumReduce
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(context.Background(), splits, mapf, comb, sumReduce, Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
