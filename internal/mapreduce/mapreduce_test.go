package mapreduce

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func sumReduce(_ uint64, vs []float64) (float64, error) {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s, nil
}

func TestWordCountStyleSum(t *testing.T) {
	// Splits are integer ranges; map emits (i%10, i).
	splits := []int{0, 1, 2, 3}
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		for i := split * 250; i < (split+1)*250; i++ {
			emit(uint64(i%10), float64(i))
		}
		return nil
	}
	got, err := Run(context.Background(), splits, mapf, sumReduce, sumReduce, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("keys = %d", len(got))
	}
	// Reference computation.
	want := map[uint64]float64{}
	for i := 0; i < 1000; i++ {
		want[uint64(i%10)] += float64(i)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: %v, want %v", k, got[k], v)
		}
	}
}

func TestDeterministicAcrossConfigs(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		for i := 0; i < 500; i++ {
			emit(uint64((split*7+i)%31), float64(i)*1.5)
		}
		return nil
	}
	splits := []int{0, 1, 2, 3, 4, 5, 6, 7}
	base, err := Run(context.Background(), splits, mapf, nil, sumReduce, Config{Mappers: 1, Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Mappers: 4, Reducers: 2},
		{Mappers: 8, Reducers: 8},
		{Mappers: 2, Reducers: 5, MaxAttempts: 3},
	} {
		got, err := Run(context.Background(), splits, mapf, sumReduce, sumReduce, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Fatalf("cfg %+v: key count %d vs %d", cfg, len(got), len(base))
		}
		for k, v := range base {
			if d := got[k] - v; d > 1e-9 || d < -1e-9 {
				t.Fatalf("cfg %+v key %d: %v vs %v", cfg, k, got[k], v)
			}
		}
	}
}

func TestCombinerEquivalenceProperty(t *testing.T) {
	f := func(data []uint16) bool {
		splits := [][]uint16{data}
		if len(data) > 4 {
			mid := len(data) / 2
			splits = [][]uint16{data[:mid], data[mid:]}
		}
		mapf := func(_ context.Context, split []uint16, emit func(uint64, float64)) error {
			for _, v := range split {
				emit(uint64(v%13), float64(v))
			}
			return nil
		}
		with, err1 := Run(context.Background(), splits, mapf, sumReduce, sumReduce, Config{Reducers: 3})
		without, err2 := Run(context.Background(), splits, mapf, nil, sumReduce, Config{Reducers: 3})
		if err1 != nil || err2 != nil {
			return false
		}
		if len(with) != len(without) {
			return false
		}
		for k, v := range with {
			d := without[k] - v
			if d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMapFailureRetried(t *testing.T) {
	var attempts atomic.Int32
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		if split == 1 && attempts.Add(1) < 3 {
			return errors.New("transient")
		}
		emit(uint64(split), 1)
		return nil
	}
	got, err := Run(context.Background(), []int{0, 1, 2}, mapf, nil, sumReduce, Config{MaxAttempts: 3, Mappers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Fatalf("retried split result = %v", got[1])
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
}

func TestMapFailureExhaustsAttempts(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		return errors.New("permanent")
	}
	_, err := Run(context.Background(), []int{0}, mapf, nil, sumReduce, Config{MaxAttempts: 2})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
}

func TestFailedAttemptEmissionsDiscarded(t *testing.T) {
	// A map task that emits then fails must not leak its emissions.
	var first atomic.Bool
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(7, 100)
		if first.CompareAndSwap(false, true) {
			return errors.New("fail after emitting")
		}
		return nil
	}
	got, err := Run(context.Background(), []int{0}, mapf, nil, sumReduce, Config{MaxAttempts: 2, Mappers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[7] != 100 {
		t.Fatalf("key 7 = %v, want 100 (single successful attempt)", got[7])
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(1, 1)
		return nil
	}
	boom := errors.New("reduce boom")
	_, err := Run(context.Background(), []int{0}, mapf, nil,
		func(uint64, []float64) (float64, error) { return 0, boom }, Config{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCombineErrorPropagates(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(1, 1)
		emit(1, 2)
		return nil
	}
	boom := errors.New("combine boom")
	_, err := Run(context.Background(), []int{0}, mapf,
		func(uint64, []float64) (float64, error) { return 0, boom },
		sumReduce, Config{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptySplits(t *testing.T) {
	got, err := Run(context.Background(), nil,
		func(_ context.Context, _ int, _ func(uint64, float64)) error { return nil },
		nil, sumReduce, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("no splits should yield no keys")
	}
}

func TestNilFuncsRejected(t *testing.T) {
	if _, err := Run[int, uint64, float64](context.Background(), []int{1}, nil, nil, sumReduce, Config{}); err == nil {
		t.Fatal("nil map should error")
	}
	mapf := func(_ context.Context, _ int, _ func(uint64, float64)) error { return nil }
	if _, err := Run[int, uint64, float64](context.Background(), []int{1}, mapf, nil, nil, Config{}); err == nil {
		t.Fatal("nil reduce should error")
	}
}

func TestStringKeys(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(string, float64)) error {
		emit("alpha", 1)
		emit("beta", 2)
		return nil
	}
	red := func(_ string, vs []float64) (float64, error) {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s, nil
	}
	got, err := Run(context.Background(), []int{0, 1, 2}, mapf, red, red, Config{Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got["alpha"] != 3 || got["beta"] != 6 {
		t.Fatalf("got %v", got)
	}
}

// A job cancelled mid-flight — after some map tasks have already
// succeeded — must stop promptly with the context error, and the
// cancelled mapper must NOT be retried: retries are for transient task
// failures, not for the job being torn down.
func TestMidJobCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started, retries atomic.Int32
	mapf := func(ctx context.Context, split int, emit func(uint64, float64)) error {
		n := started.Add(1)
		if n > 3 {
			retries.Add(1) // any attempt after the cancelling one is a retry or a straggler
		}
		if n == 3 {
			cancel() // third task cancels the job partway through
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		emit(uint64(split), 1)
		return nil
	}
	_, err := Run(ctx, []int{0, 1, 2, 3, 4, 5, 6, 7}, mapf, nil, sumReduce,
		Config{Mappers: 1, MaxAttempts: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if retries.Load() != 0 {
		t.Fatalf("cancelled mapper was retried %d times; cancellation must not burn attempts", retries.Load())
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(1, 1)
		return nil
	}
	if _, err := Run(ctx, make([]int, 10000), mapf, nil, sumReduce, Config{}); err == nil {
		t.Fatal("cancelled job should error")
	}
}

// Deterministic unit coverage of the lane scheduler itself: affine
// pops drain the home lane in FIFO order, steals come from the
// most-loaded foreign lane, and blind mode is one global FIFO.
func TestLaneSchedulerAffineOrder(t *testing.T) {
	// 7 splits on 3 nodes, nodeOf = i % 3: lanes {0,3,6}, {1,4}, {2,5}.
	s := newLaneScheduler(7, 3, func(i int) int { return i % 3 }, false)
	for _, want := range []int{0, 3, 6} {
		got, ok := s.next(0)
		if !ok || got != want {
			t.Fatalf("home-lane pop = %d,%v; want %d", got, ok, want)
		}
	}
	// Lane 0 dry: the next pop for home 0 steals from lane 1 or 2 (both
	// hold 2) — the scheduler picks the first longest, lane 1's head.
	got, ok := s.next(0)
	if !ok || got != 1 {
		t.Fatalf("steal = %d,%v; want 1 (head of most-loaded lane)", got, ok)
	}
	// Now lane 2 (2 left) is strictly longer than lane 1 (1 left).
	if got, _ := s.next(0); got != 2 {
		t.Fatalf("second steal = %d, want 2", got)
	}
	// Home-lane preference still applies for other homes.
	if got, _ := s.next(1); got != 4 {
		t.Fatalf("home-1 pop = %d, want 4", got)
	}
	if got, _ := s.next(2); got != 5 {
		t.Fatalf("home-2 pop = %d, want 5", got)
	}
	if _, ok := s.next(0); ok {
		t.Fatal("drained scheduler handed out work")
	}
}

func TestLaneSchedulerBlindGlobalFIFO(t *testing.T) {
	s := newLaneScheduler(5, 3, func(i int) int { return i % 3 }, true)
	for want := 0; want < 5; want++ {
		got, ok := s.next(want % 3) // home is irrelevant in blind mode
		if !ok || got != want {
			t.Fatalf("blind pop = %d,%v; want %d", got, ok, want)
		}
	}
	if _, ok := s.next(0); ok {
		t.Fatal("drained blind scheduler handed out work")
	}
}

// Locality-aware runs must stay bit-equivalent to placement-free runs
// (placement only reorders scheduling, never values), every split must
// be mapped exactly once, and local+remote accounting must cover every
// task, in both affine and blind modes.
func TestLocalityEquivalenceAndAccounting(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		for i := 0; i < 200; i++ {
			emit(uint64((split*11+i)%17), float64(split*1000+i))
		}
		return nil
	}
	splits := make([]int, 24)
	for i := range splits {
		splits[i] = i
	}
	base, err := Run(context.Background(), splits, mapf, nil, sumReduce, Config{Mappers: 1, Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, blind := range []bool{false, true} {
		var local, remote, tasks atomic.Int64
		cfg := Config{
			Mappers: 6, Reducers: 3,
			Nodes:  4,
			NodeOf: func(i int) int { return i % 4 },
			Blind:  blind,
			OnTask: func(split int, isLocal bool, _ time.Duration) {
				tasks.Add(1)
				if isLocal {
					local.Add(1)
				} else {
					remote.Add(1)
				}
			},
		}
		got, err := Run(context.Background(), splits, mapf, sumReduce, sumReduce, cfg)
		if err != nil {
			t.Fatalf("blind=%v: %v", blind, err)
		}
		if len(got) != len(base) {
			t.Fatalf("blind=%v: key count %d vs %d", blind, len(got), len(base))
		}
		for k, v := range base {
			if d := got[k] - v; d > 1e-9 || d < -1e-9 {
				t.Fatalf("blind=%v key %d: %v vs %v", blind, k, got[k], v)
			}
		}
		if tasks.Load() != int64(len(splits)) {
			t.Fatalf("blind=%v: OnTask fired %d times for %d splits", blind, tasks.Load(), len(splits))
		}
		if local.Load()+remote.Load() != int64(len(splits)) {
			t.Fatalf("blind=%v: local %d + remote %d != %d", blind, local.Load(), remote.Load(), len(splits))
		}
	}
}

// A single worker homed on node 0 drains its own lane before touching
// any other: the first lane-0-sized prefix of its tasks must all be
// local, the rest remote — deterministic because there is no second
// worker to race.
func TestSingleWorkerDrainsHomeLaneFirst(t *testing.T) {
	type placed struct {
		split int
		local bool
	}
	var order []placed
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(0, 1)
		return nil
	}
	cfg := Config{
		Mappers: 1, Reducers: 1,
		Nodes:  3,
		NodeOf: func(i int) int { return i % 3 },
		OnTask: func(split int, local bool, _ time.Duration) {
			order = append(order, placed{split, local}) // Mappers=1: no races
		},
	}
	if _, err := Run(context.Background(), make([]int, 9), mapf, nil, sumReduce, cfg); err != nil {
		t.Fatal(err)
	}
	if len(order) != 9 {
		t.Fatalf("tasks = %d", len(order))
	}
	for i, p := range order {
		wantLocal := i < 3 // lane 0 holds splits 0,3,6
		if p.local != wantLocal {
			t.Fatalf("task %d (split %d): local=%v, want %v", i, p.split, p.local, wantLocal)
		}
		if wantLocal && p.split%3 != 0 {
			t.Fatalf("task %d drew split %d before lane 0 drained", i, p.split)
		}
	}
}

func TestNodesWithoutNodeOfRejected(t *testing.T) {
	mapf := func(_ context.Context, _ int, emit func(uint64, float64)) error {
		emit(0, 1)
		return nil
	}
	if _, err := Run(context.Background(), []int{0}, mapf, nil, sumReduce, Config{Nodes: 2}); err == nil {
		t.Fatal("Nodes without NodeOf should error")
	}
}

// Retries must survive lane scheduling: a transiently failing split on
// a foreign lane still completes, and placement accounting fires once.
func TestLaneRetryStillBounded(t *testing.T) {
	var attempts atomic.Int32
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		if split == 2 && attempts.Add(1) < 2 {
			return errors.New("transient")
		}
		emit(uint64(split), 1)
		return nil
	}
	var tasks atomic.Int32
	cfg := Config{
		Mappers: 2, MaxAttempts: 3,
		Nodes:  2,
		NodeOf: func(i int) int { return i % 2 },
		OnTask: func(int, bool, time.Duration) { tasks.Add(1) },
	}
	got, err := Run(context.Background(), []int{0, 1, 2, 3}, mapf, nil, sumReduce, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] != 1 {
		t.Fatalf("retried split result = %v", got[2])
	}
	if tasks.Load() != 4 {
		t.Fatalf("OnTask fired %d times, want 4 (once per split, not per attempt)", tasks.Load())
	}
}

// Cancellation propagates through the lane pool exactly as through the
// placement-free path.
func TestLaneCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mapf := func(_ context.Context, _ int, emit func(uint64, float64)) error {
		emit(1, 1)
		return nil
	}
	cfg := Config{Nodes: 3, NodeOf: func(i int) int { return i % 3 }}
	if _, err := Run(ctx, make([]int, 1000), mapf, nil, sumReduce, cfg); err == nil {
		t.Fatal("cancelled lane job should error")
	}
}
