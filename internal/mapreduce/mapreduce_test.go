package mapreduce

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func sumReduce(_ uint64, vs []float64) (float64, error) {
	var s float64
	for _, v := range vs {
		s += v
	}
	return s, nil
}

func TestWordCountStyleSum(t *testing.T) {
	// Splits are integer ranges; map emits (i%10, i).
	splits := []int{0, 1, 2, 3}
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		for i := split * 250; i < (split+1)*250; i++ {
			emit(uint64(i%10), float64(i))
		}
		return nil
	}
	got, err := Run(context.Background(), splits, mapf, sumReduce, sumReduce, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("keys = %d", len(got))
	}
	// Reference computation.
	want := map[uint64]float64{}
	for i := 0; i < 1000; i++ {
		want[uint64(i%10)] += float64(i)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: %v, want %v", k, got[k], v)
		}
	}
}

func TestDeterministicAcrossConfigs(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		for i := 0; i < 500; i++ {
			emit(uint64((split*7+i)%31), float64(i)*1.5)
		}
		return nil
	}
	splits := []int{0, 1, 2, 3, 4, 5, 6, 7}
	base, err := Run(context.Background(), splits, mapf, nil, sumReduce, Config{Mappers: 1, Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Mappers: 4, Reducers: 2},
		{Mappers: 8, Reducers: 8},
		{Mappers: 2, Reducers: 5, MaxAttempts: 3},
	} {
		got, err := Run(context.Background(), splits, mapf, sumReduce, sumReduce, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(base) {
			t.Fatalf("cfg %+v: key count %d vs %d", cfg, len(got), len(base))
		}
		for k, v := range base {
			if d := got[k] - v; d > 1e-9 || d < -1e-9 {
				t.Fatalf("cfg %+v key %d: %v vs %v", cfg, k, got[k], v)
			}
		}
	}
}

func TestCombinerEquivalenceProperty(t *testing.T) {
	f := func(data []uint16) bool {
		splits := [][]uint16{data}
		if len(data) > 4 {
			mid := len(data) / 2
			splits = [][]uint16{data[:mid], data[mid:]}
		}
		mapf := func(_ context.Context, split []uint16, emit func(uint64, float64)) error {
			for _, v := range split {
				emit(uint64(v%13), float64(v))
			}
			return nil
		}
		with, err1 := Run(context.Background(), splits, mapf, sumReduce, sumReduce, Config{Reducers: 3})
		without, err2 := Run(context.Background(), splits, mapf, nil, sumReduce, Config{Reducers: 3})
		if err1 != nil || err2 != nil {
			return false
		}
		if len(with) != len(without) {
			return false
		}
		for k, v := range with {
			d := without[k] - v
			if d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMapFailureRetried(t *testing.T) {
	var attempts atomic.Int32
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		if split == 1 && attempts.Add(1) < 3 {
			return errors.New("transient")
		}
		emit(uint64(split), 1)
		return nil
	}
	got, err := Run(context.Background(), []int{0, 1, 2}, mapf, nil, sumReduce, Config{MaxAttempts: 3, Mappers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 1 {
		t.Fatalf("retried split result = %v", got[1])
	}
	if attempts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", attempts.Load())
	}
}

func TestMapFailureExhaustsAttempts(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		return errors.New("permanent")
	}
	_, err := Run(context.Background(), []int{0}, mapf, nil, sumReduce, Config{MaxAttempts: 2})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
}

func TestFailedAttemptEmissionsDiscarded(t *testing.T) {
	// A map task that emits then fails must not leak its emissions.
	var first atomic.Bool
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(7, 100)
		if first.CompareAndSwap(false, true) {
			return errors.New("fail after emitting")
		}
		return nil
	}
	got, err := Run(context.Background(), []int{0}, mapf, nil, sumReduce, Config{MaxAttempts: 2, Mappers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[7] != 100 {
		t.Fatalf("key 7 = %v, want 100 (single successful attempt)", got[7])
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(1, 1)
		return nil
	}
	boom := errors.New("reduce boom")
	_, err := Run(context.Background(), []int{0}, mapf, nil,
		func(uint64, []float64) (float64, error) { return 0, boom }, Config{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestCombineErrorPropagates(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(1, 1)
		emit(1, 2)
		return nil
	}
	boom := errors.New("combine boom")
	_, err := Run(context.Background(), []int{0}, mapf,
		func(uint64, []float64) (float64, error) { return 0, boom },
		sumReduce, Config{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptySplits(t *testing.T) {
	got, err := Run(context.Background(), nil,
		func(_ context.Context, _ int, _ func(uint64, float64)) error { return nil },
		nil, sumReduce, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("no splits should yield no keys")
	}
}

func TestNilFuncsRejected(t *testing.T) {
	if _, err := Run[int, uint64, float64](context.Background(), []int{1}, nil, nil, sumReduce, Config{}); err == nil {
		t.Fatal("nil map should error")
	}
	mapf := func(_ context.Context, _ int, _ func(uint64, float64)) error { return nil }
	if _, err := Run[int, uint64, float64](context.Background(), []int{1}, mapf, nil, nil, Config{}); err == nil {
		t.Fatal("nil reduce should error")
	}
}

func TestStringKeys(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(string, float64)) error {
		emit("alpha", 1)
		emit("beta", 2)
		return nil
	}
	red := func(_ string, vs []float64) (float64, error) {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s, nil
	}
	got, err := Run(context.Background(), []int{0, 1, 2}, mapf, red, red, Config{Reducers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got["alpha"] != 3 || got["beta"] != 6 {
		t.Fatalf("got %v", got)
	}
}

// A job cancelled mid-flight — after some map tasks have already
// succeeded — must stop promptly with the context error, and the
// cancelled mapper must NOT be retried: retries are for transient task
// failures, not for the job being torn down.
func TestMidJobCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started, retries atomic.Int32
	mapf := func(ctx context.Context, split int, emit func(uint64, float64)) error {
		n := started.Add(1)
		if n > 3 {
			retries.Add(1) // any attempt after the cancelling one is a retry or a straggler
		}
		if n == 3 {
			cancel() // third task cancels the job partway through
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		emit(uint64(split), 1)
		return nil
	}
	_, err := Run(ctx, []int{0, 1, 2, 3, 4, 5, 6, 7}, mapf, nil, sumReduce,
		Config{Mappers: 1, MaxAttempts: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if retries.Load() != 0 {
		t.Fatalf("cancelled mapper was retried %d times; cancellation must not burn attempts", retries.Load())
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(1, 1)
		return nil
	}
	if _, err := Run(ctx, make([]int, 10000), mapf, nil, sumReduce, Config{}); err == nil {
		t.Fatal("cancelled job should error")
	}
}
