package mapreduce

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// The backoff schedule is a pure function of (config, split, attempt):
// capped exponential with jitter in [d/2, d), replayable run to run.
func TestBackoffDelayDeterministicAndCapped(t *testing.T) {
	cfg := Config{RetryBaseDelay: time.Millisecond, RetryMaxDelay: 64 * time.Millisecond, RetrySeed: 42}.normalized()
	for attempt := 1; attempt <= 12; attempt++ {
		for split := 0; split < 5; split++ {
			d1 := backoffDelay(cfg, split, attempt)
			d2 := backoffDelay(cfg, split, attempt)
			if d1 != d2 {
				t.Fatalf("attempt %d split %d: %v != %v (jitter not deterministic)", attempt, split, d1, d2)
			}
			nominal := cfg.RetryMaxDelay
			if shift := attempt - 1; shift < 20 {
				if b := cfg.RetryBaseDelay << shift; b < nominal {
					nominal = b
				}
			}
			if d1 < nominal/2 || d1 >= nominal {
				t.Fatalf("attempt %d split %d: delay %v outside [%v, %v)", attempt, split, d1, nominal/2, nominal)
			}
		}
	}
	// Different seeds decorrelate.
	other := cfg
	other.RetrySeed = 43
	same := 0
	for split := 0; split < 16; split++ {
		if backoffDelay(cfg, split, 3) == backoffDelay(other, split, 3) {
			same++
		}
	}
	if same == 16 {
		t.Fatal("different seeds produced identical jitter everywhere")
	}
}

// A pending retry backoff must not delay cancellation: the job returns
// promptly even when the next retry is scheduled far in the future.
func TestBackoffDoesNotDelayCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		return errors.New("always failing")
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, []int{0}, mapf, nil, sumReduce,
		Config{MaxAttempts: 10, RetryBaseDelay: 30 * time.Second, RetryMaxDelay: 30 * time.Second})
	if err == nil {
		t.Fatal("cancelled job should error")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v; backoff sleep is not context-aware", el)
	}
}

// A panicking map attempt burns an attempt instead of crashing the
// process, and succeeds on retry.
func TestMapPanicRecoveredAndRetried(t *testing.T) {
	var first atomic.Bool
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		if first.CompareAndSwap(false, true) {
			panic("poisoned split")
		}
		emit(uint64(split), 1)
		return nil
	}
	var stats Stats
	got, err := Run(context.Background(), []int{0}, mapf, nil, sumReduce,
		Config{MaxAttempts: 2, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("result = %v", got[0])
	}
	if stats.Panics.Load() != 1 || stats.Retries.Load() != 1 {
		t.Fatalf("panics=%d retries=%d, want 1/1", stats.Panics.Load(), stats.Retries.Load())
	}
}

// A split that panics on every attempt exhausts its budget like any
// other permanent failure, and the error names the panic.
func TestMapPanicExhaustsAttempts(t *testing.T) {
	mapf := func(_ context.Context, _ int, _ func(uint64, float64)) error {
		panic("always")
	}
	_, err := Run(context.Background(), []int{0}, mapf, nil, sumReduce, Config{MaxAttempts: 3})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error %q does not mention the panic", err)
	}
}

// Combine runs inside the attempt, so a combine panic is retried too.
func TestCombinePanicRecovered(t *testing.T) {
	var first atomic.Bool
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(1, 1)
		emit(1, 2)
		return nil
	}
	combine := func(k uint64, vs []float64) (float64, error) {
		if first.CompareAndSwap(false, true) {
			panic("combine poison")
		}
		return sumReduce(k, vs)
	}
	got, err := Run(context.Background(), []int{0}, mapf, combine, sumReduce, Config{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 3 {
		t.Fatalf("result = %v, want 3", got[1])
	}
}

// A reduce panic becomes a job error, not a process crash.
func TestReducePanicRecovered(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(1, 1)
		return nil
	}
	_, err := Run(context.Background(), []int{0}, mapf, nil,
		func(uint64, []float64) (float64, error) { panic("reduce poison") }, Config{})
	if err == nil || !strings.Contains(err.Error(), "reduce panicked") {
		t.Fatalf("err = %v, want reduce panic error", err)
	}
}

// Killing one node's workers mid-job strands nothing: the dead lane's
// splits are stolen by survivors and the result is unchanged.
func TestNodeFaultSurvivorsStealWork(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		for i := 0; i < 100; i++ {
			emit(uint64((split+i)%7), float64(split*100+i))
		}
		return nil
	}
	splits := make([]int, 16)
	for i := range splits {
		splits[i] = i
	}
	base, err := Run(context.Background(), splits, mapf, nil, sumReduce, Config{Mappers: 1, Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	lost := errors.New("node 1 is gone")
	var stats Stats
	cfg := Config{
		Mappers: 4, Reducers: 2,
		Nodes:  2,
		NodeOf: func(i int) int { return i % 2 },
		NodeFault: func(node int) error {
			if node == 1 {
				return lost
			}
			return nil
		},
		Stats: &stats,
	}
	got, err := Run(context.Background(), splits, mapf, nil, sumReduce, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range base {
		if d := got[k] - v; d > 1e-9 || d < -1e-9 {
			t.Fatalf("key %d: %v vs %v (node loss changed the result)", k, got[k], v)
		}
	}
	// Mappers=4 on 2 nodes homes workers 1 and 3 on node 1: both retire.
	if stats.WorkersLost.Load() != 2 {
		t.Fatalf("WorkersLost = %d, want 2", stats.WorkersLost.Load())
	}
}

// Losing every worker with splits still queued is a job failure, not a
// hang or a short result.
func TestAllWorkersLost(t *testing.T) {
	lost := errors.New("cluster gone")
	var stats Stats
	cfg := Config{
		Mappers:   3,
		NodeFault: func(int) error { return lost },
		Stats:     &stats,
	}
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(uint64(split), 1)
		return nil
	}
	_, err := Run(context.Background(), []int{0, 1, 2, 3}, mapf, nil, sumReduce, cfg)
	if !errors.Is(err, ErrWorkersLost) {
		t.Fatalf("err = %v, want ErrWorkersLost", err)
	}
	if stats.WorkersLost.Load() == 0 {
		t.Fatal("no workers recorded lost")
	}
}

// Injected task delays stretch the recorded duration but never the
// values.
func TestTaskDelayInjected(t *testing.T) {
	const delay = 30 * time.Millisecond
	var slowDur atomic.Int64
	cfg := Config{
		Mappers: 2,
		TaskDelay: func(split int) time.Duration {
			if split == 0 {
				return delay
			}
			return 0
		},
		OnTask: func(split int, _ bool, d time.Duration) {
			if split == 0 {
				slowDur.Store(int64(d))
			}
		},
	}
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(uint64(split), 1)
		return nil
	}
	got, err := Run(context.Background(), []int{0, 1, 2}, mapf, nil, sumReduce, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("got %v", got)
	}
	if time.Duration(slowDur.Load()) < delay {
		t.Fatalf("delayed split ran in %v, want >= %v", time.Duration(slowDur.Load()), delay)
	}
}

// A straggling first execution gets a speculative backup that wins;
// the loser's emissions are discarded, so the result and the OnTask
// count are exactly as if the split ran once.
func TestSpeculativeBackupWins(t *testing.T) {
	var firstRun atomic.Bool
	release := make(chan struct{})
	mapf := func(ctx context.Context, split int, emit func(uint64, float64)) error {
		if split == 0 && firstRun.CompareAndSwap(false, true) {
			// The original execution of split 0 hangs until the job is
			// effectively over; only a backup can finish it promptly.
			select {
			case <-release:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		emit(uint64(split), 1)
		return nil
	}
	var stats Stats
	var tasks atomic.Int32
	cfg := Config{
		Mappers: 4, Reducers: 2,
		Speculate:      true,
		SpecMultiplier: 1.5,
		Stats:          &stats,
		OnTask:         func(int, bool, time.Duration) { tasks.Add(1) },
	}
	splits := make([]int, 12)
	for i := range splits {
		splits[i] = i
	}
	done := make(chan struct{})
	var got map[uint64]float64
	var err error
	go func() {
		defer close(done)
		got, err = Run(context.Background(), splits, mapf, nil, sumReduce, cfg)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		close(release)
		t.Fatal("job hung: speculation never rescued the straggler")
	}
	close(release)
	if err != nil {
		t.Fatal(err)
	}
	for i := range splits {
		if got[uint64(i)] != 1 {
			t.Fatalf("split %d contributed %v, want 1 (duplicate or lost emission)", i, got[uint64(i)])
		}
	}
	if tasks.Load() != int32(len(splits)) {
		t.Fatalf("OnTask fired %d times for %d splits", tasks.Load(), len(splits))
	}
	if stats.SpecLaunched.Load() == 0 || stats.SpecWins.Load() == 0 {
		t.Fatalf("launched=%d wins=%d, want both > 0", stats.SpecLaunched.Load(), stats.SpecWins.Load())
	}
}

// Without stragglers, speculation stays quiet and results are
// unchanged — backups are a tail-latency lever, not a correctness one.
func TestSpeculationQuietOnHealthyJob(t *testing.T) {
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		emit(uint64(split%5), float64(split))
		return nil
	}
	splits := make([]int, 32)
	for i := range splits {
		splits[i] = i
	}
	base, err := Run(context.Background(), splits, mapf, nil, sumReduce, Config{Mappers: 1, Reducers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	got, err := Run(context.Background(), splits, mapf, nil, sumReduce,
		Config{Mappers: 4, Speculate: true, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range base {
		if got[k] != v {
			t.Fatalf("key %d: %v vs %v", k, got[k], v)
		}
	}
}

// Failure counters add up: N transient failures cost N retries and the
// job still accounts one success per split.
func TestStatsAccounting(t *testing.T) {
	var flaky atomic.Int32
	mapf := func(_ context.Context, split int, emit func(uint64, float64)) error {
		if split == 3 && flaky.Add(1) <= 2 {
			return errors.New("transient")
		}
		emit(uint64(split), 1)
		return nil
	}
	var stats Stats
	_, err := Run(context.Background(), []int{0, 1, 2, 3, 4}, mapf, nil, sumReduce,
		Config{MaxAttempts: 4, Stats: &stats})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failures.Load() != 2 || stats.Retries.Load() != 2 {
		t.Fatalf("failures=%d retries=%d, want 2/2", stats.Failures.Load(), stats.Retries.Load())
	}
	if stats.Attempts.Load() != 7 { // 5 splits + 2 re-attempts
		t.Fatalf("attempts=%d, want 7", stats.Attempts.Load())
	}
}
