package rdbms

import (
	"errors"
	"fmt"
)

// ErrUnsorted is returned by BulkLoad for out-of-order or duplicate
// keys.
var ErrUnsorted = errors.New("rdbms: bulk load requires strictly ascending keys")

// BulkLoad builds a table from pre-sorted rows in one left-to-right
// pass, packing leaves to fillFactor (0 < ff <= 1, default 0.9) and
// stacking parent levels bottom-up — the classic O(n) index build that
// loading pipelines use instead of n·log n random inserts. keys must
// be strictly ascending; vals is row-major with the given width.
func BulkLoad(width, order int, fillFactor float64, keys []uint64, vals []float64) (*Table, error) {
	t, err := New(width, order)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(keys)*width {
		return nil, fmt.Errorf("%w: got %d vals for %d keys × width %d", ErrWidthMismatch, len(vals), len(keys), width)
	}
	if len(keys) == 0 {
		return t, nil
	}
	if fillFactor <= 0 || fillFactor > 1 {
		fillFactor = 0.9
	}
	perLeaf := int(float64(t.order) * fillFactor)
	if perLeaf < 1 {
		perLeaf = 1
	}

	// Build the leaf level.
	var leaves []*leafNode
	for lo := 0; lo < len(keys); lo += perLeaf {
		hi := lo + perLeaf
		if hi > len(keys) {
			hi = len(keys)
		}
		for i := lo + 1; i < hi; i++ {
			if keys[i] <= keys[i-1] {
				return nil, fmt.Errorf("%w: keys[%d]=%d after %d", ErrUnsorted, i, keys[i], keys[i-1])
			}
		}
		if lo > 0 && keys[lo] <= keys[lo-1] {
			return nil, fmt.Errorf("%w: keys[%d]=%d after %d", ErrUnsorted, lo, keys[lo], keys[lo-1])
		}
		leaf := &leafNode{
			keys: append([]uint64(nil), keys[lo:hi]...),
			vals: append([]float64(nil), vals[lo*width:hi*width]...),
		}
		if n := len(leaves); n > 0 {
			leaves[n-1].next = leaf
		}
		leaves = append(leaves, leaf)
	}
	t.rows = len(keys)
	t.stats.PageWrites += uint64(len(leaves))

	// Stack inner levels until a single root remains. Each inner node
	// takes up to perInner children; separators are each child's
	// minimum key (computed per level).
	perInner := int(float64(t.order) * fillFactor)
	if perInner < 2 {
		perInner = 2
	}
	level := make([]any, len(leaves))
	minKeys := make([]uint64, len(leaves))
	for i, l := range leaves {
		level[i] = l
		minKeys[i] = l.keys[0]
	}
	t.height = 1
	for len(level) > 1 {
		var next []any
		var nextMin []uint64
		for lo := 0; lo < len(level); lo += perInner {
			hi := lo + perInner
			if hi > len(level) {
				hi = len(level)
			}
			if hi-lo == 1 && len(next) > 0 {
				// Avoid a single-child node: fold into the previous
				// inner node (it has room only if underfull; simplest
				// correct move is a 1-child node, which search handles,
				// but keep the tree clean by borrowing one child).
				prev := next[len(next)-1].(*innerNode)
				prev.keys = append(prev.keys, minKeys[lo])
				prev.children = append(prev.children, level[lo])
				continue
			}
			node := &innerNode{
				keys:     append([]uint64(nil), minKeys[lo+1:hi]...),
				children: append([]any(nil), level[lo:hi]...),
			}
			next = append(next, node)
			nextMin = append(nextMin, minKeys[lo])
			t.stats.PageWrites++
		}
		level = next
		minKeys = nextMin
		t.height++
	}
	t.root = level[0]
	return t, nil
}
