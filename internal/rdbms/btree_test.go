package rdbms

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestInsertGetSmall(t *testing.T) {
	tbl, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{5, 1, 9, 3, 7, 2, 8, 4, 6, 0}
	for _, k := range keys {
		if err := tbl.Insert(k, []float64{float64(k), float64(k) * 10}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 10 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for _, k := range keys {
		vals, ok := tbl.Get(k)
		if !ok {
			t.Fatalf("Get(%d) missing", k)
		}
		if vals[0] != float64(k) || vals[1] != float64(k)*10 {
			t.Fatalf("Get(%d) = %v", k, vals)
		}
	}
	if _, ok := tbl.Get(99); ok {
		t.Fatal("absent key found")
	}
}

func TestOverwrite(t *testing.T) {
	tbl, _ := New(1, 4)
	if err := tbl.Insert(7, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(7, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", tbl.Len())
	}
	if v, _ := tbl.Get(7); v[0] != 2 {
		t.Fatalf("overwrite lost: %v", v)
	}
}

func TestWidthValidation(t *testing.T) {
	tbl, _ := New(2, 0)
	if err := tbl.Insert(1, []float64{1}); !errors.Is(err, ErrWidthMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(0, 4); err == nil {
		t.Fatal("zero width should error")
	}
	if _, err := New(1, 2); err == nil {
		t.Fatal("order 2 should error")
	}
}

func TestScanOrdered(t *testing.T) {
	tbl, _ := New(1, 5)
	const n = 10_000
	// Insert in a scrambled deterministic order.
	for i := 0; i < n; i++ {
		k := uint64((i * 7919) % n)
		if err := tbl.Insert(k, []float64{float64(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != n {
		t.Fatalf("Len = %d", tbl.Len())
	}
	var prev int64 = -1
	var count int
	err := tbl.Scan(func(k uint64, vals []float64) error {
		if int64(k) <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		if vals[0] != float64(k) {
			t.Fatalf("payload mismatch at %d", k)
		}
		prev = int64(k)
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scanned %d rows", count)
	}
	if tbl.Height() < 3 {
		t.Fatalf("height %d suspicious for order-5 tree with 10k keys", tbl.Height())
	}
}

func TestScanError(t *testing.T) {
	tbl, _ := New(1, 4)
	for i := uint64(0); i < 100; i++ {
		if err := tbl.Insert(i, []float64{0}); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("scan boom")
	if err := tbl.Scan(func(uint64, []float64) error { return boom }); !errors.Is(err, boom) {
		t.Fatal("scan should propagate error")
	}
}

func TestScanRange(t *testing.T) {
	tbl, _ := New(1, 6)
	for i := uint64(0); i < 1000; i++ {
		if err := tbl.Insert(i, []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	err := tbl.ScanRange(100, 110, func(k uint64, _ []float64) error {
		got = append(got, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != 100 || got[9] != 109 {
		t.Fatalf("range = %v", got)
	}
	// Empty range.
	got = nil
	if err := tbl.ScanRange(5000, 6000, func(k uint64, _ []float64) error {
		got = append(got, k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}

func TestPageAccounting(t *testing.T) {
	tbl, _ := New(1, 8)
	const n = 50_000
	for i := uint64(0); i < n; i++ {
		if err := tbl.Insert(i, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	tbl.ResetStats()
	// One scan touches each leaf once: ~n/avgFill pages.
	if err := tbl.Scan(func(uint64, []float64) error { return nil }); err != nil {
		t.Fatal(err)
	}
	scanPages := tbl.Stats().PageReads
	tbl.ResetStats()
	// Random access touches height pages per lookup.
	for i := uint64(0); i < n; i += 100 {
		tbl.Get(i)
	}
	lookupPages := tbl.Stats().PageReads
	lookups := uint64(n / 100)
	if lookupPages != lookups*uint64(tbl.Height()) {
		t.Fatalf("lookup pages = %d, want %d·%d", lookupPages, lookups, tbl.Height())
	}
	// The paper's point in numbers: per-row page cost of random access
	// dwarfs the scan (scan amortizes a page over many rows).
	perRowScan := float64(scanPages) / n
	perRowLookup := float64(lookupPages) / float64(lookups)
	if perRowLookup < 20*perRowScan {
		t.Fatalf("random access should cost ≫ scan per row: %v vs %v", perRowLookup, perRowScan)
	}
}

func TestPropertyMatchesMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		tbl, err := New(1, 4) // tiny order to force deep trees
		if err != nil {
			return false
		}
		model := map[uint64]float64{}
		for i, op := range ops {
			k := uint64(op % 256)
			v := float64(i)
			if err := tbl.Insert(k, []float64{v}); err != nil {
				return false
			}
			model[k] = v
		}
		if tbl.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := tbl.Get(k)
			if !ok || got[0] != v {
				return false
			}
		}
		// Scan yields exactly the model's keys, in order.
		var prev int64 = -1
		count := 0
		err = tbl.Scan(func(k uint64, vals []float64) error {
			if int64(k) <= prev {
				return errors.New("order")
			}
			if model[k] != vals[0] {
				return errors.New("value")
			}
			prev = int64(k)
			count++
			return nil
		})
		return err == nil && count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
