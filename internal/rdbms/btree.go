// Package rdbms is a deliberately traditional row-store baseline: a
// B+tree-indexed table with page-touch accounting. The paper's claim
// (§II, made twice) is that "traditional database management
// techniques do not fit the requirements of this stage as data needs
// to be scanned over rather than randomly access[ed]" — this package
// exists so experiment E5 can quantify that: aggregating a YELT-scale
// table via indexed point lookups versus one sequential scan.
//
// Page touches stand in for disk I/O: every node visited on a lookup
// is one random page read, while a scan reads each leaf page exactly
// once, sequentially.
package rdbms

import (
	"errors"
	"fmt"
	"sort"
)

// DefaultOrder is the default B+tree fan-out (max children per inner
// node and max keys per leaf) — sized like a 4 KB page of key/pointer
// pairs.
const DefaultOrder = 64

// ErrWidthMismatch is returned when a row's value count differs from
// the table's column width.
var ErrWidthMismatch = errors.New("rdbms: row width mismatch")

// Stats counts page touches, the disk-I/O proxy.
type Stats struct {
	PageReads  uint64
	PageWrites uint64
}

type leafNode struct {
	keys []uint64
	vals []float64 // len(keys)*width, row-major
	next *leafNode
}

type innerNode struct {
	keys     []uint64 // separators; len == len(children)-1
	children []any    // *innerNode or *leafNode
}

// Table is a B+tree-indexed row store with uint64 primary keys and a
// fixed number of float64 columns.
type Table struct {
	width  int
	order  int
	root   any
	height int
	rows   int
	stats  Stats
}

// New returns an empty table with the given column width and fan-out
// (order <= 0 uses DefaultOrder).
func New(width, order int) (*Table, error) {
	if width <= 0 {
		return nil, fmt.Errorf("rdbms: width %d", width)
	}
	if order <= 0 {
		order = DefaultOrder
	}
	if order < 3 {
		return nil, fmt.Errorf("rdbms: order %d too small", order)
	}
	return &Table{width: width, order: order, root: &leafNode{}, height: 1}, nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return t.rows }

// Height returns the tree height (1 = just a leaf).
func (t *Table) Height() int { return t.height }

// Stats returns the page-touch counters.
func (t *Table) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *Table) ResetStats() { t.stats = Stats{} }

// Insert adds or overwrites the row for key.
func (t *Table) Insert(key uint64, vals []float64) error {
	if len(vals) != t.width {
		return fmt.Errorf("%w: got %d, want %d", ErrWidthMismatch, len(vals), t.width)
	}
	sep, right, grew, added := t.insert(t.root, key, vals)
	if added {
		t.rows++
	}
	if grew {
		t.root = &innerNode{keys: []uint64{sep}, children: []any{t.root, right}}
		t.height++
	}
	return nil
}

func (t *Table) insert(n any, key uint64, vals []float64) (sep uint64, right any, grew, added bool) {
	t.stats.PageWrites++
	switch node := n.(type) {
	case *leafNode:
		pos := sort.Search(len(node.keys), func(i int) bool { return node.keys[i] >= key })
		if pos < len(node.keys) && node.keys[pos] == key {
			copy(node.vals[pos*t.width:(pos+1)*t.width], vals)
			return 0, nil, false, false
		}
		node.keys = append(node.keys, 0)
		copy(node.keys[pos+1:], node.keys[pos:])
		node.keys[pos] = key
		node.vals = append(node.vals, make([]float64, t.width)...)
		copy(node.vals[(pos+1)*t.width:], node.vals[pos*t.width:len(node.vals)-t.width])
		copy(node.vals[pos*t.width:(pos+1)*t.width], vals)
		if len(node.keys) <= t.order {
			return 0, nil, false, true
		}
		// Split.
		mid := len(node.keys) / 2
		r := &leafNode{
			keys: append([]uint64(nil), node.keys[mid:]...),
			vals: append([]float64(nil), node.vals[mid*t.width:]...),
			next: node.next,
		}
		node.keys = node.keys[:mid]
		node.vals = node.vals[:mid*t.width]
		node.next = r
		return r.keys[0], r, true, true

	case *innerNode:
		idx := sort.Search(len(node.keys), func(i int) bool { return key < node.keys[i] })
		csep, cright, cgrew, cadded := t.insert(node.children[idx], key, vals)
		if !cgrew {
			return 0, nil, false, cadded
		}
		node.keys = append(node.keys, 0)
		copy(node.keys[idx+1:], node.keys[idx:])
		node.keys[idx] = csep
		node.children = append(node.children, nil)
		copy(node.children[idx+2:], node.children[idx+1:])
		node.children[idx+1] = cright
		if len(node.children) <= t.order {
			return 0, nil, false, cadded
		}
		// Split inner: middle separator moves up.
		midKey := len(node.keys) / 2
		up := node.keys[midKey]
		r := &innerNode{
			keys:     append([]uint64(nil), node.keys[midKey+1:]...),
			children: append([]any(nil), node.children[midKey+1:]...),
		}
		node.keys = node.keys[:midKey]
		node.children = node.children[:midKey+1]
		return up, r, true, cadded

	default:
		panic("rdbms: unknown node type")
	}
}

// Get returns the row for key via index traversal — the random-access
// path. Every node on the way down is one page read.
func (t *Table) Get(key uint64) ([]float64, bool) {
	n := t.root
	for {
		t.stats.PageReads++
		switch node := n.(type) {
		case *leafNode:
			pos := sort.Search(len(node.keys), func(i int) bool { return node.keys[i] >= key })
			if pos < len(node.keys) && node.keys[pos] == key {
				return node.vals[pos*t.width : (pos+1)*t.width], true
			}
			return nil, false
		case *innerNode:
			idx := sort.Search(len(node.keys), func(i int) bool { return key < node.keys[i] })
			n = node.children[idx]
		default:
			panic("rdbms: unknown node type")
		}
	}
}

// Scan streams all rows in key order through fn — the sequential path.
// Each leaf is one (sequential) page read.
func (t *Table) Scan(fn func(key uint64, vals []float64) error) error {
	leaf := t.leftmost()
	for leaf != nil {
		t.stats.PageReads++
		for i, k := range leaf.keys {
			if err := fn(k, leaf.vals[i*t.width:(i+1)*t.width]); err != nil {
				return err
			}
		}
		leaf = leaf.next
	}
	return nil
}

// ScanRange streams rows with lo <= key < hi in key order.
func (t *Table) ScanRange(lo, hi uint64, fn func(key uint64, vals []float64) error) error {
	n := t.root
	// Descend to the leaf containing lo.
	for {
		t.stats.PageReads++
		inner, ok := n.(*innerNode)
		if !ok {
			break
		}
		idx := sort.Search(len(inner.keys), func(i int) bool { return lo < inner.keys[i] })
		n = inner.children[idx]
	}
	leaf := n.(*leafNode)
	for leaf != nil {
		for i, k := range leaf.keys {
			if k < lo {
				continue
			}
			if k >= hi {
				return nil
			}
			if err := fn(k, leaf.vals[i*t.width:(i+1)*t.width]); err != nil {
				return err
			}
		}
		leaf = leaf.next
		if leaf != nil {
			t.stats.PageReads++
		}
	}
	return nil
}

func (t *Table) leftmost() *leafNode {
	n := t.root
	for {
		switch node := n.(type) {
		case *leafNode:
			return node
		case *innerNode:
			n = node.children[0]
		}
	}
}
