package rdbms

import (
	"fmt"
	"testing"
)

func benchTable(b *testing.B, n int) *Table {
	b.Helper()
	t, err := New(1, DefaultOrder)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := uint64((i * 2654435761) % n)
		if err := t.Insert(k, []float64{float64(k)}); err != nil {
			b.Fatal(err)
		}
	}
	return t
}

func BenchmarkInsert(b *testing.B) {
	t, err := New(1, DefaultOrder)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Insert(uint64(i*2654435761), []float64{1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	for _, n := range []int{10_000, 1_000_000} {
		t := benchTable(b, n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				if v, ok := t.Get(uint64(i % n)); ok {
					sink += v[0]
				}
			}
			_ = sink
		})
	}
}

func BenchmarkScan(b *testing.B) {
	t := benchTable(b, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink float64
		if err := t.Scan(func(_ uint64, vals []float64) error {
			sink += vals[0]
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		_ = sink
	}
	b.ReportMetric(1e6*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
