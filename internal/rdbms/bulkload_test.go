package rdbms

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestBulkLoadMatchesInsert(t *testing.T) {
	const n = 20_000
	keys := make([]uint64, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = uint64(i * 3)
		vals[i] = float64(i) * 1.5
	}
	bulk, err := BulkLoad(1, 32, 0.9, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	ins, err := New(1, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if err := ins.Insert(keys[i], vals[i:i+1]); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != ins.Len() {
		t.Fatalf("Len: %d vs %d", bulk.Len(), ins.Len())
	}
	// Same content via Scan.
	type row struct {
		k uint64
		v float64
	}
	collect := func(tb *Table) []row {
		var out []row
		if err := tb.Scan(func(k uint64, vals []float64) error {
			out = append(out, row{k, vals[0]})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(bulk), collect(ins)
	if len(a) != len(b) {
		t.Fatalf("scan lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Point lookups work on the bulk-loaded tree.
	for i := 0; i < n; i += 97 {
		v, ok := bulk.Get(keys[i])
		if !ok || v[0] != vals[i] {
			t.Fatalf("Get(%d) = %v, %v", keys[i], v, ok)
		}
	}
	if _, ok := bulk.Get(1); ok {
		t.Fatal("absent key found")
	}
}

func TestBulkLoadRejectsUnsorted(t *testing.T) {
	if _, err := BulkLoad(1, 8, 0.9, []uint64{3, 2}, []float64{1, 2}); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("err = %v", err)
	}
	if _, err := BulkLoad(1, 8, 0.9, []uint64{2, 2}, []float64{1, 2}); !errors.Is(err, ErrUnsorted) {
		t.Fatal("duplicates should be rejected")
	}
	if _, err := BulkLoad(1, 8, 0.9, []uint64{1}, []float64{1, 2}); !errors.Is(err, ErrWidthMismatch) {
		t.Fatal("vals/keys mismatch should be rejected")
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tb, err := BulkLoad(2, 8, 0.9, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 0 {
		t.Fatal("empty load should yield empty table")
	}
	if _, ok := tb.Get(5); ok {
		t.Fatal("lookup on empty table")
	}
	// Inserts still work after an empty bulk load.
	if err := tb.Insert(1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadInsertAfterLoad(t *testing.T) {
	keys := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	vals := make([]float64, len(keys))
	tb, err := BulkLoad(1, 4, 1.0, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	// Insert between and beyond loaded keys; tree must stay consistent.
	for _, k := range []uint64{5, 25, 85, 15} {
		if err := tb.Insert(k, []float64{float64(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != 12 {
		t.Fatalf("Len = %d", tb.Len())
	}
	var prev int64 = -1
	if err := tb.Scan(func(k uint64, _ []float64) error {
		if int64(k) <= prev {
			t.Fatalf("order broken at %d", k)
		}
		prev = int64(k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadPropertyEquivalence(t *testing.T) {
	f := func(raw []uint16, ffRaw uint8) bool {
		// Dedup + sort via map trick.
		seen := map[uint64]bool{}
		var keys []uint64
		for _, r := range raw {
			k := uint64(r)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		// insertion sort (small n)
		for i := 1; i < len(keys); i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
			}
		}
		vals := make([]float64, len(keys))
		for i, k := range keys {
			vals[i] = float64(k) * 2
		}
		ff := 0.5 + float64(ffRaw%51)/100
		tb, err := BulkLoad(1, 6, ff, keys, vals)
		if err != nil {
			return false
		}
		if tb.Len() != len(keys) {
			return false
		}
		for i, k := range keys {
			v, ok := tb.Get(k)
			if !ok || v[0] != vals[i] {
				return false
			}
		}
		count := 0
		var prev int64 = -1
		if err := tb.Scan(func(k uint64, _ []float64) error {
			if int64(k) <= prev {
				return errors.New("order")
			}
			prev = int64(k)
			count++
			return nil
		}); err != nil {
			return false
		}
		return count == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBulkLoadVsInserts(b *testing.B) {
	const n = 200_000
	keys := make([]uint64, n)
	vals := make([]float64, n)
	for i := range keys {
		keys[i] = uint64(i)
		vals[i] = float64(i)
	}
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BulkLoad(1, DefaultOrder, 0.9, keys, vals); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inserts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tb, err := New(1, DefaultOrder)
			if err != nil {
				b.Fatal(err)
			}
			for j := range keys {
				if err := tb.Insert(keys[j], vals[j:j+1]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
