package exposure

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumLocations = 200
	a, err := Generate(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Interests) != len(b.Interests) {
		t.Fatal("interest counts differ")
	}
	for i := range a.Interests {
		if a.Interests[i] != b.Interests[i] {
			t.Fatalf("interest %d differs", i)
		}
	}
	if a.TotalValue() != b.TotalValue() {
		t.Fatal("TIV differs")
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumLocations = 2000
	cfg.InterestsPerLoc = 3
	db, err := Generate(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Locations) != 2000 {
		t.Fatalf("locations = %d", len(db.Locations))
	}
	// Poisson(2)+1 per location: expect ~3 on average.
	perLoc := float64(len(db.Interests)) / 2000
	if perLoc < 2.5 || perLoc > 3.5 {
		t.Fatalf("interests per location = %v, want ~3", perLoc)
	}
	var tiv float64
	for _, in := range db.Interests {
		if in.Value <= 0 {
			t.Fatal("non-positive TIV")
		}
		if in.LocationIndex < 0 || in.LocationIndex >= len(db.Locations) {
			t.Fatal("dangling location index")
		}
		tiv += in.Value
	}
	if math.Abs(tiv-db.TotalValue()) > 1e-6*tiv {
		t.Fatalf("TotalValue %v != sum %v", db.TotalValue(), tiv)
	}
}

func TestOccupancyValueScaling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumLocations = 5000
	cfg.ValueSigma = 0.5
	db, err := Generate(cfg, 23)
	if err != nil {
		t.Fatal(err)
	}
	var resSum, indSum float64
	var resN, indN int
	for _, in := range db.Interests {
		switch in.Occupancy {
		case Residential:
			resSum += in.Value
			resN++
		case Industrial:
			indSum += in.Value
			indN++
		}
	}
	if resN == 0 || indN == 0 {
		t.Fatal("expected both occupancies present")
	}
	if indSum/float64(indN) < 3*resSum/float64(resN) {
		t.Fatalf("industrial mean TIV should be much larger: res=%v ind=%v",
			resSum/float64(resN), indSum/float64(indN))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumLocations: 0}, 1); err == nil {
		t.Error("NumLocations=0 should error")
	}
	cfg := DefaultConfig()
	cfg.ConstructionMix = []float64{1, 0}
	if _, err := Generate(cfg, 1); err == nil {
		t.Error("short ConstructionMix should error")
	}
	cfg = DefaultConfig()
	cfg.OccupancyMix = []float64{1}
	if _, err := Generate(cfg, 1); err == nil {
		t.Error("short OccupancyMix should error")
	}
}

func TestEnumStrings(t *testing.T) {
	if Wood.String() != "wood" || Steel.String() != "steel" {
		t.Error("construction names")
	}
	if Construction(9).String() != "Construction(9)" {
		t.Error("unknown construction")
	}
	if Residential.String() != "residential" || Industrial.String() != "industrial" {
		t.Error("occupancy names")
	}
	if Occupancy(9).String() != "Occupancy(9)" {
		t.Error("unknown occupancy")
	}
}

func TestConstructionMixRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumLocations = 3000
	cfg.ConstructionMix = []float64{1, 0, 0, 0} // all wood
	db, err := Generate(cfg, 31)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range db.Interests {
		if in.Construction != Wood {
			t.Fatalf("expected all wood, got %v", in.Construction)
		}
	}
}
