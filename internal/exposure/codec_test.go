package exposure

import (
	"bytes"
	"testing"
)

func TestCodecRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumLocations = 300
	db, err := Generate(cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := db.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != db.SizeBytes() || int64(buf.Len()) != n {
		t.Fatalf("size: reported %d, SizeBytes %d, wrote %d", n, db.SizeBytes(), buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Locations) != len(db.Locations) || len(got.Interests) != len(db.Interests) {
		t.Fatal("shape mismatch")
	}
	for i := range db.Locations {
		if got.Locations[i] != db.Locations[i] {
			t.Fatalf("location %d mismatch", i)
		}
	}
	for i := range db.Interests {
		if got.Interests[i] != db.Interests[i] {
			t.Fatalf("interest %d mismatch", i)
		}
	}
	if got.TotalValue() != db.TotalValue() {
		t.Fatal("TIV not rebuilt")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX00000000"))); err == nil {
		t.Fatal("bad magic should error")
	}
	cfg := DefaultConfig()
	cfg.NumLocations = 20
	db, _ := Generate(cfg, 1)
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("truncated database should error")
	}
	// Corrupt a construction byte to an invalid class.
	raw := append([]byte(nil), buf.Bytes()...)
	locBytes := 4 + 8 + len(db.Locations)*locRecordSize
	raw[locBytes+4] = 250
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("invalid construction class should error")
	}
	// Corrupt a location index to dangle.
	raw = append([]byte(nil), buf.Bytes()...)
	raw[locBytes+0] = 0xff
	raw[locBytes+1] = 0xff
	raw[locBytes+2] = 0xff
	raw[locBytes+3] = 0x0f
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("dangling location index should error")
	}
}
