// Package exposure implements the exposure database — the second
// primary input to catastrophe models (§II): "description of
// attributes such as construction type or value of buildings exposed
// to the catastrophe in a location".
//
// Real exposure databases are confidential client data; this package
// generates synthetic ones with the same schema and statistical shape
// (clustered locations, lognormal insured values, realistic
// construction/occupancy mixes), deterministically from a seed.
package exposure

import (
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/rng"
)

// Construction is the structural class of a building, the main driver
// of vulnerability.
type Construction uint8

// Construction classes in rough order of catastrophe resilience.
const (
	Wood Construction = iota
	Masonry
	Concrete
	Steel
	numConstruction
)

// NumConstruction is the number of construction classes.
const NumConstruction = int(numConstruction)

// String returns the class name.
func (c Construction) String() string {
	switch c {
	case Wood:
		return "wood"
	case Masonry:
		return "masonry"
	case Concrete:
		return "concrete"
	case Steel:
		return "steel"
	default:
		return fmt.Sprintf("Construction(%d)", uint8(c))
	}
}

// Occupancy is the use class of a building, which drives insured value
// scale and line of business.
type Occupancy uint8

// Occupancy classes.
const (
	Residential Occupancy = iota
	Commercial
	Industrial
	numOccupancy
)

// NumOccupancy is the number of occupancy classes.
const NumOccupancy = int(numOccupancy)

// String returns the occupancy name.
func (o Occupancy) String() string {
	switch o {
	case Residential:
		return "residential"
	case Commercial:
		return "commercial"
	case Industrial:
		return "industrial"
	default:
		return fmt.Sprintf("Occupancy(%d)", uint8(o))
	}
}

// Location is a geocoded site holding insured interests.
type Location struct {
	ID       uint32
	RegionID uint16
	Lat, Lon float64
}

// Interest is one insured building (or schedule line) at a location.
type Interest struct {
	LocationIndex int // index into Database.Locations
	Construction  Construction
	Occupancy     Occupancy
	Value         float64 // total insured value (TIV)
}

// Database is an exposure database: locations plus the interests at
// them. It corresponds to the exposure input of one cedant/contract.
type Database struct {
	Locations []Location
	Interests []Interest
	totalTIV  float64
}

// TotalValue returns the summed insured value of all interests.
func (db *Database) TotalValue() float64 { return db.totalTIV }

// Config controls synthetic exposure generation.
type Config struct {
	NumLocations     int
	InterestsPerLoc  int // average interests (buildings) per location
	Regions          []catalog.Region
	MeanValue        float64 // mean TIV per interest
	ValueSigma       float64 // lognormal sigma of TIV
	ConstructionMix  []float64
	OccupancyMix     []float64
	ClusterTightness float64 // 0 = uniform in region, 1 = tightly clustered
}

// DefaultConfig returns a laptop-scale exposure configuration.
func DefaultConfig() Config {
	return Config{
		NumLocations:     1000,
		InterestsPerLoc:  3,
		Regions:          catalog.DefaultRegions(),
		MeanValue:        2_000_000,
		ValueSigma:       1.0,
		ConstructionMix:  []float64{0.45, 0.25, 0.20, 0.10},
		OccupancyMix:     []float64{0.60, 0.30, 0.10},
		ClusterTightness: 0.6,
	}
}

// Generate builds a deterministic synthetic exposure database.
func Generate(cfg Config, seed uint64) (*Database, error) {
	if cfg.NumLocations <= 0 {
		return nil, fmt.Errorf("exposure: NumLocations must be positive, got %d", cfg.NumLocations)
	}
	if cfg.InterestsPerLoc <= 0 {
		cfg.InterestsPerLoc = 1
	}
	if len(cfg.Regions) == 0 {
		cfg.Regions = catalog.DefaultRegions()
	}
	if len(cfg.ConstructionMix) == 0 {
		cfg.ConstructionMix = DefaultConfig().ConstructionMix
	}
	if len(cfg.ConstructionMix) != NumConstruction {
		return nil, fmt.Errorf("exposure: ConstructionMix needs %d entries", NumConstruction)
	}
	if len(cfg.OccupancyMix) == 0 {
		cfg.OccupancyMix = DefaultConfig().OccupancyMix
	}
	if len(cfg.OccupancyMix) != NumOccupancy {
		return nil, fmt.Errorf("exposure: OccupancyMix needs %d entries", NumOccupancy)
	}
	if cfg.MeanValue <= 0 {
		cfg.MeanValue = DefaultConfig().MeanValue
	}

	regionWeights := make([]float64, len(cfg.Regions))
	for i, r := range cfg.Regions {
		regionWeights[i] = r.RelativeExposureWeight
	}
	regionAlias, err := rng.NewAlias(regionWeights)
	if err != nil {
		return nil, fmt.Errorf("exposure: region weights: %w", err)
	}
	consAlias, err := rng.NewAlias(cfg.ConstructionMix)
	if err != nil {
		return nil, fmt.Errorf("exposure: construction mix: %w", err)
	}
	occAlias, err := rng.NewAlias(cfg.OccupancyMix)
	if err != nil {
		return nil, fmt.Errorf("exposure: occupancy mix: %w", err)
	}

	st := rng.NewStream(seed, 0xE8905)
	db := &Database{
		Locations: make([]Location, cfg.NumLocations),
		Interests: make([]Interest, 0, cfg.NumLocations*cfg.InterestsPerLoc),
	}

	// Pre-draw one urban cluster centre per region; ClusterTightness
	// interpolates each location between the cluster centre and a
	// uniform point, mimicking the concentration of insured value in
	// cities that makes single events so punishing.
	type centre struct{ lat, lon float64 }
	centres := make([]centre, len(cfg.Regions))
	for i, r := range cfg.Regions {
		centres[i] = centre{
			lat: r.LatMin + st.Float64()*(r.LatMax-r.LatMin),
			lon: r.LonMin + st.Float64()*(r.LonMax-r.LonMin),
		}
	}

	// Lognormal TIV parameters from mean and sigma.
	sigma := cfg.ValueSigma
	if sigma <= 0 {
		sigma = 1.0
	}
	// mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2
	mu := lnMean(cfg.MeanValue, sigma)

	for i := range db.Locations {
		ri := regionAlias.Draw(st)
		r := cfg.Regions[ri]
		ulat := r.LatMin + st.Float64()*(r.LatMax-r.LatMin)
		ulon := r.LonMin + st.Float64()*(r.LonMax-r.LonMin)
		t := cfg.ClusterTightness
		loc := Location{
			ID:       uint32(i + 1),
			RegionID: r.ID,
			Lat:      ulat*(1-t) + centres[ri].lat*t + st.Normal(0, 0.15),
			Lon:      ulon*(1-t) + centres[ri].lon*t + st.Normal(0, 0.15),
		}
		db.Locations[i] = loc

		n := 1 + st.Poisson(float64(cfg.InterestsPerLoc-1))
		for k := 0; k < n; k++ {
			occ := Occupancy(occAlias.Draw(st))
			valScale := 1.0
			switch occ {
			case Commercial:
				valScale = 4
			case Industrial:
				valScale = 10
			}
			in := Interest{
				LocationIndex: i,
				Construction:  Construction(consAlias.Draw(st)),
				Occupancy:     occ,
				Value:         st.LogNormal(mu, sigma) * valScale,
			}
			db.Interests = append(db.Interests, in)
			db.totalTIV += in.Value
		}
	}
	return db, nil
}

// lnMean returns the lognormal location parameter mu that yields the
// target arithmetic mean for the given sigma.
func lnMean(mean, sigma float64) float64 {
	return math.Log(mean) - sigma*sigma/2
}
