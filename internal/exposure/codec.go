package exposure

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary exposure format: magic "EXP1", u32 location count, u32
// interest count, then locations (u32 id, u16 region, 2×f64) and
// interests (u32 locIndex, u8 construction, u8 occupancy, f64 value).
// Exposure databases are the second "very large table" of stage 1 and
// ship between cedant systems and the modelling cluster in exactly
// this kind of flat scan-friendly layout.
var magic = [4]byte{'E', 'X', 'P', '1'}

// ErrBadFormat reports a malformed serialized database.
var ErrBadFormat = errors.New("exposure: bad format")

const (
	locRecordSize      = 4 + 2 + 16
	interestRecordSize = 4 + 1 + 1 + 8
)

// WriteTo serializes the database. It implements io.WriterTo.
func (db *Database) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var written int64
	if _, err := bw.Write(magic[:]); err != nil {
		return written, err
	}
	written += 4
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(db.Locations)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(db.Interests)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return written, err
	}
	written += 8
	var lrec [locRecordSize]byte
	for _, l := range db.Locations {
		binary.LittleEndian.PutUint32(lrec[0:4], l.ID)
		binary.LittleEndian.PutUint16(lrec[4:6], l.RegionID)
		binary.LittleEndian.PutUint64(lrec[6:14], math.Float64bits(l.Lat))
		binary.LittleEndian.PutUint64(lrec[14:22], math.Float64bits(l.Lon))
		if _, err := bw.Write(lrec[:]); err != nil {
			return written, err
		}
		written += locRecordSize
	}
	var irec [interestRecordSize]byte
	for _, in := range db.Interests {
		binary.LittleEndian.PutUint32(irec[0:4], uint32(in.LocationIndex))
		irec[4] = byte(in.Construction)
		irec[5] = byte(in.Occupancy)
		binary.LittleEndian.PutUint64(irec[6:14], math.Float64bits(in.Value))
		if _, err := bw.Write(irec[:]); err != nil {
			return written, err
		}
		written += interestRecordSize
	}
	return written, bw.Flush()
}

// Read deserializes a database written by WriteTo.
func Read(r io.Reader) (*Database, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("exposure: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("exposure: reading header: %w", err)
	}
	nLocs := binary.LittleEndian.Uint32(hdr[0:4])
	nInts := binary.LittleEndian.Uint32(hdr[4:8])
	const maxRecords = 1 << 27
	if nLocs > maxRecords || nInts > maxRecords {
		return nil, fmt.Errorf("%w: counts %d/%d", ErrBadFormat, nLocs, nInts)
	}
	db := &Database{
		Locations: make([]Location, nLocs),
		Interests: make([]Interest, nInts),
	}
	var lrec [locRecordSize]byte
	for i := range db.Locations {
		if _, err := io.ReadFull(br, lrec[:]); err != nil {
			return nil, fmt.Errorf("exposure: reading location %d: %w", i, err)
		}
		db.Locations[i] = Location{
			ID:       binary.LittleEndian.Uint32(lrec[0:4]),
			RegionID: binary.LittleEndian.Uint16(lrec[4:6]),
			Lat:      math.Float64frombits(binary.LittleEndian.Uint64(lrec[6:14])),
			Lon:      math.Float64frombits(binary.LittleEndian.Uint64(lrec[14:22])),
		}
	}
	var irec [interestRecordSize]byte
	for i := range db.Interests {
		if _, err := io.ReadFull(br, irec[:]); err != nil {
			return nil, fmt.Errorf("exposure: reading interest %d: %w", i, err)
		}
		li := int(binary.LittleEndian.Uint32(irec[0:4]))
		if li >= int(nLocs) {
			return nil, fmt.Errorf("%w: interest %d references location %d of %d", ErrBadFormat, i, li, nLocs)
		}
		cons := Construction(irec[4])
		occ := Occupancy(irec[5])
		if int(cons) >= NumConstruction || int(occ) >= NumOccupancy {
			return nil, fmt.Errorf("%w: interest %d class bytes (%d,%d)", ErrBadFormat, i, irec[4], irec[5])
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(irec[6:14]))
		db.Interests[i] = Interest{LocationIndex: li, Construction: cons, Occupancy: occ, Value: v}
		db.totalTIV += v
	}
	return db, nil
}

// SizeBytes returns the serialized size of the database.
func (db *Database) SizeBytes() int64 {
	return int64(4 + 8 + len(db.Locations)*locRecordSize + len(db.Interests)*interestRecordSize)
}
