// Package catmodel is the stage-1 engine: it drives event–exposure
// pairs through the hazard, vulnerability and financial modules and
// aggregates the results into Event-Loss Tables.
//
// The paper's stage-1 data challenge (§II) is that risk modelling is
// "highly compute and data intensive. Typically, data needs to be
// organised in a small number of very large tables and streamed by
// independent processes, further to which the results need to be
// aggregated." The engine therefore streams the event table once,
// partitioned across independent workers, each accumulating a partial
// ELT that is merged at the end — no random access, no shared state on
// the hot path.
package catmodel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/catalog"
	"repro/internal/elt"
	"repro/internal/exposure"
	"repro/internal/financial"
	"repro/internal/hazard"
	"repro/internal/stream"
	"repro/internal/vulnerability"
)

// Engine wires the three catastrophe-model modules together.
type Engine struct {
	Hazard        hazard.Model
	Vulnerability *vulnerability.Matrix
	// Workers is the parallelism for the event stream; <= 0 means
	// GOMAXPROCS. The paper notes stage 1 typically needs fewer than
	// ten processors — the default matches a small multicore host.
	Workers int
	// TermsFor selects policy terms per interest; nil applies
	// standard terms by occupancy.
	TermsFor func(exposure.Interest) financial.Terms
	// MinMeanLoss truncates ELT records below this expected loss.
	MinMeanLoss float64
	// CorrelatedShare is the fraction of damage variance attributed to
	// the systemic (correlated) component; the rest is per-site
	// independent. Defaults to 0.3.
	CorrelatedShare float64
}

// New returns an engine with the default hazard model and
// vulnerability matrix.
func New() *Engine {
	return &Engine{
		Vulnerability:   vulnerability.Default(),
		CorrelatedShare: 0.3,
	}
}

func (e *Engine) termsFor(in exposure.Interest) financial.Terms {
	if e.TermsFor != nil {
		return e.TermsFor(in)
	}
	switch in.Occupancy {
	case exposure.Commercial, exposure.Industrial:
		return financial.StandardCommercial(in.Value)
	default:
		return financial.StandardResidential(in.Value)
	}
}

// Run computes the ELT for one contract: the given exposure database
// analysed against the full event catalogue. It is deterministic (the
// moment pipeline is closed-form; no sampling happens in stage 1).
func (e *Engine) Run(ctx context.Context, cat *catalog.Catalog, db *exposure.Database, contractID uint32) (*elt.Table, error) {
	if e.Vulnerability == nil {
		return nil, fmt.Errorf("catmodel: nil vulnerability matrix")
	}
	if cat.Len() == 0 {
		return elt.New(contractID, nil), nil
	}
	corr := e.CorrelatedShare
	if corr <= 0 || corr > 1 {
		corr = 0.3
	}

	// Flatten the exposure into parallel arrays once: the inner loop
	// touches every interest for every in-range event, so layout is
	// cache-critical (this is the "organise data in large flat tables"
	// idiom from the paper, in miniature).
	n := len(db.Interests)
	lats := make([]float64, n)
	lons := make([]float64, n)
	values := make([]float64, n)
	cons := make([]exposure.Construction, n)
	perilTerms := make([]financial.Terms, n)
	for i, in := range db.Interests {
		loc := db.Locations[in.LocationIndex]
		lats[i] = loc.Lat
		lons[i] = loc.Lon
		values[i] = in.Value
		cons[i] = in.Construction
		perilTerms[i] = e.termsFor(in)
	}

	type partial struct{ recs []elt.Record }
	result, err := stream.MapReduceLocal(ctx, cat.Len(), e.Workers,
		func() *partial { return &partial{} },
		func(ctx context.Context, r stream.Range, acc *partial) error {
			for evIdx := r.Lo; evIdx < r.Hi; evIdx++ {
				if evIdx%256 == 0 {
					select {
					case <-ctx.Done():
						return ctx.Err()
					default:
					}
				}
				ev := cat.Events[evIdx]
				var meanSum, varISum, sigmaCSum, exposed float64
				for i := 0; i < n; i++ {
					inten := e.Hazard.IntensityAt(ev, lats[i], lons[i])
					if inten <= 0 {
						continue
					}
					mdr, sd := e.Vulnerability.DamageMoments(ev.Peril, cons[i], inten)
					if mdr <= 0 {
						continue
					}
					guMean := mdr * values[i]
					guSD := sd * values[i]
					gMean, gSD := perilTerms[i].ApplyMoments(guMean, guSD)
					if gMean <= 0 && gSD <= 0 {
						continue
					}
					meanSum += gMean
					varISum += (1 - corr) * gSD * gSD
					sigmaCSum += math.Sqrt(corr) * gSD
					exposed += values[i]
				}
				if meanSum < e.MinMeanLoss || meanSum <= 0 {
					continue
				}
				acc.recs = append(acc.recs, elt.Record{
					EventID:      ev.ID,
					MeanLoss:     meanSum,
					SigmaI:       math.Sqrt(varISum),
					SigmaC:       sigmaCSum,
					ExposedValue: exposed,
				})
			}
			return nil
		},
		func(into, from *partial) { into.recs = append(into.recs, from.recs...) },
	)
	if err != nil {
		return nil, err
	}
	return elt.New(contractID, result.recs), nil
}

// RunPortfolio computes ELTs for many contracts, one exposure database
// each, reusing the engine across contracts. Contracts are processed
// sequentially while events parallelize inside each contract: the ELT
// of a contract is the unit of output in stage 1 (one "very large
// table" per run), and this preserves deterministic output order.
func (e *Engine) RunPortfolio(ctx context.Context, cat *catalog.Catalog, dbs []*exposure.Database) ([]*elt.Table, error) {
	out := make([]*elt.Table, len(dbs))
	for i, db := range dbs {
		t, err := e.Run(ctx, cat, db, uint32(i+1))
		if err != nil {
			return nil, fmt.Errorf("catmodel: contract %d: %w", i+1, err)
		}
		out[i] = t
	}
	return out, nil
}
