package catmodel

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exposure"
)

func benchWorld(b *testing.B, nEvents, nLocs int) (*catalog.Catalog, *exposure.Database) {
	b.Helper()
	ccfg := catalog.DefaultConfig()
	ccfg.NumEvents = nEvents
	cat, err := catalog.Generate(ccfg, 7)
	if err != nil {
		b.Fatal(err)
	}
	ecfg := exposure.DefaultConfig()
	ecfg.NumLocations = nLocs
	db, err := exposure.Generate(ecfg, 8)
	if err != nil {
		b.Fatal(err)
	}
	return cat, db
}

func BenchmarkRunEventExposurePairs(b *testing.B) {
	cat, db := benchWorld(b, 5_000, 300)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := New()
			eng.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), cat, db, 1); err != nil {
					b.Fatal(err)
				}
			}
			pairs := float64(cat.Len()) * float64(len(db.Interests))
			b.ReportMetric(pairs*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}

func BenchmarkRunScalesWithEvents(b *testing.B) {
	for _, events := range []int{1_000, 10_000} {
		cat, db := benchWorld(b, events, 200)
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			eng := New()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), cat, db, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
