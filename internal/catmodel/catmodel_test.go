package catmodel

import (
	"context"
	"math"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exposure"
	"repro/internal/financial"
)

func smallWorld(t *testing.T, nEvents, nLocs int, seed uint64) (*catalog.Catalog, *exposure.Database) {
	t.Helper()
	ccfg := catalog.DefaultConfig()
	ccfg.NumEvents = nEvents
	cat, err := catalog.Generate(ccfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := exposure.DefaultConfig()
	ecfg.NumLocations = nLocs
	db, err := exposure.Generate(ecfg, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return cat, db
}

func TestRunProducesSortedELT(t *testing.T) {
	cat, db := smallWorld(t, 2000, 300, 5)
	eng := New()
	tbl, err := eng.Run(context.Background(), cat, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() == 0 {
		t.Fatal("expected some events to produce losses")
	}
	for i := 1; i < tbl.Len(); i++ {
		if tbl.Records[i-1].EventID >= tbl.Records[i].EventID {
			t.Fatal("ELT not sorted by event ID")
		}
	}
	for _, r := range tbl.Records {
		if r.MeanLoss <= 0 {
			t.Fatalf("non-positive mean loss in ELT: %+v", r)
		}
		if r.SigmaI < 0 || r.SigmaC < 0 {
			t.Fatalf("negative sigma: %+v", r)
		}
		if r.MeanLoss > r.ExposedValue+1e-6 {
			t.Fatalf("mean loss exceeds exposed value: %+v", r)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// The MapReduce shape must make parallelism invisible: identical
	// ELTs regardless of worker count.
	cat, db := smallWorld(t, 1500, 200, 8)
	eng1 := New()
	eng1.Workers = 1
	eng8 := New()
	eng8.Workers = 8
	t1, err := eng1.Run(context.Background(), cat, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := eng8.Run(context.Background(), cat, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Len() != t8.Len() {
		t.Fatalf("lengths differ: %d vs %d", t1.Len(), t8.Len())
	}
	for i := range t1.Records {
		a, b := t1.Records[i], t8.Records[i]
		if a.EventID != b.EventID ||
			math.Abs(a.MeanLoss-b.MeanLoss) > 1e-9*(1+a.MeanLoss) ||
			math.Abs(a.SigmaI-b.SigmaI) > 1e-9*(1+a.SigmaI) {
			t.Fatalf("record %d differs across worker counts: %+v vs %+v", i, a, b)
		}
	}
}

func TestRunEmptyCatalog(t *testing.T) {
	_, db := smallWorld(t, 10, 50, 2)
	eng := New()
	tbl, err := eng.Run(context.Background(), catalog.NewCatalog(nil), db, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 || tbl.ContractID != 3 {
		t.Fatalf("empty catalogue should yield empty ELT, got %d records", tbl.Len())
	}
}

func TestRunNilVulnerability(t *testing.T) {
	cat, db := smallWorld(t, 10, 10, 2)
	eng := &Engine{}
	if _, err := eng.Run(context.Background(), cat, db, 1); err == nil {
		t.Fatal("nil vulnerability matrix should error")
	}
}

func TestRunRespectsCancellation(t *testing.T) {
	cat, db := smallWorld(t, 5000, 500, 4)
	eng := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx, cat, db, 1); err == nil {
		t.Fatal("cancelled context should abort the run")
	}
}

func TestMinMeanLossTruncates(t *testing.T) {
	cat, db := smallWorld(t, 2000, 200, 6)
	full := New()
	fullT, err := full.Run(context.Background(), cat, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	trunc := New()
	trunc.MinMeanLoss = 50_000
	truncT, err := trunc.Run(context.Background(), cat, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if truncT.Len() >= fullT.Len() {
		t.Fatalf("truncation did not shrink the table: %d vs %d", truncT.Len(), fullT.Len())
	}
	for _, r := range truncT.Records {
		if r.MeanLoss < 50_000 {
			t.Fatalf("record below floor: %+v", r)
		}
	}
}

func TestCustomTermsReduceLoss(t *testing.T) {
	cat, db := smallWorld(t, 1000, 150, 9)
	free := New()
	free.TermsFor = func(exposure.Interest) financial.Terms { return financial.Terms{} }
	freeT, err := free.Run(context.Background(), cat, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	harsh := New()
	harsh.TermsFor = func(in exposure.Interest) financial.Terms {
		return financial.Terms{Deductible: 0.5 * in.Value, Share: 0.5}
	}
	harshT, err := harsh.Run(context.Background(), cat, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if harshT.ExpectedLoss() >= freeT.ExpectedLoss() {
		t.Fatalf("harsher terms should cut expected loss: %v vs %v",
			harshT.ExpectedLoss(), freeT.ExpectedLoss())
	}
}

func TestRunPortfolioAssignsContractIDs(t *testing.T) {
	cat, _ := smallWorld(t, 500, 10, 12)
	dbs := make([]*exposure.Database, 3)
	for i := range dbs {
		ecfg := exposure.DefaultConfig()
		ecfg.NumLocations = 50
		db, err := exposure.Generate(ecfg, uint64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		dbs[i] = db
	}
	eng := New()
	tables, err := eng.RunPortfolio(context.Background(), cat, dbs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables", len(tables))
	}
	for i, tbl := range tables {
		if tbl.ContractID != uint32(i+1) {
			t.Fatalf("table %d has contract ID %d", i, tbl.ContractID)
		}
	}
}

func TestCorrelatedShareSplitsVariance(t *testing.T) {
	cat, db := smallWorld(t, 1000, 150, 14)
	lo := New()
	lo.CorrelatedShare = 0.05
	hi := New()
	hi.CorrelatedShare = 0.95
	loT, err := lo.Run(context.Background(), cat, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	hiT, err := hi.Run(context.Background(), cat, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	var loC, hiC float64
	for _, r := range loT.Records {
		loC += r.SigmaC
	}
	for _, r := range hiT.Records {
		hiC += r.SigmaC
	}
	if hiC <= loC {
		t.Fatalf("higher correlated share should raise SigmaC: %v vs %v", hiC, loC)
	}
}
