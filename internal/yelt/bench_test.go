package yelt

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/catalog"
)

func benchCatalog(b *testing.B, n int) *catalog.Catalog {
	b.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumEvents = n
	cat, err := catalog.Generate(cfg, 99)
	if err != nil {
		b.Fatal(err)
	}
	return cat
}

func BenchmarkGenerate(b *testing.B) {
	cat := benchCatalog(b, 10_000)
	for _, trials := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("trials=%d", trials), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := Generate(context.Background(), cat, Config{NumTrials: trials}, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				b.SetBytes(t.SizeBytes())
			}
		})
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	cat := benchCatalog(b, 5_000)
	t, err := Generate(context.Background(), cat, Config{NumTrials: 50_000}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(t.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(int(t.SizeBytes()))
		if _, err := t.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecRead(b *testing.B) {
	cat := benchCatalog(b, 5_000)
	t, err := Generate(context.Background(), cat, Config{NumTrials: 50_000}, 1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamTrials(b *testing.B) {
	cat := benchCatalog(b, 5_000)
	t, err := Generate(context.Background(), cat, Config{NumTrials: 50_000}, 1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var count int
		if err := StreamTrials(bytes.NewReader(data), func(int, []Occurrence) error {
			count++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
