package yelt

import (
	"context"
	"math"
	"testing"

	"repro/internal/catalog"
)

// monoPerilCatalog builds a catalogue containing only one peril.
func monoPerilCatalog(t *testing.T, p catalog.Peril, n int) *catalog.Catalog {
	t.Helper()
	events := make([]catalog.Event, n)
	for i := range events {
		events[i] = catalog.Event{
			ID: uint32(i + 1), Peril: p, Lat: 30, Lon: -90,
			Magnitude: 6, RadiusKm: 50, AnnualRate: 10.0 / float64(n),
		}
	}
	return catalog.NewCatalog(events)
}

func TestSeasonalHurricaneWindow(t *testing.T) {
	cat := monoPerilCatalog(t, catalog.Hurricane, 100)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 3000, Seasonal: true}, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, o := range tbl.Occs {
		if o.DayOfYear < 152 || o.DayOfYear > 334 {
			t.Fatalf("hurricane on day %d outside season", o.DayOfYear)
		}
		sum += float64(o.DayOfYear)
	}
	mean := sum / float64(len(tbl.Occs))
	if math.Abs(mean-245) > 8 {
		t.Fatalf("hurricane mean day = %v, want ~245", mean)
	}
}

func TestSeasonalWinterStormWrapsYear(t *testing.T) {
	cat := monoPerilCatalog(t, catalog.WinterStorm, 100)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 3000, Seasonal: true}, 6)
	if err != nil {
		t.Fatal(err)
	}
	var early, late int
	for _, o := range tbl.Occs {
		if o.DayOfYear > 364 {
			t.Fatalf("day out of range: %d", o.DayOfYear)
		}
		switch {
		case o.DayOfYear < 120:
			early++ // Jan-Apr tail of the wrapped season
		case o.DayOfYear >= 289:
			late++ // Oct-Dec
		default:
			t.Fatalf("winter storm on summer day %d", o.DayOfYear)
		}
	}
	if early == 0 || late == 0 {
		t.Fatalf("season should wrap the year boundary: early=%d late=%d", early, late)
	}
}

func TestSeasonalEarthquakeUniform(t *testing.T) {
	cat := monoPerilCatalog(t, catalog.Earthquake, 100)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 5000, Seasonal: true}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var lo, hi uint16 = 365, 0
	for _, o := range tbl.Occs {
		sum += float64(o.DayOfYear)
		if o.DayOfYear < lo {
			lo = o.DayOfYear
		}
		if o.DayOfYear > hi {
			hi = o.DayOfYear
		}
	}
	mean := sum / float64(len(tbl.Occs))
	if math.Abs(mean-182) > 6 {
		t.Fatalf("earthquake mean day = %v, want ~182 (uniform)", mean)
	}
	if lo > 10 || hi < 354 {
		t.Fatalf("earthquakes should cover the whole year: [%d, %d]", lo, hi)
	}
}

func TestSeasonalStillSortedAndDeterministic(t *testing.T) {
	ccfg := catalog.DefaultConfig()
	ccfg.NumEvents = 500
	cat, err := catalog.Generate(ccfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Generate(context.Background(), cat, Config{NumTrials: 1000, Seasonal: true, Workers: 1}, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(context.Background(), cat, Config{NumTrials: 1000, Seasonal: true, Workers: 6}, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Occs {
		if a.Occs[i] != b.Occs[i] {
			t.Fatalf("seasonal generation not deterministic across workers at %d", i)
		}
	}
	for trial := 0; trial < a.NumTrials; trial++ {
		occs := a.OccurrencesOf(trial)
		for i := 1; i < len(occs); i++ {
			if occs[i-1].DayOfYear > occs[i].DayOfYear {
				t.Fatalf("trial %d not day-sorted", trial)
			}
		}
	}
}

func TestSeasonalOffByDefault(t *testing.T) {
	cat := monoPerilCatalog(t, catalog.Hurricane, 50)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 2000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform days: some occurrences must fall outside hurricane season.
	var outside int
	for _, o := range tbl.Occs {
		if o.DayOfYear < 152 || o.DayOfYear > 334 {
			outside++
		}
	}
	if outside == 0 {
		t.Fatal("non-seasonal generation should be uniform over the year")
	}
}
