package yelt

import (
	"repro/internal/catalog"
	"repro/internal/rng"
)

// Seasonal occurrence-day windows per peril. Atlantic hurricane season
// runs June–November peaking in early September; winter storms cluster
// November–March; tornado activity peaks in spring; flood timing is
// broad with a spring bias; earthquakes have no season.
func seasonalDay(st *rng.Stream, p catalog.Peril) uint16 {
	switch p {
	case catalog.Hurricane:
		return clampedNormalDay(st, 245, 30, 152, 334)
	case catalog.WinterStorm:
		// Wrap around new year: sample an offset from Dec 15 (day 349).
		off := int(st.Normal(0, 38))
		if off < -60 {
			off = -60
		}
		if off > 95 {
			off = 95
		}
		return uint16((349 + off + 365) % 365)
	case catalog.Tornado:
		return clampedNormalDay(st, 135, 40, 60, 212)
	case catalog.Flood:
		return clampedNormalDay(st, 120, 70, 0, 364)
	default: // Earthquake and anything unmapped: uniform
		return uint16(st.Intn(365))
	}
}

func clampedNormalDay(st *rng.Stream, mean, sd float64, lo, hi int) uint16 {
	d := int(st.Normal(mean, sd))
	if d < lo {
		d = lo
	}
	if d > hi {
		d = hi
	}
	return uint16(d)
}
