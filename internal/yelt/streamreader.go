package yelt

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// TrialVisitor receives one trial year at a time during a streaming
// read. occs is only valid during the call; implementations must copy
// if they retain it.
type TrialVisitor func(trial int, occs []Occurrence) error

// StreamTrials reads a serialized table (the WriteTo format) from r
// and delivers trials one at a time without materializing the table —
// the access pattern for YELTs that exceed memory, per the paper's
// "data needs to be scanned over" observation. Memory use is bounded
// by the largest single trial year plus the counts header.
func StreamTrials(r io.Reader, visit TrialVisitor) error {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return fmt.Errorf("yelt: stream magic: %w", err)
	}
	if m != magic {
		return fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	var u4 [4]byte
	if _, err := io.ReadFull(br, u4[:]); err != nil {
		return fmt.Errorf("yelt: stream trial count: %w", err)
	}
	numTrials := int(binary.LittleEndian.Uint32(u4[:]))
	const maxTrials = 1 << 27
	if numTrials < 0 || numTrials > maxTrials {
		return fmt.Errorf("%w: trial count %d", ErrBadFormat, numTrials)
	}
	counts := make([]uint32, numTrials)
	for i := range counts {
		if _, err := io.ReadFull(br, u4[:]); err != nil {
			return fmt.Errorf("yelt: stream count %d: %w", i, err)
		}
		counts[i] = binary.LittleEndian.Uint32(u4[:])
	}
	var buf []Occurrence
	var rec [EntryBytes]byte
	for trial, n := range counts {
		if cap(buf) < int(n) {
			buf = make([]Occurrence, n)
		}
		buf = buf[:n]
		for i := range buf {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return fmt.Errorf("yelt: stream occurrence (trial %d): %w", trial, err)
			}
			buf[i] = Occurrence{
				EventID:   binary.LittleEndian.Uint32(rec[0:4]),
				DayOfYear: binary.LittleEndian.Uint16(rec[4:6]),
			}
		}
		if err := visit(trial, buf); err != nil {
			return err
		}
	}
	return nil
}
