package yelt

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Source yields trial years in bounded batches — the stage-2 streaming
// abstraction. Per §II the YELT is the burst artifact between stages:
// it must be "organised in a small number of very large tables and
// streamed by independent processes", and aggregate analysis only ever
// scans it. A Source lets the engines consume trials without requiring
// the whole table resident: a materialized *Table is a Source (batches
// are zero-copy views), and a Generator re-derives any batch on demand
// from the catalogue and seed, so trial count is bounded by time, not
// memory.
//
// Sources must be safe for concurrent ReadTrials calls with distinct
// buffers — including overlapping or identical ranges, not just
// disjoint ones: the by-contract engine has every contract worker
// scan the full trial range concurrently.
type Source interface {
	// TrialCount is the total number of trial years the source yields.
	TrialCount() int
	// ReadTrials materializes trials [lo, hi) into a batch table whose
	// local trial i corresponds to global trial lo+i. The returned
	// table may be buf (with its storage reused) or a view sharing the
	// source's storage; either way it is only valid until the next
	// ReadTrials call with the same buf. A nil buf allocates.
	ReadTrials(ctx context.Context, lo, hi int, buf *Table) (*Table, error)
}

// TrialCount implements Source.
func (t *Table) TrialCount() int { return t.NumTrials }

// ReadTrials implements Source: batches are views sharing the table's
// occurrence storage (no copy); only the rebased offsets go through
// buf. The full range returns the table itself.
func (t *Table) ReadTrials(_ context.Context, lo, hi int, buf *Table) (*Table, error) {
	if lo < 0 || hi > t.NumTrials || lo > hi {
		return nil, fmt.Errorf("yelt: read trials [%d,%d) outside [0,%d)", lo, hi, t.NumTrials)
	}
	if lo == 0 && hi == t.NumTrials {
		return t, nil
	}
	if buf == nil {
		buf = &Table{}
	}
	return t.view(lo, hi, buf), nil
}

// Generator is the streaming counterpart of Generate: it re-derives
// any trial batch on demand instead of pre-simulating the whole table.
// Because every trial draws from its own splittable stream
// (rng.NewStream(seed, trial)), a batch is a pure function of
// (catalogue, config, seed, trial range) — Generate and a Generator
// with the same inputs produce bit-identical occurrences, which the
// equivalence tests pin down. A Generator is safe for concurrent
// ReadTrials calls.
type Generator struct {
	cfg       Config
	seed      uint64
	events    []catalog.Event
	alias     *rng.Alias
	totalRate float64
	// streamed counts occurrences delivered through ReadTrials — the
	// streaming analogue of Table.Len for stage accounting.
	streamed atomic.Int64
}

// NewGenerator validates the inputs and prepares the shared samplers.
// The returned generator yields exactly the trials that
// Generate(ctx, cat, cfg, seed) would materialize.
func NewGenerator(cat *catalog.Catalog, cfg Config, seed uint64) (*Generator, error) {
	if cfg.NumTrials <= 0 {
		return nil, fmt.Errorf("yelt: NumTrials must be positive, got %d", cfg.NumTrials)
	}
	if cat.Len() == 0 {
		return nil, errEmptyCatalog
	}
	alias, err := rng.NewAlias(cat.Rates())
	if err != nil {
		return nil, fmt.Errorf("yelt: building event sampler: %w", err)
	}
	return &Generator{
		cfg:       cfg,
		seed:      seed,
		events:    cat.Events,
		alias:     alias,
		totalRate: cat.TotalRate(),
	}, nil
}

// TrialCount implements Source.
func (g *Generator) TrialCount() int { return g.cfg.NumTrials }

// MeanOccurrences returns the expected events per trial year (the
// catalogue's total rate) — the sizing input for batch-byte estimates.
func (g *Generator) MeanOccurrences() float64 { return g.totalRate }

// Streamed returns the total occurrences delivered through ReadTrials
// so far. Single-pass engines stream each trial exactly once, so after
// such a run Streamed equals the occurrence count of the equivalent
// materialized table.
func (g *Generator) Streamed() int64 { return g.streamed.Load() }

// appendTrial re-derives one trial year and appends its occurrences,
// sorted by (day, event). This is the single per-trial kernel shared
// by Generate and ReadTrials; the draw order (Poisson count, then per
// occurrence an alias draw, a uniform day, and — in seasonal mode — the
// seasonal redraw) is the determinism contract and must not change.
func (g *Generator) appendTrial(trial int, occs []Occurrence) []Occurrence {
	st := rng.NewStream(g.seed, uint64(trial))
	k := st.Poisson(g.totalRate)
	start := len(occs)
	for j := 0; j < k; j++ {
		ev := g.events[g.alias.Draw(st)]
		day := uint16(st.Intn(365))
		if g.cfg.Seasonal {
			day = seasonalDay(st, ev.Peril)
		}
		occs = append(occs, Occurrence{EventID: ev.ID, DayOfYear: day})
	}
	year := occs[start:]
	sort.Slice(year, func(i, j int) bool {
		if year[i].DayOfYear != year[j].DayOfYear {
			return year[i].DayOfYear < year[j].DayOfYear
		}
		return year[i].EventID < year[j].EventID
	})
	return occs
}

// ReadTrials implements Source by regenerating trials [lo, hi) into
// buf. Memory use is bounded by the batch, not the trial count.
func (g *Generator) ReadTrials(ctx context.Context, lo, hi int, buf *Table) (*Table, error) {
	if lo < 0 || hi > g.cfg.NumTrials || lo > hi {
		return nil, fmt.Errorf("yelt: read trials [%d,%d) outside [0,%d)", lo, hi, g.cfg.NumTrials)
	}
	if buf == nil {
		buf = &Table{}
	}
	buf.NumTrials = hi - lo
	buf.Offsets = append(buf.Offsets[:0], 0)
	buf.Occs = buf.Occs[:0]
	for trial := lo; trial < hi; trial++ {
		if (trial-lo)%1024 == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		buf.Occs = g.appendTrial(trial, buf.Occs)
		buf.Offsets = append(buf.Offsets, int64(len(buf.Occs)))
	}
	g.streamed.Add(int64(len(buf.Occs)))
	return buf, nil
}

// Materialize pre-simulates the full table, parallelized across trial
// blocks exactly as Generate (which is implemented on top of it).
func (g *Generator) Materialize(ctx context.Context) (*Table, error) {
	nBlocks := g.cfg.Workers
	if nBlocks <= 0 {
		nBlocks = runtime.GOMAXPROCS(0)
	}
	ranges := stream.Partition(g.cfg.NumTrials, nBlocks)
	blocks := make([]Table, len(ranges))
	err := stream.ForEachRange(ctx, g.cfg.NumTrials, nBlocks, func(ctx context.Context, r stream.Range, w int) error {
		b := &blocks[w]
		b.NumTrials = r.Len()
		b.Offsets = append(make([]int64, 0, r.Len()+1), 0)
		b.Occs = make([]Occurrence, 0, int(float64(r.Len())*g.totalRate*11/10))
		for trial := r.Lo; trial < r.Hi; trial++ {
			if (trial-r.Lo)%4096 == 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				default:
				}
			}
			b.Occs = g.appendTrial(trial, b.Occs)
			b.Offsets = append(b.Offsets, int64(len(b.Occs)))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{NumTrials: g.cfg.NumTrials}
	total := 0
	for i := range blocks {
		total += len(blocks[i].Occs)
	}
	t.Offsets = make([]int64, 1, g.cfg.NumTrials+1)
	t.Occs = make([]Occurrence, 0, total)
	for i := range blocks {
		base := t.Offsets[len(t.Offsets)-1]
		for _, off := range blocks[i].Offsets[1:] {
			t.Offsets = append(t.Offsets, base+off)
		}
		t.Occs = append(t.Occs, blocks[i].Occs...)
	}
	return t, nil
}
