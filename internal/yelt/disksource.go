package yelt

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/diskstore"
	"repro/internal/stream"
)

// This file is the third point on the stage-2 memory/compute trade:
// generate the trial stream once, spill it into trial-range partitions
// of an internal/diskstore, and let every subsequent engine pass
// re-scan the shards instead of re-deriving the trials. It is the
// paper's "accumulate large distributed file space" strategy applied
// to the YELT — partitioned, written once, consumed by sequential
// scans — and the substrate the MapReduce aggregate engine maps over.

// Spill writes the trials of src into parts contiguous trial-range
// shards of dataset in store — one WriteTo-format shard per
// stream.Partition range, shard i holding range i — and returns the
// DiskSource reading them back. Shards are written in parallel
// (bounded by workers; <= 0 means GOMAXPROCS), each materialized
// range-at-a-time, so peak memory during the spill is bounded by
// workers × shard, not by the trial count. Any prior spill under the
// same dataset name is deleted first: leftover high-numbered shards
// from a larger previous run would otherwise survive alongside the
// fresh ones and corrupt size accounting and OpenDiskSource
// re-attachment.
func Spill(ctx context.Context, src Source, store *diskstore.Store, dataset string, parts, workers int) (*DiskSource, error) {
	n := src.TrialCount()
	if n <= 0 {
		return nil, fmt.Errorf("yelt: spill of empty source")
	}
	if parts <= 0 {
		return nil, fmt.Errorf("yelt: spill parts %d", parts)
	}
	for _, stale := range []string{manifestDataset(dataset), dataset} {
		if err := store.Delete(stale); err != nil && !errors.Is(err, diskstore.ErrNotFound) {
			return nil, fmt.Errorf("yelt: clearing stale dataset %q: %w", stale, err)
		}
	}
	ranges := stream.Partition(n, parts)
	err := stream.ForEach(ctx, len(ranges), workers, func(ctx context.Context, i int) error {
		shard, err := src.ReadTrials(ctx, ranges[i].Lo, ranges[i].Hi, &Table{})
		if err != nil {
			return fmt.Errorf("yelt: spill shard %d: %w", i, err)
		}
		return store.WritePartition(dataset, i, func(w io.Writer) error {
			_, err := shard.WriteTo(w)
			return err
		})
	})
	if err != nil {
		return nil, err
	}
	// The manifest commits the spill: written only after every shard
	// landed, so a crash mid-spill leaves a dataset OpenDiskSource
	// refuses — individually valid trailing shards cannot masquerade as
	// a complete (but truncated) spill.
	if err := writeManifest(store, dataset, shardCounts(ranges)); err != nil {
		return nil, err
	}
	return &DiskSource{store: store, dataset: dataset, ranges: ranges, n: n}, nil
}

// The manifest is a sibling single-partition dataset recording what a
// complete spill contains: magic, shard count, total trial count, and
// the per-shard trial counts. Recording every shard's expected count —
// not just the total — lets OpenDiskSource name the exact shard whose
// header disagrees with the spill instead of reporting only that the
// totals drifted.
var manifestMagic = [4]byte{'Y', 'S', 'P', '2'}

func manifestDataset(dataset string) string { return dataset + ".manifest" }

func shardCounts(ranges []stream.Range) []int {
	counts := make([]int, len(ranges))
	for i, r := range ranges {
		counts[i] = r.Hi - r.Lo
	}
	return counts
}

func writeManifest(store *diskstore.Store, dataset string, counts []int) error {
	return store.WritePartition(manifestDataset(dataset), 0, func(w io.Writer) error {
		trials := 0
		for _, c := range counts {
			trials += c
		}
		buf := make([]byte, 12+4*len(counts))
		copy(buf[:4], manifestMagic[:])
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(counts)))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(trials))
		for i, c := range counts {
			binary.LittleEndian.PutUint32(buf[12+4*i:], uint32(c))
		}
		_, err := w.Write(buf)
		return err
	})
}

func readManifest(store *diskstore.Store, dataset string) (counts []int, err error) {
	err = store.ReadPartition(manifestDataset(dataset), 0, func(r io.Reader) error {
		var hdr [12]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return fmt.Errorf("yelt: spill manifest: %w", err)
		}
		if [4]byte(hdr[:4]) != manifestMagic {
			return fmt.Errorf("%w: spill manifest magic %q", ErrBadFormat, hdr[:4])
		}
		parts := int(binary.LittleEndian.Uint32(hdr[4:8]))
		trials := int(binary.LittleEndian.Uint32(hdr[8:12]))
		body := make([]byte, 4*parts)
		if _, err := io.ReadFull(r, body); err != nil {
			return fmt.Errorf("yelt: spill manifest shard table: %w", err)
		}
		counts = make([]int, parts)
		sum := 0
		for i := range counts {
			counts[i] = int(binary.LittleEndian.Uint32(body[4*i:]))
			sum += counts[i]
		}
		if sum != trials {
			return fmt.Errorf("%w: spill manifest shard counts sum to %d, header says %d", ErrBadFormat, sum, trials)
		}
		return nil
	})
	return counts, err
}

// DefaultSpillNodes is the simulated storage-node count spills default
// to — matching the distributed-file experiments (E6, E11).
const DefaultSpillNodes = 4

// SpillToDir is the one-call form of Spill shared by the pipeline,
// CLIs, and benchmarks: it creates a diskstore rooted at dir with
// nodes storage nodes (<= 0 means DefaultSpillNodes) and spills src
// into its "yelt" dataset.
func SpillToDir(ctx context.Context, src Source, dir string, nodes, parts, workers int) (*DiskSource, error) {
	if nodes <= 0 {
		nodes = DefaultSpillNodes
	}
	store, err := diskstore.Create(dir, nodes)
	if err != nil {
		return nil, err
	}
	return Spill(ctx, src, store, "yelt", parts, workers)
}

// DiskSource is a Source over the trial-range shards Spill wrote: any
// batch is re-read from disk by scanning the overlapping shards with
// the StreamTrials codec (the store offers no random access — these
// workloads scan). It is safe for concurrent ReadTrials calls: every
// call opens its own partition readers.
type DiskSource struct {
	store   *diskstore.Store
	dataset string
	ranges  []stream.Range // ranges[i] = global trials held by shard i
	n       int
	// scanned counts occurrences delivered through ReadTrials — the
	// disk-scan analogue of Generator.Streamed for stage accounting.
	scanned atomic.Int64
}

// OpenDiskSource attaches to a previously spilled dataset, recovering
// the shard → trial-range map from the shard headers (each WriteTo
// header carries its trial count; shards are contiguous in partition
// order by construction). The dataset's manifest — written only after
// a spill completes — must match the shards found, so a crashed spill
// (missing trailing shards, or no manifest at all) is refused instead
// of silently opening truncated.
func OpenDiskSource(store *diskstore.Store, dataset string) (*DiskSource, error) {
	wantCounts, err := readManifest(store, dataset)
	if err != nil {
		return nil, fmt.Errorf("yelt: open %q (incomplete or pre-manifest spill?): %w", dataset, err)
	}
	parts, err := store.Partitions(dataset)
	if err != nil && !errors.Is(err, diskstore.ErrNotFound) {
		return nil, err
	}
	// Diff the shard set against the manifest naming the first culprit:
	// a shard file lost between spill and re-attach is reported by
	// number, not as a bare count mismatch.
	present := make(map[int]bool, len(parts))
	for _, p := range parts {
		if p >= len(wantCounts) {
			return nil, fmt.Errorf("%w: dataset %s has stray shard %d, manifest expects %d shards", ErrBadFormat, dataset, p, len(wantCounts))
		}
		present[p] = true
	}
	for i := range wantCounts {
		if !present[i] {
			return nil, fmt.Errorf("%w: dataset %s missing shard %d (manifest expects %d shards)", ErrBadFormat, dataset, i, len(wantCounts))
		}
	}
	ds := &DiskSource{store: store, dataset: dataset}
	lo := 0
	for i, want := range wantCounts {
		var trials int
		err := store.ReadPartition(dataset, i, func(r io.Reader) error {
			var hdr [8]byte
			if _, err := io.ReadFull(r, hdr[:]); err != nil {
				return fmt.Errorf("yelt: shard %d header: %w", i, err)
			}
			if [4]byte(hdr[:4]) != magic {
				return fmt.Errorf("%w: shard %d magic %q", ErrBadFormat, i, hdr[:4])
			}
			trials = int(binary.LittleEndian.Uint32(hdr[4:8]))
			return nil
		})
		if err != nil {
			return nil, err
		}
		if trials != want {
			return nil, fmt.Errorf("%w: shard %d holds %d trials, manifest expects %d", ErrBadFormat, i, trials, want)
		}
		ds.ranges = append(ds.ranges, stream.Range{Lo: lo, Hi: lo + trials})
		lo += trials
	}
	ds.n = lo
	return ds, nil
}

// TrialCount implements Source.
func (ds *DiskSource) TrialCount() int { return ds.n }

// Shards returns the number of trial-range partitions.
func (ds *DiskSource) Shards() int { return len(ds.ranges) }

// Nodes returns the storage-node count of the underlying store.
func (ds *DiskSource) Nodes() int { return ds.store.Nodes() }

// ShardRange returns the global trial range shard i holds — the
// boundaries shard-affine mappers align their splits to.
func (ds *DiskSource) ShardRange(i int) stream.Range { return ds.ranges[i] }

// ShardNode returns the storage node shard i lives on — where a
// shard-affine mapper should run to scan it locally.
func (ds *DiskSource) ShardNode(i int) int { return ds.store.NodeOf(i) }

// ShardSizeBytes returns the on-disk size of shard i — the data-motion
// cost of scanning it from another node.
func (ds *DiskSource) ShardSizeBytes(i int) (int64, error) {
	return ds.store.PartitionSizeBytes(ds.dataset, i)
}

// SizeBytes returns the on-disk footprint of the spilled dataset.
func (ds *DiskSource) SizeBytes() (int64, error) {
	return ds.store.SizeBytes(ds.dataset)
}

// Scanned returns the total occurrences delivered through ReadTrials
// so far — how much shard data engine passes have re-read from disk.
func (ds *DiskSource) Scanned() int64 { return ds.scanned.Load() }

// errStopScan aborts a shard scan once the requested range is filled;
// it never escapes ReadTrials.
var errStopScan = errors.New("yelt: stop scan")

// ReadTrials implements Source by scanning the shards overlapping
// [lo, hi) with StreamTrials, copying the in-range trials into buf and
// stopping each scan as soon as the range is exhausted. Memory use is
// bounded by the batch plus one shard's counts header.
func (ds *DiskSource) ReadTrials(ctx context.Context, lo, hi int, buf *Table) (*Table, error) {
	if lo < 0 || hi > ds.n || lo > hi {
		return nil, fmt.Errorf("yelt: read trials [%d,%d) outside [0,%d)", lo, hi, ds.n)
	}
	if buf == nil {
		buf = &Table{}
	}
	buf.NumTrials = hi - lo
	buf.Offsets = append(buf.Offsets[:0], 0)
	buf.Occs = buf.Occs[:0]
	if lo == hi {
		return buf, nil
	}
	// First shard whose range extends past lo; shards are contiguous,
	// so subsequent shards are consumed in order until hi is reached.
	first := sort.Search(len(ds.ranges), func(i int) bool { return ds.ranges[i].Hi > lo })
	for si := first; si < len(ds.ranges) && ds.ranges[si].Lo < hi; si++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		base := ds.ranges[si].Lo
		err := ds.store.ReadPartition(ds.dataset, si, func(r io.Reader) error {
			return StreamTrials(r, func(trial int, occs []Occurrence) error {
				global := base + trial
				if global < lo {
					return nil
				}
				if global >= hi {
					return errStopScan
				}
				buf.Occs = append(buf.Occs, occs...)
				buf.Offsets = append(buf.Offsets, int64(len(buf.Occs)))
				return nil
			})
		})
		if err != nil && !errors.Is(err, errStopScan) {
			return nil, fmt.Errorf("yelt: scanning shard %d: %w", si, err)
		}
	}
	if got := len(buf.Offsets) - 1; got != hi-lo {
		return nil, fmt.Errorf("%w: shards yielded %d of %d trials in [%d,%d)", ErrBadFormat, got, hi-lo, lo, hi)
	}
	ds.scanned.Add(int64(len(buf.Occs)))
	return buf, nil
}
