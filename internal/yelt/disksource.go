package yelt

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/diskstore"
	"repro/internal/stream"
)

// This file is the third point on the stage-2 memory/compute trade:
// generate the trial stream once, spill it into trial-range partitions
// of an internal/diskstore, and let every subsequent engine pass
// re-scan the shards instead of re-deriving the trials. It is the
// paper's "accumulate large distributed file space" strategy applied
// to the YELT — partitioned, written once, consumed by sequential
// scans — and the substrate the MapReduce aggregate engine maps over.

// Spill writes the trials of src into parts contiguous trial-range
// shards of dataset in store — one WriteTo-format shard per
// stream.Partition range, shard i holding range i — and returns the
// DiskSource reading them back. Shards are written in parallel
// (bounded by workers; <= 0 means GOMAXPROCS), each materialized
// range-at-a-time, so peak memory during the spill is bounded by
// workers × shard, not by the trial count. Any prior spill under the
// same dataset name is deleted first: leftover high-numbered shards
// from a larger previous run would otherwise survive alongside the
// fresh ones and corrupt size accounting and OpenDiskSource
// re-attachment.
func Spill(ctx context.Context, src Source, store *diskstore.Store, dataset string, parts, workers int) (*DiskSource, error) {
	return SpillReplicated(ctx, src, store, dataset, parts, 1, workers)
}

// SpillReplicated is Spill with a replication factor: each shard is
// written to replicas distinct storage nodes (clamped to the node
// count; <= 1 means no replication), placed by the store's chained
// declustering rule, and the manifest records every shard's replica
// set so a re-attaching process knows where the survivors are. The
// commit protocol is unchanged — every replica of every shard must
// land before the manifest (itself replicated) is written — so a crash
// mid-spill still leaves a dataset OpenDiskSource refuses, never a
// partially replicated one that would silently lose its fault
// tolerance.
func SpillReplicated(ctx context.Context, src Source, store *diskstore.Store, dataset string, parts, replicas, workers int) (*DiskSource, error) {
	n := src.TrialCount()
	if n <= 0 {
		return nil, fmt.Errorf("yelt: spill of empty source")
	}
	if parts <= 0 {
		return nil, fmt.Errorf("yelt: spill parts %d", parts)
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > store.Nodes() {
		replicas = store.Nodes()
	}
	for _, stale := range []string{manifestDataset(dataset), dataset} {
		if err := store.Delete(stale); err != nil && !errors.Is(err, diskstore.ErrNotFound) {
			return nil, fmt.Errorf("yelt: clearing stale dataset %q: %w", stale, err)
		}
	}
	ranges := stream.Partition(n, parts)
	reps := make([][]int, len(ranges))
	for i := range reps {
		reps[i] = store.ReplicaNodesFor(i, replicas)
	}
	err := stream.ForEach(ctx, len(ranges), workers, func(ctx context.Context, i int) error {
		shard, err := src.ReadTrials(ctx, ranges[i].Lo, ranges[i].Hi, &Table{})
		if err != nil {
			return fmt.Errorf("yelt: spill shard %d: %w", i, err)
		}
		for _, node := range reps[i] {
			err := store.WritePartitionAt(dataset, i, node, func(w io.Writer) error {
				_, err := shard.WriteTo(w)
				return err
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The manifest commits the spill: written only after every shard
	// landed, so a crash mid-spill leaves a dataset OpenDiskSource
	// refuses — individually valid trailing shards cannot masquerade as
	// a complete (but truncated) spill.
	if err := writeManifest(store, dataset, shardCounts(ranges), reps, replicas); err != nil {
		return nil, err
	}
	return &DiskSource{store: store, dataset: dataset, ranges: ranges, n: n,
		reps: reps, replicas: replicas}, nil
}

// The manifest is a sibling single-partition dataset recording what a
// complete spill contains: magic, shard count, total trial count,
// replication factor, the per-shard trial counts, and the per-shard
// replica node sets. Recording every shard's expected count — not just
// the total — lets OpenDiskSource name the exact shard whose header
// disagrees with the spill instead of reporting only that the totals
// drifted; recording the replica sets tells a re-attaching process
// where the survivors of a node loss are without scanning every node
// directory. The manifest partition is itself replicated (same
// placement rule), and v2 manifests from pre-replication spills still
// read (replica sets default to the primary placement).
var (
	manifestMagicV2 = [4]byte{'Y', 'S', 'P', '2'}
	manifestMagic   = [4]byte{'Y', 'S', 'P', '3'}
)

func manifestDataset(dataset string) string { return dataset + ".manifest" }

func shardCounts(ranges []stream.Range) []int {
	counts := make([]int, len(ranges))
	for i, r := range ranges {
		counts[i] = r.Hi - r.Lo
	}
	return counts
}

// Manifest v3 layout, all little-endian u32 after the magic:
//
//	"YSP3" | parts | trials | replicas r | parts × count | parts × r × node
func writeManifest(store *diskstore.Store, dataset string, counts []int, reps [][]int, replicas int) error {
	trials := 0
	for _, c := range counts {
		trials += c
	}
	buf := make([]byte, 16+4*len(counts)+4*replicas*len(counts))
	copy(buf[:4], manifestMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(counts)))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(trials))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(replicas))
	off := 16
	for _, c := range counts {
		binary.LittleEndian.PutUint32(buf[off:], uint32(c))
		off += 4
	}
	for _, nodes := range reps {
		for _, n := range nodes {
			binary.LittleEndian.PutUint32(buf[off:], uint32(n))
			off += 4
		}
	}
	for _, node := range store.ReplicaNodesFor(0, replicas) {
		err := store.WritePartitionAt(manifestDataset(dataset), 0, node, func(w io.Writer) error {
			_, err := w.Write(buf)
			return err
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// readManifest reads the spill's commit record, failing over across
// its replicas (the same node loss that takes out data shards can take
// out the manifest's primary copy).
func readManifest(store *diskstore.Store, dataset string) (counts []int, reps [][]int, replicas int, err error) {
	mds := manifestDataset(dataset)
	nodes, err := store.ReplicaNodes(mds, 0)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("%w: %s part 0", diskstore.ErrNotFound, mds)
	}
	var errs []error
	for _, node := range nodes {
		counts, reps, replicas, err = parseManifestAt(store, mds, node)
		if err == nil {
			return counts, reps, replicas, nil
		}
		errs = append(errs, fmt.Errorf("node %d: %w", node, err))
	}
	if len(errs) == 1 {
		return nil, nil, 0, errs[0]
	}
	return nil, nil, 0, fmt.Errorf("yelt: spill manifest unreadable on all replicas: %w", errors.Join(errs...))
}

func parseManifestAt(store *diskstore.Store, mds string, node int) (counts []int, reps [][]int, replicas int, err error) {
	err = store.ReadPartitionAt(mds, 0, node, func(r io.Reader) error {
		var magicBuf [4]byte
		if _, err := io.ReadFull(r, magicBuf[:]); err != nil {
			return fmt.Errorf("yelt: spill manifest: %w", err)
		}
		v3 := magicBuf == manifestMagic
		if !v3 && magicBuf != manifestMagicV2 {
			return fmt.Errorf("%w: spill manifest magic %q", ErrBadFormat, magicBuf[:])
		}
		hdrLen := 8
		if v3 {
			hdrLen = 12
		}
		hdr := make([]byte, hdrLen)
		if _, err := io.ReadFull(r, hdr); err != nil {
			return fmt.Errorf("yelt: spill manifest: %w", err)
		}
		parts := int(binary.LittleEndian.Uint32(hdr[0:4]))
		trials := int(binary.LittleEndian.Uint32(hdr[4:8]))
		replicas = 1
		if v3 {
			replicas = int(binary.LittleEndian.Uint32(hdr[8:12]))
			if replicas < 1 || replicas > store.Nodes() {
				return fmt.Errorf("%w: spill manifest replication factor %d (store has %d nodes)", ErrBadFormat, replicas, store.Nodes())
			}
		}
		body := make([]byte, 4*parts)
		if _, err := io.ReadFull(r, body); err != nil {
			return fmt.Errorf("yelt: spill manifest shard table: %w", err)
		}
		counts = make([]int, parts)
		sum := 0
		for i := range counts {
			counts[i] = int(binary.LittleEndian.Uint32(body[4*i:]))
			sum += counts[i]
		}
		if sum != trials {
			return fmt.Errorf("%w: spill manifest shard counts sum to %d, header says %d", ErrBadFormat, sum, trials)
		}
		reps = make([][]int, parts)
		if v3 {
			rbody := make([]byte, 4*replicas*parts)
			if _, err := io.ReadFull(r, rbody); err != nil {
				return fmt.Errorf("yelt: spill manifest replica table: %w", err)
			}
			for i := range reps {
				reps[i] = make([]int, replicas)
				for k := range reps[i] {
					n := int(binary.LittleEndian.Uint32(rbody[4*(i*replicas+k):]))
					if n < 0 || n >= store.Nodes() {
						return fmt.Errorf("%w: spill manifest shard %d replica node %d (store has %d nodes)", ErrBadFormat, i, n, store.Nodes())
					}
					reps[i][k] = n
				}
			}
		} else {
			// v2 predates replication: each shard has exactly its
			// primary-placement copy.
			for i := range reps {
				reps[i] = []int{store.NodeOf(i)}
			}
		}
		return nil
	})
	return counts, reps, replicas, err
}

// DefaultSpillNodes is the simulated storage-node count spills default
// to — matching the distributed-file experiments (E6, E11).
const DefaultSpillNodes = 4

// SpillToDir is the one-call form of Spill shared by the pipeline,
// CLIs, and benchmarks: it creates a diskstore rooted at dir with
// nodes storage nodes (<= 0 means DefaultSpillNodes) and spills src
// into its "yelt" dataset, replicating each shard to replicas nodes
// (<= 1 means no replication).
func SpillToDir(ctx context.Context, src Source, dir string, nodes, parts, replicas, workers int) (*DiskSource, error) {
	if nodes <= 0 {
		nodes = DefaultSpillNodes
	}
	store, err := diskstore.Create(dir, nodes)
	if err != nil {
		return nil, err
	}
	return SpillReplicated(ctx, src, store, "yelt", parts, replicas, workers)
}

// DiskSource is a Source over the trial-range shards Spill wrote: any
// batch is re-read from disk by scanning the overlapping shards with
// the StreamTrials codec (the store offers no random access — these
// workloads scan). It is safe for concurrent ReadTrials calls: every
// call opens its own partition readers.
type DiskSource struct {
	store    *diskstore.Store
	dataset  string
	ranges   []stream.Range // ranges[i] = global trials held by shard i
	n        int
	reps     [][]int // reps[i] = storage nodes holding shard i, failover order
	replicas int     // replication factor the spill was written with
	// scanned counts occurrences delivered through ReadTrials — the
	// disk-scan analogue of Generator.Streamed for stage accounting.
	scanned atomic.Int64
	// failovers counts replica reads abandoned for the next replica —
	// the price of staying correct through shard loss.
	failovers atomic.Int64
	flog      failoverLog
}

// failoverLog keeps a bounded record of replica failovers so operators
// (and tests) can see which replica was bad and why, without an
// unbounded allocation under sustained faults.
type failoverLog struct {
	mu      sync.Mutex
	entries []string
	dropped int
}

const failoverLogCap = 16

func (l *failoverLog) add(msg string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) >= failoverLogCap {
		l.dropped++
		return
	}
	l.entries = append(l.entries, msg)
}

func (l *failoverLog) snapshot() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := append([]string(nil), l.entries...)
	if l.dropped > 0 {
		out = append(out, fmt.Sprintf("(%d more failovers not logged)", l.dropped))
	}
	return out
}

// OpenDiskSource attaches to a previously spilled dataset, recovering
// the shard → trial-range map from the shard headers (each WriteTo
// header carries its trial count; shards are contiguous in partition
// order by construction). The dataset's manifest — written only after
// a spill completes — must match the shards found, so a crashed spill
// (missing trailing shards, or no manifest at all) is refused instead
// of silently opening truncated.
// With replication, verification fails over: a shard whose primary
// replica is torn, truncated, or lost attaches from any healthy
// replica (the failover is counted and logged, naming the bad copy);
// only a shard with no healthy replica at all refuses the attach.
func OpenDiskSource(store *diskstore.Store, dataset string) (*DiskSource, error) {
	wantCounts, reps, replicas, err := readManifest(store, dataset)
	if err != nil {
		return nil, fmt.Errorf("yelt: open %q (incomplete or pre-manifest spill?): %w", dataset, err)
	}
	parts, err := store.Partitions(dataset)
	if err != nil && !errors.Is(err, diskstore.ErrNotFound) {
		return nil, err
	}
	// Diff the shard set against the manifest naming the first culprit:
	// a shard whose every replica was lost between spill and re-attach
	// is reported by number, not as a bare count mismatch.
	present := make(map[int]bool, len(parts))
	for _, p := range parts {
		if p >= len(wantCounts) {
			return nil, fmt.Errorf("%w: dataset %s has stray shard %d, manifest expects %d shards", ErrBadFormat, dataset, p, len(wantCounts))
		}
		present[p] = true
	}
	for i := range wantCounts {
		if !present[i] {
			return nil, fmt.Errorf("%w: dataset %s missing shard %d (manifest expects %d shards)", ErrBadFormat, dataset, i, len(wantCounts))
		}
	}
	ds := &DiskSource{store: store, dataset: dataset, reps: reps, replicas: replicas}
	lo := 0
	for i, want := range wantCounts {
		var errs []error
		verified := false
		for ri, node := range reps[i] {
			var trials int
			err := store.ReadPartitionAt(dataset, i, node, func(r io.Reader) error {
				var hdr [8]byte
				if _, err := io.ReadFull(r, hdr[:]); err != nil {
					return fmt.Errorf("yelt: shard %d header: %w", i, err)
				}
				if [4]byte(hdr[:4]) != magic {
					return fmt.Errorf("%w: shard %d magic %q", ErrBadFormat, i, hdr[:4])
				}
				trials = int(binary.LittleEndian.Uint32(hdr[4:8]))
				return nil
			})
			if err == nil && trials != want {
				err = fmt.Errorf("%w: shard %d holds %d trials, manifest expects %d", ErrBadFormat, i, trials, want)
			}
			if err == nil {
				if ri > 0 {
					ds.failovers.Add(int64(ri))
					ds.flog.add(fmt.Sprintf("shard %d: attached from replica node %d (%v)", i, node, errors.Join(errs...)))
				}
				verified = true
				break
			}
			errs = append(errs, fmt.Errorf("replica node %d: %w", node, err))
		}
		if !verified {
			if len(errs) == 1 {
				return nil, errs[0]
			}
			return nil, fmt.Errorf("yelt: shard %d unreadable on all replicas: %w", i, errors.Join(errs...))
		}
		ds.ranges = append(ds.ranges, stream.Range{Lo: lo, Hi: lo + want})
		lo += want
	}
	ds.n = lo
	return ds, nil
}

// TrialCount implements Source.
func (ds *DiskSource) TrialCount() int { return ds.n }

// Shards returns the number of trial-range partitions.
func (ds *DiskSource) Shards() int { return len(ds.ranges) }

// Nodes returns the storage-node count of the underlying store.
func (ds *DiskSource) Nodes() int { return ds.store.Nodes() }

// ShardRange returns the global trial range shard i holds — the
// boundaries shard-affine mappers align their splits to.
func (ds *DiskSource) ShardRange(i int) stream.Range { return ds.ranges[i] }

// ShardNode returns the storage node shard i primarily lives on —
// where a shard-affine mapper should run to scan it locally.
func (ds *DiskSource) ShardNode(i int) int { return ds.shardReplicas(i)[0] }

// ShardNodes returns every storage node holding a replica of shard i,
// in failover order. Affine placement treats any of them as local.
// The returned slice is shared; callers must not modify it.
func (ds *DiskSource) ShardNodes(i int) []int { return ds.shardReplicas(i) }

// Replicas returns the replication factor the spill was written with.
func (ds *DiskSource) Replicas() int {
	if ds.replicas < 1 {
		return 1
	}
	return ds.replicas
}

// Failovers returns how many replica reads were abandoned for the next
// replica so far — zero on a healthy store.
func (ds *DiskSource) Failovers() int64 { return ds.failovers.Load() }

// FailoverLog returns a bounded log of the failovers so far, each
// naming the shard, the bad replica, and why it was abandoned.
func (ds *DiskSource) FailoverLog() []string { return ds.flog.snapshot() }

// Store exposes the underlying diskstore — the seam where fault
// injection (Store.SetReadFault) and replica-loss hooks attach.
func (ds *DiskSource) Store() *diskstore.Store { return ds.store }

func (ds *DiskSource) shardReplicas(i int) []int {
	if ds.reps == nil {
		// Pre-replication DiskSource (built by tests or old callers):
		// primary placement only.
		return []int{ds.store.NodeOf(i)}
	}
	return ds.reps[i]
}

// ShardSizeBytes returns the on-disk size of shard i — the data-motion
// cost of scanning it from another node.
func (ds *DiskSource) ShardSizeBytes(i int) (int64, error) {
	return ds.store.PartitionSizeBytes(ds.dataset, i)
}

// SizeBytes returns the on-disk footprint of the spilled dataset.
func (ds *DiskSource) SizeBytes() (int64, error) {
	return ds.store.SizeBytes(ds.dataset)
}

// Scanned returns the total occurrences delivered through ReadTrials
// so far — how much shard data engine passes have re-read from disk.
func (ds *DiskSource) Scanned() int64 { return ds.scanned.Load() }

// errStopScan aborts a shard scan once the requested range is filled;
// it never escapes ReadTrials.
var errStopScan = errors.New("yelt: stop scan")

// ReadTrials implements Source by scanning the shards overlapping
// [lo, hi) with StreamTrials, copying the in-range trials into buf and
// stopping each scan as soon as the range is exhausted. Memory use is
// bounded by the batch plus one shard's counts header.
func (ds *DiskSource) ReadTrials(ctx context.Context, lo, hi int, buf *Table) (*Table, error) {
	if lo < 0 || hi > ds.n || lo > hi {
		return nil, fmt.Errorf("yelt: read trials [%d,%d) outside [0,%d)", lo, hi, ds.n)
	}
	if buf == nil {
		buf = &Table{}
	}
	buf.NumTrials = hi - lo
	buf.Offsets = append(buf.Offsets[:0], 0)
	buf.Occs = buf.Occs[:0]
	if lo == hi {
		return buf, nil
	}
	// First shard whose range extends past lo; shards are contiguous,
	// so subsequent shards are consumed in order until hi is reached.
	first := sort.Search(len(ds.ranges), func(i int) bool { return ds.ranges[i].Hi > lo })
	for si := first; si < len(ds.ranges) && ds.ranges[si].Lo < hi; si++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		base := ds.ranges[si].Lo
		// Snapshot the fill level so a replica that fails mid-scan can be
		// rolled back before the next replica re-scans: the failover read
		// appends exactly what the healthy read would have, keeping
		// results bit-identical to a fault-free run.
		occ0, off0 := len(buf.Occs), len(buf.Offsets)
		nodes := ds.shardReplicas(si)
		var errs []error
		scanned := false
		for ri, node := range nodes {
			if ri > 0 {
				buf.Occs = buf.Occs[:occ0]
				buf.Offsets = buf.Offsets[:off0]
			}
			err := ds.store.ReadPartitionAt(ds.dataset, si, node, func(r io.Reader) error {
				return StreamTrials(r, func(trial int, occs []Occurrence) error {
					global := base + trial
					if global < lo {
						return nil
					}
					if global >= hi {
						return errStopScan
					}
					buf.Occs = append(buf.Occs, occs...)
					buf.Offsets = append(buf.Offsets, int64(len(buf.Occs)))
					return nil
				})
			})
			if err == nil || errors.Is(err, errStopScan) {
				if ri > 0 {
					ds.failovers.Add(int64(ri))
					ds.flog.add(fmt.Sprintf("shard %d: scanned replica node %d (%v)", si, node, errors.Join(errs...)))
				}
				scanned = true
				break
			}
			errs = append(errs, fmt.Errorf("replica node %d: %w", node, err))
		}
		if !scanned {
			if len(errs) == 1 {
				return nil, fmt.Errorf("yelt: scanning shard %d: %w", si, errs[0])
			}
			return nil, fmt.Errorf("yelt: scanning shard %d: all replicas failed: %w", si, errors.Join(errs...))
		}
	}
	if got := len(buf.Offsets) - 1; got != hi-lo {
		return nil, fmt.Errorf("%w: shards yielded %d of %d trials in [%d,%d)", ErrBadFormat, got, hi-lo, lo, hi)
	}
	ds.scanned.Add(int64(len(buf.Occs)))
	return buf, nil
}
