package yelt

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

func TestStreamTrialsMatchesRead(t *testing.T) {
	cat := testCatalog(t, 300)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 500}, 77)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var visited int
	err = StreamTrials(bytes.NewReader(buf.Bytes()), func(trial int, occs []Occurrence) error {
		want := tbl.OccurrencesOf(trial)
		if len(occs) != len(want) {
			t.Fatalf("trial %d: %d occs, want %d", trial, len(occs), len(want))
		}
		for i := range occs {
			if occs[i] != want[i] {
				t.Fatalf("trial %d occ %d mismatch", trial, i)
			}
		}
		visited++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != 500 {
		t.Fatalf("visited %d trials", visited)
	}
}

func TestStreamTrialsVisitorError(t *testing.T) {
	cat := testCatalog(t, 100)
	tbl, _ := Generate(context.Background(), cat, Config{NumTrials: 50}, 1)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("visitor boom")
	var calls int
	err := StreamTrials(bytes.NewReader(buf.Bytes()), func(trial int, _ []Occurrence) error {
		calls++
		if trial == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 11 {
		t.Fatalf("visitor called %d times, want 11", calls)
	}
}

func TestStreamTrialsRejectsGarbage(t *testing.T) {
	if err := StreamTrials(bytes.NewReader([]byte("JUNKJUNK")), nil); err == nil {
		t.Fatal("bad magic should error")
	}
	cat := testCatalog(t, 50)
	tbl, _ := Generate(context.Background(), cat, Config{NumTrials: 20}, 2)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	err := StreamTrials(bytes.NewReader(trunc), func(int, []Occurrence) error { return nil })
	if err == nil {
		t.Fatal("truncated stream should error")
	}
}
