package yelt

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/catalog"
)

func testCatalog(t *testing.T, n int) *catalog.Catalog {
	t.Helper()
	cfg := catalog.DefaultConfig()
	cfg.NumEvents = n
	cfg.MeanEventsPerYear = 10
	cat, err := catalog.Generate(cfg, 1234)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestGenerateShape(t *testing.T) {
	cat := testCatalog(t, 2000)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 5000}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumTrials != 5000 {
		t.Fatalf("NumTrials = %d", tbl.NumTrials)
	}
	if len(tbl.Offsets) != 5001 {
		t.Fatalf("Offsets length = %d", len(tbl.Offsets))
	}
	if tbl.Offsets[0] != 0 || tbl.Offsets[5000] != int64(len(tbl.Occs)) {
		t.Fatal("offset bookends wrong")
	}
	// Mean occurrences should match the catalogue rate (λ=10).
	if m := tbl.MeanOccurrences(); math.Abs(m-10) > 0.3 {
		t.Fatalf("MeanOccurrences = %v, want ~10", m)
	}
}

func TestGenerateDeterministicAcrossWorkers(t *testing.T) {
	cat := testCatalog(t, 500)
	a, err := Generate(context.Background(), cat, Config{NumTrials: 2000, Workers: 1}, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Workers 0 exercises the documented default (GOMAXPROCS).
	for _, workers := range []int{0, 7} {
		b, err := Generate(context.Background(), cat, Config{NumTrials: 2000, Workers: workers}, 77)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Occs) != len(b.Occs) {
			t.Fatalf("workers=%d: occurrence counts differ: %d vs %d", workers, len(a.Occs), len(b.Occs))
		}
		for i := range a.Occs {
			if a.Occs[i] != b.Occs[i] {
				t.Fatalf("workers=%d: occurrence %d differs across worker counts", workers, i)
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	cat := testCatalog(t, 500)
	a, _ := Generate(context.Background(), cat, Config{NumTrials: 500}, 1)
	b, _ := Generate(context.Background(), cat, Config{NumTrials: 500}, 2)
	if a.Len() == b.Len() {
		same := true
		for i := range a.Occs {
			if a.Occs[i] != b.Occs[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical tables")
		}
	}
}

func TestTrialsSortedByDay(t *testing.T) {
	cat := testCatalog(t, 800)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 1000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < tbl.NumTrials; trial++ {
		occs := tbl.OccurrencesOf(trial)
		for i := 1; i < len(occs); i++ {
			if occs[i-1].DayOfYear > occs[i].DayOfYear {
				t.Fatalf("trial %d not sorted by day", trial)
			}
			if occs[i].DayOfYear > 364 {
				t.Fatalf("day out of range: %d", occs[i].DayOfYear)
			}
		}
	}
}

func TestEventIDsAreValid(t *testing.T) {
	cat := testCatalog(t, 300)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 500}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range tbl.Occs {
		if _, ok := cat.Lookup(o.EventID); !ok {
			t.Fatalf("occurrence references unknown event %d", o.EventID)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cat := testCatalog(t, 10)
	if _, err := Generate(context.Background(), cat, Config{NumTrials: 0}, 1); err == nil {
		t.Error("NumTrials=0 should error")
	}
	if _, err := Generate(context.Background(), catalog.NewCatalog(nil), Config{NumTrials: 10}, 1); err == nil {
		t.Error("empty catalogue should error")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cat := testCatalog(t, 400)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 700}, 21)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := tbl.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrials != tbl.NumTrials || got.Len() != tbl.Len() {
		t.Fatal("shape mismatch after round trip")
	}
	for i := range tbl.Occs {
		if got.Occs[i] != tbl.Occs[i] {
			t.Fatalf("occurrence %d mismatch", i)
		}
	}
	for i := range tbl.Offsets {
		if got.Offsets[i] != tbl.Offsets[i] {
			t.Fatalf("offset %d mismatch", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty read should error")
	}
	// Truncated occurrences.
	cat := testCatalog(t, 50)
	tbl, _ := Generate(context.Background(), cat, Config{NumTrials: 50}, 1)
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("truncated table should error")
	}
}

func TestSlice(t *testing.T) {
	cat := testCatalog(t, 200)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 100}, 8)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := tbl.Slice(20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumTrials != 30 {
		t.Fatalf("sub trials = %d", sub.NumTrials)
	}
	for trial := 0; trial < 30; trial++ {
		want := tbl.OccurrencesOf(20 + trial)
		got := sub.OccurrencesOf(trial)
		if len(want) != len(got) {
			t.Fatalf("trial %d count mismatch", trial)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d occurrence %d mismatch", trial, i)
			}
		}
	}
	if _, err := tbl.Slice(-1, 10); err == nil {
		t.Error("negative lo should error")
	}
	if _, err := tbl.Slice(0, 101); err == nil {
		t.Error("hi beyond trials should error")
	}
	if _, err := tbl.Slice(50, 20); err == nil {
		t.Error("inverted range should error")
	}
}

func TestSizeBytes(t *testing.T) {
	cat := testCatalog(t, 100)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.SizeBytes() <= int64(tbl.Len()*EntryBytes) {
		t.Fatal("SizeBytes should include offsets overhead")
	}
}

func TestSizeModelPaperScale(t *testing.T) {
	m := PaperScale()
	// The paper's headline: "over 5×10^16 entries".
	if got := m.DenseYELLTEntries(); got != 5e16 {
		t.Fatalf("DenseYELLTEntries = %g, want 5e16", got)
	}
	r1, r2 := m.Ratios()
	if r1 != 1000 || r2 != 1000 {
		t.Fatalf("ratios = (%v, %v), want (1000, 1000) as quoted", r1, r2)
	}
	if m.YELLTEntries()/m.YELTEntries() != 1000 {
		t.Fatal("occurrence YELLT/YELT ratio should equal locations")
	}
	if m.YELTEntries()/m.YLTEntries() != 1000 {
		t.Fatal("occurrence YELT/YLT ratio should equal λ")
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{512, "512.00 B"},
		{2048, "2.00 KiB"},
		{5 * 1 << 30, "5.00 GiB"},
	}
	for _, c := range cases {
		if got := HumanBytes(c.in); got != c.want {
			t.Errorf("HumanBytes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBytesHelper(t *testing.T) {
	if Bytes(100, 6) != 600 {
		t.Fatal("Bytes arithmetic")
	}
}
