// Package yelt implements the Year-Event-Loss Table infrastructure of
// stage 2: the pre-simulated catalogue of alternative contractual
// years. Per §II of the paper, "rather than using random values
// generated on-the-fly, a pre-simulated Year-Event-Loss Table (YELT)
// containing between several thousand and millions of alternative
// views of a single contractual year is used" so that actuaries see
// results through a consistent lens.
//
// A Table is a flat, trial-major sequence of event occurrences — which
// events happen in each trial year and on which day — stored in
// columnar form for scan-oriented access. Losses are not stored here;
// they are looked up per contract in ELTs during aggregate analysis
// (that separation is exactly why the YELT is ~1000× smaller than the
// YELLT).
package yelt

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/catalog"
)

// Occurrence is one event happening in one trial year.
type Occurrence struct {
	EventID   uint32
	DayOfYear uint16 // 0..364; ordering within the year drives occurrence terms
}

// Table is a pre-simulated set of trial years in trial-major layout:
// occurrences of trial t are Occs[Offsets[t]:Offsets[t+1]], sorted by
// day within each trial.
type Table struct {
	NumTrials int
	Offsets   []int64 // len NumTrials+1
	Occs      []Occurrence
}

// OccurrencesOf returns the occurrence slice for one trial.
func (t *Table) OccurrencesOf(trial int) []Occurrence {
	return t.Occs[t.Offsets[trial]:t.Offsets[trial+1]]
}

// Len returns the total number of occurrences across all trials.
func (t *Table) Len() int { return len(t.Occs) }

// MeanOccurrences returns the average number of events per trial year.
func (t *Table) MeanOccurrences() float64 {
	if t.NumTrials == 0 {
		return 0
	}
	return float64(len(t.Occs)) / float64(t.NumTrials)
}

// EntryBytes is the in-memory/encoded footprint of one occurrence
// (u32 event + u16 day, padded to 8 in memory; 6 encoded).
const EntryBytes = 6

// SizeBytes returns the encoded size of the table.
func (t *Table) SizeBytes() int64 {
	return TableBytes(len(t.Offsets)-1, int64(len(t.Occs)))
}

// TableBytes returns the encoded size of a table holding numTrials
// trials and occs occurrences — the materialized-footprint arithmetic
// used when no table exists (streaming runs report how much memory
// they avoided).
func TableBytes(numTrials int, occs int64) int64 {
	return int64(16+8*(numTrials+1)) + occs*EntryBytes
}

// Config controls YELT generation.
type Config struct {
	NumTrials int
	// Workers parallelizes generation across trial blocks; <= 0 means
	// GOMAXPROCS. Generation is deterministic regardless of Workers.
	Workers int
	// Seasonal draws occurrence days from peril-specific seasonal
	// windows (hurricane season, winter-storm season, tornado spring)
	// instead of uniformly. Occurrence ordering within the year — what
	// reinstatement erosion depends on — then reflects real clustering.
	Seasonal bool
}

// errEmptyCatalog rejects generation against a catalogue with no
// events (shared by Generate and NewGenerator).
var errEmptyCatalog = errors.New("yelt: empty catalogue")

// Generate pre-simulates cfg.NumTrials alternative years against the
// catalogue: per trial the number of occurrences is Poisson with the
// catalogue's total rate and event identities follow the per-event
// rates (sampled by an O(1) alias table). Each trial draws from its
// own splittable stream, so the table is a pure function of
// (catalogue, seed, NumTrials) — the "consistent lens" requirement —
// and Generator (source.go) can re-derive any trial batch on demand
// without materializing the table. Generate is the materialized form
// of the same kernel; ctx cancels generation between trial blocks.
func Generate(ctx context.Context, cat *catalog.Catalog, cfg Config, seed uint64) (*Table, error) {
	g, err := NewGenerator(cat, cfg, seed)
	if err != nil {
		return nil, err
	}
	return g.Materialize(ctx)
}

// --- binary codec ---

// Binary layout: magic "YELT", u32 numTrials, then numTrials u32
// occurrence counts, then the occurrence stream as (u32 event, u16
// day) pairs. Like the ELT codec it is stream-oriented: no seeking.
var magic = [4]byte{'Y', 'E', 'L', 'T'}

// ErrBadFormat reports a malformed serialized table.
var ErrBadFormat = errors.New("yelt: bad format")

// WriteTo serializes the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var written int64
	if _, err := bw.Write(magic[:]); err != nil {
		return written, err
	}
	written += 4
	var u4 [4]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(t.NumTrials))
	if _, err := bw.Write(u4[:]); err != nil {
		return written, err
	}
	written += 4
	for trial := 0; trial < t.NumTrials; trial++ {
		n := t.Offsets[trial+1] - t.Offsets[trial]
		binary.LittleEndian.PutUint32(u4[:], uint32(n))
		if _, err := bw.Write(u4[:]); err != nil {
			return written, err
		}
		written += 4
	}
	var rec [EntryBytes]byte
	for _, o := range t.Occs {
		binary.LittleEndian.PutUint32(rec[0:4], o.EventID)
		binary.LittleEndian.PutUint16(rec[4:6], o.DayOfYear)
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written += EntryBytes
	}
	return written, bw.Flush()
}

// Read deserializes a table written by WriteTo.
func Read(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("yelt: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	var u4 [4]byte
	if _, err := io.ReadFull(br, u4[:]); err != nil {
		return nil, fmt.Errorf("yelt: reading trial count: %w", err)
	}
	numTrials := int(binary.LittleEndian.Uint32(u4[:]))
	const maxTrials = 1 << 27
	if numTrials < 0 || numTrials > maxTrials {
		return nil, fmt.Errorf("%w: trial count %d", ErrBadFormat, numTrials)
	}
	// Cap the initial allocations and grow with the data actually read:
	// a forged header declaring 2^27 trials must not reserve gigabytes
	// before the short read is noticed (the codec fuzzer's finding).
	const preallocCap = 1 << 16
	t := &Table{NumTrials: numTrials, Offsets: make([]int64, 1, min(numTrials+1, preallocCap))}
	var total int64
	for trial := 0; trial < numTrials; trial++ {
		if _, err := io.ReadFull(br, u4[:]); err != nil {
			return nil, fmt.Errorf("yelt: reading count %d: %w", trial, err)
		}
		total += int64(binary.LittleEndian.Uint32(u4[:]))
		t.Offsets = append(t.Offsets, total)
	}
	const maxOccs = 1 << 31
	if total > maxOccs {
		return nil, fmt.Errorf("%w: occurrence count %d", ErrBadFormat, total)
	}
	t.Occs = make([]Occurrence, 0, min(total, preallocCap))
	var rec [EntryBytes]byte
	for i := int64(0); i < total; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("yelt: reading occurrence %d: %w", i, err)
		}
		t.Occs = append(t.Occs, Occurrence{
			EventID:   binary.LittleEndian.Uint32(rec[0:4]),
			DayOfYear: binary.LittleEndian.Uint16(rec[4:6]),
		})
	}
	return t, nil
}

// view fills buf with trials [lo, hi) as a table sharing t's
// occurrence storage, offsets rebased to the range start. Bounds must
// already be validated. It is the one rebasing kernel behind both
// Slice and the streaming ReadTrials, so view semantics cannot
// diverge between the two.
func (t *Table) view(lo, hi int, buf *Table) *Table {
	buf.NumTrials = hi - lo
	buf.Occs = t.Occs[t.Offsets[lo]:t.Offsets[hi]]
	buf.Offsets = buf.Offsets[:0]
	base := t.Offsets[lo]
	for i := lo; i <= hi; i++ {
		buf.Offsets = append(buf.Offsets, t.Offsets[i]-base)
	}
	return buf
}

// Slice returns a view of trials [lo, hi) as a standalone table
// sharing the underlying occurrence storage. It is the unit handed to
// distributed scans (mapreduce splits, memstore chunks).
func (t *Table) Slice(lo, hi int) (*Table, error) {
	if lo < 0 || hi > t.NumTrials || lo > hi {
		return nil, fmt.Errorf("yelt: slice [%d,%d) outside [0,%d)", lo, hi, t.NumTrials)
	}
	return t.view(lo, hi, &Table{Offsets: make([]int64, 0, hi-lo+1)}), nil
}
