package yelt

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// Slice edge cases beyond the happy path: empty ranges anywhere
// (including at both ends), the full range, and every out-of-bounds
// shape.
func TestSliceEdgeCases(t *testing.T) {
	cat := testCatalog(t, 150)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 60}, 3)
	if err != nil {
		t.Fatal(err)
	}

	for _, at := range []int{0, 31, 60} {
		sub, err := tbl.Slice(at, at)
		if err != nil {
			t.Fatalf("empty slice at %d: %v", at, err)
		}
		if sub.NumTrials != 0 || sub.Len() != 0 || len(sub.Offsets) != 1 {
			t.Fatalf("empty slice at %d: trials=%d occs=%d offsets=%d", at, sub.NumTrials, sub.Len(), len(sub.Offsets))
		}
		if sub.SizeBytes() != TableBytes(0, 0) {
			t.Fatalf("empty slice size = %d", sub.SizeBytes())
		}
	}

	full, err := tbl.Slice(0, tbl.NumTrials)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "full slice", tbl, full)

	for _, r := range [][2]int{{-1, 10}, {0, 61}, {61, 61}, {-2, -1}, {40, 10}} {
		if _, err := tbl.Slice(r[0], r[1]); err == nil {
			t.Errorf("slice [%d,%d) should error", r[0], r[1])
		}
	}

	// Slices compose: a slice of a slice addresses the same trials.
	mid, err := tbl.Slice(10, 50)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := mid.Slice(5, 15)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := tbl.Slice(15, 25)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "slice composition", direct, inner)
}

// Property: for any stream.Partition of the trial axis, the partition
// has no empty ranges, covers [0, n) exactly, and the corresponding
// Slices reassemble the table bit-for-bit — the invariant that makes
// range-partitioned scans (mapreduce splits, parallel engines,
// streaming batches) lossless.
func TestSlicePartitionReassembly(t *testing.T) {
	cat := testCatalog(t, 150)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 97}, 9)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(partsRaw uint8) bool {
		parts := int(partsRaw%130) + 1 // 1..130, beyond the trial count
		ranges := stream.Partition(tbl.NumTrials, parts)
		out := &Table{NumTrials: tbl.NumTrials, Offsets: []int64{0}}
		prevHi := 0
		for _, r := range ranges {
			if r.Len() <= 0 || r.Lo != prevHi {
				return false // empty range or gap
			}
			prevHi = r.Hi
			sub, err := tbl.Slice(r.Lo, r.Hi)
			if err != nil {
				return false
			}
			base := out.Offsets[len(out.Offsets)-1]
			for _, off := range sub.Offsets[1:] {
				out.Offsets = append(out.Offsets, base+off)
			}
			out.Occs = append(out.Occs, sub.Occs...)
		}
		if prevHi != tbl.NumTrials {
			return false // incomplete cover
		}
		if len(out.Offsets) != len(tbl.Offsets) || len(out.Occs) != len(tbl.Occs) {
			return false
		}
		for i := range tbl.Offsets {
			if out.Offsets[i] != tbl.Offsets[i] {
				return false
			}
		}
		for i := range tbl.Occs {
			if out.Occs[i] != tbl.Occs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
