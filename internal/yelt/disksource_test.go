package yelt

import (
	"context"
	"io"
	"strings"
	"testing"

	"repro/internal/diskstore"
)

func testStore(t *testing.T, nodes int) *diskstore.Store {
	t.Helper()
	s, err := diskstore.Create(t.TempDir(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Spilling a materialized table and reading any batch back must
// reproduce the equivalent Slice exactly — including batches that
// straddle shard boundaries, single trials, and the full range.
func TestSpillRoundTrip(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 301}, 11)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 3)
	ds, err := Spill(ctx, tbl, store, "yelt", 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TrialCount() != 301 || ds.Shards() != 7 {
		t.Fatalf("trials=%d shards=%d", ds.TrialCount(), ds.Shards())
	}
	ranges := [][2]int{{0, 301}, {0, 1}, {300, 301}, {40, 45}, {0, 43}, {43, 86}, {41, 130}, {150, 150}, {299, 301}}
	buf := &Table{}
	for _, r := range ranges {
		want, err := tbl.Slice(r[0], r[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.ReadTrials(ctx, r[0], r[1], buf)
		if err != nil {
			t.Fatalf("[%d,%d): %v", r[0], r[1], err)
		}
		tablesEqual(t, "disk batch", want, got)
	}
	if ds.Scanned() == 0 {
		t.Fatal("disk source reported no scanned occurrences")
	}
}

// A Generator spilled to disk must yield the same trials the generator
// itself yields — re-scan equals re-derive.
func TestSpillGeneratorSourceMatches(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	gen, err := NewGenerator(cat, Config{NumTrials: 200}, 17)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 2)
	ds, err := Spill(ctx, gen, store, "g", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gen.ReadTrials(ctx, 33, 177, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadTrials(ctx, 33, 177, nil)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "generator vs disk", want, got)
}

// OpenDiskSource must recover the shard → trial-range map from the
// shard headers alone.
func TestOpenDiskSource(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 123}, 5)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 2)
	if _, err := Spill(ctx, tbl, store, "ds", 4, 1); err != nil {
		t.Fatal(err)
	}
	ds, err := OpenDiskSource(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if ds.TrialCount() != 123 || ds.Shards() != 4 {
		t.Fatalf("reopened trials=%d shards=%d", ds.TrialCount(), ds.Shards())
	}
	want, _ := tbl.Slice(10, 100)
	got, err := ds.ReadTrials(ctx, 10, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "reopened", want, got)
	size, err := ds.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Each shard carries an 8-byte magic+count header; counts and
	// occurrences are written exactly once across the shards.
	want4 := int64(4*8) + int64(tbl.NumTrials)*4 + int64(len(tbl.Occs))*EntryBytes
	if size != want4 {
		t.Fatalf("on-disk size %d, want %d", size, want4)
	}
}

// Re-spilling a dataset must clear the previous spill: stale
// high-numbered shards from a larger earlier run must not survive to
// inflate SizeBytes or corrupt OpenDiskSource re-attachment.
func TestSpillClearsStaleDataset(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	big, err := Generate(ctx, cat, Config{NumTrials: 300}, 5)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Generate(ctx, cat, Config{NumTrials: 90}, 6)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 2)
	if _, err := Spill(ctx, big, store, "ds", 7, 1); err != nil {
		t.Fatal(err)
	}
	ds, err := Spill(ctx, small, store, "ds", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.TrialCount() != 90 || ds.Shards() != 2 {
		t.Fatalf("respilled trials=%d shards=%d", ds.TrialCount(), ds.Shards())
	}
	reopened, err := OpenDiskSource(store, "ds")
	if err != nil {
		t.Fatal(err)
	}
	if reopened.TrialCount() != 90 || reopened.Shards() != 2 {
		t.Fatalf("reopened trials=%d shards=%d — stale shards survived", reopened.TrialCount(), reopened.Shards())
	}
	want, _ := small.Slice(0, 90)
	got, err := reopened.ReadTrials(ctx, 0, 90, nil)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "respilled", want, got)
}

// SpillToDir must stand up the store and spill in one call.
func TestSpillToDir(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 120}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := SpillToDir(ctx, tbl, t.TempDir(), 0, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Nodes() != DefaultSpillNodes {
		t.Fatalf("nodes = %d, want default %d", ds.Nodes(), DefaultSpillNodes)
	}
	want, _ := tbl.Slice(5, 115)
	got, err := ds.ReadTrials(ctx, 5, 115, nil)
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "spill-to-dir", want, got)
}

func TestOpenDiskSourceMissing(t *testing.T) {
	store := testStore(t, 2)
	if _, err := OpenDiskSource(store, "nope"); err == nil {
		t.Fatal("missing dataset should error")
	}
}

// A spill interrupted before its manifest commits — or whose shard set
// disagrees with the manifest — must be refused by OpenDiskSource, not
// silently opened truncated.
func TestOpenDiskSourceRefusesIncompleteSpill(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 120}, 5)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 2)
	if _, err := Spill(ctx, tbl, store, "ds", 4, 1); err != nil {
		t.Fatal(err)
	}
	// Crash before commit: shards present, manifest never written.
	if err := store.Delete(manifestDataset("ds")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskSource(store, "ds"); err == nil {
		t.Fatal("spill without manifest should be refused")
	}
	// Manifest present but trailing shards missing (each remaining
	// shard individually valid) — the refusal must name the first
	// shard that isn't there.
	if err := writeTestManifest(store, "ds", []int{30, 30, 30, 30, 40, 40}); err != nil {
		t.Fatal(err)
	}
	wantOpenError(t, store, "ds", "missing shard 4")
	// Shard count right, per-shard trial counts wrong.
	if err := writeTestManifest(store, "ds", []int{50, 50, 10, 10}); err != nil {
		t.Fatal(err)
	}
	wantOpenError(t, store, "ds", "shard 0")
	// Restoring the true manifest opens cleanly again.
	if err := writeTestManifest(store, "ds", []int{30, 30, 30, 30}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskSource(store, "ds"); err != nil {
		t.Fatal(err)
	}
}

// writeTestManifest writes an unreplicated manifest with the given
// per-shard counts and primary placement.
func writeTestManifest(store *diskstore.Store, dataset string, counts []int) error {
	reps := make([][]int, len(counts))
	for i := range reps {
		reps[i] = []int{store.NodeOf(i)}
	}
	return writeManifest(store, dataset, counts, reps, 1)
}

// wantOpenError asserts OpenDiskSource refuses the dataset with an
// error mentioning substr (the culprit shard), without panicking.
func wantOpenError(t *testing.T, store *diskstore.Store, dataset, substr string) {
	t.Helper()
	ds, err := OpenDiskSource(store, dataset)
	if err == nil {
		t.Fatalf("open succeeded (%d trials), want error naming %q", ds.TrialCount(), substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not name %q", err, substr)
	}
}

// Re-attach failure modes: a shard file lost, truncated, or swapped
// between spill and aggregate must surface as an error naming the
// shard — never a panic or a silent short read.
func TestOpenDiskSourceReattachFailureModes(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 120}, 5)
	if err != nil {
		t.Fatal(err)
	}
	spill := func(t *testing.T) *diskstore.Store {
		t.Helper()
		store := testStore(t, 3)
		if _, err := Spill(ctx, tbl, store, "ds", 4, 1); err != nil {
			t.Fatal(err)
		}
		return store
	}
	t.Run("missing shard file", func(t *testing.T) {
		store := spill(t)
		if err := store.Remove("ds", 1); err != nil {
			t.Fatal(err)
		}
		wantOpenError(t, store, "ds", "missing shard 1")
	})
	t.Run("truncated header", func(t *testing.T) {
		store := spill(t)
		err := store.WritePartition("ds", 2, func(w io.Writer) error {
			_, err := w.Write([]byte{'Y', 'E'})
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		wantOpenError(t, store, "ds", "shard 2 header")
	})
	t.Run("bad shard magic", func(t *testing.T) {
		store := spill(t)
		err := store.WritePartition("ds", 2, func(w io.Writer) error {
			_, err := w.Write(make([]byte, 16))
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		wantOpenError(t, store, "ds", "shard 2 magic")
	})
	t.Run("manifest trial-range mismatch", func(t *testing.T) {
		store := spill(t)
		// Swap in an individually valid shard holding the wrong trial
		// range — only the per-shard manifest counts can catch it.
		short, err := tbl.Slice(0, 7)
		if err != nil {
			t.Fatal(err)
		}
		err = store.WritePartition("ds", 3, func(w io.Writer) error {
			_, err := short.WriteTo(w)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		wantOpenError(t, store, "ds", "shard 3 holds 7 trials")
	})
	t.Run("stray extra shard", func(t *testing.T) {
		store := spill(t)
		err := store.WritePartition("ds", 9, func(w io.Writer) error {
			_, err := tbl.WriteTo(w)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		wantOpenError(t, store, "ds", "stray shard 9")
	})
}

func TestSpillValidation(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 1)
	if _, err := Spill(ctx, tbl, store, "x", 0, 1); err == nil {
		t.Fatal("zero parts should error")
	}
	if _, err := Spill(ctx, &Table{}, store, "x", 1, 1); err == nil {
		t.Fatal("empty source should error")
	}
}

func TestDiskSourceBounds(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 50}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Spill(ctx, tbl, testStore(t, 1), "b", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 10}, {0, 51}, {20, 10}} {
		if _, err := ds.ReadTrials(ctx, r[0], r[1], nil); err == nil {
			t.Fatalf("range [%d,%d) should error", r[0], r[1])
		}
	}
}

func TestDiskSourceCancellation(t *testing.T) {
	cat := testCatalog(t, 500)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 50}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Spill(context.Background(), tbl, testStore(t, 1), "c", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ds.ReadTrials(ctx, 0, 50, nil); err == nil {
		t.Fatal("cancelled read should error")
	}
}

// A truncated shard must surface as an error, not a short batch.
func TestDiskSourceCorruptShard(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 80}, 5)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 1)
	ds, err := Spill(ctx, tbl, store, "t", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Corrupt("t", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ReadTrials(ctx, 0, 80, nil); err == nil {
		t.Fatal("truncated shard should error")
	}
}

// The spilled dataset must round-trip through the plain codec too:
// each shard is a self-contained WriteTo-format table.
func TestShardIsPlainCodec(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 60}, 5)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 2)
	if _, err := Spill(ctx, tbl, store, "p", 3, 1); err != nil {
		t.Fatal(err)
	}
	var shard *Table
	err = store.ReadPartition("p", 1, func(r io.Reader) error {
		var err error
		shard, err = Read(r)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := tbl.Slice(20, 40)
	tablesEqual(t, "shard codec", want, shard)
}
