package yelt

import (
	"bytes"
	"testing"
)

// mustEncode serializes a table for the fuzz seed corpus.
func mustEncode(f *testing.F, t *Table) []byte {
	f.Helper()
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRead drives the binary codec with arbitrary bytes: inputs Read
// accepts must round-trip WriteTo → Read → WriteTo byte-identically
// and satisfy the Table invariants; inputs it rejects must error
// cleanly (no panic, no huge speculative allocation). The seed corpus
// is golden encodings — empty, single-trial, multi-trial with empty
// years — plus corruptions of each.
func FuzzRead(f *testing.F) {
	golden := []*Table{
		{NumTrials: 0, Offsets: []int64{0}},
		{NumTrials: 1, Offsets: []int64{0, 2}, Occs: []Occurrence{{EventID: 7, DayOfYear: 12}, {EventID: 9, DayOfYear: 300}}},
		{NumTrials: 3, Offsets: []int64{0, 1, 1, 3}, Occs: []Occurrence{
			{EventID: 1, DayOfYear: 0}, {EventID: 2, DayOfYear: 100}, {EventID: 4_000_000, DayOfYear: 364},
		}},
	}
	for _, t := range golden {
		enc := mustEncode(f, t)
		f.Add(enc)
		if len(enc) > 6 {
			f.Add(enc[:len(enc)-5]) // truncated occurrence stream
			f.Add(enc[:6])          // truncated counts header
			corrupt := bytes.Clone(enc)
			corrupt[0] = 'X' // bad magic
			f.Add(corrupt)
			huge := bytes.Clone(enc)
			// Forged trial count with no backing data: must error
			// without reserving the declared size.
			huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0x07
			f.Add(huge)
		}
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		t1, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: a clean error is the contract
		}
		if len(t1.Offsets) != t1.NumTrials+1 || t1.Offsets[0] != 0 {
			t.Fatalf("decoded table breaks offset invariant: trials=%d offsets=%d", t1.NumTrials, len(t1.Offsets))
		}
		if int64(len(t1.Occs)) != t1.Offsets[t1.NumTrials] {
			t.Fatalf("occurrence count %d != final offset %d", len(t1.Occs), t1.Offsets[t1.NumTrials])
		}
		for i := 0; i < t1.NumTrials; i++ {
			if t1.Offsets[i] > t1.Offsets[i+1] {
				t.Fatalf("offsets not monotone at trial %d", i)
			}
			_ = t1.OccurrencesOf(i) // must not panic
		}
		if _, err := t1.Slice(0, t1.NumTrials); err != nil {
			t.Fatalf("full slice of decoded table: %v", err)
		}

		var b1 bytes.Buffer
		if _, err := t1.WriteTo(&b1); err != nil {
			t.Fatalf("re-encoding accepted table: %v", err)
		}
		t2, err := Read(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own encoding: %v", err)
		}
		var b2 bytes.Buffer
		if _, err := t2.WriteTo(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("WriteTo → Read → WriteTo is not byte-identical")
		}
	})
}
