package yelt

import "fmt"

// SizeModel reproduces the paper's stage-2 data-volume arithmetic
// (§II): "if an analysis of 10,000 contracts for 100,000 events in
// 1,000 locations with 50,000 trial years is considered, the
// Year-Event-Location-Loss Table (YELLT) has over 5×10^16 entries",
// with the YELT "generally 1000 times smaller than the YELLT and 1000
// times bigger than the YLT".
//
// Two accountings are exposed:
//
//   - Dense: the paper's product formula — every (contract, event,
//     location, trial) cell. This is the storage a naive
//     fully-materialized analysis would need and is what makes the
//     5×10^16 number.
//   - Occurrence-based: entries proportional to events that actually
//     occur per trial year (rate λ), which is what this repository
//     materializes. The paper's 1000× ratios correspond to ~1000
//     locations per contract and ~1000 occurrence rows per trial year.
type SizeModel struct {
	Contracts         int
	Events            int
	Locations         int
	Trials            int
	MeanEventsPerYear float64 // occurrence rate λ of the whole book
}

// PaperScale returns the exact parameters quoted in §II.
func PaperScale() SizeModel {
	return SizeModel{
		Contracts:         10_000,
		Events:            100_000,
		Locations:         1_000,
		Trials:            50_000,
		MeanEventsPerYear: 1_000,
	}
}

// DenseYELLTEntries is the paper's headline product:
// contracts × events × locations × trials.
func (m SizeModel) DenseYELLTEntries() float64 {
	return float64(m.Contracts) * float64(m.Events) * float64(m.Locations) * float64(m.Trials)
}

// YELLTEntries is the occurrence-based Year-Event-Location-Loss count:
// one row per (trial, occurrence, location).
func (m SizeModel) YELLTEntries() float64 {
	return float64(m.Trials) * m.MeanEventsPerYear * float64(m.Locations)
}

// YELTEntries is the occurrence-based Year-Event-Loss count: one row
// per (trial, occurrence).
func (m SizeModel) YELTEntries() float64 {
	return float64(m.Trials) * m.MeanEventsPerYear
}

// YLTEntries is one row per trial.
func (m SizeModel) YLTEntries() float64 { return float64(m.Trials) }

// Ratios returns (YELLT/YELT, YELT/YLT) under occurrence accounting —
// the two "1000×" factors from the paper.
func (m SizeModel) Ratios() (yelltOverYELT, yeltOverYLT float64) {
	return float64(m.Locations), m.MeanEventsPerYear
}

// Bytes converts an entry count to bytes at a given per-entry size.
func Bytes(entries float64, perEntry int) float64 {
	return entries * float64(perEntry)
}

// HumanBytes formats a byte count with binary prefixes for reports.
func HumanBytes(b float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	return fmt.Sprintf("%.2f %s", b, units[i])
}
