package yelt

import (
	"bytes"
	"context"
	"testing"
)

// assembleViaSource reconstructs a full table by reading src in
// consecutive batches of the given size through one reused buffer —
// the access pattern of a streaming engine worker.
func assembleViaSource(t *testing.T, src Source, batch int) *Table {
	t.Helper()
	n := src.TrialCount()
	out := &Table{NumTrials: n, Offsets: []int64{0}}
	buf := &Table{}
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		b, err := src.ReadTrials(context.Background(), lo, hi, buf)
		if err != nil {
			t.Fatalf("ReadTrials[%d,%d): %v", lo, hi, err)
		}
		if b.NumTrials != hi-lo {
			t.Fatalf("batch [%d,%d): NumTrials = %d", lo, hi, b.NumTrials)
		}
		base := out.Offsets[len(out.Offsets)-1]
		for _, off := range b.Offsets[1:] {
			out.Offsets = append(out.Offsets, base+off)
		}
		out.Occs = append(out.Occs, b.Occs...)
	}
	return out
}

func tablesEqual(t *testing.T, name string, want, got *Table) {
	t.Helper()
	var wb, gb bytes.Buffer
	if _, err := want.WriteTo(&wb); err != nil {
		t.Fatal(err)
	}
	if _, err := got.WriteTo(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("%s: tables are not byte-identical", name)
	}
}

// The streaming Generator must re-derive exactly the trials Generate
// materializes — for every batch partition, including sizes that do
// not divide the trial count — in both uniform and seasonal modes.
// This is the foundation of the stage-2 streaming equivalence.
func TestGeneratorMatchesGenerate(t *testing.T) {
	cat := testCatalog(t, 300)
	for _, seasonal := range []bool{false, true} {
		cfg := Config{NumTrials: 500, Seasonal: seasonal}
		want, err := Generate(context.Background(), cat, cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		g, err := NewGenerator(cat, cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		if g.TrialCount() != 500 {
			t.Fatalf("TrialCount = %d", g.TrialCount())
		}
		for _, batch := range []int{1, 3, 97, 500, 1000} {
			got := assembleViaSource(t, g, batch)
			tablesEqual(t, "generator batch", want, got)
		}
	}
}

// A generator's Streamed counter must equal the occurrence count of
// the equivalent table after one full pass — the accounting invariant
// the streaming stage reports rely on.
func TestGeneratorStreamedCount(t *testing.T) {
	cat := testCatalog(t, 200)
	cfg := Config{NumTrials: 300}
	want, err := Generate(context.Background(), cat, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(cat, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Streamed() != 0 {
		t.Fatalf("fresh generator streamed %d", g.Streamed())
	}
	assembleViaSource(t, g, 64)
	if g.Streamed() != int64(want.Len()) {
		t.Fatalf("streamed %d occurrences, table has %d", g.Streamed(), want.Len())
	}
}

// A materialized table is itself a Source: batches must be views of
// the same trials, and the full range must avoid copying entirely.
func TestTableAsSource(t *testing.T) {
	cat := testCatalog(t, 200)
	tbl, err := Generate(context.Background(), cat, Config{NumTrials: 250}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 250, 4096} {
		got := assembleViaSource(t, tbl, batch)
		tablesEqual(t, "table batch", tbl, got)
	}
	full, err := tbl.ReadTrials(context.Background(), 0, tbl.NumTrials, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full != tbl {
		t.Fatal("full-range ReadTrials should return the table itself")
	}
}

func TestReadTrialsBounds(t *testing.T) {
	cat := testCatalog(t, 100)
	cfg := Config{NumTrials: 50}
	tbl, err := Generate(context.Background(), cat, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(cat, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []Source{tbl, g} {
		if _, err := src.ReadTrials(context.Background(), -1, 10, nil); err == nil {
			t.Error("negative lo should error")
		}
		if _, err := src.ReadTrials(context.Background(), 0, 51, nil); err == nil {
			t.Error("hi beyond trials should error")
		}
		if _, err := src.ReadTrials(context.Background(), 30, 20, nil); err == nil {
			t.Error("inverted range should error")
		}
		b, err := src.ReadTrials(context.Background(), 20, 20, nil)
		if err != nil {
			t.Errorf("empty range should succeed: %v", err)
		} else if b.NumTrials != 0 {
			t.Errorf("empty range NumTrials = %d", b.NumTrials)
		}
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	cat := testCatalog(t, 10)
	if _, err := NewGenerator(cat, Config{NumTrials: 0}, 1); err == nil {
		t.Error("NumTrials=0 should error")
	}
}

// Stage-2 generation must honor pipeline cancellation: both the
// materializing Generate and a streaming batch read stop early when
// the context is done instead of simulating to completion.
func TestGenerateHonorsCancellation(t *testing.T) {
	cat := testCatalog(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Generate(ctx, cat, Config{NumTrials: 100_000}, 1); err == nil {
		t.Fatal("cancelled Generate should error")
	}
	g, err := NewGenerator(cat, Config{NumTrials: 100_000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ReadTrials(ctx, 0, 100_000, nil); err == nil {
		t.Fatal("cancelled ReadTrials should error")
	}
}
