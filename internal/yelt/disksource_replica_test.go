package yelt

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/diskstore"
	"repro/internal/faultinject"
)

// spillReplicatedFixture spills a 301-trial table at r=2 across 4
// nodes and returns (table, store, source).
func spillReplicatedFixture(t *testing.T) (*Table, *diskstore.Store, *DiskSource) {
	t.Helper()
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 301}, 11)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 4)
	ds, err := SpillReplicated(ctx, tbl, store, "yelt", 7, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, store, ds
}

func TestSpillReplicatedRoundTrip(t *testing.T) {
	ctx := context.Background()
	tbl, store, ds := spillReplicatedFixture(t)
	if ds.Replicas() != 2 {
		t.Fatalf("Replicas = %d, want 2", ds.Replicas())
	}
	for i := 0; i < ds.Shards(); i++ {
		want := store.ReplicaNodesFor(i, 2)
		if got := ds.ShardNodes(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("shard %d nodes = %v, want %v", i, got, want)
		}
		if ds.ShardNode(i) != want[0] {
			t.Fatalf("shard %d primary = %d, want %d", i, ds.ShardNode(i), want[0])
		}
	}
	want, err := tbl.Slice(0, 301)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadTrials(ctx, 0, 301, &Table{})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "replicated spill", want, got)
	if ds.Failovers() != 0 {
		t.Fatalf("healthy store recorded %d failovers", ds.Failovers())
	}

	// Physical footprint is twice the logical one: every shard (and the
	// manifest) exists on two nodes.
	logical, err := store.SizeBytes("yelt")
	if err != nil {
		t.Fatal(err)
	}
	physical, err := store.TotalSizeBytes("yelt")
	if err != nil {
		t.Fatal(err)
	}
	if physical != 2*logical {
		t.Fatalf("physical %d, logical %d: replication factor not 2", physical, logical)
	}
}

func TestOpenDiskSourceRecoversReplicaSets(t *testing.T) {
	_, store, ds := spillReplicatedFixture(t)
	re, err := OpenDiskSource(store, "yelt")
	if err != nil {
		t.Fatal(err)
	}
	if re.Replicas() != 2 {
		t.Fatalf("reattached Replicas = %d, want 2", re.Replicas())
	}
	for i := 0; i < ds.Shards(); i++ {
		if !reflect.DeepEqual(re.ShardNodes(i), ds.ShardNodes(i)) {
			t.Fatalf("shard %d: reattached nodes %v != spilled %v", i, re.ShardNodes(i), ds.ShardNodes(i))
		}
	}
}

// A replica that dies mid-scan (truncated file: the header reads fine,
// the trial stream tears halfway) must roll back its partial progress
// and fail over, yielding a batch bit-identical to the healthy read.
func TestReadTrialsFailsOverTruncatedReplicaMidStream(t *testing.T) {
	ctx := context.Background()
	tbl, store, ds := spillReplicatedFixture(t)
	want, err := tbl.Slice(0, 301)
	if err != nil {
		t.Fatal(err)
	}
	// Tear shard 3's primary replica halfway through its body.
	bad := ds.ShardNode(3)
	if err := store.CorruptAt("yelt", 3, bad); err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadTrials(ctx, 0, 301, &Table{})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "failover batch", want, got)
	if ds.Failovers() == 0 {
		t.Fatal("no failover recorded for the torn replica")
	}
	log := strings.Join(ds.FailoverLog(), "\n")
	if !strings.Contains(log, "shard 3") {
		t.Fatalf("failover log does not name shard 3:\n%s", log)
	}
}

// Injected read faults (healthy files, erroring disk) exercise the
// same failover, and the plan's per-node scoping pins which replica
// the scan lands on.
func TestReadTrialsFailsOverInjectedFault(t *testing.T) {
	ctx := context.Background()
	tbl, store, ds := spillReplicatedFixture(t)
	bad := ds.ShardNode(2)
	plan := faultinject.New(7, faultinject.FailShardRead{
		Shard: 2, Node: bad, Attempts: 1000,
	})
	store.SetReadFault(plan.DiskRead)
	defer store.SetReadFault(nil)

	want, err := tbl.Slice(0, 301)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadTrials(ctx, 0, 301, &Table{})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "injected-fault batch", want, got)
	if ds.Failovers() == 0 || plan.Injected() == 0 {
		t.Fatalf("failovers=%d injected=%d, want both > 0", ds.Failovers(), plan.Injected())
	}
	log := strings.Join(ds.FailoverLog(), "\n")
	if !strings.Contains(log, "injected") {
		t.Fatalf("failover log does not name the injected fault:\n%s", log)
	}
}

// When every replica of a shard fails, ReadTrials must report the
// shard and each replica's failure instead of returning short data.
func TestReadTrialsAllReplicasFail(t *testing.T) {
	ctx := context.Background()
	_, store, ds := spillReplicatedFixture(t)
	plan := faultinject.New(7, faultinject.FailShardRead{
		Shard: 1, Node: faultinject.Any, Attempts: 1000,
	})
	store.SetReadFault(plan.DiskRead)
	defer store.SetReadFault(nil)
	_, err := ds.ReadTrials(ctx, 0, 301, &Table{})
	if err == nil {
		t.Fatal("scan should fail when every replica errors")
	}
	for _, wantSub := range []string{"shard 1", "all replicas failed", "injected"} {
		if !strings.Contains(err.Error(), wantSub) {
			t.Fatalf("error %q does not mention %q", err, wantSub)
		}
	}
}

// Losing one replica of a shard — and the manifest's primary copy —
// must not stop a re-attach: OpenDiskSource verifies from survivors
// and logs which replica was bad.
func TestOpenDiskSourceFailsOverLostReplica(t *testing.T) {
	ctx := context.Background()
	tbl, store, ds := spillReplicatedFixture(t)
	if err := store.RemoveAt("yelt", 2, ds.ShardNode(2)); err != nil {
		t.Fatal(err)
	}
	if err := store.RemoveAt("yelt.manifest", 0, store.NodeOf(0)); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDiskSource(store, "yelt")
	if err != nil {
		t.Fatal(err)
	}
	if re.Failovers() == 0 {
		t.Fatal("no failover recorded for the lost replica")
	}
	log := strings.Join(re.FailoverLog(), "\n")
	if !strings.Contains(log, "shard 2") {
		t.Fatalf("failover log does not name shard 2:\n%s", log)
	}
	want, err := tbl.Slice(0, 301)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.ReadTrials(ctx, 0, 301, &Table{})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "post-loss reattach", want, got)
}

// Losing every replica of a shard is unrecoverable and must be
// refused by name, exactly like the unreplicated missing-shard case.
func TestOpenDiskSourceRefusesWhenAllReplicasLost(t *testing.T) {
	_, store, ds := spillReplicatedFixture(t)
	for _, node := range ds.ShardNodes(4) {
		if err := store.RemoveAt("yelt", 4, node); err != nil {
			t.Fatal(err)
		}
	}
	wantOpenError(t, store, "yelt", "missing shard 4")
}

// A v2 (pre-replication) manifest still attaches: replica sets default
// to the primary placement.
func TestOpenDiskSourceReadsV2Manifest(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 120}, 5)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 2)
	ds, err := Spill(ctx, tbl, store, "ds", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, ds.Shards())
	for i := range counts {
		counts[i] = ds.ShardRange(i).Len()
	}
	// Replace the manifest with the v2 encoding PR-8 spills wrote.
	if err := store.Delete(manifestDataset("ds")); err != nil {
		t.Fatal(err)
	}
	err = store.WritePartition(manifestDataset("ds"), 0, func(w io.Writer) error {
		buf := make([]byte, 12+4*len(counts))
		copy(buf[:4], manifestMagicV2[:])
		binary.LittleEndian.PutUint32(buf[4:8], uint32(len(counts)))
		binary.LittleEndian.PutUint32(buf[8:12], 120)
		for i, c := range counts {
			binary.LittleEndian.PutUint32(buf[12+4*i:], uint32(c))
		}
		_, err := w.Write(buf)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	re, err := OpenDiskSource(store, "ds")
	if err != nil {
		t.Fatalf("v2 manifest should still attach: %v", err)
	}
	if re.Replicas() != 1 {
		t.Fatalf("v2 Replicas = %d, want 1", re.Replicas())
	}
	for i := 0; i < re.Shards(); i++ {
		if got := re.ShardNodes(i); len(got) != 1 || got[0] != store.NodeOf(i) {
			t.Fatalf("v2 shard %d nodes = %v, want [%d]", i, got, store.NodeOf(i))
		}
	}
	want, err := tbl.Slice(0, 120)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.ReadTrials(ctx, 0, 120, &Table{})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "v2 reattach", want, got)
}

// An unreplicated source hit by a mid-stream read error has nowhere to
// fail over — the scan must surface the error, not return short data.
func TestReadTrialsUnreplicatedMidStreamError(t *testing.T) {
	ctx := context.Background()
	cat := testCatalog(t, 500)
	tbl, err := Generate(ctx, cat, Config{NumTrials: 120}, 5)
	if err != nil {
		t.Fatal(err)
	}
	store := testStore(t, 2)
	ds, err := Spill(ctx, tbl, store, "ds", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.New(3, faultinject.FailShardRead{
		Shard: 1, Node: faultinject.Any, Attempts: 1,
	})
	store.SetReadFault(plan.DiskRead)
	defer store.SetReadFault(nil)
	if _, err := ds.ReadTrials(ctx, 0, 120, &Table{}); err == nil {
		t.Fatal("unreplicated scan under an injected fault should fail")
	} else if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error should wrap ErrInjected: %v", err)
	}
	// The injected fault burned its budget: the next scan succeeds —
	// the retry behaviour mapreduce's attempt loop relies on.
	want, err := tbl.Slice(0, 120)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ds.ReadTrials(ctx, 0, 120, &Table{})
	if err != nil {
		t.Fatal(err)
	}
	tablesEqual(t, "post-fault retry", want, got)
}
