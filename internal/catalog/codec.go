package catalog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Binary catalogue format: magic "CAT1", u32 event count, then per
// event: u32 id, u8 peril, u16 region, 5×f64 (lat, lon, magnitude,
// radius, rate). Stream-oriented like the other pipeline codecs:
// catalogues are written once by the modelling team and scanned by
// every downstream consumer.
var magic = [4]byte{'C', 'A', 'T', '1'}

// ErrBadFormat reports a malformed serialized catalogue.
var ErrBadFormat = errors.New("catalog: bad format")

const eventRecordSize = 4 + 1 + 2 + 5*8

// WriteTo serializes the catalogue. It implements io.WriterTo.
func (c *Catalog) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var written int64
	if _, err := bw.Write(magic[:]); err != nil {
		return written, err
	}
	written += 4
	var u4 [4]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(len(c.Events)))
	if _, err := bw.Write(u4[:]); err != nil {
		return written, err
	}
	written += 4
	var rec [eventRecordSize]byte
	for _, ev := range c.Events {
		binary.LittleEndian.PutUint32(rec[0:4], ev.ID)
		rec[4] = byte(ev.Peril)
		binary.LittleEndian.PutUint16(rec[5:7], ev.RegionID)
		binary.LittleEndian.PutUint64(rec[7:15], math.Float64bits(ev.Lat))
		binary.LittleEndian.PutUint64(rec[15:23], math.Float64bits(ev.Lon))
		binary.LittleEndian.PutUint64(rec[23:31], math.Float64bits(ev.Magnitude))
		binary.LittleEndian.PutUint64(rec[31:39], math.Float64bits(ev.RadiusKm))
		binary.LittleEndian.PutUint64(rec[39:47], math.Float64bits(ev.AnnualRate))
		if _, err := bw.Write(rec[:]); err != nil {
			return written, err
		}
		written += eventRecordSize
	}
	return written, bw.Flush()
}

// Read deserializes a catalogue written by WriteTo.
func Read(r io.Reader) (*Catalog, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("catalog: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	var u4 [4]byte
	if _, err := io.ReadFull(br, u4[:]); err != nil {
		return nil, fmt.Errorf("catalog: reading count: %w", err)
	}
	count := binary.LittleEndian.Uint32(u4[:])
	const maxEvents = 1 << 26
	if count > maxEvents {
		return nil, fmt.Errorf("%w: event count %d", ErrBadFormat, count)
	}
	events := make([]Event, count)
	var rec [eventRecordSize]byte
	for i := range events {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("catalog: reading event %d: %w", i, err)
		}
		p := Peril(rec[4])
		if int(p) >= NumPerils {
			return nil, fmt.Errorf("%w: peril %d", ErrBadFormat, rec[4])
		}
		events[i] = Event{
			ID:         binary.LittleEndian.Uint32(rec[0:4]),
			Peril:      p,
			RegionID:   binary.LittleEndian.Uint16(rec[5:7]),
			Lat:        math.Float64frombits(binary.LittleEndian.Uint64(rec[7:15])),
			Lon:        math.Float64frombits(binary.LittleEndian.Uint64(rec[15:23])),
			Magnitude:  math.Float64frombits(binary.LittleEndian.Uint64(rec[23:31])),
			RadiusKm:   math.Float64frombits(binary.LittleEndian.Uint64(rec[31:39])),
			AnnualRate: math.Float64frombits(binary.LittleEndian.Uint64(rec[39:47])),
		}
	}
	return NewCatalog(events), nil
}

// SizeBytes returns the serialized size of the catalogue.
func (c *Catalog) SizeBytes() int64 {
	return int64(4 + 4 + len(c.Events)*eventRecordSize)
}
