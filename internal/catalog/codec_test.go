package catalog

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumEvents = 1000
	c, err := Generate(cfg, 55)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := c.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != c.SizeBytes() || int64(buf.Len()) != n {
		t.Fatalf("size: reported %d, SizeBytes %d, wrote %d", n, c.SizeBytes(), buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatal("length mismatch")
	}
	for i := range c.Events {
		if got.Events[i] != c.Events[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
	if got.TotalRate() != c.TotalRate() {
		t.Fatal("aggregates not rebuilt")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOPE0000"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty read should error")
	}
	// Truncation.
	cfg := DefaultConfig()
	cfg.NumEvents = 10
	c, _ := Generate(cfg, 1)
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("truncated catalogue should error")
	}
	// Corrupt peril byte.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[8+4] = 200 // first event's peril
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("invalid peril should error")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		cfg := DefaultConfig()
		cfg.NumEvents = int(nRaw%50) + 1
		c, err := Generate(cfg, seed)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Len() != c.Len() {
			return false
		}
		for i := range c.Events {
			if got.Events[i] != c.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
