// Package catalog implements the stochastic event catalogue — the
// first primary input to catastrophe models (§II of the paper):
// "mathematical representations of natural occurrence patterns and
// characteristics of catastrophes such as earthquakes".
//
// A Catalog is a fixed set of synthetic events, each with a peril, a
// geographic footprint anchor, severity parameters, and an annual
// occurrence rate. Catalogues are generated deterministically from a
// seed so the entire pipeline is replayable.
package catalog

import (
	"fmt"

	"repro/internal/rng"
)

// Peril identifies the class of catastrophe an event belongs to.
type Peril uint8

// The perils modelled by the synthetic catalogue. The mix follows the
// classic reinsurance book: earthquake and hurricane dominate tail
// risk, flood and winter storm add frequency.
const (
	Earthquake Peril = iota
	Hurricane
	Flood
	WinterStorm
	Tornado
	numPerils
)

// NumPerils is the number of distinct perils.
const NumPerils = int(numPerils)

// String returns the peril's display name.
func (p Peril) String() string {
	switch p {
	case Earthquake:
		return "EQ"
	case Hurricane:
		return "HU"
	case Flood:
		return "FL"
	case WinterStorm:
		return "WS"
	case Tornado:
		return "TO"
	default:
		return fmt.Sprintf("Peril(%d)", uint8(p))
	}
}

// Region is a rectangular geographic territory events and exposures
// are placed in.
type Region struct {
	ID                     uint16
	Name                   string
	LatMin, LatMax         float64
	LonMin, LonMax         float64
	RelativeEventDensity   float64 // share of events placed here
	RelativeExposureWeight float64 // share of insured value located here
}

// DefaultRegions returns a stylized three-territory world — a
// peak-zone coastal region, a continental interior and a secondary
// zone — enough geographic structure for hazard attenuation to
// matter without real-world map data (which is proprietary at
// model-vendor resolution).
func DefaultRegions() []Region {
	return []Region{
		{ID: 0, Name: "CoastalPeak", LatMin: 24, LatMax: 32, LonMin: -98, LonMax: -80, RelativeEventDensity: 0.5, RelativeExposureWeight: 0.45},
		{ID: 1, Name: "Interior", LatMin: 32, LatMax: 46, LonMin: -104, LonMax: -86, RelativeEventDensity: 0.3, RelativeExposureWeight: 0.35},
		{ID: 2, Name: "Secondary", LatMin: 34, LatMax: 44, LonMin: -124, LonMax: -114, RelativeEventDensity: 0.2, RelativeExposureWeight: 0.20},
	}
}

// Event is one stochastic catastrophe scenario.
type Event struct {
	ID         uint32
	Peril      Peril
	RegionID   uint16
	Lat, Lon   float64 // footprint anchor (epicenter / landfall / storm centroid)
	Magnitude  float64 // peril-specific severity scalar (Mw for EQ, Vmax m/s for HU, ...)
	RadiusKm   float64 // footprint extent
	AnnualRate float64 // Poisson occurrence rate per contractual year
}

// Catalog is an immutable set of events with precomputed aggregates.
type Catalog struct {
	Events    []Event
	totalRate float64
	byPeril   [numPerils]int
	index     map[uint32]int
}

// Config controls synthetic catalogue generation.
type Config struct {
	NumEvents int
	Regions   []Region
	// PerilMix is the probability of each peril; zero value uses a
	// standard mix. Must sum to ~1 if set.
	PerilMix []float64
	// MeanAnnualRate scales occurrence rates so that the whole
	// catalogue produces on average MeanEventsPerYear occurrences.
	MeanEventsPerYear float64
}

// DefaultConfig returns a laptop-scale catalogue configuration. The
// paper's production-scale catalogues hold ~100,000 events; tests and
// examples default to thousands and the benches sweep upward.
func DefaultConfig() Config {
	return Config{
		NumEvents:         10_000,
		Regions:           DefaultRegions(),
		PerilMix:          []float64{0.25, 0.20, 0.25, 0.20, 0.10},
		MeanEventsPerYear: 10,
	}
}

// Generate builds a deterministic catalogue from cfg and seed.
func Generate(cfg Config, seed uint64) (*Catalog, error) {
	if cfg.NumEvents <= 0 {
		return nil, fmt.Errorf("catalog: NumEvents must be positive, got %d", cfg.NumEvents)
	}
	if len(cfg.Regions) == 0 {
		cfg.Regions = DefaultRegions()
	}
	if len(cfg.PerilMix) == 0 {
		cfg.PerilMix = DefaultConfig().PerilMix
	}
	if len(cfg.PerilMix) != NumPerils {
		return nil, fmt.Errorf("catalog: PerilMix must have %d entries, got %d", NumPerils, len(cfg.PerilMix))
	}
	if cfg.MeanEventsPerYear <= 0 {
		cfg.MeanEventsPerYear = 10
	}

	perilAlias, err := rng.NewAlias(cfg.PerilMix)
	if err != nil {
		return nil, fmt.Errorf("catalog: peril mix: %w", err)
	}
	regionWeights := make([]float64, len(cfg.Regions))
	for i, r := range cfg.Regions {
		regionWeights[i] = r.RelativeEventDensity
	}
	regionAlias, err := rng.NewAlias(regionWeights)
	if err != nil {
		return nil, fmt.Errorf("catalog: region densities: %w", err)
	}

	st := rng.NewStream(seed, 0xCA7A106)
	events := make([]Event, cfg.NumEvents)
	var rateSum float64
	for i := range events {
		p := Peril(perilAlias.Draw(st))
		reg := cfg.Regions[regionAlias.Draw(st)]
		ev := Event{
			ID:       uint32(i + 1), // IDs are 1-based; 0 is reserved as "no event"
			Peril:    p,
			RegionID: reg.ID,
			Lat:      reg.LatMin + st.Float64()*(reg.LatMax-reg.LatMin),
			Lon:      reg.LonMin + st.Float64()*(reg.LonMax-reg.LonMin),
		}
		switch p {
		case Earthquake:
			// Gutenberg-Richter-like magnitude-frequency: small quakes
			// common, big ones rare.
			ev.Magnitude = 5.0 + st.TruncPareto(1, 1.4, 4.5) - 1 // Mw in [5, 8.5)
			ev.RadiusKm = 20 + 25*(ev.Magnitude-5)
			ev.AnnualRate = 3e-3 / (1 + (ev.Magnitude-5)*(ev.Magnitude-5))
		case Hurricane:
			ev.Magnitude = 33 + st.TruncPareto(1, 2.0, 2.6)*10 - 10 // Vmax m/s in [33, 59)
			ev.RadiusKm = 80 + st.Float64()*220
			ev.AnnualRate = 2e-3 * (40 / ev.Magnitude)
		case Flood:
			ev.Magnitude = 0.5 + st.Gamma(2, 0.8) // depth metres
			ev.RadiusKm = 10 + st.Float64()*60
			ev.AnnualRate = 4e-3
		case WinterStorm:
			ev.Magnitude = 20 + st.Gamma(3, 3) // gust m/s
			ev.RadiusKm = 150 + st.Float64()*350
			ev.AnnualRate = 3e-3
		case Tornado:
			ev.Magnitude = 1 + st.TruncPareto(1, 2.5, 5) - 1 // EF-scale-ish [1, 5)
			ev.RadiusKm = 2 + st.Float64()*10
			ev.AnnualRate = 5e-3 / ev.Magnitude
		}
		rateSum += ev.AnnualRate
		events[i] = ev
	}
	// Normalize total rate to the requested mean events/year.
	scale := cfg.MeanEventsPerYear / rateSum
	for i := range events {
		events[i].AnnualRate *= scale
	}

	return NewCatalog(events), nil
}

// NewCatalog wraps a prebuilt event set and computes its aggregates.
func NewCatalog(events []Event) *Catalog {
	c := &Catalog{Events: events, index: make(map[uint32]int, len(events))}
	for i, ev := range events {
		c.totalRate += ev.AnnualRate
		if int(ev.Peril) < NumPerils {
			c.byPeril[ev.Peril]++
		}
		c.index[ev.ID] = i
	}
	return c
}

// Len returns the number of events.
func (c *Catalog) Len() int { return len(c.Events) }

// TotalRate returns the summed annual occurrence rate — the expected
// number of catastrophes per contractual year across the catalogue.
func (c *Catalog) TotalRate() float64 { return c.totalRate }

// CountByPeril returns how many events carry the given peril.
func (c *Catalog) CountByPeril(p Peril) int {
	if int(p) >= NumPerils {
		return 0
	}
	return c.byPeril[p]
}

// Lookup returns the event with the given ID.
func (c *Catalog) Lookup(id uint32) (Event, bool) {
	i, ok := c.index[id]
	if !ok {
		return Event{}, false
	}
	return c.Events[i], true
}

// Rates returns the annual-rate vector aligned with Events, used to
// build occurrence samplers (alias tables) in the YELT generator.
func (c *Catalog) Rates() []float64 {
	rates := make([]float64, len(c.Events))
	for i, ev := range c.Events {
		rates[i] = ev.AnnualRate
	}
	return rates
}
