package catalog

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumEvents = 500
	a, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical seeds", i)
		}
	}
	c, err := Generate(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Events {
		if a.Events[i].Lat == c.Events[i].Lat {
			same++
		}
	}
	if same > a.Len()/10 {
		t.Fatalf("different seeds produced %d/%d identical positions", same, a.Len())
	}
}

func TestGenerateRateNormalization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumEvents = 2000
	cfg.MeanEventsPerYear = 7.5
	c, err := Generate(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.TotalRate()-7.5) > 1e-9 {
		t.Fatalf("TotalRate = %v, want 7.5", c.TotalRate())
	}
}

func TestGeneratePerilMix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumEvents = 20000
	c, err := Generate(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for p := 0; p < NumPerils; p++ {
		n := c.CountByPeril(Peril(p))
		total += n
		want := cfg.PerilMix[p] * float64(cfg.NumEvents)
		if math.Abs(float64(n)-want) > 5*math.Sqrt(want) {
			t.Errorf("peril %v count %d, want ~%v", Peril(p), n, want)
		}
	}
	if total != cfg.NumEvents {
		t.Fatalf("peril counts sum to %d, want %d", total, cfg.NumEvents)
	}
	if c.CountByPeril(Peril(200)) != 0 {
		t.Error("unknown peril should count 0")
	}
}

func TestEventsWithinRegions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumEvents = 3000
	c, err := Generate(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	regions := map[uint16]Region{}
	for _, r := range cfg.Regions {
		regions[r.ID] = r
	}
	for _, ev := range c.Events {
		r, ok := regions[ev.RegionID]
		if !ok {
			t.Fatalf("event %d has unknown region %d", ev.ID, ev.RegionID)
		}
		if ev.Lat < r.LatMin || ev.Lat > r.LatMax || ev.Lon < r.LonMin || ev.Lon > r.LonMax {
			t.Fatalf("event %d outside its region box", ev.ID)
		}
		if ev.AnnualRate <= 0 {
			t.Fatalf("event %d has non-positive rate", ev.ID)
		}
		if ev.RadiusKm <= 0 {
			t.Fatalf("event %d has non-positive radius", ev.ID)
		}
		if ev.ID == 0 {
			t.Fatal("event ID 0 is reserved")
		}
	}
}

func TestLookup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumEvents = 100
	c, _ := Generate(cfg, 3)
	ev, ok := c.Lookup(50)
	if !ok || ev.ID != 50 {
		t.Fatalf("Lookup(50) = %+v, %v", ev, ok)
	}
	if _, ok := c.Lookup(10_000); ok {
		t.Fatal("Lookup of absent ID should fail")
	}
}

func TestRatesVectorAlignment(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumEvents = 64
	c, _ := Generate(cfg, 5)
	rates := c.Rates()
	if len(rates) != c.Len() {
		t.Fatal("length mismatch")
	}
	var sum float64
	for i, r := range rates {
		if r != c.Events[i].AnnualRate {
			t.Fatalf("rate %d misaligned", i)
		}
		sum += r
	}
	if math.Abs(sum-c.TotalRate()) > 1e-9 {
		t.Fatal("rates don't sum to TotalRate")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{NumEvents: 0}, 1); err == nil {
		t.Error("NumEvents=0 should error")
	}
	cfg := DefaultConfig()
	cfg.PerilMix = []float64{1} // wrong length
	if _, err := Generate(cfg, 1); err == nil {
		t.Error("bad PerilMix length should error")
	}
}

func TestPerilString(t *testing.T) {
	want := map[Peril]string{Earthquake: "EQ", Hurricane: "HU", Flood: "FL", WinterStorm: "WS", Tornado: "TO"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), s)
		}
	}
	if Peril(99).String() != "Peril(99)" {
		t.Error("unknown peril formatting")
	}
}

func TestNewCatalogIndexes(t *testing.T) {
	events := []Event{
		{ID: 5, Peril: Earthquake, AnnualRate: 0.5, RadiusKm: 10},
		{ID: 9, Peril: Flood, AnnualRate: 0.25, RadiusKm: 10},
	}
	c := NewCatalog(events)
	if c.TotalRate() != 0.75 {
		t.Fatalf("TotalRate = %v", c.TotalRate())
	}
	if c.CountByPeril(Earthquake) != 1 || c.CountByPeril(Flood) != 1 {
		t.Fatal("per-peril counts wrong")
	}
	if ev, ok := c.Lookup(9); !ok || ev.Peril != Flood {
		t.Fatal("lookup failed")
	}
}
