package layers

import (
	"fmt"
	"math"
)

// FlatTerms is the structure-of-arrays flattening of a portfolio's
// layer terms: one contiguous column per term across every layer of
// every contract, framed per contract by First. It is the layout the
// flat trial kernel scans — the paper's "scanned over rather than
// randomly accessed" restructuring applied to the financial terms
// themselves: the kernel touches no Layer structs and no nested
// per-contract slices, only dense float64 columns.
//
// Sentinel encodings are resolved at flatten time so the hot loop is
// branch-minimal: unlimited limits (0 in Layer) are stored as +Inf —
// a finite recovery never exceeds +Inf, so the unconditional clamp is
// a no-op exactly where Layer skipped it — and zero shares are stored
// as 1, matching ApplyAggregate's normalization. Both preserve
// Layer's arithmetic bit-for-bit (the round-trip property test pins
// this).
//
// FlatTerms is immutable after FlattenTerms and safe for concurrent
// readers.
type FlatTerms struct {
	// First frames contracts: contract ci's layers occupy flat slots
	// [First[ci], First[ci+1]). len(First) is numContracts+1.
	First []int32
	// Term columns, indexed by flat slot.
	OccRet []float64
	OccLim []float64 // +Inf when the layer's occurrence limit is unlimited
	AggRet []float64
	AggLim []float64 // +Inf when the layer's aggregate limit is unlimited
	Share  []float64 // zero shares normalized to 1
}

// FlattenTerms extracts a portfolio's layer terms into the flat SoA
// form, validating the portfolio first (the same checks the engines'
// Validate performs, so a FlatTerms never holds inconsistent terms).
func FlattenTerms(pf *Portfolio) (*FlatTerms, error) {
	if pf == nil {
		return nil, fmt.Errorf("%w: nil portfolio", ErrInvalidLayer)
	}
	if err := pf.Validate(); err != nil {
		return nil, err
	}
	total := 0
	for _, c := range pf.Contracts {
		total += len(c.Layers)
	}
	ft := &FlatTerms{
		First:  make([]int32, len(pf.Contracts)+1),
		OccRet: make([]float64, total),
		OccLim: make([]float64, total),
		AggRet: make([]float64, total),
		AggLim: make([]float64, total),
		Share:  make([]float64, total),
	}
	fl := int32(0)
	for ci, c := range pf.Contracts {
		ft.First[ci] = fl
		for _, l := range c.Layers {
			ft.OccRet[fl] = l.OccRetention
			ft.OccLim[fl] = limitOrInf(l.OccLimit)
			ft.AggRet[fl] = l.AggRetention
			ft.AggLim[fl] = limitOrInf(l.AggLimit)
			share := l.Share
			if share == 0 {
				share = 1
			}
			ft.Share[fl] = share
			fl++
		}
	}
	ft.First[len(pf.Contracts)] = fl
	return ft, nil
}

func limitOrInf(lim float64) float64 {
	if lim <= 0 {
		return math.Inf(1)
	}
	return lim
}

// NumContracts returns the number of contract frames.
func (ft *FlatTerms) NumContracts() int { return len(ft.First) - 1 }

// NumLayers returns the total number of flattened layers.
func (ft *FlatTerms) NumLayers() int { return len(ft.OccRet) }

// ApplyOccurrence is Layer.ApplyOccurrence over flat slot fl:
// min(max(loss - occRet, 0), occLim). Bit-identical to the Layer
// method for any loss (the +Inf sentinel makes the clamp a no-op
// where Layer skipped it).
func (ft *FlatTerms) ApplyOccurrence(fl int32, loss float64) float64 {
	ret := ft.OccRet[fl]
	if loss <= ret {
		return 0
	}
	r := loss - ret
	if lim := ft.OccLim[fl]; r > lim {
		r = lim
	}
	return r
}

// ApplyAggregate is Layer.ApplyAggregate over flat slot fl:
// min(max(sum - aggRet, 0), aggLim) · share, bit-identical to the
// Layer method (shares were normalized at flatten time).
func (ft *FlatTerms) ApplyAggregate(fl int32, sum float64) float64 {
	ret := ft.AggRet[fl]
	if sum <= ret {
		return 0
	}
	r := sum - ret
	if lim := ft.AggLim[fl]; r > lim {
		r = lim
	}
	return r * ft.Share[fl]
}

// SizeBytes returns the in-memory footprint of the flattened terms.
func (ft *FlatTerms) SizeBytes() int64 {
	return int64(len(ft.First))*4 + int64(ft.NumLayers())*5*8
}
