// Package layers models reinsurance contract structures: the financial
// terms stage 2 applies on top of per-event contract losses. Aggregate
// analysis (per the paper's companion algorithm, Bahl et al., WHPCF at
// SC12 [7]) walks each trial year's event occurrences, looks up the
// contract loss per event, applies per-occurrence terms, accumulates,
// and applies annual aggregate terms.
package layers

import (
	"errors"
	"fmt"
)

// ErrInvalidLayer is returned by Validate for inconsistent layers.
var ErrInvalidLayer = errors.New("layers: invalid layer")

// Layer is a catastrophe excess-of-loss reinsurance layer.
type Layer struct {
	// OccRetention is the per-occurrence attachment point: losses
	// below it are retained by the cedant.
	OccRetention float64
	// OccLimit caps the recovery per occurrence; 0 means unlimited.
	OccLimit float64
	// AggRetention is the annual aggregate deductible applied to the
	// sum of occurrence recoveries within a trial year.
	AggRetention float64
	// AggLimit caps annual recoveries; 0 means unlimited.
	AggLimit float64
	// Share is the reinsurer's participation in the layer, (0, 1];
	// 0 is normalized to 1.
	Share float64
}

// Validate reports whether the layer's terms are consistent.
func (l Layer) Validate() error {
	if l.OccRetention < 0 || l.AggRetention < 0 {
		return fmt.Errorf("%w: negative retention", ErrInvalidLayer)
	}
	if l.OccLimit < 0 || l.AggLimit < 0 {
		return fmt.Errorf("%w: negative limit", ErrInvalidLayer)
	}
	if l.Share < 0 || l.Share > 1 {
		return fmt.Errorf("%w: share %g outside [0,1]", ErrInvalidLayer, l.Share)
	}
	return nil
}

// ApplyOccurrence maps one event's contract loss to the layer's
// occurrence recovery: min(max(loss - occRet, 0), occLimit).
// Share is applied at the annual stage, not per occurrence.
func (l Layer) ApplyOccurrence(loss float64) float64 {
	if loss <= l.OccRetention {
		return 0
	}
	r := loss - l.OccRetention
	if l.OccLimit > 0 && r > l.OccLimit {
		r = l.OccLimit
	}
	return r
}

// ApplyAggregate maps the annual sum of occurrence recoveries to the
// layer's annual payout: min(max(sum - aggRet, 0), aggLimit) · share.
func (l Layer) ApplyAggregate(sum float64) float64 {
	if sum <= l.AggRetention {
		return 0
	}
	r := sum - l.AggRetention
	if l.AggLimit > 0 && r > l.AggLimit {
		r = l.AggLimit
	}
	share := l.Share
	if share == 0 {
		share = 1
	}
	return r * share
}

// Contract couples an ELT-bearing exposure with the layers written on
// it. ELTIndex refers into the portfolio's table list so the contract
// description stays decoupled from table storage.
type Contract struct {
	ID       uint32
	ELTIndex int
	Layers   []Layer
}

// Validate checks the contract's layers.
func (c Contract) Validate() error {
	if len(c.Layers) == 0 {
		return fmt.Errorf("%w: contract %d has no layers", ErrInvalidLayer, c.ID)
	}
	for i, l := range c.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("contract %d layer %d: %w", c.ID, i, err)
		}
	}
	return nil
}

// Portfolio is the book of contracts stage 2 analyses. The paper: "A
// reinsurer typically may have tens of thousands of contracts and are
// interested in quantifying the risk across their whole portfolio".
type Portfolio struct {
	Contracts []Contract
}

// Validate checks every contract.
func (p *Portfolio) Validate() error {
	if len(p.Contracts) == 0 {
		return errors.New("layers: empty portfolio")
	}
	for _, c := range p.Contracts {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// StandardCatXL returns a typical per-occurrence catastrophe
// excess-of-loss program sized against a contract's expected loss
// scale: attachment around 5× the mean event loss, a limit of the
// same order, an aggregate limit of two full limits.
func StandardCatXL(meanEventLoss float64) Layer {
	att := 5 * meanEventLoss
	lim := 10 * meanEventLoss
	return Layer{
		OccRetention: att,
		OccLimit:     lim,
		AggLimit:     2 * lim,
		Share:        1,
	}
}

// WorkingLayer returns a low-attaching layer that responds to most
// events — the high-frequency end of a program.
func WorkingLayer(meanEventLoss float64) Layer {
	return Layer{
		OccRetention: 0.5 * meanEventLoss,
		OccLimit:     4 * meanEventLoss,
		AggRetention: meanEventLoss,
		AggLimit:     20 * meanEventLoss,
		Share:        1,
	}
}
