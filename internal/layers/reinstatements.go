package layers

// Reinstatement support. A catastrophe XL layer is usually written
// with a limited number of reinstatements: each occurrence's recovery
// erodes the layer's limit, and the limit is restored ("reinstated")
// up to K times against a pro-rata premium. Aggregate analysis must
// therefore walk occurrences *in date order* (the reason the YELT
// carries day-of-year), maintaining per-layer year state.
//
// Relationship to the stateless path: a layer with Reinstatements == 0
// behaves as its plain occurrence/aggregate terms; engines use the
// stateful path only when a portfolio declares reinstatements.

// ReinstatementTerms extends a Layer with reinstatement provisions.
type ReinstatementTerms struct {
	// Count is the number of reinstatements (limit refills). The
	// layer's total annual capacity is (Count+1) · OccLimit.
	Count int
	// PremiumRate is the reinstatement premium per unit of reinstated
	// limit, expressed as a fraction of the layer's upfront premium
	// (1.0 = "at 100%", the market standard quote).
	PremiumRate float64
	// UpfrontPremium is the layer's annual premium, the base for
	// reinstatement premium calculations.
	UpfrontPremium float64
}

// YearState tracks one layer's erosion through a trial year.
type YearState struct {
	layer     Layer
	terms     ReinstatementTerms
	available float64 // remaining limit capacity this year
	reinstBal float64 // limit amount still reinstatable
}

// NewYearState starts a fresh contractual year for the layer. For
// layers without an occurrence limit, reinstatements are meaningless
// and the state degrades to unlimited capacity.
func (l Layer) NewYearState(t ReinstatementTerms) YearState {
	ys := YearState{layer: l, terms: t}
	if l.OccLimit <= 0 {
		ys.available = -1 // unlimited
		return ys
	}
	ys.available = l.OccLimit
	ys.reinstBal = float64(t.Count) * l.OccLimit
	return ys
}

// Occurrence processes one event in date order: the recovery is the
// occurrence-term recovery capped by remaining capacity; consumed
// limit is reinstated from the reinstatement balance, charging
// premium pro-rata. It returns the recovery (before Share) and the
// reinstatement premium incurred.
func (ys *YearState) Occurrence(loss float64) (recovery, reinstPremium float64) {
	r := ys.layer.ApplyOccurrence(loss)
	if r <= 0 {
		return 0, 0
	}
	if ys.available >= 0 {
		if r > ys.available {
			r = ys.available
		}
		ys.available -= r
		// Reinstate what was just consumed, while balance remains.
		reinstate := r
		if reinstate > ys.reinstBal {
			reinstate = ys.reinstBal
		}
		if reinstate > 0 {
			ys.reinstBal -= reinstate
			ys.available += reinstate
			if ys.layer.OccLimit > 0 && ys.terms.UpfrontPremium > 0 {
				reinstPremium = ys.terms.PremiumRate * ys.terms.UpfrontPremium * reinstate / ys.layer.OccLimit
			}
		}
	}
	return r, reinstPremium
}

// Exhausted reports whether the layer can pay nothing more this year.
func (ys *YearState) Exhausted() bool {
	return ys.available == 0 && ys.reinstBal == 0
}

// Remaining returns the currently available limit (-1 = unlimited).
func (ys *YearState) Remaining() float64 { return ys.available }

// CloseYear applies the layer's annual terms (aggregate retention,
// aggregate limit, share) to the year's summed recoveries and returns
// the annual payout net of nothing (reinstatement premiums are
// reported separately by Occurrence). sum must be the total of the
// recoveries returned by Occurrence during the year.
func (ys *YearState) CloseYear(sum float64) float64 {
	return ys.layer.ApplyAggregate(sum)
}
