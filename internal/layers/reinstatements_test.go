package layers

import (
	"math"
	"testing"
	"testing/quick"
)

func xlLayer() Layer {
	return Layer{OccRetention: 100, OccLimit: 1000, Share: 1}
}

func TestYearStateSingleEventWithinLimit(t *testing.T) {
	ys := xlLayer().NewYearState(ReinstatementTerms{Count: 1, PremiumRate: 1, UpfrontPremium: 50})
	r, p := ys.Occurrence(600)
	if r != 500 {
		t.Fatalf("recovery = %v, want 500", r)
	}
	// 500 of 1000 limit consumed and fully reinstated at rate 1:
	// premium = 50 * 500/1000 = 25.
	if math.Abs(p-25) > 1e-12 {
		t.Fatalf("reinstatement premium = %v, want 25", p)
	}
	if ys.Remaining() != 1000 {
		t.Fatalf("remaining = %v, want 1000 after reinstatement", ys.Remaining())
	}
}

func TestYearStateExhaustion(t *testing.T) {
	// One reinstatement: total annual capacity = 2 × 1000.
	ys := xlLayer().NewYearState(ReinstatementTerms{Count: 1, PremiumRate: 1, UpfrontPremium: 100})
	var total float64
	losses := []float64{1200, 1200, 1200} // each pierces the full limit
	for _, l := range losses {
		r, _ := ys.Occurrence(l)
		total += r
	}
	if total != 2000 {
		t.Fatalf("total recoveries = %v, want 2000 (limit + 1 reinstatement)", total)
	}
	if !ys.Exhausted() {
		t.Fatal("layer should be exhausted")
	}
	r, p := ys.Occurrence(5000)
	if r != 0 || p != 0 {
		t.Fatal("exhausted layer must pay nothing")
	}
}

func TestYearStateZeroReinstatements(t *testing.T) {
	ys := xlLayer().NewYearState(ReinstatementTerms{})
	r1, p1 := ys.Occurrence(1200)
	if r1 != 1000 || p1 != 0 {
		t.Fatalf("first occurrence: (%v, %v)", r1, p1)
	}
	r2, _ := ys.Occurrence(1200)
	if r2 != 0 {
		t.Fatalf("no reinstatements: second full loss should recover 0, got %v", r2)
	}
}

func TestYearStateUnlimitedLayer(t *testing.T) {
	l := Layer{OccRetention: 10} // no occurrence limit
	ys := l.NewYearState(ReinstatementTerms{Count: 3, PremiumRate: 1, UpfrontPremium: 100})
	for i := 0; i < 10; i++ {
		r, p := ys.Occurrence(1_000_000)
		if r != 999_990 {
			t.Fatalf("unlimited layer recovery = %v", r)
		}
		if p != 0 {
			t.Fatal("unlimited layer charges no reinstatement premium")
		}
	}
	if ys.Exhausted() {
		t.Fatal("unlimited layer cannot exhaust")
	}
}

func TestYearStatePartialReinstatement(t *testing.T) {
	// Count=1 but the second loss consumes more than the remaining
	// reinstatement balance.
	ys := xlLayer().NewYearState(ReinstatementTerms{Count: 1, PremiumRate: 0.5, UpfrontPremium: 200})
	r1, p1 := ys.Occurrence(800) // consumes 700, reinstates 700
	if r1 != 700 {
		t.Fatalf("r1 = %v", r1)
	}
	if math.Abs(p1-0.5*200*700/1000) > 1e-12 {
		t.Fatalf("p1 = %v", p1)
	}
	// Reinstatement balance now 300.
	r2, p2 := ys.Occurrence(2000) // wants 1000, gets 1000, reinstates 300
	if r2 != 1000 {
		t.Fatalf("r2 = %v", r2)
	}
	if math.Abs(p2-0.5*200*300/1000) > 1e-12 {
		t.Fatalf("p2 = %v", p2)
	}
	if ys.Remaining() != 300 {
		t.Fatalf("remaining = %v, want 300", ys.Remaining())
	}
	r3, _ := ys.Occurrence(2000)
	if r3 != 300 {
		t.Fatalf("r3 = %v, want the final 300", r3)
	}
	if !ys.Exhausted() {
		t.Fatal("should be exhausted now")
	}
}

func TestYearStateTotalCapacityProperty(t *testing.T) {
	// Total annual recovery never exceeds (Count+1)·OccLimit, for any
	// loss sequence.
	f := func(lossesRaw []uint16, countRaw uint8) bool {
		count := int(countRaw % 4)
		l := Layer{OccRetention: 50, OccLimit: 500, Share: 1}
		ys := l.NewYearState(ReinstatementTerms{Count: count, PremiumRate: 1, UpfrontPremium: 100})
		var total, premiums float64
		for _, lr := range lossesRaw {
			r, p := ys.Occurrence(float64(lr))
			if r < 0 || p < 0 {
				return false
			}
			total += r
			premiums += p
		}
		cap := float64(count+1) * 500
		if total > cap+1e-9 {
			return false
		}
		// Premium never exceeds Count · rate · upfront.
		return premiums <= float64(count)*100+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloseYearAppliesAggregateTerms(t *testing.T) {
	l := Layer{OccRetention: 0, OccLimit: 1000, AggRetention: 500, AggLimit: 1200, Share: 0.5}
	ys := l.NewYearState(ReinstatementTerms{Count: 5, PremiumRate: 0, UpfrontPremium: 0})
	var sum float64
	for i := 0; i < 3; i++ {
		r, _ := ys.Occurrence(900)
		sum += r
	}
	// sum = 2700; annual = min(2700-500, 1200) * 0.5 = 600.
	if got := ys.CloseYear(sum); got != 600 {
		t.Fatalf("CloseYear = %v, want 600", got)
	}
}
