package layers

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestApplyOccurrenceKnown(t *testing.T) {
	l := Layer{OccRetention: 100, OccLimit: 500}
	cases := []struct{ in, want float64 }{
		{0, 0}, {100, 0}, {150, 50}, {600, 500}, {10_000, 500},
	}
	for _, c := range cases {
		if got := l.ApplyOccurrence(c.in); got != c.want {
			t.Errorf("ApplyOccurrence(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestApplyOccurrenceUnlimited(t *testing.T) {
	l := Layer{OccRetention: 100}
	if got := l.ApplyOccurrence(1e9); got != 1e9-100 {
		t.Fatalf("unlimited layer capped: %v", got)
	}
}

func TestApplyAggregateKnown(t *testing.T) {
	l := Layer{AggRetention: 1000, AggLimit: 2000, Share: 0.5}
	cases := []struct{ in, want float64 }{
		{500, 0}, {1000, 0}, {1500, 250}, {3000, 1000}, {99_999, 1000},
	}
	for _, c := range cases {
		if got := l.ApplyAggregate(c.in); got != c.want {
			t.Errorf("ApplyAggregate(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestShareDefaultsToFull(t *testing.T) {
	l := Layer{}
	if got := l.ApplyAggregate(100); got != 100 {
		t.Fatalf("zero share should act as full participation, got %v", got)
	}
}

func TestMonotoneProperty(t *testing.T) {
	f := func(retRaw, limRaw uint16, l1Raw, l2Raw uint32) bool {
		l := Layer{OccRetention: float64(retRaw), OccLimit: float64(limRaw)}
		a := float64(l1Raw % 1_000_000)
		b := float64(l2Raw % 1_000_000)
		if a > b {
			a, b = b, a
		}
		occOK := l.ApplyOccurrence(a) <= l.ApplyOccurrence(b)+1e-9
		ag := Layer{AggRetention: float64(retRaw), AggLimit: float64(limRaw), Share: 0.7}
		aggOK := ag.ApplyAggregate(a) <= ag.ApplyAggregate(b)+1e-9
		return occOK && aggOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRecoveryBoundedProperty(t *testing.T) {
	f := func(lossRaw uint32) bool {
		l := Layer{OccRetention: 100, OccLimit: 5000, AggLimit: 8000, Share: 0.9}
		occ := l.ApplyOccurrence(float64(lossRaw))
		if occ < 0 || occ > 5000 {
			return false
		}
		agg := l.ApplyAggregate(occ * 3)
		return agg >= 0 && agg <= 8000*0.9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	good := []Layer{{}, {OccRetention: 1, OccLimit: 2, Share: 1}, StandardCatXL(1000), WorkingLayer(1000)}
	for _, l := range good {
		if err := l.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", l, err)
		}
	}
	bad := []Layer{{OccRetention: -1}, {OccLimit: -1}, {AggRetention: -1}, {AggLimit: -1}, {Share: 2}}
	for _, l := range bad {
		if err := l.Validate(); !errors.Is(err, ErrInvalidLayer) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalidLayer", l, err)
		}
	}
}

func TestContractValidate(t *testing.T) {
	c := Contract{ID: 1}
	if err := c.Validate(); err == nil {
		t.Error("contract without layers should fail validation")
	}
	c.Layers = []Layer{{Share: 0.5}}
	if err := c.Validate(); err != nil {
		t.Errorf("valid contract rejected: %v", err)
	}
	c.Layers = append(c.Layers, Layer{Share: -1})
	if err := c.Validate(); err == nil {
		t.Error("bad layer should fail contract validation")
	}
}

func TestPortfolioValidate(t *testing.T) {
	p := &Portfolio{}
	if err := p.Validate(); err == nil {
		t.Error("empty portfolio should fail")
	}
	p.Contracts = []Contract{{ID: 1, Layers: []Layer{{}}}}
	if err := p.Validate(); err != nil {
		t.Errorf("valid portfolio rejected: %v", err)
	}
	p.Contracts = append(p.Contracts, Contract{ID: 2})
	if err := p.Validate(); err == nil {
		t.Error("portfolio with invalid contract should fail")
	}
}

func TestStandardProgramsScale(t *testing.T) {
	xl := StandardCatXL(1_000_000)
	if xl.OccRetention != 5_000_000 || xl.OccLimit != 10_000_000 {
		t.Fatalf("CatXL terms: %+v", xl)
	}
	wl := WorkingLayer(1_000_000)
	if wl.OccRetention >= xl.OccRetention {
		t.Fatal("working layer should attach below the cat layer")
	}
}
