package layers

import (
	"fmt"
	"math"
)

// FlatYearStates is the structure-of-arrays year-state layout for the
// stateful reinstatements path: the per-(contract, layer) YearState
// values laid out as contiguous columns parallel to a FlatTerms'
// flat slots, framed per contract by FlatTerms.First. It is to
// YearState what FlatTerms is to Layer — the paper's "scanned over
// rather than randomly accessed" restructuring applied to the mutable
// contractual-year state itself: the occurrence-ordered kernel walks
// dense float64 columns instead of nested [][]YearState slices.
//
// A FlatYearStates carries two kinds of columns:
//
//   - an immutable template (the NewYearState values for every slot,
//     computed once from the terms at construction), and
//   - the live Available/ReinstBal columns the kernel mutates through
//     a trial year.
//
// Starting a fresh contractual year is Reset — two bulk copies from
// the template — instead of a per-layer NewYearState call; this is
// the reset-by-copy half of the flattening, which removes the
// per-trial nested-slice walk entirely. Workers share one validated
// template via Clone, which reuses the immutable columns and
// allocates only the live ones.
//
// All state arithmetic is bit-identical to the scalar YearState
// methods (the differential property tests pin this): the premium
// base PremiumRate·UpfrontPremium is the same first product the
// scalar path computes, and the unlimited-layer sentinel (-1
// available) is carried over unchanged.
type FlatYearStates struct {
	terms *FlatTerms
	// Template columns (immutable after construction, shared by
	// clones): the slot's fresh-year state and premium constant.
	avail0   []float64 // OccLimit, or -1 for unlimited layers
	reinst0  []float64 // Count · OccLimit, 0 for unlimited layers
	premBase []float64 // PremiumRate · UpfrontPremium, 0 when premium can never accrue
	// Live columns, reset per trial year via Reset.
	Available []float64 // remaining limit capacity, -1 = unlimited
	ReinstBal []float64 // limit amount still reinstatable
}

// NewFlatYearStates builds the SoA year-state layout for the
// portfolio's reinstatement terms, shaped like the scalar path's
// Terms[ci][li] (contract ci's layers occupy flat slots
// [First[ci], First[ci+1])). The terms shape must match the flattened
// portfolio's contract frames, and all terms must be non-negative —
// the same checks the stateful engine's Validate performs.
func (ft *FlatTerms) NewFlatYearStates(terms [][]ReinstatementTerms) (*FlatYearStates, error) {
	if len(terms) != ft.NumContracts() {
		return nil, fmt.Errorf("layers: %d term rows for %d flattened contracts", len(terms), ft.NumContracts())
	}
	n := ft.NumLayers()
	fy := &FlatYearStates{
		terms:     ft,
		avail0:    make([]float64, n),
		reinst0:   make([]float64, n),
		premBase:  make([]float64, n),
		Available: make([]float64, n),
		ReinstBal: make([]float64, n),
	}
	for ci := 0; ci < ft.NumContracts(); ci++ {
		frame := int(ft.First[ci+1] - ft.First[ci])
		if len(terms[ci]) != frame {
			return nil, fmt.Errorf("layers: contract frame %d: %d term entries for %d layers", ci, len(terms[ci]), frame)
		}
		for li, t := range terms[ci] {
			if t.Count < 0 || t.PremiumRate < 0 || t.UpfrontPremium < 0 {
				return nil, fmt.Errorf("layers: contract frame %d layer %d: negative reinstatement terms", ci, li)
			}
			fl := ft.First[ci] + int32(li)
			occLim := ft.OccLim[fl]
			if math.IsInf(occLim, 1) {
				// Unlimited layer: reinstatements are meaningless and the
				// state degrades to unlimited capacity, exactly as
				// Layer.NewYearState encodes it.
				fy.avail0[fl] = -1
				continue
			}
			fy.avail0[fl] = occLim
			fy.reinst0[fl] = float64(t.Count) * occLim
			if t.UpfrontPremium > 0 {
				// The scalar path computes PremiumRate·UpfrontPremium as its
				// first product; folding it into the template keeps the
				// remaining per-occurrence arithmetic bit-identical.
				fy.premBase[fl] = t.PremiumRate * t.UpfrontPremium
			}
		}
	}
	fy.Reset()
	return fy, nil
}

// Reset starts a fresh contractual year for every slot: two bulk
// copies from the template, replacing the scalar path's per-layer
// NewYearState calls.
func (fy *FlatYearStates) Reset() {
	copy(fy.Available, fy.avail0)
	copy(fy.ReinstBal, fy.reinst0)
}

// Clone returns an independent live state sharing fy's immutable
// template columns — the per-worker handle. The clone starts at a
// fresh contractual year.
func (fy *FlatYearStates) Clone() *FlatYearStates {
	c := *fy
	c.Available = make([]float64, len(fy.Available))
	c.ReinstBal = make([]float64, len(fy.ReinstBal))
	c.Reset()
	return &c
}

// NumLayers returns the number of flat year-state slots.
func (fy *FlatYearStates) NumLayers() int { return len(fy.Available) }

// Terms returns the flattened layer terms the states were built over.
func (fy *FlatYearStates) Terms() *FlatTerms { return fy.terms }

// Occurrence processes one event in date order for slot fl, taking
// the layer's occurrence-term recovery rec (ApplyOccurrence of the
// event loss through slot fl — a build-time constant in expected
// mode, which is why the split exists) and applying the year state:
// the recovery is capped by remaining capacity, consumed limit is
// reinstated from the reinstatement balance, and premium is charged
// pro-rata. Bit-identical to YearState.Occurrence for any loss.
func (fy *FlatYearStates) Occurrence(fl int32, rec float64) (recovery, reinstPremium float64) {
	r := rec
	if r <= 0 {
		return 0, 0
	}
	if avail := fy.Available[fl]; avail >= 0 {
		if r > avail {
			r = avail
		}
		avail -= r
		// Reinstate what was just consumed, while balance remains.
		reinstate := r
		if bal := fy.ReinstBal[fl]; reinstate > bal {
			reinstate = bal
		}
		if reinstate > 0 {
			fy.ReinstBal[fl] -= reinstate
			avail += reinstate
			reinstPremium = fy.premBase[fl] * reinstate / fy.terms.OccLim[fl]
		}
		fy.Available[fl] = avail
	}
	return r, reinstPremium
}

// Exhausted reports whether slot fl can pay nothing more this year.
func (fy *FlatYearStates) Exhausted(fl int32) bool {
	return fy.Available[fl] == 0 && fy.ReinstBal[fl] == 0
}

// Remaining returns slot fl's currently available limit (-1 =
// unlimited).
func (fy *FlatYearStates) Remaining(fl int32) float64 { return fy.Available[fl] }

// CloseYear applies slot fl's annual terms to the year's summed
// recoveries — YearState.CloseYear over the flat term columns,
// bit-identical by FlatTerms' round-trip property.
func (fy *FlatYearStates) CloseYear(fl int32, sum float64) float64 {
	return fy.terms.ApplyAggregate(fl, sum)
}

// SizeBytes returns the in-memory footprint of the state columns
// (template plus live).
func (fy *FlatYearStates) SizeBytes() int64 {
	return int64(len(fy.avail0)+len(fy.reinst0)+len(fy.premBase)+
		len(fy.Available)+len(fy.ReinstBal)) * 8
}
