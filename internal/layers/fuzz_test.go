package layers

import (
	"math"
	"testing"
)

// FuzzYearState drives a scalar YearState — and the FlatYearStates
// SoA columns as a differential oracle — through a fuzzer-chosen
// layer, terms, and occurrence sequence, checking the documented
// invariants at every step:
//
//   - a recovery is never negative and never exceeds the occurrence
//     term recovery, nor (for limited layers) the capacity available
//     before the occurrence;
//   - available stays within [0, OccLimit] for limited layers (the -1
//     sentinel only ever means unlimited);
//   - the reinstatement balance only decreases and never goes
//     negative;
//   - total recoveries never exceed (Count+1)·OccLimit, the layer's
//     contractual annual capacity;
//   - premium is non-negative and zero whenever no upfront premium
//     was written;
//   - CloseYear stays within the aggregate terms' bounds.
func FuzzYearState(f *testing.F) {
	f.Add(100.0, 1000.0, 0.0, 0.0, 1.0, uint8(1), 1.0, 50.0, 600.0, 1200.0, 0.0, 900.0)
	f.Add(0.0, 0.0, 100.0, 500.0, 0.5, uint8(0), 0.0, 0.0, 10.0, 0.0, 1e9, 3.5)
	f.Add(250.0, 750.0, 0.0, 2000.0, 0.25, uint8(3), 2.0, 100.0, 1000.0, 1000.0, 1000.0, 1000.0)
	// Fuzzer-found: full reinstatement rounds (avail-r)+r one ulp above
	// the occurrence limit (in scalar and flat states identically).
	f.Add(-60.0, 248.88888888888889, 0.0, -108.0, 109.0, uint8(0x0f), 10.0, -66.33333333333333, 619.0, 1200.0, 42.8, 100.0)
	f.Fuzz(func(t *testing.T, occRet, occLim, aggRet, aggLim, share float64,
		count uint8, rate, upfront, loss1, loss2, loss3, loss4 float64) {
		sane := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return 0
			}
			return math.Min(v, 1e12)
		}
		l := Layer{
			OccRetention: sane(occRet), OccLimit: sane(occLim),
			AggRetention: sane(aggRet), AggLimit: sane(aggLim),
			Share: math.Min(sane(share), 1),
		}
		terms := ReinstatementTerms{
			Count:          int(count % 8),
			PremiumRate:    sane(rate),
			UpfrontPremium: sane(upfront),
		}
		pf := &Portfolio{Contracts: []Contract{{ID: 1, Layers: []Layer{l}}}}
		ft, err := FlattenTerms(pf)
		if err != nil {
			t.Skip() // the fuzzer found an invalid layer; not this fuzz target's concern
		}
		fy, err := ft.NewFlatYearStates([][]ReinstatementTerms{{terms}})
		if err != nil {
			t.Fatalf("valid terms rejected: %v", err)
		}
		ys := l.NewYearState(terms)

		capacity := math.Inf(1)
		if l.OccLimit > 0 {
			capacity = float64(terms.Count+1) * l.OccLimit
		}
		var total, sum float64
		for _, loss := range []float64{sane(loss1), sane(loss2), sane(loss3), sane(loss4)} {
			availBefore := ys.Remaining()
			balBefore := fy.ReinstBal[0]
			occRec := l.ApplyOccurrence(loss)
			r, p := ys.Occurrence(loss)
			fr, fp := fy.Occurrence(0, ft.ApplyOccurrence(0, loss))
			if fr != r || fp != p {
				t.Fatalf("flat (%g, %g) != scalar (%g, %g) for loss %g", fr, fp, r, p, loss)
			}
			if r < 0 || p < 0 {
				t.Fatalf("negative recovery %g or premium %g", r, p)
			}
			if r > occRec {
				t.Fatalf("recovery %g exceeds occurrence-term recovery %g", r, occRec)
			}
			if availBefore >= 0 && r > availBefore {
				t.Fatalf("recovery %g exceeds available capacity %g", r, availBefore)
			}
			// Reinstating what an occurrence consumed computes
			// (avail - r) + reinstate, which can land one ulp above the
			// original capacity when reinstate == r — in the scalar state
			// machine and the SoA columns identically — so the upper bound
			// holds to relative rounding, not exactly.
			if avail := ys.Remaining(); avail != -1 && (avail < 0 || avail > l.OccLimit*(1+1e-12)) {
				t.Fatalf("available %g outside [0, %g]", avail, l.OccLimit)
			}
			if terms.UpfrontPremium == 0 && p != 0 {
				t.Fatalf("premium %g with no upfront premium", p)
			}
			if bal := fy.ReinstBal[0]; bal < 0 || bal > balBefore {
				t.Fatalf("reinstatement balance went from %g to %g", balBefore, bal)
			}
			total += r
			sum += r
		}
		if total > capacity*(1+1e-12) {
			t.Fatalf("total recoveries %g exceed annual capacity %g", total, capacity)
		}
		annual := ys.CloseYear(sum)
		if fAnnual := fy.CloseYear(0, sum); fAnnual != annual {
			t.Fatalf("flat close %g != scalar close %g", fAnnual, annual)
		}
		if annual < 0 {
			t.Fatalf("negative annual payout %g", annual)
		}
		shareEff := l.Share
		if shareEff == 0 {
			shareEff = 1
		}
		if bound := math.Max(0, sum-l.AggRetention) * shareEff; annual > bound*(1+1e-12) {
			t.Fatalf("annual payout %g exceeds pre-limit bound %g", annual, bound)
		}
		if l.AggLimit > 0 && annual > l.AggLimit*shareEff*(1+1e-12) {
			t.Fatalf("annual payout %g exceeds aggregate limit bound", annual)
		}
	})
}
