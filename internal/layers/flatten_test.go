package layers

import (
	"math"
	"testing"
	"testing/quick"
)

// randomLayer maps four uniform draws to a layer covering the edge
// encodings: zero retentions, zero (unlimited) limits, zero
// (normalized) shares, and boundary-sized terms.
func randomLayer(u [4]float64) Layer {
	l := Layer{
		OccRetention: math.Trunc(u[0]*20) * 50,
		AggRetention: math.Trunc(u[1]*20) * 75,
		Share:        math.Trunc(u[3]*5) / 4, // 0, 0.25, ..., 1
	}
	if u[0] > 0.3 {
		l.OccLimit = 100 + u[1]*900
	}
	if u[2] > 0.3 {
		l.AggLimit = 200 + u[2]*1800
	}
	return l
}

// The flattening round-trip property: for random layer terms —
// including the 0-means-unlimited and 0-means-full-share sentinel
// encodings — the SoA columns must reproduce Layer.ApplyOccurrence
// and Layer.ApplyAggregate bit-for-bit on random losses, including
// losses pinned exactly at the retention and limit boundaries.
func TestFlatTermsRoundTripProperty(t *testing.T) {
	prop := func(u1, u2, u3, u4, lossSeed float64) bool {
		u := [4]float64{frac(u1), frac(u2), frac(u3), frac(u4)}
		l1, l2 := randomLayer(u), randomLayer([4]float64{u[1], u[2], u[3], u[0]})
		pf := &Portfolio{Contracts: []Contract{
			{ID: 1, Layers: []Layer{l1, l2}},
			{ID: 2, Layers: []Layer{l2}},
		}}
		ft, err := FlattenTerms(pf)
		if err != nil {
			return false
		}
		if ft.NumContracts() != 2 || ft.NumLayers() != 3 {
			return false
		}
		losses := []float64{
			0,
			frac(lossSeed) * 3000,
			l1.OccRetention,              // exactly at the attachment: no recovery
			l1.OccRetention + l1.OccLimit, // exactly at exhaustion
			l1.OccRetention + l1.OccLimit + 1,
			l2.AggRetention,
			l2.AggRetention + l2.AggLimit + 0.5,
			math.MaxFloat64 / 4,
		}
		all := []Layer{l1, l2, l2}
		for fl, l := range all {
			for _, loss := range losses {
				if got, want := ft.ApplyOccurrence(int32(fl), loss), l.ApplyOccurrence(loss); got != want {
					t.Logf("slot %d occ(%g): flat %g, layer %g (%+v)", fl, loss, got, want, l)
					return false
				}
				if got, want := ft.ApplyAggregate(int32(fl), loss), l.ApplyAggregate(loss); got != want {
					t.Logf("slot %d agg(%g): flat %g, layer %g (%+v)", fl, loss, got, want, l)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func frac(x float64) float64 {
	f := math.Abs(x - math.Trunc(x))
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0.5
	}
	return f
}

// Contract frames must partition the flat slots in portfolio order.
func TestFlattenTermsFrames(t *testing.T) {
	pf := &Portfolio{Contracts: []Contract{
		{ID: 1, Layers: []Layer{{OccLimit: 10}, {OccLimit: 20}, {OccLimit: 30}}},
		{ID: 2, Layers: []Layer{{OccLimit: 40}}},
		{ID: 3, Layers: []Layer{{OccLimit: 50}, {OccLimit: 60}}},
	}}
	ft, err := FlattenTerms(pf)
	if err != nil {
		t.Fatal(err)
	}
	wantFirst := []int32{0, 3, 4, 6}
	for i, w := range wantFirst {
		if ft.First[i] != w {
			t.Fatalf("First = %v, want %v", ft.First, wantFirst)
		}
	}
	wantLim := []float64{10, 20, 30, 40, 50, 60}
	for fl, w := range wantLim {
		if ft.OccLim[fl] != w {
			t.Fatalf("OccLim[%d] = %g, want %g", fl, ft.OccLim[fl], w)
		}
		// Unset aggregate limits must flatten to the +Inf sentinel and
		// unset shares to 1.
		if !math.IsInf(ft.AggLim[fl], 1) {
			t.Fatalf("AggLim[%d] = %g, want +Inf", fl, ft.AggLim[fl])
		}
		if ft.Share[fl] != 1 {
			t.Fatalf("Share[%d] = %g, want 1", fl, ft.Share[fl])
		}
	}
	if ft.SizeBytes() <= 0 {
		t.Fatal("SizeBytes not positive")
	}
}

// FlattenTerms must reject what Portfolio.Validate rejects — it is the
// term-extraction path the engines trust.
func TestFlattenTermsValidates(t *testing.T) {
	if _, err := FlattenTerms(nil); err == nil {
		t.Fatal("nil portfolio accepted")
	}
	if _, err := FlattenTerms(&Portfolio{}); err == nil {
		t.Fatal("empty portfolio accepted")
	}
	bad := &Portfolio{Contracts: []Contract{{ID: 1, Layers: []Layer{{OccRetention: -1}}}}}
	if _, err := FlattenTerms(bad); err == nil {
		t.Fatal("negative retention accepted")
	}
}
