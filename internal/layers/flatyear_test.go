package layers

import (
	"math"
	"testing"
	"testing/quick"
)

// randomTerms maps three uniform draws to reinstatement terms covering
// the edge encodings: zero counts (exhaust after the initial limit),
// zero premium rates, and zero upfront premiums (no premium accrual).
func randomTerms(u [3]float64) ReinstatementTerms {
	t := ReinstatementTerms{Count: int(math.Trunc(u[0] * 4))}
	if u[1] > 0.25 {
		t.PremiumRate = math.Trunc(u[1]*8) / 4 // 0, 0.25, ..., 2
	}
	if u[2] > 0.25 {
		t.UpfrontPremium = math.Trunc(u[2]*10) * 100
	}
	return t
}

// The year-state flattening round trip: for random layers and terms —
// including unlimited layers and premium-free terms — a fresh
// FlatYearStates must hold exactly the state NewYearState starts
// from, and every occurrence processed through the SoA columns must
// return bit-identical (recovery, premium) to the scalar YearState
// walking the same loss sequence, with the live columns tracking the
// scalar state exactly. This is the differential property that pins
// the flat stateful kernel's arithmetic.
func TestFlatYearStatesDifferentialProperty(t *testing.T) {
	prop := func(u1, u2, u3, u4, t1, t2, t3, l1, l2, l3, l4, l5 float64) bool {
		u := [4]float64{frac(u1), frac(u2), frac(u3), frac(u4)}
		la, lb := randomLayer(u), randomLayer([4]float64{u[2], u[3], u[0], u[1]})
		ta := randomTerms([3]float64{frac(t1), frac(t2), frac(t3)})
		tb := randomTerms([3]float64{frac(t3), frac(t1), frac(t2)})
		pf := &Portfolio{Contracts: []Contract{
			{ID: 1, Layers: []Layer{la, lb}},
			{ID: 2, Layers: []Layer{lb}},
		}}
		ft, err := FlattenTerms(pf)
		if err != nil {
			return false
		}
		terms := [][]ReinstatementTerms{{ta, tb}, {tb}}
		fy, err := ft.NewFlatYearStates(terms)
		if err != nil {
			t.Logf("NewFlatYearStates: %v", err)
			return false
		}
		scalars := []YearState{
			la.NewYearState(ta), lb.NewYearState(tb), lb.NewYearState(tb),
		}
		// The loss sequence replays several magnitudes, including losses
		// pinned at attachment and exhaustion points.
		losses := []float64{
			frac(l1) * 3000, la.OccRetention, la.OccRetention + la.OccLimit,
			frac(l2) * 500, frac(l3) * 10000, 0, frac(l4) * 2000,
			lb.OccRetention + lb.OccLimit + 1, frac(l5) * 800,
		}
		var sums [3]float64
		for _, loss := range losses {
			for fl := range scalars {
				ys := &scalars[fl]
				wantR, wantP := ys.Occurrence(loss)
				gotR, gotP := fy.Occurrence(int32(fl), ft.ApplyOccurrence(int32(fl), loss))
				if gotR != wantR || gotP != wantP {
					t.Logf("slot %d loss %g: flat (%g, %g), scalar (%g, %g)", fl, loss, gotR, gotP, wantR, wantP)
					return false
				}
				if fy.Remaining(int32(fl)) != ys.Remaining() {
					t.Logf("slot %d: remaining %g vs %g", fl, fy.Remaining(int32(fl)), ys.Remaining())
					return false
				}
				if fy.Exhausted(int32(fl)) != ys.Exhausted() {
					t.Logf("slot %d: exhausted mismatch", fl)
					return false
				}
				// Invariants: recovery non-negative and premium non-negative;
				// limited layers never go below zero available or above the
				// occurrence limit.
				if gotR < 0 || gotP < 0 {
					return false
				}
				if avail := fy.Available[int32(fl)]; avail >= 0 {
					if avail > fy.Terms().OccLim[fl]+1e-9 {
						return false
					}
				}
				sums[fl] += gotR
			}
		}
		for fl := range scalars {
			want := scalars[fl].CloseYear(sums[fl])
			got := fy.CloseYear(int32(fl), sums[fl])
			if got != want {
				t.Logf("slot %d close(%g): flat %g, scalar %g", fl, sums[fl], got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Reset must restore the template bit-exactly — starting a new trial
// year by bulk copy is the whole point of the layout.
func TestFlatYearStatesResetByCopy(t *testing.T) {
	l := Layer{OccRetention: 100, OccLimit: 1000, Share: 1}
	pf := &Portfolio{Contracts: []Contract{{ID: 1, Layers: []Layer{l, l}}}}
	ft, err := FlattenTerms(pf)
	if err != nil {
		t.Fatal(err)
	}
	fy, err := ft.NewFlatYearStates([][]ReinstatementTerms{{
		{Count: 1, PremiumRate: 1, UpfrontPremium: 50},
		{Count: 2, PremiumRate: 0.5, UpfrontPremium: 80},
	}})
	if err != nil {
		t.Fatal(err)
	}
	fresh := []struct{ avail, bal float64 }{{1000, 1000}, {1000, 2000}}
	check := func(when string) {
		t.Helper()
		for fl, w := range fresh {
			if fy.Available[fl] != w.avail || fy.ReinstBal[fl] != w.bal {
				t.Fatalf("%s: slot %d state (%g, %g), want (%g, %g)",
					when, fl, fy.Available[fl], fy.ReinstBal[fl], w.avail, w.bal)
			}
		}
	}
	check("fresh")
	// Burn through capacity, then reset.
	for i := 0; i < 5; i++ {
		fy.Occurrence(0, ft.ApplyOccurrence(0, 1500))
		fy.Occurrence(1, ft.ApplyOccurrence(1, 1500))
	}
	if !fy.Exhausted(0) {
		t.Fatal("slot 0 should be exhausted after burning limit + reinstatement")
	}
	fy.Reset()
	check("after reset")

	// Clones share the template but not the live state.
	c := fy.Clone()
	c.Occurrence(0, 800)
	if fy.Available[0] != 1000 {
		t.Fatal("clone occurrence mutated the parent's live columns")
	}
	c.Reset()
	check("clone after reset")
	if fy.NumLayers() != 2 || fy.SizeBytes() <= 0 {
		t.Fatal("bad accessor values")
	}
}

// Shape and negativity validation mirrors the stateful engine's
// input checks.
func TestFlatYearStatesValidation(t *testing.T) {
	l := Layer{OccLimit: 100}
	pf := &Portfolio{Contracts: []Contract{{ID: 1, Layers: []Layer{l}}, {ID: 2, Layers: []Layer{l, l}}}}
	ft, err := FlattenTerms(pf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ft.NewFlatYearStates(nil); err == nil {
		t.Fatal("missing term rows accepted")
	}
	if _, err := ft.NewFlatYearStates([][]ReinstatementTerms{{{}}, {{}}}); err == nil {
		t.Fatal("mis-shaped term row accepted")
	}
	if _, err := ft.NewFlatYearStates([][]ReinstatementTerms{{{}}, {{Count: -1}, {}}}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := ft.NewFlatYearStates([][]ReinstatementTerms{{{}}, {{}, {}}}); err != nil {
		t.Fatalf("valid terms rejected: %v", err)
	}
}

// An unlimited layer's slot must degrade to unlimited capacity — the
// -1 sentinel — exactly as the scalar state does, and never charge
// premium.
func TestFlatYearStatesUnlimitedLayer(t *testing.T) {
	l := Layer{OccRetention: 50} // no occurrence limit
	pf := &Portfolio{Contracts: []Contract{{ID: 1, Layers: []Layer{l}}}}
	ft, err := FlattenTerms(pf)
	if err != nil {
		t.Fatal(err)
	}
	fy, err := ft.NewFlatYearStates([][]ReinstatementTerms{{{Count: 3, PremiumRate: 1, UpfrontPremium: 100}}})
	if err != nil {
		t.Fatal(err)
	}
	if fy.Remaining(0) != -1 {
		t.Fatalf("unlimited slot remaining = %g, want -1", fy.Remaining(0))
	}
	ys := l.NewYearState(ReinstatementTerms{Count: 3, PremiumRate: 1, UpfrontPremium: 100})
	for _, loss := range []float64{0, 49, 51, 1e9} {
		wantR, wantP := ys.Occurrence(loss)
		gotR, gotP := fy.Occurrence(0, ft.ApplyOccurrence(0, loss))
		if gotR != wantR || gotP != wantP {
			t.Fatalf("loss %g: flat (%g, %g), scalar (%g, %g)", loss, gotR, gotP, wantR, wantP)
		}
		if gotP != 0 {
			t.Fatalf("unlimited layer charged premium %g", gotP)
		}
	}
}
