package warehouse

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/ylt"
)

func testInput(nTables, nTrials int) *Input {
	in := &Input{}
	regions := []string{"coastal", "interior"}
	lobs := []string{"property", "marine"}
	st := rng.New(42)
	for i := 0; i < nTables; i++ {
		t := ylt.New("c", nTrials)
		for j := range t.Agg {
			t.Agg[j] = st.Pareto(1000, 2.5)
			t.OccMax[j] = t.Agg[j] * 0.8
		}
		in.Tables = append(in.Tables, t)
		in.Attrs = append(in.Attrs, map[string]string{
			"region": regions[i%2],
			"lob":    lobs[(i/2)%2],
		})
	}
	return in
}

func TestBuildAndQuery(t *testing.T) {
	in := testInput(8, 2000)
	cube, err := Build(context.Background(), in, []string{"region", "lob"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Groups: region (2) + lob (2) + region×lob (4) = 8 cells.
	if cube.Cells() != 8 {
		t.Fatalf("cells = %d, want 8 (%v)", cube.Cells(), cube.Keys())
	}
	cell, err := cube.Query(map[string]string{"region": "coastal"})
	if err != nil {
		t.Fatal(err)
	}
	if cell.Members != 4 {
		t.Fatalf("coastal members = %d", cell.Members)
	}
	if cell.Summary == nil || cell.Summary.AAL <= 0 {
		t.Fatal("summary not precomputed")
	}
	pair, err := cube.Query(map[string]string{"region": "coastal", "lob": "marine"})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Members != 2 {
		t.Fatalf("coastal×marine members = %d", pair.Members)
	}
}

func TestCellMatchesDirectCombination(t *testing.T) {
	in := testInput(4, 1000)
	cube, err := Build(context.Background(), in, []string{"region"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := cube.Query(map[string]string{"region": "interior"})
	if err != nil {
		t.Fatal(err)
	}
	// Direct combination of the interior tables (indices 1, 3).
	want, err := ylt.Combine("direct", in.Tables[1], in.Tables[3])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cell.Table.Mean()-want.Mean()) > 1e-9*(1+want.Mean()) {
		t.Fatalf("cube AAL %v != direct %v", cell.Table.Mean(), want.Mean())
	}
}

func TestQueryErrors(t *testing.T) {
	in := testInput(4, 100)
	cube, err := Build(context.Background(), in, []string{"region"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cube.Query(map[string]string{"region": "atlantis"}); !errors.Is(err, ErrNoCell) {
		t.Fatalf("err = %v", err)
	}
	if _, err := cube.Query(map[string]string{"zone": "x"}); !errors.Is(err, ErrNoCell) {
		t.Fatal("non-cube dimension should error")
	}
	if _, err := cube.Query(nil); err == nil {
		t.Fatal("empty filter should error")
	}
}

func TestBuildValidation(t *testing.T) {
	in := testInput(2, 100)
	if _, err := Build(context.Background(), in, nil, 1); err == nil {
		t.Fatal("no dimensions should error")
	}
	if _, err := Build(context.Background(), in, []string{"a", "b", "c", "d", "e", "f", "g"}, 1); err == nil {
		t.Fatal("too many dimensions should error")
	}
	if _, err := Build(context.Background(), in, []string{"nonexistent"}, 1); err == nil {
		t.Fatal("missing attribute should error")
	}
	bad := &Input{Tables: in.Tables, Attrs: in.Attrs[:1]}
	if _, err := Build(context.Background(), bad, []string{"region"}, 1); err == nil {
		t.Fatal("misaligned attrs should error")
	}
	if _, err := Build(context.Background(), &Input{}, []string{"region"}, 1); err == nil {
		t.Fatal("empty input should error")
	}
}

// TestKeyCollisionRegression pins the escaped key scheme: an
// attribute value containing the separator characters must not
// collide with the key of a different dimension combination. Before
// escaping, {"region": "a,lob=b"} under the {region} subset rendered
// the same key as {"region": "a", "lob": "b"} under {region, lob}.
func TestKeyCollisionRegression(t *testing.T) {
	n := 50
	mk := func(v float64) *ylt.Table {
		tbl := ylt.New("c", n)
		for j := range tbl.Agg {
			tbl.Agg[j] = v
			tbl.OccMax[j] = v
		}
		return tbl
	}
	in := &Input{
		Tables: []*ylt.Table{mk(1), mk(100)},
		Attrs: []map[string]string{
			{"region": "a", "lob": "b"},
			{"region": "a,lob=b", "lob": "z"},
		},
	}
	cube, err := Build(context.Background(), in, []string{"region", "lob"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// {region: a, lob: b} must hold only table 0...
	pair, err := cube.Query(map[string]string{"region": "a", "lob": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if pair.Members != 1 || pair.Table.Agg[0] != 1 {
		t.Fatalf("collided cell: members=%d agg0=%v", pair.Members, pair.Table.Agg[0])
	}
	// ...and the hostile single-dimension value must resolve to its
	// own distinct cell holding only table 1.
	hostile, err := cube.Query(map[string]string{"region": "a,lob=b"})
	if err != nil {
		t.Fatal(err)
	}
	if hostile.Members != 1 || hostile.Table.Agg[0] != 100 {
		t.Fatalf("hostile cell: members=%d agg0=%v", hostile.Members, hostile.Table.Agg[0])
	}
	// Values differing only by escape-looking text stay distinct too.
	in2 := &Input{
		Tables: []*ylt.Table{mk(1), mk(2)},
		Attrs: []map[string]string{
			{"region": "x%2C"},
			{"region": "x,"},
		},
	}
	cube2, err := Build(context.Background(), in2, []string{"region"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cube2.Cells() != 2 {
		t.Fatalf("escape-prefix values collided: %v", cube2.Keys())
	}
}

// TestDuplicateDimsRejected pins the duplicate-dimension bugfix:
// {"region","region"} used to enumerate the region subset twice and
// double-count every member.
func TestDuplicateDimsRejected(t *testing.T) {
	in := testInput(4, 50)
	if _, err := Build(context.Background(), in, []string{"region", "region"}, 1); err == nil {
		t.Fatal("duplicate dims should be rejected by Build")
	}
	if err := in.Validate([]string{"region", "lob", "region"}); err == nil {
		t.Fatal("duplicate dims should be rejected by Validate")
	}
	if err := in.Validate([]string{"region", "lob"}); err != nil {
		t.Fatalf("clean dims rejected: %v", err)
	}
}

func TestBuildTrialMismatch(t *testing.T) {
	in := testInput(4, 100)
	// Tables 0 and 2 share region "coastal"; shortening table 2 makes
	// that group's combination fail.
	in.Tables[2] = ylt.New("short", 50)
	if _, err := Build(context.Background(), in, []string{"region"}, 1); err == nil {
		t.Fatal("trial mismatch should surface from Combine")
	}
}
