package warehouse

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/ylt"
)

// testBook builds an occurrence-bearing per-contract book with three
// attribute dimensions, for the equivalence matrix.
func testBook(nc, n int) ([]*ylt.Table, []map[string]string) {
	st := rng.New(99)
	tables := make([]*ylt.Table, nc)
	for i := range tables {
		t := ylt.New("c", n)
		for j := range t.Agg {
			t.Agg[j] = st.Pareto(1000, 2.5)
			t.OccMax[j] = t.Agg[j] * 0.8
		}
		tables[i] = t
	}
	return tables, DefaultAttrs(nc)
}

// ingestAll feeds the full trial space to a builder in batches of the
// given size, in parallel across the given worker count — the same
// disjoint-range delivery the pipeline performs.
func ingestAll(t *testing.T, b *Builder, tables []*ylt.Table, batch, workers int) {
	t.Helper()
	n := b.NumTrials()
	ranges := stream.Chunks(n, batch)
	err := stream.ForEach(context.Background(), len(ranges), workers, func(_ context.Context, i int) error {
		r := ranges[i]
		agg := make([][]float64, len(tables))
		occ := make([][]float64, len(tables))
		for ci, tbl := range tables {
			agg[ci] = tbl.Agg[r.Lo:r.Hi]
			occ[ci] = tbl.OccMax[r.Lo:r.Hi]
		}
		return b.IngestBatch(r.Lo, agg, occ)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// requireCubesIdentical asserts bit-identical cells: same keys, same
// member counts, Float64bits-equal columns, equal summaries.
func requireCubesIdentical(t *testing.T, got, want *Cube) {
	t.Helper()
	if !reflect.DeepEqual(got.Keys(), want.Keys()) {
		t.Fatalf("cell keys differ: %v vs %v", got.Keys(), want.Keys())
	}
	for _, key := range want.Keys() {
		g, w := got.cells[key], want.cells[key]
		if g.Members != w.Members {
			t.Fatalf("%s: members %d vs %d", key, g.Members, w.Members)
		}
		if len(g.Table.Agg) != len(w.Table.Agg) || len(g.Table.OccMax) != len(w.Table.OccMax) {
			t.Fatalf("%s: column shapes differ", key)
		}
		for i := range w.Table.Agg {
			if math.Float64bits(g.Table.Agg[i]) != math.Float64bits(w.Table.Agg[i]) {
				t.Fatalf("%s: Agg[%d] = %x vs %x", key, i,
					math.Float64bits(g.Table.Agg[i]), math.Float64bits(w.Table.Agg[i]))
			}
			if math.Float64bits(g.Table.OccMax[i]) != math.Float64bits(w.Table.OccMax[i]) {
				t.Fatalf("%s: OccMax[%d] = %x vs %x", key, i,
					math.Float64bits(g.Table.OccMax[i]), math.Float64bits(w.Table.OccMax[i]))
			}
		}
		if !reflect.DeepEqual(g.Summary, w.Summary) {
			t.Fatalf("%s: summaries differ: %+v vs %+v", key, g.Summary, w.Summary)
		}
	}
}

// TestIncrementalMatchesBatch is the equivalence suite: the
// incremental Builder cube is bit-identical to batch Build across
// dimension counts, worker counts, and batch sizes that do not divide
// the trial space.
func TestIncrementalMatchesBatch(t *testing.T) {
	const n = 1000
	tables, attrs := testBook(8, n)
	allDims := []string{"region", "lob", "peril"}
	for nd := 1; nd <= len(allDims); nd++ {
		dims := allDims[:nd]
		batchRef, err := Build(context.Background(), &Input{Tables: tables, Attrs: attrs}, dims, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			for _, batch := range []int{7, 997, n} {
				b, err := NewBuilder(dims, attrs, n, workers)
				if err != nil {
					t.Fatal(err)
				}
				ingestAll(t, b, tables, batch, workers)
				cube, err := b.Finalize(context.Background(), tables)
				if err != nil {
					t.Fatal(err)
				}
				if b.FoldDuration() <= 0 {
					t.Fatal("fold duration not accounted")
				}
				requireCubesIdentical(t, cube, batchRef)
			}
		}
	}
}

// TestReplaceMatchesRebuild pins delta updates: after Replace, the
// cube is bit-identical to a batch rebuild with the new table, and
// untouched cells keep their original materializations.
func TestReplaceMatchesRebuild(t *testing.T) {
	const n = 600
	tables, attrs := testBook(9, n)
	dims := []string{"region", "lob"}
	cube, err := Build(context.Background(), &Input{Tables: tables, Attrs: attrs}, dims, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Re-price contract 2: scale its losses.
	const target = 2
	old := cube.Contract(target)
	repriced := ylt.New(old.Name, n)
	for i := range old.Agg {
		repriced.Agg[i] = old.Agg[i] * 1.17
		repriced.OccMax[i] = old.OccMax[i] * 1.17
	}

	// Remember an untouched cell's materialization (a region that
	// contract 2 does not belong to).
	otherRegion := map[string]string{"region": attrs[(target+1)%len(attrs)]["region"]}
	if otherRegion["region"] == attrs[target]["region"] {
		otherRegion["region"] = attrs[(target+2)%len(attrs)]["region"]
	}
	before, err := cube.Query(otherRegion)
	if err != nil {
		t.Fatal(err)
	}

	touched, err := cube.Replace(context.Background(), target, old, repriced)
	if err != nil {
		t.Fatal(err)
	}
	if touched <= 0 || touched >= cube.Cells() {
		t.Fatalf("touched %d of %d cells", touched, cube.Cells())
	}

	after, err := cube.Query(otherRegion)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatal("untouched cell was rematerialized")
	}

	newTables := append([]*ylt.Table(nil), tables...)
	newTables[target] = repriced
	rebuilt, err := Build(context.Background(), &Input{Tables: newTables, Attrs: attrs}, dims, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireCubesIdentical(t, cube, rebuilt)
}

func TestReplaceValidation(t *testing.T) {
	const n = 100
	tables, attrs := testBook(4, n)
	dims := []string{"region"}
	cube, err := Build(context.Background(), &Input{Tables: tables, Attrs: attrs}, dims, 2)
	if err != nil {
		t.Fatal(err)
	}
	fresh := ylt.New("x", n)

	if _, err := cube.Replace(context.Background(), -1, tables[0], fresh); err == nil {
		t.Fatal("out-of-range contract should error")
	}
	if _, err := cube.Replace(context.Background(), 0, tables[1], fresh); !errors.Is(err, ErrStaleTable) {
		t.Fatalf("stale old table: err = %v", err)
	}
	if _, err := cube.Replace(context.Background(), 0, tables[0], ylt.New("x", n+1)); !errors.Is(err, ylt.ErrTrialMismatch) {
		t.Fatalf("trial mismatch: err = %v", err)
	}
	if _, err := cube.Replace(context.Background(), 0, tables[0], ylt.NewAggOnly("x", n)); !errors.Is(err, ylt.ErrOccurrenceMismatch) {
		t.Fatalf("occurrence mismatch: err = %v", err)
	}

	// A bitwise-equal copy (not the same pointer) is an acceptable
	// oldYLT — callers may hold a deserialized view.
	copyOld := ylt.New(tables[0].Name, n)
	copy(copyOld.Agg, tables[0].Agg)
	copy(copyOld.OccMax, tables[0].OccMax)
	if _, err := cube.Replace(context.Background(), 0, copyOld, fresh); err != nil {
		t.Fatalf("bitwise-equal old table rejected: %v", err)
	}

	// A query-only cube (no registry) cannot Replace or RecomputeCell.
	b, err := NewBuilder(dims, attrs, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, b, tables, n, 1)
	qonly, err := b.Finalize(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := qonly.Replace(context.Background(), 0, tables[0], fresh); !errors.Is(err, ErrNoRegistry) {
		t.Fatalf("query-only Replace: err = %v", err)
	}
	if _, err := qonly.RecomputeCell(map[string]string{"region": attrs[0]["region"]}); !errors.Is(err, ErrNoRegistry) {
		t.Fatalf("query-only RecomputeCell: err = %v", err)
	}
}

func TestRecomputeCellMatchesPrecomputed(t *testing.T) {
	tables, attrs := testBook(6, 400)
	cube, err := Build(context.Background(), &Input{Tables: tables, Attrs: attrs}, []string{"region", "lob"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	filter := map[string]string{"region": attrs[0]["region"]}
	cell, err := cube.Query(filter)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cube.RecomputeCell(filter)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cell.Summary, direct) {
		t.Fatalf("precomputed %+v != recomputed %+v", cell.Summary, direct)
	}
	if _, err := cube.RecomputeCell(map[string]string{"region": "atlantis"}); !errors.Is(err, ErrNoCell) {
		t.Fatalf("missing cell: err = %v", err)
	}
}

func TestBuilderValidation(t *testing.T) {
	tables, attrs := testBook(3, 50)
	if _, err := NewBuilder([]string{"region", "region"}, attrs, 50, 1); err == nil {
		t.Fatal("duplicate dims should error")
	}
	if _, err := NewBuilder([]string{"region"}, attrs, 0, 1); err == nil {
		t.Fatal("zero trials should error")
	}
	if _, err := NewBuilder([]string{"region"}, nil, 50, 1); err == nil {
		t.Fatal("no attrs should error")
	}
	if _, err := NewBuilder([]string{"zone"}, attrs, 50, 1); err == nil {
		t.Fatal("missing dimension should error")
	}

	b, err := NewBuilder([]string{"region"}, attrs, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	mkRows := func(k int) ([][]float64, [][]float64) {
		agg := make([][]float64, len(tables))
		occ := make([][]float64, len(tables))
		for ci := range tables {
			agg[ci] = make([]float64, k)
			occ[ci] = make([]float64, k)
		}
		return agg, occ
	}
	agg, occ := mkRows(10)
	if err := b.IngestBatch(45, agg, occ); err == nil {
		t.Fatal("out-of-range batch should error")
	}
	if err := b.IngestBatch(0, agg[:1], occ); err == nil {
		t.Fatal("short contract rows should error")
	}
	// The latched error must surface from Finalize even if later
	// ingests are clean.
	if _, err := b.Finalize(context.Background(), nil); err == nil {
		t.Fatal("Finalize should report latched ingest error")
	}

	// Incomplete coverage: only half the trial space folded.
	b2, err := NewBuilder([]string{"region"}, attrs, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	agg, occ = mkRows(25)
	if err := b2.IngestBatch(0, agg, occ); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Finalize(context.Background(), tables); err == nil {
		t.Fatal("partial coverage should error")
	}

	// Ingest after Finalize is rejected.
	b3, err := NewBuilder([]string{"region"}, attrs, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, b3, tables, 50, 1)
	if _, err := b3.Finalize(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	agg, occ = mkRows(10)
	if err := b3.IngestBatch(0, agg, occ); err == nil {
		t.Fatal("ingest after Finalize should error")
	}

	// Registry misalignment.
	b4, err := NewBuilder([]string{"region"}, attrs, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	ingestAll(t, b4, tables, 50, 1)
	if _, err := b4.Finalize(context.Background(), tables[:2]); err == nil {
		t.Fatal("short registry should error")
	}
}
