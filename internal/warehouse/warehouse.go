// Package warehouse applies the paper's stage-3 remedy for query-time
// cost: "Owing to the large size of data pre-computation techniques
// such as in parallel data warehousing can be applied" (§II). It
// materializes a data cube over per-contract Year-Loss Tables: every
// group-by over the configured dimensions is combined and summarized
// once, in parallel, so that analyst queries become dictionary
// lookups instead of trial-level scans.
package warehouse

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/ylt"
)

// Input couples per-contract YLTs with their dimensional attributes
// (e.g. region, line of business, peril bucket).
type Input struct {
	Tables []*ylt.Table
	// Attrs[i] maps dimension name -> value for Tables[i].
	Attrs []map[string]string
}

// Validate checks alignment and dimension coverage.
func (in *Input) Validate(dims []string) error {
	if len(in.Tables) == 0 {
		return errors.New("warehouse: no tables")
	}
	if len(in.Tables) != len(in.Attrs) {
		return fmt.Errorf("warehouse: %d tables vs %d attr sets", len(in.Tables), len(in.Attrs))
	}
	for i, a := range in.Attrs {
		for _, d := range dims {
			if _, ok := a[d]; !ok {
				return fmt.Errorf("warehouse: table %d missing dimension %q", i, d)
			}
		}
	}
	return nil
}

// Cell is one materialized group: the combined YLT and its
// pre-computed risk summary.
type Cell struct {
	Key     string
	Members int
	Table   *ylt.Table
	Summary *metrics.Summary
}

// Cube is the materialized set of group-bys over the dimensions.
type Cube struct {
	dims  []string
	cells map[string]*Cell
}

// groupKey renders a canonical key for a subset of dimensions.
func groupKey(subset []string, attrs map[string]string) string {
	parts := make([]string, len(subset))
	for i, d := range subset {
		parts[i] = d + "=" + attrs[d]
	}
	return strings.Join(parts, ",")
}

// subsets returns every non-empty subset of dims (dims must be small;
// the cube is 2^d groups-by).
func subsets(dims []string) [][]string {
	var out [][]string
	n := len(dims)
	for mask := 1; mask < 1<<n; mask++ {
		var s []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, dims[i])
			}
		}
		out = append(out, s)
	}
	return out
}

// Build materializes the cube: for every subset of dims and every
// value combination, the member YLTs are combined and summarized.
// Groups are processed in parallel (the "parallel data warehousing"
// of the paper).
func Build(ctx context.Context, in *Input, dims []string, workers int) (*Cube, error) {
	if len(dims) == 0 {
		return nil, errors.New("warehouse: no dimensions")
	}
	if len(dims) > 6 {
		return nil, fmt.Errorf("warehouse: %d dimensions would materialize %d group-bys", len(dims), 1<<len(dims))
	}
	if err := in.Validate(dims); err != nil {
		return nil, err
	}

	// Partition tables into groups for every dimension subset.
	type group struct {
		key     string
		members []*ylt.Table
	}
	var groups []group
	index := map[string]int{}
	for _, subset := range subsets(dims) {
		for i, tbl := range in.Tables {
			key := groupKey(subset, in.Attrs[i])
			gi, ok := index[key]
			if !ok {
				gi = len(groups)
				index[key] = gi
				groups = append(groups, group{key: key})
			}
			groups[gi].members = append(groups[gi].members, tbl)
		}
	}

	cube := &Cube{dims: append([]string(nil), dims...), cells: make(map[string]*Cell, len(groups))}
	var mu sync.Mutex
	err := stream.ForEach(ctx, len(groups), workers, func(_ context.Context, gi int) error {
		g := groups[gi]
		combined, err := ylt.Combine(g.key, g.members...)
		if err != nil {
			return fmt.Errorf("warehouse: combining %q: %w", g.key, err)
		}
		summary, err := metrics.Summarize(combined)
		if err != nil {
			return fmt.Errorf("warehouse: summarizing %q: %w", g.key, err)
		}
		cell := &Cell{Key: g.key, Members: len(g.members), Table: combined, Summary: summary}
		mu.Lock()
		cube.cells[g.key] = cell
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cube, nil
}

// ErrNoCell is returned by Query when no materialized group matches.
var ErrNoCell = errors.New("warehouse: no such cell")

// Query returns the pre-computed cell for the given dimension filter,
// e.g. {"region": "CoastalPeak", "lob": "property"}. All filter keys
// must be cube dimensions.
func (c *Cube) Query(filter map[string]string) (*Cell, error) {
	if len(filter) == 0 {
		return nil, errors.New("warehouse: empty filter")
	}
	subset := make([]string, 0, len(filter))
	for _, d := range c.dims {
		if _, ok := filter[d]; ok {
			subset = append(subset, d)
		}
	}
	if len(subset) != len(filter) {
		return nil, fmt.Errorf("%w: filter uses non-cube dimensions", ErrNoCell)
	}
	key := groupKey(subset, filter)
	cell, ok := c.cells[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoCell, key)
	}
	return cell, nil
}

// Cells returns the number of materialized groups.
func (c *Cube) Cells() int { return len(c.cells) }

// Keys returns all materialized group keys, sorted (for reports).
func (c *Cube) Keys() []string {
	keys := make([]string, 0, len(c.cells))
	for k := range c.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
