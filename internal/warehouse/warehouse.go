// Package warehouse applies the paper's stage-3 remedy for query-time
// cost: "Owing to the large size of data pre-computation techniques
// such as in parallel data warehousing can be applied" (§II). It
// materializes a data cube over per-contract Year-Loss Tables: every
// group-by over the configured dimensions is combined and summarized
// once, in parallel, so that analyst queries become dictionary
// lookups instead of trial-level scans.
//
// The cube can be built two ways with bit-identical results: Build
// combines fully-resident per-contract YLTs in one pass, and Builder
// folds streamed per-contract trial batches into running cell columns
// as stage 2 produces them (bounded memory). A built cube retains a
// per-contract table registry — one table per contract, linear in the
// book — so Replace can re-price a single contract by re-folding only
// the cells it belongs to instead of rebuilding the whole cube.
package warehouse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/ylt"
)

// Input couples per-contract YLTs with their dimensional attributes
// (e.g. region, line of business, peril bucket).
type Input struct {
	Tables []*ylt.Table
	// Attrs[i] maps dimension name -> value for Tables[i].
	Attrs []map[string]string
}

// validateDims checks the dimension list itself: non-empty, bounded
// (the cube is 2^d group-bys), and free of duplicates — a repeated
// name would enumerate the same logical subset more than once and
// double-count its members.
func validateDims(dims []string) error {
	if len(dims) == 0 {
		return errors.New("warehouse: no dimensions")
	}
	if len(dims) > 6 {
		return fmt.Errorf("warehouse: %d dimensions would materialize %d group-bys", len(dims), 1<<len(dims))
	}
	seen := make(map[string]bool, len(dims))
	for _, d := range dims {
		if seen[d] {
			return fmt.Errorf("warehouse: duplicate dimension %q", d)
		}
		seen[d] = true
	}
	return nil
}

// validateAttrs checks that every attribute set covers every
// dimension.
func validateAttrs(attrs []map[string]string, dims []string) error {
	for i, a := range attrs {
		for _, d := range dims {
			if _, ok := a[d]; !ok {
				return fmt.Errorf("warehouse: table %d missing dimension %q", i, d)
			}
		}
	}
	return nil
}

// Validate checks the dimension list, alignment, and dimension
// coverage.
func (in *Input) Validate(dims []string) error {
	if err := validateDims(dims); err != nil {
		return err
	}
	if len(in.Tables) == 0 {
		return errors.New("warehouse: no tables")
	}
	if len(in.Tables) != len(in.Attrs) {
		return fmt.Errorf("warehouse: %d tables vs %d attr sets", len(in.Tables), len(in.Attrs))
	}
	return validateAttrs(in.Attrs, dims)
}

// Cell is one materialized group: the combined YLT and its
// pre-computed risk summary.
type Cell struct {
	Key     string
	Members int
	Table   *ylt.Table
	Summary *metrics.Summary
}

// Cube is the materialized set of group-bys over the dimensions. When
// built with a table registry (Build, or Builder.Finalize given the
// per-contract tables) it also supports Replace and RecomputeCell.
type Cube struct {
	dims  []string
	cells map[string]*Cell
	// members[key] lists the cell's member contract indices in
	// ascending order — the canonical fold order shared by Build,
	// Builder, and Replace, which is what makes the three
	// bit-identical.
	members map[string][]int
	// tables is the per-contract YLT registry backing delta updates:
	// one table per contract (linear in the book), vs duplicating
	// members per cell (each contract appears in 2^dims-ish cells).
	// Nil for query-only cubes.
	tables  []*ylt.Table
	workers int
}

// keyEscaper makes groupKey injective: the joiners (`,`, `=`) and the
// escape prefix itself are percent-encoded in a single pass, so
// attribute values containing separator characters cannot collide
// with or be parsed as other dimension combinations.
var keyEscaper = strings.NewReplacer("%", "%25", "=", "%3D", ",", "%2C")

// groupKey renders a canonical key for a subset of dimensions.
func groupKey(subset []string, attrs map[string]string) string {
	parts := make([]string, len(subset))
	for i, d := range subset {
		parts[i] = keyEscaper.Replace(d) + "=" + keyEscaper.Replace(attrs[d])
	}
	return strings.Join(parts, ",")
}

// subsets returns every non-empty subset of dims (dims must be small;
// the cube is 2^d groups-by).
func subsets(dims []string) [][]string {
	var out [][]string
	n := len(dims)
	for mask := 1; mask < 1<<n; mask++ {
		var s []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, dims[i])
			}
		}
		out = append(out, s)
	}
	return out
}

// cellMembers enumerates every cell key and its member contract
// indices (ascending) for the given dimensions and attribute sets.
// Both Build and Builder derive their cell structure from this one
// enumeration, so member order — and therefore fold order — agrees.
func cellMembers(dims []string, attrs []map[string]string) (keys []string, members map[string][]int) {
	members = make(map[string][]int)
	for _, subset := range subsets(dims) {
		for i, a := range attrs {
			key := groupKey(subset, a)
			if _, ok := members[key]; !ok {
				keys = append(keys, key)
			}
			members[key] = append(members[key], i)
		}
	}
	return keys, members
}

// combineCell folds the registry tables of one cell's members, in
// member order, and summarizes the result. Replace and RecomputeCell
// share this with the batch Build path so a re-fold is bit-identical
// to the original build.
func (c *Cube) combineCell(key string) (*Cell, error) {
	idxs := c.members[key]
	tbls := make([]*ylt.Table, len(idxs))
	for i, ci := range idxs {
		tbls[i] = c.tables[ci]
	}
	combined, err := ylt.Combine(key, tbls...)
	if err != nil {
		return nil, fmt.Errorf("warehouse: combining %q: %w", key, err)
	}
	summary, err := metrics.Summarize(combined)
	if err != nil {
		return nil, fmt.Errorf("warehouse: summarizing %q: %w", key, err)
	}
	return &Cell{Key: key, Members: len(idxs), Table: combined, Summary: summary}, nil
}

// Build materializes the cube: for every subset of dims and every
// value combination, the member YLTs are combined and summarized.
// Groups are processed in parallel (the "parallel data warehousing"
// of the paper). The input tables are retained as the cube's delta
// registry (see Replace).
func Build(ctx context.Context, in *Input, dims []string, workers int) (*Cube, error) {
	if err := in.Validate(dims); err != nil {
		return nil, err
	}
	keys, members := cellMembers(dims, in.Attrs)
	cube := &Cube{
		dims:    append([]string(nil), dims...),
		cells:   make(map[string]*Cell, len(keys)),
		members: members,
		tables:  append([]*ylt.Table(nil), in.Tables...),
		workers: workers,
	}
	if err := cube.refold(ctx, keys); err != nil {
		return nil, err
	}
	return cube, nil
}

// refold recomputes the given cells from the registry, in parallel.
func (c *Cube) refold(ctx context.Context, keys []string) error {
	var mu sync.Mutex
	return stream.ForEach(ctx, len(keys), c.workers, func(_ context.Context, i int) error {
		cell, err := c.combineCell(keys[i])
		if err != nil {
			return err
		}
		mu.Lock()
		c.cells[cell.Key] = cell
		mu.Unlock()
		return nil
	})
}

// ErrNoCell is returned by Query when no materialized group matches.
var ErrNoCell = errors.New("warehouse: no such cell")

// ErrNoRegistry is returned by Replace and RecomputeCell on a
// query-only cube (one finalized without its per-contract tables).
var ErrNoRegistry = errors.New("warehouse: cube has no table registry")

// ErrStaleTable is returned by Replace when oldYLT does not match the
// registry's current table for the contract — the caller is holding
// an outdated view and folding its delta would corrupt the cube.
var ErrStaleTable = errors.New("warehouse: old table does not match registry")

// Query returns the pre-computed cell for the given dimension filter,
// e.g. {"region": "CoastalPeak", "lob": "property"}. All filter keys
// must be cube dimensions.
func (c *Cube) Query(filter map[string]string) (*Cell, error) {
	key, err := c.filterKey(filter)
	if err != nil {
		return nil, err
	}
	cell, ok := c.cells[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoCell, key)
	}
	return cell, nil
}

// filterKey canonicalizes a dimension filter into a cell key.
func (c *Cube) filterKey(filter map[string]string) (string, error) {
	if len(filter) == 0 {
		return "", errors.New("warehouse: empty filter")
	}
	subset := make([]string, 0, len(filter))
	for _, d := range c.dims {
		if _, ok := filter[d]; ok {
			subset = append(subset, d)
		}
	}
	if len(subset) != len(filter) {
		return "", fmt.Errorf("%w: filter uses non-cube dimensions", ErrNoCell)
	}
	return groupKey(subset, filter), nil
}

// RecomputeCell re-derives a cell's summary from the member registry,
// bypassing the pre-computed columns — the self-check behind the
// serving tier's check=direct mode and the CI smoke diff. Requires a
// registry-bearing cube.
func (c *Cube) RecomputeCell(filter map[string]string) (*metrics.Summary, error) {
	if c.tables == nil {
		return nil, ErrNoRegistry
	}
	key, err := c.filterKey(filter)
	if err != nil {
		return nil, err
	}
	if _, ok := c.cells[key]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoCell, key)
	}
	cell, err := c.combineCell(key)
	if err != nil {
		return nil, err
	}
	return cell.Summary, nil
}

// Replace swaps one contract's YLT for a re-priced one and updates
// only the cells that contract belongs to, re-folding each from the
// registry in canonical member order — O(cells touched), bit-identical
// to a full rebuild with the new table. Subtract-then-add would be
// neither: float addition is not associative, and the element-wise
// OccMax maximum is not invertible at all. oldYLT must match the
// registry's current table for the contract (pointer or bitwise).
// Replace is not safe to run concurrently with Query on the same cube.
// It returns the number of cells updated.
func (c *Cube) Replace(ctx context.Context, contract int, oldYLT, newYLT *ylt.Table) (int, error) {
	if c.tables == nil {
		return 0, ErrNoRegistry
	}
	if contract < 0 || contract >= len(c.tables) {
		return 0, fmt.Errorf("warehouse: contract %d out of range [0,%d)", contract, len(c.tables))
	}
	cur := c.tables[contract]
	if oldYLT == nil || !sameBits(cur, oldYLT) {
		return 0, fmt.Errorf("%w: contract %d", ErrStaleTable, contract)
	}
	if newYLT == nil {
		return 0, errors.New("warehouse: nil replacement table")
	}
	if newYLT.NumTrials() != cur.NumTrials() {
		return 0, fmt.Errorf("%w: replacement has %d trials, cube has %d", ylt.ErrTrialMismatch, newYLT.NumTrials(), cur.NumTrials())
	}
	if newYLT.HasOccurrence() != cur.HasOccurrence() {
		return 0, fmt.Errorf("%w: replacement occurrence coverage differs from registry", ylt.ErrOccurrenceMismatch)
	}
	var touched []string
	for key, idxs := range c.members {
		for _, ci := range idxs {
			if ci == contract {
				touched = append(touched, key)
				break
			}
		}
	}
	sort.Strings(touched)
	c.tables[contract] = newYLT
	if err := c.refold(ctx, touched); err != nil {
		// The cube may hold a mix of old and new cells now; restore
		// the registry so the caller can retry or rebuild from it.
		c.tables[contract] = cur
		return 0, err
	}
	return len(touched), nil
}

// sameBits reports whether two tables carry identical loss columns
// (bitwise, so NaN payloads and signed zeros count too).
func sameBits(a, b *ylt.Table) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || len(a.Agg) != len(b.Agg) || len(a.OccMax) != len(b.OccMax) {
		return false
	}
	for i, v := range a.Agg {
		if math.Float64bits(v) != math.Float64bits(b.Agg[i]) {
			return false
		}
	}
	for i, v := range a.OccMax {
		if math.Float64bits(v) != math.Float64bits(b.OccMax[i]) {
			return false
		}
	}
	return true
}

// Contract returns the registry's current YLT for a contract (nil for
// query-only cubes). Callers pass it back to Replace as oldYLT.
func (c *Cube) Contract(i int) *ylt.Table {
	if c.tables == nil || i < 0 || i >= len(c.tables) {
		return nil
	}
	return c.tables[i]
}

// NumContracts returns the registry size (0 for query-only cubes).
func (c *Cube) NumContracts() int { return len(c.tables) }

// Dims returns a copy of the cube's dimension list.
func (c *Cube) Dims() []string { return append([]string(nil), c.dims...) }

// Cells returns the number of materialized groups.
func (c *Cube) Cells() int { return len(c.cells) }

// SizeBytes returns the encoded footprint of the materialized cell
// tables plus the delta registry.
func (c *Cube) SizeBytes() int64 {
	var n int64
	for _, cell := range c.cells {
		n += cell.Table.SizeBytes()
	}
	for _, t := range c.tables {
		n += t.SizeBytes()
	}
	return n
}

// Keys returns all materialized group keys, sorted (for reports).
func (c *Cube) Keys() []string {
	keys := make([]string, 0, len(c.cells))
	for k := range c.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DefaultDims is the dimension set the pipeline uses when the caller
// asks for a cube without naming dimensions.
func DefaultDims() []string { return []string{"region", "lob"} }

var (
	defaultRegions = []string{"coastal", "interior", "lakes", "alpine"}
	defaultLobs    = []string{"property", "marine", "energy"}
	defaultPerils  = []string{"wind", "quake"}
)

// DefaultAttrs assigns deterministic synthetic reporting attributes
// (region, lob, peril) to an n-contract book by cycling each
// dimension's values at a different period, so any two dimensions
// jointly spread contracts across their value combinations.
func DefaultAttrs(n int) []map[string]string {
	out := make([]map[string]string, n)
	for i := range out {
		out[i] = map[string]string{
			"region": defaultRegions[i%len(defaultRegions)],
			"lob":    defaultLobs[i%len(defaultLobs)],
			"peril":  defaultPerils[i%len(defaultPerils)],
		}
	}
	return out
}
