package warehouse

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/ylt"
)

// cellAcc is one cube cell under incremental construction: running
// Agg/OccMax columns that per-contract trial batches fold into.
type cellAcc struct {
	key     string
	members []int
	agg     []float64
	occ     []float64
}

// Builder materializes a cube incrementally from streamed stage-2
// output. Instead of retaining every member YLT per cell until a
// final combine (memory grows with members × cells), each IngestBatch
// folds a trial range of every contract straight into the matching
// cells' running columns, so resident state is just the cube columns
// themselves — bounded by cells × trials regardless of book size.
//
// Bit-identity with the batch Build path comes from fold order: for
// any (cell, trial), ylt.Combine adds members in ascending contract
// order, and IngestBatch folds all contracts of a batch in ascending
// order within one call. Batches cover disjoint trial ranges, so the
// per-(cell, trial) addition order is the same no matter how many
// workers deliver batches or how the trial space is cut — the same
// argument that makes the streaming engines batch-size-independent.
//
// IngestBatch is safe to call concurrently for disjoint trial ranges;
// each contract's matching cells are written only in the [lo, lo+k)
// slice window.
type Builder struct {
	dims    []string
	n       int
	workers int
	keys    []string
	members map[string][]int
	cells   map[string]*cellAcc
	// byContract[ci] lists the cells contract ci folds into.
	byContract [][]*cellAcc

	folded    []atomic.Int64 // per-contract trials folded so far
	foldNanos atomic.Int64

	mu   sync.Mutex
	err  error
	done bool
}

// NewBuilder prepares an incremental cube over numTrials trials for a
// book whose contract attributes are attrs (attrs[i] maps dimension
// name -> value for contract i).
func NewBuilder(dims []string, attrs []map[string]string, numTrials, workers int) (*Builder, error) {
	if err := validateDims(dims); err != nil {
		return nil, err
	}
	if numTrials <= 0 {
		return nil, fmt.Errorf("warehouse: %d trials", numTrials)
	}
	if len(attrs) == 0 {
		return nil, errors.New("warehouse: no contract attributes")
	}
	if err := validateAttrs(attrs, dims); err != nil {
		return nil, err
	}
	keys, members := cellMembers(dims, attrs)
	b := &Builder{
		dims:       append([]string(nil), dims...),
		n:          numTrials,
		workers:    workers,
		keys:       keys,
		members:    members,
		cells:      make(map[string]*cellAcc, len(keys)),
		byContract: make([][]*cellAcc, len(attrs)),
		folded:     make([]atomic.Int64, len(attrs)),
	}
	for _, key := range keys {
		acc := &cellAcc{
			key:     key,
			members: members[key],
			agg:     make([]float64, numTrials),
			occ:     make([]float64, numTrials),
		}
		b.cells[key] = acc
		for _, ci := range acc.members {
			b.byContract[ci] = append(b.byContract[ci], acc)
		}
	}
	return b, nil
}

// NumTrials returns the trial count the builder was sized for.
func (b *Builder) NumTrials() int { return b.n }

// Cells returns the number of cube cells under construction.
func (b *Builder) Cells() int { return len(b.keys) }

// FoldDuration returns the cumulative wall time spent folding batches
// (summed across concurrent callers, like a busy-time counter).
func (b *Builder) FoldDuration() time.Duration {
	return time.Duration(b.foldNanos.Load())
}

// setErr latches the first ingest error for Finalize to report.
func (b *Builder) setErr(err error) error {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	return err
}

// IngestBatch folds trials [lo, lo+k) of every contract into the
// cube, where agg[ci][j] and occ[ci][j] are contract ci's annual
// aggregate and largest single-occurrence loss for trial lo+j, and k
// is the row length. Rows are read, never retained. Calls covering
// disjoint trial ranges may run concurrently; each trial range must
// be delivered exactly once.
func (b *Builder) IngestBatch(lo int, agg, occ [][]float64) error {
	b.mu.Lock()
	done := b.done
	b.mu.Unlock()
	if done {
		return b.setErr(errors.New("warehouse: ingest after Finalize"))
	}
	nc := len(b.byContract)
	if len(agg) != nc || len(occ) != nc {
		return b.setErr(fmt.Errorf("warehouse: batch has %d/%d contract rows, builder has %d", len(agg), len(occ), nc))
	}
	if nc == 0 {
		return nil
	}
	k := len(agg[0])
	if k == 0 {
		return b.setErr(errors.New("warehouse: empty batch"))
	}
	if lo < 0 || lo+k > b.n {
		return b.setErr(fmt.Errorf("warehouse: batch [%d,%d) outside [0,%d)", lo, lo+k, b.n))
	}
	for ci := 0; ci < nc; ci++ {
		if len(agg[ci]) != k || len(occ[ci]) != k {
			return b.setErr(fmt.Errorf("warehouse: contract %d row length %d/%d, want %d", ci, len(agg[ci]), len(occ[ci]), k))
		}
	}
	start := time.Now()
	for ci := 0; ci < nc; ci++ {
		a, o := agg[ci], occ[ci]
		for _, cell := range b.byContract[ci] {
			ca := cell.agg[lo : lo+k]
			co := cell.occ[lo : lo+k]
			for j, v := range a {
				ca[j] += v
			}
			for j, v := range o {
				if v > co[j] {
					co[j] = v
				}
			}
		}
		b.folded[ci].Add(int64(k))
	}
	b.foldNanos.Add(int64(time.Since(start)))
	return nil
}

// Finalize summarizes every cell and returns the cube. Every contract
// must have had exactly its full trial space folded in. tables, when
// non-nil, becomes the cube's per-contract delta registry (it must
// align with the builder's book: same contract count and trial
// count, occurrence-bearing); pass nil for a query-only cube that
// cannot Replace or RecomputeCell. The builder cannot ingest after
// Finalize — the cell columns are handed off to the cube.
func (b *Builder) Finalize(ctx context.Context, tables []*ylt.Table) (*Cube, error) {
	b.mu.Lock()
	err := b.err
	b.done = true
	b.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("warehouse: ingest failed: %w", err)
	}
	for ci := range b.folded {
		if got := b.folded[ci].Load(); got != int64(b.n) {
			return nil, fmt.Errorf("warehouse: contract %d has %d of %d trials folded", ci, got, b.n)
		}
	}
	if tables != nil {
		if len(tables) != len(b.byContract) {
			return nil, fmt.Errorf("warehouse: registry has %d tables, builder has %d contracts", len(tables), len(b.byContract))
		}
		for ci, t := range tables {
			if t == nil || t.NumTrials() != b.n {
				return nil, fmt.Errorf("warehouse: registry table %d does not span %d trials", ci, b.n)
			}
			if !t.HasOccurrence() {
				return nil, fmt.Errorf("warehouse: registry table %d lacks occurrence data", ci)
			}
		}
	}
	cube := &Cube{
		dims:    append([]string(nil), b.dims...),
		cells:   make(map[string]*Cell, len(b.keys)),
		members: b.members,
		workers: b.workers,
	}
	if tables != nil {
		cube.tables = append([]*ylt.Table(nil), tables...)
	}
	var mu sync.Mutex
	ferr := stream.ForEach(ctx, len(b.keys), b.workers, func(_ context.Context, i int) error {
		acc := b.cells[b.keys[i]]
		tbl := &ylt.Table{Name: acc.key, Agg: acc.agg, OccMax: acc.occ}
		summary, serr := metrics.Summarize(tbl)
		if serr != nil {
			return fmt.Errorf("warehouse: summarizing %q: %w", acc.key, serr)
		}
		cell := &Cell{Key: acc.key, Members: len(acc.members), Table: tbl, Summary: summary}
		mu.Lock()
		cube.cells[acc.key] = cell
		mu.Unlock()
		return nil
	})
	if ferr != nil {
		return nil, ferr
	}
	return cube, nil
}
