package gpusim

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
)

func TestAllocAndCopyRoundTrip(t *testing.T) {
	d := NewDevice(Config{}, 1024)
	b, err := d.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 100 {
		t.Fatalf("Len = %d", b.Len())
	}
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i) * 1.5
	}
	if err := d.CopyToDevice(b, in); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 100)
	if err := d.CopyFromDevice(b, out); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("element %d: %v != %v", i, out[i], in[i])
		}
	}
	if got := d.Stats().TransferFloats; got != 200 {
		t.Fatalf("TransferFloats = %d, want 200", got)
	}
}

func TestAllocExhaustion(t *testing.T) {
	d := NewDevice(Config{}, 100)
	if _, err := d.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(60); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	d.FreeAll()
	if _, err := d.Alloc(100); err != nil {
		t.Fatalf("after FreeAll: %v", err)
	}
}

func TestCopyBoundsChecked(t *testing.T) {
	d := NewDevice(Config{}, 100)
	b, _ := d.Alloc(10)
	if err := d.CopyToDevice(b, make([]float64, 11)); err == nil {
		t.Fatal("oversized upload should error")
	}
	if err := d.CopyFromDevice(b, make([]float64, 11)); err == nil {
		t.Fatal("oversized download should error")
	}
}

func TestConstantMemory(t *testing.T) {
	d := NewDevice(Config{ConstMemSize: 64}, 16)
	cb, err := d.UploadConstant([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if cb.Len() != 3 {
		t.Fatalf("Len = %d", cb.Len())
	}
	if _, err := d.UploadConstant(make([]float64, 100)); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	d.ResetConstant()
	if _, err := d.UploadConstant(make([]float64, 64)); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

func TestLaunchExecutesAllBlocks(t *testing.T) {
	d := NewDevice(Config{NumSMs: 4}, 1024)
	var count atomic.Int64
	seen := make([]atomic.Bool, 64)
	err := d.Launch(64, func(c *BlockCtx) {
		if c.GridDim != 64 {
			t.Errorf("GridDim = %d", c.GridDim)
		}
		if seen[c.BlockID].Swap(true) {
			t.Errorf("block %d ran twice", c.BlockID)
		}
		count.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != 64 {
		t.Fatalf("ran %d blocks", count.Load())
	}
	if d.Stats().Blocks != 64 {
		t.Fatalf("Stats.Blocks = %d", d.Stats().Blocks)
	}
}

func TestLaunchValidation(t *testing.T) {
	d := NewDevice(Config{}, 16)
	if err := d.Launch(0, func(*BlockCtx) {}); !errors.Is(err, ErrBadLaunch) {
		t.Fatal("gridDim 0 should error")
	}
	if err := d.Launch(1, nil); !errors.Is(err, ErrBadLaunch) {
		t.Fatal("nil kernel should error")
	}
}

func TestKernelFaultRecovered(t *testing.T) {
	d := NewDevice(Config{NumSMs: 2}, 16)
	b, _ := d.Alloc(4)
	err := d.Launch(8, func(c *BlockCtx) {
		_ = c.LoadGlobal(b, 100) // out of device memory -> panic -> error
	})
	if err == nil {
		t.Fatal("kernel fault should surface as launch error")
	}
}

func TestGlobalKernelComputes(t *testing.T) {
	d := NewDevice(Config{NumSMs: 4}, 4096)
	n := 1000
	in, _ := d.Alloc(n)
	out, _ := d.Alloc(n)
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	if err := d.CopyToDevice(in, data); err != nil {
		t.Fatal(err)
	}
	// Grid-stride doubling kernel.
	grid := 8
	err := d.Launch(grid, func(c *BlockCtx) {
		for i := c.BlockID; i < n; i += c.GridDim {
			v := c.LoadGlobal(in, i)
			c.AddArith(1)
			c.StoreGlobal(out, i, 2*v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	res := make([]float64, n)
	if err := d.CopyFromDevice(out, res); err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i] != 2*float64(i) {
			t.Fatalf("out[%d] = %v", i, res[i])
		}
	}
	s := d.Stats()
	if s.GlobalAccesses != uint64(2*n) {
		t.Fatalf("GlobalAccesses = %d, want %d", s.GlobalAccesses, 2*n)
	}
	if s.ArithOps != uint64(n) {
		t.Fatalf("ArithOps = %d, want %d", s.ArithOps, n)
	}
}

func TestChunkedStagingCheaperThanNaive(t *testing.T) {
	// The E4 mechanism in miniature: summing a table B times (one per
	// block) via global loads vs staging it into shared memory once
	// per block. Chunked must cost dramatically fewer modeled cycles.
	const tableN = 2048
	const blocks = 32
	table := make([]float64, tableN)
	for i := range table {
		table[i] = float64(i % 17)
	}
	var want float64
	for _, v := range table {
		want += v
	}

	run := func(chunked bool) (Stats, float64) {
		d := NewDevice(Config{NumSMs: 4, SharedMemPerBlock: tableN}, tableN+blocks)
		buf, _ := d.Alloc(tableN)
		res, _ := d.Alloc(blocks)
		if err := d.CopyToDevice(buf, table); err != nil {
			t.Fatal(err)
		}
		err := d.Launch(blocks, func(c *BlockCtx) {
			var sum float64
			if chunked {
				c.StageToShared(buf, 0, tableN, 0)
				for i := 0; i < tableN; i++ {
					sum += c.LoadShared(i)
					c.AddArith(1)
				}
			} else {
				for i := 0; i < tableN; i++ {
					sum += c.LoadGlobal(buf, i)
					c.AddArith(1)
				}
			}
			c.StoreGlobal(res, c.BlockID, sum)
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, blocks)
		if err := d.CopyFromDevice(res, out); err != nil {
			t.Fatal(err)
		}
		for b, v := range out {
			if math.Abs(v-want) > 1e-9 {
				t.Fatalf("block %d sum = %v, want %v", b, v, want)
			}
		}
		return d.Stats(), d.Stats().ModeledSeconds(d.Config())
	}

	naiveStats, naiveSec := run(false)
	chunkStats, chunkSec := run(true)
	if chunkStats.BlockCycles >= naiveStats.BlockCycles {
		t.Fatalf("chunked cycles %d not below naive %d", chunkStats.BlockCycles, naiveStats.BlockCycles)
	}
	ratio := float64(naiveStats.BlockCycles) / float64(chunkStats.BlockCycles)
	if ratio < 5 {
		t.Fatalf("chunking speedup %0.1fx too small for global=400 shared=4 model", ratio)
	}
	if chunkSec <= 0 || naiveSec <= 0 {
		t.Fatal("modeled seconds should be positive")
	}
	if chunkSec >= naiveSec {
		t.Fatal("modeled time should improve with chunking")
	}
}

func TestSharedMemoryIsolationBetweenBlocks(t *testing.T) {
	// Shared memory is zeroed between blocks on the same SM.
	d := NewDevice(Config{NumSMs: 1, SharedMemPerBlock: 8}, 64)
	res, _ := d.Alloc(32)
	err := d.Launch(32, func(c *BlockCtx) {
		if v := c.LoadShared(0); v != 0 {
			c.StoreGlobal(res, c.BlockID, -1) // leak detected
			return
		}
		c.StoreShared(0, float64(c.BlockID)+1)
		c.StoreGlobal(res, c.BlockID, c.LoadShared(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 32)
	if err := d.CopyFromDevice(res, out); err != nil {
		t.Fatal(err)
	}
	for b, v := range out {
		if v == -1 {
			t.Fatalf("block %d observed stale shared memory", b)
		}
		if v != float64(b)+1 {
			t.Fatalf("block %d result %v", b, v)
		}
	}
}

func TestConstLoadCheaperThanGlobal(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDevice(cfg, 1024)
	cb, err := d.UploadConstant([]float64{3.14})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := d.Alloc(1)
	if err := d.CopyToDevice(b, []float64{3.14}); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	if err := d.Launch(1, func(c *BlockCtx) {
		for i := 0; i < 100; i++ {
			_ = c.LoadConst(cb, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	constCycles := d.Stats().BlockCycles
	d.ResetStats()
	if err := d.Launch(1, func(c *BlockCtx) {
		for i := 0; i < 100; i++ {
			_ = c.LoadGlobal(b, 0)
		}
	}); err != nil {
		t.Fatal(err)
	}
	globalCycles := d.Stats().BlockCycles
	if constCycles*10 > globalCycles {
		t.Fatalf("constant loads (%d cycles) should be far cheaper than global (%d)", constCycles, globalCycles)
	}
}

func TestModeledCyclesDividesAcrossSMs(t *testing.T) {
	s := Stats{BlockCycles: 1600, TransferFloats: 10}
	cfg := Config{NumSMs: 16, TransferCost: 8, ClockGHz: 1}
	if got := s.ModeledCycles(cfg); got != 100+80 {
		t.Fatalf("ModeledCycles = %d, want 180", got)
	}
	if sec := s.ModeledSeconds(cfg); math.Abs(sec-180e-9) > 1e-15 {
		t.Fatalf("ModeledSeconds = %v", sec)
	}
	if (Stats{}).ModeledSeconds(Config{}) != 0 {
		t.Fatal("zero clock should yield 0 seconds")
	}
}

func TestResetStats(t *testing.T) {
	d := NewDevice(Config{}, 64)
	b, _ := d.Alloc(1)
	if err := d.CopyToDevice(b, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if d.Stats().TransferFloats == 0 {
		t.Fatal("expected transfer accounting")
	}
	d.ResetStats()
	if d.Stats() != (Stats{}) {
		t.Fatalf("ResetStats left %+v", d.Stats())
	}
}
