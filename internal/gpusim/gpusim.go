// Package gpusim is a software model of the many-core accelerator the
// paper's stage-2 engine runs on ("Methods for accumulating large
// shared memory includes the use of many-core GPUs ... The management
// of large data in memory employs the notion of chunking, which is
// utilising shared and constant memory as much as possible", §II).
//
// There are no CUDA bindings in this reproduction (repro note: CPU-only
// approximation), so the device is simulated: blocks execute for real
// on a pool of goroutine "SMs" (so wall-clock speedups are genuine),
// while every memory access is charged against a cycle cost model with
// the canonical hierarchy global ≫ shared ≈ constant. The cost model is
// what lets the chunking ablation (experiment E4) reproduce the paper's
// claim *architecturally*: staging ELT chunks in shared/constant memory
// slashes modeled cycles versus a naive global-memory kernel,
// independent of the host CPU the simulation happens to run on.
package gpusim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Config describes the simulated device. Costs are cycles per access.
type Config struct {
	NumSMs            int     // parallel block executors
	ThreadsPerBlock   int     // logical threads per block (SIMT width model)
	SharedMemPerBlock int     // floats of shared memory per block
	ConstMemSize      int     // floats of constant memory
	GlobalCost        uint64  // cycles per global-memory access
	SharedCost        uint64  // cycles per shared-memory access
	ConstCost         uint64  // cycles per constant-cache access
	ArithCost         uint64  // cycles per arithmetic op
	TransferCost      uint64  // cycles per float moved host<->device
	ClockGHz          float64 // modeled clock for cycle->seconds conversion
}

// DefaultConfig models a 2012-era Fermi/Kepler-class part, the
// hardware generation of the paper's experiments: few dozen SMs, 48 KB
// shared memory and 64 KB constant memory per block/device, ~400-cycle
// global loads vs single-digit shared/constant access.
func DefaultConfig() Config {
	return Config{
		NumSMs:            16,
		ThreadsPerBlock:   256,
		SharedMemPerBlock: 48 * 1024 / 8,
		ConstMemSize:      64 * 1024 / 8,
		GlobalCost:        400,
		SharedCost:        4,
		ConstCost:         2,
		ArithCost:         1,
		TransferCost:      8,
		ClockGHz:          1.15,
	}
}

// Stats aggregates the cost-model counters of a device. Transfers are
// split by allocation lifetime: TransferFloats counts copies touching
// per-batch buffers (the streaming steady-state cost), while
// ResidentTransferFloats counts copies touching study-resident buffers
// (paid once per run, however many batches stream through) — the split
// is what makes the two-lifetime arena's saving visible in reports.
type Stats struct {
	GlobalAccesses         uint64
	SharedAccesses         uint64
	ConstAccesses          uint64
	ArithOps               uint64
	TransferFloats         uint64 // floats moved to/from per-batch buffers
	ResidentTransferFloats uint64 // floats moved to/from study-resident buffers
	BlockCycles            uint64 // summed cycles across all blocks
	Blocks                 uint64
}

// Add returns the field-wise sum of two snapshots — the carry when a
// run spans several devices (e.g. streaming growth replaces an owned
// device mid-run and the old device's counters must not be lost).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		GlobalAccesses:         s.GlobalAccesses + o.GlobalAccesses,
		SharedAccesses:         s.SharedAccesses + o.SharedAccesses,
		ConstAccesses:          s.ConstAccesses + o.ConstAccesses,
		ArithOps:               s.ArithOps + o.ArithOps,
		TransferFloats:         s.TransferFloats + o.TransferFloats,
		ResidentTransferFloats: s.ResidentTransferFloats + o.ResidentTransferFloats,
		BlockCycles:            s.BlockCycles + o.BlockCycles,
		Blocks:                 s.Blocks + o.Blocks,
	}
}

// ModeledCycles is the device-time estimate: summed block cycles
// divided across SMs (ideal balance), plus transfer cycles which are
// serialized on the host link. Resident and per-batch transfers cross
// the same link, so both are charged.
func (s Stats) ModeledCycles(cfg Config) uint64 {
	sms := uint64(cfg.NumSMs)
	if sms == 0 {
		sms = 1
	}
	return s.BlockCycles/sms + (s.TransferFloats+s.ResidentTransferFloats)*cfg.TransferCost
}

// ModeledSeconds converts modeled cycles to seconds at the configured
// clock.
func (s Stats) ModeledSeconds(cfg Config) float64 {
	if cfg.ClockGHz <= 0 {
		return 0
	}
	return float64(s.ModeledCycles(cfg)) / (cfg.ClockGHz * 1e9)
}

// Buffer is a handle to a region of device global memory.
type Buffer struct {
	off, n int
}

// Len returns the buffer's length in floats.
func (b Buffer) Len() int { return b.n }

// ConstBuffer is a handle to a region of constant memory.
type ConstBuffer struct {
	off, n int
}

// Len returns the constant buffer's length in floats.
func (b ConstBuffer) Len() int { return b.n }

// Errors returned by device operations.
var (
	ErrOutOfMemory = errors.New("gpusim: device out of memory")
	ErrBadLaunch   = errors.New("gpusim: bad launch configuration")
)

// Device is a simulated accelerator. Allocation and launches are
// serialized by the caller as on a single CUDA stream; kernels run
// blocks concurrently internally.
type Device struct {
	cfg         Config
	global      []float64
	globalTop   int
	residentTop int // global[0:residentTop) is the study-resident arena
	constMem    []float64
	constTop    int

	stats struct {
		global, shared, constant, arith, transfer, residentTransfer, blockCycles, blocks atomic.Uint64
	}
}

// NewDevice returns a device with cfg (zero fields replaced by
// defaults) and the given global memory capacity in floats.
func NewDevice(cfg Config, globalFloats int) *Device {
	def := DefaultConfig()
	if cfg.NumSMs <= 0 {
		cfg.NumSMs = def.NumSMs
	}
	if cfg.ThreadsPerBlock <= 0 {
		cfg.ThreadsPerBlock = def.ThreadsPerBlock
	}
	if cfg.SharedMemPerBlock <= 0 {
		cfg.SharedMemPerBlock = def.SharedMemPerBlock
	}
	if cfg.ConstMemSize <= 0 {
		cfg.ConstMemSize = def.ConstMemSize
	}
	if cfg.GlobalCost == 0 {
		cfg.GlobalCost = def.GlobalCost
	}
	if cfg.SharedCost == 0 {
		cfg.SharedCost = def.SharedCost
	}
	if cfg.ConstCost == 0 {
		cfg.ConstCost = def.ConstCost
	}
	if cfg.ArithCost == 0 {
		cfg.ArithCost = def.ArithCost
	}
	if cfg.TransferCost == 0 {
		cfg.TransferCost = def.TransferCost
	}
	if cfg.ClockGHz == 0 {
		cfg.ClockGHz = def.ClockGHz
	}
	if globalFloats <= 0 {
		globalFloats = 1 << 20
	}
	return &Device{
		cfg:      cfg,
		global:   make([]float64, globalFloats),
		constMem: make([]float64, cfg.ConstMemSize),
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the cost-model counters.
func (d *Device) Stats() Stats {
	return Stats{
		GlobalAccesses:         d.stats.global.Load(),
		SharedAccesses:         d.stats.shared.Load(),
		ConstAccesses:          d.stats.constant.Load(),
		ArithOps:               d.stats.arith.Load(),
		TransferFloats:         d.stats.transfer.Load(),
		ResidentTransferFloats: d.stats.residentTransfer.Load(),
		BlockCycles:            d.stats.blockCycles.Load(),
		Blocks:                 d.stats.blocks.Load(),
	}
}

// ResetStats zeroes the cost-model counters (allocations persist).
func (d *Device) ResetStats() {
	d.stats.global.Store(0)
	d.stats.shared.Store(0)
	d.stats.constant.Store(0)
	d.stats.arith.Store(0)
	d.stats.transfer.Store(0)
	d.stats.residentTransfer.Store(0)
	d.stats.blockCycles.Store(0)
	d.stats.blocks.Store(0)
}

// Alloc reserves n floats of global memory with per-batch lifetime:
// the allocation is released by the next FreeBatch (or FreeAll).
func (d *Device) Alloc(n int) (Buffer, error) {
	if n < 0 || d.globalTop+n > len(d.global) {
		return Buffer{}, fmt.Errorf("%w: want %d floats, %d free", ErrOutOfMemory, n, len(d.global)-d.globalTop)
	}
	b := Buffer{off: d.globalTop, n: n}
	d.globalTop += n
	return b, nil
}

// AllocResident reserves n floats of global memory with study-resident
// lifetime: the allocation survives FreeBatch and is only released by
// FreeAll. The two lifetimes share one arena with the resident region
// at the bottom, so resident allocations must all be made before the
// first per-batch Alloc of a run — interleaving them would let a later
// FreeBatch strand a hole, and is rejected instead.
func (d *Device) AllocResident(n int) (Buffer, error) {
	if d.globalTop != d.residentTop {
		return Buffer{}, fmt.Errorf("gpusim: resident alloc after batch allocs (%d batch floats live); allocate resident buffers first or FreeBatch",
			d.globalTop-d.residentTop)
	}
	b, err := d.Alloc(n)
	if err != nil {
		return Buffer{}, err
	}
	d.residentTop = d.globalTop
	return b, nil
}

// FreeAll releases all global allocations, resident included
// (arena-style).
func (d *Device) FreeAll() {
	d.globalTop = 0
	d.residentTop = 0
}

// FreeBatch releases the per-batch allocations, keeping the
// study-resident arena intact — the between-batches reset of a
// streaming run.
func (d *Device) FreeBatch() { d.globalTop = d.residentTop }

// resident reports whether b lives in the study-resident arena.
// Resident buffers are allocated before any batch buffer, so the
// arenas never interleave and the offset comparison is exact.
func (d *Device) resident(b Buffer) bool { return b.off < d.residentTop }

// CopyToDevice uploads data into b, charging transfer cycles against
// the counter matching b's lifetime (resident vs per-batch).
func (d *Device) CopyToDevice(b Buffer, data []float64) error {
	if len(data) > b.n {
		return fmt.Errorf("gpusim: copy of %d floats into buffer of %d", len(data), b.n)
	}
	copy(d.global[b.off:b.off+len(data)], data)
	if d.resident(b) {
		d.stats.residentTransfer.Add(uint64(len(data)))
	} else {
		d.stats.transfer.Add(uint64(len(data)))
	}
	return nil
}

// CopyFromDevice downloads b into out, charging transfer cycles
// against the counter matching b's lifetime (resident vs per-batch).
func (d *Device) CopyFromDevice(b Buffer, out []float64) error {
	if len(out) > b.n {
		return fmt.Errorf("gpusim: copy of %d floats from buffer of %d", len(out), b.n)
	}
	copy(out, d.global[b.off:b.off+len(out)])
	if d.resident(b) {
		d.stats.residentTransfer.Add(uint64(len(out)))
	} else {
		d.stats.transfer.Add(uint64(len(out)))
	}
	return nil
}

// UploadConstant places data in constant memory, charging transfer
// cycles. Constant memory is arena-allocated like global memory.
func (d *Device) UploadConstant(data []float64) (ConstBuffer, error) {
	if d.constTop+len(data) > len(d.constMem) {
		return ConstBuffer{}, fmt.Errorf("%w: constant memory (%d floats free, want %d)",
			ErrOutOfMemory, len(d.constMem)-d.constTop, len(data))
	}
	b := ConstBuffer{off: d.constTop, n: len(data)}
	copy(d.constMem[b.off:b.off+len(data)], data)
	d.constTop += len(data)
	d.stats.transfer.Add(uint64(len(data)))
	return b, nil
}

// ResetConstant releases constant memory allocations.
func (d *Device) ResetConstant() { d.constTop = 0 }

// BlockCtx is the execution context a kernel receives per block.
// Accessor methods charge the cost model; the shared array is the
// block's scratchpad. A BlockCtx must not escape the kernel call.
type BlockCtx struct {
	BlockID   int
	GridDim   int
	dev       *Device
	shared    []float64
	cycles    uint64
	global    uint64
	sharedCnt uint64
	constCnt  uint64
	arith     uint64
}

// Threads returns the configured threads per block, for kernels that
// tile their inner loops by thread count.
func (c *BlockCtx) Threads() int { return c.dev.cfg.ThreadsPerBlock }

// Shared returns the block's shared-memory scratchpad. Reads/writes
// through the slice are not cost-counted; use LoadShared/StoreShared
// on modeled paths and the raw slice only for zero-fill.
func (c *BlockCtx) Shared() []float64 { return c.shared }

// LoadGlobal reads one float from global memory.
func (c *BlockCtx) LoadGlobal(b Buffer, i int) float64 {
	c.global++
	c.cycles += c.dev.cfg.GlobalCost
	return c.dev.global[b.off+i]
}

// StoreGlobal writes one float to global memory.
func (c *BlockCtx) StoreGlobal(b Buffer, i int, v float64) {
	c.global++
	c.cycles += c.dev.cfg.GlobalCost
	c.dev.global[b.off+i] = v
}

// StageToShared copies src[lo:hi) from global memory into shared
// memory starting at dst. It models a coalesced cooperative load: the
// global cost is charged once per cache line of ThreadsPerBlock
// consecutive floats rather than per element — the whole point of
// chunked staging.
func (c *BlockCtx) StageToShared(b Buffer, lo, hi, dst int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	copy(c.shared[dst:dst+n], c.dev.global[b.off+lo:b.off+hi])
	lines := uint64((n + c.dev.cfg.ThreadsPerBlock - 1) / c.dev.cfg.ThreadsPerBlock)
	c.global += lines
	c.cycles += lines * c.dev.cfg.GlobalCost
	c.sharedCnt += uint64(n)
	c.cycles += uint64(n) * c.dev.cfg.SharedCost
}

// LoadShared reads shared memory slot i.
func (c *BlockCtx) LoadShared(i int) float64 {
	c.sharedCnt++
	c.cycles += c.dev.cfg.SharedCost
	return c.shared[i]
}

// StoreShared writes shared memory slot i.
func (c *BlockCtx) StoreShared(i int, v float64) {
	c.sharedCnt++
	c.cycles += c.dev.cfg.SharedCost
	c.shared[i] = v
}

// LoadConst reads constant memory through the broadcast cache.
func (c *BlockCtx) LoadConst(b ConstBuffer, i int) float64 {
	c.constCnt++
	c.cycles += c.dev.cfg.ConstCost
	return c.dev.constMem[b.off+i]
}

// AddArith charges n arithmetic operations.
func (c *BlockCtx) AddArith(n uint64) {
	c.arith += n
	c.cycles += n * c.dev.cfg.ArithCost
}

// Launch executes gridDim blocks of kernel on the device's SM pool.
// Blocks run concurrently (up to NumSMs at a time); a panic inside a
// kernel (e.g. out-of-bounds access) is recovered and returned as an
// error, as a CUDA launch failure would be.
func (d *Device) Launch(gridDim int, kernel func(*BlockCtx)) error {
	if gridDim <= 0 {
		return fmt.Errorf("%w: gridDim %d", ErrBadLaunch, gridDim)
	}
	if kernel == nil {
		return fmt.Errorf("%w: nil kernel", ErrBadLaunch)
	}
	var next atomic.Int64
	next.Store(-1)
	var panicked atomic.Value
	var wg sync.WaitGroup
	sms := d.cfg.NumSMs
	if sms > gridDim {
		sms = gridDim
	}
	wg.Add(sms)
	for sm := 0; sm < sms; sm++ {
		go func() {
			defer wg.Done()
			shared := make([]float64, d.cfg.SharedMemPerBlock)
			for {
				blk := int(next.Add(1))
				if blk >= gridDim || panicked.Load() != nil {
					return
				}
				ctx := &BlockCtx{BlockID: blk, GridDim: gridDim, dev: d, shared: shared}
				if err := d.runBlock(ctx, kernel); err != nil {
					panicked.CompareAndSwap(nil, err)
					return
				}
				d.stats.global.Add(ctx.global)
				d.stats.shared.Add(ctx.sharedCnt)
				d.stats.constant.Add(ctx.constCnt)
				d.stats.arith.Add(ctx.arith)
				d.stats.blockCycles.Add(ctx.cycles)
				d.stats.blocks.Add(1)
				for i := range shared {
					shared[i] = 0
				}
			}
		}()
	}
	wg.Wait()
	if e := panicked.Load(); e != nil {
		return e.(error)
	}
	return nil
}

func (d *Device) runBlock(ctx *BlockCtx, kernel func(*BlockCtx)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gpusim: kernel fault in block %d: %v", ctx.BlockID, r)
		}
	}()
	kernel(ctx)
	return nil
}
