package gpusim

import (
	"errors"
	"reflect"
	"testing"
)

// The two-lifetime arena: resident allocations sit at the bottom of
// global memory, survive FreeBatch, and are only released by FreeAll;
// transfers touching them are counted separately.

func TestResidentArenaLifecycle(t *testing.T) {
	d := NewDevice(Config{}, 64)

	res, err := d.AllocResident(8)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}

	// Resident data must survive the batch reset; the batch region is
	// recycled.
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := d.CopyToDevice(res, want); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyToDevice(batch, []float64{9, 9, 9, 9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	d.FreeBatch()
	batch2, err := d.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if batch2 != batch {
		t.Fatalf("batch region not recycled: %+v vs %+v", batch2, batch)
	}
	got := make([]float64, 8)
	if err := d.CopyFromDevice(res, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resident data clobbered at %d: %v != %v", i, got[i], want[i])
		}
	}

	// Interleaving resident allocations into the batch region would
	// let FreeBatch strand a hole; it must be rejected.
	if _, err := d.AllocResident(4); err == nil {
		t.Fatal("resident alloc after batch alloc should fail")
	}

	// FreeAll releases the resident region too.
	d.FreeAll()
	if _, err := d.AllocResident(16); err != nil {
		t.Fatalf("resident alloc after FreeAll: %v", err)
	}

	// Capacity errors still surface as ErrOutOfMemory.
	if _, err := d.AllocResident(1024); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("oversized resident alloc: %v", err)
	}
}

func TestTransferCountersSplitByLifetime(t *testing.T) {
	d := NewDevice(Config{}, 64)
	res, err := d.AllocResident(8)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := d.Alloc(6)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, 8)
	if err := d.CopyToDevice(res, data); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyToDevice(batch, data[:6]); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyFromDevice(res, data[:4]); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyFromDevice(batch, data[:3]); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.ResidentTransferFloats != 8+4 {
		t.Fatalf("resident transfers = %d, want 12", s.ResidentTransferFloats)
	}
	if s.TransferFloats != 6+3 {
		t.Fatalf("batch transfers = %d, want 9", s.TransferFloats)
	}
	// Both flows cross the same host link, so both are charged in the
	// modeled time.
	cfg := d.Config()
	if got, want := s.ModeledCycles(cfg), (uint64(12)+9)*cfg.TransferCost; got != want {
		t.Fatalf("modeled cycles = %d, want %d", got, want)
	}
}

// Stats.Add must sum every numeric field — enforced by reflection so a
// future counter cannot silently drop out of the streaming-growth
// carry.
func TestStatsAddSumsEveryField(t *testing.T) {
	var a, b Stats
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	typ := av.Type()
	for i := 0; i < typ.NumField(); i++ {
		if typ.Field(i).Type.Kind() != reflect.Uint64 {
			t.Fatalf("Stats field %s is %s; Add assumes uint64 counters",
				typ.Field(i).Name, typ.Field(i).Type)
		}
		av.Field(i).SetUint(uint64(100 + i))
		bv.Field(i).SetUint(uint64(1000 * (i + 1)))
	}
	sum := a.Add(b)
	sv := reflect.ValueOf(sum)
	for i := 0; i < typ.NumField(); i++ {
		want := uint64(100+i) + uint64(1000*(i+1))
		if got := sv.Field(i).Uint(); got != want {
			t.Fatalf("Stats.Add dropped field %s: got %d, want %d",
				typ.Field(i).Name, got, want)
		}
	}
}
