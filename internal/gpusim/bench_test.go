package gpusim

import "testing"

// Micro-benches of the device model itself: how much host time the
// cost accounting adds per access kind. These bound the simulation
// overhead of the Chunked engine (the modeled cycles are the result;
// the host time is the price of obtaining them).
func BenchmarkLoadGlobal(b *testing.B) {
	d := NewDevice(Config{NumSMs: 1}, 1024)
	buf, _ := d.Alloc(1024)
	b.ResetTimer()
	_ = d.Launch(1, func(c *BlockCtx) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += c.LoadGlobal(buf, i&1023)
		}
		_ = sink
	})
}

func BenchmarkLoadShared(b *testing.B) {
	d := NewDevice(Config{NumSMs: 1, SharedMemPerBlock: 1024}, 64)
	b.ResetTimer()
	_ = d.Launch(1, func(c *BlockCtx) {
		var sink float64
		for i := 0; i < b.N; i++ {
			sink += c.LoadShared(i & 1023)
		}
		_ = sink
	})
}

func BenchmarkStageToShared(b *testing.B) {
	d := NewDevice(Config{NumSMs: 1, SharedMemPerBlock: 4096}, 8192)
	buf, _ := d.Alloc(4096)
	b.SetBytes(4096 * 8)
	b.ResetTimer()
	_ = d.Launch(1, func(c *BlockCtx) {
		for i := 0; i < b.N; i++ {
			c.StageToShared(buf, 0, 4096, 0)
		}
	})
}

func BenchmarkLaunchOverhead(b *testing.B) {
	d := NewDevice(Config{NumSMs: 8}, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Launch(64, func(c *BlockCtx) {}); err != nil {
			b.Fatal(err)
		}
	}
}
