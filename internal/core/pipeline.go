// Package core orchestrates the paper's three-stage high-performance
// risk analytics pipeline end to end: risk modelling (catastrophe
// models producing ELTs), portfolio risk management (aggregate
// analysis over a pre-simulated YELT producing YLTs), and dynamic
// financial analysis (integrating catastrophe YLTs with the other
// enterprise risks). Each stage is timed and its output data volume
// accounted, which exposes the paper's headline observation: the
// pipeline's data and compute demand *bursts* between stages (§II).
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/aggregate"
	"repro/internal/catalog"
	"repro/internal/catmodel"
	"repro/internal/cluster"
	"repro/internal/dfa"
	"repro/internal/diskstore"
	"repro/internal/elt"
	"repro/internal/exposure"
	"repro/internal/faultinject"
	"repro/internal/layers"
	"repro/internal/lossindex"
	"repro/internal/metrics"
	"repro/internal/stream"
	"repro/internal/synth"
	"repro/internal/warehouse"
	"repro/internal/yelt"
	"repro/internal/ylt"
)

// Config sizes and seeds a pipeline run.
type Config struct {
	Seed uint64
	// Stage 1: catalogue and book shape.
	NumEvents            int
	NumContracts         int
	LocationsPerContract int
	MeanEventsPerYear    float64
	// Stage 2: trial count and engine.
	NumTrials int
	Engine    aggregate.Engine // nil = Parallel
	Sampling  bool
	// Kernel selects the stage-2 trial-kernel layout (blocked SoA by
	// default; aggregate.KernelFlat pins the trial-at-a-time flat scan,
	// aggregate.KernelIndexed the pre-flat scan). Results are
	// bit-identical across kernels — this is the benchmarking lever
	// threaded through from the CLIs.
	Kernel aggregate.Kernel
	// TrialBlock is the blocked kernel's trial-block size; <= 0 means
	// aggregate.DefaultTrialBlock. Results are bit-independent of it.
	TrialBlock int
	// Streaming fuses YELT generation into the aggregate engines: trial
	// batches are re-derived on demand (yelt.Generator) and the table is
	// never materialized, so NumTrials is bounded by time instead of
	// memory. Results are bit-identical to the materialized path; the
	// stage report then accounts peak-resident bytes instead of the
	// table footprint, and Pipeline.YELT stays nil.
	Streaming bool
	// BatchTrials bounds the per-worker resident trial batch in
	// streaming mode; <= 0 means aggregate.DefaultBatchTrials.
	BatchTrials int
	// Spill (implies Streaming) generates the trial stream once, writes
	// trial-range shards into a diskstore, and runs the engine over the
	// spilled shards — re-scanning from disk instead of re-deriving per
	// pass, the third point on the memory/compute trade. The stage
	// report gains a yelt-spill line (shard bytes written, shard count).
	Spill bool
	// SpillDir roots the spill store; "" uses a fresh temp dir removed
	// when stage 2 finishes, a caller-supplied dir keeps the shards.
	SpillDir string
	// SpillParts is the shard count; <= 0 derives one shard per
	// 4*aggregate.DefaultBatchTrials trials (at least one).
	SpillParts int
	// SpillNodes is the spill store's simulated storage-node count;
	// <= 0 means yelt.DefaultSpillNodes. Shard-affine engines place
	// mappers against these nodes.
	SpillNodes int
	// SpillReplicas writes each spilled shard to this many distinct
	// storage nodes (clamped to SpillNodes; <= 1 means no replication).
	// With r >= 2, stage 2 survives the loss or corruption of any
	// single replica by failing over to a survivor.
	SpillReplicas int
	// Faults is the deterministic fault-injection plan (nil injects
	// nothing): shard-read failures are wired into the spill store,
	// node kills and split delays into the MapReduce engine's lanes.
	// Results must remain bit-identical to a fault-free run; only the
	// recovery counters on the stage report change.
	Faults *faultinject.Plan
	// Speculate turns on speculative re-execution of straggling map
	// tasks when the engine is aggregate.MapReduce (first finisher
	// wins, duplicates discarded; results unchanged).
	Speculate bool
	// SpillAttach runs stage 2 over shards an *earlier process* spilled
	// into SpillDir (required non-empty), re-attached through the spill
	// manifest instead of generated — the aggregate half of the
	// two-process handoff. The trial count comes from the shards; the
	// book is re-derived from Seed, so results are bit-identical to a
	// fused run with the same configuration.
	SpillAttach bool
	// Provision, when non-nil, drives each stage's worker bound from an
	// elasticity policy (internal/cluster) instead of the static
	// Workers value: each stage asks for its exploitable parallelism
	// and runs on what the policy allocates. Stage reports then carry
	// allocated-vs-busy processor-time — the paper's §II elasticity
	// story measured in the real pipeline, not just the E7 simulation.
	Provision cluster.Policy
	// CubeDims, when non-empty, materializes the warehouse data cube
	// over the stage-2 per-contract YLTs as a fourth stage line
	// ("warehouse"): the engines that complete batches exactly once
	// (Sequential, Parallel) feed the incremental warehouse.Builder
	// live as trial batches finish; the others replay their
	// Result.PerContract tables into it after the run — bit-identical
	// either way. The cube lands on Pipeline.Cube with a per-contract
	// registry for delta updates.
	CubeDims []string
	// CubeAttrs maps each contract to its dimension values
	// (CubeAttrs[i] for contract i); nil derives deterministic
	// synthetic attributes via warehouse.DefaultAttrs.
	CubeAttrs []map[string]string
	// Stage 3.
	Sources []dfa.Source // nil = StandardSources scaled to the cat AAL
	Rho     float64      // copula equicorrelation
	// Workers bounds every parallel phase; <= 0 means GOMAXPROCS.
	Workers int
	// TwoLayers adds working layers to each program.
	TwoLayers bool
}

// DefaultConfig returns a laptop-scale full pipeline run.
func DefaultConfig() Config {
	return Config{
		Seed:                 1,
		NumEvents:            10_000,
		NumContracts:         16,
		LocationsPerContract: 300,
		MeanEventsPerYear:    10,
		NumTrials:            100_000,
		Rho:                  0.25,
		TwoLayers:            true,
	}
}

// StageReport records one stage's cost and output volume.
type StageReport struct {
	Name     string
	Duration time.Duration
	// OutputBytes is the serialized size of the artifacts the stage
	// hands to the next stage — the "burst of data" measurement.
	OutputBytes int64
	// Items counts the stage's principal outputs (ELT records, YLT
	// trials, ...).
	Items int64
	// Workers is the processor count the stage ran under — provisioned
	// by Config.Provision when set, the static Workers bound otherwise.
	Workers int
	// AllocatedProcSecs is workers × duration: the processor-time
	// billed for the stage. BusyProcSecs is the processor-time actually
	// spent working — measured task time where the engine reports it
	// (MapReduce map tasks), min(demand, workers) × duration otherwise.
	// The gap between the two is what elastic provisioning reclaims.
	AllocatedProcSecs float64
	BusyProcSecs      float64
	// Faults carries the stage's fault-recovery counters (populated by
	// the MapReduce engine; zero for fault-free runs and other
	// engines).
	Faults FaultCounters
}

// FaultCounters accounts how much chaos a stage absorbed: failed map
// attempts and the retries that recovered them, speculative backups
// launched and won, shard reads failed over to another replica, and
// lane workers lost to node kills. Counters are observability only —
// a stage that completes is bit-identical to its fault-free run.
type FaultCounters struct {
	MapFailures    int64
	MapRetries     int64
	SpecLaunched   int64
	SpecWins       int64
	ShardFailovers int64
	WorkersLost    int64
}

// Any reports whether any fault-model event occurred.
func (f FaultCounters) Any() bool {
	return f.MapFailures+f.MapRetries+f.SpecLaunched+f.SpecWins+f.ShardFailovers+f.WorkersLost > 0
}

// Report is the output of a full pipeline run.
type Report struct {
	Stages      []StageReport
	Catastrophe *metrics.Summary
	Enterprise  *metrics.Summary
}

// Pipeline holds the artifacts as stages execute. Create with New,
// then either call Run or drive stages individually.
type Pipeline struct {
	Cfg Config

	Catalog   *catalog.Catalog
	Exposures []*exposure.Database
	ELTs      []*elt.Table
	Portfolio *layers.Portfolio
	// Index is the pre-joined event-major loss index over (ELTs,
	// Portfolio), built once at the end of stage 1 and shared by every
	// stage-2 engine run against this pipeline's book.
	Index *lossindex.Index
	// Flat is the flat SoA trial-kernel layout derived from Index —
	// built alongside it at the stage-1 boundary (both are pure
	// functions of the ELTs and portfolio) and shared read-only by
	// every stage-2 run.
	Flat      *lossindex.Flat
	YELT      *yelt.Table
	CatYLT    *ylt.Table
	AggResult *aggregate.Result
	// Cube is the materialized warehouse cube when Cfg.CubeDims is set
	// (nil otherwise), registry-bearing so contracts can be re-priced
	// in place via Cube.Replace.
	Cube      *warehouse.Cube
	DFAResult *dfa.Result

	Stages []StageReport
}

// New returns a pipeline for cfg with defaults filled in.
func New(cfg Config) *Pipeline {
	def := DefaultConfig()
	if cfg.NumEvents <= 0 {
		cfg.NumEvents = def.NumEvents
	}
	if cfg.NumContracts <= 0 {
		cfg.NumContracts = def.NumContracts
	}
	if cfg.LocationsPerContract <= 0 {
		cfg.LocationsPerContract = def.LocationsPerContract
	}
	if cfg.MeanEventsPerYear <= 0 {
		cfg.MeanEventsPerYear = def.MeanEventsPerYear
	}
	if cfg.NumTrials <= 0 {
		cfg.NumTrials = def.NumTrials
	}
	if cfg.Engine == nil {
		cfg.Engine = aggregate.Parallel{}
	}
	return &Pipeline{Cfg: cfg}
}

// setStage records rep in p.Stages, replacing any earlier report with
// the same name. Stage re-runs — engine or kernel sweeps calling
// RunStage2 repeatedly, a full Run after a quote path already
// triggered stage 1 — refresh their line instead of appending
// duplicates, so p.Stages always holds at most one line per stage.
func (p *Pipeline) setStage(rep StageReport) {
	for i := range p.Stages {
		if p.Stages[i].Name == rep.Name {
			p.Stages[i] = rep
			return
		}
	}
	p.Stages = append(p.Stages, rep)
}

// dropStage removes the named stage line, if present.
func (p *Pipeline) dropStage(name string) {
	for i := range p.Stages {
		if p.Stages[i].Name == name {
			p.Stages = append(p.Stages[:i], p.Stages[i+1:]...)
			return
		}
	}
}

// provisioned resolves a stage's worker bound: the elasticity policy
// when set (asked with the stage's exploitable parallelism), else the
// static Workers bound, else GOMAXPROCS. Always >= 1.
func (p *Pipeline) provisioned(demand int) int {
	if p.Cfg.Provision != nil {
		if w := p.Cfg.Provision.Provision(demand); w >= 1 {
			return w
		}
		return 1
	}
	if p.Cfg.Workers > 0 {
		return p.Cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// account fills a stage report's processor-time columns. busySecs <= 0
// falls back to min(workers, demand) × duration — a stage that doesn't
// measure per-task time is assumed busy up to its demand ceiling.
func account(rep *StageReport, workers, demand int, busySecs float64) {
	rep.Workers = workers
	rep.AllocatedProcSecs = float64(workers) * rep.Duration.Seconds()
	if busySecs <= 0 {
		busySecs = float64(min(workers, demand)) * rep.Duration.Seconds()
	}
	rep.BusyProcSecs = busySecs
}

// stage2Demand is stage 2's exploitable parallelism: one task per
// mapper split under default sizing (at least one).
func stage2Demand(numTrials int) int {
	d := (numTrials + aggregate.DefaultSplitTrials - 1) / aggregate.DefaultSplitTrials
	if d < 1 {
		d = 1
	}
	return d
}

// RunStage1 executes risk modelling: catalogue generation, synthetic
// exposure, and the catastrophe-model engine producing one ELT per
// contract. It is idempotent: the artifacts are pure functions of Cfg,
// so once they exist a second call (e.g. Run after a quote path
// already triggered stage 1) returns immediately instead of
// regenerating identical data.
func (p *Pipeline) RunStage1(ctx context.Context) error {
	if p.Catalog != nil && p.Index != nil {
		return nil
	}
	start := time.Now()
	ccfg := catalog.DefaultConfig()
	ccfg.NumEvents = p.Cfg.NumEvents
	ccfg.MeanEventsPerYear = p.Cfg.MeanEventsPerYear
	cat, err := catalog.Generate(ccfg, p.Cfg.Seed)
	if err != nil {
		return fmt.Errorf("core: stage 1: %w", err)
	}
	p.Catalog = cat

	eng := catmodel.New()
	workers := p.provisioned(p.Cfg.NumContracts)
	eng.Workers = workers
	p.Exposures = p.Exposures[:0]
	p.ELTs = p.ELTs[:0]
	var bytes, items int64
	for c := 0; c < p.Cfg.NumContracts; c++ {
		ecfg := exposure.DefaultConfig()
		ecfg.NumLocations = p.Cfg.LocationsPerContract
		db, err := exposure.Generate(ecfg, p.Cfg.Seed+uint64(1000+c))
		if err != nil {
			return fmt.Errorf("core: stage 1 exposure %d: %w", c, err)
		}
		p.Exposures = append(p.Exposures, db)
		tbl, err := eng.Run(ctx, cat, db, uint32(c+1))
		if err != nil {
			return fmt.Errorf("core: stage 1 contract %d: %w", c, err)
		}
		p.ELTs = append(p.ELTs, tbl)
		bytes += tbl.SizeBytes()
		items += int64(tbl.Len())
	}
	p.Portfolio = synth.BuildPortfolio(p.ELTs, false, p.Cfg.TwoLayers)
	rep := StageReport{
		Name: "risk-modelling", Duration: time.Since(start),
		OutputBytes: bytes, Items: items,
	}
	account(&rep, workers, p.Cfg.NumContracts, 0)
	p.setStage(rep)

	// Pre-join the book's ELTs into the event-major loss index here, at
	// the stage boundary: the index is stage-1 output (a function of the
	// ELTs and the portfolio only), and stage-2 re-runs — engine sweeps,
	// trial-count sweeps — all reuse it without rebuilding. The flat
	// SoA kernel layout is derived in the same breath and reported on
	// the same stage line (its build time and footprint are part of the
	// pre-join cost the trial loop amortizes away).
	idxStart := time.Now()
	idx, err := lossindex.Build(p.ELTs, p.Portfolio)
	if err != nil {
		return fmt.Errorf("core: stage 1 loss index: %w", err)
	}
	fx, err := lossindex.Flatten(idx, p.Portfolio)
	if err != nil {
		return fmt.Errorf("core: stage 1 flat kernel layout: %w", err)
	}
	p.Index = idx
	p.Flat = fx
	p.setStage(StageReport{
		Name: "loss-index", Duration: time.Since(idxStart),
		OutputBytes: idx.SizeBytes() + fx.SizeBytes(), Items: int64(idx.NumEntries()),
	})
	return nil
}

// RunStage2 executes portfolio risk management: YELT pre-simulation
// and aggregate analysis producing the catastrophe YLT. In streaming
// mode the two are fused — trial batches are derived on demand and the
// YELT is never materialized, so the stage report accounts the
// peak-resident trial bytes (the memory envelope) where the
// materialized path accounts the full table. Spill mode generates the
// stream once into diskstore shards and runs the engine over the
// spilled partitions (re-scan instead of re-derive), reported as a
// separate yelt-spill stage line.
func (p *Pipeline) RunStage2(ctx context.Context) error {
	if p.Catalog == nil {
		return errors.New("core: stage 2 requires stage 1 artifacts")
	}
	if !p.Cfg.Spill {
		// A non-spill re-run supersedes any earlier spilled run; its
		// stale shard line no longer describes this pipeline's stage 2.
		p.dropStage("yelt-spill")
	}
	start := time.Now()
	in := &aggregate.Input{ELTs: p.ELTs, Portfolio: p.Portfolio, Index: p.Index, Flat: p.Flat}
	var gen *yelt.Generator
	var ds *yelt.DiskSource
	switch {
	case p.Cfg.SpillAttach:
		d, err := p.AttachSpill()
		if err != nil {
			return err
		}
		// The shards fix the trial count: the spilling process decided
		// it, this process just scans.
		p.Cfg.NumTrials = d.TrialCount()
		ds = d
		in.Source = ds
		attachBytes, err := ds.SizeBytes()
		if err != nil {
			return fmt.Errorf("core: stage 2 attach size: %w", err)
		}
		p.setStage(StageReport{
			Name: "yelt-attach", Duration: time.Since(start),
			OutputBytes: attachBytes, Items: int64(ds.Shards()),
		})
		start = time.Now()
	case p.Cfg.Streaming || p.Cfg.Spill:
		ycfg := yelt.Config{NumTrials: p.Cfg.NumTrials, Workers: p.Cfg.Workers}
		g, err := yelt.NewGenerator(p.Catalog, ycfg, p.Cfg.Seed+7)
		if err != nil {
			return fmt.Errorf("core: stage 2 yelt: %w", err)
		}
		gen = g
		in.Source = gen
		if p.Cfg.Spill {
			d, cleanup, err := p.spillYELT(ctx, gen)
			if err != nil {
				return err
			}
			defer cleanup()
			ds = d
			in.Source = ds
			// The spill interval is its own stage line; restart the
			// portfolio-risk clock so the two lines sum to wall time
			// instead of double-counting the write.
			start = time.Now()
		}
	default:
		ycfg := yelt.Config{NumTrials: p.Cfg.NumTrials, Workers: p.Cfg.Workers}
		y, err := yelt.Generate(ctx, p.Catalog, ycfg, p.Cfg.Seed+7)
		if err != nil {
			return fmt.Errorf("core: stage 2 yelt: %w", err)
		}
		p.YELT = y
		in.YELT = y
	}

	demand := stage2Demand(p.Cfg.NumTrials)
	workers := p.provisioned(demand)
	// The fault plan and speculation flag ride into the one engine with
	// a failure model; other engines run fault-free (their store-level
	// read faults would surface as plain errors, not recoveries).
	engine := p.Cfg.Engine
	if mr, ok := engine.(aggregate.MapReduce); ok && (p.Cfg.Faults != nil || p.Cfg.Speculate) {
		if mr.Faults == nil {
			mr.Faults = p.Cfg.Faults
		}
		mr.Speculate = mr.Speculate || p.Cfg.Speculate
		engine = mr
	}
	aggCfg := aggregate.Config{
		Seed:        p.Cfg.Seed + 13,
		Sampling:    p.Cfg.Sampling,
		Workers:     workers,
		BatchTrials: p.Cfg.BatchTrials,
		Kernel:      p.Cfg.Kernel,
		TrialBlock:  p.Cfg.TrialBlock,
	}
	// The cube builder is created here, after the source switch: a
	// spill attach fixes NumTrials from the shards, and the builder's
	// cell columns are sized by the final trial count.
	var builder *warehouse.Builder
	liveSink := false
	if len(p.Cfg.CubeDims) > 0 {
		attrs := p.Cfg.CubeAttrs
		if attrs == nil {
			attrs = warehouse.DefaultAttrs(p.Cfg.NumContracts)
		}
		b, err := warehouse.NewBuilder(p.Cfg.CubeDims, attrs, p.Cfg.NumTrials, workers)
		if err != nil {
			return fmt.Errorf("core: stage 2 warehouse: %w", err)
		}
		builder = b
		aggCfg.PerContract = true
		// Only the exactly-once engines may feed the builder live;
		// engines with replay semantics (MapReduce retries and
		// speculative backups) or without contract-major batches feed
		// from Result.PerContract after the run.
		switch engine.(type) {
		case aggregate.Sequential, aggregate.Parallel:
			liveSink = true
			aggCfg.BatchSink = func(lo int, agg, occ [][]float64) {
				// Errors are latched in the builder and surface from
				// Finalize with full context.
				_ = b.IngestBatch(lo, agg, occ)
			}
		}
	}
	res, err := engine.Run(ctx, in, aggCfg)
	if err != nil {
		return fmt.Errorf("core: stage 2 aggregate: %w", err)
	}
	p.AggResult = res
	p.CatYLT = res.Portfolio
	if builder != nil {
		if err := p.buildCube(ctx, builder, res, liveSink, workers); err != nil {
			return err
		}
	} else {
		p.Cube = nil
		p.dropStage("warehouse")
	}
	rep := StageReport{Name: "portfolio-risk", Duration: time.Since(start)}
	switch {
	case ds != nil:
		// Spilled: the engine re-scans shards; Items counts occurrences
		// read back from disk (each re-scanning pass counts).
		rep.OutputBytes = res.PeakResidentBytes + res.Portfolio.SizeBytes()
		rep.Items = ds.Scanned()
	case p.Cfg.Streaming:
		rep.OutputBytes = res.PeakResidentBytes + res.Portfolio.SizeBytes()
		// Items counts occurrences *streamed*: for the single-pass
		// engines used here it equals the occurrence count of the table
		// the run avoided; an engine that re-scans the source counts
		// each pass.
		rep.Items = gen.Streamed()
	default:
		rep.OutputBytes = p.YELT.SizeBytes() + res.Portfolio.SizeBytes()
		rep.Items = int64(p.YELT.Len())
	}
	rep.Faults = FaultCounters{
		MapFailures:    res.MapFailures,
		MapRetries:     res.MapRetries,
		SpecLaunched:   res.SpecLaunched,
		SpecWins:       res.SpecWins,
		ShardFailovers: res.ShardFailovers,
		WorkersLost:    res.WorkersLost,
	}
	account(&rep, workers, demand, res.BusySeconds)
	p.setStage(rep)
	return nil
}

// buildCube finalizes the incremental warehouse cube after the engine
// run and records the "warehouse" stage line. When the engine could
// not feed the builder live, the per-contract result tables are
// replayed through IngestBatch in batch-sized disjoint ranges — the
// same fold order as the live path, so the cube is bit-identical. The
// stage's duration sums the cumulative fold busy-time and the
// finalize (summarize) wall time; OutputBytes is the materialized
// cube footprint.
func (p *Pipeline) buildCube(ctx context.Context, builder *warehouse.Builder, res *aggregate.Result, liveSink bool, workers int) error {
	if res.PerContract == nil {
		return fmt.Errorf("core: stage 2 warehouse: engine %q produced no per-contract tables", p.Cfg.Engine.Name())
	}
	if !liveSink {
		batch := p.Cfg.BatchTrials
		if batch <= 0 {
			batch = aggregate.DefaultBatchTrials
		}
		nc := len(res.PerContract)
		for _, r := range stream.Chunks(p.Cfg.NumTrials, batch) {
			agg := make([][]float64, nc)
			occ := make([][]float64, nc)
			for ci, t := range res.PerContract {
				agg[ci] = t.Agg[r.Lo:r.Hi]
				occ[ci] = t.OccMax[r.Lo:r.Hi]
			}
			if err := builder.IngestBatch(r.Lo, agg, occ); err != nil {
				return fmt.Errorf("core: stage 2 warehouse replay: %w", err)
			}
		}
	}
	finStart := time.Now()
	cube, err := builder.Finalize(ctx, res.PerContract)
	if err != nil {
		return fmt.Errorf("core: stage 2 warehouse: %w", err)
	}
	p.Cube = cube
	rep := StageReport{
		Name:        "warehouse",
		Duration:    builder.FoldDuration() + time.Since(finStart),
		OutputBytes: cube.SizeBytes(),
		Items:       int64(cube.Cells()),
	}
	account(&rep, workers, cube.Cells(), 0)
	p.setStage(rep)
	return nil
}

// spillYELT generates the trial stream once and writes it as shards
// under Cfg.SpillDir (a fresh temp dir when empty; cleanup removes it
// — a no-op for caller-supplied dirs, whose shards outlive the run).
// The write is recorded as the yelt-spill stage line.
func (p *Pipeline) spillYELT(ctx context.Context, gen *yelt.Generator) (ds *yelt.DiskSource, cleanup func(), err error) {
	spillStart := time.Now()
	dir := p.Cfg.SpillDir
	cleanup = func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "riskspill-*")
		if err != nil {
			return nil, nil, fmt.Errorf("core: stage 2 spill dir: %w", err)
		}
		cleanup = func() { os.RemoveAll(tmp) } // shards only needed during the engine run
		dir = tmp
	}
	parts := p.Cfg.SpillParts
	if parts <= 0 {
		parts = aggregate.DefaultSpillParts(p.Cfg.NumTrials)
	}
	d, err := yelt.SpillToDir(ctx, gen, dir, p.Cfg.SpillNodes, parts, p.Cfg.SpillReplicas, p.Cfg.Workers)
	if err != nil {
		cleanup()
		return nil, nil, fmt.Errorf("core: stage 2 spill: %w", err)
	}
	if p.Cfg.Faults != nil {
		// Chaos starts after the spill commits: the plan injects into
		// reads, and a torn spill is the crash case the manifest refuses.
		d.Store().SetReadFault(p.Cfg.Faults.DiskRead)
	}
	spillBytes, err := d.SizeBytes()
	if err != nil {
		cleanup()
		return nil, nil, fmt.Errorf("core: stage 2 spill size: %w", err)
	}
	p.setStage(StageReport{
		Name: "yelt-spill", Duration: time.Since(spillStart),
		OutputBytes: spillBytes, Items: int64(d.Shards()),
	})
	return d, cleanup, nil
}

// SpillStage2 is the spill half of the two-process handoff: stage 1
// re-derives the book, the trial stream is generated once and spilled
// as shards + manifest into Cfg.SpillDir, and the process stops there
// — no aggregation. A separate process with Cfg.SpillAttach set picks
// the shards up via the manifest and runs stage 2 over them. Requires
// SpillDir (the shards must outlive this process).
func (p *Pipeline) SpillStage2(ctx context.Context) error {
	if p.Cfg.SpillDir == "" {
		return errors.New("core: SpillStage2 requires SpillDir — shards must outlive the process")
	}
	if err := p.RunStage1(ctx); err != nil {
		return err
	}
	ycfg := yelt.Config{NumTrials: p.Cfg.NumTrials, Workers: p.Cfg.Workers}
	gen, err := yelt.NewGenerator(p.Catalog, ycfg, p.Cfg.Seed+7)
	if err != nil {
		return fmt.Errorf("core: stage 2 yelt: %w", err)
	}
	_, _, err = p.spillYELT(ctx, gen)
	return err
}

// AttachSpill re-attaches to the shards an earlier process spilled
// into Cfg.SpillDir, through the spill manifest (yelt.OpenDiskSource
// verifies every shard against it, naming any culprit).
func (p *Pipeline) AttachSpill() (*yelt.DiskSource, error) {
	if p.Cfg.SpillDir == "" {
		return nil, errors.New("core: SpillAttach requires SpillDir")
	}
	store, err := diskstore.Open(p.Cfg.SpillDir)
	if err != nil {
		return nil, fmt.Errorf("core: attaching spill store: %w", err)
	}
	ds, err := yelt.OpenDiskSource(store, "yelt")
	if err != nil {
		return nil, fmt.Errorf("core: attaching spilled yelt: %w", err)
	}
	if p.Cfg.Faults != nil {
		store.SetReadFault(p.Cfg.Faults.DiskRead)
	}
	return ds, nil
}

// RunStage3 executes dynamic financial analysis over the catastrophe
// YLT.
func (p *Pipeline) RunStage3(ctx context.Context) error {
	if p.CatYLT == nil {
		return errors.New("core: stage 3 requires stage 2 artifacts")
	}
	start := time.Now()
	sources := p.Cfg.Sources
	if sources == nil {
		sources = dfa.StandardSources(p.CatYLT.Mean())
	}
	// One integration task per enterprise source plus the combine pass.
	demand := len(sources) + 1
	workers := p.provisioned(demand)
	ig := &dfa.Integrator{Sources: sources}
	res, err := ig.Run(ctx, p.CatYLT, dfa.Config{
		Seed:    p.Cfg.Seed + 29,
		Workers: workers,
		Rho:     p.Cfg.Rho,
	})
	if err != nil {
		return fmt.Errorf("core: stage 3: %w", err)
	}
	p.DFAResult = res
	rep := StageReport{
		Name: "dfa", Duration: time.Since(start),
		OutputBytes: res.TotalBytes,
		Items:       int64(res.Enterprise.NumTrials()) * int64(len(res.PerSource)+2),
	}
	account(&rep, workers, demand, 0)
	p.setStage(rep)
	return nil
}

// Run executes all three stages and assembles the report.
func (p *Pipeline) Run(ctx context.Context) (*Report, error) {
	if err := p.RunStage1(ctx); err != nil {
		return nil, err
	}
	if err := p.RunStage2(ctx); err != nil {
		return nil, err
	}
	if err := p.RunStage3(ctx); err != nil {
		return nil, err
	}
	catSum, err := metrics.Summarize(p.CatYLT)
	if err != nil {
		return nil, fmt.Errorf("core: cat summary: %w", err)
	}
	entSum, err := metrics.Summarize(p.DFAResult.Enterprise)
	if err != nil {
		return nil, fmt.Errorf("core: enterprise summary: %w", err)
	}
	return &Report{Stages: p.Stages, Catastrophe: catSum, Enterprise: entSum}, nil
}
