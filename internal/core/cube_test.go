package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/warehouse"
)

// TestPipelineCubeStage pins the warehouse stage line and the
// cross-engine equivalence of the pipeline-built cube: the live-sink
// engines (Sequential, Parallel) and the replay engines (MapReduce)
// must materialize bit-identical cubes, registry-bearing for delta
// updates.
func TestPipelineCubeStage(t *testing.T) {
	run := func(eng aggregate.Engine, streaming bool) *Pipeline {
		t.Helper()
		cfg := smallConfig(5)
		cfg.Engine = eng
		cfg.Streaming = streaming
		cfg.Sampling = true
		cfg.CubeDims = warehouse.DefaultDims()
		p := New(cfg)
		if _, err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if p.Cube == nil {
			t.Fatal("pipeline did not materialize a cube")
		}
		return p
	}

	ref := run(aggregate.Parallel{}, false)
	var wh *StageReport
	for i := range ref.Stages {
		if ref.Stages[i].Name == "warehouse" {
			wh = &ref.Stages[i]
		}
	}
	if wh == nil {
		t.Fatalf("no warehouse stage line: %+v", ref.Stages)
	}
	if wh.Duration <= 0 || wh.OutputBytes <= 0 || wh.Items != int64(ref.Cube.Cells()) {
		t.Fatalf("warehouse line not accounted: %+v", wh)
	}
	if ref.Cube.NumContracts() != ref.Cfg.NumContracts {
		t.Fatalf("cube registry has %d contracts", ref.Cube.NumContracts())
	}

	for _, alt := range []struct {
		name      string
		eng       aggregate.Engine
		streaming bool
	}{
		{"sequential-streaming", aggregate.Sequential{}, true},
		{"mapreduce-replay", aggregate.MapReduce{}, false},
	} {
		p := run(alt.eng, alt.streaming)
		if got, want := p.Cube.Keys(), ref.Cube.Keys(); len(got) != len(want) {
			t.Fatalf("%s: %d cells vs %d", alt.name, len(got), len(want))
		}
		for _, key := range ref.Cube.Keys() {
			a, err := p.Cube.Query(keyFilter(t, p.Cube, key))
			if err != nil {
				t.Fatalf("%s: %v", alt.name, err)
			}
			b, _ := ref.Cube.Query(keyFilter(t, ref.Cube, key))
			for i := range b.Table.Agg {
				if math.Float64bits(a.Table.Agg[i]) != math.Float64bits(b.Table.Agg[i]) ||
					math.Float64bits(a.Table.OccMax[i]) != math.Float64bits(b.Table.OccMax[i]) {
					t.Fatalf("%s: cell %s trial %d differs from parallel reference", alt.name, key, i)
				}
			}
		}
	}

	// A cube-less re-run drops the stage line and the cube.
	cfg := ref.Cfg
	cfg.CubeDims = nil
	p2 := New(cfg)
	if _, err := p2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p2.Cube != nil {
		t.Fatal("cube-less run left a cube")
	}
	for _, s := range p2.Stages {
		if s.Name == "warehouse" {
			t.Fatal("cube-less run left a warehouse stage line")
		}
	}
}

// keyFilter reverses a cell key into a Query filter through the
// cube's own dimensions — enough for test keys without hostile
// characters.
func keyFilter(t *testing.T, c *warehouse.Cube, key string) map[string]string {
	t.Helper()
	filter := map[string]string{}
	for _, part := range splitList(key, ',') {
		kv := splitList(part, '=')
		if len(kv) != 2 {
			t.Fatalf("unparseable key %q", key)
		}
		filter[kv[0]] = kv[1]
	}
	return filter
}

func splitList(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// TestPipelineCubeRejectsEngineWithoutPerContract pins the clear
// error for engines that cannot produce per-contract tables.
func TestPipelineCubeRejectsEngineWithoutPerContract(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Engine = &aggregate.Reinstatements{}
	cfg.CubeDims = warehouse.DefaultDims()
	p := New(cfg)
	if _, err := p.Run(context.Background()); err == nil {
		t.Fatal("reinstatements engine cannot feed the cube; expected an error")
	}
}
