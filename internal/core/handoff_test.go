package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/aggregate"
	"repro/internal/cluster"
	"repro/internal/diskstore"
)

// The two-process handoff contract: a pipeline that only spills
// (SpillStage2) followed by a separate pipeline that re-attaches
// (SpillAttach) must reproduce the fused spilled run bit-for-bit —
// the trial data crosses the process boundary through the shard files
// and manifest alone, the book is re-derived from the seed.
func TestTwoProcessHandoffBitIdentical(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	fusedCfg := smallConfig(11)
	fusedCfg.Spill = true
	fusedCfg.Engine = aggregate.MapReduce{SplitTrials: 400}
	fused := New(fusedCfg)
	if _, err := fused.Run(ctx); err != nil {
		t.Fatal(err)
	}

	// Process A: stage 1 + spill, no aggregation.
	spillCfg := smallConfig(11)
	spillCfg.Spill = true
	spillCfg.SpillDir = dir
	spiller := New(spillCfg)
	if err := spiller.SpillStage2(ctx); err != nil {
		t.Fatal(err)
	}
	if spiller.CatYLT != nil {
		t.Fatal("spill half must not aggregate")
	}

	// Process B: fresh pipeline, re-attach and aggregate. NumTrials is
	// deliberately wrong — the shards must decide.
	aggCfg := smallConfig(11)
	aggCfg.SpillAttach = true
	aggCfg.SpillDir = dir
	aggCfg.NumTrials = 999_999
	aggCfg.Engine = aggregate.MapReduce{SplitTrials: 400}
	agg := New(aggCfg)
	rep, err := agg.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Cfg.NumTrials != smallConfig(11).NumTrials {
		t.Fatalf("attached trial count %d, want %d from shards", agg.Cfg.NumTrials, smallConfig(11).NumTrials)
	}
	var attach *StageReport
	for i := range rep.Stages {
		if rep.Stages[i].Name == "yelt-attach" {
			attach = &rep.Stages[i]
		}
		if rep.Stages[i].Name == "yelt-spill" {
			t.Fatal("attach half recorded a yelt-spill line it never performed")
		}
	}
	if attach == nil || attach.OutputBytes <= 0 {
		t.Fatalf("no yelt-attach stage line with bytes in %+v", rep.Stages)
	}
	if len(fused.CatYLT.Agg) != len(agg.CatYLT.Agg) {
		t.Fatalf("trial counts differ: fused %d vs attached %d", len(fused.CatYLT.Agg), len(agg.CatYLT.Agg))
	}
	for i := range fused.CatYLT.Agg {
		if fused.CatYLT.Agg[i] != agg.CatYLT.Agg[i] {
			t.Fatalf("trial %d: fused %v vs attached %v", i, fused.CatYLT.Agg[i], agg.CatYLT.Agg[i])
		}
		if fused.CatYLT.OccMax[i] != agg.CatYLT.OccMax[i] {
			t.Fatalf("trial %d: occ-max diverged", i)
		}
	}
}

func TestSpillStage2RequiresDir(t *testing.T) {
	p := New(smallConfig(3))
	if err := p.SpillStage2(context.Background()); err == nil {
		t.Fatal("SpillStage2 without SpillDir should refuse")
	}
	cfg := smallConfig(3)
	cfg.SpillAttach = true
	if _, err := New(cfg).Run(context.Background()); err == nil {
		t.Fatal("SpillAttach without SpillDir should refuse")
	}
}

// A shard lost between the spill and aggregate processes must fail the
// attach with an error naming the shard — never aggregate a short book.
func TestAttachRefusesDamagedSpill(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := smallConfig(5)
	cfg.Spill = true
	cfg.SpillDir = dir
	cfg.SpillParts = 4
	if err := New(cfg).SpillStage2(ctx); err != nil {
		t.Fatal(err)
	}
	store, err := diskstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Remove("yelt", 2); err != nil {
		t.Fatal(err)
	}
	aggCfg := smallConfig(5)
	aggCfg.SpillAttach = true
	aggCfg.SpillDir = dir
	_, err = New(aggCfg).Run(ctx)
	if err == nil {
		t.Fatal("attach over a damaged spill should refuse")
	}
	if !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("error %q does not name the missing shard", err)
	}
}

// Under a provisioning policy every stage report carries the
// allocated-vs-busy processor-time columns, with workers driven by the
// policy: elastic follows each stage's demand, static pins the fleet.
func TestProvisionedStageAccounting(t *testing.T) {
	cfg := smallConfig(9)
	cfg.Provision = cluster.Elastic{Max: 4}
	p := New(cfg)
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Stages {
		if s.Name == "yelt-spill" || s.Name == "loss-index" || s.Name == "yelt-attach" {
			continue // sub-stage lines don't carry worker accounting
		}
		if s.Workers <= 0 || s.Workers > 4 {
			t.Fatalf("stage %q provisioned %d workers under elastic:4", s.Name, s.Workers)
		}
		if s.AllocatedProcSecs <= 0 || s.BusyProcSecs <= 0 {
			t.Fatalf("stage %q missing processor-time accounting: %+v", s.Name, s)
		}
		if s.BusyProcSecs > s.AllocatedProcSecs*1.01 {
			t.Fatalf("stage %q busier than allocated: busy=%v alloc=%v", s.Name, s.BusyProcSecs, s.AllocatedProcSecs)
		}
	}
	// risk-modelling demand is 3 contracts: elastic provisions 3, not 4.
	if rep.Stages[0].Workers != 3 {
		t.Fatalf("risk-modelling workers = %d, want demand-driven 3", rep.Stages[0].Workers)
	}

	staticCfg := smallConfig(9)
	staticCfg.Provision = cluster.Static{N: 2}
	sp := New(staticCfg)
	srep, err := sp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range srep.Stages {
		if s.Name == "yelt-spill" || s.Name == "loss-index" || s.Name == "yelt-attach" {
			continue
		}
		if s.Workers != 2 {
			t.Fatalf("stage %q workers = %d under static:2", s.Name, s.Workers)
		}
	}
	// Provisioning is a scheduling lever: results must match the
	// unprovisioned run bit-for-bit.
	base := New(smallConfig(9))
	if _, err := base.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range base.CatYLT.Agg {
		if base.CatYLT.Agg[i] != p.CatYLT.Agg[i] || base.CatYLT.Agg[i] != sp.CatYLT.Agg[i] {
			t.Fatalf("trial %d: provisioning changed results", i)
		}
	}
}
