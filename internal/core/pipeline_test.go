package core

import (
	"context"
	"testing"

	"repro/internal/aggregate"
)

func smallConfig(seed uint64) Config {
	return Config{
		Seed:                 seed,
		NumEvents:            600,
		NumContracts:         3,
		LocationsPerContract: 80,
		MeanEventsPerYear:    10,
		NumTrials:            1500,
		Rho:                  0.2,
		TwoLayers:            true,
	}
}

func TestFullPipelineRuns(t *testing.T) {
	p := New(smallConfig(1))
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stages) != 4 {
		t.Fatalf("stages = %d", len(rep.Stages))
	}
	names := []string{"risk-modelling", "loss-index", "portfolio-risk", "dfa"}
	for i, s := range rep.Stages {
		if s.Name != names[i] {
			t.Fatalf("stage %d = %q", i, s.Name)
		}
		if s.Duration <= 0 {
			t.Fatalf("stage %q has no duration", s.Name)
		}
		if s.OutputBytes <= 0 {
			t.Fatalf("stage %q reports no output data", s.Name)
		}
	}
	if rep.Catastrophe == nil || rep.Enterprise == nil {
		t.Fatal("summaries missing")
	}
	if rep.Catastrophe.AAL <= 0 {
		t.Fatal("cat AAL should be positive")
	}
	// Enterprise risk includes non-cat sources: its volatility should
	// exceed the cat book's alone... not necessarily AAL (investment
	// income offsets), so assert on spread.
	if rep.Enterprise.AggStdDev <= 0 {
		t.Fatal("enterprise spread should be positive")
	}
}

// A spilled pipeline must report the extra yelt-spill stage line,
// produce per-trial losses bit-identical to the materialized path, and
// never materialize the YELT on the pipeline.
func TestPipelineSpilledStage2(t *testing.T) {
	mat := New(smallConfig(7))
	if _, err := mat.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig(7)
	cfg.Spill = true
	cfg.SpillParts = 4
	cfg.Engine = aggregate.MapReduce{SplitTrials: 400}
	cfg.BatchTrials = 128
	sp := New(cfg)
	rep, err := sp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sp.YELT != nil {
		t.Fatal("spilled pipeline should not materialize the YELT")
	}
	var spillLine *StageReport
	for i := range rep.Stages {
		if rep.Stages[i].Name == "yelt-spill" {
			spillLine = &rep.Stages[i]
		}
	}
	if spillLine == nil {
		t.Fatalf("no yelt-spill stage line in %v", rep.Stages)
	}
	if spillLine.Items != 4 {
		t.Fatalf("spill shards = %d, want 4", spillLine.Items)
	}
	if spillLine.OutputBytes <= 0 {
		t.Fatal("spill line reports no bytes written")
	}
	for i := range mat.CatYLT.Agg {
		if mat.CatYLT.Agg[i] != sp.CatYLT.Agg[i] {
			t.Fatalf("trial %d: materialized %v vs spilled %v", i, mat.CatYLT.Agg[i], sp.CatYLT.Agg[i])
		}
	}
}

func TestPipelineDataBurst(t *testing.T) {
	// The paper's observation: stage 2's data volume dwarfs stage 1's.
	p := New(smallConfig(2))
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]StageReport{}
	for _, s := range rep.Stages {
		byName[s.Name] = s
	}
	if byName["portfolio-risk"].OutputBytes <= byName["risk-modelling"].OutputBytes {
		t.Fatalf("stage-2 output (%d B) should exceed stage-1 (%d B)",
			byName["portfolio-risk"].OutputBytes, byName["risk-modelling"].OutputBytes)
	}
	// The pre-joined index trades a constant-factor memory overhead over
	// the raw ELTs for scan-order access; it must report its volume —
	// including the flat kernel layout built alongside it.
	if byName["loss-index"].OutputBytes <= 0 {
		t.Fatal("loss-index stage reports no bytes")
	}
	if p.Index == nil {
		t.Fatal("pipeline did not retain the loss index")
	}
	if p.Flat == nil {
		t.Fatal("pipeline did not retain the flat kernel layout")
	}
	if byName["loss-index"].OutputBytes <= p.Index.SizeBytes() {
		t.Fatal("loss-index stage line does not include the flat layout bytes")
	}
}

func TestStageOrderEnforced(t *testing.T) {
	p := New(smallConfig(3))
	if err := p.RunStage2(context.Background()); err == nil {
		t.Fatal("stage 2 without stage 1 should error")
	}
	if err := p.RunStage3(context.Background()); err == nil {
		t.Fatal("stage 3 without stage 2 should error")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	a := New(smallConfig(4))
	if _, err := a.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	b := New(smallConfig(4))
	if _, err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.CatYLT.Mean() != b.CatYLT.Mean() {
		t.Fatal("pipeline not reproducible")
	}
	for i := range a.DFAResult.Enterprise.Agg {
		if a.DFAResult.Enterprise.Agg[i] != b.DFAResult.Enterprise.Agg[i] {
			t.Fatalf("enterprise trial %d differs", i)
		}
	}
}

func TestEngineChoice(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Engine = aggregate.Sequential{}
	seq := New(cfg)
	if _, err := seq.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	cfg2 := smallConfig(5)
	cfg2.Engine = aggregate.Parallel{}
	par := New(cfg2)
	if _, err := par.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range seq.CatYLT.Agg {
		if seq.CatYLT.Agg[i] != par.CatYLT.Agg[i] {
			t.Fatal("engines disagree inside the pipeline")
		}
	}
}

// Stage 1 is idempotent: a second RunStage1 (or a full Run after a
// quote path already triggered stage 1) must keep the existing
// artifacts and append no duplicate stage lines.
func TestStage1Idempotent(t *testing.T) {
	p := New(smallConfig(8))
	if err := p.RunStage1(context.Background()); err != nil {
		t.Fatal(err)
	}
	cat, idx := p.Catalog, p.Index
	if err := p.RunStage1(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.Catalog != cat || p.Index != idx {
		t.Fatal("second RunStage1 regenerated stage-1 artifacts")
	}
	if len(p.Stages) != 2 {
		t.Fatalf("stages after two RunStage1 = %d, want 2", len(p.Stages))
	}
}

// The serving lifecycle: RunStage1 first (a quote warm-up), then a
// full Run for the portfolio report. Stage 1 must not re-execute and
// every stage must report exactly one line.
func TestRunAfterStage1NoDuplicateStageLines(t *testing.T) {
	p := New(smallConfig(9))
	if err := p.RunStage1(context.Background()); err != nil {
		t.Fatal(err)
	}
	cat := p.Catalog
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p.Catalog != cat {
		t.Fatal("Run re-executed stage 1 from scratch")
	}
	counts := map[string]int{}
	for _, s := range rep.Stages {
		counts[s.Name]++
	}
	for _, name := range []string{"risk-modelling", "loss-index", "portfolio-risk", "dfa"} {
		if counts[name] != 1 {
			t.Fatalf("stage %q has %d report lines, want 1 (stages: %v)", name, counts[name], rep.Stages)
		}
	}
	if len(rep.Stages) != 4 {
		t.Fatalf("stages = %d, want 4", len(rep.Stages))
	}
}

// A kernel sweep re-running stage 2 on one pipeline (as benchtables
// does) must refresh the portfolio-risk line in place, not accumulate
// one line per run — and the swept kernels must agree bit-identically.
func TestRepeatedStage2ReplacesStageLine(t *testing.T) {
	p := New(smallConfig(10))
	if err := p.RunStage1(context.Background()); err != nil {
		t.Fatal(err)
	}
	var ref []float64
	for i, kern := range []aggregate.Kernel{aggregate.KernelBlocked, aggregate.KernelFlat, aggregate.KernelIndexed} {
		p.Cfg.Kernel = kern
		if err := p.RunStage2(context.Background()); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = append(ref, p.CatYLT.Agg...)
		} else {
			for t2 := range ref {
				if ref[t2] != p.CatYLT.Agg[t2] {
					t.Fatalf("kernel sweep diverged at trial %d", t2)
				}
			}
		}
	}
	counts := map[string]int{}
	for _, s := range p.Stages {
		counts[s.Name]++
	}
	if counts["portfolio-risk"] != 1 {
		t.Fatalf("portfolio-risk lines = %d after 3 stage-2 runs, want 1", counts["portfolio-risk"])
	}
	if len(p.Stages) != 3 {
		t.Fatalf("stages = %d, want 3 (risk-modelling, loss-index, portfolio-risk)", len(p.Stages))
	}
}

// A non-spill stage-2 re-run supersedes an earlier spilled run: the
// stale yelt-spill line must not linger in the report.
func TestStage2RerunDropsStaleSpillLine(t *testing.T) {
	cfg := smallConfig(11)
	cfg.Spill = true
	cfg.SpillParts = 2
	p := New(cfg)
	if err := p.RunStage1(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.RunStage2(context.Background()); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range p.Stages {
		if s.Name == "yelt-spill" {
			found = true
		}
	}
	if !found {
		t.Fatal("spilled run did not report a yelt-spill line")
	}
	p.Cfg.Spill = false
	if err := p.RunStage2(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Stages {
		if s.Name == "yelt-spill" {
			t.Fatal("stale yelt-spill line survived a non-spill re-run")
		}
	}
}

func TestCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(smallConfig(6))
	if _, err := p.Run(ctx); err == nil {
		t.Fatal("cancelled pipeline should fail")
	}
}
