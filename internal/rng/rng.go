// Package rng supplies the deterministic random-number machinery used
// throughout the pipeline: a xoshiro256** generator with splitmix64
// seeding, cheap stream splitting (so every worker, trial block, and
// risk source draws from an independent, reproducible stream), and the
// distribution samplers the catastrophe and DFA models need.
//
// Determinism is a hard requirement: the paper's "consistent lens"
// argument for pre-simulated YELTs (§II) is about actuaries seeing the
// same alternative views run over run, so every simulation in this
// repository is replayable from a (seed, stream) pair.
package rng

import "math/bits"

// splitmix64 advances the seed-expansion state and returns the next
// 64-bit value. It is used to seed xoshiro streams and to derive
// independent substream seeds from a (seed, id) pair.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a xoshiro256** pseudo-random generator. The zero value is
// not usable; construct with New or NewStream. Streams are not safe
// for concurrent use — give each goroutine its own stream (that is the
// point of NewStream / Split).
type Stream struct {
	s [4]uint64
	// cached second normal from the polar method
	hasSpare bool
	spare    float64
}

// New returns a stream seeded from a single 64-bit seed.
func New(seed uint64) *Stream {
	st := &Stream{}
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start at the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// NewStream returns the id-th independent stream of a seed. Two calls
// with the same (seed, id) produce identical streams; different ids
// produce streams whose seeds are separated by splitmix64 avalanche,
// the standard construction for task-parallel Monte Carlo.
func NewStream(seed, id uint64) *Stream {
	sm := seed ^ (id+1)*0xd1342543de82ef95
	mixed := splitmix64(&sm)
	return New(mixed)
}

// Split derives a child stream from the current stream state without
// disturbing the parent's sequence. It hashes the parent state with
// the child id rather than drawing from the parent so that the
// parent's replayability is unaffected by how many children are split.
func (st *Stream) Split(id uint64) *Stream {
	sm := st.s[0] ^ bits.RotateLeft64(st.s[2], 13) ^ (id+1)*0x9e3779b97f4a7c15
	return New(splitmix64(&sm))
}

// Uint64 returns the next value of the xoshiro256** sequence.
func (st *Stream) Uint64() uint64 {
	s := &st.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// jumpPoly is the xoshiro256** 2^128-jump polynomial: Jump advances
// the stream by 2^128 steps, partitioning the period into 2^128
// non-overlapping substreams.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances the generator by 2^128 steps in O(256) time.
func (st *Stream) Jump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= st.s[0]
				s1 ^= st.s[1]
				s2 ^= st.s[2]
				s3 ^= st.s[3]
			}
			st.Uint64()
		}
	}
	st.s[0], st.s[1], st.s[2], st.s[3] = s0, s1, s2, s3
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (st *Stream) Float64() float64 {
	return float64(st.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly 0 —
// safe to pass to log() and inverse-CDF transforms.
func (st *Stream) Float64Open() float64 {
	for {
		if u := st.Float64(); u > 0 {
			return u
		}
	}
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection avoids modulo bias.
func (st *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(st.Uint64(), un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(st.Uint64(), un)
		}
	}
	return int(hi)
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (st *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := st.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using swap.
func (st *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := st.Intn(i + 1)
		swap(i, j)
	}
}
