package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminismSameSeed(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 collisions between different seeds", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	s0 := NewStream(7, 0)
	s1 := NewStream(7, 1)
	s0again := NewStream(7, 0)
	if s0.Uint64() != s0again.Uint64() {
		t.Fatal("NewStream not reproducible")
	}
	var matches int
	for i := 0; i < 1000; i++ {
		if s0.Uint64() == s1.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("streams 0 and 1 look correlated: %d matches", matches)
	}
}

func TestSplitDoesNotDisturbParent(t *testing.T) {
	parent := New(99)
	want := make([]uint64, 10)
	probe := New(99)
	for i := range want {
		want[i] = probe.Uint64()
	}
	_ = parent.Split(0)
	_ = parent.Split(1)
	for i := range want {
		if got := parent.Uint64(); got != want[i] {
			t.Fatalf("Split consumed parent entropy at %d", i)
		}
	}
}

func TestSplitChildrenDiffer(t *testing.T) {
	parent := New(5)
	c0 := parent.Split(0)
	c1 := parent.Split(1)
	if c0.Uint64() == c1.Uint64() && c0.Uint64() == c1.Uint64() {
		t.Fatal("sibling children produced identical output")
	}
}

func TestZeroStateGuard(t *testing.T) {
	// A pathological seed that expands to all-zero would break xoshiro;
	// New must guard. We can't force splitmix to produce four zeros, so
	// just assert New(0) produces a nonzero state and output.
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("suspicious all-zero output")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	s := New(4)
	for i := 0; i < 100000; i++ {
		if s.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 200000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestJumpProducesDisjointStream(t *testing.T) {
	a := New(123)
	b := New(123)
	b.Jump()
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("jumped stream overlaps original: %d matches", matches)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatal("Shuffle changed elements")
	}
}

// --- Distribution moment tests. Tolerances are ~5 standard errors. ---

func moments(n int, draw func() float64) (mean, variance float64) {
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := draw()
		sum += x
		sumSq += x * x
	}
	mean = sum / float64(n)
	variance = sumSq/float64(n) - mean*mean
	return mean, variance
}

func TestStdNormalMoments(t *testing.T) {
	s := New(1001)
	const n = 500000
	mean, variance := moments(n, s.StdNormal)
	if math.Abs(mean) > 5/math.Sqrt(n) {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %v", variance)
	}
}

func TestNormalShiftScale(t *testing.T) {
	s := New(1002)
	mean, variance := moments(200000, func() float64 { return s.Normal(50, 10) })
	if math.Abs(mean-50) > 0.2 {
		t.Errorf("mean = %v, want 50", mean)
	}
	if math.Abs(math.Sqrt(variance)-10) > 0.2 {
		t.Errorf("sd = %v, want 10", math.Sqrt(variance))
	}
}

func TestExponentialMoments(t *testing.T) {
	s := New(1003)
	rate := 2.5
	mean, variance := moments(300000, func() float64 { return s.Exponential(rate) })
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("mean = %v, want %v", mean, 1/rate)
	}
	if math.Abs(variance-1/(rate*rate)) > 0.02 {
		t.Errorf("variance = %v, want %v", variance, 1/(rate*rate))
	}
}

func TestLogNormalMoments(t *testing.T) {
	s := New(1004)
	mu, sigma := 1.0, 0.5
	wantMean := math.Exp(mu + sigma*sigma/2)
	mean, _ := moments(400000, func() float64 { return s.LogNormal(mu, sigma) })
	if math.Abs(mean-wantMean)/wantMean > 0.02 {
		t.Errorf("mean = %v, want %v", mean, wantMean)
	}
}

func TestGammaMoments(t *testing.T) {
	s := New(1005)
	for _, c := range []struct{ shape, scale float64 }{{0.5, 2}, {1, 1}, {3, 0.5}, {9, 4}} {
		mean, variance := moments(300000, func() float64 { return s.Gamma(c.shape, c.scale) })
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean)/wantMean > 0.03 {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.08 {
			t.Errorf("Gamma(%v,%v) var = %v, want %v", c.shape, c.scale, variance, wantVar)
		}
	}
	if s.Gamma(-1, 1) != 0 || s.Gamma(1, -1) != 0 {
		t.Error("invalid params should return 0")
	}
}

func TestBetaMoments(t *testing.T) {
	s := New(1006)
	a, b := 2.0, 5.0
	wantMean := a / (a + b)
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	mean, variance := moments(300000, func() float64 { return s.Beta(a, b) })
	if math.Abs(mean-wantMean) > 0.005 {
		t.Errorf("Beta mean = %v, want %v", mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 0.005 {
		t.Errorf("Beta var = %v, want %v", variance, wantVar)
	}
	for i := 0; i < 10000; i++ {
		x := s.Beta(a, b)
		if x < 0 || x > 1 {
			t.Fatalf("Beta out of [0,1]: %v", x)
		}
	}
	if s.Beta(0, 1) != 0 {
		t.Error("invalid params should return 0")
	}
}

func TestPoissonMoments(t *testing.T) {
	s := New(1007)
	for _, lambda := range []float64{0.5, 3, 10, 45, 120} {
		var sum, sumSq float64
		const n = 200000
		for i := 0; i < n; i++ {
			k := float64(s.Poisson(lambda))
			sum += k
			sumSq += k * k
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda)/lambda > 0.03 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda)/lambda > 0.06 {
			t.Errorf("Poisson(%v) var = %v", lambda, variance)
		}
	}
	if s.Poisson(0) != 0 || s.Poisson(-1) != 0 {
		t.Error("lambda <= 0 must return 0")
	}
}

func TestNegBinomialMoments(t *testing.T) {
	s := New(1008)
	r, p := 5.0, 0.4
	// mean = r(1-p)/p, var = r(1-p)/p²
	wantMean := r * (1 - p) / p
	wantVar := r * (1 - p) / (p * p)
	var sum, sumSq float64
	const n = 300000
	for i := 0; i < n; i++ {
		k := float64(s.NegBinomial(r, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-wantMean)/wantMean > 0.03 {
		t.Errorf("NegBinomial mean = %v, want %v", mean, wantMean)
	}
	if math.Abs(variance-wantVar)/wantVar > 0.06 {
		t.Errorf("NegBinomial var = %v, want %v", variance, wantVar)
	}
	if variance <= mean {
		t.Error("negative binomial must be over-dispersed (var > mean)")
	}
	if s.NegBinomial(0, 0.5) != 0 || s.NegBinomial(1, 0) != 0 || s.NegBinomial(1, 1) != 0 {
		t.Error("invalid params should return 0")
	}
}

func TestParetoTail(t *testing.T) {
	s := New(1009)
	xm, alpha := 100.0, 2.5
	// P(X > x) = (xm/x)^alpha
	var exceed int
	const n = 500000
	x0 := 300.0
	for i := 0; i < n; i++ {
		v := s.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto below minimum: %v", v)
		}
		if v > x0 {
			exceed++
		}
	}
	want := math.Pow(xm/x0, alpha)
	got := float64(exceed) / n
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("tail prob = %v, want %v", got, want)
	}
	if s.Pareto(0, 1) != 0 {
		t.Error("invalid params should return 0")
	}
}

func TestTruncPareto(t *testing.T) {
	s := New(1010)
	xm, alpha, hi := 10.0, 1.5, 100.0
	for i := 0; i < 100000; i++ {
		v := s.TruncPareto(xm, alpha, hi)
		if v < xm || v > hi+1e-9 {
			t.Fatalf("TruncPareto out of [%v,%v]: %v", xm, hi, v)
		}
	}
	if v := s.TruncPareto(10, 1, 5); v != 10 {
		t.Errorf("degenerate truncation should return xm, got %v", v)
	}
}

func TestBinomialMoments(t *testing.T) {
	s := New(1011)
	for _, c := range []struct {
		n int
		p float64
	}{{20, 0.3}, {500, 0.1}} {
		var sum float64
		const draws = 100000
		for i := 0; i < draws; i++ {
			sum += float64(s.Binomial(c.n, c.p))
		}
		mean := sum / draws
		want := float64(c.n) * c.p
		if math.Abs(mean-want)/want > 0.03 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, want)
		}
	}
	if s.Binomial(10, 0) != 0 || s.Binomial(10, 1) != 10 || s.Binomial(0, 0.5) != 0 {
		t.Error("edge params broken")
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(1012)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.25) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.25) > 0.01 {
		t.Errorf("Bernoulli rate = %v", float64(hits)/n)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	s := New(2020)
	counts := make([]int, 4)
	const n = 400000
	for i := 0; i < n; i++ {
		counts[a.Draw(s)]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(float64(counts[i])-want) > 5*math.Sqrt(want) {
			t.Errorf("category %d: count %d, want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasRejectsBadWeights(t *testing.T) {
	for _, w := range [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := NewAlias(w); err != ErrBadWeights {
			t.Errorf("weights %v: err = %v, want ErrBadWeights", w, err)
		}
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	s := New(1)
	for i := 0; i < 100; i++ {
		if a.Draw(s) != 0 {
			t.Fatal("single category must always draw 0")
		}
	}
}

func TestAliasPropertyValidIndices(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		weights := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			weights[i] = float64(r)
			sum += weights[i]
		}
		a, err := NewAlias(weights)
		if sum == 0 {
			return err == ErrBadWeights
		}
		if err != nil {
			return false
		}
		s := New(seed)
		for i := 0; i < 64; i++ {
			k := a.Draw(s)
			if k < 0 || k >= len(weights) {
				return false
			}
			if weights[k] == 0 {
				// zero-weight categories must never be drawn...
				// except via numerical leftover, which Vose avoids
				// exactly for integer weights.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= s.Uint64()
	}
	_ = acc
}

func BenchmarkStdNormal(b *testing.B) {
	s := New(1)
	var acc float64
	for i := 0; i < b.N; i++ {
		acc += s.StdNormal()
	}
	_ = acc
}

func BenchmarkPoisson10(b *testing.B) {
	s := New(1)
	var acc int
	for i := 0; i < b.N; i++ {
		acc += s.Poisson(10)
	}
	_ = acc
}

func BenchmarkAliasDraw(b *testing.B) {
	weights := make([]float64, 100000)
	for i := range weights {
		weights[i] = float64(i%97) + 1
	}
	a, _ := NewAlias(weights)
	s := New(1)
	b.ResetTimer()
	var acc int
	for i := 0; i < b.N; i++ {
		acc += a.Draw(s)
	}
	_ = acc
}
