package rng

import (
	"errors"
	"math"
)

// ErrBadWeights is returned by NewAlias when the weight vector is
// empty, contains negatives/NaN, or sums to zero.
var ErrBadWeights = errors.New("rng: weights must be non-negative and sum > 0")

// Alias samples from a fixed discrete distribution in O(1) per draw
// using Vose's alias method. The aggregate engine uses it to sample
// event identities when synthesizing YELTs from catalogue rates:
// building the table is O(n) once, after which a million trial years
// draw events at constant cost.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table for the given (unnormalized) weights.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrBadWeights
	}
	var sum float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, ErrBadWeights
		}
		sum += w
	}
	if sum <= 0 {
		return nil, ErrBadWeights
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small { // numerical leftovers
		a.prob[i] = 1
	}
	return a, nil
}

// Draw returns an index distributed according to the table's weights.
func (a *Alias) Draw(st *Stream) int {
	i := st.Intn(len(a.prob))
	if st.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len returns the number of categories.
func (a *Alias) Len() int { return len(a.prob) }
