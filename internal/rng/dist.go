package rng

import "math"

// Normal returns a draw from Normal(mu, sigma) using the Marsaglia
// polar method with spare caching.
func (st *Stream) Normal(mu, sigma float64) float64 {
	return mu + sigma*st.StdNormal()
}

// StdNormal returns a standard normal draw.
func (st *Stream) StdNormal() float64 {
	if st.hasSpare {
		st.hasSpare = false
		return st.spare
	}
	for {
		u := 2*st.Float64() - 1
		v := 2*st.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		st.spare = v * f
		st.hasSpare = true
		return u * f
	}
}

// Exponential returns a draw from Exponential(rate), mean 1/rate.
func (st *Stream) Exponential(rate float64) float64 {
	return -math.Log(st.Float64Open()) / rate
}

// LogNormal returns a draw from LogNormal(mu, sigma), where mu and
// sigma parameterize the underlying normal.
func (st *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(st.Normal(mu, sigma))
}

// Gamma returns a draw from Gamma(shape, scale) with mean shape·scale,
// using Marsaglia-Tsang squeeze for shape >= 1 and the boost trick
// U^(1/shape)·Gamma(shape+1) below 1.
func (st *Stream) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		u := st.Float64Open()
		return st.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := st.StdNormal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := st.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Beta returns a draw from Beta(a, b) via the Gamma ratio.
func (st *Stream) Beta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	x := st.Gamma(a, 1)
	y := st.Gamma(b, 1)
	if x+y == 0 {
		return 0
	}
	return x / (x + y)
}

// maxDirectPoissonLambda bounds the multiplication method; above it
// Poisson draws are composed from chunks, keeping worst-case work
// O(lambda) with small constants and no tail-accuracy loss.
const maxDirectPoissonLambda = 30

// Poisson returns a draw from Poisson(lambda). lambda <= 0 returns 0.
//
// Event-occurrence sampling (how many catastrophes strike in a trial
// year) uses this; typical lambdas are single digits, where Knuth's
// multiplication method is both exact and fast. Large lambdas decompose
// as sums of independent Poissons.
func (st *Stream) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	n := 0
	for lambda > maxDirectPoissonLambda {
		n += st.poissonDirect(maxDirectPoissonLambda)
		lambda -= maxDirectPoissonLambda
	}
	return n + st.poissonDirect(lambda)
}

func (st *Stream) poissonDirect(lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= st.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// NegBinomial returns a draw from the negative binomial distribution
// with r failures and success probability p, via the Gamma-Poisson
// mixture. It is the standard over-dispersed frequency model for
// catastrophe counts when Poisson under-states clustering.
func (st *Stream) NegBinomial(r, p float64) int {
	if r <= 0 || p <= 0 || p >= 1 {
		return 0
	}
	lambda := st.Gamma(r, (1-p)/p)
	return st.Poisson(lambda)
}

// Pareto returns a draw from a Pareto distribution with minimum xm and
// tail index alpha — the canonical heavy-tailed severity model for
// large catastrophe losses.
func (st *Stream) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return 0
	}
	return xm / math.Pow(st.Float64Open(), 1/alpha)
}

// TruncPareto returns a Pareto(xm, alpha) draw truncated above at hi
// by inverse-CDF sampling of the truncated distribution.
func (st *Stream) TruncPareto(xm, alpha, hi float64) float64 {
	if hi <= xm {
		return xm
	}
	fHi := 1 - math.Pow(xm/hi, alpha)
	u := st.Float64() * fHi
	return xm / math.Pow(1-u, 1/alpha)
}

// Bernoulli returns true with probability p.
func (st *Stream) Bernoulli(p float64) bool {
	return st.Float64() < p
}

// Binomial returns a draw from Binomial(n, p) by direct simulation for
// small n and a normal approximation with continuity correction for
// large n (used only where exactness is not load-bearing, e.g.
// counterparty default counts among hundreds of counterparties).
func (st *Stream) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if st.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(st.Normal(mean, sd)))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
