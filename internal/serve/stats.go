package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/risk"
)

// stats holds the serving counters exposed by /v1/statz. Counters are
// atomics; the latency reservoir has its own lock.
type stats struct {
	received    atomic.Int64 // every request hitting /v1/quote
	served      atomic.Int64 // 200s
	rejected    atomic.Int64 // 429s (queue full)
	timeouts    atomic.Int64 // 503s (budget expired)
	unavailable atomic.Int64 // 503s (draining)
	badRequests atomic.Int64 // 400s
	failed      atomic.Int64 // 500s
	inflight    atomic.Int64 // quotes currently simulating
	cubeQueries atomic.Int64 // /v1/cube 200s
	cubeMisses  atomic.Int64 // /v1/cube 404s/500s (unbuilt cube or no cell)
	lat         *reservoir
}

// statzResponse is the /v1/statz document.
type statzResponse struct {
	UptimeMS    float64 `json:"uptime_ms"`
	Contracts   int     `json:"contracts"`
	Workers     int     `json:"workers"`
	QueueDepth  int     `json:"queue_depth"`
	QueueLen    int     `json:"queue_len"`
	Inflight    int64   `json:"inflight"`
	Received    int64   `json:"received"`
	Served      int64   `json:"served"`
	Rejected    int64   `json:"rejected"`
	Timeouts    int64   `json:"timeouts"`
	Unavailable int64   `json:"unavailable"`
	BadRequests int64   `json:"bad_requests"`
	Failed      int64   `json:"failed"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	// Fault-recovery counters latched by the backing study's last
	// full run (all zero for non-Study quoters or fault-free runs).
	MapFailures    int64 `json:"map_failures"`
	MapRetries     int64 `json:"map_retries"`
	SpecLaunched   int64 `json:"spec_launched"`
	SpecWins       int64 `json:"spec_wins"`
	ShardFailovers int64 `json:"shard_failovers"`
	WorkersLost    int64 `json:"workers_lost"`
	// Warehouse-cube state and counters (zero/false until the backing
	// study's first full run materializes a cube).
	CubeBuilt     bool     `json:"cube_built"`
	CubeDims      []string `json:"cube_dims,omitempty"`
	CubeCells     int      `json:"cube_cells"`
	CubeSizeBytes int64    `json:"cube_size_bytes"`
	CubeQueries   int64    `json:"cube_queries"`
	CubeMisses    int64    `json:"cube_misses"`
}

func (st *stats) snapshot(s *Server) statzResponse {
	var f risk.FaultStats
	var cube risk.CubeInfo
	if s.study != nil {
		f = s.study.FaultStats()
		cube = s.study.CubeInfo()
	}
	return statzResponse{
		UptimeMS:    float64(time.Since(s.start)) / float64(time.Millisecond),
		Contracts:   s.q.NumContracts(),
		Workers:     s.cfg.Workers,
		QueueDepth:  s.cfg.QueueDepth,
		QueueLen:    len(s.jobs),
		Inflight:    st.inflight.Load(),
		Received:    st.received.Load(),
		Served:      st.served.Load(),
		Rejected:    st.rejected.Load(),
		Timeouts:    st.timeouts.Load(),
		Unavailable: st.unavailable.Load(),
		BadRequests: st.badRequests.Load(),
		Failed:      st.failed.Load(),
		P50MS:       float64(st.lat.quantile(0.50)) / float64(time.Millisecond),
		P99MS:       float64(st.lat.quantile(0.99)) / float64(time.Millisecond),

		MapFailures:    f.MapFailures,
		MapRetries:     f.MapRetries,
		SpecLaunched:   f.SpecLaunched,
		SpecWins:       f.SpecWins,
		ShardFailovers: f.ShardFailovers,
		WorkersLost:    f.WorkersLost,

		CubeBuilt:     cube.Built,
		CubeDims:      cube.Dims,
		CubeCells:     cube.Cells,
		CubeSizeBytes: cube.SizeBytes,
		CubeQueries:   st.cubeQueries.Load(),
		CubeMisses:    st.cubeMisses.Load(),
	}
}

// reservoir keeps the most recent latencies in a fixed-size ring and
// answers quantiles over them — a sliding window, so /v1/statz
// reflects recent behavior rather than all-time history.
type reservoir struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int
}

func newReservoir(size int) *reservoir {
	return &reservoir{buf: make([]time.Duration, size)}
}

func (r *reservoir) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

func (r *reservoir) quantile(p float64) time.Duration {
	r.mu.Lock()
	cp := append([]time.Duration(nil), r.buf[:r.n]...)
	r.mu.Unlock()
	if len(cp) == 0 {
		return 0
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	i := int(p * float64(len(cp)-1))
	return cp[i]
}
