package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/risk"
)

func getCube(t *testing.T, ts *httptest.Server, query string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/cube" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestCubeEndpoint is the serving-tier acceptance gate over HTTP: the
// pre-computed cell answer must match the check=direct registry
// recomputation byte-for-byte, misses answer 404, malformed filters
// 400, and /v1/statz carries the cube state and counters.
func TestCubeEndpoint(t *testing.T) {
	cfg := smallStudyConfig(34)
	cfg.Sampling = true
	cfg.CubeDims = []string{"region", "lob"}
	s, ts := newTestServer(t, risk.NewStudy(cfg), Config{Workers: 1})

	code, served := getCube(t, ts, "?region=coastal")
	if code != http.StatusOK {
		t.Fatalf("served cell: status %d (%s)", code, served)
	}
	code, direct := getCube(t, ts, "?region=coastal&check=direct")
	if code != http.StatusOK {
		t.Fatalf("direct cell: status %d (%s)", code, direct)
	}
	if !bytes.Equal(served, direct) {
		t.Fatalf("served response differs from check=direct:\n%s\n%s", served, direct)
	}

	if code, body := getCube(t, ts, "?region=atlantis"); code != http.StatusNotFound {
		t.Fatalf("missing cell: status %d (%s)", code, body)
	}
	if code, body := getCube(t, ts, ""); code != http.StatusBadRequest {
		t.Fatalf("empty filter: status %d (%s)", code, body)
	}
	if code, body := getCube(t, ts, "?region=coastal&region=interior"); code != http.StatusBadRequest {
		t.Fatalf("repeated dimension: status %d (%s)", code, body)
	}
	if code, body := getCube(t, ts, "?region=coastal&check=rebuild"); code != http.StatusBadRequest {
		t.Fatalf("unknown check mode: status %d (%s)", code, body)
	}

	snap := s.stats.snapshot(s)
	if !snap.CubeBuilt || snap.CubeCells <= 0 || snap.CubeSizeBytes <= 0 {
		t.Fatalf("statz cube state: %+v", snap)
	}
	if snap.CubeQueries != 2 || snap.CubeMisses != 1 {
		t.Fatalf("cube counters: queries %d misses %d", snap.CubeQueries, snap.CubeMisses)
	}
}

func TestCubeRequiresStudy(t *testing.T) {
	_, ts := newTestServer(t, &fakeQuoter{contracts: 1}, Config{Workers: 1})
	if code, body := getCube(t, ts, "?region=coastal"); code != http.StatusNotImplemented {
		t.Fatalf("fake quoter: status %d (%s)", code, body)
	}
}

// A study configured without CubeDims runs fine but has no cube; the
// endpoint answers 404 and counts a miss.
func TestCubeNotBuilt(t *testing.T) {
	s, ts := newTestServer(t, risk.NewStudy(smallStudyConfig(35)), Config{Workers: 1})
	if code, body := getCube(t, ts, "?region=coastal"); code != http.StatusNotFound {
		t.Fatalf("cube-less study: status %d (%s)", code, body)
	}
	if got := s.stats.cubeMisses.Load(); got != 1 {
		t.Fatalf("cubeMisses = %d", got)
	}
}
