package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/risk"
)

func smallStudyConfig(seed uint64) risk.Config {
	return risk.Config{
		Seed:                 seed,
		Events:               600,
		Contracts:            3,
		LocationsPerContract: 80,
		Trials:               1200,
		MeanEventsPerYear:    10,
		Rho:                  0.2,
		// Quotes single-threaded: the pool provides the parallelism.
		Workers: 1,
	}
}

// End to end over a real study: warmed server quotes must match
// quotes from a direct, identically-configured study.
func TestStudyServerEndToEnd(t *testing.T) {
	study := risk.NewStudy(smallStudyConfig(31))
	s := New(study, Config{Workers: 2, DefaultTrials: 800})
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	ref := risk.NewStudy(smallStudyConfig(31))
	for c := 0; c < study.NumContracts(); c++ {
		want, err := ref.PriceContract(context.Background(), c, 800)
		if err != nil {
			t.Fatal(err)
		}
		resp, out := postQuote(t, ts, fmt.Sprintf(`{"contract": %d, "trials": 800}`, c))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("contract %d: status %d (%v)", c, resp.StatusCode, out)
		}
		if got := out["aal"].(float64); got != want.AAL {
			t.Fatalf("contract %d: served AAL %v != direct %v", c, got, want.AAL)
		}
		if got := out["premium"].(float64); got != want.Premium {
			t.Fatalf("contract %d: served premium %v != direct %v", c, got, want.Premium)
		}
	}

	// The portfolio endpoint runs the full study once; a second hit
	// serves the cached report.
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/portfolio")
		if err != nil {
			t.Fatal(err)
		}
		var port portfolioResponse
		if err := json.NewDecoder(resp.Body).Decode(&port); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("portfolio status = %d", resp.StatusCode)
		}
		if port.Catastrophe.AAL <= 0 || port.Enterprise.Trials <= 0 {
			t.Fatalf("portfolio summary = %+v", port)
		}
		if len(port.Stages) != 4 {
			t.Fatalf("portfolio stages = %d, want 4 (no duplicate lines)", len(port.Stages))
		}
	}
}

// Hammer concurrent quotes across contracts against the shared study
// while the portfolio report is computed mid-flight — the serving
// tier's whole concurrency story, pinned under -race in CI.
func TestConcurrentQuotesAcrossContracts(t *testing.T) {
	study := risk.NewStudy(smallStudyConfig(32))
	s := New(study, Config{Workers: 4, QueueDepth: 64, DefaultTrials: 500})
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	want := make([]float64, study.NumContracts())
	for c := range want {
		q, err := risk.NewStudy(smallStudyConfig(32)).PriceContract(context.Background(), c, 500)
		if err != nil {
			t.Fatal(err)
		}
		want[c] = q.AAL
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/v1/portfolio")
		if err != nil {
			errc <- err
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			errc <- fmt.Errorf("portfolio during quote storm: %d", resp.StatusCode)
		}
	}()
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				c := (g + i) % study.NumContracts()
				body := fmt.Sprintf(`{"contract": %d, "trials": 500}`, c)
				resp, err := http.Post(ts.URL+"/v1/quote", "application/json", bytes.NewBufferString(body))
				if err != nil {
					errc <- err
					return
				}
				var out map[string]any
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					resp.Body.Close()
					errc <- err
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if got := out["aal"].(float64); got != want[c] {
						errc <- fmt.Errorf("contract %d: concurrent AAL %v != %v", c, got, want[c])
						return
					}
				case http.StatusTooManyRequests:
					// Admission control under the storm is legitimate.
				default:
					errc <- fmt.Errorf("contract %d: status %d (%v)", c, resp.StatusCode, out)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// A chaos-configured study behind the server: the portfolio run
// absorbs injected first-read failures over replicated shards, and
// /v1/statz surfaces the recovery counters the run latched.
func TestStatzSurfacesFaultCounters(t *testing.T) {
	cfg := smallStudyConfig(33)
	cfg.Engine = risk.EngineMapReduce
	cfg.Spill = true
	cfg.SpillNodes = 3
	cfg.SpillReplicas = 2
	cfg.FaultSpec = "shard=*@1" // every (shard, node) site's first read fails
	s := New(risk.NewStudy(cfg), Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})

	getStatz := func() statzResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/statz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stz statzResponse
		if err := json.NewDecoder(resp.Body).Decode(&stz); err != nil {
			t.Fatal(err)
		}
		return stz
	}

	if before := getStatz(); before.MapRetries != 0 || before.ShardFailovers != 0 {
		t.Fatalf("fault counters nonzero before any run: %+v", before)
	}
	resp, err := http.Get(ts.URL + "/v1/portfolio")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("portfolio under injected faults: status %d", resp.StatusCode)
	}
	after := getStatz()
	if after.MapFailures == 0 {
		t.Fatalf("no injected failures recorded: %+v", after)
	}
	if after.MapRetries+after.ShardFailovers == 0 {
		t.Fatalf("no recovery recorded: %+v", after)
	}
}
