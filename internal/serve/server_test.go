package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/risk"
)

// fakeQuoter pins the admission/timeout/drain state machines without
// real simulations. A nil gate answers instantly; otherwise each call
// blocks until the gate is fed (or its ctx expires, like a real
// simulation observing cancellation at a batch boundary).
type fakeQuoter struct {
	contracts int
	gate      chan struct{}
	started   chan struct{} // fed when a worker picks the job up
	err       error
	// holdGate ignores ctx while gated — the worker stays pinned until
	// the gate is fed or closed, letting tests sequence deterministically.
	holdGate bool
}

func (f *fakeQuoter) NumContracts() int { return f.contracts }

func (f *fakeQuoter) PriceContract(ctx context.Context, contract, trials int) (*risk.Quote, error) {
	if f.started != nil {
		f.started <- struct{}{}
	}
	if f.gate != nil {
		if f.holdGate {
			<-f.gate
		} else {
			select {
			case <-f.gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	if f.err != nil {
		return nil, f.err
	}
	return &risk.Quote{
		ContractID: uint32(contract + 1), Trials: trials,
		AAL: 1000, StdDev: 200, TVaR99: 5000, PML250: 4000,
		Premium: 1070, Elapsed: time.Millisecond,
	}, nil
}

func postQuote(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/quote", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func newTestServer(t *testing.T, q Quoter, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(q, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func TestQuoteSuccess(t *testing.T) {
	_, ts := newTestServer(t, &fakeQuoter{contracts: 4}, Config{Workers: 2})
	resp, out := postQuote(t, ts, `{"contract": 2, "trials": 5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	if out["contract_id"].(float64) != 3 {
		t.Fatalf("contract_id = %v", out["contract_id"])
	}
	if out["trials"].(float64) != 5000 {
		t.Fatalf("trials = %v", out["trials"])
	}
	if out["premium"].(float64) != 1070 {
		t.Fatalf("premium = %v", out["premium"])
	}
}

func TestQuoteDefaultTrials(t *testing.T) {
	_, ts := newTestServer(t, &fakeQuoter{contracts: 1}, Config{Workers: 1, DefaultTrials: 7777})
	resp, out := postQuote(t, ts, `{"contract": 0}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out["trials"].(float64) != 7777 {
		t.Fatalf("default trials = %v, want 7777", out["trials"])
	}
}

func TestQuoteBadRequests(t *testing.T) {
	s, ts := newTestServer(t, &fakeQuoter{contracts: 3}, Config{Workers: 1, MaxTrials: 10_000})
	cases := []string{
		`{"contract": 99}`,                  // unknown contract
		`{"contract": -1}`,                  // negative contract
		`{"contract": 0, "trials": 999999}`, // over the cap
		`not json`,                          // malformed body
	}
	for _, body := range cases {
		resp, out := postQuote(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400 (%v)", body, resp.StatusCode, out)
		}
	}
	if got := s.stats.badRequests.Load(); got != int64(len(cases)) {
		t.Fatalf("bad_requests = %d, want %d", got, len(cases))
	}
	if s.stats.served.Load() != 0 {
		t.Fatal("bad requests must not reach a worker")
	}
}

func TestQuoteQueueFullFast429(t *testing.T) {
	fq := &fakeQuoter{contracts: 1, gate: make(chan struct{}), started: make(chan struct{}, 8)}
	s, ts := newTestServer(t, fq, Config{Workers: 1, QueueDepth: 1})

	// First request occupies the single worker...
	type result struct {
		code int
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postQuote(t, ts, `{"contract": 0, "trials": 1}`)
			results <- result{resp.StatusCode}
		}()
		if i == 0 {
			<-fq.started // ...and is simulating before the second is sent
		} else {
			// The second parks in the queue; poll until it occupies the slot.
			deadline := time.Now().Add(2 * time.Second)
			for len(s.jobs) == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if len(s.jobs) == 0 {
				t.Fatal("second request never queued")
			}
		}
	}

	// Worker busy + queue full: the next request must be rejected
	// immediately, not parked.
	start := time.Now()
	resp, _ := postQuote(t, ts, `{"contract": 0, "trials": 1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status = %d, want 429", resp.StatusCode)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("429 took %v; rejection must be immediate", d)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 should carry Retry-After")
	}

	// Release both held quotes; they must complete normally.
	fq.gate <- struct{}{}
	fq.gate <- struct{}{}
	for i := 0; i < 2; i++ {
		if r := <-results; r.code != http.StatusOK {
			t.Fatalf("held quote finished with %d", r.code)
		}
	}
	if got := s.stats.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
}

func TestQuoteTimeout503(t *testing.T) {
	fq := &fakeQuoter{contracts: 1, gate: make(chan struct{})}
	s, ts := newTestServer(t, fq, Config{Workers: 1, Timeout: 30 * time.Millisecond})
	defer close(fq.gate)
	resp, _ := postQuote(t, ts, `{"contract": 0, "trials": 1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out status = %d, want 503", resp.StatusCode)
	}
	if got := s.stats.timeouts.Load(); got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
}

// A request whose budget expires while still queued must answer 503
// and must NOT be simulated when the worker eventually dequeues it.
func TestQueuedTimeoutNotSimulated(t *testing.T) {
	fq := &fakeQuoter{contracts: 1, gate: make(chan struct{}), started: make(chan struct{}, 8), holdGate: true}
	s, ts := newTestServer(t, fq, Config{Workers: 1, QueueDepth: 1, Timeout: 50 * time.Millisecond})

	first := make(chan int, 1)
	go func() {
		resp, _ := postQuote(t, ts, `{"contract": 0, "trials": 1}`)
		first <- resp.StatusCode
	}()
	<-fq.started

	// Second request queues behind the held worker and times out there.
	resp, _ := postQuote(t, ts, `{"contract": 0, "trials": 1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-timeout status = %d, want 503", resp.StatusCode)
	}

	// The first request's handler also answers 503 when its own budget
	// expires, even though its simulation is still occupying the worker.
	if code := <-first; code != http.StatusServiceUnavailable {
		t.Fatalf("first quote status = %d, want 503", code)
	}

	// Both handlers have given up — the queued job's ctx is certainly
	// expired. Release the worker: it must drain the dead job without
	// simulating it.
	close(fq.gate)
	deadline := time.Now().Add(2 * time.Second)
	for len(s.jobs) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(s.jobs) != 0 {
		t.Fatal("queued job never drained")
	}
	select {
	case <-fq.started:
		t.Fatal("expired queued job was simulated anyway")
	default:
	}
}

func TestQuoteEngineError500(t *testing.T) {
	fq := &fakeQuoter{contracts: 1, err: errors.New("boom")}
	s, ts := newTestServer(t, fq, Config{Workers: 1})
	resp, out := postQuote(t, ts, `{"contract": 0, "trials": 1}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (%v)", resp.StatusCode, out)
	}
	if s.stats.failed.Load() != 1 {
		t.Fatal("failed counter not incremented")
	}
}

func TestShutdownDrainsInflightQuotes(t *testing.T) {
	fq := &fakeQuoter{contracts: 1, gate: make(chan struct{}), started: make(chan struct{}, 1)}
	s, ts := newTestServer(t, fq, Config{Workers: 1})

	inflight := make(chan int, 1)
	go func() {
		resp, _ := postQuote(t, ts, `{"contract": 0, "trials": 1}`)
		inflight <- resp.StatusCode
	}()
	<-fq.started

	// Draining: new quotes are refused, healthz flips, the in-flight
	// quote is NOT cancelled.
	s.BeginDrain()
	resp, _ := postQuote(t, ts, `{"contract": 0, "trials": 1}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("quote during drain = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", hresp.StatusCode)
	}

	// Release the held quote: it must complete with 200 — draining
	// finishes in-flight work rather than dropping it.
	fq.gate <- struct{}{}
	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight quote during drain finished with %d, want 200", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
}

func TestHealthzAndStatz(t *testing.T) {
	s, ts := newTestServer(t, &fakeQuoter{contracts: 2}, Config{Workers: 2, QueueDepth: 4})
	if err := s.Warm(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["warm"] != true {
		t.Fatalf("healthz = %v", health)
	}

	for i := 0; i < 5; i++ {
		if resp, _ := postQuote(t, ts, fmt.Sprintf(`{"contract": %d, "trials": 10}`, i%2)); resp.StatusCode != 200 {
			t.Fatalf("quote %d failed", i)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/statz")
	if err != nil {
		t.Fatal(err)
	}
	var stz statzResponse
	if err := json.NewDecoder(resp.Body).Decode(&stz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stz.Served != 5 || stz.Received != 5 {
		t.Fatalf("statz counters = %+v", stz)
	}
	if stz.Contracts != 2 || stz.Workers != 2 || stz.QueueDepth != 4 {
		t.Fatalf("statz config echo = %+v", stz)
	}
	if stz.P50MS <= 0 || stz.P99MS < stz.P50MS {
		t.Fatalf("statz latency quantiles = p50 %v p99 %v", stz.P50MS, stz.P99MS)
	}
}

func TestPortfolioRequiresStudy(t *testing.T) {
	_, ts := newTestServer(t, &fakeQuoter{contracts: 1}, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/portfolio")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("portfolio without study = %d, want 501", resp.StatusCode)
	}
}

func TestReservoirQuantiles(t *testing.T) {
	r := newReservoir(8)
	if r.quantile(0.5) != 0 {
		t.Fatal("empty reservoir should answer 0")
	}
	for i := 1; i <= 100; i++ { // ring keeps the last 8: 93..100ms
		r.observe(time.Duration(i) * time.Millisecond)
	}
	if q := r.quantile(0); q != 93*time.Millisecond {
		t.Fatalf("min = %v", q)
	}
	if q := r.quantile(1); q != 100*time.Millisecond {
		t.Fatalf("max = %v", q)
	}
	if q := r.quantile(0.5); q < 93*time.Millisecond || q > 100*time.Millisecond {
		t.Fatalf("p50 = %v outside window", q)
	}
}
