package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// A programmed handler answering a fixed status cycle pins the
// classification logic without any simulation underneath.
func TestClassification(t *testing.T) {
	cycle := []int{200, 200, 429, 503, 200, 429, 500, 200}
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/quote" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		code := cycle[int(n.Add(1)-1)%len(cycle)]
		w.WriteHeader(code)
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	// One client keeps the cycle order deterministic.
	results, err := Run(context.Background(), ts.Client(), ts.URL, []Phase{
		{Name: "cycle", Clients: 1, Requests: len(cycle), Trials: 10, Contracts: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Sent != len(cycle) {
		t.Fatalf("sent = %d, want %d", r.Sent, len(cycle))
	}
	if r.OK != 4 || r.Rejected != 2 || r.Unavail != 1 || r.Errors != 1 {
		t.Fatalf("classified %d/%d/%d/%d, want 4/2/1/1", r.OK, r.Rejected, r.Unavail, r.Errors)
	}
	if r.P50 <= 0 || r.P99 < r.P50 {
		t.Fatalf("quantiles p50=%v p99=%v", r.P50, r.P99)
	}
	if r.QPS <= 0 {
		t.Fatalf("qps = %v", r.QPS)
	}
}

func TestMultiPhaseAndConcurrency(t *testing.T) {
	var inflight, peak atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		inflight.Add(-1)
		w.Write([]byte("{}"))
	}))
	defer ts.Close()

	results, err := Run(context.Background(), ts.Client(), ts.URL, []Phase{
		{Name: "calm", Clients: 2, Requests: 10, Trials: 10, Contracts: 2},
		{Name: "burst", Clients: 8, Requests: 40, Trials: 10, Contracts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d, want 2", len(results))
	}
	for _, r := range results {
		if r.OK != r.Sent {
			t.Fatalf("%s: %d OK of %d sent", r.Phase, r.OK, r.Sent)
		}
	}
	if results[0].Sent != 10 || results[1].Sent != 40 {
		t.Fatalf("sent = %d, %d", results[0].Sent, results[1].Sent)
	}
	if p := peak.Load(); p > 8 {
		t.Fatalf("peak concurrency %d exceeds burst clients", p)
	}
}

func TestPhaseValidation(t *testing.T) {
	_, err := Run(context.Background(), nil, "http://127.0.0.1:0", []Phase{{Name: "bad"}})
	if err == nil {
		t.Fatal("zero-valued phase should error")
	}
}

func TestRunStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("canceled run should not send requests")
	}))
	defer ts.Close()
	_, err := Run(ctx, ts.Client(), ts.URL, []Phase{
		{Name: "calm", Clients: 1, Requests: 5, Trials: 1, Contracts: 1},
	})
	if err == nil {
		t.Fatal("canceled run should report ctx error")
	}
}
