// Package loadgen is a closed-loop HTTP load generator for the quote
// serving tier. Each phase runs a fixed number of concurrent clients,
// every client posting its next quote the moment the previous answer
// lands, until the phase's request budget is spent. Responses are
// classified by status (200 / 429 / 503 / other) and OK latencies feed
// the phase's p50/p99 — so a burst phase shows exactly how the tier
// degrades: shed 429s fast while served latency holds.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase is one load step against the server.
type Phase struct {
	Name      string
	Clients   int // concurrent closed-loop clients
	Requests  int // total requests across all clients
	Trials    int // per-quote trial count sent in the request body
	Contracts int // quotes round-robin over contracts [0, Contracts)
}

// Result aggregates one phase.
type Result struct {
	Phase    string
	Sent     int
	OK       int
	Rejected int // 429: queue full
	Unavail  int // 503: timeout or draining
	Errors   int // anything else, including transport errors
	Elapsed  time.Duration
	P50      time.Duration // over OK latencies
	P99      time.Duration
	QPS      float64 // served (OK) per second of phase wall time
}

// Run executes the phases in order against baseURL and returns one
// Result per phase. It stops early on ctx cancellation.
func Run(ctx context.Context, client *http.Client, baseURL string, phases []Phase) ([]Result, error) {
	if client == nil {
		client = http.DefaultClient
	}
	results := make([]Result, 0, len(phases))
	for _, ph := range phases {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		res, err := runPhase(ctx, client, baseURL, ph)
		if err != nil {
			return results, fmt.Errorf("loadgen: phase %s: %w", ph.Name, err)
		}
		results = append(results, res)
	}
	return results, nil
}

func runPhase(ctx context.Context, client *http.Client, baseURL string, ph Phase) (Result, error) {
	if ph.Clients <= 0 || ph.Requests <= 0 || ph.Contracts <= 0 {
		return Result{}, fmt.Errorf("phase needs positive clients, requests, contracts (got %+v)", ph)
	}
	var (
		next     atomic.Int64 // request ticket counter, shared by all clients
		ok       atomic.Int64
		rejected atomic.Int64
		unavail  atomic.Int64
		errs     atomic.Int64

		latMu sync.Mutex
		lats  []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < ph.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				ticket := next.Add(1) - 1
				if ticket >= int64(ph.Requests) || ctx.Err() != nil {
					return
				}
				contract := int(ticket) % ph.Contracts
				body := fmt.Sprintf(`{"contract": %d, "trials": %d}`, contract, ph.Trials)
				t0 := time.Now()
				status, err := postQuote(ctx, client, baseURL, body)
				lat := time.Since(t0)
				switch {
				case err != nil:
					errs.Add(1)
				case status == http.StatusOK:
					ok.Add(1)
					latMu.Lock()
					lats = append(lats, lat)
					latMu.Unlock()
				case status == http.StatusTooManyRequests:
					rejected.Add(1)
				case status == http.StatusServiceUnavailable:
					unavail.Add(1)
				default:
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	res := Result{
		Phase:    ph.Name,
		Sent:     int(ok.Load() + rejected.Load() + unavail.Load() + errs.Load()),
		OK:       int(ok.Load()),
		Rejected: int(rejected.Load()),
		Unavail:  int(unavail.Load()),
		Errors:   int(errs.Load()),
		Elapsed:  elapsed,
		P50:      quantile(lats, 0.50),
		P99:      quantile(lats, 0.99),
	}
	if elapsed > 0 {
		res.QPS = float64(res.OK) / elapsed.Seconds()
	}
	return res, ctx.Err()
}

func postQuote(ctx context.Context, client *http.Client, baseURL, body string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/quote", bytes.NewBufferString(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	// Drain so the transport reuses the connection.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func quantile(lats []time.Duration, p float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	cp := append([]time.Duration(nil), lats...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp[int(p*float64(len(cp)-1))]
}
