// Package serve is the real-time quote serving tier over risk.Study —
// the paper's flagship stage-2 use case ("a 1 million trial aggregate
// simulation on a typical contract only takes 25 seconds and can
// therefore support real-time pricing", §II) turned into an HTTP/JSON
// service.
//
// The server owns a bounded worker pool with admission control: quote
// requests queue up to Config.QueueDepth and are rejected immediately
// with 429 beyond that, and every request carries a deadline covering
// both queue wait and simulation, answering 503 when it expires. Under
// overload the tier therefore degrades by shedding load at constant
// latency instead of collapsing into unbounded queueing — that is what
// makes "millions of users" honest rather than aspirational.
//
// Endpoints:
//
//	POST /v1/quote     {"contract": N, "trials": T} → quote JSON
//	GET  /v1/portfolio full-study portfolio report (computed once)
//	GET  /v1/cube      pre-computed warehouse cell (?region=...&lob=...)
//	GET  /v1/healthz   liveness + warm/draining state
//	GET  /v1/statz     counters, queue state, latency quantiles, cube stats
//
// /v1/cube serves dashboard-scale read traffic from the warehouse
// cube materialized during the study run (risk.Config.CubeDims): the
// query parameters form the dimension filter and the answer is the
// cell's pre-computed summary — a dictionary lookup, no simulation.
// Appending check=direct re-derives the summary from the cube's
// per-contract registry instead, which must match the pre-computed
// answer byte-for-byte (the CI smoke step diffs the two).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/risk"
)

// Quoter is the slice of risk.Study the quote path needs. risk.Study
// satisfies it; tests substitute gated fakes to pin the admission and
// drain state machines deterministically.
type Quoter interface {
	PriceContract(ctx context.Context, contract, trials int) (*risk.Quote, error)
	NumContracts() int
}

// Config sizes the serving tier. Zero fields take defaults.
type Config struct {
	// Workers bounds the quote worker pool; <= 0 means GOMAXPROCS.
	// Quote simulations should be configured single-threaded
	// (risk.Config.Workers = 1) when served from a pool: parallelism
	// across requests, not within one, is what sustains QPS.
	Workers int
	// QueueDepth bounds the admission queue. A quote arriving with the
	// queue full answers 429 immediately; <= 0 means 2×Workers.
	QueueDepth int
	// Timeout is the per-request budget covering queue wait plus
	// simulation; an expired request answers 503. <= 0 means 30s.
	Timeout time.Duration
	// DefaultTrials is used when a request omits the trial count;
	// <= 0 means 100_000.
	DefaultTrials int
	// MaxTrials caps the requested trial count so one request cannot
	// occupy a worker unboundedly; <= 0 means 2_000_000.
	MaxTrials int
}

type job struct {
	ctx      context.Context
	contract int
	trials   int
	done     chan jobResult // buffered(1): the worker never blocks on it
}

type jobResult struct {
	quote *risk.Quote
	err   error
}

// Server is the quote service. Create with New (which starts the
// worker pool), expose Handler over HTTP, and retire with Drain.
type Server struct {
	cfg   Config
	q     Quoter
	study *risk.Study // non-nil when q is a *risk.Study; backs /v1/portfolio

	mux  *http.ServeMux
	jobs chan *job

	// admitMu makes enqueue-vs-close safe: admissions hold it shared,
	// Drain closes the queue under the exclusive half after flipping
	// draining, so no admission can send on a closed channel.
	admitMu  sync.RWMutex
	draining atomic.Bool
	warm     atomic.Bool

	workerWG  sync.WaitGroup
	closeOnce sync.Once
	start     time.Time
	stats     stats

	portMu  sync.Mutex
	portRep *risk.Report
}

// New returns a Server for q with its worker pool already running.
// Call Drain to retire it.
func New(q Quoter, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.DefaultTrials <= 0 {
		cfg.DefaultTrials = 100_000
	}
	if cfg.MaxTrials <= 0 {
		cfg.MaxTrials = 2_000_000
	}
	s := &Server{
		cfg:   cfg,
		q:     q,
		jobs:  make(chan *job, cfg.QueueDepth),
		start: time.Now(),
	}
	if st, ok := q.(*risk.Study); ok {
		s.study = st
	}
	s.stats.lat = newReservoir(4096)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/quote", s.handleQuote)
	s.mux.HandleFunc("GET /v1/portfolio", s.handlePortfolio)
	s.mux.HandleFunc("GET /v1/cube", s.handleCube)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/statz", s.handleStatz)
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the /v1 endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Warm pre-runs stage 1 and builds every per-contract quote layout so
// first quotes pay no lazy-initialization cost, then flips the
// /v1/healthz warm flag. Non-Study quoters warm trivially.
func (s *Server) Warm(ctx context.Context) error {
	if s.study != nil {
		if err := s.study.WarmQuotes(ctx); err != nil {
			return err
		}
	}
	s.warm.Store(true)
	return nil
}

// BeginDrain stops admitting new quotes (they answer 503, and healthz
// reports draining so load balancers stop routing) while queued and
// in-flight quotes run to completion.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain begins draining if BeginDrain has not already, waits for every
// queued and in-flight quote to finish, and stops the worker pool. The
// HTTP layer should be shut down first (http.Server.Shutdown waits for
// active handlers, each of which holds its job to completion); Drain
// then retires the idle pool. It returns ctx.Err if ctx expires before
// the pool drains.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	s.closeOnce.Do(func() {
		// Exclusive admitMu: no admission is mid-send, and none will
		// start now that draining is set.
		s.admitMu.Lock()
		close(s.jobs)
		s.admitMu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

var (
	errDraining  = errors.New("server draining")
	errQueueFull = errors.New("quote queue full")
)

// admit enqueues j or reports why it cannot, without ever blocking:
// admission control is the whole point of the bounded queue.
func (s *Server) admit(j *job) error {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.draining.Load() {
		return errDraining
	}
	select {
	case s.jobs <- j:
		return nil
	default:
		return errQueueFull
	}
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.jobs {
		if err := j.ctx.Err(); err != nil {
			// The handler already gave up on this job (its budget
			// expired while queued); don't burn a simulation on it.
			j.done <- jobResult{err: err}
			continue
		}
		s.stats.inflight.Add(1)
		q, err := s.q.PriceContract(j.ctx, j.contract, j.trials)
		s.stats.inflight.Add(-1)
		j.done <- jobResult{quote: q, err: err}
	}
}

type quoteRequest struct {
	Contract int `json:"contract"`
	Trials   int `json:"trials"`
}

type quoteResponse struct {
	ContractID uint32  `json:"contract_id"`
	Trials     int     `json:"trials"`
	AAL        float64 `json:"aal"`
	StdDev     float64 `json:"stddev"`
	TVaR99     float64 `json:"tvar99"`
	PML250     float64 `json:"pml250"`
	Premium    float64 `json:"premium"`
	// ElapsedMS is the simulation wall time; the latency the client
	// observed additionally includes queue wait.
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	s.stats.received.Add(1)
	if s.draining.Load() {
		s.stats.unavailable.Add(1)
		httpError(w, http.StatusServiceUnavailable, "server draining")
		return
	}
	var req quoteRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		s.stats.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "bad quote request: "+err.Error())
		return
	}
	// Mirror the study's fail-fast validation at the edge: an invalid
	// request must never consume a queue slot or a worker.
	if n := s.q.NumContracts(); req.Contract < 0 || req.Contract >= n {
		s.stats.badRequests.Add(1)
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown contract %d (book holds %d)", req.Contract, n))
		return
	}
	trials := req.Trials
	if trials <= 0 {
		trials = s.cfg.DefaultTrials
	}
	if trials > s.cfg.MaxTrials {
		s.stats.badRequests.Add(1)
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("trials %d exceeds cap %d", trials, s.cfg.MaxTrials))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	j := &job{ctx: ctx, contract: req.Contract, trials: trials, done: make(chan jobResult, 1)}
	start := time.Now() // latency includes queue wait — that is what the client feels
	if err := s.admit(j); err != nil {
		if err == errDraining {
			s.stats.unavailable.Add(1)
			httpError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		s.stats.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	select {
	case res := <-j.done:
		if res.err != nil {
			if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
				s.stats.timeouts.Add(1)
				httpError(w, http.StatusServiceUnavailable, "quote timed out")
				return
			}
			s.stats.failed.Add(1)
			httpError(w, http.StatusInternalServerError, res.err.Error())
			return
		}
		s.stats.served.Add(1)
		s.stats.lat.observe(time.Since(start))
		writeJSON(w, http.StatusOK, quoteResponse{
			ContractID: res.quote.ContractID,
			Trials:     res.quote.Trials,
			AAL:        res.quote.AAL,
			StdDev:     res.quote.StdDev,
			TVaR99:     res.quote.TVaR99,
			PML250:     res.quote.PML250,
			Premium:    res.quote.Premium,
			ElapsedMS:  float64(res.quote.Elapsed) / float64(time.Millisecond),
		})
	case <-ctx.Done():
		// Budget exhausted while queued or mid-simulation; the worker
		// observes the same ctx and abandons the job.
		s.stats.timeouts.Add(1)
		httpError(w, http.StatusServiceUnavailable, "quote timed out")
	}
}

type portfolioResponse struct {
	Catastrophe summaryJSON `json:"catastrophe"`
	Enterprise  summaryJSON `json:"enterprise"`
	Stages      []stageLine `json:"stages"`
}

// summaryJSON is risk.Summary reshaped for JSON: the float-keyed
// return-period map (which encoding/json rejects) becomes a sorted
// slice.
type summaryJSON struct {
	Name          string             `json:"name"`
	Trials        int                `json:"trials"`
	AAL           float64            `json:"aal"`
	StdDev        float64            `json:"stddev"`
	VaR99         float64            `json:"var99"`
	TVaR99        float64            `json:"tvar99"`
	VaR995        float64            `json:"var995"`
	TVaR995       float64            `json:"tvar995"`
	ReturnPeriods []returnPeriodJSON `json:"return_periods"`
}

type returnPeriodJSON struct {
	Years float64 `json:"years"`
	OEP   float64 `json:"oep"`
	AEP   float64 `json:"aep"`
}

func toSummaryJSON(s risk.Summary) summaryJSON {
	out := summaryJSON{
		Name:    s.Name,
		Trials:  s.Trials,
		AAL:     s.AAL,
		StdDev:  s.StdDev,
		VaR99:   s.VaR99,
		TVaR99:  s.TVaR99,
		VaR995:  s.VaR995,
		TVaR995: s.TVaR995,
	}
	for years, rl := range s.ReturnPeriods {
		out.ReturnPeriods = append(out.ReturnPeriods, returnPeriodJSON{Years: years, OEP: rl.OEP, AEP: rl.AEP})
	}
	sort.Slice(out.ReturnPeriods, func(i, j int) bool {
		return out.ReturnPeriods[i].Years < out.ReturnPeriods[j].Years
	})
	return out
}

type stageLine struct {
	Name        string  `json:"name"`
	DurationMS  float64 `json:"duration_ms"`
	OutputBytes int64   `json:"output_bytes"`
}

// ensureReport runs the full study once, on first demand; quotes
// continue concurrently — after warm-up the idempotent Run only
// touches stage-2/3 state the quote path never reads. Both the
// portfolio and cube endpoints gate on it.
func (s *Server) ensureReport(ctx context.Context) (*risk.Report, error) {
	s.portMu.Lock()
	defer s.portMu.Unlock()
	if s.portRep == nil {
		rep, err := s.study.Run(ctx)
		if err != nil {
			return nil, err
		}
		s.portRep = rep
	}
	return s.portRep, nil
}

func (s *Server) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	if s.study == nil {
		httpError(w, http.StatusNotImplemented, "portfolio endpoint requires a risk.Study-backed server")
		return
	}
	rep, err := s.ensureReport(r.Context())
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	out := portfolioResponse{Catastrophe: toSummaryJSON(rep.Catastrophe), Enterprise: toSummaryJSON(rep.Enterprise)}
	for _, st := range rep.Stages {
		out.Stages = append(out.Stages, stageLine{
			Name:        st.Name,
			DurationMS:  float64(st.Duration) / float64(time.Millisecond),
			OutputBytes: st.OutputBytes,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCube serves a pre-computed warehouse cell. The URL query
// parameters are the dimension filter; the reserved check=direct
// parameter re-derives the summary from the cube's registry instead
// of reading the pre-computed cell (for self-checks and CI diffs).
func (s *Server) handleCube(w http.ResponseWriter, r *http.Request) {
	if s.study == nil {
		httpError(w, http.StatusNotImplemented, "cube endpoint requires a risk.Study-backed server")
		return
	}
	direct := false
	filter := map[string]string{}
	for k, vs := range r.URL.Query() {
		if k == "check" {
			switch {
			case len(vs) == 1 && vs[0] == "direct":
				direct = true
			default:
				httpError(w, http.StatusBadRequest, "unknown check mode (want check=direct)")
				return
			}
			continue
		}
		if len(vs) != 1 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("dimension %q repeated", k))
			return
		}
		filter[k] = vs[0]
	}
	if len(filter) == 0 {
		httpError(w, http.StatusBadRequest, "empty cube filter (pass dimension=value query parameters)")
		return
	}
	// The cube materializes with the full study; first query triggers
	// the run like /v1/portfolio does.
	if _, err := s.ensureReport(r.Context()); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var sum risk.Summary
	var err error
	if direct {
		sum, err = s.study.CubeQueryDirect(filter)
	} else {
		sum, err = s.study.CubeQuery(filter)
	}
	if err != nil {
		s.stats.cubeMisses.Add(1)
		switch {
		case errors.Is(err, risk.ErrCubeNotBuilt):
			httpError(w, http.StatusNotFound, err.Error()+" (start the server with cube dimensions configured)")
		case errors.Is(err, risk.ErrNoCubeCell):
			httpError(w, http.StatusNotFound, err.Error())
		default:
			httpError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	s.stats.cubeQueries.Add(1)
	writeJSON(w, http.StatusOK, toSummaryJSON(sum))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"warm":      s.warm.Load(),
		"uptime_ms": float64(time.Since(s.start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats.snapshot(s))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeJSON marshals before touching the ResponseWriter so an encoding
// failure becomes a 500 rather than a 200 with an empty body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(b)
}
