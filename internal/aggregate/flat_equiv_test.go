package aggregate

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/lossindex"
	"repro/internal/stream"
	"repro/internal/synth"
	"repro/internal/yelt"
)

// The kernel-equivalence suite: the trial-blocked flat kernel, the
// single-trial flat SoA kernel, the indexed (pre-flat) kernel, and the
// pre-index LegacyLookup reference must be bit-identical for every
// engine × sampling × per-contract × seed × batch-size × block-size
// combination. This is the contract that makes the kernel choice a
// pure performance lever — draw order, accumulation order, and clamp
// arithmetic all survive the flattening and the blocking.

// allKernels is the full kernel sweep the equivalence tests pin.
var allKernels = []Kernel{KernelBlocked, KernelFlat, KernelIndexed}

type kernelCase struct {
	name     string
	engine   func() Engine
	sampling []bool
}

func kernelMatrix() []kernelCase {
	return []kernelCase{
		{name: "sequential", engine: func() Engine { return Sequential{} }, sampling: []bool{false, true}},
		{name: "parallel", engine: func() Engine { return Parallel{} }, sampling: []bool{false, true}},
		{name: "mapreduce", engine: func() Engine { return MapReduce{SplitTrials: 401} }, sampling: []bool{false, true}},
		// ByContract refuses sampling mode (draws would interleave by
		// contract); its exact-OccMax pass goes through the shared
		// kernel, so it belongs in the matrix for expected mode.
		{name: "by-contract", engine: func() Engine { return ByContract{} }, sampling: []bool{false}},
	}
}

func TestKernelEquivalenceAllEngines(t *testing.T) {
	s := buildScenario(t, synth.Small(31))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := lossindex.Flatten(ix, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, seed := range []uint64{5, 17} {
		for _, sampling := range []bool{false, true} {
			for _, perCon := range []bool{false, true} {
				refCfg := Config{Seed: seed, Sampling: sampling, PerContract: perCon}
				legacy, err := LegacyLookup{}.Run(ctx, input(s), refCfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, kc := range kernelMatrix() {
					wantSampling := false
					for _, sm := range kc.sampling {
						wantSampling = wantSampling || sm == sampling
					}
					if !wantSampling {
						continue
					}
					for _, kernel := range allKernels {
						name := fmt.Sprintf("%s/kernel=%d/sampling=%v/percon=%v/seed=%d", kc.name, kernel, sampling, perCon, seed)
						cfg := refCfg
						cfg.Kernel = kernel
						in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix, Flat: fx}
						got, err := kc.engine().Run(ctx, in, cfg)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						resultsBitIdentical(t, name, legacy, got)
					}
				}
			}
		}
	}
}

// Batch size must not leak into kernel results: the flat kernel over a
// streaming source, at batch sizes that do and do not divide the trial
// count, must still match the legacy reference bit-for-bit.
func TestKernelEquivalenceAcrossBatchSizes(t *testing.T) {
	s := buildScenario(t, synth.Small(32))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := lossindex.Flatten(ix, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	refCfg := Config{Seed: 9, Sampling: true, PerContract: true}
	legacy, err := LegacyLookup{}.Run(ctx, input(s), refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 500, 997, 4096} {
		for _, kernel := range allKernels {
			gen, err := s.YELTGenerator()
			if err != nil {
				t.Fatal(err)
			}
			cfg := refCfg
			cfg.Kernel = kernel
			cfg.BatchTrials = batch
			in := &Input{Source: gen, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix, Flat: fx}
			got, err := (Parallel{}).Run(ctx, in, cfg)
			if err != nil {
				t.Fatal(err)
			}
			resultsBitIdentical(t, fmt.Sprintf("batch=%d/kernel=%d", batch, kernel), legacy, got)
		}
	}
}

// Block size must not leak into blocked-kernel results either: the
// blocked kernel at block sizes that do and do not divide the trial
// count (or the batch size) must still match the legacy reference
// bit-for-bit, in both modes, with and without per-contract tables.
// Block 1 degenerates to per-trial passes; blocks larger than a batch
// clamp to it.
func TestKernelEquivalenceAcrossBlockSizes(t *testing.T) {
	s := buildScenario(t, synth.Small(36))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := lossindex.Flatten(ix, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, sampling := range []bool{false, true} {
		for _, perCon := range []bool{false, true} {
			refCfg := Config{Seed: 21, Sampling: sampling, PerContract: perCon}
			legacy, err := LegacyLookup{}.Run(ctx, input(s), refCfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, block := range []int{1, 32, 33, 64, 97, 128} {
				for _, batch := range []int{0, 97} { // 0: default; 97: blocks straddle batch ends
					name := fmt.Sprintf("block=%d/batch=%d/sampling=%v/percon=%v", block, batch, sampling, perCon)
					cfg := refCfg
					cfg.Kernel = KernelBlocked
					cfg.TrialBlock = block
					cfg.BatchTrials = batch
					gen, err := s.YELTGenerator()
					if err != nil {
						t.Fatal(err)
					}
					in := &Input{Source: gen, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix, Flat: fx}
					got, err := (Parallel{}).Run(ctx, in, cfg)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					resultsBitIdentical(t, name, legacy, got)
				}
			}
		}
	}
}

// A bare input (no pre-built layouts) must lazily build what the
// configured kernel needs and still agree with the reference.
func TestKernelLazyBuild(t *testing.T) {
	s := buildScenario(t, synth.Small(34))
	cfg := Config{Seed: 3, Sampling: true}
	legacy, err := LegacyLookup{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	in := input(s)
	got, err := (Sequential{}).Run(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if in.Index == nil || in.Flat == nil {
		t.Fatal("flat kernel run did not memoize its layouts")
	}
	resultsBitIdentical(t, "lazy", legacy, got)

	// The indexed kernel must not force the flat build.
	in2 := input(s)
	cfg.Kernel = KernelIndexed
	if _, err := (Sequential{}).Run(context.Background(), in2, cfg); err != nil {
		t.Fatal(err)
	}
	if in2.Index == nil {
		t.Fatal("indexed kernel run did not memoize the index")
	}
	if in2.Flat != nil {
		t.Fatal("indexed kernel run built the flat layout it does not scan")
	}
}

// Validate must reject a flat layout built for a different book shape.
func TestValidateRejectsMismatchedFlat(t *testing.T) {
	s := buildScenario(t, synth.Small(35))
	sub := &Input{YELT: s.YELT, ELTs: s.ELTs[:1], Portfolio: singleContractPortfolio(s, 0)}
	if _, err := sub.EnsureFlat(); err != nil {
		t.Fatal(err)
	}
	in := input(s)
	in.Flat = sub.Flat
	if err := in.Validate(); err == nil {
		t.Fatal("mismatched flat layout accepted")
	}
}

// --- streamRange resident-bytes drain (satellite fix) ---

// failingSource wraps a Source and fails the (failAt+1)-th read — the
// mid-stream I/O error shape (a torn disk shard, a cancelled remote
// read) that must not leave resident-bytes accounting pinned.
type failingSource struct {
	inner  yelt.Source
	failAt int
	reads  int
}

var errMidStream = errors.New("mid-stream read failure")

func (f *failingSource) TrialCount() int { return f.inner.TrialCount() }

func (f *failingSource) ReadTrials(ctx context.Context, lo, hi int, buf *yelt.Table) (*yelt.Table, error) {
	if f.reads == f.failAt {
		return nil, errMidStream
	}
	f.reads++
	return f.inner.ReadTrials(ctx, lo, hi, buf)
}

// trackerDrained asserts every worker's resident bytes returned to
// zero — the invariant streamRange must uphold on every exit path.
func trackerDrained(t *testing.T, rt *residentTracker) {
	t.Helper()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.cur != 0 {
		t.Fatalf("tracker left %d resident bytes after stream ended", rt.cur)
	}
	for w, b := range rt.per {
		if b != 0 {
			t.Fatalf("worker %d left %d resident bytes", w, b)
		}
	}
}

func TestStreamRangeDrainsResidentOnReadError(t *testing.T) {
	s := buildScenario(t, synth.Small(33))
	rt := newResidentTracker()
	src := &failingSource{inner: s.YELT, failAt: 2}
	err := streamRange(context.Background(), src, stream.Range{Lo: 0, Hi: s.YELT.NumTrials}, 100, rt, 3, &yelt.Table{},
		func(*yelt.Table, int) error { return nil })
	if !errors.Is(err, errMidStream) {
		t.Fatalf("err = %v, want mid-stream failure", err)
	}
	if rt.Peak() <= 0 {
		t.Fatal("no resident bytes were ever tracked before the failure")
	}
	trackerDrained(t, rt)
}

func TestStreamRangeDrainsResidentOnFnError(t *testing.T) {
	s := buildScenario(t, synth.Small(33))
	rt := newResidentTracker()
	boom := errors.New("kernel failure")
	calls := 0
	err := streamRange(context.Background(), s.YELT, stream.Range{Lo: 0, Hi: s.YELT.NumTrials}, 100, rt, 0, &yelt.Table{},
		func(*yelt.Table, int) error {
			calls++
			if calls == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want fn failure", err)
	}
	trackerDrained(t, rt)
}
