package aggregate

import (
	"context"
	"testing"

	"repro/internal/lossindex"
	"repro/internal/stream"
	"repro/internal/synth"
)

// Placement is a scheduling and accounting lever only: every policy
// must produce results bit-identical to Sequential, and over a spilled
// source the local/remote byte split must account for exactly the
// spilled dataset (each shard's bytes attributed once, to one side).
func TestPlacementEquivalenceAndByteAccounting(t *testing.T) {
	s := buildScenario(t, synth.Small(67))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	disk := spilledSource(t, s)
	spilled, err := disk.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 41, Sampling: true, PerContract: true, Workers: 3, BatchTrials: 311}
	want, err := Sequential{}.Run(context.Background(),
		&Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Placement{PlaceAffine, PlaceBlind, PlaceUniform} {
		in := &Input{Source: disk, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
		// SplitTrials larger than any shard: one split per shard, so the
		// pro-rata byte attribution is exact.
		got, err := MapReduce{SplitTrials: 4096, Placement: p}.Run(context.Background(), in, cfg)
		if err != nil {
			t.Fatalf("placement %v: %v", p, err)
		}
		resultsBitIdentical(t, "placement/"+p.String(), want, got)
		if got.BusySeconds <= 0 {
			t.Fatalf("placement %v: no busy time measured", p)
		}
		switch p {
		case PlaceUniform:
			if got.LocalBytes != 0 || got.RemoteBytes != 0 {
				t.Fatalf("uniform placement accounted bytes: local=%d remote=%d", got.LocalBytes, got.RemoteBytes)
			}
		default:
			if got.LocalBytes+got.RemoteBytes != spilled {
				t.Fatalf("placement %v: local=%d + remote=%d != spilled %d",
					p, got.LocalBytes, got.RemoteBytes, spilled)
			}
		}
	}
}

// With a single mapper lane per node and one worker, every home-lane
// shard scans local — only the end-of-run steals of other nodes'
// shards pay remote. The deterministic single-worker schedule makes
// the exact split checkable: worker 0 is homed on node 0, so shards
// 0 and 3 (of 5 shards on 3 nodes) are local.
func TestAffineSingleWorkerAccountsStealsRemote(t *testing.T) {
	s := buildScenario(t, synth.Small(69))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	disk := spilledSource(t, s)
	in := &Input{Source: disk, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
	res, err := MapReduce{SplitTrials: 4096, Placement: PlaceAffine}.Run(context.Background(), in,
		Config{Workers: 1, BatchTrials: 311})
	if err != nil {
		t.Fatal(err)
	}
	var wantLocal, wantRemote int64
	for sh := 0; sh < disk.Shards(); sh++ {
		b, err := disk.ShardSizeBytes(sh)
		if err != nil {
			t.Fatal(err)
		}
		if disk.ShardNode(sh) == 0 {
			wantLocal += b
		} else {
			wantRemote += b
		}
	}
	if res.LocalBytes != wantLocal || res.RemoteBytes != wantRemote {
		t.Fatalf("local=%d remote=%d, want local=%d remote=%d",
			res.LocalBytes, res.RemoteBytes, wantLocal, wantRemote)
	}
}

// Satellite regression: under default sizing, mapper splits must align
// with DefaultSpillParts shard boundaries — no split straddles two
// shards, and the splits exactly tile the trial range — even when the
// trial count divides into neither shards nor splits evenly.
func TestDefaultSpillShardsAlignWithMapperSplits(t *testing.T) {
	for _, n := range []int{1_000_000 + 1, 1_000_000, 32768, 32769, 99991, 12345677} {
		shards := stream.Partition(n, DefaultSpillParts(n))
		ranges, shardOf := shardSplits(shards, DefaultSplitTrials)
		next := 0
		for i, r := range ranges {
			if r.Lo != next {
				t.Fatalf("n=%d: split %d starts at %d, want %d (gap or overlap)", n, i, r.Lo, next)
			}
			if r.Len() <= 0 || r.Len() > DefaultSplitTrials {
				t.Fatalf("n=%d: split %d has %d trials", n, i, r.Len())
			}
			sh := shards[shardOf[i]]
			if r.Lo < sh.Lo || r.Hi > sh.Hi {
				t.Fatalf("n=%d: split %d [%d,%d) straddles shard %d [%d,%d)",
					n, i, r.Lo, r.Hi, shardOf[i], sh.Lo, sh.Hi)
			}
			next = r.Hi
		}
		if next != n {
			t.Fatalf("n=%d: splits cover [0,%d), want [0,%d)", n, next, n)
		}
	}
}
