package aggregate

import (
	"context"
	"math"
	"testing"

	"repro/internal/lossindex"
	"repro/internal/synth"
)

func TestByContractMatchesSequentialExpectedMode(t *testing.T) {
	s := buildScenario(t, synth.Small(41))
	cfg := Config{}
	seq, err := Sequential{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := ByContract{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Portfolio.Agg {
		if math.Abs(seq.Portfolio.Agg[i]-bc.Portfolio.Agg[i]) > 1e-9*(1+seq.Portfolio.Agg[i]) {
			t.Fatalf("agg trial %d: %v vs %v", i, seq.Portfolio.Agg[i], bc.Portfolio.Agg[i])
		}
		if math.Abs(seq.Portfolio.OccMax[i]-bc.Portfolio.OccMax[i]) > 1e-9*(1+seq.Portfolio.OccMax[i]) {
			t.Fatalf("occmax trial %d: %v vs %v", i, seq.Portfolio.OccMax[i], bc.Portfolio.OccMax[i])
		}
	}
}

func TestByContractPerContractOutput(t *testing.T) {
	s := buildScenario(t, synth.Small(42))
	cfg := Config{PerContract: true}
	seq, err := Sequential{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := ByContract{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.PerContract) != len(seq.PerContract) {
		t.Fatal("per-contract table counts differ")
	}
	for ci := range seq.PerContract {
		for trial := range seq.PerContract[ci].Agg {
			a := seq.PerContract[ci].Agg[trial]
			b := bc.PerContract[ci].Agg[trial]
			if math.Abs(a-b) > 1e-9*(1+a) {
				t.Fatalf("contract %d trial %d: %v vs %v", ci, trial, a, b)
			}
		}
	}
}

// The two contractMeans paths — projected from the packed
// lossindex.Flat columns (the default) and re-scanned from the
// contract's ELT (the indexed-kernel fallback) — must produce
// identical dense vectors, and therefore identical engine results.
func TestByContractMeansFromFlatMatchELTScan(t *testing.T) {
	s := buildScenario(t, synth.Small(45))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := lossindex.Flatten(ix, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	withFlat := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix, Flat: fx}
	withoutFlat := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
	fromFlat, err := contractMeansAll(context.Background(), withFlat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	fromELTs, err := contractMeansAll(context.Background(), withoutFlat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range s.Portfolio.Contracts {
		bitIdentical(t, "dense means", fromFlat[ci], fromELTs[ci])
	}
	cfg := Config{PerContract: true, Kernel: KernelIndexed} // indexed: the engine never builds Flat itself
	want, err := ByContract{}.Run(context.Background(), withoutFlat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ByContract{}.Run(context.Background(), withFlat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "by-contract means source", want, got)
}

func TestByContractRefusesSampling(t *testing.T) {
	s := buildScenario(t, synth.Small(43))
	if _, err := (ByContract{}).Run(context.Background(), input(s), Config{Sampling: true}); err == nil {
		t.Fatal("sampling mode should be refused (draw order differs)")
	}
}

func TestByContractCancellation(t *testing.T) {
	s := buildScenario(t, synth.Small(44))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (ByContract{}).Run(ctx, input(s), Config{}); err == nil {
		t.Fatal("cancelled run should error")
	}
}

// The batch-major streaming form must derive each trial exactly once —
// the shared per-batch cache that replaces the old
// once-per-contract-plus-occurrence-pass regeneration (for C contracts,
// (C+1)× the table's occurrences). Streamed() counting the table's
// occurrence count exactly once is the whole point of the restructure.
func TestByContractStreamingSingleGeneration(t *testing.T) {
	s := buildScenario(t, synth.Small(45))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := s.YELTGenerator()
	if err != nil {
		t.Fatal(err)
	}
	in := &Input{Source: gen, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
	cfg := Config{Workers: 3, BatchTrials: 97, PerContract: true}
	got, err := (ByContract{}).Run(context.Background(), in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(s.YELT.Len()); gen.Streamed() != want {
		t.Fatalf("streamed %d occurrences, want exactly one generation pass (%d)", gen.Streamed(), want)
	}
	// And the single-pass restructure must not change results.
	want, err := (ByContract{}).Run(context.Background(),
		&Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "by-contract single-pass", want, got)
}

// The decomposition ablation: by-trial vs by-contract parallelism on a
// book with few contracts (the common case — a portfolio has orders of
// magnitude fewer contracts than trials).
func BenchmarkByContractVsByTrial(b *testing.B) {
	s := benchScenario(b, false)
	in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	b.Run("by-trial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (Parallel{}).Run(context.Background(), in, Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("by-contract", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (ByContract{}).Run(context.Background(), in, Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
