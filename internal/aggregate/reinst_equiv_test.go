package aggregate

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/layers"
	"repro/internal/lossindex"
	"repro/internal/synth"
)

// The reinstatements kernel-equivalence suite: the flat SoA year-state
// kernel (runTrialReinstFlat over lossindex.Flat + layers.FlatYearStates)
// must be bit-identical to the indexed nested-slice state machine for
// every sampling × seed × batch-size × terms-regime combination — the
// stateful counterpart of the PR-4 flat_equiv suite. Recoveries,
// occurrence maxima, AND the per-trial premium ledger all have to
// survive the flattening; that contract is what makes Config.Kernel a
// pure performance lever on the stateful path too.

// reinstRegimes builds the terms regimes the suite sweeps: terms that
// never bind, terms that bind but reinstate, terms exhausted after the
// initial limit, and a mixed book where premium accrues on only some
// layers (zero upfront premium elsewhere — the premBase==0 encoding).
func reinstRegimes(pf *layers.Portfolio) map[string][][]layers.ReinstatementTerms {
	uniform := func(count int, rate, upfront float64) [][]layers.ReinstatementTerms {
		out := make([][]layers.ReinstatementTerms, len(pf.Contracts))
		for ci, c := range pf.Contracts {
			out[ci] = make([]layers.ReinstatementTerms, len(c.Layers))
			for li := range c.Layers {
				out[ci][li] = layers.ReinstatementTerms{Count: count, PremiumRate: rate, UpfrontPremium: upfront}
			}
		}
		return out
	}
	partial := uniform(2, 0.5, 750)
	fl := 0
	for ci := range partial {
		for li := range partial[ci] {
			if fl%2 == 0 {
				partial[ci][li].UpfrontPremium = 0
			}
			fl++
		}
	}
	return map[string][][]layers.ReinstatementTerms{
		"unlimited":       UnlimitedReinstatements(pf),
		"binding":         uniform(1, 1.0, 1000),
		"exhausted":       uniform(0, 1.0, 1000),
		"partial-premium": partial,
	}
}

func reinstBitIdentical(t *testing.T, name string, want, got *ReinstatementResult) {
	t.Helper()
	bitIdentical(t, name+" agg", want.Portfolio.Agg, got.Portfolio.Agg)
	bitIdentical(t, name+" occmax", want.Portfolio.OccMax, got.Portfolio.OccMax)
	bitIdentical(t, name+" premium", want.ReinstPremium, got.ReinstPremium)
}

func TestReinstKernelEquivalence(t *testing.T) {
	s := buildScenario(t, synth.Small(51))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	fx, err := lossindex.Flatten(ix, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for regime, terms := range reinstRegimes(s.Portfolio) {
		for _, seed := range []uint64{5, 17} {
			for _, sampling := range []bool{false, true} {
				name := fmt.Sprintf("%s/sampling=%v/seed=%d", regime, sampling, seed)
				cfg := Config{Seed: seed, Sampling: sampling, Workers: 3}
				cfgIdx := cfg
				cfgIdx.Kernel = KernelIndexed
				in := func() *ReinstatementInput {
					return &ReinstatementInput{
						Input: &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix, Flat: fx},
						Terms: terms,
					}
				}
				want, err := RunReinstatements(ctx, in(), cfgIdx)
				if err != nil {
					t.Fatalf("%s indexed: %v", name, err)
				}
				got, err := RunReinstatements(ctx, in(), cfg)
				if err != nil {
					t.Fatalf("%s flat: %v", name, err)
				}
				reinstBitIdentical(t, name, want, got)
			}
		}
	}
}

// Batch size must not leak into the flat kernel's results: streaming
// sources at batch sizes that do and do not divide the trial count
// must match the materialized indexed reference bit-for-bit, premium
// ledger included.
func TestReinstKernelEquivalenceAcrossBatchSizes(t *testing.T) {
	s := buildScenario(t, synth.Small(52))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	terms := reinstRegimes(s.Portfolio)["binding"]
	ctx := context.Background()
	refCfg := Config{Seed: 9, Sampling: true, Kernel: KernelIndexed}
	want, err := RunReinstatements(ctx, &ReinstatementInput{
		Input: &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix},
		Terms: terms,
	}, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range equivBatchSizes {
		for _, kernel := range []Kernel{KernelFlat, KernelIndexed} {
			cfg := Config{Seed: 9, Sampling: true, Workers: 2, BatchTrials: batch, Kernel: kernel}
			got, err := RunReinstatements(ctx, &ReinstatementInput{
				Input: streamingInput(t, s, ix),
				Terms: terms,
			}, cfg)
			if err != nil {
				t.Fatalf("batch=%d kernel=%d: %v", batch, kernel, err)
			}
			reinstBitIdentical(t, fmt.Sprintf("batch=%d/kernel=%d", batch, kernel), want, got)
		}
	}
}

// A bare input must lazily build the layouts the flat stateful kernel
// scans, and an indexed-kernel run must not force the flat build —
// the same laziness contract the stateless engines keep.
func TestReinstKernelLazyBuild(t *testing.T) {
	s := buildScenario(t, synth.Small(53))
	terms := reinstRegimes(s.Portfolio)["binding"]
	cfg := Config{Seed: 3, Sampling: true}
	in := input(s)
	if _, err := RunReinstatements(context.Background(), &ReinstatementInput{Input: in, Terms: terms}, cfg); err != nil {
		t.Fatal(err)
	}
	if in.Index == nil || in.Flat == nil {
		t.Fatal("flat stateful run did not memoize its layouts")
	}
	in2 := input(s)
	cfg.Kernel = KernelIndexed
	if _, err := RunReinstatements(context.Background(), &ReinstatementInput{Input: in2, Terms: terms}, cfg); err != nil {
		t.Fatal(err)
	}
	if in2.Index == nil {
		t.Fatal("indexed stateful run did not memoize the index")
	}
	if in2.Flat != nil {
		t.Fatal("indexed stateful run built the flat layout it does not scan")
	}
}

// The Reinstatements engine adapter must agree with a direct
// RunReinstatements call under the same (derived) terms, and retain
// the premium ledger on the engine.
func TestReinstatementsEngineAdapter(t *testing.T) {
	s := buildScenario(t, synth.Small(54))
	cfg := Config{Seed: 7, Sampling: true}
	eng := &Reinstatements{}
	res, err := eng.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunReinstatements(context.Background(), &ReinstatementInput{
		Input: input(s), Terms: StandardReinstatements(s.Portfolio),
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "adapter agg", want.Portfolio.Agg, res.Portfolio.Agg)
	bitIdentical(t, "adapter occmax", want.Portfolio.OccMax, res.Portfolio.OccMax)
	bitIdentical(t, "adapter premium", want.ReinstPremium, eng.LastPremium)
	var total float64
	for _, p := range eng.LastPremium {
		total += p
	}
	if total <= 0 {
		t.Fatal("standard terms on a loss-making book should charge premium")
	}
	// The stateful path has no per-contract tables; the adapter must
	// refuse the option rather than return nil slots.
	if _, err := eng.Run(context.Background(), input(s), Config{PerContract: true}); err == nil {
		t.Fatal("PerContract accepted by an engine that cannot produce it")
	}
}
