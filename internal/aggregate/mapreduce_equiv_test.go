package aggregate

import (
	"context"
	"testing"

	"repro/internal/diskstore"
	"repro/internal/lossindex"
	"repro/internal/synth"
	"repro/internal/yelt"
)

// The MapReduce engine's correctness contract: bit-identical to
// Sequential over the materialized table, for every trial source the
// engine can map over (materialized table, fused generator, spilled
// disk shards), with sampling on and off, across seeds, and for split
// sizes that do and do not divide the trial count. Split and batch
// granularity must only change scheduling, never results.

// spilledSource writes the scenario's YELT into a fresh diskstore with
// a shard count chosen to not align with any split or batch size used
// below, and returns the DiskSource over it.
func spilledSource(t *testing.T, s *synth.Scenario) *yelt.DiskSource {
	t.Helper()
	store, err := diskstore.Create(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := yelt.Spill(context.Background(), s.YELT, store, "yelt", 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestMapReduceEquivalenceMatrix(t *testing.T) {
	s := buildScenario(t, synth.Small(61))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	disk := spilledSource(t, s)
	gen, err := s.YELTGenerator()
	if err != nil {
		t.Fatal(err)
	}
	sources := []struct {
		name  string
		input func() *Input
	}{
		{"table", func() *Input {
			return &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
		}},
		{"generator", func() *Input {
			return &Input{Source: gen, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
		}},
		{"disk", func() *Input {
			return &Input{Source: disk, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
		}},
	}
	// 2000-trial scenario: single-trial splits, two non-divisors, an
	// exact divisor, and one split larger than the trial count.
	splitSizes := []int{1, 7, 500, 997, 4096}

	for _, sampling := range []bool{false, true} {
		for _, seed := range []uint64{13, 977} {
			cfg := Config{Seed: seed, Sampling: sampling, PerContract: true, Workers: 3, BatchTrials: 311}
			matIn := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
			want, err := Sequential{}.Run(context.Background(), matIn, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, src := range sources {
				for _, split := range splitSizes {
					eng := MapReduce{SplitTrials: split}
					got, err := eng.Run(context.Background(), src.input(), cfg)
					if err != nil {
						t.Fatalf("%s split=%d sampling=%v: %v", src.name, split, sampling, err)
					}
					name := "mapreduce/" + src.name
					if sampling {
						name += "/sampling"
					}
					resultsBitIdentical(t, name, want, got)
				}
			}
		}
	}
}

// A disk-backed run must report a bounded streaming envelope, not the
// materialized table footprint.
func TestMapReduceDiskSourceResidentBytes(t *testing.T) {
	s := buildScenario(t, synth.Small(63))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	disk := spilledSource(t, s)
	in := &Input{Source: disk, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
	res, err := MapReduce{SplitTrials: 200}.Run(context.Background(), in,
		Config{Workers: 2, BatchTrials: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakResidentBytes <= 0 {
		t.Fatal("disk-backed run reported no resident bytes")
	}
	if res.PeakResidentBytes*4 >= s.YELT.SizeBytes() {
		t.Fatalf("disk-backed peak %d not well below table %d", res.PeakResidentBytes, s.YELT.SizeBytes())
	}
	if disk.Scanned() == 0 {
		t.Fatal("disk source was never scanned")
	}
}

func TestMapReduceCancellation(t *testing.T) {
	s := buildScenario(t, synth.Small(65))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (MapReduce{}).Run(ctx, input(s), Config{}); err == nil {
		t.Fatal("cancelled run should error")
	}
}

func TestMapReduceValidation(t *testing.T) {
	if _, err := (MapReduce{}).Run(context.Background(), &Input{}, Config{}); err == nil {
		t.Fatal("empty input should fail validation")
	}
}
