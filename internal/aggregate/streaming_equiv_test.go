package aggregate

import (
	"context"
	"testing"

	"repro/internal/layers"
	"repro/internal/lossindex"
	"repro/internal/synth"
	"repro/internal/yelt"
)

// The streaming equivalence suite: every engine must produce
// bit-identical results whether it consumes the materialized YELT or
// the fused Generator source, for every (sampling, seed, batch size)
// combination — including batch sizes that do not divide the trial
// count and batches larger than it. This is the correctness contract
// that makes streaming mode a pure memory/trial-count trade.

// equivCase is one engine × configuration cell of the matrix.
type equivCase struct {
	name     string
	engine   func() Engine // fresh engine per run (Chunked carries state)
	sampling []bool
	occOnly  bool // device engines need the occurrence-only book
	perCon   bool // request per-contract tables where supported
}

func equivMatrix() []equivCase {
	return []equivCase{
		{name: "sequential", engine: func() Engine { return Sequential{} }, sampling: []bool{false, true}, perCon: true},
		{name: "parallel", engine: func() Engine { return Parallel{} }, sampling: []bool{false, true}, perCon: true},
		{name: "by-contract", engine: func() Engine { return ByContract{} }, sampling: []bool{false}, perCon: true},
		{name: "mapreduce", engine: func() Engine { return MapReduce{SplitTrials: 643} }, sampling: []bool{false, true}, perCon: true},
		{name: "device-chunked", engine: func() Engine { return &Chunked{} }, sampling: []bool{false}, occOnly: true},
		{name: "device-naive", engine: func() Engine { return &Chunked{Naive: true} }, sampling: []bool{false}, occOnly: true},
	}
}

// equivBatchSizes exercises the batching edge cases against the
// 2000-trial synth.Small scenario: single-trial batches, two sizes
// that do not divide 2000, an exact divisor, and a batch larger than
// the whole trial count (one oversized read).
var equivBatchSizes = []int{1, 7, 500, 997, 4096}

func streamingInput(t *testing.T, s *synth.Scenario, ix *lossindex.Index) *Input {
	t.Helper()
	gen, err := s.YELTGenerator()
	if err != nil {
		t.Fatal(err)
	}
	return &Input{Source: gen, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
}

func resultsBitIdentical(t *testing.T, name string, want, got *Result) {
	t.Helper()
	bitIdentical(t, name+" agg", want.Portfolio.Agg, got.Portfolio.Agg)
	bitIdentical(t, name+" occmax", want.Portfolio.OccMax, got.Portfolio.OccMax)
	if len(want.PerContract) != len(got.PerContract) {
		t.Fatalf("%s: per-contract tables %d vs %d", name, len(want.PerContract), len(got.PerContract))
	}
	for ci := range want.PerContract {
		bitIdentical(t, name+" per-contract agg", want.PerContract[ci].Agg, got.PerContract[ci].Agg)
		bitIdentical(t, name+" per-contract occmax", want.PerContract[ci].OccMax, got.PerContract[ci].OccMax)
	}
}

func TestStreamingEquivalenceAllEngines(t *testing.T) {
	base := buildScenario(t, synth.Small(41))
	pOcc := synth.Small(41)
	pOcc.OccurrenceOnly = true
	occ := buildScenario(t, pOcc)
	baseIx, err := lossindex.Build(base.ELTs, base.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	occIx, err := lossindex.Build(occ.ELTs, occ.Portfolio)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range equivMatrix() {
		s, ix := base, baseIx
		if tc.occOnly {
			s, ix = occ, occIx
		}
		for _, sampling := range tc.sampling {
			for _, seed := range []uint64{13, 977} {
				cfg := Config{Seed: seed, Sampling: sampling, PerContract: tc.perCon, Workers: 3}
				matIn := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
				want, err := tc.engine().Run(context.Background(), matIn, cfg)
				if err != nil {
					t.Fatalf("%s materialized: %v", tc.name, err)
				}
				for _, batch := range equivBatchSizes {
					scfg := cfg
					scfg.BatchTrials = batch
					got, err := tc.engine().Run(context.Background(), streamingInput(t, s, ix), scfg)
					if err != nil {
						t.Fatalf("%s streaming batch=%d: %v", tc.name, batch, err)
					}
					name := tc.name
					if sampling {
						name += "/sampling"
					}
					resultsBitIdentical(t, name, want, got)
				}
			}
		}
	}
}

// The stateful reinstatements path must stream identically too —
// including the per-trial premium ledger — with both binding and
// never-binding terms.
func TestStreamingEquivalenceReinstatements(t *testing.T) {
	s := buildScenario(t, synth.Small(43))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	binding := make([][]layers.ReinstatementTerms, len(s.Portfolio.Contracts))
	for ci, c := range s.Portfolio.Contracts {
		binding[ci] = make([]layers.ReinstatementTerms, len(c.Layers))
		for li := range c.Layers {
			binding[ci][li] = layers.ReinstatementTerms{Count: 1, PremiumRate: 0.05}
		}
	}
	for _, terms := range [][][]layers.ReinstatementTerms{UnlimitedReinstatements(s.Portfolio), binding} {
		for _, sampling := range []bool{false, true} {
			cfg := Config{Seed: 29, Sampling: sampling, Workers: 2}
			matIn := &ReinstatementInput{
				Input: &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix},
				Terms: terms,
			}
			want, err := RunReinstatements(context.Background(), matIn, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range equivBatchSizes {
				scfg := cfg
				scfg.BatchTrials = batch
				strIn := &ReinstatementInput{Input: streamingInput(t, s, ix), Terms: terms}
				got, err := RunReinstatements(context.Background(), strIn, scfg)
				if err != nil {
					t.Fatalf("streaming batch=%d: %v", batch, err)
				}
				bitIdentical(t, "reinst agg", want.Portfolio.Agg, got.Portfolio.Agg)
				bitIdentical(t, "reinst occmax", want.Portfolio.OccMax, got.Portfolio.OccMax)
				bitIdentical(t, "reinst premium", want.ReinstPremium, got.ReinstPremium)
			}
		}
	}
}

// Streaming runs must actually deliver the bounded-memory promise:
// the tracked peak-resident bytes stay far below the materialized
// table footprint (and materialized runs report exactly that
// footprint).
func TestStreamingPeakResidentBytes(t *testing.T) {
	s := buildScenario(t, synth.Small(47))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	matIn := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
	mat, err := (Parallel{}).Run(context.Background(), matIn, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mat.PeakResidentBytes != s.YELT.SizeBytes() {
		t.Fatalf("materialized peak %d != table %d", mat.PeakResidentBytes, s.YELT.SizeBytes())
	}
	str, err := (Parallel{}).Run(context.Background(), streamingInput(t, s, ix),
		Config{Workers: 2, BatchTrials: 50})
	if err != nil {
		t.Fatal(err)
	}
	if str.PeakResidentBytes <= 0 {
		t.Fatal("streaming run reported no resident bytes")
	}
	if str.PeakResidentBytes*4 >= s.YELT.SizeBytes() {
		t.Fatalf("streaming peak %d not well below table %d", str.PeakResidentBytes, s.YELT.SizeBytes())
	}
	bitIdentical(t, "peak-test agg", mat.Portfolio.Agg, str.Portfolio.Agg)
}

// A YELT used through the Source interface (materialized table, view
// batches) must equal the direct materialized path too — the third
// corner of the abstraction.
func TestMaterializedTableAsSource(t *testing.T) {
	s := buildScenario(t, synth.Small(49))
	cfg := Config{Seed: 5, Sampling: true, BatchTrials: 333}
	direct, err := Sequential{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaSource, err := Sequential{}.Run(context.Background(),
		&Input{Source: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "table-as-source", direct, viaSource)
	if viaSource.PeakResidentBytes != s.YELT.SizeBytes() {
		t.Fatalf("table-as-source peak %d != table %d", viaSource.PeakResidentBytes, s.YELT.SizeBytes())
	}
}

// Streaming engines must honor cancellation mid-run like the
// materialized path does.
func TestStreamingCancellation(t *testing.T) {
	s := buildScenario(t, synth.Small(51))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Sequential{}).Run(ctx, streamingInput(t, s, ix), Config{}); err == nil {
		t.Fatal("sequential streaming should honor cancellation")
	}
	if _, err := (Parallel{}).Run(ctx, streamingInput(t, s, ix), Config{}); err == nil {
		t.Fatal("parallel streaming should honor cancellation")
	}
}

// The legacy reference kernel is deliberately pinned to materialized
// inputs.
func TestLegacyRejectsStreaming(t *testing.T) {
	s := buildScenario(t, synth.Small(53))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (LegacyLookup{}).Run(context.Background(), streamingInput(t, s, ix), Config{}); err == nil {
		t.Fatal("legacy kernel should reject streaming inputs")
	}
}

func TestValidateSourceInput(t *testing.T) {
	s := buildScenario(t, synth.Small(55))
	gen, err := s.YELTGenerator()
	if err != nil {
		t.Fatal(err)
	}
	good := &Input{Source: gen, ELTs: s.ELTs, Portfolio: s.Portfolio}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	neither := &Input{ELTs: s.ELTs, Portfolio: s.Portfolio}
	if err := neither.Validate(); err == nil {
		t.Fatal("input with neither YELT nor Source should fail validation")
	}
	empty := &Input{YELT: &yelt.Table{}, ELTs: s.ELTs, Portfolio: s.Portfolio}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty trial table should fail validation")
	}
}
