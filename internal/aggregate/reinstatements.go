package aggregate

import (
	"context"
	"fmt"

	"repro/internal/elt"
	"repro/internal/layers"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/yelt"
	"repro/internal/ylt"
)

// ReinstatementInput extends an Input with per-contract-layer
// reinstatement terms, enabling the stateful occurrence-ordered path:
// each trial year walks events in date order, eroding and reinstating
// layer limits (see internal/layers). Terms[ci][li] corresponds to
// Portfolio.Contracts[ci].Layers[li].
type ReinstatementInput struct {
	*Input
	Terms [][]layers.ReinstatementTerms
}

// Validate extends Input.Validate with terms-shape checks.
func (in *ReinstatementInput) Validate() error {
	if err := in.Input.Validate(); err != nil {
		return err
	}
	if len(in.Terms) != len(in.Portfolio.Contracts) {
		return fmt.Errorf("aggregate: %d term rows for %d contracts", len(in.Terms), len(in.Portfolio.Contracts))
	}
	for ci, c := range in.Portfolio.Contracts {
		if len(in.Terms[ci]) != len(c.Layers) {
			return fmt.Errorf("aggregate: contract %d: %d term entries for %d layers",
				c.ID, len(in.Terms[ci]), len(c.Layers))
		}
		for li, t := range in.Terms[ci] {
			if t.Count < 0 || t.PremiumRate < 0 || t.UpfrontPremium < 0 {
				return fmt.Errorf("aggregate: contract %d layer %d: negative reinstatement terms", c.ID, li)
			}
		}
	}
	return nil
}

// ReinstatementResult is the stateful path's output: the portfolio
// YLT plus the reinstatement premium earned per trial year.
type ReinstatementResult struct {
	Portfolio *ylt.Table
	// ReinstPremium[t] is the total reinstatement premium charged in
	// trial t across the book (reinsurer income offsetting recoveries).
	ReinstPremium []float64
	// PeakResidentBytes mirrors Result.PeakResidentBytes: the run's
	// trial-data memory envelope.
	PeakResidentBytes int64
}

// RunReinstatements executes the occurrence-ordered stateful analysis
// in parallel over trials. Like the stateless engines it is a pure
// function of (input, cfg); the YELT's day-of-year ordering is what
// makes limit erosion well-defined.
//
// Config.Kernel selects the data layout, exactly as for the stateless
// engines: the flat kernels (the default KernelBlocked and
// KernelFlat, identical here — limit erosion is stateful per trial,
// so there is no event-major blocking to exploit and both drive the
// single-trial runTrialReinstFlat) scan lossindex.Flat and a
// layers.FlatYearStates — contiguous year-state columns reset by bulk
// copy — while KernelIndexed pins the nested-slice state machine
// below. Results are bit-identical across kernels (the reinstatements
// kernel-equivalence suite pins this); the choice is purely a
// performance lever.
func RunReinstatements(ctx context.Context, in *ReinstatementInput, cfg Config) (*ReinstatementResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	idx, err := in.ensureKernelData(cfg)
	if err != nil {
		return nil, err
	}
	var tmpl *layers.FlatYearStates
	if cfg.Kernel != KernelIndexed {
		// One validated template shared by every worker; workers Clone it
		// so only the live columns are per-worker.
		tmpl, err = in.Flat.Terms.NewFlatYearStates(in.Terms)
		if err != nil {
			return nil, fmt.Errorf("aggregate: flattening year states: %w", err)
		}
	}
	src := in.src()
	n := src.TrialCount()
	res := &ReinstatementResult{
		Portfolio:     ylt.New("portfolio-reinst", n),
		ReinstPremium: make([]float64, n),
	}
	contracts := in.Portfolio.Contracts
	rt := trackerFor(in.Input)

	err = stream.ForEachRange(ctx, n, cfg.Workers, func(ctx context.Context, r stream.Range, w int) error {
		// Per-worker year states and annual sums, reused across trials:
		// one flat vector each under KernelFlat, the nested per-contract
		// slices under KernelIndexed.
		var fy *layers.FlatYearStates
		var flatSums []float64
		var states [][]layers.YearState
		var sums [][]float64
		if tmpl != nil {
			fy = tmpl.Clone()
			flatSums = make([]float64, tmpl.NumLayers())
		} else {
			states = make([][]layers.YearState, len(contracts))
			sums = make([][]float64, len(contracts))
			for ci, c := range contracts {
				states[ci] = make([]layers.YearState, len(c.Layers))
				sums[ci] = make([]float64, len(c.Layers))
			}
		}
		return streamRange(ctx, src, r, cfg.batchTrials(), rt, w, &yelt.Table{}, func(b *yelt.Table, base int) error {
			for i := 0; i < b.NumTrials; i++ {
				trial := base + i
				// The trial's substream only feeds secondary-uncertainty
				// draws; expected mode never draws, so skip the stream
				// setup entirely (mirrors runBatch).
				var st *rng.Stream
				if cfg.Sampling {
					st = rng.NewStream(cfg.Seed, uint64(trial))
				}
				if fy != nil {
					agg, occMax, premium := runTrialReinstFlat(b.OccurrencesOf(i), in.Flat, fy, cfg.Sampling, st, flatSums)
					res.Portfolio.Agg[trial] = agg
					res.Portfolio.OccMax[trial] = occMax
					res.ReinstPremium[trial] = premium
					continue
				}
				for ci, c := range contracts {
					for li := range c.Layers {
						states[ci][li] = c.Layers[li].NewYearState(in.Terms[ci][li])
						sums[ci][li] = 0
					}
				}
				var occMax, premium float64
				for _, occ := range b.OccurrencesOf(i) {
					var occTotal float64
					for _, e := range idx.EntriesFor(occ.EventID) {
						ci := int(e.Contract)
						c := &contracts[ci]
						loss := e.Rec.MeanLoss
						if cfg.Sampling {
							loss = elt.SampleLoss(st, e.Rec)
						}
						for li := range c.Layers {
							rcv, p := states[ci][li].Occurrence(loss)
							sums[ci][li] += rcv
							occTotal += rcv
							premium += p
						}
					}
					if occTotal > occMax {
						occMax = occTotal
					}
				}
				var agg float64
				for ci := range contracts {
					for li := range sums[ci] {
						agg += states[ci][li].CloseYear(sums[ci][li])
					}
				}
				res.Portfolio.Agg[trial] = agg
				res.Portfolio.OccMax[trial] = occMax
				res.ReinstPremium[trial] = premium
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	res.PeakResidentBytes = peakResident(in.Input, rt)
	return res, nil
}

// UnlimitedReinstatements builds terms that never bind (a large count
// and no premium), under which RunReinstatements must agree with the
// stateless engines — the consistency check the tests pin down.
func UnlimitedReinstatements(pf *layers.Portfolio) [][]layers.ReinstatementTerms {
	out := make([][]layers.ReinstatementTerms, len(pf.Contracts))
	for ci, c := range pf.Contracts {
		out[ci] = make([]layers.ReinstatementTerms, len(c.Layers))
		for li := range c.Layers {
			out[ci][li] = layers.ReinstatementTerms{Count: 1 << 20}
		}
	}
	return out
}
