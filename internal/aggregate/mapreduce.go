package aggregate

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mapreduce"
	"repro/internal/stream"
	"repro/internal/yelt"
)

// MapReduce runs stage 2 as a map/reduce job over trial-range splits —
// the Yao/Varghese/Rau-Chaplin companion shape ("High Performance Risk
// Aggregation: ... the Hadoop MapReduce Way"): map over trial splits of
// any yelt.Source, reduce per-range YLT segments. Each mapper runs the
// shared runBatch kernel over its split into a segment table, reducers
// stitch contiguous segments, and the final assembly writes each
// segment into its disjoint slot range — so the engine is bit-identical
// to Sequential by construction, for any split size, mapper count, or
// reducer count. Combined with a spilled yelt.DiskSource the engine is
// the paper's distributed data-organization strategy end to end:
// partitioned loss data on (simulated) storage nodes, scanned by
// mappers, aggregated by reducers.
//
// Unlike the other engines, failed mappers are retried (MaxAttempts),
// mirroring speculative re-execution in the systems the in-process
// mapreduce package stands in for; a mapper's segment is private until
// it succeeds, so retries cannot corrupt the result.
//
// Over a spilled yelt.DiskSource the engine is locality-aware: splits
// are derived from the shard boundaries (never straddling a shard, so
// each map task scans exactly one shard's file) and scheduled on
// per-node mapper lanes so a shard is scanned by a mapper homed on the
// node that owns it. Placement selects shard-affine lanes (the
// default over a DiskSource), the placement-blind baseline, or plain
// uniform chunking; Result.LocalBytes/RemoteBytes account the data
// motion either way. Placement cannot change results: splits cover the
// same disjoint trial ranges regardless of which worker scans them,
// and the segment stitch is order-insensitive.
type MapReduce struct {
	// SplitTrials is the per-mapper trial range — the unit of work
	// distribution, deliberately coarser than Config.BatchTrials (the
	// unit of resident memory within a mapper); <= 0 means
	// DefaultSplitTrials. Over a DiskSource it bounds the split length
	// within a shard; shard boundaries still win.
	SplitTrials int
	// MaxAttempts bounds map-task retries; <= 0 means 2 (one retry).
	MaxAttempts int
	// Placement selects mapper placement over a spilled source; see the
	// Placement constants. The zero value (PlaceAffine) is shard-affine
	// whenever the source is a yelt.DiskSource and uniform otherwise.
	Placement Placement
	// Speculate launches backup attempts for straggling map tasks
	// (first finisher wins; duplicates are discarded, so results are
	// unchanged — see mapreduce.Config.Speculate).
	Speculate bool
	// Faults, when non-nil, injects the plan's deterministic failures
	// into the run: shard-read faults into the spilled store (installed
	// for the duration of the run when the source is a DiskSource),
	// node kills into the mapper lanes, and split delays into task
	// execution. Nil injects nothing.
	Faults *faultinject.Plan
}

// Placement is MapReduce's mapper-placement policy over a spilled
// (sharded) trial source. Placement is purely a scheduling and
// accounting lever: results are bit-identical across policies.
type Placement int

const (
	// PlaceAffine (the default) derives splits from shard boundaries
	// and runs per-node mapper lanes: a shard is scanned by a mapper
	// homed on its owning node unless stealing is needed for load
	// balance. Sources without shards fall back to uniform splits.
	PlaceAffine Placement = iota
	// PlaceBlind keeps the shard-derived splits and per-node mapper
	// homes but serves splits from one global queue regardless of
	// ownership — the data-motion baseline E16 measures affinity
	// against (~1/nodes of bytes scanned land local by accident).
	PlaceBlind
	// PlaceUniform ignores shards entirely: uniform stream.Chunks
	// splits with placement-free scheduling — the pre-locality
	// behaviour, kept for comparison.
	PlaceUniform
)

// String names the policy in benchmark tables.
func (p Placement) String() string {
	switch p {
	case PlaceBlind:
		return "blind"
	case PlaceUniform:
		return "uniform"
	default:
		return "affine"
	}
}

// DefaultSplitTrials is the default mapper split: a few batches per
// split keeps per-task dispatch negligible while still yielding enough
// splits to balance mappers on million-trial runs.
const DefaultSplitTrials = 4 * DefaultBatchTrials

// DefaultSpillParts sizes a yelt.Spill at one shard per
// DefaultSplitTrials trials (at least one): shards then align with the
// default mapper split, so a batched shard scan wastes little prefix
// decoding while per-shard overhead stays negligible. Shared by every
// spill call site (pipeline, CLIs, benchmarks).
func DefaultSpillParts(numTrials int) int {
	parts := numTrials / DefaultSplitTrials
	if parts < 1 {
		parts = 1
	}
	return parts
}

// Name implements Engine.
func (MapReduce) Name() string { return "mapreduce" }

// segment is one contiguous trial range of the final YLT: the value
// type flowing from mappers to reducers. res holds tables of length
// r.Len() whose slot for global trial t is t-r.Lo.
type segment struct {
	r   stream.Range
	res *Result
}

func newSegment(in *Input, cfg Config, r stream.Range) *segment {
	return &segment{r: r, res: newResultN(in, cfg, r.Len())}
}

// copyInto writes the segment into dst tables at its global slot range.
func (s *segment) copyInto(dst *Result, off int) {
	lo := s.r.Lo - off
	copy(dst.Portfolio.Agg[lo:], s.res.Portfolio.Agg)
	copy(dst.Portfolio.OccMax[lo:], s.res.Portfolio.OccMax)
	for ci := range dst.PerContract {
		copy(dst.PerContract[ci].Agg[lo:], s.res.PerContract[ci].Agg)
		copy(dst.PerContract[ci].OccMax[lo:], s.res.PerContract[ci].OccMax)
	}
}

// Run implements Engine.
func (m MapReduce) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if cfg.BatchSink != nil {
		// A live sink needs exactly-once batch completion; this
		// engine's failure model replays batches (failed-split retries,
		// speculative backup mappers). Keep the per-contract tables the
		// sink implies and let the caller feed from Result.PerContract.
		cfg.BatchSink = nil
		cfg.PerContract = true
	}
	idx, err := in.ensureKernelData(cfg)
	if err != nil {
		return nil, err
	}
	src := in.src()
	n := src.TrialCount()
	splitTrials := m.SplitTrials
	if splitTrials <= 0 {
		splitTrials = DefaultSplitTrials
	}
	maxAttempts := m.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2
	}

	// Splits are the map inputs; contiguous runs of whole splits form
	// reducer groups (the per-range YLT segments of the companion
	// paper), keyed so shuffle hashing lands each group on one reducer.
	// Over a sharded source (unless PlaceUniform) the splits follow the
	// shard boundaries — each split lies inside exactly one shard, so a
	// map task scans one shard's file and the task's data motion is
	// attributable to one node.
	ds, sharded := src.(*yelt.DiskSource)
	sharded = sharded && m.Placement != PlaceUniform
	var ranges []stream.Range
	var shardOf []int // shardOf[i] = shard holding split i (sharded only)
	if sharded {
		shards := make([]stream.Range, ds.Shards())
		for s := range shards {
			shards[s] = ds.ShardRange(s)
		}
		ranges, shardOf = shardSplits(shards, splitTrials)
	} else {
		ranges = stream.Chunks(n, splitTrials)
	}
	splits := make([]mapSplit, len(ranges))
	for i, r := range ranges {
		splits[i] = mapSplit{id: i, r: r}
	}
	nGroups := cfg.Workers
	if nGroups <= 0 {
		nGroups = runtime.GOMAXPROCS(0)
	}
	if nGroups > len(splits) {
		nGroups = len(splits)
	}
	groupOf := func(id int) int { return id * nGroups / len(splits) }

	rt := trackerFor(in)
	mapf := func(ctx context.Context, sp mapSplit, emit func(int, *segment)) error {
		seg := newSegment(in, cfg, sp.r)
		scratch := newTrialScratch(in.Portfolio, cfg.Kernel)
		err := streamRange(ctx, src, sp.r, cfg.batchTrials(), rt, sp.id, &yelt.Table{},
			func(b *yelt.Table, base int) error {
				runBatch(idx, in, cfg, b, base, seg.res, scratch, sp.r.Lo)
				return nil
			})
		if err != nil {
			return err
		}
		emit(groupOf(sp.id), seg)
		return nil
	}
	// Reduce stitches a group's segments into one segment spanning the
	// group's range. Segments arrive in unspecified order but cover
	// disjoint slots, so the stitch is order-insensitive — the
	// commutativity mapreduce.Run requires for determinism.
	reduce := func(_ int, segs []*segment) (*segment, error) {
		if len(segs) == 1 {
			return segs[0], nil
		}
		span := segs[0].r
		for _, s := range segs[1:] {
			if s.r.Lo < span.Lo {
				span.Lo = s.r.Lo
			}
			if s.r.Hi > span.Hi {
				span.Hi = s.r.Hi
			}
		}
		out := newSegment(in, cfg, span)
		for _, s := range segs {
			s.copyInto(out.res, span.Lo)
		}
		return out, nil
	}

	// Busy time is measured for every run (elastic provisioning reports
	// allocated vs busy processor-time); byte motion only over shards,
	// where a split's cost is its pro-rata share of its shard's file.
	var busyNanos, localBytes, remoteBytes atomic.Int64
	var splitBytes []int64
	stats := &mapreduce.Stats{}
	mrCfg := mapreduce.Config{
		Mappers:     cfg.Workers,
		Reducers:    nGroups,
		MaxAttempts: maxAttempts,
		RetrySeed:   cfg.Seed,
		Speculate:   m.Speculate,
		Stats:       stats,
		OnTask: func(split int, local bool, d time.Duration) {
			busyNanos.Add(int64(d))
			if splitBytes == nil {
				return
			}
			if local {
				localBytes.Add(splitBytes[split])
			} else {
				remoteBytes.Add(splitBytes[split])
			}
		},
	}
	if m.Faults != nil {
		mrCfg.NodeFault = m.Faults.NodeTask
		mrCfg.TaskDelay = m.Faults.SplitDelay
		// Shard-read faults reach the scan through the spilled store.
		if d, ok := src.(*yelt.DiskSource); ok {
			st := d.Store()
			st.SetReadFault(m.Faults.DiskRead)
			defer st.SetReadFault(nil)
		}
	}
	if sharded {
		splitBytes = make([]int64, len(splits))
		shardBytes := make([]int64, ds.Shards())
		for s := range shardBytes {
			b, err := ds.ShardSizeBytes(s)
			if err != nil {
				return nil, fmt.Errorf("aggregate: sizing shard %d: %w", s, err)
			}
			shardBytes[s] = b
		}
		for i, r := range ranges {
			sr := ds.ShardRange(shardOf[i])
			splitBytes[i] = shardBytes[shardOf[i]] * int64(r.Len()) / int64(sr.Len())
		}
		mrCfg.Nodes = ds.Nodes()
		mrCfg.NodeOf = func(split int) int { return ds.ShardNode(shardOf[split]) }
		mrCfg.Blind = m.Placement == PlaceBlind
		// Under replication any replica holder reads the shard off its
		// own disk, so placement accounting treats all of them as local.
		if ds.Replicas() > 1 {
			mrCfg.LocalOf = func(split, home int) bool {
				for _, n := range ds.ShardNodes(shardOf[split]) {
					if n == home {
						return true
					}
				}
				return false
			}
		}
	}

	var failovers0 int64
	if ds != nil {
		failovers0 = ds.Failovers()
	}
	stitched, err := mapreduce.Run(ctx, splits, mapf, nil, reduce, mrCfg)
	if err != nil {
		return nil, err
	}

	res := newResult(in, cfg)
	for _, seg := range stitched {
		seg.copyInto(res, 0)
	}
	res.LocalBytes = localBytes.Load()
	res.RemoteBytes = remoteBytes.Load()
	res.BusySeconds = time.Duration(busyNanos.Load()).Seconds()
	res.MapFailures = stats.Failures.Load()
	res.MapRetries = stats.Retries.Load()
	res.SpecLaunched = stats.SpecLaunched.Load()
	res.SpecWins = stats.SpecWins.Load()
	res.WorkersLost = stats.WorkersLost.Load()
	if ds != nil {
		res.ShardFailovers = ds.Failovers() - failovers0
	}
	finishResident(in, res, rt)
	return res, nil
}

// mapSplit is one map input: a contiguous trial range, numbered so
// reducer grouping and shard attribution key off the index.
type mapSplit struct {
	id int
	r  stream.Range
}

// shardSplits derives the map splits from a spilled source's shard
// boundaries: each shard is chunked into at most splitTrials-length
// splits, so no split ever straddles two shards and every split's scan
// touches exactly one shard file. Returns the split ranges and each
// split's owning shard. Under default sizing (DefaultSpillParts shards
// of ~DefaultSplitTrials trials) this degenerates to one or two splits
// per shard even when the trial count doesn't divide evenly.
func shardSplits(shards []stream.Range, splitTrials int) (ranges []stream.Range, shardOf []int) {
	for s, sr := range shards {
		for _, c := range stream.Chunks(sr.Len(), splitTrials) {
			ranges = append(ranges, stream.Range{Lo: sr.Lo + c.Lo, Hi: sr.Lo + c.Hi})
			shardOf = append(shardOf, s)
		}
	}
	return ranges, shardOf
}
