package aggregate

import (
	"context"
	"runtime"

	"repro/internal/mapreduce"
	"repro/internal/stream"
	"repro/internal/yelt"
)

// MapReduce runs stage 2 as a map/reduce job over trial-range splits —
// the Yao/Varghese/Rau-Chaplin companion shape ("High Performance Risk
// Aggregation: ... the Hadoop MapReduce Way"): map over trial splits of
// any yelt.Source, reduce per-range YLT segments. Each mapper runs the
// shared runBatch kernel over its split into a segment table, reducers
// stitch contiguous segments, and the final assembly writes each
// segment into its disjoint slot range — so the engine is bit-identical
// to Sequential by construction, for any split size, mapper count, or
// reducer count. Combined with a spilled yelt.DiskSource the engine is
// the paper's distributed data-organization strategy end to end:
// partitioned loss data on (simulated) storage nodes, scanned by
// mappers, aggregated by reducers.
//
// Unlike the other engines, failed mappers are retried (MaxAttempts),
// mirroring speculative re-execution in the systems the in-process
// mapreduce package stands in for; a mapper's segment is private until
// it succeeds, so retries cannot corrupt the result.
type MapReduce struct {
	// SplitTrials is the per-mapper trial range — the unit of work
	// distribution, deliberately coarser than Config.BatchTrials (the
	// unit of resident memory within a mapper); <= 0 means
	// DefaultSplitTrials.
	SplitTrials int
	// MaxAttempts bounds map-task retries; <= 0 means 2 (one retry).
	MaxAttempts int
}

// DefaultSplitTrials is the default mapper split: a few batches per
// split keeps per-task dispatch negligible while still yielding enough
// splits to balance mappers on million-trial runs.
const DefaultSplitTrials = 4 * DefaultBatchTrials

// DefaultSpillParts sizes a yelt.Spill at one shard per
// DefaultSplitTrials trials (at least one): shards then align with the
// default mapper split, so a batched shard scan wastes little prefix
// decoding while per-shard overhead stays negligible. Shared by every
// spill call site (pipeline, CLIs, benchmarks).
func DefaultSpillParts(numTrials int) int {
	parts := numTrials / DefaultSplitTrials
	if parts < 1 {
		parts = 1
	}
	return parts
}

// Name implements Engine.
func (MapReduce) Name() string { return "mapreduce" }

// segment is one contiguous trial range of the final YLT: the value
// type flowing from mappers to reducers. res holds tables of length
// r.Len() whose slot for global trial t is t-r.Lo.
type segment struct {
	r   stream.Range
	res *Result
}

func newSegment(in *Input, cfg Config, r stream.Range) *segment {
	return &segment{r: r, res: newResultN(in, cfg, r.Len())}
}

// copyInto writes the segment into dst tables at its global slot range.
func (s *segment) copyInto(dst *Result, off int) {
	lo := s.r.Lo - off
	copy(dst.Portfolio.Agg[lo:], s.res.Portfolio.Agg)
	copy(dst.Portfolio.OccMax[lo:], s.res.Portfolio.OccMax)
	for ci := range dst.PerContract {
		copy(dst.PerContract[ci].Agg[lo:], s.res.PerContract[ci].Agg)
		copy(dst.PerContract[ci].OccMax[lo:], s.res.PerContract[ci].OccMax)
	}
}

// Run implements Engine.
func (m MapReduce) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	idx, err := in.ensureKernelData(cfg)
	if err != nil {
		return nil, err
	}
	src := in.src()
	n := src.TrialCount()
	splitTrials := m.SplitTrials
	if splitTrials <= 0 {
		splitTrials = DefaultSplitTrials
	}
	maxAttempts := m.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 2
	}

	// Splits are the map inputs; contiguous runs of whole splits form
	// reducer groups (the per-range YLT segments of the companion
	// paper), keyed so shuffle hashing lands each group on one reducer.
	type mapSplit struct {
		id int
		r  stream.Range
	}
	ranges := stream.Chunks(n, splitTrials)
	splits := make([]mapSplit, len(ranges))
	for i, r := range ranges {
		splits[i] = mapSplit{id: i, r: r}
	}
	nGroups := cfg.Workers
	if nGroups <= 0 {
		nGroups = runtime.GOMAXPROCS(0)
	}
	if nGroups > len(splits) {
		nGroups = len(splits)
	}
	groupOf := func(id int) int { return id * nGroups / len(splits) }

	rt := trackerFor(in)
	mapf := func(ctx context.Context, sp mapSplit, emit func(int, *segment)) error {
		seg := newSegment(in, cfg, sp.r)
		scratch := newTrialScratch(in.Portfolio, cfg.Kernel)
		err := streamRange(ctx, src, sp.r, cfg.batchTrials(), rt, sp.id, &yelt.Table{},
			func(b *yelt.Table, base int) error {
				runBatch(idx, in, cfg, b, base, seg.res, scratch, sp.r.Lo)
				return nil
			})
		if err != nil {
			return err
		}
		emit(groupOf(sp.id), seg)
		return nil
	}
	// Reduce stitches a group's segments into one segment spanning the
	// group's range. Segments arrive in unspecified order but cover
	// disjoint slots, so the stitch is order-insensitive — the
	// commutativity mapreduce.Run requires for determinism.
	reduce := func(_ int, segs []*segment) (*segment, error) {
		if len(segs) == 1 {
			return segs[0], nil
		}
		span := segs[0].r
		for _, s := range segs[1:] {
			if s.r.Lo < span.Lo {
				span.Lo = s.r.Lo
			}
			if s.r.Hi > span.Hi {
				span.Hi = s.r.Hi
			}
		}
		out := newSegment(in, cfg, span)
		for _, s := range segs {
			s.copyInto(out.res, span.Lo)
		}
		return out, nil
	}

	stitched, err := mapreduce.Run(ctx, splits, mapf, nil, reduce, mapreduce.Config{
		Mappers:     cfg.Workers,
		Reducers:    nGroups,
		MaxAttempts: maxAttempts,
	})
	if err != nil {
		return nil, err
	}

	res := newResult(in, cfg)
	for _, seg := range stitched {
		seg.copyInto(res, 0)
	}
	finishResident(in, res, rt)
	return res, nil
}
