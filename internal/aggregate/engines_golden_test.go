package aggregate

import (
	"context"
	"math"
	"testing"

	"repro/internal/layers"
	"repro/internal/lossindex"
	"repro/internal/synth"
)

func bitIdentical(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: trial %d: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// The indexed Sequential engine must reproduce the pre-refactor
// binary-search kernel bit-for-bit for the same (input, seed) — the
// draw-order guarantee the loss index was designed around — with
// sampling both on and off, including per-contract tables.
func TestGoldenIndexedMatchesLegacyLookup(t *testing.T) {
	s := buildScenario(t, synth.Small(21))
	for _, sampling := range []bool{false, true} {
		cfg := Config{Seed: 17, Sampling: sampling, PerContract: true}
		legacy, err := LegacyLookup{}.Run(context.Background(), input(s), cfg)
		if err != nil {
			t.Fatal(err)
		}
		indexed, err := Sequential{}.Run(context.Background(), input(s), cfg)
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, "agg", legacy.Portfolio.Agg, indexed.Portfolio.Agg)
		bitIdentical(t, "occmax", legacy.Portfolio.OccMax, indexed.Portfolio.OccMax)
		for ci := range legacy.PerContract {
			bitIdentical(t, "per-contract agg", legacy.PerContract[ci].Agg, indexed.PerContract[ci].Agg)
			bitIdentical(t, "per-contract occmax", legacy.PerContract[ci].OccMax, indexed.PerContract[ci].OccMax)
		}
	}
}

// Cross-engine golden test through the shared index path: Sequential
// and Parallel must be bit-identical (sampling on and off); the device
// engines must be bit-identical to the host on a single-contract
// occurrence-only book (where host and device fold losses in the same
// order) and agree to float tolerance on the general occurrence-only
// book (the device folds shares per event before the trial sweep, the
// host after — re-association only).
func TestGoldenCrossEngineSharedIndex(t *testing.T) {
	s := buildScenario(t, synth.Small(22))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	for _, sampling := range []bool{false, true} {
		cfg := Config{Seed: 23, Sampling: sampling}
		in := input(s)
		in.Index = ix // one index instance shared by every engine
		seq, err := Sequential{}.Run(context.Background(), in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Parallel{}.Run(context.Background(), in, Config{Seed: 23, Sampling: sampling, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		bitIdentical(t, "seq-vs-par agg", seq.Portfolio.Agg, par.Portfolio.Agg)
		bitIdentical(t, "seq-vs-par occmax", seq.Portfolio.OccMax, par.Portfolio.OccMax)
		if !sampling {
			bc, err := ByContract{}.Run(context.Background(), in, Config{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			tablesAlmostEqual(t, "by-contract agg", seq.Portfolio.Agg, bc.Portfolio.Agg, 1e-12)
			bitIdentical(t, "by-contract occmax", seq.Portfolio.OccMax, bc.Portfolio.OccMax)
		}
	}

	// Device engines: occurrence-only book, expected mode.
	p := synth.Small(22)
	p.OccurrenceOnly = true
	occ := buildScenario(t, p)
	occIx, err := lossindex.Build(occ.ELTs, occ.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	occIn := input(occ)
	occIn.Index = occIx
	seq, err := Sequential{}.Run(context.Background(), occIn, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, naive := range []bool{false, true} {
		ch := &Chunked{Naive: naive}
		dev, err := ch.Run(context.Background(), occIn, Config{})
		if err != nil {
			t.Fatal(err)
		}
		tablesAlmostEqual(t, ch.Name()+" agg", seq.Portfolio.Agg, dev.Portfolio.Agg, 1e-9)
		tablesAlmostEqual(t, ch.Name()+" occmax", seq.Portfolio.OccMax, dev.Portfolio.OccMax, 1e-9)
	}

	// Single-contract occurrence-only book: host and device sum in the
	// same order, so the agreement tightens to bit-identical.
	single := &Input{
		YELT:      occ.YELT,
		ELTs:      occ.ELTs[:1],
		Portfolio: singleContractPortfolio(occ, 0),
	}
	seq1, err := Sequential{}.Run(context.Background(), single, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ch := &Chunked{}
	dev1, err := ch.Run(context.Background(), single, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "single-contract device agg", seq1.Portfolio.Agg, dev1.Portfolio.Agg)
	bitIdentical(t, "single-contract device occmax", seq1.Portfolio.OccMax, dev1.Portfolio.OccMax)
}

// Reinstatements with never-binding terms must still agree with the
// stateless indexed engines after the index refactor.
func TestGoldenReinstatementsConsistency(t *testing.T) {
	s := buildScenario(t, synth.Small(24))
	cfg := Config{Seed: 31, Sampling: true}
	seq, err := Sequential{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rin := &ReinstatementInput{Input: input(s), Terms: UnlimitedReinstatements(s.Portfolio)}
	rres, err := RunReinstatements(context.Background(), rin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Portfolio.Agg {
		if math.Abs(seq.Portfolio.Agg[i]-rres.Portfolio.Agg[i]) > 1e-9*(1+seq.Portfolio.Agg[i]) {
			t.Fatalf("trial %d: stateless %v vs unlimited reinstatements %v",
				i, seq.Portfolio.Agg[i], rres.Portfolio.Agg[i])
		}
	}
}

func singleContractPortfolio(s *synth.Scenario, i int) *layers.Portfolio {
	c := s.Portfolio.Contracts[i]
	c.ELTIndex = 0
	return &layers.Portfolio{Contracts: []layers.Contract{c}}
}
