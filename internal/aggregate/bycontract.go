package aggregate

import (
	"context"

	"repro/internal/stream"
	"repro/internal/yelt"
)

// ByContract is the alternative parallel decomposition: work is
// partitioned by contract instead of by trial range. The paper's
// companion engine chose trial-parallelism; this engine exists to
// justify that choice empirically — with tens of thousands of
// contracts it load-balances well, but per-contract memory traffic
// repeats the whole YELT scan per contract, so on books with few
// contracts it underutilizes cores and trashes cache. See
// BenchmarkByContractVsByTrial.
//
// Materialized inputs use the contract-major form: one worker per
// contract, each scanning every trial through zero-copy views.
// Streaming inputs use the batch-major form: the outer loop streams
// each trial batch exactly once and the contract workers share that
// one resident batch — the per-batch cache that trades the
// decomposition's repeated regeneration (once per contract, plus the
// final occurrence pass) back down to a single generation pass. Both
// forms hold every contract's dense mean-loss vector resident
// (projected from the flat layout in one entry sweep — see
// contractMeansAll). TestByContractStreamingSingleGeneration pins the
// single-pass claim via Generator.Streamed.
//
// Results are identical to the other engines in expected mode; in
// sampling mode they are *internally* consistent but differ from the
// trial-ordered engines, because draws interleave by contract rather
// than by occurrence. ByContract therefore refuses sampling mode
// rather than silently produce a differently-ordered stochastic
// result.
type ByContract struct{}

// Name implements Engine.
func (ByContract) Name() string { return "by-contract" }

// contractMeansAll builds every contract's dense row → mean-loss
// vector, so the per-occurrence probe is two array indexings — no
// binary search. With the flat kernel layout resident (the default)
// all vectors are projected from the packed lossindex.Flat mean
// column in one linear sweep of the entries; the per-record ELT scan
// with its Row probe per record is kept — parallel across contracts —
// only for indexed-kernel runs that never built the flat layout. Both
// produce identical vectors (TestByContractMeansFromFlatMatchELTScan
// pins it). All vectors are resident for the run either way
// (contracts × rows floats — small next to the contracts × trials
// partial tables the decomposition already holds).
func contractMeansAll(ctx context.Context, in *Input, cfg Config) ([][]float64, error) {
	if in.Flat != nil {
		return in.Flat.DenseMeansAll(), nil
	}
	idx := in.Index
	out := make([][]float64, len(in.Portfolio.Contracts))
	err := stream.ForEach(ctx, len(in.Portfolio.Contracts), cfg.Workers, func(_ context.Context, ci int) error {
		c := &in.Portfolio.Contracts[ci]
		means := make([]float64, idx.NumRows())
		for _, r := range in.ELTs[c.ELTIndex].Records {
			if r.MeanLoss <= 0 {
				continue
			}
			if row := idx.Row(r.EventID); row >= 0 {
				means[row] = r.MeanLoss
			}
		}
		out[ci] = means
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runContractBatch walks one trial batch for one contract, writing
// annual recoveries into agg[base+i] and — when occ is non-nil, i.e.
// per-contract output was requested — per-occurrence maxima into
// occ[base+i]. It is the per-contract trial kernel shared by the
// contract-major and batch-major forms, so their arithmetic (and
// therefore their results) cannot diverge.
func runContractBatch(in *Input, ci int, means []float64, layerSums []float64, b *yelt.Table, base int, agg, occ []float64) {
	idx := in.Index
	c := &in.Portfolio.Contracts[ci]
	for i := 0; i < b.NumTrials; i++ {
		trial := base + i
		for li := range layerSums {
			layerSums[li] = 0
		}
		var occMax float64
		for _, o := range b.OccurrencesOf(i) {
			row := idx.Row(o.EventID)
			if row < 0 || means[row] <= 0 {
				continue
			}
			var occTotal float64
			for li := range c.Layers {
				r := c.Layers[li].ApplyOccurrence(means[row])
				layerSums[li] += r
				occTotal += r
			}
			if occTotal > occMax {
				occMax = occTotal
			}
		}
		var annual float64
		for li := range c.Layers {
			annual += c.Layers[li].ApplyAggregate(layerSums[li])
		}
		agg[trial] = annual
		if occ != nil {
			occ[trial] = occMax
		}
	}
}

// finishByContract merges the per-contract partials into the result:
// portfolio agg is the contract-order sum; per-contract tables copy
// straight over. Portfolio OccMax is NOT derivable from per-contract
// maxima (they only bound it from below) — callers fill it with a
// trial-ordered runTrial pass.
func finishByContract(in *Input, res *Result, partialAgg, partialOcc [][]float64) {
	for _, pa := range partialAgg {
		for t, v := range pa {
			res.Portfolio.Agg[t] += v
		}
	}
	if res.PerContract != nil {
		for ci := range partialAgg {
			copy(res.PerContract[ci].Agg, partialAgg[ci])
			copy(res.PerContract[ci].OccMax, partialOcc[ci])
		}
	}
}

// Run implements Engine.
func (e ByContract) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sampling {
		return nil, ErrUnsupportedOnDevice // reuse the sentinel: unsupported configuration
	}
	if _, err := in.ensureKernelData(cfg); err != nil {
		return nil, err
	}
	if in.streaming() {
		return e.runBatchMajor(ctx, in, cfg)
	}
	return e.runContractMajor(ctx, in, cfg)
}

// runContractMajor is the materialized form: one worker per contract,
// each scanning the whole trial range through zero-copy view batches.
func (ByContract) runContractMajor(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	src := in.src()
	n := src.TrialCount()
	contracts := in.Portfolio.Contracts
	res := newResult(in, cfg)
	rt := trackerFor(in)

	partialAgg := make([][]float64, len(contracts))
	partialOcc := make([][]float64, len(contracts))
	means, err := contractMeansAll(ctx, in, cfg)
	if err != nil {
		return nil, err
	}

	err = stream.ForEach(ctx, len(contracts), cfg.Workers, func(ctx context.Context, ci int) error {
		agg := make([]float64, n)
		// Per-contract occurrence maxima are only an output when
		// per-contract tables were requested; skip the n-length arrays
		// otherwise (the portfolio OccMax comes from its own pass).
		var occ []float64
		if cfg.PerContract {
			occ = make([]float64, n)
		}
		layerSums := make([]float64, len(contracts[ci].Layers))
		err := streamRange(ctx, src, stream.Range{Lo: 0, Hi: n}, cfg.batchTrials(), rt, ci, &yelt.Table{},
			func(b *yelt.Table, base int) error {
				runContractBatch(in, ci, means[ci], layerSums, b, base, agg, occ)
				return nil
			})
		if err != nil {
			return err
		}
		partialAgg[ci] = agg
		partialOcc[ci] = occ
		return nil
	})
	if err != nil {
		return nil, err
	}
	finishByContract(in, res, partialAgg, partialOcc)

	// Exact portfolio OccMax needs the max over *events*: recompute with
	// one trial-ordered pass — cheap relative to the per-contract scans.
	scratch := newTrialScratch(in.Portfolio, cfg.Kernel)
	kcfg := Config{Kernel: cfg.Kernel}
	err = streamRange(ctx, src, stream.Range{Lo: 0, Hi: n}, cfg.batchTrials(), rt, -1, &yelt.Table{},
		func(b *yelt.Table, base int) error {
			for i := 0; i < b.NumTrials; i++ {
				_, occMax := trialOnce(b.OccurrencesOf(i), in.Index, in, kcfg, nil, scratch, nil, nil)
				res.Portfolio.OccMax[base+i] = occMax
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	finishResident(in, res, rt)
	return res, nil
}

// runBatchMajor is the streaming form: stream each trial batch exactly
// once and fan the contract workers out over the shared resident batch,
// so a Generator source derives every trial once instead of once per
// contract (and the exact portfolio-OccMax pass reuses the same batch
// rather than a second scan). Per-trial arithmetic and merge order are
// identical to the contract-major form, so results are bit-identical.
func (ByContract) runBatchMajor(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	src := in.src()
	n := src.TrialCount()
	contracts := in.Portfolio.Contracts
	res := newResult(in, cfg)
	rt := trackerFor(in)

	means, err := contractMeansAll(ctx, in, cfg)
	if err != nil {
		return nil, err
	}

	partialAgg := make([][]float64, len(contracts))
	partialOcc := make([][]float64, len(contracts))
	layerSums := make([][]float64, len(contracts))
	for ci := range contracts {
		partialAgg[ci] = make([]float64, n)
		if cfg.PerContract {
			partialOcc[ci] = make([]float64, n)
		}
		layerSums[ci] = make([]float64, len(contracts[ci].Layers))
	}
	scratch := newTrialScratch(in.Portfolio, cfg.Kernel)
	kcfg := Config{Kernel: cfg.Kernel}

	err = streamRange(ctx, src, stream.Range{Lo: 0, Hi: n}, cfg.batchTrials(), rt, 0, &yelt.Table{},
		func(b *yelt.Table, base int) error {
			// One generated batch, shared read-only by every contract
			// worker; each worker writes its own contract's slots.
			err := stream.ForEach(ctx, len(contracts), cfg.Workers, func(_ context.Context, ci int) error {
				runContractBatch(in, ci, means[ci], layerSums[ci], b, base, partialAgg[ci], partialOcc[ci])
				return nil
			})
			if err != nil {
				return err
			}
			// Exact portfolio OccMax over the same resident batch — no
			// second generation pass.
			for i := 0; i < b.NumTrials; i++ {
				_, occMax := trialOnce(b.OccurrencesOf(i), in.Index, in, kcfg, nil, scratch, nil, nil)
				res.Portfolio.OccMax[base+i] = occMax
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	finishByContract(in, res, partialAgg, partialOcc)
	finishResident(in, res, rt)
	return res, nil
}
