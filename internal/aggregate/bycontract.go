package aggregate

import (
	"context"

	"repro/internal/stream"
	"repro/internal/yelt"
)

// ByContract is the alternative parallel decomposition: one worker per
// contract (each scanning every trial) instead of one worker per trial
// range. The paper's companion engine chose trial-parallelism; this
// engine exists to justify that choice empirically — with tens of
// thousands of contracts it load-balances well, but per-worker memory
// traffic repeats the whole YELT scan per contract, so on books with
// few contracts it underutilizes cores and trashes cache. See
// BenchmarkByContractVsByTrial.
//
// Results are identical to the other engines in expected mode; in
// sampling mode they are *internally* consistent but differ from the
// trial-ordered engines, because draws interleave by contract rather
// than by occurrence. ByContract therefore refuses sampling mode
// rather than silently produce a differently-ordered stochastic
// result.
type ByContract struct{}

// Name implements Engine.
func (ByContract) Name() string { return "by-contract" }

// Run implements Engine.
func (ByContract) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sampling {
		return nil, ErrUnsupportedOnDevice // reuse the sentinel: unsupported configuration
	}
	idx, err := in.EnsureIndex()
	if err != nil {
		return nil, err
	}
	src := in.src()
	n := src.TrialCount()
	contracts := in.Portfolio.Contracts
	res := newResult(in, cfg)
	rt := trackerFor(in)

	// Per-contract partial tables, merged after the parallel phase.
	partialAgg := make([][]float64, len(contracts))

	err = stream.ForEach(ctx, len(contracts), cfg.Workers, func(ctx context.Context, ci int) error {
		c := &contracts[ci]
		// Flatten the contract's ELT into a dense row → mean-loss
		// vector once (O(contract records)), so the per-occurrence
		// probe below is two array indexings — no binary search.
		means := make([]float64, idx.NumRows())
		for _, r := range in.ELTs[c.ELTIndex].Records {
			if r.MeanLoss <= 0 {
				continue
			}
			if row := idx.Row(r.EventID); row >= 0 {
				means[row] = r.MeanLoss
			}
		}
		agg := make([]float64, n)
		occ := make([]float64, n)
		layerSums := make([]float64, len(c.Layers))
		// Each contract worker streams the whole trial range itself —
		// with a Generator source that means regenerating the YELT per
		// contract, the decomposition's repeated-scan cost made
		// explicit (see the engine comment above).
		err := streamRange(ctx, src, stream.Range{Lo: 0, Hi: n}, cfg.batchTrials(), rt, ci, &yelt.Table{},
			func(b *yelt.Table, base int) error {
				for i := 0; i < b.NumTrials; i++ {
					trial := base + i
					for li := range layerSums {
						layerSums[li] = 0
					}
					var occMax float64
					for _, o := range b.OccurrencesOf(i) {
						row := idx.Row(o.EventID)
						if row < 0 || means[row] <= 0 {
							continue
						}
						var occTotal float64
						for li := range c.Layers {
							r := c.Layers[li].ApplyOccurrence(means[row])
							layerSums[li] += r
							occTotal += r
						}
						if occTotal > occMax {
							occMax = occTotal
						}
					}
					var annual float64
					for li := range c.Layers {
						annual += c.Layers[li].ApplyAggregate(layerSums[li])
					}
					agg[trial] = annual
					occ[trial] = occMax
				}
				return nil
			})
		if err != nil {
			return err
		}
		partialAgg[ci] = agg
		if res.PerContract != nil {
			copy(res.PerContract[ci].Agg, agg)
			copy(res.PerContract[ci].OccMax, occ)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Merge: portfolio agg is the sum; portfolio OccMax needs the max
	// over *events*, which per-contract maxima only bound from below.
	// To stay exact we recompute OccMax with one trial-ordered pass —
	// cheap relative to the per-contract scans, and a concrete cost of
	// this decomposition worth keeping visible.
	for _, pa := range partialAgg {
		for t, v := range pa {
			res.Portfolio.Agg[t] += v
		}
	}
	scratch := newTrialScratch(in.Portfolio)
	err = streamRange(ctx, src, stream.Range{Lo: 0, Hi: n}, cfg.batchTrials(), rt, -1, &yelt.Table{},
		func(b *yelt.Table, base int) error {
			for i := 0; i < b.NumTrials; i++ {
				_, occMax := runTrial(b.OccurrencesOf(i), idx, in, Config{}, nil, scratch, nil, nil)
				res.Portfolio.OccMax[base+i] = occMax
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	finishResident(in, res, rt)
	return res, nil
}
