package aggregate

import (
	"repro/internal/lossindex"
	"repro/internal/rng"
	"repro/internal/yelt"
)

// Kernel selects the trial-kernel data layout the shared runBatch
// drives. Every engine that funnels through runBatch (Sequential,
// Parallel, MapReduce, and ByContract's occurrence-max pass) honors
// it, as does the stateful RunReinstatements path (runTrialReinstFlat
// over layers.FlatYearStates); results are bit-identical across
// kernels — the choice is purely a performance lever, pinned by the
// kernel-equivalence suites.
type Kernel int

const (
	// KernelBlocked (the default) is the trial-blocked flat SoA kernel
	// (blocked.go): Config.TrialBlock trial years processed per pass
	// over the lossindex.Flat columns, with per-occurrence span
	// resolution hoisted out of the trial loop and the per-trial
	// accumulators packed into one contiguous block matrix. Results are
	// bit-identical to KernelFlat — blocking never reorders an addition
	// within a trial.
	KernelBlocked Kernel = iota
	// KernelFlat is the single-trial flat SoA kernel over
	// lossindex.Flat: pre-applied occurrence recoveries in expected
	// mode, flattened layer-term columns, one contiguous per-trial
	// scratch vector. Retained as the pinned single-trial reference the
	// blocked kernel is measured against.
	KernelFlat
	// KernelIndexed is the pre-flat indexed kernel: the pre-joined
	// entry scan with per-entry Contract struct and nested []Layer
	// walks. Retained for benchmarking the flat layouts against
	// (LegacyLookup remains the pre-index reference below all three).
	KernelIndexed
)

// runTrialFlat is the flat-SoA trial kernel: one trial year over the
// Flat layout. The occurrence walk touches only contiguous arrays —
// no Contract structs, no nested layer slices — and accumulates into
// the caller's flat layerAgg scratch (length Flat.NumLayers, one slot
// per flattened layer). In expected mode the inner loop is pure
// gather-adds from the pre-applied recoveries; in sampling mode the
// per-entry beta plan is precomputed so only the draw itself remains
// per trial.
//
// Ordering contract: identical to runTrial — occurrences in YELT
// order, entries in portfolio contract order within each event, layer
// frames in declaration order, draws (sampling mode) in that exact
// sequence — so results are bit-identical to the indexed and legacy
// kernels.
func runTrialFlat(
	occs []yelt.Occurrence,
	fx *lossindex.Flat,
	sampling bool,
	st *rng.Stream,
	layerAgg []float64,
	perContract []float64,
	perContractOcc []float64,
) (agg, occMax float64) {
	for i := range layerAgg {
		layerAgg[i] = 0
	}
	if sampling {
		occMax = flatSampledOccurrences(occs, fx, st, layerAgg, perContractOcc)
	} else {
		occMax = flatExpectedOccurrences(occs, fx, layerAgg, perContractOcc)
	}

	// Annual stage: one linear sweep of the flat term columns, contract
	// frames in portfolio order.
	ft := fx.Terms
	first := ft.First
	for ci := 0; ci+1 < len(first); ci++ {
		var contractAnnual float64
		for fl := first[ci]; fl < first[ci+1]; fl++ {
			contractAnnual += ft.ApplyAggregate(fl, layerAgg[fl])
		}
		agg += contractAnnual
		if perContract != nil {
			perContract[ci] += contractAnnual
		}
	}
	return agg, occMax
}

// flatExpectedOccurrences is the expected-mode occurrence walk: the
// per-(entry, layer) recovery is a build-time constant, so the inner
// loop gathers pre-applied recoveries into the flat annual sums and
// reads the per-entry total straight from ExpSum (accumulated at
// build time in the same order, hence bit-identical).
func flatExpectedOccurrences(occs []yelt.Occurrence, fx *lossindex.Flat, layerAgg []float64, perContractOcc []float64) (occMax float64) {
	expOff, expRec, expSum := fx.ExpOff, fx.ExpRec, fx.ExpSum
	layerOff := fx.LayerOff
	for _, occ := range occs {
		lo, hi := fx.Span(occ.EventID)
		var portfolioOccLoss float64
		for k := lo; k < hi; k++ {
			base := int(layerOff[k])
			for j, r := range expRec[expOff[k]:expOff[k+1]] {
				layerAgg[base+j] += r
			}
			s := expSum[k]
			portfolioOccLoss += s
			if perContractOcc != nil {
				if ci := fx.Contract[k]; s > perContractOcc[ci] {
					perContractOcc[ci] = s
				}
			}
		}
		if portfolioOccLoss > occMax {
			occMax = portfolioOccLoss
		}
	}
	return occMax
}

// flatSampledOccurrences is the sampling-mode occurrence walk: the
// loss draw uses the entry's precomputed beta plan (constant when
// SampleA is 0, mirroring elt.SampleLoss's degenerate branches, which
// consume no draws), then applies the flattened occurrence terms.
func flatSampledOccurrences(occs []yelt.Occurrence, fx *lossindex.Flat, st *rng.Stream, layerAgg []float64, perContractOcc []float64) (occMax float64) {
	ft := fx.Terms
	expOff, layerOff := fx.ExpOff, fx.LayerOff
	for _, occ := range occs {
		lo, hi := fx.Span(occ.EventID)
		var portfolioOccLoss float64
		for k := lo; k < hi; k++ {
			loss := fx.SampleConst[k]
			if a := fx.SampleA[k]; a > 0 {
				loss = fx.SampleScale[k] * st.Beta(a, fx.SampleB[k])
			}
			base := layerOff[k]
			end := base + (expOff[k+1] - expOff[k])
			var contractOcc float64
			for fl := base; fl < end; fl++ {
				r := ft.ApplyOccurrence(fl, loss)
				layerAgg[fl] += r
				contractOcc += r
			}
			portfolioOccLoss += contractOcc
			if perContractOcc != nil {
				if ci := fx.Contract[k]; contractOcc > perContractOcc[ci] {
					perContractOcc[ci] = contractOcc
				}
			}
		}
		if portfolioOccLoss > occMax {
			occMax = portfolioOccLoss
		}
	}
	return occMax
}

// trialOnce dispatches one trial year through the configured kernel —
// the single seam every runBatch caller (and ByContract's exact
// occurrence-max pass) goes through, so kernel choice can never
// diverge between engines. Single-trial callers under KernelBlocked
// run the flat single-trial kernel (a block of one), which is
// bit-identical to the blocked pass; batch callers reach the blocked
// pass through runBatch's dispatch instead.
func trialOnce(occs []yelt.Occurrence, idx *lossindex.Index, in *Input, cfg Config, st *rng.Stream, scratch *trialScratch, perContract, perContractOcc []float64) (agg, occMax float64) {
	if cfg.Kernel == KernelIndexed {
		return runTrial(occs, idx, in, cfg, st, scratch, perContract, perContractOcc)
	}
	return runTrialFlat(occs, in.Flat, cfg.Sampling, st, scratch.flatAgg, perContract, perContractOcc)
}
