package aggregate

import (
	"context"
	"math"
	"testing"

	"repro/internal/elt"
	"repro/internal/layers"
	"repro/internal/synth"
	"repro/internal/yelt"
)

func buildScenario(t testing.TB, p synth.Params) *synth.Scenario {
	t.Helper()
	s, err := synth.Build(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func input(s *synth.Scenario) *Input {
	return &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
}

func tablesAlmostEqual(t *testing.T, name string, a, b []float64, tol float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			t.Fatalf("%s: trial %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

func TestSequentialBasicShape(t *testing.T) {
	s := buildScenario(t, synth.Small(1))
	res, err := Sequential{}.Run(context.Background(), input(s), Config{Seed: 9, Sampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Portfolio.NumTrials() != s.YELT.NumTrials {
		t.Fatalf("trials = %d", res.Portfolio.NumTrials())
	}
	var nonZero int
	for i, agg := range res.Portfolio.Agg {
		if agg < 0 {
			t.Fatalf("negative aggregate loss at trial %d", i)
		}
		if res.Portfolio.OccMax[i] > agg+1e-9 && res.Portfolio.OccMax[i] > 0 {
			// OccMax is share-free, agg is post-share/post-agg-terms, so
			// OccMax can exceed agg when shares < 1 or agg terms bind;
			// with the synth CatXL (share 1, agg limit) only the limit
			// binds, which keeps agg <= occ sums — don't assert order,
			// just sanity of signs.
			_ = i
		}
		if agg > 0 {
			nonZero++
		}
	}
	if nonZero == 0 {
		t.Fatal("no trial produced losses; scenario too sparse for a meaningful test")
	}
}

func TestSequentialDeterministic(t *testing.T) {
	s := buildScenario(t, synth.Small(2))
	cfg := Config{Seed: 4, Sampling: true}
	a, err := Sequential{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Portfolio.Agg {
		if a.Portfolio.Agg[i] != b.Portfolio.Agg[i] {
			t.Fatalf("non-deterministic at trial %d", i)
		}
	}
}

func TestParallelMatchesSequentialSampling(t *testing.T) {
	s := buildScenario(t, synth.Small(3))
	cfg := Config{Seed: 11, Sampling: true}
	seq, err := Sequential{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		cfg.Workers = workers
		par, err := Parallel{}.Run(context.Background(), input(s), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq.Portfolio.Agg {
			if seq.Portfolio.Agg[i] != par.Portfolio.Agg[i] {
				t.Fatalf("workers=%d trial %d: %v vs %v", workers, i,
					seq.Portfolio.Agg[i], par.Portfolio.Agg[i])
			}
			if seq.Portfolio.OccMax[i] != par.Portfolio.OccMax[i] {
				t.Fatalf("workers=%d occmax trial %d differs", workers, i)
			}
		}
	}
}

func TestSeedChangesSampledResults(t *testing.T) {
	s := buildScenario(t, synth.Small(4))
	a, err := Sequential{}.Run(context.Background(), input(s), Config{Seed: 1, Sampling: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential{}.Run(context.Background(), input(s), Config{Seed: 2, Sampling: true})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	diff := 0
	for i := range a.Portfolio.Agg {
		if a.Portfolio.Agg[i] == b.Portfolio.Agg[i] {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds gave identical sampled results")
	}
}

func TestExpectedModeIgnoresSeed(t *testing.T) {
	s := buildScenario(t, synth.Small(5))
	a, err := Sequential{}.Run(context.Background(), input(s), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sequential{}.Run(context.Background(), input(s), Config{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Portfolio.Agg {
		if a.Portfolio.Agg[i] != b.Portfolio.Agg[i] {
			t.Fatal("expected mode should not depend on seed")
		}
	}
}

func TestPerContractSumsToPortfolio(t *testing.T) {
	s := buildScenario(t, synth.Small(6))
	cfg := Config{Seed: 3, Sampling: true, PerContract: true}
	res, err := Parallel{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerContract) != len(s.Portfolio.Contracts) {
		t.Fatalf("per-contract tables = %d", len(res.PerContract))
	}
	for trial := 0; trial < res.Portfolio.NumTrials(); trial++ {
		var sum float64
		for _, pc := range res.PerContract {
			sum += pc.Agg[trial]
		}
		if math.Abs(sum-res.Portfolio.Agg[trial]) > 1e-9*(1+sum) {
			t.Fatalf("trial %d: contracts sum %v != portfolio %v", trial, sum, res.Portfolio.Agg[trial])
		}
	}
}

func TestChunkedMatchesSequentialExpectedMode(t *testing.T) {
	p := synth.Small(7)
	p.OccurrenceOnly = true
	p.TwoLayers = true
	s := buildScenario(t, p)
	cfg := Config{}
	seq, err := Sequential{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, naive := range []bool{false, true} {
		ch := &Chunked{Naive: naive}
		dev, err := ch.Run(context.Background(), input(s), cfg)
		if err != nil {
			t.Fatal(err)
		}
		tablesAlmostEqual(t, ch.Name()+" agg", seq.Portfolio.Agg, dev.Portfolio.Agg, 1e-9)
		tablesAlmostEqual(t, ch.Name()+" occmax", seq.Portfolio.OccMax, dev.Portfolio.OccMax, 1e-9)
		if ch.LastStats.Blocks == 0 {
			t.Fatal("device stats not captured")
		}
	}
}

func TestChunkedOversizedBlockFallback(t *testing.T) {
	// Blocks so large their occurrences cannot fit in shared memory
	// must degrade to global probes, not fault — and still agree with
	// the host engine.
	p := synth.Small(27)
	p.OccurrenceOnly = true
	s := buildScenario(t, p)
	cfg := Config{}
	seq, err := Sequential{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	huge := &Chunked{TrialsPerBlock: s.YELT.NumTrials} // one giant block
	dev, err := huge.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	tablesAlmostEqual(t, "oversized-block agg", seq.Portfolio.Agg, dev.Portfolio.Agg, 1e-9)
	tablesAlmostEqual(t, "oversized-block occmax", seq.Portfolio.OccMax, dev.Portfolio.OccMax, 1e-9)
}

func TestChunkedCheaperThanNaive(t *testing.T) {
	p := synth.Small(8)
	p.OccurrenceOnly = true
	s := buildScenario(t, p)
	cfg := Config{}
	chunked := &Chunked{}
	if _, err := chunked.Run(context.Background(), input(s), cfg); err != nil {
		t.Fatal(err)
	}
	naive := &Chunked{Naive: true}
	if _, err := naive.Run(context.Background(), input(s), cfg); err != nil {
		t.Fatal(err)
	}
	if chunked.LastStats.BlockCycles >= naive.LastStats.BlockCycles {
		t.Fatalf("chunked cycles %d should be below naive %d",
			chunked.LastStats.BlockCycles, naive.LastStats.BlockCycles)
	}
}

func TestChunkedRejectsUnsupported(t *testing.T) {
	p := synth.Small(9)
	p.OccurrenceOnly = true
	s := buildScenario(t, p)
	ch := &Chunked{}
	if _, err := ch.Run(context.Background(), input(s), Config{Sampling: true}); err == nil {
		t.Fatal("sampling should be rejected on device")
	}
	if _, err := ch.Run(context.Background(), input(s), Config{PerContract: true}); err == nil {
		t.Fatal("per-contract should be rejected on device")
	}
	withAgg := buildScenario(t, synth.Small(10)) // has aggregate terms
	if _, err := ch.Run(context.Background(), input(withAgg), Config{}); err == nil {
		t.Fatal("aggregate terms should be rejected on device")
	}
}

func TestValidateInput(t *testing.T) {
	s := buildScenario(t, synth.Small(11))
	good := input(s)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.YELT = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil YELT should fail")
	}
	bad = *good
	bad.ELTs = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("no ELTs should fail")
	}
	bad = *good
	bad.Portfolio = &layers.Portfolio{Contracts: []layers.Contract{
		{ID: 1, ELTIndex: 99, Layers: []layers.Layer{{}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Fatal("dangling ELT index should fail")
	}
	bad = *good
	bad.Portfolio = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil portfolio should fail")
	}
}

func TestCancellation(t *testing.T) {
	s := buildScenario(t, synth.Small(12))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (Sequential{}).Run(ctx, input(s), Config{}); err == nil {
		t.Fatal("sequential should honor cancellation")
	}
	if _, err := (Parallel{}).Run(ctx, input(s), Config{}); err == nil {
		t.Fatal("parallel should honor cancellation")
	}
	ch := &Chunked{}
	p := synth.Small(13)
	p.OccurrenceOnly = true
	s2 := buildScenario(t, p)
	if _, err := ch.Run(ctx, input(s2), Config{}); err == nil {
		t.Fatal("chunked should honor cancellation")
	}
}

func TestLayerTermsBindInAggregate(t *testing.T) {
	// A portfolio whose single layer has a tiny aggregate limit: annual
	// recoveries must cap at it.
	s := buildScenario(t, synth.Small(14))
	limited := &layers.Portfolio{}
	const aggLimit = 1000.0
	for i := range s.Portfolio.Contracts {
		limited.Contracts = append(limited.Contracts, layers.Contract{
			ID: uint32(i + 1), ELTIndex: i,
			Layers: []layers.Layer{{OccRetention: 0, AggLimit: aggLimit, Share: 1}},
		})
	}
	in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: limited}
	res, err := Sequential{}.Run(context.Background(), in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	maxAllowed := aggLimit * float64(len(limited.Contracts))
	for trial, agg := range res.Portfolio.Agg {
		if agg > maxAllowed+1e-9 {
			t.Fatalf("trial %d: %v exceeds portfolio aggregate cap %v", trial, agg, maxAllowed)
		}
	}
}

func TestEmptyTrialYearsProduceZero(t *testing.T) {
	// Hand-built YELT where trial 0 has no occurrences.
	s := buildScenario(t, synth.Small(15))
	y := &yelt.Table{
		NumTrials: 2,
		Offsets:   []int64{0, 0, int64(len(s.YELT.OccurrencesOf(0)))},
		Occs:      s.YELT.OccurrencesOf(0),
	}
	in := &Input{YELT: y, ELTs: s.ELTs, Portfolio: s.Portfolio}
	res, err := Sequential{}.Run(context.Background(), in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Portfolio.Agg[0] != 0 || res.Portfolio.OccMax[0] != 0 {
		t.Fatal("empty trial year must produce zero loss")
	}
}

func TestEventsMissingFromELTAreSkipped(t *testing.T) {
	// An ELT covering none of the YELT's events: all trials zero.
	s := buildScenario(t, synth.Small(16))
	empty := elt.New(1, []elt.Record{{EventID: 4_000_000, MeanLoss: 5, ExposedValue: 10}})
	in := &Input{
		YELT:      s.YELT,
		ELTs:      []*elt.Table{empty},
		Portfolio: &layers.Portfolio{Contracts: []layers.Contract{{ID: 1, ELTIndex: 0, Layers: []layers.Layer{{}}}}},
	}
	res, err := Parallel{}.Run(context.Background(), in, Config{Sampling: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for trial, agg := range res.Portfolio.Agg {
		if agg != 0 {
			t.Fatalf("trial %d nonzero for disjoint ELT", trial)
		}
	}
}
