package aggregate

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/synth"
)

var (
	benchMu   sync.Mutex
	benchScen map[bool]*synth.Scenario
)

func benchScenario(b *testing.B, occOnly bool) *synth.Scenario {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchScen == nil {
		benchScen = map[bool]*synth.Scenario{}
	}
	if s, ok := benchScen[occOnly]; ok {
		return s
	}
	p := synth.Params{
		Seed: 101, NumEvents: 4_000, NumContracts: 8,
		LocationsPerContract: 120, NumTrials: 20_000,
		MeanEventsPerYear: 10, TwoLayers: true, OccurrenceOnly: occOnly,
	}
	s, err := synth.Build(context.Background(), p)
	if err != nil {
		b.Fatal(err)
	}
	benchScen[occOnly] = s
	return s
}

func BenchmarkSequentialExpected(b *testing.B) {
	s := benchScenario(b, false)
	in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Sequential{}).Run(context.Background(), in, Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.YELT.NumTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkSequentialSampling(b *testing.B) {
	s := benchScenario(b, false)
	in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Sequential{}).Run(context.Background(), in, Config{Sampling: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.YELT.NumTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
}

func BenchmarkParallelSampling(b *testing.B) {
	s := benchScenario(b, false)
	in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (Parallel{}).Run(context.Background(), in, Config{Sampling: true, Seed: 1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(s.YELT.NumTrials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

func BenchmarkDeviceChunked(b *testing.B) {
	s := benchScenario(b, true)
	in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	eng := &Chunked{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), in, Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.LastStats.BlockCycles), "devcycles")
}

func BenchmarkDeviceNaive(b *testing.B) {
	s := benchScenario(b, true)
	in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	eng := &Chunked{Naive: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), in, Config{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.LastStats.BlockCycles), "devcycles")
}

// Ablation: trials-per-block on the device engine. Small blocks leave
// SMs idle between launches of the staging loop; huge blocks crowd the
// occurrence stage out of shared memory and force the degenerate
// global-probe fallback. The default (ThreadsPerBlock) sits in the
// flat middle of this curve — the design choice DESIGN.md calls out.
func BenchmarkDeviceTrialsPerBlock(b *testing.B) {
	s := benchScenario(b, true)
	in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	for _, tpb := range []int{32, 128, 256, 1024} {
		eng := &Chunked{TrialsPerBlock: tpb}
		b.Run(fmt.Sprintf("tpb=%d", tpb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), in, Config{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(eng.LastStats.BlockCycles), "devcycles")
		})
	}
}

// Ablation: per-contract output costs an extra write per (trial,
// contract) — quantify it so the default stays justified.
func BenchmarkPerContractOverhead(b *testing.B) {
	s := benchScenario(b, false)
	in := &Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio}
	for _, pc := range []bool{false, true} {
		b.Run(fmt.Sprintf("perContract=%v", pc), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (Parallel{}).Run(context.Background(), in, Config{Sampling: true, Seed: 1, PerContract: pc}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
