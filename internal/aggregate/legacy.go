package aggregate

import (
	"context"
	"errors"

	"repro/internal/elt"
	"repro/internal/rng"
	"repro/internal/yelt"
)

// LegacyLookup is the pre-index reference kernel: single-threaded, one
// O(log n) binary search per (occurrence × contract) into the
// per-contract ELTs — the random-access pattern the paper argues
// against and the shape all engines had before the pre-joined loss
// index landed. It is retained for two reasons:
//
//   - Equivalence: the indexed engines must reproduce its output
//     bit-for-bit for the same (input, seed); the golden tests pin
//     this.
//   - Benchmarking: the root BenchmarkIndexedKernel /
//     BenchmarkLegacyLookupKernel pair quantifies what the pre-join
//     buys on a given book shape.
//
// Do not use it in production paths.
type LegacyLookup struct{}

// Name implements Engine.
func (LegacyLookup) Name() string { return "legacy-lookup" }

// legacyTrial is the original runTrial body: portfolio contract loop
// outside, binary-search Lookup per occurrence inside.
func legacyTrial(
	occs []yelt.Occurrence,
	in *Input,
	cfg Config,
	st *rng.Stream,
	scratch *trialScratch,
	perContract []float64,
	perContractOcc []float64,
) (agg, occMax float64) {
	contracts := in.Portfolio.Contracts
	for ci := range scratch.layerAgg {
		la := scratch.layerAgg[ci]
		for li := range la {
			la[li] = 0
		}
	}

	for _, occ := range occs {
		var portfolioOccLoss float64
		for ci := range contracts {
			c := &contracts[ci]
			rec, ok := in.ELTs[c.ELTIndex].Lookup(occ.EventID)
			if !ok || rec.MeanLoss <= 0 {
				continue
			}
			loss := rec.MeanLoss
			if cfg.Sampling {
				loss = elt.SampleLoss(st, rec)
			}
			var contractOcc float64
			for li := range c.Layers {
				r := c.Layers[li].ApplyOccurrence(loss)
				scratch.layerAgg[ci][li] += r
				contractOcc += r
			}
			portfolioOccLoss += contractOcc
			if perContractOcc != nil && contractOcc > perContractOcc[ci] {
				perContractOcc[ci] = contractOcc
			}
		}
		if portfolioOccLoss > occMax {
			occMax = portfolioOccLoss
		}
	}

	for ci := range contracts {
		c := &contracts[ci]
		var contractAnnual float64
		for li := range c.Layers {
			contractAnnual += c.Layers[li].ApplyAggregate(scratch.layerAgg[ci][li])
		}
		agg += contractAnnual
		if perContract != nil {
			perContract[ci] += contractAnnual
		}
	}
	return agg, occMax
}

// Run implements Engine. The legacy kernel predates the streaming
// Source abstraction and stays pinned to the materialized form: it is
// the reference the golden tests diff against, not a production path.
func (LegacyLookup) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if in.YELT == nil || in.Source != nil {
		return nil, errors.New("aggregate: legacy lookup requires a materialized YELT input")
	}
	res := newResult(in, cfg)
	scratch := newTrialScratch(in.Portfolio, KernelIndexed)
	nc := len(in.Portfolio.Contracts)
	perContract := make([]float64, nc)
	perContractOcc := make([]float64, nc)
	const checkEvery = 4096
	for trial := 0; trial < in.YELT.NumTrials; trial++ {
		if trial%checkEvery == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		st := rng.NewStream(cfg.Seed, uint64(trial))
		var pc, pco []float64
		if res.PerContract != nil {
			for i := range perContract {
				perContract[i] = 0
				perContractOcc[i] = 0
			}
			pc, pco = perContract, perContractOcc
		}
		agg, occMax := legacyTrial(in.YELT.OccurrencesOf(trial), in, cfg, st, scratch, pc, pco)
		res.Portfolio.Agg[trial] = agg
		res.Portfolio.OccMax[trial] = occMax
		if res.PerContract != nil {
			for ci := 0; ci < nc; ci++ {
				res.PerContract[ci].Agg[trial] = perContract[ci]
				res.PerContract[ci].OccMax[trial] = perContractOcc[ci]
			}
		}
	}
	return res, nil
}
