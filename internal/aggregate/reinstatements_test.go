package aggregate

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/layers"
	"repro/internal/synth"
	"repro/internal/yelt"
)

func reinstTerms(pf *layers.Portfolio, count int, rate float64) [][]layers.ReinstatementTerms {
	out := make([][]layers.ReinstatementTerms, len(pf.Contracts))
	for ci, c := range pf.Contracts {
		out[ci] = make([]layers.ReinstatementTerms, len(c.Layers))
		for li := range c.Layers {
			out[ci][li] = layers.ReinstatementTerms{
				Count: count, PremiumRate: rate, UpfrontPremium: 1000,
			}
		}
	}
	return out
}

func TestUnlimitedReinstatementsMatchStateless(t *testing.T) {
	s := buildScenario(t, synth.Small(21))
	base := input(s)
	cfg := Config{Seed: 5, Sampling: true}
	stateless, err := Sequential{}.Run(context.Background(), base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rin := &ReinstatementInput{Input: base, Terms: UnlimitedReinstatements(s.Portfolio)}
	stateful, err := RunReinstatements(context.Background(), rin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stateless.Portfolio.Agg {
		if math.Abs(stateless.Portfolio.Agg[i]-stateful.Portfolio.Agg[i]) > 1e-9*(1+stateless.Portfolio.Agg[i]) {
			t.Fatalf("trial %d: stateless %v vs unlimited-reinstatement %v",
				i, stateless.Portfolio.Agg[i], stateful.Portfolio.Agg[i])
		}
		if stateful.ReinstPremium[i] != 0 {
			t.Fatalf("trial %d: premium %v with zero rate", i, stateful.ReinstPremium[i])
		}
	}
}

func TestLimitedReinstatementsReduceRecovery(t *testing.T) {
	s := buildScenario(t, synth.Small(22))
	base := input(s)
	cfg := Config{Seed: 5, Sampling: true}
	unlimited, err := RunReinstatements(context.Background(),
		&ReinstatementInput{Input: base, Terms: UnlimitedReinstatements(s.Portfolio)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	limited, err := RunReinstatements(context.Background(),
		&ReinstatementInput{Input: base, Terms: reinstTerms(s.Portfolio, 0, 1)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sumU, sumL float64
	for i := range unlimited.Portfolio.Agg {
		if limited.Portfolio.Agg[i] > unlimited.Portfolio.Agg[i]+1e-9 {
			t.Fatalf("trial %d: limited recovery exceeds unlimited", i)
		}
		sumU += unlimited.Portfolio.Agg[i]
		sumL += limited.Portfolio.Agg[i]
	}
	if sumL >= sumU {
		t.Fatalf("zero reinstatements should cut total recoveries: %v vs %v", sumL, sumU)
	}
}

func TestReinstatementPremiumsAccrue(t *testing.T) {
	s := buildScenario(t, synth.Small(23))
	base := input(s)
	res, err := RunReinstatements(context.Background(),
		&ReinstatementInput{Input: base, Terms: reinstTerms(s.Portfolio, 2, 1.0)},
		Config{Seed: 5, Sampling: true})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range res.ReinstPremium {
		if p < 0 {
			t.Fatal("negative premium")
		}
		total += p
	}
	if total == 0 {
		t.Fatal("a loss-making book should charge some reinstatement premium")
	}
}

func TestReinstatementsDeterministicAcrossWorkers(t *testing.T) {
	s := buildScenario(t, synth.Small(24))
	base := input(s)
	terms := reinstTerms(s.Portfolio, 1, 1.0)
	a, err := RunReinstatements(context.Background(),
		&ReinstatementInput{Input: base, Terms: terms}, Config{Seed: 3, Sampling: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReinstatements(context.Background(),
		&ReinstatementInput{Input: base, Terms: terms}, Config{Seed: 3, Sampling: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Portfolio.Agg {
		if a.Portfolio.Agg[i] != b.Portfolio.Agg[i] || a.ReinstPremium[i] != b.ReinstPremium[i] {
			t.Fatalf("trial %d differs across worker counts", i)
		}
	}
}

func TestReinstatementValidation(t *testing.T) {
	s := buildScenario(t, synth.Small(25))
	base := input(s)
	if _, err := RunReinstatements(context.Background(),
		&ReinstatementInput{Input: base, Terms: nil}, Config{}); err == nil {
		t.Fatal("missing terms should error")
	}
	short := UnlimitedReinstatements(s.Portfolio)
	short[0] = short[0][:0]
	if _, err := RunReinstatements(context.Background(),
		&ReinstatementInput{Input: base, Terms: short}, Config{}); err == nil {
		t.Fatal("mis-shaped terms should error")
	}
	bad := UnlimitedReinstatements(s.Portfolio)
	bad[0][0].Count = -1
	if _, err := RunReinstatements(context.Background(),
		&ReinstatementInput{Input: base, Terms: bad}, Config{}); err == nil {
		t.Fatal("negative count should error")
	}
}

func TestReinstatementsCancellation(t *testing.T) {
	s := buildScenario(t, synth.Small(26))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunReinstatements(ctx,
		&ReinstatementInput{Input: input(s), Terms: UnlimitedReinstatements(s.Portfolio)},
		Config{}); err == nil {
		t.Fatal("cancelled run should error")
	}
}

// cancellingSource cancels its context after serving cancelAfter
// reads — the mid-run cancellation shape (a client disconnect, a
// deadline firing while trials stream).
type cancellingSource struct {
	inner       yelt.Source
	cancel      context.CancelFunc
	cancelAfter int
	reads       int
}

func (c *cancellingSource) TrialCount() int { return c.inner.TrialCount() }

func (c *cancellingSource) ReadTrials(ctx context.Context, lo, hi int, buf *yelt.Table) (*yelt.Table, error) {
	c.reads++
	if c.reads == c.cancelAfter {
		c.cancel()
	}
	return c.inner.ReadTrials(ctx, lo, hi, buf)
}

// A cancellation arriving mid-run — after trials have already been
// processed — must abort the stateful engine promptly with
// context.Canceled, for both kernels (every other engine has this
// test; the reinstatements path polls in the same streamRange loop).
func TestReinstatementsMidRunCancellation(t *testing.T) {
	s := buildScenario(t, synth.Small(27))
	for _, kernel := range []Kernel{KernelFlat, KernelIndexed} {
		ctx, cancel := context.WithCancel(context.Background())
		src := &cancellingSource{inner: s.YELT, cancel: cancel, cancelAfter: 2}
		in := &ReinstatementInput{
			Input: &Input{Source: src, ELTs: s.ELTs, Portfolio: s.Portfolio},
			Terms: UnlimitedReinstatements(s.Portfolio),
		}
		_, err := RunReinstatements(ctx, in, Config{Workers: 1, BatchTrials: 100, Kernel: kernel})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("kernel=%d: err = %v, want context.Canceled", kernel, err)
		}
		if src.reads < 2 {
			t.Fatalf("kernel=%d: cancelled before any trials streamed (%d reads)", kernel, src.reads)
		}
		cancel()
	}
}

// Expected mode never draws from the per-trial substream, so results
// must be independent of the seed — the contract that lets the engine
// skip RNG stream setup entirely when sampling is off.
func TestReinstatementsExpectedModeSeedIndependent(t *testing.T) {
	s := buildScenario(t, synth.Small(28))
	terms := reinstTerms(s.Portfolio, 1, 0.5)
	for _, kernel := range []Kernel{KernelFlat, KernelIndexed} {
		a, err := RunReinstatements(context.Background(),
			&ReinstatementInput{Input: input(s), Terms: terms}, Config{Seed: 1, Kernel: kernel})
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunReinstatements(context.Background(),
			&ReinstatementInput{Input: input(s), Terms: terms}, Config{Seed: 999_999_937, Kernel: kernel})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Portfolio.Agg {
			if a.Portfolio.Agg[i] != b.Portfolio.Agg[i] ||
				a.Portfolio.OccMax[i] != b.Portfolio.OccMax[i] ||
				a.ReinstPremium[i] != b.ReinstPremium[i] {
				t.Fatalf("kernel=%d: expected-mode trial %d depends on the seed", kernel, i)
			}
		}
	}
}
