// Package aggregate implements stage 2's core computation — aggregate
// analysis: "An additional Monte Carlo simulation ... is necessary for
// generating an alternate view of which events occur and in which
// order they occur within a contractual year" (§II). For every
// pre-simulated trial year in the YELT, the engine walks the year's
// event occurrences in date order, looks up each contract's loss in
// its ELT, applies per-occurrence and annual-aggregate reinsurance
// terms, and emits the trial's loss into a Year-Loss Table.
//
// Three engines share one trial kernel:
//
//   - Sequential: single goroutine, the paper's CPU baseline.
//   - Parallel: trials partitioned across goroutines (the native
//     realization of the paper's data-parallel GPU engine; experiment
//     E1's measured speedup).
//   - Chunked: runs the ground-up portfolio aggregation on the
//     simulated many-core device (internal/gpusim), staging ELT chunks
//     through shared memory — the paper's "chunking" memory strategy
//     (experiment E4's modeled-cycle ablation).
//
// Every engine consumes the pre-joined event-major loss index
// (internal/lossindex) instead of binary-searching per-contract ELTs
// per occurrence — the paper's "scanned over rather than randomly
// accessed" layout. By default the trial loop runs the trial-blocked
// flat SoA kernel (blocked.go) over lossindex.Flat: Config.TrialBlock
// trial years per pass over flattened layer-term columns, with
// per-occurrence span resolution hoisted into an event-major pre-pass
// and — in expected mode — occurrence recoveries pre-applied at build
// time so the inner loop is pure gather-adds. Config.Kernel pins the
// single-trial flat kernel (KernelFlat, flat.go) and the pre-flat
// indexed scan (KernelIndexed) for comparison; the layouts are built
// once per input (or supplied by the orchestration layer, which
// builds them in stage 1) and shared read-only by all workers.
// LegacyLookup (legacy.go) preserves the pre-index kernel as the
// equivalence and benchmark baseline.
//
// All engines are bit-deterministic for a given (input, seed) and
// agree with each other; determinism comes from per-trial RNG streams,
// never from scheduling.
package aggregate

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/elt"
	"repro/internal/layers"
	"repro/internal/lossindex"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/yelt"
	"repro/internal/ylt"
)

// Config controls a run.
type Config struct {
	// Seed drives secondary-uncertainty sampling. Each trial uses the
	// substream rng.NewStream(Seed, trial), so results are independent
	// of engine choice and worker count.
	Seed uint64
	// Sampling enables beta-distributed secondary uncertainty around
	// each ELT record's mean loss. When false the mean loss is used —
	// the deterministic "expected mode" also used by the device
	// engine.
	Sampling bool
	// Workers bounds parallel engines; <= 0 means GOMAXPROCS.
	Workers int
	// PerContract requests per-contract YLTs in addition to the
	// portfolio table.
	PerContract bool
	// BatchTrials bounds how many trials a worker materializes at once
	// when the input is consumed through a streaming Source; <= 0 means
	// DefaultBatchTrials. Results are bit-independent of the batch size
	// (each trial draws from its own stream); only peak memory and the
	// cancellation-poll granularity change.
	BatchTrials int
	// Kernel selects the trial-kernel layout (trial-blocked flat SoA by
	// default; KernelFlat pins the single-trial flat kernel,
	// KernelIndexed the pre-flat entry scan). Results are bit-identical
	// across kernels; see the Kernel type.
	Kernel Kernel
	// TrialBlock bounds how many trial years the blocked kernel
	// (KernelBlocked) processes per pass; <= 0 means DefaultTrialBlock.
	// Results are bit-independent of the block size — blocking never
	// reorders an addition within a trial — so it is purely a
	// performance lever, like BatchTrials.
	TrialBlock int
	// BatchSink, when set, receives each trial batch's per-contract
	// results as the engine completes it: agg[ci][j] and occ[ci][j]
	// are contract ci's annual aggregate recovery and largest
	// single-occurrence recovery for global trial lo+j. The rows are
	// views into the run's result tables — read-only for the sink,
	// valid beyond the call. Calls may arrive from concurrent workers
	// but always cover disjoint trial ranges, each exactly once.
	//
	// Setting a sink implies per-contract result tables. Only the
	// engines whose batches complete exactly once honor it (Sequential
	// and Parallel); MapReduce clears it — failed-split retries and
	// speculative backup mappers replay batches — and the device and
	// by-contract engines do not produce contract-major batches.
	// Consumers of the other engines feed from Result.PerContract
	// after the run instead.
	BatchSink func(lo int, agg, occ [][]float64)
}

// DefaultBatchTrials is the default trial-batch granularity: large
// enough that per-batch dispatch vanishes against the trial kernel,
// small enough that a worker's resident batch stays in the hundreds of
// kilobytes on typical books.
const DefaultBatchTrials = 8192

func (cfg Config) batchTrials() int {
	if cfg.BatchTrials > 0 {
		return cfg.BatchTrials
	}
	return DefaultBatchTrials
}

// Input is one aggregate-analysis problem: the pre-simulated years,
// the per-contract ELTs, and the book of contracts with their layers.
type Input struct {
	// YELT is the materialized trial table. Leave nil and set Source to
	// run stage 2 in streaming mode, where trial batches are derived on
	// demand and the table is never resident. When both are set, Source
	// wins.
	YELT *yelt.Table
	// Source streams trial batches (yelt.Generator, or any other
	// yelt.Source). Engines consume it in Config.BatchTrials-bounded
	// batches, so memory is bounded by workers × batch, not by trial
	// count. Results are bit-identical to running over the equivalent
	// materialized table.
	Source    yelt.Source
	ELTs      []*elt.Table
	Portfolio *layers.Portfolio
	// Index is the pre-joined event-major loss index over (ELTs,
	// Portfolio). Leave nil to have the engine build it on first use;
	// orchestration layers that re-run engines over the same book
	// should build it once (lossindex.Build) and share it.
	//
	// Because engines memoize a lazily built index here, an Input with
	// a nil Index must not be shared by concurrent Run calls; pre-set
	// Index (as the pipeline does) to share one Input across
	// goroutines.
	Index *lossindex.Index
	// Flat is the flat SoA kernel layout derived from (Index,
	// Portfolio) — pre-applied expected-mode recoveries, flattened
	// layer terms, precomputed sampling plans. Leave nil to have the
	// engine build it on first use under the flat kernels (the default
	// KernelBlocked, or KernelFlat); the
	// same sharing caveat as Index applies (pre-set both to share one
	// Input across goroutines, as the pipeline does).
	Flat *lossindex.Flat
}

// EnsureIndex returns the input's loss index, building and memoizing
// it when absent (a write to in.Index — see the field's concurrency
// note). Call before spawning workers; the returned index is
// immutable and safe for concurrent readers.
func (in *Input) EnsureIndex() (*lossindex.Index, error) {
	if in.Index != nil {
		return in.Index, nil
	}
	ix, err := lossindex.Build(in.ELTs, in.Portfolio)
	if err != nil {
		return nil, fmt.Errorf("aggregate: building loss index: %w", err)
	}
	in.Index = ix
	return ix, nil
}

// EnsureFlat returns the input's flat kernel layout, building and
// memoizing it (and the index it derives from) when absent. Call
// before spawning workers; the returned layout is immutable and safe
// for concurrent readers.
func (in *Input) EnsureFlat() (*lossindex.Flat, error) {
	if in.Flat != nil {
		return in.Flat, nil
	}
	ix, err := in.EnsureIndex()
	if err != nil {
		return nil, err
	}
	fx, err := lossindex.Flatten(ix, in.Portfolio)
	if err != nil {
		return nil, fmt.Errorf("aggregate: flattening loss index: %w", err)
	}
	in.Flat = fx
	return fx, nil
}

// ensureKernelData builds the layouts the configured kernel scans:
// the loss index always (every kernel and the device pre-passes probe
// it), plus the flat SoA layout under the flat kernels (KernelBlocked
// and KernelFlat). Engines call it once before spawning workers.
func (in *Input) ensureKernelData(cfg Config) (*lossindex.Index, error) {
	idx, err := in.EnsureIndex()
	if err != nil {
		return nil, err
	}
	if cfg.Kernel != KernelIndexed {
		if _, err := in.EnsureFlat(); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// src returns the trial source: Source when set, else the materialized
// YELT (which itself implements yelt.Source). Call after Validate.
func (in *Input) src() yelt.Source {
	if in.Source != nil {
		return in.Source
	}
	return in.YELT
}

// streaming reports whether trials are consumed through a
// non-materialized source, i.e. whether peak-resident accounting (the
// batch high-water mark) applies instead of the table footprint.
func (in *Input) streaming() bool {
	if in.Source == nil {
		return false
	}
	_, materialized := in.Source.(*yelt.Table)
	return !materialized
}

// materializedBytes returns the resident footprint of a
// fully-materialized input (0 if the input is streaming).
func (in *Input) materializedBytes() int64 {
	if t, ok := in.Source.(*yelt.Table); ok {
		return t.SizeBytes()
	}
	if in.Source == nil && in.YELT != nil {
		return in.YELT.SizeBytes()
	}
	return 0
}

// Validate checks the input's internal consistency.
func (in *Input) Validate() error {
	if in.Source == nil && in.YELT == nil {
		return errors.New("aggregate: missing YELT or Source")
	}
	if in.src().TrialCount() == 0 {
		return errors.New("aggregate: trial source is empty")
	}
	if len(in.ELTs) == 0 {
		return errors.New("aggregate: no ELTs")
	}
	if in.Portfolio == nil {
		return errors.New("aggregate: missing portfolio")
	}
	if err := in.Portfolio.Validate(); err != nil {
		return err
	}
	for _, c := range in.Portfolio.Contracts {
		if c.ELTIndex < 0 || c.ELTIndex >= len(in.ELTs) {
			return fmt.Errorf("aggregate: contract %d references ELT %d of %d", c.ID, c.ELTIndex, len(in.ELTs))
		}
	}
	if in.Index != nil && in.Index.NumContracts() != len(in.Portfolio.Contracts) {
		return fmt.Errorf("aggregate: index built for %d contracts, portfolio has %d",
			in.Index.NumContracts(), len(in.Portfolio.Contracts))
	}
	if in.Flat != nil && in.Flat.NumContracts() != len(in.Portfolio.Contracts) {
		return fmt.Errorf("aggregate: flat layout built for %d contracts, portfolio has %d",
			in.Flat.NumContracts(), len(in.Portfolio.Contracts))
	}
	return nil
}

// Result is the output of a run.
type Result struct {
	// Portfolio is the whole-book YLT: aggregate annual recovery and
	// largest per-occurrence recovery per trial.
	Portfolio *ylt.Table
	// PerContract, when requested, holds one YLT per contract in
	// portfolio order.
	PerContract []*ylt.Table
	// PeakResidentBytes is the maximum bytes of trial (YELT) data
	// resident at any instant during the run: the full table footprint
	// for materialized inputs, the concurrent-batch high-water mark for
	// streaming sources. It is the stage-2 memory-envelope measurement.
	PeakResidentBytes int64
	// LocalBytes/RemoteBytes split the spilled-shard bytes scanned by a
	// MapReduce run by placement: a split scanned by a mapper homed on
	// the shard's owning node counts local, anything else — a steal for
	// load balance, or blind placement — counts remote. Zero for
	// engines and sources without shard placement. This is the
	// data-motion measurement E16 reports.
	LocalBytes  int64
	RemoteBytes int64
	// BusySeconds is the summed wall-clock time of the run's map tasks
	// (MapReduce only) — the "busy" side of the allocated-vs-busy
	// processor-time elasticity report.
	BusySeconds float64
	// MapFailures..WorkersLost count the failure-model events of a
	// MapReduce run (zero elsewhere): failed map attempts, retries
	// after them, speculative backups launched and won, shard reads
	// that failed over to another replica, and lane workers retired by
	// a node fault. They are observability only — any run that returns
	// a Result at all is bit-identical to the fault-free one.
	MapFailures    int64
	MapRetries     int64
	SpecLaunched   int64
	SpecWins       int64
	ShardFailovers int64
	WorkersLost    int64
}

// Engine runs aggregate analysis over an input.
type Engine interface {
	// Name identifies the engine in benchmarks and reports.
	Name() string
	// Run executes the analysis. Implementations must be deterministic
	// functions of (in, cfg).
	Run(ctx context.Context, in *Input, cfg Config) (*Result, error)
}

// trialScratch holds per-worker reusable buffers so the per-trial hot
// path is allocation-free.
type trialScratch struct {
	layerAgg [][]float64 // indexed kernel: [contract][layer] annual occurrence-recovery sums
	flatAgg  []float64   // flat kernel: one contiguous [totalLayers] vector of the same sums
	// Blocked-kernel scratch (blocked.go), grown on demand via
	// blockBufs/blockPerContractBufs so single-trial runs never pay for
	// it: the block×NumLayers accumulator matrix, the event-major span
	// staging arrays, and the block×numContracts output matrices.
	blockAgg []float64
	spanLo   []int32
	spanHi   []int32
	spanSum  []float64
	blockCA  []float64
	blockPC  []float64
	blockPCO []float64
	// perContract/perContractOcc are the per-trial per-contract output
	// buffers, allocated on first use (perContractBufs) so runs without
	// per-contract tables never pay for them.
	perContract    []float64
	perContractOcc []float64
}

// newTrialScratch sizes a worker's scratch for the kernel it will
// run — a run uses exactly one layout, so only that layout's
// accumulator is allocated. The flat kernels (blocked and
// single-trial) share the flatAgg vector — single-trial callers of a
// blocked run (ByContract's exact occurrence-max pass) land on it via
// trialOnce — while the blocked kernel's block-sized buffers grow
// lazily in blockBufs on the first blocked batch.
func newTrialScratch(pf *layers.Portfolio, kernel Kernel) *trialScratch {
	s := &trialScratch{}
	if kernel == KernelIndexed {
		s.layerAgg = make([][]float64, len(pf.Contracts))
		for i, c := range pf.Contracts {
			s.layerAgg[i] = make([]float64, len(c.Layers))
		}
		return s
	}
	total := 0
	for _, c := range pf.Contracts {
		total += len(c.Layers)
	}
	s.flatAgg = make([]float64, total)
	return s
}

// perContractBufs returns the worker's reusable per-contract buffers,
// allocating them lazily on the first per-contract run.
func (s *trialScratch) perContractBufs(nc int) (pc, pco []float64) {
	if len(s.perContract) < nc {
		s.perContract = make([]float64, nc)
		s.perContractOcc = make([]float64, nc)
	}
	return s.perContract[:nc], s.perContractOcc[:nc]
}

// runTrial computes one trial year through the indexed (pre-flat)
// kernel — kept as KernelIndexed for benchmarking the flat layout
// against. It returns the portfolio aggregate
// recovery, the largest single-occurrence portfolio recovery, and (if
// perContract is non-nil) adds each contract's annual recovery into
// perContract[c].
//
// Ordering contract: occurrences are walked in YELT (day) order and
// contracts in portfolio order; all sampling draws happen in that
// order from the trial's own stream. Every engine reproduces exactly
// this sequence. The index's rows preserve portfolio contract order
// and exclude non-positive means (which this kernel never drew for),
// so the indexed scan replays the lookup kernel's draw sequence
// bit-for-bit — legacy.go keeps that kernel as the pinned reference.
func runTrial(
	occs []yelt.Occurrence,
	idx *lossindex.Index,
	in *Input,
	cfg Config,
	st *rng.Stream,
	scratch *trialScratch,
	perContract []float64,
	perContractOcc []float64,
) (agg, occMax float64) {
	contracts := in.Portfolio.Contracts
	for ci := range scratch.layerAgg {
		la := scratch.layerAgg[ci]
		for li := range la {
			la[li] = 0
		}
	}

	for _, occ := range occs {
		var portfolioOccLoss float64
		for _, e := range idx.EntriesFor(occ.EventID) {
			ci := int(e.Contract)
			c := &contracts[ci]
			loss := e.Rec.MeanLoss
			if cfg.Sampling {
				loss = elt.SampleLoss(st, e.Rec)
			}
			var contractOcc float64
			for li := range c.Layers {
				r := c.Layers[li].ApplyOccurrence(loss)
				scratch.layerAgg[ci][li] += r
				contractOcc += r
			}
			portfolioOccLoss += contractOcc
			if perContractOcc != nil && contractOcc > perContractOcc[ci] {
				perContractOcc[ci] = contractOcc
			}
		}
		if portfolioOccLoss > occMax {
			occMax = portfolioOccLoss
		}
	}

	for ci := range contracts {
		c := &contracts[ci]
		var contractAnnual float64
		for li := range c.Layers {
			contractAnnual += c.Layers[li].ApplyAggregate(scratch.layerAgg[ci][li])
		}
		agg += contractAnnual
		if perContract != nil {
			perContract[ci] += contractAnnual
		}
	}
	return agg, occMax
}

// runBatch executes one trial batch into the result tables: local
// trial i of the batch is global trial base+i, which fixes the RNG
// substream, so results are independent of how trials were batched.
// The result slot for global trial t is t-slotOff: full-length tables
// (the host engines) pass slotOff 0; the MapReduce engine hands each
// mapper a segment table covering only its trial range and passes the
// range start, so the one shared kernel serves both shapes.
func runBatch(idx *lossindex.Index, in *Input, cfg Config, batch *yelt.Table, base int, res *Result, scratch *trialScratch, slotOff int) {
	if cfg.Kernel == KernelBlocked {
		// The blocked kernel owns the whole batch loop: it tiles the
		// batch into TrialBlock-sized blocks and fills the same result
		// slots with bit-identical values (see blocked.go).
		runBatchBlocked(in.Flat, in, cfg, batch, base, res, scratch, slotOff)
		emitBatch(cfg, res, base, batch.NumTrials, slotOff)
		return
	}
	nc := len(in.Portfolio.Contracts)
	var perContract, perContractOcc []float64
	if res.PerContract != nil {
		// Reused across batches via the per-worker scratch; runs without
		// per-contract output never allocate them.
		perContract, perContractOcc = scratch.perContractBufs(nc)
	}
	for i := 0; i < batch.NumTrials; i++ {
		trial := base + i
		slot := trial - slotOff
		// The trial's substream only feeds secondary-uncertainty draws;
		// expected mode never draws, so skip the stream setup entirely.
		var st *rng.Stream
		if cfg.Sampling {
			st = rng.NewStream(cfg.Seed, uint64(trial))
		}
		var pc, pco []float64
		if res.PerContract != nil {
			for j := range perContract {
				perContract[j] = 0
				perContractOcc[j] = 0
			}
			pc, pco = perContract, perContractOcc
		}
		agg, occMax := trialOnce(batch.OccurrencesOf(i), idx, in, cfg, st, scratch, pc, pco)
		res.Portfolio.Agg[slot] = agg
		res.Portfolio.OccMax[slot] = occMax
		if res.PerContract != nil {
			for ci := 0; ci < nc; ci++ {
				res.PerContract[ci].Agg[slot] = perContract[ci]
				res.PerContract[ci].OccMax[slot] = perContractOcc[ci]
			}
		}
	}
	emitBatch(cfg, res, base, batch.NumTrials, slotOff)
}

// emitBatch delivers a completed batch's per-contract rows to the
// configured BatchSink as views into the result tables. The row
// headers are fresh per call (cheap: per batch, not per trial) so a
// sink may hold them.
func emitBatch(cfg Config, res *Result, base, n, slotOff int) {
	if cfg.BatchSink == nil || res.PerContract == nil || n == 0 {
		return
	}
	lo := base - slotOff
	agg := make([][]float64, len(res.PerContract))
	occ := make([][]float64, len(res.PerContract))
	for ci, t := range res.PerContract {
		agg[ci] = t.Agg[lo : lo+n]
		occ[ci] = t.OccMax[lo : lo+n]
	}
	cfg.BatchSink(base, agg, occ)
}

// residentTracker measures the peak bytes of trial data concurrently
// resident across workers during a streaming run. Workers report their
// current batch size after each read; the tracker maintains the sum
// and its high-water mark. One mutex-guarded update per batch (not per
// trial) keeps it off the hot path.
type residentTracker struct {
	mu   sync.Mutex
	per  map[int]int64
	cur  int64
	peak int64
}

func newResidentTracker() *residentTracker {
	return &residentTracker{per: make(map[int]int64)}
}

func (rt *residentTracker) set(worker int, bytes int64) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.cur += bytes - rt.per[worker]
	rt.per[worker] = bytes
	if rt.cur > rt.peak {
		rt.peak = rt.cur
	}
	rt.mu.Unlock()
}

func (rt *residentTracker) Peak() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.peak
}

// trackerFor returns a tracker for streaming inputs, nil otherwise
// (nil trackers no-op on set).
func trackerFor(in *Input) *residentTracker {
	if in.streaming() {
		return newResidentTracker()
	}
	return nil
}

// peakResident is the run's memory envelope: the tracked batch
// high-water mark for streaming runs, the table footprint otherwise.
// Shared by every result type that reports PeakResidentBytes.
func peakResident(in *Input, rt *residentTracker) int64 {
	if rt != nil {
		return rt.Peak()
	}
	return in.materializedBytes()
}

// finishResident records the run's memory envelope on the result.
func finishResident(in *Input, res *Result, rt *residentTracker) {
	res.PeakResidentBytes = peakResident(in, rt)
}

// streamRange feeds trials [r.Lo, r.Hi) to fn in batches of at most
// batch trials, reading through buf and polling ctx between batches.
// worker keys the resident-bytes accounting; pass a distinct key per
// concurrent caller. The worker's resident bytes are drained on every
// exit path (deferred), so an error mid-stream cannot leave its last
// batch pinned in the tracker's running sum.
func streamRange(ctx context.Context, src yelt.Source, r stream.Range, batch int, rt *residentTracker, worker int, buf *yelt.Table, fn func(b *yelt.Table, base int) error) error {
	defer rt.set(worker, 0)
	for lo := r.Lo; lo < r.Hi; lo += batch {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		hi := min(lo+batch, r.Hi)
		b, err := src.ReadTrials(ctx, lo, hi, buf)
		if err != nil {
			return err
		}
		rt.set(worker, b.SizeBytes())
		if err := fn(b, lo); err != nil {
			return err
		}
	}
	return nil
}

func newResult(in *Input, cfg Config) *Result {
	return newResultN(in, cfg, in.src().TrialCount())
}

// newResultN builds the result tables for n trial slots — the full
// trial count for whole-run results, a range length for the MapReduce
// engine's segment tables.
func newResultN(in *Input, cfg Config, n int) *Result {
	res := &Result{Portfolio: ylt.New("portfolio", n)}
	if cfg.PerContract || cfg.BatchSink != nil {
		res.PerContract = make([]*ylt.Table, len(in.Portfolio.Contracts))
		for i, c := range in.Portfolio.Contracts {
			res.PerContract[i] = ylt.New(fmt.Sprintf("contract-%d", c.ID), n)
		}
	}
	return res
}

// Sequential is the single-threaded reference engine — the paper's
// "sequential counterpart" that the many-core engine is measured
// against.
type Sequential struct{}

// Name implements Engine.
func (Sequential) Name() string { return "sequential" }

// Run implements Engine.
func (Sequential) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	idx, err := in.ensureKernelData(cfg)
	if err != nil {
		return nil, err
	}
	res := newResult(in, cfg)
	scratch := newTrialScratch(in.Portfolio, cfg.Kernel)
	src := in.src()
	rt := trackerFor(in)
	err = streamRange(ctx, src, stream.Range{Lo: 0, Hi: src.TrialCount()}, cfg.batchTrials(), rt, 0, &yelt.Table{},
		func(b *yelt.Table, base int) error {
			runBatch(idx, in, cfg, b, base, res, scratch, 0)
			return nil
		})
	if err != nil {
		return nil, err
	}
	finishResident(in, res, rt)
	return res, nil
}

// Parallel partitions trials across a goroutine pool. Because trials
// are independent given the pre-simulated YELT (that is the point of
// pre-simulation), the engine is embarrassingly parallel; each worker
// writes disjoint trial slots so no synchronization is needed beyond
// the final join.
type Parallel struct{}

// Name implements Engine.
func (Parallel) Name() string { return "parallel" }

// Run implements Engine.
func (Parallel) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	idx, err := in.ensureKernelData(cfg)
	if err != nil {
		return nil, err
	}
	res := newResult(in, cfg)
	src := in.src()
	rt := trackerFor(in)
	err = stream.ForEachRange(ctx, src.TrialCount(), cfg.Workers, func(ctx context.Context, r stream.Range, w int) error {
		scratch := newTrialScratch(in.Portfolio, cfg.Kernel)
		return streamRange(ctx, src, r, cfg.batchTrials(), rt, w, &yelt.Table{},
			func(b *yelt.Table, base int) error {
				runBatch(idx, in, cfg, b, base, res, scratch, 0)
				return nil
			})
	})
	if err != nil {
		return nil, err
	}
	finishResident(in, res, rt)
	return res, nil
}
