// Package aggregate implements stage 2's core computation — aggregate
// analysis: "An additional Monte Carlo simulation ... is necessary for
// generating an alternate view of which events occur and in which
// order they occur within a contractual year" (§II). For every
// pre-simulated trial year in the YELT, the engine walks the year's
// event occurrences in date order, looks up each contract's loss in
// its ELT, applies per-occurrence and annual-aggregate reinsurance
// terms, and emits the trial's loss into a Year-Loss Table.
//
// Three engines share one trial kernel:
//
//   - Sequential: single goroutine, the paper's CPU baseline.
//   - Parallel: trials partitioned across goroutines (the native
//     realization of the paper's data-parallel GPU engine; experiment
//     E1's measured speedup).
//   - Chunked: runs the ground-up portfolio aggregation on the
//     simulated many-core device (internal/gpusim), staging ELT chunks
//     through shared memory — the paper's "chunking" memory strategy
//     (experiment E4's modeled-cycle ablation).
//
// Every engine consumes the pre-joined event-major loss index
// (internal/lossindex) instead of binary-searching per-contract ELTs
// per occurrence — the paper's "scanned over rather than randomly
// accessed" layout. The index is built once per input (or supplied by
// the orchestration layer, which builds it in stage 1) and shared
// read-only by all workers. LegacyLookup (legacy.go) preserves the
// pre-index kernel as the equivalence and benchmark baseline.
//
// All engines are bit-deterministic for a given (input, seed) and
// agree with each other; determinism comes from per-trial RNG streams,
// never from scheduling.
package aggregate

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/elt"
	"repro/internal/layers"
	"repro/internal/lossindex"
	"repro/internal/rng"
	"repro/internal/stream"
	"repro/internal/yelt"
	"repro/internal/ylt"
)

// Config controls a run.
type Config struct {
	// Seed drives secondary-uncertainty sampling. Each trial uses the
	// substream rng.NewStream(Seed, trial), so results are independent
	// of engine choice and worker count.
	Seed uint64
	// Sampling enables beta-distributed secondary uncertainty around
	// each ELT record's mean loss. When false the mean loss is used —
	// the deterministic "expected mode" also used by the device
	// engine.
	Sampling bool
	// Workers bounds parallel engines; <= 0 means GOMAXPROCS.
	Workers int
	// PerContract requests per-contract YLTs in addition to the
	// portfolio table.
	PerContract bool
}

// Input is one aggregate-analysis problem: the pre-simulated years,
// the per-contract ELTs, and the book of contracts with their layers.
type Input struct {
	YELT      *yelt.Table
	ELTs      []*elt.Table
	Portfolio *layers.Portfolio
	// Index is the pre-joined event-major loss index over (ELTs,
	// Portfolio). Leave nil to have the engine build it on first use;
	// orchestration layers that re-run engines over the same book
	// should build it once (lossindex.Build) and share it.
	//
	// Because engines memoize a lazily built index here, an Input with
	// a nil Index must not be shared by concurrent Run calls; pre-set
	// Index (as the pipeline does) to share one Input across
	// goroutines.
	Index *lossindex.Index
}

// EnsureIndex returns the input's loss index, building and memoizing
// it when absent (a write to in.Index — see the field's concurrency
// note). Call before spawning workers; the returned index is
// immutable and safe for concurrent readers.
func (in *Input) EnsureIndex() (*lossindex.Index, error) {
	if in.Index != nil {
		return in.Index, nil
	}
	ix, err := lossindex.Build(in.ELTs, in.Portfolio)
	if err != nil {
		return nil, fmt.Errorf("aggregate: building loss index: %w", err)
	}
	in.Index = ix
	return ix, nil
}

// Validate checks the input's internal consistency.
func (in *Input) Validate() error {
	if in.YELT == nil || in.YELT.NumTrials == 0 {
		return errors.New("aggregate: missing YELT")
	}
	if len(in.ELTs) == 0 {
		return errors.New("aggregate: no ELTs")
	}
	if in.Portfolio == nil {
		return errors.New("aggregate: missing portfolio")
	}
	if err := in.Portfolio.Validate(); err != nil {
		return err
	}
	for _, c := range in.Portfolio.Contracts {
		if c.ELTIndex < 0 || c.ELTIndex >= len(in.ELTs) {
			return fmt.Errorf("aggregate: contract %d references ELT %d of %d", c.ID, c.ELTIndex, len(in.ELTs))
		}
	}
	if in.Index != nil && in.Index.NumContracts() != len(in.Portfolio.Contracts) {
		return fmt.Errorf("aggregate: index built for %d contracts, portfolio has %d",
			in.Index.NumContracts(), len(in.Portfolio.Contracts))
	}
	return nil
}

// Result is the output of a run.
type Result struct {
	// Portfolio is the whole-book YLT: aggregate annual recovery and
	// largest per-occurrence recovery per trial.
	Portfolio *ylt.Table
	// PerContract, when requested, holds one YLT per contract in
	// portfolio order.
	PerContract []*ylt.Table
}

// Engine runs aggregate analysis over an input.
type Engine interface {
	// Name identifies the engine in benchmarks and reports.
	Name() string
	// Run executes the analysis. Implementations must be deterministic
	// functions of (in, cfg).
	Run(ctx context.Context, in *Input, cfg Config) (*Result, error)
}

// trialScratch holds per-worker reusable buffers so the per-trial hot
// path is allocation-free.
type trialScratch struct {
	layerAgg [][]float64 // [contract][layer] annual occurrence-recovery sums
	occLoss  []float64   // per-occurrence portfolio recovery, reused
}

func newTrialScratch(pf *layers.Portfolio) *trialScratch {
	s := &trialScratch{layerAgg: make([][]float64, len(pf.Contracts))}
	for i, c := range pf.Contracts {
		s.layerAgg[i] = make([]float64, len(c.Layers))
	}
	return s
}

// runTrial computes one trial year. It returns the portfolio aggregate
// recovery, the largest single-occurrence portfolio recovery, and (if
// perContract is non-nil) adds each contract's annual recovery into
// perContract[c].
//
// Ordering contract: occurrences are walked in YELT (day) order and
// contracts in portfolio order; all sampling draws happen in that
// order from the trial's own stream. Every engine reproduces exactly
// this sequence. The index's rows preserve portfolio contract order
// and exclude non-positive means (which this kernel never drew for),
// so the indexed scan replays the lookup kernel's draw sequence
// bit-for-bit — legacy.go keeps that kernel as the pinned reference.
func runTrial(
	occs []yelt.Occurrence,
	idx *lossindex.Index,
	in *Input,
	cfg Config,
	st *rng.Stream,
	scratch *trialScratch,
	perContract []float64,
	perContractOcc []float64,
) (agg, occMax float64) {
	contracts := in.Portfolio.Contracts
	for ci := range scratch.layerAgg {
		la := scratch.layerAgg[ci]
		for li := range la {
			la[li] = 0
		}
	}
	if cap(scratch.occLoss) < len(contracts) {
		scratch.occLoss = make([]float64, len(contracts))
	}

	for _, occ := range occs {
		var portfolioOccLoss float64
		for _, e := range idx.EntriesFor(occ.EventID) {
			ci := int(e.Contract)
			c := &contracts[ci]
			loss := e.Rec.MeanLoss
			if cfg.Sampling {
				loss = elt.SampleLoss(st, e.Rec)
			}
			var contractOcc float64
			for li := range c.Layers {
				r := c.Layers[li].ApplyOccurrence(loss)
				scratch.layerAgg[ci][li] += r
				contractOcc += r
			}
			portfolioOccLoss += contractOcc
			if perContractOcc != nil && contractOcc > perContractOcc[ci] {
				perContractOcc[ci] = contractOcc
			}
		}
		if portfolioOccLoss > occMax {
			occMax = portfolioOccLoss
		}
	}

	for ci := range contracts {
		c := &contracts[ci]
		var contractAnnual float64
		for li := range c.Layers {
			contractAnnual += c.Layers[li].ApplyAggregate(scratch.layerAgg[ci][li])
		}
		agg += contractAnnual
		if perContract != nil {
			perContract[ci] += contractAnnual
		}
	}
	return agg, occMax
}

// runRange executes trials [r.Lo, r.Hi) into the result tables.
func runRange(idx *lossindex.Index, in *Input, cfg Config, r stream.Range, res *Result, scratch *trialScratch) {
	nc := len(in.Portfolio.Contracts)
	perContract := make([]float64, nc)
	perContractOcc := make([]float64, nc)
	for trial := r.Lo; trial < r.Hi; trial++ {
		st := rng.NewStream(cfg.Seed, uint64(trial))
		var pc, pco []float64
		if res.PerContract != nil {
			for i := range perContract {
				perContract[i] = 0
				perContractOcc[i] = 0
			}
			pc, pco = perContract, perContractOcc
		}
		agg, occMax := runTrial(in.YELT.OccurrencesOf(trial), idx, in, cfg, st, scratch, pc, pco)
		res.Portfolio.Agg[trial] = agg
		res.Portfolio.OccMax[trial] = occMax
		if res.PerContract != nil {
			for ci := 0; ci < nc; ci++ {
				res.PerContract[ci].Agg[trial] = perContract[ci]
				res.PerContract[ci].OccMax[trial] = perContractOcc[ci]
			}
		}
	}
}

func newResult(in *Input, cfg Config) *Result {
	n := in.YELT.NumTrials
	res := &Result{Portfolio: ylt.New("portfolio", n)}
	if cfg.PerContract {
		res.PerContract = make([]*ylt.Table, len(in.Portfolio.Contracts))
		for i, c := range in.Portfolio.Contracts {
			res.PerContract[i] = ylt.New(fmt.Sprintf("contract-%d", c.ID), n)
		}
	}
	return res
}

// Sequential is the single-threaded reference engine — the paper's
// "sequential counterpart" that the many-core engine is measured
// against.
type Sequential struct{}

// Name implements Engine.
func (Sequential) Name() string { return "sequential" }

// Run implements Engine.
func (Sequential) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	idx, err := in.EnsureIndex()
	if err != nil {
		return nil, err
	}
	res := newResult(in, cfg)
	scratch := newTrialScratch(in.Portfolio)
	const checkEvery = 4096
	for lo := 0; lo < in.YELT.NumTrials; lo += checkEvery {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		hi := lo + checkEvery
		if hi > in.YELT.NumTrials {
			hi = in.YELT.NumTrials
		}
		runRange(idx, in, cfg, stream.Range{Lo: lo, Hi: hi}, res, scratch)
	}
	return res, nil
}

// Parallel partitions trials across a goroutine pool. Because trials
// are independent given the pre-simulated YELT (that is the point of
// pre-simulation), the engine is embarrassingly parallel; each worker
// writes disjoint trial slots so no synchronization is needed beyond
// the final join.
type Parallel struct{}

// Name implements Engine.
func (Parallel) Name() string { return "parallel" }

// Run implements Engine.
func (Parallel) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	idx, err := in.EnsureIndex()
	if err != nil {
		return nil, err
	}
	res := newResult(in, cfg)
	err = stream.ForEachRange(ctx, in.YELT.NumTrials, cfg.Workers, func(ctx context.Context, r stream.Range, _ int) error {
		scratch := newTrialScratch(in.Portfolio)
		const checkEvery = 4096
		for lo := r.Lo; lo < r.Hi; lo += checkEvery {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			hi := lo + checkEvery
			if hi > r.Hi {
				hi = r.Hi
			}
			runRange(idx, in, cfg, stream.Range{Lo: lo, Hi: hi}, res, scratch)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
