package aggregate

import (
	"context"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/synth"
	"repro/internal/yelt"
)

// The device engine's loss vectors are projected from the flat kernel
// layout's pre-applied ExpRec column; the superseded nested
// Contract-walk construction is kept as the reference. The projection
// must be exactly equal — same additions in the same order — not just
// close.
func TestChunkedVectorsMatchLegacy(t *testing.T) {
	for _, seed := range []uint64{7, 10, 21} { // incl. books with agg terms and shares
		p := synth.Small(seed)
		p.TwoLayers = seed%2 == 1
		s := buildScenario(t, p)
		in := input(s)
		fx, err := in.EnsureFlat()
		if err != nil {
			t.Fatal(err)
		}
		aggVec, occVec := fx.DeviceVectors()
		wantAgg, wantOcc := legacyVectors(in, fx.Index())
		bitIdentical(t, "aggVec", wantAgg, aggVec)
		bitIdentical(t, "occVec", wantOcc, occVec)
	}
}

// With the two-lifetime arena, a streaming run uploads the loss
// vectors exactly once: the resident transfer counter equals their
// combined size, and the per-batch counter accounts for occurrences,
// offsets and outputs only.
func TestChunkedResidentUploadOnce(t *testing.T) {
	p := synth.Small(61)
	p.OccurrenceOnly = true
	s := buildScenario(t, p)
	in := input(s)
	fx, err := in.EnsureFlat()
	if err != nil {
		t.Fatal(err)
	}
	numRows := fx.Index().NumRows()

	// A provided device large enough for every batch, so the owned-
	// device growth path never reallocates and the resident vectors
	// have no reason to re-upload.
	dev := gpusim.NewDevice(gpusim.DefaultConfig(), 2*numRows+len(s.YELT.Occs)+4*s.YELT.NumTrials+4096)
	ch := &Chunked{Device: dev}
	const batch = 97
	str := streamingInput(t, s, fx.Index())
	str.Flat = fx
	res, err := ch.Run(context.Background(), str, Config{BatchTrials: batch})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := ch.LastStats.ResidentTransferFloats, uint64(2*numRows); got != want {
		t.Fatalf("resident transfers = %d, want exactly %d (one upload of both loss vectors)", got, want)
	}
	// Per-batch traffic: occurrences up, offsets up (bn+1 per batch),
	// agg and occ-max tables down (bn each).
	numTrials := s.YELT.NumTrials
	numBatches := (numTrials + batch - 1) / batch
	wantBatchFloats := uint64(len(s.YELT.Occs) + (numTrials + numBatches) + 2*numTrials)
	if got := ch.LastStats.TransferFloats; got != wantBatchFloats {
		t.Fatalf("per-batch transfers = %d, want %d (loss vectors must not re-stage)", got, wantBatchFloats)
	}

	// And the arena restructure must not change a single bit of output.
	matRef := &Chunked{}
	want, err := matRef.Run(context.Background(), input(s), Config{})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "arena agg", want.Portfolio.Agg, res.Portfolio.Agg)
	bitIdentical(t, "arena occmax", want.Portfolio.OccMax, res.Portfolio.OccMax)
}

// growingSource streams a hand-built table through the Source
// interface (wrapping it so the engine takes the streaming path, not
// the materialized-table fast path).
type growingSource struct{ tab *yelt.Table }

func (g growingSource) TrialCount() int { return g.tab.NumTrials }
func (g growingSource) ReadTrials(ctx context.Context, lo, hi int, buf *yelt.Table) (*yelt.Table, error) {
	return g.tab.ReadTrials(ctx, lo, hi, buf)
}

// A streaming run whose later batches carry more occurrences forces
// the owned device to grow mid-run. The replacement must carry the
// accumulated cost-model counters (not reset them) and re-upload the
// resident vectors onto each fresh device — and the output must stay
// bit-identical to the materialized single-pass run.
func TestChunkedStreamingDeviceGrowthCarriesStats(t *testing.T) {
	p := synth.Small(63)
	p.OccurrenceOnly = true
	s := buildScenario(t, p)

	// 60 trials in 6 batches of 10; trials in batch j have 20*(j+1)
	// occurrences each, so every batch needs a bigger device than the
	// last. Event IDs cycle through the scenario's catalog.
	src := s.YELT.Occs
	tab := &yelt.Table{NumTrials: 60, Offsets: make([]int64, 61)}
	for trial := 0; trial < 60; trial++ {
		n := 20 * (trial/10 + 1)
		for i := 0; i < n; i++ {
			tab.Occs = append(tab.Occs, yelt.Occurrence{
				EventID:   src[(trial*31+i)%len(src)].EventID,
				DayOfYear: uint16(i % 365),
			})
		}
		tab.Offsets[trial+1] = int64(len(tab.Occs))
	}

	in := &Input{Source: growingSource{tab}, ELTs: s.ELTs, Portfolio: s.Portfolio}
	const tpb = 16
	ch := &Chunked{TrialsPerBlock: tpb}
	res, err := ch.Run(context.Background(), in, Config{BatchTrials: 10})
	if err != nil {
		t.Fatal(err)
	}

	fx, err := in.EnsureFlat()
	if err != nil {
		t.Fatal(err)
	}
	numRows := uint64(fx.Index().NumRows())

	// Every batch ran on the device: 6 batches x ceil(10/16) block.
	if got, want := ch.LastStats.Blocks, uint64(6); got != want {
		t.Fatalf("blocks = %d, want %d (growth dropped carried stats?)", got, want)
	}
	// The device grew at least once, so the resident vectors uploaded
	// more than once — but always in whole pairs.
	rt := ch.LastStats.ResidentTransferFloats
	if rt < 2*2*numRows {
		t.Fatalf("resident transfers = %d; expected re-upload after growth (>= %d)", rt, 4*numRows)
	}
	if rt%(2*numRows) != 0 {
		t.Fatalf("resident transfers = %d, not a whole number of vector pairs (%d)", rt, 2*numRows)
	}

	matRef := &Chunked{TrialsPerBlock: tpb}
	want, err := matRef.Run(context.Background(),
		&Input{YELT: tab, ELTs: s.ELTs, Portfolio: s.Portfolio}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bitIdentical(t, "growth agg", want.Portfolio.Agg, res.Portfolio.Agg)
	bitIdentical(t, "growth occmax", want.Portfolio.OccMax, res.Portfolio.OccMax)
}
