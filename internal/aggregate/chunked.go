package aggregate

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/lossindex"
	"repro/internal/stream"
	"repro/internal/yelt"
	"repro/internal/ylt"
)

// ErrUnsupportedOnDevice is returned by the Chunked engine for inputs
// outside the device kernel's scope (sampling mode or annual-aggregate
// layer terms). The paper's GPU engine [7] likewise ran the
// expected-loss occurrence pipeline on device.
var ErrUnsupportedOnDevice = errors.New("aggregate: configuration unsupported on device engine")

// Chunked runs the occurrence-terms portfolio aggregation on the
// simulated many-core device, staging occurrence data and the
// portfolio loss vectors through per-block shared memory — the
// paper's "chunking ... utilising shared and constant memory as much
// as possible" (§II). Modeled device cycles are captured in LastStats
// for the E4 ablation; the Naive field switches staging off to
// quantify exactly what chunking buys.
//
// Device memory uses two lifetimes: the portfolio loss vectors are
// study-resident (uploaded once per run, surviving every streaming
// batch pass via gpusim.FreeBatch), while occurrences, offsets and
// output tables cycle per batch. LastStats separates the two transfer
// flows (ResidentTransferFloats vs TransferFloats), so the
// steady-state per-batch link cost excludes the loss vectors.
type Chunked struct {
	// Device is the simulated accelerator; nil allocates a default
	// device sized for the input.
	Device *gpusim.Device
	// Naive disables shared-memory staging: every access goes to
	// global memory. Results are identical; modeled cost is not.
	Naive bool
	// TrialsPerBlock bounds trials per device block; <= 0 derives it
	// from the device's thread width.
	TrialsPerBlock int
	// LastStats holds the device cost counters of the most recent run.
	LastStats gpusim.Stats

	// Loss-vector cache: the vectors are a pure projection of the flat
	// kernel layout, which Input memoizes per (ELTs, Portfolio), so
	// re-running the engine over the same book (as the ablations do)
	// reuses them without re-sweeping the entries. Like Input's lazy
	// Index/Flat, this makes a shared *Chunked unsafe for concurrent
	// Run calls (LastStats already was).
	vecFlat *lossindex.Flat
	aggVec  []float64
	occVec  []float64
}

// recoveryVectors returns the per-row loss vectors for fx, projecting
// and caching them on first use per layout.
func (c *Chunked) recoveryVectors(fx *lossindex.Flat) (aggVec, occVec []float64) {
	if c.vecFlat != fx {
		c.aggVec, c.occVec = fx.DeviceVectors()
		c.vecFlat = fx
	}
	return c.aggVec, c.occVec
}

// legacyVectors is the superseded host-side loss-vector construction:
// a nested walk of every row's entries through the Contract structs
// and their []Layer. Kept (unexported) as the reference the projected
// fast path is pinned against in TestChunkedVectorsMatchLegacy.
func legacyVectors(in *Input, idx *lossindex.Index) (aggVec, occVec []float64) {
	numRows := idx.NumRows()
	aggVec = make([]float64, numRows)
	occVec = make([]float64, numRows)
	for row := 0; row < numRows; row++ {
		for _, e := range idx.Entries(int32(row)) {
			ct := &in.Portfolio.Contracts[e.Contract]
			for _, l := range ct.Layers {
				r := l.ApplyOccurrence(e.Rec.MeanLoss)
				if r <= 0 {
					continue
				}
				share := l.Share
				if share == 0 {
					share = 1
				}
				aggVec[row] += r * share
				occVec[row] += r
			}
		}
	}
	return aggVec, occVec
}

// Name implements Engine.
func (c *Chunked) Name() string {
	if c.Naive {
		return "device-naive"
	}
	return "device-chunked"
}

// Run implements Engine. Results agree with the Sequential engine in
// expected mode (Sampling=false) for portfolios whose layers carry
// only occurrence terms, up to floating-point re-association (the
// device kernel folds shares into a per-event vector before the trial
// sweep; the host engines fold them after).
//
// Streaming inputs are processed as a sequence of device passes, one
// per trial batch: the loss vectors upload once into the device's
// study-resident arena, then each pass uploads only the batch's
// occurrences and offsets, launches the grid, and downloads the
// batch's YLT rows — so neither host nor device ever holds the full
// YELT, and the per-batch link traffic excludes the loss vectors.
// Per-trial results are bit-identical to the single-upload
// materialized path; only the modeled transfer counters differ.
func (c *Chunked) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sampling {
		return nil, fmt.Errorf("%w: sampling", ErrUnsupportedOnDevice)
	}
	if cfg.PerContract {
		return nil, fmt.Errorf("%w: per-contract output", ErrUnsupportedOnDevice)
	}
	for _, ct := range in.Portfolio.Contracts {
		for _, l := range ct.Layers {
			if l.AggRetention != 0 || l.AggLimit != 0 {
				return nil, fmt.Errorf("%w: annual aggregate terms on contract %d", ErrUnsupportedOnDevice, ct.ID)
			}
		}
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	default:
	}

	// The portfolio's per-row recovery vectors (ELT preprocessing, done
	// once per portfolio, not per trial): aggVec folds each layer's
	// share in, occVec is the share-free occurrence recovery that
	// drives OccMax — mirroring runTrial's accounting exactly. They are
	// projected straight from the flat kernel layout's pre-applied
	// ExpRec column (one linear sweep, bit-identical to the nested
	// Contract walk it replaced — see lossindex.DeviceVectors) and
	// cached across runs. Working in the index's dense row space
	// (loss-bearing events only) instead of raw event-ID space shrinks
	// the vectors the kernel sweeps through shared memory.
	fx, err := in.EnsureFlat()
	if err != nil {
		return nil, err
	}
	idx := fx.Index()
	numRows := idx.NumRows()
	aggVec, occVec := c.recoveryVectors(fx)

	src := in.src()
	numTrials := src.TrialCount()
	res := &Result{Portfolio: ylt.New("portfolio", numTrials)}
	rt := trackerFor(in)

	// Materialized inputs run as one device pass over the whole table
	// (today's E4 shape); streaming sources go batch by batch.
	batchT := numTrials
	if in.streaming() {
		batchT = cfg.batchTrials()
	}

	dev := c.Device
	devOwned := dev == nil
	devCap := 0
	var carried gpusim.Stats
	if !devOwned {
		dev.FreeAll()
		dev.ResetStats()
	}
	var aggVecBuf, occVecBuf gpusim.Buffer
	residentUp := false
	var hostOcc, hostOff []float64

	err = streamRange(ctx, src, stream.Range{Lo: 0, Hi: numTrials}, batchT, rt, 0, &yelt.Table{}, func(b *yelt.Table, base int) error {
		bn := b.NumTrials
		bOccs := len(b.Occs)
		need := 2*numRows + bOccs + (bn + 1) + 2*bn + 1024
		if devOwned && (dev == nil || devCap < need) {
			// Grow the owned device, carrying the accumulated cost-model
			// counters across the replacement. The fresh device has an
			// empty arena, so the resident vectors re-upload below.
			if dev != nil {
				carried = carried.Add(dev.Stats())
			}
			devCap = need
			dev = gpusim.NewDevice(gpusim.DefaultConfig(), devCap)
			residentUp = false
		}

		if !residentUp {
			// First pass on this device: lay down the study-resident
			// arena and upload the loss vectors once. They survive every
			// subsequent FreeBatch below — the two-lifetime split that
			// keeps the steady-state batch traffic to occurrences,
			// offsets and outputs only.
			dev.FreeAll()
			var err error
			if aggVecBuf, err = dev.AllocResident(numRows); err != nil {
				return err
			}
			if occVecBuf, err = dev.AllocResident(numRows); err != nil {
				return err
			}
			if err = dev.CopyToDevice(aggVecBuf, aggVec); err != nil {
				return err
			}
			if err = dev.CopyToDevice(occVecBuf, occVec); err != nil {
				return err
			}
			residentUp = true
		} else {
			dev.FreeBatch()
		}

		// Per-batch upload: occurrence index rows (as float64 — exact
		// below 2^53; -1 marks loss-free events, resolved on the host so
		// the device never probes the event-id table), per-trial
		// offsets, and the output tables.
		occBuf, err := dev.Alloc(bOccs)
		if err != nil {
			return err
		}
		offBuf, err := dev.Alloc(bn + 1)
		if err != nil {
			return err
		}
		outAgg, err := dev.Alloc(bn)
		if err != nil {
			return err
		}
		outMax, err := dev.Alloc(bn)
		if err != nil {
			return err
		}

		hostOcc = hostOcc[:0]
		for _, o := range b.Occs {
			hostOcc = append(hostOcc, float64(idx.Row(o.EventID)))
		}
		if err := dev.CopyToDevice(occBuf, hostOcc); err != nil {
			return err
		}
		hostOff = hostOff[:0]
		for _, o := range b.Offsets {
			hostOff = append(hostOff, float64(o))
		}
		if err := dev.CopyToDevice(offBuf, hostOff); err != nil {
			return err
		}

		devCfg := dev.Config()
		tpb := c.TrialsPerBlock
		if tpb <= 0 {
			tpb = devCfg.ThreadsPerBlock
		}
		grid := (bn + tpb - 1) / tpb
		kernel := c.buildKernel(bn, tpb, devCfg.SharedMemPerBlock, numRows,
			occBuf, offBuf, aggVecBuf, occVecBuf, outAgg, outMax)
		if err := dev.Launch(grid, kernel); err != nil {
			return err
		}
		if err := dev.CopyFromDevice(outAgg, res.Portfolio.Agg[base:base+bn]); err != nil {
			return err
		}
		return dev.CopyFromDevice(outMax, res.Portfolio.OccMax[base:base+bn])
	})
	if err != nil {
		return nil, err
	}
	c.LastStats = carried.Add(dev.Stats())
	finishResident(in, res, rt)
	return res, nil
}

// buildKernel returns the per-pass device kernel over one trial batch
// of bn trials: the naive global-memory form, or the chunked
// shared-memory form staging occurrences and loss-vector chunks.
func (c *Chunked) buildKernel(bn, tpb, shared, numRows int, occBuf, offBuf, aggVecBuf, occVecBuf, outAgg, outMax gpusim.Buffer) func(*gpusim.BlockCtx) {
	if c.Naive {
		return func(b *gpusim.BlockCtx) {
			lo := b.BlockID * tpb
			hi := lo + tpb
			if hi > bn {
				hi = bn
			}
			for trial := lo; trial < hi; trial++ {
				start := int(b.LoadGlobal(offBuf, trial))
				end := int(b.LoadGlobal(offBuf, trial+1))
				var agg, max float64
				for i := start; i < end; i++ {
					rid := int(b.LoadGlobal(occBuf, i))
					b.AddArith(1)
					if rid < 0 {
						// Event never produced a loss on any contract:
						// no index row, nothing to add (mirrors the host
						// engines' empty index probe).
						continue
					}
					agg += b.LoadGlobal(aggVecBuf, rid)
					o := b.LoadGlobal(occVecBuf, rid)
					b.AddArith(2)
					if o > max {
						max = o
					}
				}
				b.StoreGlobal(outAgg, trial, agg)
				b.StoreGlobal(outMax, trial, max)
			}
		}
	}
	// Chunked kernel: stage the block's occurrences into shared
	// memory once, then sweep the loss vectors through the rest of
	// shared memory in chunks, probing the staged occurrences per
	// chunk. Per-trial accumulators live in "registers" (locals).
	return func(b *gpusim.BlockCtx) {
		lo := b.BlockID * tpb
		hi := lo + tpb
		if hi > bn {
			hi = bn
		}
		nTrials := hi - lo
		start := int(b.LoadGlobal(offBuf, lo))
		end := int(b.LoadGlobal(offBuf, hi))
		nOccs := end - start

		agg := make([]float64, nTrials)
		max := make([]float64, nTrials)

		// Shared layout: [occurrences][trial bounds][vector chunk×2].
		occBase := 0
		boundBase := nOccs
		chunkBase := nOccs + nTrials + 1
		if chunkBase > shared {
			// The block's occurrences don't even fit in shared
			// memory: degrade to the naive global path for this
			// block rather than faulting — the shape a real kernel
			// guards with a launch-bounds check.
			for t := 0; t < nTrials; t++ {
				s := int(b.LoadGlobal(offBuf, lo+t))
				e := int(b.LoadGlobal(offBuf, lo+t+1))
				for i := s; i < e; i++ {
					rid := int(b.LoadGlobal(occBuf, i))
					b.AddArith(1)
					if rid < 0 {
						continue
					}
					agg[t] += b.LoadGlobal(aggVecBuf, rid)
					o := b.LoadGlobal(occVecBuf, rid)
					b.AddArith(2)
					if o > max[t] {
						max[t] = o
					}
				}
			}
			for t := 0; t < nTrials; t++ {
				b.StoreGlobal(outAgg, lo+t, agg[t])
				b.StoreGlobal(outMax, lo+t, max[t])
			}
			return
		}
		chunkCap := (shared - chunkBase) / 2
		if chunkCap < 64 {
			// Degenerate: occurrences crowd out the staging area;
			// fall back to direct global probes for this block.
			chunkCap = 0
		}
		b.StageToShared(occBuf, start, end, occBase)
		b.StageToShared(offBuf, lo, hi+1, boundBase)

		if chunkCap == 0 {
			for t := 0; t < nTrials; t++ {
				s := int(b.LoadShared(boundBase+t)) - start
				e := int(b.LoadShared(boundBase+t+1)) - start
				for i := s; i < e; i++ {
					rid := int(b.LoadShared(occBase + i))
					b.AddArith(1)
					if rid < 0 {
						continue
					}
					agg[t] += b.LoadGlobal(aggVecBuf, rid)
					o := b.LoadGlobal(occVecBuf, rid)
					b.AddArith(2)
					if o > max[t] {
						max[t] = o
					}
				}
			}
		} else {
			for cLo := 0; cLo < numRows; cLo += chunkCap {
				cHi := cLo + chunkCap
				if cHi > numRows {
					cHi = numRows
				}
				n := cHi - cLo
				b.StageToShared(aggVecBuf, cLo, cHi, chunkBase)
				b.StageToShared(occVecBuf, cLo, cHi, chunkBase+n)
				for t := 0; t < nTrials; t++ {
					s := int(b.LoadShared(boundBase+t)) - start
					e := int(b.LoadShared(boundBase+t+1)) - start
					for i := s; i < e; i++ {
						rid := int(b.LoadShared(occBase + i))
						b.AddArith(1)
						if rid < cLo || rid >= cHi {
							continue
						}
						agg[t] += b.LoadShared(chunkBase + (rid - cLo))
						o := b.LoadShared(chunkBase + n + (rid - cLo))
						b.AddArith(2)
						if o > max[t] {
							max[t] = o
						}
					}
				}
			}
		}
		for t := 0; t < nTrials; t++ {
			b.StoreGlobal(outAgg, lo+t, agg[t])
			b.StoreGlobal(outMax, lo+t, max[t])
		}
	}
}
