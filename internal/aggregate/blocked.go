package aggregate

import (
	"repro/internal/lossindex"
	"repro/internal/rng"
	"repro/internal/yelt"
)

// This file is the trial-blocked flat SoA kernel (KernelBlocked, the
// default): instead of driving lossindex.Flat one trial year at a time
// through runTrialFlat, runBatchBlocked processes Config.TrialBlock
// trials per pass. Blocking buys three things the single-trial kernel
// cannot have:
//
//   - The per-occurrence span resolution (Flat.Span: a rowOf probe plus
//     two offset loads) is hoisted out of the trial loop into one
//     event-major pass over the block's contiguous occurrence stream,
//     so the accumulation loops consume precomputed [lo, hi) spans.
//   - The per-trial accumulators are rows of one contiguous
//     block×NumLayers matrix, zeroed with a single bulk clear per block
//     instead of one clear per trial, and the annual-terms columns are
//     hoisted once per block.
//   - Per-trial dispatch overhead (kernel call, sampling/per-contract
//     branches, scratch setup) is paid once per block, and the gather
//     loops use length-pinned re-slicing so the compiler can prove the
//     inner adds in bounds.
//
// Bit-identity: in expected mode the inner loop is gather-adds of
// build-time constants into per-trial accumulator rows. Hoisting the
// span resolution and fusing the trial loop never moves an addition
// across trials (each trial owns its row) and never reorders an
// addition within a trial (each trial's occurrences, entries, and
// layer frames are still visited in exactly the runTrialFlat order),
// so every per-trial sum associates identically and the results are
// bit-for-bit those of KernelFlat (hence of KernelIndexed and
// LegacyLookup, pinned by the kernel-equivalence suites). Sampling
// mode stays trial-major within the block — each trial's substream
// must consume its draws in YELT order — but shares the hoisted span
// pass and column locals. Results are independent of TrialBlock.

// DefaultTrialBlock is the default trial-block size. Big enough to
// amortize per-block setup (span staging, accumulator clear, column
// hoisting) across many trials; small enough that the block's
// accumulator matrix (TrialBlock × NumLayers floats) and staged spans
// stay cache-resident on typical books.
const DefaultTrialBlock = 64

func (cfg Config) trialBlock() int {
	if cfg.TrialBlock > 0 {
		return cfg.TrialBlock
	}
	return DefaultTrialBlock
}

// blockBufs returns the blocked kernel's per-block scratch: the
// block×NumLayers accumulator matrix (zeroed by the caller) and the
// span staging arrays for nOccs occurrences, grown on demand and
// reused across blocks.
func (s *trialScratch) blockBufs(cells, nOccs int) (blockAgg []float64, spanLo, spanHi []int32, spanSum []float64) {
	if cap(s.blockAgg) < cells {
		s.blockAgg = make([]float64, cells)
	}
	if cap(s.spanLo) < nOccs {
		s.spanLo = make([]int32, nOccs)
		s.spanHi = make([]int32, nOccs)
		s.spanSum = make([]float64, nOccs)
	}
	return s.blockAgg[:cells], s.spanLo[:nOccs], s.spanHi[:nOccs], s.spanSum[:nOccs]
}

// blockCABuf returns the annual stage's per-trial contract-sum
// accumulator (length = block trials), grown on demand.
func (s *trialScratch) blockCABuf(n int) []float64 {
	if cap(s.blockCA) < n {
		s.blockCA = make([]float64, n)
	}
	return s.blockCA[:n]
}

// blockPerContractBufs returns the block×numContracts per-contract
// output matrices (annual recoveries and occurrence maxima), grown on
// demand like blockBufs.
func (s *trialScratch) blockPerContractBufs(cells int) (pc, pco []float64) {
	if cap(s.blockPC) < cells {
		s.blockPC = make([]float64, cells)
		s.blockPCO = make([]float64, cells)
	}
	return s.blockPC[:cells], s.blockPCO[:cells]
}

// runBatchBlocked is runBatch's KernelBlocked body: it tiles the batch
// into TrialBlock-sized blocks and drives each through the blocked
// flat kernel. Local trial i of the batch is global trial base+i
// (fixing the RNG substream) and lands in result slot base+i-slotOff,
// exactly as in the single-trial path, so results are independent of
// both the batch and the block tiling.
func runBatchBlocked(fx *lossindex.Flat, in *Input, cfg Config, batch *yelt.Table, base int, res *Result, scratch *trialScratch, slotOff int) {
	nl := fx.NumLayers()
	nc := len(in.Portfolio.Contracts)
	block := cfg.trialBlock()
	offs := batch.Offsets
	for t0 := 0; t0 < batch.NumTrials; t0 += block {
		t1 := min(t0+block, batch.NumTrials)
		n := t1 - t0
		nOccs := int(offs[t1] - offs[t0])
		blockAgg, spanLo, spanHi, spanSum := scratch.blockBufs(n*nl, nOccs)
		for i := range blockAgg {
			blockAgg[i] = 0
		}

		var pc, pco []float64
		if res.PerContract != nil {
			pc, pco = scratch.blockPerContractBufs(n * nc)
			for i := range pc {
				pc[i] = 0
				pco[i] = 0
			}
		}
		slot := base + t0 - slotOff
		aggOut := res.Portfolio.Agg[slot : slot+n]
		occOut := res.Portfolio.OccMax[slot : slot+n]

		// Event-major span staging: one linear pass over the block's
		// contiguous occurrence stream, independent of trial boundaries —
		// the per-occurrence span work is paid here once, not inside the
		// trial loop. The dense expected path stages ExpRec-frame
		// coordinates plus the precomputed per-event occurrence sum; the
		// entry-structured paths (sampling, per-contract maxima) stage
		// entry spans.
		stream := batch.Occs[offs[t0]:offs[t1]]
		if !cfg.Sampling && pco == nil {
			stageExpSpans(stream, fx, spanLo, spanHi, spanSum)
			blockExpectedDense(batch, t0, t1, fx, nl, blockAgg, spanLo, spanHi, spanSum, occOut)
		} else {
			stageSpans(stream, fx, spanLo, spanHi)
			if cfg.Sampling {
				blockSampledOccurrences(batch, t0, t1, fx, cfg.Seed, base, nl, nc, blockAgg, spanLo, spanHi, occOut, pco)
			} else {
				blockExpectedOccurrences(batch, t0, t1, fx, nl, nc, blockAgg, spanLo, spanHi, occOut, pco)
			}
		}
		blockAnnual(fx, n, nl, blockAgg, aggOut, pc, nc, scratch.blockCABuf(n))

		if res.PerContract != nil {
			for i := 0; i < n; i++ {
				rowPC := pc[i*nc : i*nc+nc]
				rowPCO := pco[i*nc : i*nc+nc]
				for ci := 0; ci < nc; ci++ {
					res.PerContract[ci].Agg[slot+i] = rowPC[ci]
					res.PerContract[ci].OccMax[slot+i] = rowPCO[ci]
				}
			}
		}
	}
}

// stageSpans resolves the packed-entry span of every occurrence in the
// stream — the blocked kernel's event-major pre-pass.
func stageSpans(occs []yelt.Occurrence, fx *lossindex.Flat, spanLo, spanHi []int32) {
	spanLo = spanLo[:len(occs)]
	spanHi = spanHi[:len(occs)]
	for i := range occs {
		spanLo[i], spanHi[i] = fx.Span(occs[i].EventID)
	}
}

// stageExpSpans resolves, for every occurrence in the stream, the
// contiguous ExpRec frame covering the event's entries and the event's
// precomputed whole-portfolio occurrence recovery (Flat.RowSum) — the
// dense expected path's event-major pre-pass.
func stageExpSpans(occs []yelt.Occurrence, fx *lossindex.Flat, expLo, expHi []int32, occSum []float64) {
	expLo = expLo[:len(occs)]
	expHi = expHi[:len(occs)]
	occSum = occSum[:len(occs)]
	for i := range occs {
		expLo[i], expHi[i], occSum[i] = fx.ExpSpan(occs[i].EventID)
	}
}

// blockExpectedDense is the blocked expected-mode occurrence stage
// without per-contract maxima — the hot default. Because an event's
// entries are packed, their per-layer ExpRec frames concatenate into
// one contiguous run [expLo, expHi), and ExpDst gives each cell's
// destination layer slot — so the whole per-occurrence nested
// entry×layer gather collapses to one flat scatter-add loop, in
// exactly the same element order (entries ascending, layers in
// declaration order within each entry), hence bit-identical sums. The
// per-occurrence portfolio recovery is the staged build-time RowSum,
// accumulated in that same order at Flatten time.
func blockExpectedDense(b *yelt.Table, t0, t1 int, fx *lossindex.Flat, nl int, blockAgg []float64, expLo, expHi []int32, occSum, occMaxOut []float64) {
	expRec, expDst := fx.ExpRec, fx.ExpDst
	offs := b.Offsets
	streamBase := offs[t0]
	for t := t0; t < t1; t++ {
		row := blockAgg[(t-t0)*nl : (t-t0)*nl+nl]
		var occMax float64
		for o := int(offs[t] - streamBase); o < int(offs[t+1]-streamBase); o++ {
			rec := expRec[expLo[o]:expHi[o]]
			dst := expDst[expLo[o]:expHi[o]]
			dst = dst[:len(rec)]
			for j, r := range rec {
				row[dst[j]] += r
			}
			if s := occSum[o]; s > occMax {
				occMax = s
			}
		}
		occMaxOut[t-t0] = occMax
	}
}

// blockExpectedOccurrences is the blocked expected-mode occurrence
// stage: for each trial of the block, gather the pre-applied
// recoveries of its occurrences' (pre-staged) spans into the trial's
// accumulator row. The inner add loop is the same gather as
// flatExpectedOccurrences over a length-pinned destination re-slice,
// in the same order, so each row's sums associate identically.
func blockExpectedOccurrences(b *yelt.Table, t0, t1 int, fx *lossindex.Flat, nl, nc int, blockAgg []float64, spanLo, spanHi []int32, occMaxOut, pco []float64) {
	expOff, expRec, expSum := fx.ExpOff, fx.ExpRec, fx.ExpSum
	layerOff, contract := fx.LayerOff, fx.Contract
	offs := b.Offsets
	streamBase := offs[t0]
	for t := t0; t < t1; t++ {
		row := blockAgg[(t-t0)*nl : (t-t0)*nl+nl]
		var pcoRow []float64
		if pco != nil {
			pcoRow = pco[(t-t0)*nc : (t-t0)*nc+nc]
		}
		var occMax float64
		for o := int(offs[t] - streamBase); o < int(offs[t+1]-streamBase); o++ {
			var portfolioOccLoss float64
			if pcoRow == nil {
				for k := spanLo[o]; k < spanHi[o]; k++ {
					rec := expRec[expOff[k]:expOff[k+1]]
					dst := row[layerOff[k]:]
					dst = dst[:len(rec)]
					for j, r := range rec {
						dst[j] += r
					}
					portfolioOccLoss += expSum[k]
				}
			} else {
				for k := spanLo[o]; k < spanHi[o]; k++ {
					rec := expRec[expOff[k]:expOff[k+1]]
					dst := row[layerOff[k]:]
					dst = dst[:len(rec)]
					for j, r := range rec {
						dst[j] += r
					}
					s := expSum[k]
					portfolioOccLoss += s
					if ci := contract[k]; s > pcoRow[ci] {
						pcoRow[ci] = s
					}
				}
			}
			if portfolioOccLoss > occMax {
				occMax = portfolioOccLoss
			}
		}
		occMaxOut[t-t0] = occMax
	}
}

// blockSampledOccurrences is the blocked sampling-mode occurrence
// stage. Draw order is sacrosanct — each trial's substream consumes
// its beta draws in YELT occurrence order — so the walk stays
// trial-major within the block; the blocked win is the pre-staged
// spans and the hoisted plan/term columns.
func blockSampledOccurrences(b *yelt.Table, t0, t1 int, fx *lossindex.Flat, seed uint64, base, nl, nc int, blockAgg []float64, spanLo, spanHi []int32, occMaxOut, pco []float64) {
	ft := fx.Terms
	expOff, layerOff, contract := fx.ExpOff, fx.LayerOff, fx.Contract
	sampleConst, sampleA, sampleB, sampleScale := fx.SampleConst, fx.SampleA, fx.SampleB, fx.SampleScale
	occRet, occLim := ft.OccRet, ft.OccLim
	offs := b.Offsets
	streamBase := offs[t0]
	for t := t0; t < t1; t++ {
		st := rng.NewStream(seed, uint64(base+t))
		row := blockAgg[(t-t0)*nl : (t-t0)*nl+nl]
		var pcoRow []float64
		if pco != nil {
			pcoRow = pco[(t-t0)*nc : (t-t0)*nc+nc]
		}
		var occMax float64
		for o := int(offs[t] - streamBase); o < int(offs[t+1]-streamBase); o++ {
			var portfolioOccLoss float64
			for k := spanLo[o]; k < spanHi[o]; k++ {
				loss := sampleConst[k]
				if a := sampleA[k]; a > 0 {
					loss = sampleScale[k] * st.Beta(a, sampleB[k])
				}
				fb := layerOff[k]
				end := fb + (expOff[k+1] - expOff[k])
				var contractOcc float64
				for fl := fb; fl < end; fl++ {
					// Inlined FlatTerms.ApplyOccurrence, arithmetic
					// unchanged: min(max(loss-ret, 0), lim).
					var r float64
					if ret := occRet[fl]; loss > ret {
						r = loss - ret
						if lim := occLim[fl]; r > lim {
							r = lim
						}
					}
					row[fl] += r
					contractOcc += r
				}
				portfolioOccLoss += contractOcc
				if pcoRow != nil {
					if ci := contract[k]; contractOcc > pcoRow[ci] {
						pcoRow[ci] = contractOcc
					}
				}
			}
			if portfolioOccLoss > occMax {
				occMax = portfolioOccLoss
			}
		}
		occMaxOut[t-t0] = occMax
	}
}

// blockAnnual applies the annual aggregate terms to the block's
// accumulator matrix, layer-major: contract frames outer (portfolio
// order), layers within the frame next (declaration order), trials
// innermost — so each layer's terms load once per block instead of
// once per trial, and the clamp arithmetic is the inlined
// FlatTerms.ApplyAggregate: min(max(sum-ret, 0), lim) · share.
//
// The interchange is bit-identical to runTrialFlat's trial-major
// annual stage: each trial i accumulates its contract sum ca[i] over
// the frame's layers in declaration order, and its portfolio sum
// aggOut[i] over contracts in portfolio order — only independent
// trials are interleaved, never the additions within one trial.
func blockAnnual(fx *lossindex.Flat, n, nl int, blockAgg, aggOut, pc []float64, nc int, ca []float64) {
	ft := fx.Terms
	first := ft.First
	aggRet, aggLim, share := ft.AggRet, ft.AggLim, ft.Share
	for i := 0; i < n; i++ {
		aggOut[i] = 0
	}
	for ci := 0; ci+1 < len(first); ci++ {
		for i := 0; i < n; i++ {
			ca[i] = 0
		}
		for fl := first[ci]; fl < first[ci+1]; fl++ {
			ret, lim, sh := aggRet[fl], aggLim[fl], share[fl]
			idx := int(fl)
			for i := 0; i < n; i++ {
				sum := blockAgg[idx]
				idx += nl
				var r float64
				if sum > ret {
					r = sum - ret
					if r > lim {
						r = lim
					}
					r *= sh
				}
				ca[i] += r
			}
		}
		for i := 0; i < n; i++ {
			aggOut[i] += ca[i]
		}
		if pc != nil {
			for i := 0; i < n; i++ {
				pc[i*nc+ci] += ca[i]
			}
		}
	}
}
