package aggregate

import (
	"context"
	"errors"

	"repro/internal/layers"
	"repro/internal/lossindex"
	"repro/internal/rng"
	"repro/internal/yelt"
)

// runTrialReinstFlat is the flat-SoA trial kernel for the stateful
// occurrence-ordered path: one contractual year over lossindex.Flat
// and a layers.FlatYearStates. Where the indexed kernel dereferenced
// a Contract struct and walked nested [][]layers.YearState slices per
// entry, this kernel touches only contiguous arrays: the entry's
// LayerOff gather offset locates its contract's year-state frame, the
// occurrence-term recovery comes from the pre-applied ExpRec column
// (expected mode — the per-(entry, layer) value min(max(mean-ret,0),
// lim) is a build-time constant even though the *state capping* is
// not) or from the precomputed sampling plan plus the flat term
// columns (sampling mode), and annual sums accumulate into one flat
// sums vector. Occurrence order still serializes within the trial —
// that is the contractual semantics — but every memory access in the
// serial walk is now a linear-offset load.
//
// Ordering contract: identical to the indexed path in
// RunReinstatements — occurrences in YELT (day) order, entries in
// portfolio contract order within each event, layer frames in
// declaration order, state updates and draws in that exact sequence —
// so recoveries, premiums, and the annual close are bit-identical to
// the nested-slice state machine.
func runTrialReinstFlat(
	occs []yelt.Occurrence,
	fx *lossindex.Flat,
	fy *layers.FlatYearStates,
	sampling bool,
	st *rng.Stream,
	sums []float64,
) (agg, occMax, premium float64) {
	for i := range sums {
		sums[i] = 0
	}
	fy.Reset()
	ft := fx.Terms
	expOff, layerOff := fx.ExpOff, fx.LayerOff
	for _, occ := range occs {
		lo, hi := fx.Span(occ.EventID)
		var occTotal float64
		for k := lo; k < hi; k++ {
			base := layerOff[k]
			n := expOff[k+1] - expOff[k]
			if sampling {
				loss := fx.SampleConst[k]
				if a := fx.SampleA[k]; a > 0 {
					loss = fx.SampleScale[k] * st.Beta(a, fx.SampleB[k])
				}
				for fl := base; fl < base+n; fl++ {
					rcv, p := fy.Occurrence(fl, ft.ApplyOccurrence(fl, loss))
					sums[fl] += rcv
					occTotal += rcv
					premium += p
				}
			} else {
				off := expOff[k]
				for j := int32(0); j < n; j++ {
					fl := base + j
					rcv, p := fy.Occurrence(fl, fx.ExpRec[off+j])
					sums[fl] += rcv
					occTotal += rcv
					premium += p
				}
			}
		}
		if occTotal > occMax {
			occMax = occTotal
		}
	}
	// Annual close: every flat slot in frame order — the same addition
	// sequence as the nested for-ci/for-li walk.
	for fl := int32(0); fl < int32(len(sums)); fl++ {
		agg += fy.CloseYear(fl, sums[fl])
	}
	return agg, occMax, premium
}

// StandardReinstatements builds market-style terms against every
// limited layer of the portfolio: one reinstatement "at 100%"
// (PremiumRate 1) of an upfront premium quoted at a 5% rate-on-line.
// Unlimited layers get zero terms — reinstatements are meaningless
// without an occurrence limit. This is the default book the
// reinstatements engine and the CLIs run when no explicit terms are
// supplied.
func StandardReinstatements(pf *layers.Portfolio) [][]layers.ReinstatementTerms {
	out := make([][]layers.ReinstatementTerms, len(pf.Contracts))
	for ci, c := range pf.Contracts {
		out[ci] = make([]layers.ReinstatementTerms, len(c.Layers))
		for li, l := range c.Layers {
			if l.OccLimit > 0 {
				out[ci][li] = layers.ReinstatementTerms{
					Count: 1, PremiumRate: 1, UpfrontPremium: 0.05 * l.OccLimit,
				}
			}
		}
	}
	return out
}

// Reinstatements adapts the stateful occurrence-ordered path to the
// Engine interface, so the orchestration layers (core.Pipeline,
// risk.Study) and the CLIs can select it like any stateless engine.
// The per-trial premium ledger — which Result has no slot for — is
// retained on the engine (LastPremium), mirroring how Chunked exposes
// its device statistics.
type Reinstatements struct {
	// Terms are the per-contract-layer reinstatement provisions,
	// shaped like ReinstatementInput.Terms. Nil derives
	// StandardReinstatements from the input's portfolio at Run time.
	Terms [][]layers.ReinstatementTerms
	// LastPremium is the per-trial reinstatement premium of the most
	// recent Run.
	LastPremium []float64
}

// Name implements Engine.
func (*Reinstatements) Name() string { return "reinstatements" }

// Run implements Engine.
func (e *Reinstatements) Run(ctx context.Context, in *Input, cfg Config) (*Result, error) {
	if cfg.PerContract {
		// The stateful path produces no per-contract tables; refuse
		// loudly rather than return nil PerContract slots (the same
		// stance ByContract takes on sampling).
		return nil, ErrUnsupportedOnDevice // reuse the sentinel: unsupported configuration
	}
	terms := e.Terms
	if terms == nil {
		if in.Portfolio == nil {
			return nil, errors.New("aggregate: missing portfolio")
		}
		terms = StandardReinstatements(in.Portfolio)
	}
	rres, err := RunReinstatements(ctx, &ReinstatementInput{Input: in, Terms: terms}, cfg)
	if err != nil {
		return nil, err
	}
	e.LastPremium = rres.ReinstPremium
	return &Result{
		Portfolio:         rres.Portfolio,
		PeakResidentBytes: rres.PeakResidentBytes,
	}, nil
}
