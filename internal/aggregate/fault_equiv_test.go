package aggregate

import (
	"context"
	"testing"
	"time"

	"repro/internal/diskstore"
	"repro/internal/faultinject"
	"repro/internal/lossindex"
	"repro/internal/synth"
	"repro/internal/yelt"
)

// The fault-tolerance contract: a MapReduce run over a spilled source
// is bit-identical to the fault-free Sequential run under any injected
// fault plan it survives — shard-read failures recovered by map
// retries or replica failover, node kills recovered by work stealing,
// stragglers recovered by speculation. Faults may only change
// scheduling and counters, never values.

// replicatedSource spills the scenario at the given replication factor
// across 3 storage nodes and 5 shards.
func replicatedSource(t *testing.T, s *synth.Scenario, replicas int) *yelt.DiskSource {
	t.Helper()
	store, err := diskstore.Create(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := yelt.SpillReplicated(context.Background(), s.YELT, store, "yelt", 5, replicas, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFaultEquivalenceMatrix(t *testing.T) {
	s := buildScenario(t, synth.Small(71))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 43, Sampling: true, PerContract: true, Workers: 3, BatchTrials: 151}
	want, err := Sequential{}.Run(context.Background(),
		&Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	sources := map[int]*yelt.DiskSource{
		1: replicatedSource(t, s, 1),
		2: replicatedSource(t, s, 2),
	}
	cases := []struct {
		name      string
		replicas  int
		placement Placement
		speculate bool
		rules     func(ds *yelt.DiskSource) []faultinject.Rule
	}{
		{"clean/r1/affine", 1, PlaceAffine, false, nil},
		{"clean/r2/affine", 2, PlaceAffine, false, nil},
		// Every (shard, node) site's first read fails: unreplicated
		// recovery is purely the map-retry loop.
		{"first-read-fails/r1/affine", 1, PlaceAffine, false,
			func(*yelt.DiskSource) []faultinject.Rule {
				return []faultinject.Rule{faultinject.FailShardRead{
					Shard: faultinject.Any, Node: faultinject.Any, Attempts: 1,
				}}
			}},
		{"first-read-fails/r2/blind", 2, PlaceBlind, false,
			func(*yelt.DiskSource) []faultinject.Rule {
				return []faultinject.Rule{faultinject.FailShardRead{
					Shard: faultinject.Any, Node: faultinject.Any, Attempts: 1,
				}}
			}},
		// Shard 1's primary replica is dead for good: every scan of it
		// must fail over to the surviving replica.
		{"primary-dead/r2/affine", 2, PlaceAffine, false,
			func(ds *yelt.DiskSource) []faultinject.Rule {
				return []faultinject.Rule{faultinject.FailShardRead{
					Shard: 1, Node: ds.ShardNode(1), Attempts: 1 << 30,
				}}
			}},
		// Random 10% read-attempt failures over replicated shards.
		{"rate10/r2/affine", 2, PlaceAffine, false,
			func(*yelt.DiskSource) []faultinject.Rule {
				return []faultinject.Rule{faultinject.FailShardReadRate{Rate: 0.10}}
			}},
		// A node is dead on arrival; survivors steal its whole lane.
		// (Dead-on-arrival rather than after-N so the kill fires no
		// matter how fast the other lanes drain the queue.)
		{"kill/r1/affine", 1, PlaceAffine, false,
			func(*yelt.DiskSource) []faultinject.Rule {
				return []faultinject.Rule{faultinject.KillNode{Node: 2, AfterTasks: 0}}
			}},
		// An injected straggler with speculation on: the backup wins or
		// loses, the result must not care.
		{"straggler/r2/affine/spec", 2, PlaceAffine, true,
			func(*yelt.DiskSource) []faultinject.Rule {
				return []faultinject.Rule{faultinject.DelaySplit{Split: 0, Delay: 60 * time.Millisecond}}
			}},
		// Everything at once over blind placement.
		{"rate+kill/r2/blind", 2, PlaceBlind, false,
			func(*yelt.DiskSource) []faultinject.Rule {
				return []faultinject.Rule{
					faultinject.FailShardReadRate{Rate: 0.05},
					faultinject.KillNode{Node: 1, AfterTasks: 2},
				}
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := sources[tc.replicas]
			var plan *faultinject.Plan
			if tc.rules != nil {
				plan = faultinject.New(cfg.Seed, tc.rules(ds)...)
			}
			eng := MapReduce{
				SplitTrials: 200,
				MaxAttempts: 5,
				Placement:   tc.placement,
				Speculate:   tc.speculate,
				Faults:      plan,
			}
			in := &Input{Source: ds, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
			got, err := eng.Run(context.Background(), in, cfg)
			if err != nil {
				t.Fatalf("run under %s: %v", tc.name, err)
			}
			resultsBitIdentical(t, "faults/"+tc.name, want, got)
			if tc.rules != nil && plan.Injected() == 0 {
				t.Fatalf("%s: plan injected nothing — the case tests no fault path", tc.name)
			}
		})
	}
}

// The ISSUE's acceptance scenario: 10% injected shard-read failures,
// one node killed mid-job, replication r=2, speculation on — the job
// completes, its YLT is bit-identical to the fault-free Sequential
// run, and the recovery counters account the chaos.
func TestFaultAcceptanceScenario(t *testing.T) {
	s := buildScenario(t, synth.Small(73))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Seed: 47, Sampling: true, PerContract: true, Workers: 6, BatchTrials: 151}
	want, err := Sequential{}.Run(context.Background(),
		&Input{YELT: s.YELT, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := replicatedSource(t, s, 2)
	// Node 1 dies after one task start; 100-trial splits give the job
	// 20 splits, so the kill lands mid-job with plenty left to steal.
	plan, err := faultinject.Parse("rate=0.10,kill=1@1", cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	eng := MapReduce{SplitTrials: 100, MaxAttempts: 5, Speculate: true, Faults: plan}
	in := &Input{Source: ds, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
	got, err := eng.Run(context.Background(), in, cfg)
	if err != nil {
		t.Fatalf("acceptance run failed outright: %v", err)
	}
	resultsBitIdentical(t, "acceptance", want, got)
	if plan.Injected() == 0 {
		t.Fatal("plan injected no faults")
	}
	if got.ShardFailovers+got.MapRetries == 0 {
		t.Fatalf("no recovery recorded (failovers=%d retries=%d) despite %d injected faults",
			got.ShardFailovers, got.MapRetries, plan.Injected())
	}
	if got.WorkersLost == 0 {
		t.Fatal("node kill retired no workers")
	}
}

// A fault the system cannot absorb — every replica of a shard dead
// past the attempt budget — must fail the job loudly, never return
// short or wrong data.
func TestFaultUnrecoverableFailsLoudly(t *testing.T) {
	s := buildScenario(t, synth.Small(75))
	ix, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		t.Fatal(err)
	}
	ds := replicatedSource(t, s, 2)
	plan := faultinject.New(1, faultinject.FailShardRead{
		Shard: 2, Node: faultinject.Any, Attempts: 1 << 30,
	})
	eng := MapReduce{SplitTrials: 200, MaxAttempts: 3, Faults: plan}
	in := &Input{Source: ds, ELTs: s.ELTs, Portfolio: s.Portfolio, Index: ix}
	if _, err := eng.Run(context.Background(), in, Config{Seed: 3, Workers: 3, BatchTrials: 151}); err == nil {
		t.Fatal("job with an unreadable shard should fail")
	}
}
