package aggregate

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/synth"
)

// TestBatchSinkExactlyOnce pins the BatchSink contract on the engines
// that honor it: every trial is delivered exactly once, rows match
// the run's PerContract tables bit-for-bit, and a sink alone (no
// PerContract flag) still produces per-contract tables.
func TestBatchSinkExactlyOnce(t *testing.T) {
	s := buildScenario(t, synth.Small(7))
	n := s.YELT.NumTrials
	nc := len(s.Portfolio.Contracts)
	engines := []struct {
		name string
		eng  Engine
	}{
		{"sequential", Sequential{}},
		{"parallel", Parallel{}},
	}
	for _, e := range engines {
		for _, kernel := range []Kernel{KernelBlocked, KernelFlat} {
			for _, batch := range []int{37, 0} {
				var mu sync.Mutex
				seen := make([]int, n)
				type row struct{ agg, occ [][]float64 }
				rows := map[int]row{}
				cfg := Config{
					Seed:        11,
					Sampling:    true,
					Workers:     3,
					Kernel:      kernel,
					BatchTrials: batch,
					BatchSink: func(lo int, agg, occ [][]float64) {
						mu.Lock()
						defer mu.Unlock()
						for j := range agg[0] {
							seen[lo+j]++
						}
						rows[lo] = row{agg, occ}
					},
				}
				res, err := e.eng.Run(context.Background(), input(s), cfg)
				if err != nil {
					t.Fatalf("%s/%v/%d: %v", e.name, kernel, batch, err)
				}
				if res.PerContract == nil {
					t.Fatalf("%s/%v/%d: sink did not imply per-contract tables", e.name, kernel, batch)
				}
				for trial, c := range seen {
					if c != 1 {
						t.Fatalf("%s/%v/%d: trial %d delivered %d times", e.name, kernel, batch, trial, c)
					}
				}
				for lo, r := range rows {
					if len(r.agg) != nc || len(r.occ) != nc {
						t.Fatalf("%s/%v/%d: batch at %d has %d/%d contract rows", e.name, kernel, batch, lo, len(r.agg), len(r.occ))
					}
					for ci := 0; ci < nc; ci++ {
						for j := range r.agg[ci] {
							wantA := res.PerContract[ci].Agg[lo+j]
							wantO := res.PerContract[ci].OccMax[lo+j]
							if math.Float64bits(r.agg[ci][j]) != math.Float64bits(wantA) ||
								math.Float64bits(r.occ[ci][j]) != math.Float64bits(wantO) {
								t.Fatalf("%s/%v/%d: contract %d trial %d sink row differs from result table",
									e.name, kernel, batch, ci, lo+j)
							}
						}
					}
				}
			}
		}
	}
}

// TestBatchSinkClearedByMapReduce pins the replay-safety rule: the
// mapreduce engine must not feed a live sink (its failure model
// replays batches) but still produces the per-contract tables the
// sink implies, so callers can replay them afterwards.
func TestBatchSinkClearedByMapReduce(t *testing.T) {
	s := buildScenario(t, synth.Small(7))
	calls := 0
	cfg := Config{
		Seed:     11,
		Sampling: true,
		BatchSink: func(lo int, agg, occ [][]float64) {
			calls++
		},
	}
	res, err := MapReduce{}.Run(context.Background(), input(s), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("mapreduce fed a live sink %d times", calls)
	}
	if res.PerContract == nil {
		t.Fatal("mapreduce dropped the per-contract tables the sink implies")
	}
}
