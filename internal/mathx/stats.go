// Package mathx provides the numerical kernels shared across the risk
// analytics pipeline: descriptive statistics, quantiles, the standard
// normal distribution, Cholesky factorization for correlated sampling,
// histograms, and bootstrap confidence intervals.
//
// Everything here is deterministic and allocation-conscious: the hot
// paths of the aggregate-analysis engines (internal/aggregate) and the
// DFA integrator (internal/dfa) call into this package millions of
// times per simulation.
package mathx

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty input.
var ErrEmpty = errors.New("mathx: empty input")

// Sum returns the sum of xs using Kahan compensated summation, which
// keeps error bounded when accumulating millions of per-trial losses.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (denominator n-1).
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss, comp float64
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := ss + y
		comp = (t - ss) - y
		ss = t
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the minimum and maximum of xs.
// It returns (0, 0) for empty input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Skewness returns the adjusted Fisher-Pearson sample skewness.
// It returns 0 when len(xs) < 3 or the variance is 0.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return math.Sqrt(n*(n-1)) / (n - 2) * g1
}

// Kurtosis returns the sample excess kurtosis (normal = 0).
// It returns 0 when len(xs) < 4 or the variance is 0.
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return 0
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	return m4/(m2*m2) - 3
}

// Covariance returns the unbiased sample covariance of xs and ys,
// which must be the same length. It returns 0 when len(xs) < 2.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var s float64
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
// It returns 0 if either series has zero variance.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the R type-7 / Excel
// definition). xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q), nil
}

// QuantileSorted returns the q-quantile of an ascending-sorted slice
// using linear interpolation (type-7). q outside [0,1] is clamped.
// It panics on empty input: callers on the hot path are expected to
// have validated once up front.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		panic("mathx: QuantileSorted on empty slice")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	h := q * float64(n-1)
	i := int(h)
	frac := h - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// Median returns the median of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + t*(b-a) }
