package mathx

import "math"

// StdNormalCDF returns Φ(x), the standard normal cumulative
// distribution function, computed from the complementary error
// function for numerical stability in both tails.
func StdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalCDF returns the CDF of a Normal(mu, sigma) at x.
// sigma must be > 0.
func NormalCDF(x, mu, sigma float64) float64 {
	return StdNormalCDF((x - mu) / sigma)
}

// Coefficients for Acklam's rational approximation of the inverse
// standard normal CDF. Relative error is ~1.15e-9 before refinement;
// one Halley step below brings it to full double precision.
var (
	acklamA = [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	acklamB = [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	acklamC = [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	acklamD = [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
)

// StdNormalQuantile returns Φ⁻¹(p), the inverse standard normal CDF.
// It returns -Inf for p <= 0 and +Inf for p >= 1.
func StdNormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}

	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((acklamC[0]*q+acklamC[1])*q+acklamC[2])*q+acklamC[3])*q+acklamC[4])*q + acklamC[5]) /
			((((acklamD[0]*q+acklamD[1])*q+acklamD[2])*q+acklamD[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		x = (((((acklamA[0]*r+acklamA[1])*r+acklamA[2])*r+acklamA[3])*r+acklamA[4])*r + acklamA[5]) * q /
			(((((acklamB[0]*r+acklamB[1])*r+acklamB[2])*r+acklamB[3])*r+acklamB[4])*r + 1)
	}

	// One step of Halley's method against the true CDF sharpens the
	// rational approximation to machine precision.
	e := StdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// NormalQuantile returns the p-quantile of a Normal(mu, sigma).
func NormalQuantile(p, mu, sigma float64) float64 {
	return mu + sigma*StdNormalQuantile(p)
}

// StdNormalPDF returns φ(x), the standard normal density.
func StdNormalPDF(x float64) float64 {
	return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
}

// LogNormalMeanStd converts the mean and standard deviation of a
// lognormal variable into the (mu, sigma) parameters of the underlying
// normal. It is the standard parameter conversion used when calibrating
// severity distributions from an ELT's (meanLoss, sigma) columns.
func LogNormalMeanStd(mean, sd float64) (mu, sigma float64) {
	if mean <= 0 {
		return math.Inf(-1), 0
	}
	cv2 := (sd / mean) * (sd / mean)
	sigma = math.Sqrt(math.Log(1 + cv2))
	mu = math.Log(mean) - sigma*sigma/2
	return mu, sigma
}
