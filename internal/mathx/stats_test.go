package mathx

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

func TestSumKahan(t *testing.T) {
	// 0.1 added 1e6 times: naive summation drifts, Kahan should not.
	xs := make([]float64, 1_000_000)
	for i := range xs {
		xs[i] = 0.1
	}
	got := Sum(xs)
	if !almostEqual(got, 100000, 1e-6) {
		t.Fatalf("Sum = %v, want 100000 within 1e-6", got)
	}
}

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", m)
	}
	// population variance is 4; sample variance is 32/7.
	if v := Variance(xs); !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if s := StdDev(xs); !almostEqual(s, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", s)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton != 0")
	}
	if Skewness([]float64{1, 2}) != 0 {
		t.Error("Skewness of 2 elements != 0")
	}
	if Kurtosis([]float64{1, 2, 3}) != 0 {
		t.Error("Kurtosis of 3 elements != 0")
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("Quantile(nil) err = %v, want ErrEmpty", err)
	}
	lo, hi := MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("MinMax(nil) != (0,0)")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%v,%v), want (-1,7)", lo, hi)
	}
}

func TestQuantileSortedInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20}, {0.25, 17.5},
		{-0.5, 10}, {1.5, 40},
	}
	for _, c := range cases {
		if got := QuantileSorted(xs, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("QuantileSorted(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, _ := Quantile(xs, qa)
		vb, _ := Quantile(xs, qb)
		return va <= vb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Correlation(xs, ys); !almostEqual(r, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Correlation(xs, neg); !almostEqual(r, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r := Correlation(xs, flat); r != 0 {
		t.Errorf("Correlation with zero-variance series = %v, want 0", r)
	}
}

func TestSkewnessSign(t *testing.T) {
	rightTail := []float64{1, 1, 1, 2, 2, 3, 10, 30}
	if s := Skewness(rightTail); s <= 0 {
		t.Errorf("Skewness of right-tailed data = %v, want > 0", s)
	}
	symmetric := []float64{-3, -2, -1, 0, 1, 2, 3}
	if s := Skewness(symmetric); !almostEqual(s, 0, 1e-12) {
		t.Errorf("Skewness of symmetric data = %v, want 0", s)
	}
}

func TestClampLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
	if Lerp(10, 20, 0.5) != 15 {
		t.Error("Lerp broken")
	}
}

func TestCovariancePropertyBilinear(t *testing.T) {
	// Cov(a*x, y) == a * Cov(x, y) for finite inputs.
	f := func(seed uint8, a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.Abs(a) > 1e6 {
			return true
		}
		n := 16
		xs := make([]float64, n)
		ys := make([]float64, n)
		s := uint64(seed) + 1
		for i := 0; i < n; i++ {
			s = s*6364136223846793005 + 1442695040888963407
			xs[i] = float64(s%1000) / 10
			s = s*6364136223846793005 + 1442695040888963407
			ys[i] = float64(s%1000) / 10
		}
		ax := make([]float64, n)
		for i := range xs {
			ax[i] = a * xs[i]
		}
		want := a * Covariance(xs, ys)
		got := Covariance(ax, ys)
		return almostEqual(got, want, 1e-6*(1+math.Abs(want)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestP2QuantileAgainstExact(t *testing.T) {
	// Deterministic pseudo-random stream; P² should land within ~2% of
	// the exact quantile for a smooth distribution.
	const n = 50000
	xs := make([]float64, n)
	s := uint64(12345)
	est := NewP2Quantile(0.95)
	for i := 0; i < n; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		x := float64(s>>11) / float64(1<<53)
		xs[i] = x * x // skewed toward 0
		est.Add(xs[i])
	}
	sort.Float64s(xs)
	exact := QuantileSorted(xs, 0.95)
	got := est.Value()
	if math.Abs(got-exact) > 0.02*math.Max(1, exact) {
		t.Fatalf("P² estimate %v too far from exact %v", got, exact)
	}
	if est.Count() != n {
		t.Fatalf("Count = %d, want %d", est.Count(), n)
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	est := NewP2Quantile(0.5)
	est.Add(3)
	est.Add(1)
	est.Add(2)
	if v := est.Value(); !almostEqual(v, 2, 1e-12) {
		t.Fatalf("small-sample median = %v, want 2", v)
	}
	if NewP2Quantile(0.5).Value() != 0 {
		t.Fatal("empty estimator should return 0")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1) // underflow
	h.Add(10) // overflow (right edge is exclusive)
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d count = %d, want 1", i, c)
		}
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("under/overflow = %d/%d, want 1/1", h.Underflow, h.Overflow)
	}
	if h.Total != 12 {
		t.Errorf("Total = %d, want 12", h.Total)
	}
	if !almostEqual(h.BinCenter(0), 0.5, 1e-12) {
		t.Errorf("BinCenter(0) = %v", h.BinCenter(0))
	}
	if h.String() == "" {
		t.Error("String() should render bars")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	a.Add(1)
	b.Add(1)
	b.Add(9)
	if !a.Merge(b) {
		t.Fatal("Merge of compatible histograms failed")
	}
	if a.Total != 3 || a.Counts[0] != 2 || a.Counts[4] != 1 {
		t.Fatalf("merged: %+v", a)
	}
	c := NewHistogram(0, 5, 5)
	if a.Merge(c) {
		t.Fatal("Merge of incompatible histograms should report false")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi <= lo")
		}
	}()
	NewHistogram(1, 1, 4)
}
