package mathx

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values below
// Lo are counted in an underflow bucket and values >= Hi in an overflow
// bucket so no observation is silently dropped.
type Histogram struct {
	Lo, Hi    float64
	Counts    []uint64
	Underflow uint64
	Overflow  uint64
	Total     uint64
}

// NewHistogram returns a histogram with bins equal-width buckets over
// [lo, hi). It panics if bins <= 0 or hi <= lo, which are programming
// errors rather than data conditions.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("mathx: invalid histogram [%g,%g) bins=%d", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.Total++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // guard rounding at the right edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Merge adds the counts of other into h. Both histograms must have
// identical bounds and bin counts; Merge reports whether they did.
// This is the reduction step when per-worker histograms are combined.
func (h *Histogram) Merge(other *Histogram) bool {
	if other.Lo != h.Lo || other.Hi != h.Hi || len(other.Counts) != len(h.Counts) {
		return false
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.Underflow += other.Underflow
	h.Overflow += other.Overflow
	h.Total += other.Total
	return true
}

// String renders a compact ASCII bar chart, used by the CLI tools.
func (h *Histogram) String() string {
	var b strings.Builder
	var maxC uint64 = 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		bar := int(math.Round(40 * float64(c) / float64(maxC)))
		fmt.Fprintf(&b, "%12.4g |%s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	if h.Underflow > 0 {
		fmt.Fprintf(&b, "underflow: %d\n", h.Underflow)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(&b, "overflow: %d\n", h.Overflow)
	}
	return b.String()
}

// P2Quantile is the P² (Jain & Chlamtac) streaming quantile estimator.
// It maintains five markers and estimates a single quantile in O(1)
// space, which lets the pipeline report tail statistics on YELT-scale
// streams without materializing them (the paper's stage-2 data sets do
// not fit in memory at full scale).
type P2Quantile struct {
	p       float64
	n       int
	q       [5]float64 // marker heights
	pos     [5]float64 // marker positions (1-based)
	desired [5]float64
	incr    [5]float64
	init    []float64
}

// NewP2Quantile returns a streaming estimator for the p-quantile.
func NewP2Quantile(p float64) *P2Quantile {
	e := &P2Quantile{p: Clamp(p, 0, 1)}
	e.incr = [5]float64{0, e.p / 2, e.p, (1 + e.p) / 2, 1}
	return e
}

// Add feeds one observation into the estimator.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.init = append(e.init, x)
		e.n++
		if e.n == 5 {
			insertionSort(e.init)
			for i := 0; i < 5; i++ {
				e.q[i] = e.init[i]
				e.pos[i] = float64(i + 1)
			}
			e.desired = [5]float64{1, 1 + 2*e.p, 1 + 4*e.p, 3 + 2*e.p, 5}
			e.init = nil
		}
		return
	}
	e.n++

	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.desired[i] += e.incr[i]
	}

	for i := 1; i <= 3; i++ {
		d := e.desired[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *P2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. Before five samples
// have been seen it falls back to the exact small-sample quantile.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		tmp := make([]float64, len(e.init))
		copy(tmp, e.init)
		insertionSort(tmp)
		return QuantileSorted(tmp, e.p)
	}
	return e.q[2]
}

// Count returns the number of observations seen so far.
func (e *P2Quantile) Count() int { return e.n }

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
