package mathx

import "sort"

// BootstrapCI estimates a percentile-method confidence interval for an
// arbitrary statistic of xs by resampling with replacement. The
// randomness is injected as a uint64 source function so the caller
// controls determinism (internal/rng supplies it); mathx stays free of
// RNG policy.
//
// level is the two-sided confidence level, e.g. 0.95. resamples is the
// number of bootstrap replicates (1000 is typical). stat must be a pure
// function of its input.
func BootstrapCI(xs []float64, level float64, resamples int, next func() uint64, stat func([]float64) float64) (lo, hi float64, err error) {
	n := len(xs)
	if n == 0 {
		return 0, 0, ErrEmpty
	}
	level = Clamp(level, 0, 1)
	reps := make([]float64, resamples)
	buf := make([]float64, n)
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[int(next()%uint64(n))]
		}
		reps[r] = stat(buf)
	}
	sort.Float64s(reps)
	alpha := (1 - level) / 2
	return QuantileSorted(reps, alpha), QuantileSorted(reps, 1-alpha), nil
}

// StandardError returns the bootstrap standard error of a statistic,
// using the same injected randomness convention as BootstrapCI.
func StandardError(xs []float64, resamples int, next func() uint64, stat func([]float64) float64) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, ErrEmpty
	}
	reps := make([]float64, resamples)
	buf := make([]float64, n)
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[int(next()%uint64(n))]
		}
		reps[r] = stat(buf)
	}
	return StdDev(reps), nil
}
