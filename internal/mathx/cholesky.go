package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix
// is not (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("mathx: matrix not positive definite")

// Matrix is a dense row-major square matrix. It is the minimal linear
// algebra needed for Gaussian-copula correlation in the DFA stage; a
// full BLAS is deliberately out of scope.
type Matrix struct {
	N    int
	Data []float64 // len N*N, row-major
}

// NewMatrix returns an N×N zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Identity returns the N×N identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// CorrelationMatrix builds an N×N matrix with 1 on the diagonal and
// rho everywhere else (a one-factor equicorrelation structure, the
// standard first-order model for dependency between risk classes).
// It returns an error if rho is outside the positive-definite range
// (-1/(n-1), 1).
func CorrelationMatrix(n int, rho float64) (*Matrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mathx: CorrelationMatrix size %d", n)
	}
	if n > 1 && (rho <= -1/float64(n-1) || rho >= 1) {
		return nil, fmt.Errorf("mathx: equicorrelation rho=%g not positive definite for n=%d", rho, n)
	}
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				m.Set(i, j, 1)
			} else {
				m.Set(i, j, rho)
			}
		}
	}
	return m, nil
}

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ.
// A must be symmetric positive definite; the strictly upper triangle
// of A is ignored. The returned matrix has zeros above the diagonal.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.N
	l := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskyJittered is Cholesky with diagonal jitter fallback: if A is
// not positive definite (e.g. an empirical correlation matrix estimated
// from few samples), progressively larger multiples of the identity are
// added until factorization succeeds. The jitter used is returned so
// callers can report how far the matrix was from PD.
func CholeskyJittered(a *Matrix, maxTries int) (l *Matrix, jitter float64, err error) {
	l, err = Cholesky(a)
	if err == nil {
		return l, 0, nil
	}
	jitter = 1e-10
	for try := 0; try < maxTries; try++ {
		aj := NewMatrix(a.N)
		copy(aj.Data, a.Data)
		for i := 0; i < a.N; i++ {
			aj.Set(i, i, aj.At(i, i)+jitter)
		}
		if l, err = Cholesky(aj); err == nil {
			return l, jitter, nil
		}
		jitter *= 10
	}
	return nil, jitter, ErrNotPositiveDefinite
}

// MulVec computes y = M·x. x must have length M.N.
func (m *Matrix) MulVec(x []float64) []float64 {
	y := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		var s float64
		row := m.Data[i*m.N : (i+1)*m.N]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// LowerMulVec computes y = L·x exploiting lower-triangular structure,
// touching only j <= i. This is the per-sample hot path when drawing
// correlated normals in the DFA simulator.
func (m *Matrix) LowerMulVec(x, y []float64) {
	for i := 0; i < m.N; i++ {
		var s float64
		row := m.Data[i*m.N : i*m.N+i+1]
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}
