package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStdNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := StdNormalCDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Φ(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestStdNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.01, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1 - 1e-9} {
		x := StdNormalQuantile(p)
		back := StdNormalCDF(x)
		if math.Abs(back-p) > 1e-10*math.Max(1, 1/p) && math.Abs(back-p) > 1e-12 {
			t.Errorf("Φ(Φ⁻¹(%v)) = %v", p, back)
		}
	}
}

func TestStdNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(StdNormalQuantile(0), -1) {
		t.Error("Φ⁻¹(0) should be -Inf")
	}
	if !math.IsInf(StdNormalQuantile(1), 1) {
		t.Error("Φ⁻¹(1) should be +Inf")
	}
	if q := StdNormalQuantile(0.5); !almostEqual(q, 0, 1e-14) {
		t.Errorf("Φ⁻¹(0.5) = %v, want 0", q)
	}
	// Known value: Φ⁻¹(0.975) ≈ 1.959964
	if q := StdNormalQuantile(0.975); !almostEqual(q, 1.959963984540054, 1e-9) {
		t.Errorf("Φ⁻¹(0.975) = %v", q)
	}
}

func TestStdNormalQuantileMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa == 0 || pb == 0 || pa == 1 || pb == 1 {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return StdNormalQuantile(pa) <= StdNormalQuantile(pb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalCDFQuantileShifted(t *testing.T) {
	mu, sigma := 100.0, 15.0
	if got := NormalCDF(100, mu, sigma); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("NormalCDF(mu) = %v", got)
	}
	x := NormalQuantile(0.8, mu, sigma)
	if got := NormalCDF(x, mu, sigma); !almostEqual(got, 0.8, 1e-9) {
		t.Errorf("round trip = %v, want 0.8", got)
	}
}

func TestStdNormalPDF(t *testing.T) {
	if got := StdNormalPDF(0); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Errorf("φ(0) = %v", got)
	}
	if StdNormalPDF(3) >= StdNormalPDF(0) {
		t.Error("PDF should decay away from 0")
	}
}

func TestLogNormalMeanStd(t *testing.T) {
	mean, sd := 1000.0, 500.0
	mu, sigma := LogNormalMeanStd(mean, sd)
	// Moments of LogNormal(mu, sigma): E = exp(mu + sigma²/2),
	// Var = (exp(sigma²)-1)·exp(2mu+sigma²).
	gotMean := math.Exp(mu + sigma*sigma/2)
	gotVar := (math.Exp(sigma*sigma) - 1) * math.Exp(2*mu+sigma*sigma)
	if !almostEqual(gotMean, mean, 1e-9*mean) {
		t.Errorf("recovered mean %v, want %v", gotMean, mean)
	}
	if !almostEqual(math.Sqrt(gotVar), sd, 1e-9*sd) {
		t.Errorf("recovered sd %v, want %v", math.Sqrt(gotVar), sd)
	}
	if mu, _ := LogNormalMeanStd(-1, 1); !math.IsInf(mu, -1) {
		t.Error("non-positive mean should yield -Inf mu")
	}
}

func TestCholeskyKnown(t *testing.T) {
	a := NewMatrix(3)
	// A = L·Lᵀ with L = [[2,0,0],[6,1,0],[-8,5,3]]
	vals := [][]float64{
		{4, 12, -16},
		{12, 37, -43},
		{-16, -43, 98},
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, vals[i][j])
		}
	}
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0, 0}, {6, 1, 0}, {-8, 5, 3}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(l.At(i, j), want[i][j], 1e-12) {
				t.Errorf("L[%d][%d] = %v, want %v", i, j, l.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if _, jitter, err := CholeskyJittered(a, 3); err == nil {
		t.Fatalf("strongly indefinite matrix should fail even with small jitter %v", jitter)
	}
}

func TestCholeskyJitteredRecoversSemiDefinite(t *testing.T) {
	// Rank-deficient PSD matrix: ones everywhere (rank 1).
	a := NewMatrix(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, 1)
		}
	}
	l, jitter, err := CholeskyJittered(a, 12)
	if err != nil {
		t.Fatal(err)
	}
	if jitter <= 0 {
		t.Error("expected nonzero jitter for PSD matrix")
	}
	if l.At(0, 0) <= 0 {
		t.Error("factor should have positive diagonal")
	}
}

func TestCorrelationMatrixValid(t *testing.T) {
	m, err := CorrelationMatrix(4, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(0, 1) != 0.3 {
		t.Fatal("wrong structure")
	}
	if _, err := Cholesky(m); err != nil {
		t.Fatalf("equicorrelation 0.3 should be PD: %v", err)
	}
	if _, err := CorrelationMatrix(4, 1.0); err == nil {
		t.Error("rho=1 should be rejected")
	}
	if _, err := CorrelationMatrix(4, -0.5); err == nil {
		t.Error("rho=-0.5 with n=4 should be rejected (limit -1/3)")
	}
	if _, err := CorrelationMatrix(0, 0); err == nil {
		t.Error("n=0 should be rejected")
	}
}

func TestLowerMulVecMatchesMulVec(t *testing.T) {
	m, _ := CorrelationMatrix(5, 0.4)
	l, err := Cholesky(m)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 3, 0.5, 4}
	want := l.MulVec(x)
	got := make([]float64, 5)
	l.LowerMulVec(x, got)
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("component %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCholeskyReconstructionProperty(t *testing.T) {
	// For random SPD matrices A = B·Bᵀ + n·I, L·Lᵀ must reconstruct A.
	f := func(seed uint8) bool {
		n := 4
		s := uint64(seed)*2654435761 + 1
		b := NewMatrix(n)
		for i := range b.Data {
			s = s*6364136223846793005 + 1442695040888963407
			b.Data[i] = float64(int64(s%2000)-1000) / 500
		}
		a := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var v float64
				for k := 0; k < n; k++ {
					v += b.At(i, k) * b.At(j, k)
				}
				if i == j {
					v += float64(n)
				}
				a.Set(i, j, v)
			}
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var v float64
				for k := 0; k < n; k++ {
					v += l.At(i, k) * l.At(j, k)
				}
				if !almostEqual(v, a.At(i, j), 1e-8*(1+math.Abs(a.At(i, j)))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(3)
	x := []float64{1, 2, 3}
	y := id.MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("I·x != x: %v", y)
		}
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := uint64(7)
	next := func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s
	}
	lo, hi, err := BootstrapCI(xs, 0.95, 500, next, Mean)
	if err != nil {
		t.Fatal(err)
	}
	trueMean := Mean(xs)
	if lo >= hi {
		t.Fatalf("lo %v >= hi %v", lo, hi)
	}
	if trueMean < lo || trueMean > hi {
		t.Fatalf("true mean %v outside CI [%v, %v]", trueMean, lo, hi)
	}
	if _, _, err := BootstrapCI(nil, 0.95, 10, next, Mean); err != ErrEmpty {
		t.Fatal("empty input must error")
	}
	se, err := StandardError(xs, 300, next, Mean)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic SE of the mean: sd/sqrt(n) ≈ 57.88/14.14 ≈ 4.09.
	if se < 2 || se > 7 {
		t.Fatalf("bootstrap SE = %v, expected near 4.1", se)
	}
	if _, err := StandardError(nil, 10, next, Mean); err != ErrEmpty {
		t.Fatal("empty input must error")
	}
}
