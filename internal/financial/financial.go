// Package financial implements the third catastrophe-model module from
// §II of the paper: turning damage into "the resultant financial
// loss". It applies primary-insurance policy terms (deductible, limit,
// coinsurance share) to ground-up losses; reinsurance-layer terms live
// in internal/layers because they apply at a different pipeline stage.
package financial

import (
	"errors"
	"fmt"
)

// ErrInvalidTerms is returned by Validate for inconsistent terms.
var ErrInvalidTerms = errors.New("financial: invalid policy terms")

// Terms are primary policy conditions applied per event per interest.
type Terms struct {
	// Deductible is retained by the insured before the policy pays.
	Deductible float64
	// Limit caps the policy payout per event; 0 means unlimited.
	Limit float64
	// Share is the insurer's participation in the loss after
	// deductible and limit, in (0, 1]. 0 is normalized to 1.
	Share float64
}

// Validate reports whether the terms are internally consistent.
func (t Terms) Validate() error {
	if t.Deductible < 0 {
		return fmt.Errorf("%w: negative deductible %g", ErrInvalidTerms, t.Deductible)
	}
	if t.Limit < 0 {
		return fmt.Errorf("%w: negative limit %g", ErrInvalidTerms, t.Limit)
	}
	if t.Share < 0 || t.Share > 1 {
		return fmt.Errorf("%w: share %g outside [0,1]", ErrInvalidTerms, t.Share)
	}
	return nil
}

// Apply converts a ground-up loss to the insurer's gross loss:
//
//	gross = min(max(gu - deductible, 0), limit) · share
//
// with limit 0 treated as unlimited and share 0 as full participation.
func (t Terms) Apply(groundUp float64) float64 {
	if groundUp <= 0 {
		return 0
	}
	l := groundUp - t.Deductible
	if l <= 0 {
		return 0
	}
	if t.Limit > 0 && l > t.Limit {
		l = t.Limit
	}
	share := t.Share
	if share == 0 {
		share = 1
	}
	return l * share
}

// ApplyMoments propagates (mean, sd) loss moments through the terms
// using the piecewise-linear transform evaluated at the mean, with the
// slope damping the sd. This is the cheap moment transform ELT
// construction uses: exact for losses that stay inside one linear
// segment, and a documented approximation at the kinks (deductible
// attachment and limit exhaustion), where it errs conservative.
func (t Terms) ApplyMoments(mean, sd float64) (gMean, gSD float64) {
	gMean = t.Apply(mean)
	if gMean <= 0 {
		// Below attachment in expectation: some tail still pierces the
		// deductible; keep a fraction of the sd as residual risk.
		if sd > 0 && mean > 0 && mean+2*sd > t.Deductible {
			share := t.Share
			if share == 0 {
				share = 1
			}
			return 0, sd * 0.25 * share
		}
		return 0, 0
	}
	share := t.Share
	if share == 0 {
		share = 1
	}
	slope := share
	if t.Limit > 0 && mean-t.Deductible >= t.Limit {
		// Limit exhausted at the mean: variation mostly doesn't change
		// the payout anymore.
		slope = share * 0.1
	}
	return gMean, sd * slope
}

// StandardResidential returns typical personal-lines terms: a small
// deductible, no limit beyond value, full participation.
func StandardResidential(value float64) Terms {
	return Terms{Deductible: 0.01 * value, Limit: 0, Share: 1}
}

// StandardCommercial returns typical commercial terms with a
// percentage deductible and a coinsurance share.
func StandardCommercial(value float64) Terms {
	return Terms{Deductible: 0.05 * value, Limit: 0.8 * value, Share: 0.9}
}
