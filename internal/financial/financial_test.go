package financial

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestApplyKnownCases(t *testing.T) {
	terms := Terms{Deductible: 100, Limit: 500, Share: 0.5}
	cases := []struct{ gu, want float64 }{
		{0, 0},
		{-10, 0},
		{50, 0},    // below deductible
		{100, 0},   // exactly deductible
		{300, 100}, // (300-100)*0.5
		{600, 250}, // limited: 500*0.5
		{10000, 250},
	}
	for _, c := range cases {
		if got := terms.Apply(c.gu); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Apply(%v) = %v, want %v", c.gu, got, c.want)
		}
	}
}

func TestApplyDefaults(t *testing.T) {
	// Zero limit = unlimited; zero share = full participation.
	terms := Terms{Deductible: 10}
	if got := terms.Apply(110); got != 100 {
		t.Fatalf("Apply = %v, want 100", got)
	}
}

func TestApplyMonotoneProperty(t *testing.T) {
	f := func(dRaw, lRaw, sRaw uint16, g1Raw, g2Raw uint32) bool {
		terms := Terms{
			Deductible: float64(dRaw),
			Limit:      float64(lRaw),
			Share:      float64(sRaw%101) / 100,
		}
		g1 := float64(g1Raw % 1_000_000)
		g2 := float64(g2Raw % 1_000_000)
		if g1 > g2 {
			g1, g2 = g2, g1
		}
		return terms.Apply(g1) <= terms.Apply(g2)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestApplyDeductibleMonotoneProperty(t *testing.T) {
	// More deductible never increases the gross loss.
	f := func(d1Raw, d2Raw uint16, guRaw uint32) bool {
		d1, d2 := float64(d1Raw), float64(d2Raw)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		gu := float64(guRaw % 1_000_000)
		a := Terms{Deductible: d1}.Apply(gu)
		b := Terms{Deductible: d2}.Apply(gu)
		return b <= a+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestApplyBoundedByLimitShare(t *testing.T) {
	f := func(guRaw uint32) bool {
		terms := Terms{Deductible: 50, Limit: 1000, Share: 0.7}
		got := terms.Apply(float64(guRaw))
		return got >= 0 && got <= 700+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	good := []Terms{{}, {Deductible: 1, Limit: 2, Share: 0.5}, {Share: 1}}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", g, err)
		}
	}
	bad := []Terms{{Deductible: -1}, {Limit: -5}, {Share: 1.5}, {Share: -0.1}}
	for _, b := range bad {
		if err := b.Validate(); !errors.Is(err, ErrInvalidTerms) {
			t.Errorf("Validate(%+v) = %v, want ErrInvalidTerms", b, err)
		}
	}
}

func TestApplyMomentsInsideLinearSegment(t *testing.T) {
	terms := Terms{Deductible: 100, Limit: 10_000, Share: 0.8}
	mean, sd := terms.ApplyMoments(1100, 200)
	if math.Abs(mean-800) > 1e-9 { // (1100-100)*0.8
		t.Fatalf("mean = %v, want 800", mean)
	}
	if math.Abs(sd-160) > 1e-9 { // 200*0.8
		t.Fatalf("sd = %v, want 160", sd)
	}
}

func TestApplyMomentsBelowAttachment(t *testing.T) {
	terms := Terms{Deductible: 1000}
	mean, sd := terms.ApplyMoments(500, 400) // tail pierces deductible
	if mean != 0 {
		t.Fatalf("mean = %v, want 0", mean)
	}
	if sd <= 0 {
		t.Fatal("expected residual sd when tail pierces the deductible")
	}
	mean, sd = terms.ApplyMoments(100, 10) // tail nowhere near
	if mean != 0 || sd != 0 {
		t.Fatalf("deep below attachment: (%v, %v), want (0, 0)", mean, sd)
	}
}

func TestApplyMomentsLimitExhausted(t *testing.T) {
	terms := Terms{Deductible: 0, Limit: 1000, Share: 1}
	_, sdInside := terms.ApplyMoments(500, 100)
	_, sdExhausted := terms.ApplyMoments(5000, 100)
	if sdExhausted >= sdInside {
		t.Fatalf("sd at exhausted limit (%v) should be damped vs inside (%v)", sdExhausted, sdInside)
	}
}

func TestStandardTerms(t *testing.T) {
	res := StandardResidential(1_000_000)
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Deductible != 10_000 {
		t.Fatalf("residential deductible = %v", res.Deductible)
	}
	com := StandardCommercial(1_000_000)
	if err := com.Validate(); err != nil {
		t.Fatal(err)
	}
	if com.Limit != 800_000 || com.Share != 0.9 {
		t.Fatalf("commercial terms = %+v", com)
	}
}
