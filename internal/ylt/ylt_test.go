package ylt

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	a := New("x", 10)
	if a.NumTrials() != 10 || !a.HasOccurrence() {
		t.Fatal("New shape wrong")
	}
	b := NewAggOnly("y", 5)
	if b.NumTrials() != 5 || b.HasOccurrence() {
		t.Fatal("NewAggOnly shape wrong")
	}
}

func TestMeanStd(t *testing.T) {
	a := New("x", 4)
	copy(a.Agg, []float64{1, 2, 3, 4})
	if a.Mean() != 2.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if math.Abs(a.StdDev()-math.Sqrt(5.0/3.0)) > 1e-12 {
		t.Fatalf("StdDev = %v", a.StdDev())
	}
}

func TestScale(t *testing.T) {
	a := New("x", 2)
	copy(a.Agg, []float64{1, 2})
	copy(a.OccMax, []float64{3, 4})
	a.Scale(10)
	if a.Agg[1] != 20 || a.OccMax[0] != 30 {
		t.Fatal("Scale broken")
	}
}

func TestCombineAlignedSum(t *testing.T) {
	a := New("a", 3)
	copy(a.Agg, []float64{1, 2, 3})
	copy(a.OccMax, []float64{5, 1, 2})
	b := New("b", 3)
	copy(b.Agg, []float64{10, 20, 30})
	copy(b.OccMax, []float64{4, 6, 1})
	c, err := Combine("c", a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantAgg := []float64{11, 22, 33}
	wantMax := []float64{5, 6, 2}
	for i := range wantAgg {
		if c.Agg[i] != wantAgg[i] {
			t.Fatalf("Agg[%d] = %v", i, c.Agg[i])
		}
		if c.OccMax[i] != wantMax[i] {
			t.Fatalf("OccMax[%d] = %v", i, c.OccMax[i])
		}
	}
}

func TestCombineMismatch(t *testing.T) {
	a := New("a", 3)
	b := New("b", 4)
	if _, err := Combine("c", a, b); !errors.Is(err, ErrTrialMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Combine("c"); err == nil {
		t.Fatal("empty combine should error")
	}
}

func TestCombineRejectsMixedOccurrence(t *testing.T) {
	a := New("a", 2)
	copy(a.Agg, []float64{1, 2})
	copy(a.OccMax, []float64{3, 4})
	b := NewAggOnly("b", 2)
	copy(b.Agg, []float64{10, 20})
	if _, err := Combine("c", a, b); !errors.Is(err, ErrOccurrenceMismatch) {
		t.Fatalf("mixed combine: err = %v, want ErrOccurrenceMismatch", err)
	}
	// Uniform agg-only inputs are still fine (DFA-style tables).
	c, err := Combine("c", b, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.HasOccurrence() || c.Agg[1] != 40 {
		t.Fatalf("agg-only combine wrong: occ=%v agg=%v", c.HasOccurrence(), c.Agg)
	}
}

func TestCombineAggOnlyOptIn(t *testing.T) {
	a := New("a", 2)
	copy(a.Agg, []float64{1, 2})
	copy(a.OccMax, []float64{3, 4})
	b := NewAggOnly("b", 2)
	copy(b.Agg, []float64{10, 20})
	c, err := CombineAggOnly("c", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.HasOccurrence() {
		t.Fatal("CombineAggOnly must drop occurrence structure")
	}
	if c.Agg[0] != 11 || c.Agg[1] != 22 {
		t.Fatalf("Agg = %v", c.Agg)
	}
	if _, err := CombineAggOnly("c", a, New("d", 3)); !errors.Is(err, ErrTrialMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := CombineAggOnly("c"); err == nil {
		t.Fatal("empty combine should error")
	}
}

func TestCombineCommutativeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		mk := func(vals []float64, name string) *Table {
			t := New(name, n)
			copy(t.Agg, vals[:n])
			copy(t.OccMax, vals[:n])
			return t
		}
		for _, v := range append(xs[:n], ys[:n]...) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		ab, err1 := Combine("ab", mk(xs, "a"), mk(ys, "b"))
		ba, err2 := Combine("ba", mk(ys, "b"), mk(xs, "a"))
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if math.Abs(ab.Agg[i]-ba.Agg[i]) > 1e-9*(1+math.Abs(ab.Agg[i])) {
				return false
			}
			if ab.OccMax[i] != ba.OccMax[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	a := New("portfolio-α", 100)
	for i := range a.Agg {
		a.Agg[i] = float64(i) * 1.5
		a.OccMax[i] = float64(i)
	}
	var buf bytes.Buffer
	n, err := a.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d, wrote %d", n, buf.Len())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != a.Name || got.NumTrials() != 100 || !got.HasOccurrence() {
		t.Fatal("header mismatch")
	}
	for i := range a.Agg {
		if got.Agg[i] != a.Agg[i] || got.OccMax[i] != a.OccMax[i] {
			t.Fatalf("trial %d mismatch", i)
		}
	}
}

func TestCodecAggOnly(t *testing.T) {
	a := NewAggOnly("inv", 10)
	for i := range a.Agg {
		a.Agg[i] = -float64(i) // investment returns can be negative
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.HasOccurrence() {
		t.Fatal("agg-only flag lost")
	}
	if got.Agg[9] != -9 {
		t.Fatal("negative values mangled")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("BAD!aaaaaaaaaaaa"))); err == nil {
		t.Fatal("bad magic should error")
	}
	a := New("x", 5)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-4])); err == nil {
		t.Fatal("truncation should error")
	}
}

func TestSizeBytes(t *testing.T) {
	a := New("xy", 10)
	if a.SizeBytes() != 16+2+160 {
		t.Fatalf("SizeBytes = %d", a.SizeBytes())
	}
	b := NewAggOnly("xy", 10)
	if b.SizeBytes() != 16+2+80 {
		t.Fatalf("agg-only SizeBytes = %d", b.SizeBytes())
	}
}
