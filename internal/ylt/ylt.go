// Package ylt implements the Year-Loss Table — the output of stage-2
// aggregate analysis and the input to stage-3 DFA (§II): one loss per
// pre-simulated trial year. Because every YLT produced from the same
// YELT indexes trials identically, YLTs combine by aligned per-trial
// addition, which preserves the dependency structure induced by shared
// catastrophe years ("a consistent lens through which to view
// results").
package ylt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/mathx"
)

// Table is a Year-Loss Table. Agg holds the annual aggregate loss per
// trial. OccMax optionally holds the largest single-occurrence loss
// per trial, which drives occurrence-basis metrics (OEP/PML); it may
// be nil for YLTs where per-occurrence structure does not exist (e.g.
// investment risk in DFA).
type Table struct {
	Name   string
	Agg    []float64
	OccMax []float64
}

// New returns a zero-filled YLT with n trials, with occurrence data.
func New(name string, n int) *Table {
	return &Table{Name: name, Agg: make([]float64, n), OccMax: make([]float64, n)}
}

// NewAggOnly returns a zero-filled YLT without occurrence structure.
func NewAggOnly(name string, n int) *Table {
	return &Table{Name: name, Agg: make([]float64, n)}
}

// NumTrials returns the number of trial years.
func (t *Table) NumTrials() int { return len(t.Agg) }

// HasOccurrence reports whether per-occurrence maxima are tracked.
func (t *Table) HasOccurrence() bool { return t.OccMax != nil }

// Mean returns the average annual loss (the AAL).
func (t *Table) Mean() float64 { return mathx.Mean(t.Agg) }

// StdDev returns the standard deviation of annual losses.
func (t *Table) StdDev() float64 { return mathx.StdDev(t.Agg) }

// Scale multiplies all losses by f (e.g. currency or share scaling).
func (t *Table) Scale(f float64) {
	for i := range t.Agg {
		t.Agg[i] *= f
	}
	for i := range t.OccMax {
		t.OccMax[i] *= f
	}
}

// EntryBytes is the encoded footprint per trial (one float64 for Agg;
// occurrence tables carry a second).
const EntryBytes = 8

// SizeBytes returns the encoded size of the table.
func (t *Table) SizeBytes() int64 {
	n := int64(len(t.Agg)) * EntryBytes
	if t.OccMax != nil {
		n += int64(len(t.OccMax)) * EntryBytes
	}
	return 16 + int64(len(t.Name)) + n
}

// ErrTrialMismatch is returned when combining tables with different
// trial counts: aligned addition is only meaningful over the same
// pre-simulated years.
var ErrTrialMismatch = errors.New("ylt: trial count mismatch")

// ErrOccurrenceMismatch is returned by Combine when the inputs mix
// occurrence-bearing and aggregate-only tables. Silently dropping the
// OccMax columns (the old behaviour) made occurrence metrics vanish
// from a combined table depending on which members happened to be in
// it; callers that genuinely want an aggregate-only combination of
// mixed inputs must opt in via CombineAggOnly.
var ErrOccurrenceMismatch = errors.New("ylt: occurrence coverage mismatch")

// Combine returns the aligned per-trial sum of the given tables. For
// OccMax the element-wise maximum of the inputs is used — a documented
// lower bound on the true combined occurrence maximum (exact
// combination would need event-level detail that the YLT, by design,
// no longer carries). The inputs must agree on occurrence coverage:
// all carry OccMax (result does too) or none do (result is
// aggregate-only). Mixed coverage returns ErrOccurrenceMismatch; use
// CombineAggOnly to deliberately discard occurrence structure.
func Combine(name string, tables ...*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, errors.New("ylt: nothing to combine")
	}
	n := tables[0].NumTrials()
	withOcc := 0
	for _, t := range tables {
		if t.NumTrials() != n {
			return nil, fmt.Errorf("%w: %d vs %d", ErrTrialMismatch, t.NumTrials(), n)
		}
		if t.HasOccurrence() {
			withOcc++
		}
	}
	if withOcc != 0 && withOcc != len(tables) {
		return nil, fmt.Errorf("%w: %d of %d tables carry occurrence data", ErrOccurrenceMismatch, withOcc, len(tables))
	}
	occ := withOcc == len(tables)
	var out *Table
	if occ {
		out = New(name, n)
	} else {
		out = NewAggOnly(name, n)
	}
	for _, t := range tables {
		for i, v := range t.Agg {
			out.Agg[i] += v
		}
		if occ {
			for i, v := range t.OccMax {
				if v > out.OccMax[i] {
					out.OccMax[i] = v
				}
			}
		}
	}
	return out, nil
}

// CombineAggOnly returns the aligned per-trial sum of the given
// tables as an aggregate-only YLT, regardless of the inputs'
// occurrence coverage. This is the explicit opt-in for mixed inputs:
// occurrence maxima, where present, are deliberately dropped (an
// occurrence basis over a partial member set would be misleading).
func CombineAggOnly(name string, tables ...*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, errors.New("ylt: nothing to combine")
	}
	n := tables[0].NumTrials()
	for _, t := range tables {
		if t.NumTrials() != n {
			return nil, fmt.Errorf("%w: %d vs %d", ErrTrialMismatch, t.NumTrials(), n)
		}
	}
	out := NewAggOnly(name, n)
	for _, t := range tables {
		for i, v := range t.Agg {
			out.Agg[i] += v
		}
	}
	return out, nil
}

// --- binary codec ---

var magic = [4]byte{'Y', 'L', 'T', '1'}

// ErrBadFormat reports a malformed serialized table.
var ErrBadFormat = errors.New("ylt: bad format")

// WriteTo serializes the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var written int64
	if _, err := bw.Write(magic[:]); err != nil {
		return written, err
	}
	written += 4
	nameBytes := []byte(t.Name)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(nameBytes)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(t.Agg)))
	flags := uint32(0)
	if t.OccMax != nil {
		flags = 1
	}
	binary.LittleEndian.PutUint32(hdr[8:12], flags)
	if _, err := bw.Write(hdr[:]); err != nil {
		return written, err
	}
	written += 12
	if _, err := bw.Write(nameBytes); err != nil {
		return written, err
	}
	written += int64(len(nameBytes))
	var u8 [8]byte
	writeF := func(xs []float64) error {
		for _, x := range xs {
			binary.LittleEndian.PutUint64(u8[:], math.Float64bits(x))
			if _, err := bw.Write(u8[:]); err != nil {
				return err
			}
			written += 8
		}
		return nil
	}
	if err := writeF(t.Agg); err != nil {
		return written, err
	}
	if t.OccMax != nil {
		if err := writeF(t.OccMax); err != nil {
			return written, err
		}
	}
	return written, bw.Flush()
}

// Read deserializes a table written by WriteTo.
func Read(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("ylt: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("ylt: reading header: %w", err)
	}
	nameLen := binary.LittleEndian.Uint32(hdr[0:4])
	n := binary.LittleEndian.Uint32(hdr[4:8])
	flags := binary.LittleEndian.Uint32(hdr[8:12])
	const maxTrials = 1 << 28
	if nameLen > 1<<16 || n > maxTrials {
		return nil, fmt.Errorf("%w: name %d trials %d", ErrBadFormat, nameLen, n)
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return nil, fmt.Errorf("ylt: reading name: %w", err)
	}
	t := &Table{Name: string(nameBytes), Agg: make([]float64, n)}
	var u8 [8]byte
	readF := func(xs []float64) error {
		for i := range xs {
			if _, err := io.ReadFull(br, u8[:]); err != nil {
				return err
			}
			xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(u8[:]))
		}
		return nil
	}
	if err := readF(t.Agg); err != nil {
		return nil, fmt.Errorf("ylt: reading agg: %w", err)
	}
	if flags&1 != 0 {
		t.OccMax = make([]float64, n)
		if err := readF(t.OccMax); err != nil {
			return nil, fmt.Errorf("ylt: reading occmax: %w", err)
		}
	}
	return t, nil
}
