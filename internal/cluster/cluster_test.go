package cluster

import (
	"math"
	"testing"
)

func TestSimulateStaticSmallFleet(t *testing.T) {
	phases := []Phase{
		{Name: "a", Work: 100, MaxParallelism: 10},
		{Name: "b", Work: 1000, MaxParallelism: 100},
	}
	res, err := Simulate(phases, Static{N: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Phase a: 100/10 = 10s; phase b capped at 10 procs: 100s.
	if math.Abs(res.Makespan-110) > 1e-9 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
	// Fully utilized: allocation == busy in both phases.
	if math.Abs(res.Utilization-1) > 1e-9 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
}

func TestSimulateStaticOverProvisioned(t *testing.T) {
	phases := PipelinePhases(1000)
	// A fleet sized for the stage-2 peak idles through stages 1 and 3.
	res, err := Simulate(phases, Static{N: 5000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization > 0.9 {
		t.Fatalf("peak-sized static fleet should waste capacity, utilization = %v", res.Utilization)
	}
	elastic, err := Simulate(phases, Elastic{Max: 5000}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(elastic.Utilization-1) > 1e-9 {
		t.Fatalf("elastic utilization = %v, want 1", elastic.Utilization)
	}
	// Same makespan (both run each phase at its ceiling), but the
	// static fleet pays for idle processors.
	if math.Abs(elastic.Makespan-res.Makespan) > 1e-9 {
		t.Fatalf("makespans differ: %v vs %v", elastic.Makespan, res.Makespan)
	}
	if elastic.AllocatedSecs >= res.AllocatedSecs {
		t.Fatalf("elastic bill %v should be below static %v", elastic.AllocatedSecs, res.AllocatedSecs)
	}
}

func TestElasticCap(t *testing.T) {
	phases := []Phase{{Name: "x", Work: 100, MaxParallelism: 1000}}
	res, err := Simulate(phases, Elastic{Max: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Fatalf("capped elastic makespan = %v", res.Makespan)
	}
}

func TestTimelineSampling(t *testing.T) {
	phases := []Phase{
		{Name: "a", Work: 10, MaxParallelism: 1},
		{Name: "b", Work: 10, MaxParallelism: 2},
	}
	res, err := Simulate(phases, Elastic{Max: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Phase a: 10s at 1 proc; phase b: 5s at 2 procs. Samples at t=0..14.
	if len(res.Timeline) != 15 {
		t.Fatalf("timeline samples = %d", len(res.Timeline))
	}
	if res.Timeline[0].Phase != "a" || res.Timeline[12].Phase != "b" {
		t.Fatalf("phases along timeline wrong: %+v", res.Timeline)
	}
	for _, s := range res.Timeline {
		if s.Busy > s.Allocated {
			t.Fatal("busy cannot exceed allocated")
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(nil, Static{N: 1}, 0); err == nil {
		t.Fatal("no phases should error")
	}
	if _, err := Simulate([]Phase{{Work: 0, MaxParallelism: 1}}, Static{N: 1}, 0); err == nil {
		t.Fatal("zero work should error")
	}
	if _, err := Simulate([]Phase{{Work: 1, MaxParallelism: 0}}, Static{N: 1}, 0); err == nil {
		t.Fatal("zero parallelism should error")
	}
	if _, err := Simulate([]Phase{{Work: 1, MaxParallelism: 1}}, Static{N: 0}, 0); err == nil {
		t.Fatal("zero-processor policy should error")
	}
}

func TestCompare(t *testing.T) {
	phases := PipelinePhases(100)
	results, err := Compare(phases, []Policy{Static{N: 8}, Static{N: 5000}, Elastic{Max: 5000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// Small static fleet: cheap but slow. Elastic: fast and efficient.
	small, peak, elastic := results[0], results[1], results[2]
	if small.Makespan <= elastic.Makespan {
		t.Fatal("8-processor fleet should be much slower than elastic")
	}
	if peak.Utilization >= elastic.Utilization {
		t.Fatal("peak static fleet should be less utilized than elastic")
	}
	if small.Policy != "static-8" || elastic.Policy != "elastic-max5000" {
		t.Fatal("policy names")
	}
}

func TestPipelinePhasesShape(t *testing.T) {
	phases := PipelinePhases(10)
	if len(phases) != 3 {
		t.Fatalf("phases = %d", len(phases))
	}
	// The paper's profile: stage 1 under ten processors, stage 2
	// thousands.
	if phases[0].MaxParallelism >= 10 {
		t.Fatal("stage 1 should demand fewer than ten processors")
	}
	if phases[1].MaxParallelism < 1000 {
		t.Fatal("stage 2 should demand thousands")
	}
	if phases[1].Work <= phases[0].Work {
		t.Fatal("stage 2 dominates work")
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
	}{
		{"", nil},
		{"static:8", Static{N: 8}},
		{"elastic:64", Elastic{Max: 64}},
		{"degraded:2:elastic:64", Degraded{Inner: Elastic{Max: 64}, Lost: 2}},
		{"degraded:0:static:8", Degraded{Inner: Static{N: 8}, Lost: 0}},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParsePolicy(%q) = %#v, want %#v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"static", "static:", "static:0", "static:-3", "elastic:x",
		"spot:4", "8", "degraded:2", "degraded:x:static:8", "degraded:-1:static:8", "degraded:2:"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Fatalf("ParsePolicy(%q) should error", bad)
		}
	}
}

// A degraded fleet never provisions below one processor, stretches the
// stage proportionally, and names both the loss and the inner policy.
func TestDegradedPolicy(t *testing.T) {
	d := Degraded{Inner: Static{N: 8}, Lost: 2}
	if got := d.Provision(100); got != 6 {
		t.Fatalf("Provision = %d, want 6", got)
	}
	if got := (Degraded{Inner: Static{N: 2}, Lost: 5}).Provision(100); got != 1 {
		t.Fatalf("floor Provision = %d, want 1", got)
	}
	if d.Name() != "degraded-2(static-8)" {
		t.Fatalf("Name = %q", d.Name())
	}
	phases := []Phase{{Name: "x", Work: 60, MaxParallelism: 100}}
	healthy, err := Simulate(phases, Static{N: 6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := Simulate(phases, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same surviving capacity, same makespan: losing 2 of 8 equals a
	// healthy fleet of 6.
	if math.Abs(degraded.Makespan-healthy.Makespan) > 1e-9 {
		t.Fatalf("degraded makespan %v != healthy-6 %v", degraded.Makespan, healthy.Makespan)
	}
}
