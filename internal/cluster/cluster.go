// Package cluster simulates the elastic processor demand of the risk
// analytics pipeline: "While in the first stage less than ten
// processors may be sufficient to handle the data, in the second and
// third stages thousands or even tens of thousands of processors need
// to be put together ... The elastic demand ... makes cloud-based
// computing attractive" (§II). The simulator runs a phase sequence
// under a provisioning policy and accounts allocated versus busy
// processor-time, which is what experiment E7 tabulates.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Phase is one pipeline stage's resource demand: an amount of work and
// the maximum parallelism the stage can exploit.
type Phase struct {
	Name string
	// Work is the total processor-seconds the phase needs.
	Work float64
	// MaxParallelism is the stage's scaling ceiling.
	MaxParallelism int
}

// PipelinePhases returns the canonical three-stage demand profile,
// parameterized by the stage-1 work unit: stage 2 dominates compute by
// orders of magnitude (millions of trials), stage 3 sits between.
func PipelinePhases(stage1Work float64) []Phase {
	return []Phase{
		{Name: "risk-modelling", Work: stage1Work, MaxParallelism: 8},
		{Name: "portfolio-risk", Work: 500 * stage1Work, MaxParallelism: 5000},
		{Name: "dfa", Work: 120 * stage1Work, MaxParallelism: 2000},
	}
}

// Policy decides how many processors are provisioned while a phase
// with the given demand ceiling runs.
type Policy interface {
	// Name labels the policy in reports.
	Name() string
	// Provision returns processors allocated (billed) for a demand.
	Provision(demand int) int
}

// Static provisions a fixed fleet regardless of demand — the owned
// cluster. Capacity idles through low-demand phases, and high-demand
// phases are capped at the fleet size.
type Static struct{ N int }

// Name implements Policy.
func (s Static) Name() string { return fmt.Sprintf("static-%d", s.N) }

// Provision implements Policy.
func (s Static) Provision(int) int { return s.N }

// Elastic provisions up to demand, bounded by a provider cap — the
// cloud model the paper argues for.
type Elastic struct{ Max int }

// Name implements Policy.
func (e Elastic) Name() string { return fmt.Sprintf("elastic-max%d", e.Max) }

// Provision implements Policy.
func (e Elastic) Provision(demand int) int {
	if demand > e.Max {
		return e.Max
	}
	return demand
}

// Degraded wraps another policy and models a cluster running with
// failed nodes: whatever the inner policy allocates, Lost processors
// are gone (never dropping below one). This is the capacity picture of
// the fault-tolerance experiment — a node kill shrinks the fleet and
// stretches the stage, it does not stop the job.
type Degraded struct {
	Inner Policy
	Lost  int
}

// Name implements Policy.
func (d Degraded) Name() string {
	return fmt.Sprintf("degraded-%d(%s)", d.Lost, d.Inner.Name())
}

// Provision implements Policy.
func (d Degraded) Provision(demand int) int {
	n := d.Inner.Provision(demand) - d.Lost
	if n < 1 {
		n = 1
	}
	return n
}

// ParsePolicy parses the CLI form of a provisioning policy:
// "static:N" (fixed fleet of N), "elastic:N" (scale to demand, capped
// at N), or "degraded:K:POLICY" (POLICY minus K lost processors). ""
// returns (nil, nil) — no policy, static Workers bound. This is how
// the pipeline CLIs select the elasticity model the engines run under.
func ParsePolicy(s string) (Policy, error) {
	if s == "" {
		return nil, nil
	}
	kind, arg, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("cluster: policy %q: want kind:N (static:8, elastic:64) or degraded:K:POLICY", s)
	}
	if kind == "degraded" {
		ks, rest, ok := strings.Cut(arg, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: policy %q: want degraded:K:POLICY (degraded:2:elastic:64)", s)
		}
		k, err := strconv.Atoi(ks)
		if err != nil || k < 0 {
			return nil, fmt.Errorf("cluster: policy %q: lost count %q must be a non-negative integer", s, ks)
		}
		inner, err := ParsePolicy(rest)
		if err != nil {
			return nil, err
		}
		if inner == nil {
			return nil, fmt.Errorf("cluster: policy %q: degraded needs an inner policy", s)
		}
		return Degraded{Inner: inner, Lost: k}, nil
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n <= 0 {
		return nil, fmt.Errorf("cluster: policy %q: processor count %q must be a positive integer", s, arg)
	}
	switch kind {
	case "static":
		return Static{N: n}, nil
	case "elastic":
		return Elastic{Max: n}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown policy kind %q (want static, elastic, or degraded)", kind)
	}
}

// Sample is one timeline point of the simulation.
type Sample struct {
	T         float64
	Phase     string
	Demand    int
	Allocated int
	Busy      int
}

// Result aggregates a simulated run.
type Result struct {
	Policy        string
	Makespan      float64 // wall-clock seconds
	AllocatedSecs float64 // Σ allocated processors · time (the bill)
	BusySecs      float64 // Σ busy processors · time (useful work)
	Utilization   float64 // BusySecs / AllocatedSecs
	Timeline      []Sample
}

// Simulate runs the phases sequentially under the policy. sampleEvery
// controls timeline resolution (<= 0 disables the timeline).
func Simulate(phases []Phase, policy Policy, sampleEvery float64) (*Result, error) {
	if len(phases) == 0 {
		return nil, errors.New("cluster: no phases")
	}
	res := &Result{Policy: policy.Name()}
	now := 0.0
	nextSample := 0.0
	for _, ph := range phases {
		if ph.Work <= 0 || ph.MaxParallelism <= 0 {
			return nil, fmt.Errorf("cluster: invalid phase %+v", ph)
		}
		alloc := policy.Provision(ph.MaxParallelism)
		if alloc <= 0 {
			return nil, fmt.Errorf("cluster: policy %s provisioned %d processors", policy.Name(), alloc)
		}
		busy := alloc
		if busy > ph.MaxParallelism {
			busy = ph.MaxParallelism
		}
		dur := ph.Work / float64(busy)
		if sampleEvery > 0 {
			for ; nextSample < now+dur; nextSample += sampleEvery {
				res.Timeline = append(res.Timeline, Sample{
					T: nextSample, Phase: ph.Name,
					Demand: ph.MaxParallelism, Allocated: alloc, Busy: busy,
				})
			}
		}
		now += dur
		res.AllocatedSecs += float64(alloc) * dur
		res.BusySecs += float64(busy) * dur
	}
	res.Makespan = now
	if res.AllocatedSecs > 0 {
		res.Utilization = res.BusySecs / res.AllocatedSecs
	}
	return res, nil
}

// Compare runs every policy over the same phases and returns results
// in input order — the rows of the E7 table.
func Compare(phases []Phase, policies []Policy) ([]*Result, error) {
	out := make([]*Result, 0, len(policies))
	for _, p := range policies {
		r, err := Simulate(phases, p, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
