package synth

import (
	"context"
	"testing"
)

func TestBuildSmallScenario(t *testing.T) {
	s, err := Build(context.Background(), Small(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Catalog.Len() != 800 {
		t.Fatalf("catalogue size = %d", s.Catalog.Len())
	}
	if len(s.ELTs) != 4 || len(s.Exposures) != 4 {
		t.Fatalf("contracts = %d/%d", len(s.ELTs), len(s.Exposures))
	}
	if len(s.Portfolio.Contracts) != 4 {
		t.Fatalf("portfolio contracts = %d", len(s.Portfolio.Contracts))
	}
	if err := s.Portfolio.Validate(); err != nil {
		t.Fatalf("portfolio invalid: %v", err)
	}
	if s.YELT.NumTrials != 2000 {
		t.Fatalf("trials = %d", s.YELT.NumTrials)
	}
	for i, e := range s.ELTs {
		if e.Len() == 0 {
			t.Fatalf("contract %d has empty ELT — scenario too sparse", i)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(context.Background(), Small(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(context.Background(), Small(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.ELTs[0].ExpectedLoss() != b.ELTs[0].ExpectedLoss() {
		t.Fatal("scenario not reproducible")
	}
	if a.YELT.Len() != b.YELT.Len() {
		t.Fatal("YELT not reproducible")
	}
}

func TestBuildOccurrenceOnlyStripsAggTerms(t *testing.T) {
	p := Small(2)
	p.OccurrenceOnly = true
	p.TwoLayers = true
	s, err := Build(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range s.Portfolio.Contracts {
		if len(c.Layers) != 2 {
			t.Fatalf("contract %d layers = %d", c.ID, len(c.Layers))
		}
		for _, l := range c.Layers {
			if l.AggRetention != 0 || l.AggLimit != 0 {
				t.Fatalf("occurrence-only layer carries aggregate terms: %+v", l)
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(context.Background(), Params{}); err == nil {
		t.Fatal("zero params should error")
	}
}

func TestBuildPortfolioSizing(t *testing.T) {
	s, err := Build(context.Background(), Small(3))
	if err != nil {
		t.Fatal(err)
	}
	pf := BuildPortfolio(s.ELTs, false, false)
	for i, c := range pf.Contracts {
		if len(c.Layers) != 1 {
			t.Fatalf("single-layer portfolio has %d layers", len(c.Layers))
		}
		mean := s.ELTs[i].ExpectedLoss() / float64(s.ELTs[i].Len())
		if c.Layers[0].OccRetention != 5*mean {
			t.Fatalf("layer not sized to the contract's mean event loss")
		}
	}
}

func TestDefaultParamsReasonable(t *testing.T) {
	p := Default(1)
	if p.NumEvents < 1000 || p.NumTrials < 10000 {
		t.Fatal("Default should be a meaningful scale")
	}
}
