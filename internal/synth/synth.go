// Package synth assembles complete synthetic risk-analytics scenarios:
// a stochastic catalogue, per-contract exposure databases, stage-1
// ELTs computed by the catastrophe-model engine, reinsurance programs
// sized against those ELTs, and a pre-simulated YELT. It is the shared
// test-bed generator used by integration tests, benchmarks, the CLI
// tools and the examples, so that every consumer exercises the same
// end-to-end data path the paper describes.
package synth

import (
	"context"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/catmodel"
	"repro/internal/elt"
	"repro/internal/exposure"
	"repro/internal/layers"
	"repro/internal/yelt"
)

// Params sizes a scenario. The zero value is invalid; use Small or
// Default and override.
type Params struct {
	Seed                 uint64
	NumEvents            int
	NumContracts         int
	LocationsPerContract int
	NumTrials            int
	MeanEventsPerYear    float64
	// OccurrenceOnly builds layers without annual-aggregate terms,
	// the subset the device engine supports.
	OccurrenceOnly bool
	// TwoLayers adds a working layer under the cat layer.
	TwoLayers bool
	// Workers is passed to the parallel generators; <= 0 GOMAXPROCS.
	Workers int
	// SkipYELT leaves Scenario.YELT nil — for streaming consumers that
	// derive trial batches on demand via YELTGenerator instead of
	// holding the table resident.
	SkipYELT bool
}

// Small returns a scenario that builds in well under a second — the
// unit/integration test scale.
func Small(seed uint64) Params {
	return Params{
		Seed:                 seed,
		NumEvents:            800,
		NumContracts:         4,
		LocationsPerContract: 120,
		NumTrials:            2_000,
		MeanEventsPerYear:    10,
	}
}

// Default returns the example/CLI scale: a few seconds of build time.
func Default(seed uint64) Params {
	return Params{
		Seed:                 seed,
		NumEvents:            10_000,
		NumContracts:         16,
		LocationsPerContract: 400,
		NumTrials:            50_000,
		MeanEventsPerYear:    10,
	}
}

// Scenario is a fully wired stage-1 + stage-2 input set.
type Scenario struct {
	Params    Params
	Catalog   *catalog.Catalog
	Exposures []*exposure.Database
	ELTs      []*elt.Table
	Portfolio *layers.Portfolio
	YELT      *yelt.Table
}

// Build generates the scenario deterministically from p.Seed.
func Build(ctx context.Context, p Params) (*Scenario, error) {
	if p.NumEvents <= 0 || p.NumContracts <= 0 || p.NumTrials <= 0 {
		return nil, fmt.Errorf("synth: invalid params %+v", p)
	}
	if p.LocationsPerContract <= 0 {
		p.LocationsPerContract = 100
	}
	if p.MeanEventsPerYear <= 0 {
		p.MeanEventsPerYear = 10
	}

	ccfg := catalog.DefaultConfig()
	ccfg.NumEvents = p.NumEvents
	ccfg.MeanEventsPerYear = p.MeanEventsPerYear
	cat, err := catalog.Generate(ccfg, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("synth: catalogue: %w", err)
	}

	s := &Scenario{Params: p, Catalog: cat}

	// Stage 1: one exposure database and ELT per contract.
	eng := catmodel.New()
	eng.Workers = p.Workers
	for c := 0; c < p.NumContracts; c++ {
		ecfg := exposure.DefaultConfig()
		ecfg.NumLocations = p.LocationsPerContract
		db, err := exposure.Generate(ecfg, p.Seed+uint64(1000+c))
		if err != nil {
			return nil, fmt.Errorf("synth: exposure %d: %w", c, err)
		}
		s.Exposures = append(s.Exposures, db)
		tbl, err := eng.Run(ctx, cat, db, uint32(c+1))
		if err != nil {
			return nil, fmt.Errorf("synth: catmodel %d: %w", c, err)
		}
		s.ELTs = append(s.ELTs, tbl)
	}

	s.Portfolio = BuildPortfolio(s.ELTs, p.OccurrenceOnly, p.TwoLayers)

	// Stage-2 input: the pre-simulated years (skipped when the consumer
	// streams trials instead — see YELTGenerator).
	if !p.SkipYELT {
		s.YELT, err = yelt.Generate(ctx, cat, yelt.Config{NumTrials: p.NumTrials, Workers: p.Workers}, p.Seed+7)
		if err != nil {
			return nil, fmt.Errorf("synth: yelt: %w", err)
		}
	}
	return s, nil
}

// YELTGenerator returns the streaming trial source that re-derives
// exactly the trials of the scenario's materialized YELT (same
// catalogue, config, and seed) — the handle equivalence tests and
// streaming consumers use. It works whether or not SkipYELT was set.
func (s *Scenario) YELTGenerator() (*yelt.Generator, error) {
	return yelt.NewGenerator(s.Catalog,
		yelt.Config{NumTrials: s.Params.NumTrials, Workers: s.Params.Workers}, s.Params.Seed+7)
}

func meanEventLoss(t *elt.Table) float64 {
	if t.Len() == 0 {
		return 1
	}
	return t.ExpectedLoss() / float64(t.Len())
}

// BuildPortfolio writes a reinsurance program against each ELT, sized
// by the contract's mean event loss so layers attach at realistic
// points of the severity curve. occurrenceOnly strips annual-aggregate
// terms (the device engine's supported subset); twoLayers adds a
// working layer under the cat layer.
func BuildPortfolio(elts []*elt.Table, occurrenceOnly, twoLayers bool) *layers.Portfolio {
	pf := &layers.Portfolio{}
	for c, tbl := range elts {
		mean := meanEventLoss(tbl)
		var ls []layers.Layer
		cat := layers.StandardCatXL(mean)
		if occurrenceOnly {
			cat.AggRetention = 0
			cat.AggLimit = 0
		}
		ls = append(ls, cat)
		if twoLayers {
			wl := layers.WorkingLayer(mean)
			if occurrenceOnly {
				wl.AggRetention = 0
				wl.AggLimit = 0
			}
			ls = append(ls, wl)
		}
		pf.Contracts = append(pf.Contracts, layers.Contract{
			ID:       uint32(c + 1),
			ELTIndex: c,
			Layers:   ls,
		})
	}
	return pf
}
