package elt

import (
	"bytes"
	"testing"

	"repro/internal/rng"
)

func benchTable(n int) *Table {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			EventID:      uint32(i + 1),
			MeanLoss:     float64(i%1000) * 37,
			SigmaI:       float64(i % 500),
			SigmaC:       float64(i % 200),
			ExposedValue: float64(i%1000)*37*10 + 1,
		}
	}
	return New(1, recs)
}

func BenchmarkLookup(b *testing.B) {
	t := benchTable(100_000)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		if r, ok := t.Lookup(uint32(i%100_000) + 1); ok {
			sink += r.MeanLoss
		}
	}
	_ = sink
}

func BenchmarkSampleLoss(b *testing.B) {
	t := benchTable(1000)
	st := rng.New(1)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SampleLoss(st, t.Records[i%1000])
	}
	_ = sink
}

func BenchmarkMerge(b *testing.B) {
	a := benchTable(50_000)
	c := benchTable(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Merge(9, a, c)
	}
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	t := benchTable(100_000)
	b.SetBytes(t.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(int(t.SizeBytes()))
		if _, err := t.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
