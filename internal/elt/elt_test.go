package elt

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func sampleTable() *Table {
	return New(7, []Record{
		{EventID: 3, MeanLoss: 100, SigmaI: 30, SigmaC: 10, ExposedValue: 1000},
		{EventID: 1, MeanLoss: 50, SigmaI: 20, SigmaC: 5, ExposedValue: 400},
		{EventID: 9, MeanLoss: 75, SigmaI: 25, SigmaC: 8, ExposedValue: 900},
	})
}

func TestNewSortsAndIndexes(t *testing.T) {
	tbl := sampleTable()
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for i := 1; i < tbl.Len(); i++ {
		if tbl.Records[i-1].EventID >= tbl.Records[i].EventID {
			t.Fatal("records not sorted")
		}
	}
	r, ok := tbl.Lookup(3)
	if !ok || r.MeanLoss != 100 {
		t.Fatalf("Lookup(3) = %+v, %v", r, ok)
	}
	if _, ok := tbl.Lookup(4); ok {
		t.Fatal("Lookup of absent event should fail")
	}
}

func TestNewCoalescesDuplicates(t *testing.T) {
	tbl := New(1, []Record{
		{EventID: 5, MeanLoss: 10, SigmaI: 3, SigmaC: 1, ExposedValue: 100},
		{EventID: 5, MeanLoss: 20, SigmaI: 4, SigmaC: 2, ExposedValue: 200},
	})
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	r := tbl.Records[0]
	if r.MeanLoss != 30 || r.ExposedValue != 300 || r.SigmaC != 3 {
		t.Fatalf("coalesced record %+v", r)
	}
	if math.Abs(r.SigmaI-5) > 1e-12 { // sqrt(9+16)
		t.Fatalf("SigmaI = %v, want 5", r.SigmaI)
	}
}

func TestExpectedLoss(t *testing.T) {
	if got := sampleTable().ExpectedLoss(); got != 225 {
		t.Fatalf("ExpectedLoss = %v", got)
	}
}

func TestMergeCommutativeProperty(t *testing.T) {
	f := func(aRaw, bRaw []uint16) bool {
		mk := func(raw []uint16, cid uint32) *Table {
			recs := make([]Record, 0, len(raw))
			for _, v := range raw {
				recs = append(recs, Record{
					EventID:      uint32(v%50) + 1,
					MeanLoss:     float64(v%97) + 1,
					SigmaI:       float64(v % 13),
					SigmaC:       float64(v % 7),
					ExposedValue: float64(v%997) + 10,
				})
			}
			return New(cid, recs)
		}
		ab := Merge(1, mk(aRaw, 1), mk(bRaw, 2))
		ba := Merge(1, mk(bRaw, 2), mk(aRaw, 1))
		if ab.Len() != ba.Len() {
			return false
		}
		for i := range ab.Records {
			x, y := ab.Records[i], ba.Records[i]
			if x.EventID != y.EventID ||
				math.Abs(x.MeanLoss-y.MeanLoss) > 1e-9 ||
				math.Abs(x.SigmaI-y.SigmaI) > 1e-9 ||
				math.Abs(x.SigmaC-y.SigmaC) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMergePreservesTotalMean(t *testing.T) {
	a := sampleTable()
	b := New(8, []Record{{EventID: 3, MeanLoss: 60, SigmaI: 5, SigmaC: 5, ExposedValue: 500}})
	m := Merge(9, a, b)
	if m.ContractID != 9 {
		t.Fatal("contract ID not set")
	}
	if got := m.ExpectedLoss(); math.Abs(got-285) > 1e-9 {
		t.Fatalf("merged ExpectedLoss = %v, want 285", got)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tbl := sampleTable()
	var buf bytes.Buffer
	n, err := tbl.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != tbl.SizeBytes() {
		t.Fatalf("WriteTo wrote %d bytes, SizeBytes says %d", n, tbl.SizeBytes())
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ContractID != tbl.ContractID || got.Len() != tbl.Len() {
		t.Fatal("header mismatch")
	}
	for i := range tbl.Records {
		if got.Records[i] != tbl.Records[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got.Records[i], tbl.Records[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, cid uint32) bool {
		recs := make([]Record, 0, len(raw))
		for i, v := range raw {
			recs = append(recs, Record{
				EventID:      uint32(i) + 1,
				MeanLoss:     float64(v) / 7,
				SigmaI:       float64(v % 1000),
				SigmaC:       float64(v % 333),
				ExposedValue: float64(v) + 1,
			})
		}
		tbl := New(cid, recs)
		var buf bytes.Buffer
		if _, err := tbl.WriteTo(&buf); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tbl.Len() {
			return false
		}
		for i := range tbl.Records {
			if got.Records[i] != tbl.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX????"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should error")
	}
	// Truncated records.
	tbl := sampleTable()
	var buf bytes.Buffer
	if _, err := tbl.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated table should error")
	}
	// Absurd count header.
	hdr := make([]byte, 12)
	copy(hdr, "ELT1")
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xff, 0xff, 0xff, 0xff
	if _, err := Read(bytes.NewReader(hdr)); err == nil {
		t.Fatal("absurd count should error")
	}
}

func TestSampleLossMoments(t *testing.T) {
	r := Record{EventID: 1, MeanLoss: 1000, SigmaI: 200, SigmaC: 100, ExposedValue: 10_000}
	st := rng.New(99)
	const n = 300000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		l := SampleLoss(st, r)
		if l < 0 || l > r.ExposedValue {
			t.Fatalf("loss %v outside [0, %v]", l, r.ExposedValue)
		}
		sum += l
		sumSq += l * l
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-1000)/1000 > 0.02 {
		t.Errorf("sample mean = %v, want 1000", mean)
	}
	if math.Abs(sd-300)/300 > 0.05 {
		t.Errorf("sample sd = %v, want 300", sd)
	}
}

func TestSampleLossEdgeCases(t *testing.T) {
	st := rng.New(1)
	if SampleLoss(st, Record{MeanLoss: 0, ExposedValue: 100}) != 0 {
		t.Error("zero mean should sample 0")
	}
	if SampleLoss(st, Record{MeanLoss: 10, ExposedValue: 0}) != 0 {
		t.Error("zero exposure should sample 0")
	}
	if got := SampleLoss(st, Record{MeanLoss: 10, SigmaI: 0, SigmaC: 0, ExposedValue: 100}); got != 10 {
		t.Errorf("zero sigma should return mean, got %v", got)
	}
	// Mean at/above exposed value saturates.
	if got := SampleLoss(st, Record{MeanLoss: 100, SigmaI: 5, ExposedValue: 100}); got != 100 {
		t.Errorf("saturated record should return exposure, got %v", got)
	}
}

func TestTruncate(t *testing.T) {
	tbl := sampleTable()
	tr := tbl.Truncate(75)
	if tr.Len() != 2 {
		t.Fatalf("truncated Len = %d, want 2", tr.Len())
	}
	for _, r := range tr.Records {
		if r.MeanLoss < 75 {
			t.Fatalf("record %+v below floor survived", r)
		}
	}
	if tbl.Len() != 3 {
		t.Fatal("Truncate must not mutate the original")
	}
}

func TestSigma(t *testing.T) {
	r := Record{SigmaI: 3, SigmaC: 4}
	if r.Sigma() != 7 {
		t.Fatalf("Sigma = %v, want 7", r.Sigma())
	}
}
