// Package elt implements the Event-Loss Table, the artifact stage 1
// produces and stage 2 consumes: "An ELT is the risk associated with an
// individual reinsurance contract, and is the output of the first
// stage" (§II).
//
// Each record carries the loss distribution a single catalogue event
// inflicts on the contract, in the industry-standard moment form:
// mean loss, independent and correlated standard deviations, and the
// exposed value (the maximum possible loss). Tables are kept sorted by
// event ID; lookup is binary search, the access pattern the aggregate
// engines rely on.
package elt

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/rng"
)

// Record is one event's loss distribution on a contract.
type Record struct {
	EventID uint32
	// MeanLoss is the expected gross loss if the event occurs.
	MeanLoss float64
	// SigmaI is the independent (site-diversifiable) loss std dev.
	SigmaI float64
	// SigmaC is the correlated (systemic) loss std dev.
	SigmaC float64
	// ExposedValue is the maximum possible loss (limit of the
	// distribution's support).
	ExposedValue float64
}

// Sigma returns the total standard deviation. Following ELT
// convention the independent and correlated components are stored
// separately and added when a single spread is needed.
func (r Record) Sigma() float64 {
	return r.SigmaI + r.SigmaC
}

// Table is an Event-Loss Table for one contract, sorted by EventID.
type Table struct {
	ContractID uint32
	Records    []Record
}

// New returns a table over the given records, sorting them by event ID
// and coalescing duplicates by moment addition.
func New(contractID uint32, records []Record) *Table {
	t := &Table{ContractID: contractID, Records: records}
	t.normalize()
	return t
}

func (t *Table) normalize() {
	sort.Slice(t.Records, func(i, j int) bool { return t.Records[i].EventID < t.Records[j].EventID })
	out := t.Records[:0]
	for _, r := range t.Records {
		if n := len(out); n > 0 && out[n-1].EventID == r.EventID {
			out[n-1] = addRecords(out[n-1], r)
			continue
		}
		out = append(out, r)
	}
	t.Records = out
}

// addRecords merges two loss distributions for the same event on
// (sub)portfolios: means and exposed values add, correlated sigmas add
// linearly, independent sigmas add in quadrature.
func addRecords(a, b Record) Record {
	return Record{
		EventID:      a.EventID,
		MeanLoss:     a.MeanLoss + b.MeanLoss,
		SigmaI:       math.Sqrt(a.SigmaI*a.SigmaI + b.SigmaI*b.SigmaI),
		SigmaC:       a.SigmaC + b.SigmaC,
		ExposedValue: a.ExposedValue + b.ExposedValue,
	}
}

// Len returns the number of event records.
func (t *Table) Len() int { return len(t.Records) }

// Lookup returns the record for an event ID via binary search.
func (t *Table) Lookup(eventID uint32) (Record, bool) {
	i := sort.Search(len(t.Records), func(i int) bool { return t.Records[i].EventID >= eventID })
	if i < len(t.Records) && t.Records[i].EventID == eventID {
		return t.Records[i], true
	}
	return Record{}, false
}

// ExpectedLoss returns the summed mean loss across all events (the
// contract's loss if every catalogue event occurred exactly once).
func (t *Table) ExpectedLoss() float64 {
	var s float64
	for _, r := range t.Records {
		s += r.MeanLoss
	}
	return s
}

// Merge returns a new table combining t and other (for the same or a
// consolidated contract): the union of events with moment addition on
// overlaps. Merge is commutative and associative up to float rounding.
func Merge(contractID uint32, tables ...*Table) *Table {
	var n int
	for _, t := range tables {
		n += len(t.Records)
	}
	recs := make([]Record, 0, n)
	for _, t := range tables {
		recs = append(recs, t.Records...)
	}
	return New(contractID, recs)
}

// SampleParams resolves a record's secondary-uncertainty sampling
// plan: the method-of-moments beta parameters (a, b) with the
// ExposedValue scale when a draw is needed (a > 0), or the constant
// the degenerate branches collapse to (a == 0, value in c). It is the
// per-record half of SampleLoss, split out so scan-oriented layouts
// can precompute it once per (event, contract) entry instead of
// re-deriving it for every one of millions of trials; SampleLoss
// delegates here, so the two can never diverge.
func SampleParams(r Record) (c, a, b, scale float64) {
	if r.MeanLoss <= 0 || r.ExposedValue <= 0 {
		return 0, 0, 0, 0
	}
	sigma := r.Sigma()
	if sigma <= 0 {
		return r.MeanLoss, 0, 0, 0
	}
	mu := r.MeanLoss / r.ExposedValue
	v := (sigma / r.ExposedValue) * (sigma / r.ExposedValue)
	if mu >= 1 {
		return r.ExposedValue, 0, 0, 0
	}
	maxV := mu * (1 - mu)
	if v >= maxV {
		v = maxV * 0.99
	}
	k := mu*(1-mu)/v - 1
	if k <= 0 {
		return r.MeanLoss, 0, 0, 0
	}
	return 0, mu * k, (1 - mu) * k, r.ExposedValue
}

// SampleLoss draws a realized loss for record r using the
// industry-standard beta-on-[0, ExposedValue] secondary-uncertainty
// model: mean and sigma are matched by method of moments. Degenerate
// parameters fall back to the mean (or the distribution's bounds)
// without consuming a draw.
func SampleLoss(st *rng.Stream, r Record) float64 {
	c, a, b, scale := SampleParams(r)
	if a == 0 {
		return c
	}
	return scale * st.Beta(a, b)
}

// --- binary codec ---

// Binary layout: magic "ELT1", u32 contractID, u32 count, then per
// record u32 eventID + 4 float64s, all little-endian. The format is a
// stand-in for the "small number of very large tables" stage-1 storage;
// it streams, it does not seek.
var magic = [4]byte{'E', 'L', 'T', '1'}

// ErrBadFormat is returned when decoding encounters a malformed table.
var ErrBadFormat = errors.New("elt: bad format")

const recordSize = 4 + 8*4

// WriteTo serializes the table. It implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var written int64
	if _, err := bw.Write(magic[:]); err != nil {
		return written, err
	}
	written += 4
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], t.ContractID)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(t.Records)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return written, err
	}
	written += 8
	var buf [recordSize]byte
	for _, r := range t.Records {
		binary.LittleEndian.PutUint32(buf[0:4], r.EventID)
		binary.LittleEndian.PutUint64(buf[4:12], math.Float64bits(r.MeanLoss))
		binary.LittleEndian.PutUint64(buf[12:20], math.Float64bits(r.SigmaI))
		binary.LittleEndian.PutUint64(buf[20:28], math.Float64bits(r.SigmaC))
		binary.LittleEndian.PutUint64(buf[28:36], math.Float64bits(r.ExposedValue))
		if _, err := bw.Write(buf[:]); err != nil {
			return written, err
		}
		written += recordSize
	}
	return written, bw.Flush()
}

// Read deserializes a table written by WriteTo.
func Read(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("elt: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, m)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("elt: reading header: %w", err)
	}
	contractID := binary.LittleEndian.Uint32(hdr[0:4])
	count := binary.LittleEndian.Uint32(hdr[4:8])
	const maxRecords = 1 << 28 // 256M records ≈ 9.7 GB; refuse absurd headers
	if count > maxRecords {
		return nil, fmt.Errorf("%w: record count %d too large", ErrBadFormat, count)
	}
	// Cap the initial allocation and grow with the data actually read,
	// so a forged header declaring 2^28 records cannot reserve
	// gigabytes before the short read surfaces (the codec fuzzer's
	// finding).
	const preallocCap = 1 << 16
	recs := make([]Record, 0, min(count, preallocCap))
	var buf [recordSize]byte
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("elt: reading record %d: %w", i, err)
		}
		recs = append(recs, Record{
			EventID:      binary.LittleEndian.Uint32(buf[0:4]),
			MeanLoss:     math.Float64frombits(binary.LittleEndian.Uint64(buf[4:12])),
			SigmaI:       math.Float64frombits(binary.LittleEndian.Uint64(buf[12:20])),
			SigmaC:       math.Float64frombits(binary.LittleEndian.Uint64(buf[20:28])),
			ExposedValue: math.Float64frombits(binary.LittleEndian.Uint64(buf[28:36])),
		})
	}
	t := &Table{ContractID: contractID, Records: recs}
	// Stored tables are sorted; tolerate unsorted input defensively.
	if !sort.SliceIsSorted(t.Records, func(i, j int) bool { return t.Records[i].EventID < t.Records[j].EventID }) {
		t.normalize()
	}
	return t, nil
}

// SizeBytes returns the serialized size of the table.
func (t *Table) SizeBytes() int64 {
	return int64(4 + 8 + len(t.Records)*recordSize)
}

// Truncate returns a copy keeping only records with MeanLoss >= floor,
// the standard thinning applied before shipping ELTs downstream: tiny
// means contribute nothing to portfolio tails but dominate table size.
func (t *Table) Truncate(floor float64) *Table {
	recs := make([]Record, 0, len(t.Records))
	for _, r := range t.Records {
		if r.MeanLoss >= floor {
			recs = append(recs, r)
		}
	}
	return &Table{ContractID: t.ContractID, Records: recs}
}
