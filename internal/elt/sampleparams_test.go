package elt

import (
	"testing"

	"repro/internal/rng"
)

// SampleParams is the precomputable half of SampleLoss; applying the
// plan must reproduce SampleLoss draw-for-draw from the same stream
// state, across every degenerate branch (no exposure, no sigma,
// mean at the support bound, variance clamp) and the beta-draw path.
func TestSampleParamsMatchesSampleLoss(t *testing.T) {
	records := []Record{
		{EventID: 1, MeanLoss: 0, ExposedValue: 100},             // non-positive mean → 0
		{EventID: 2, MeanLoss: 50, ExposedValue: 0},              // no exposure → 0
		{EventID: 3, MeanLoss: 50, ExposedValue: 100},            // sigma 0 → mean
		{EventID: 4, MeanLoss: 120, SigmaI: 5, ExposedValue: 100}, // mu ≥ 1 → exposed value
		{EventID: 5, MeanLoss: 50, SigmaI: 500, ExposedValue: 100}, // variance clamp, then draw
		{EventID: 6, MeanLoss: 30, SigmaI: 10, SigmaC: 5, ExposedValue: 200},
		{EventID: 7, MeanLoss: 1e-9, SigmaI: 1e-10, ExposedValue: 1},
	}
	for _, r := range records {
		for seed := uint64(0); seed < 8; seed++ {
			st1 := rng.NewStream(99, seed)
			st2 := rng.NewStream(99, seed)
			want := SampleLoss(st1, r)
			c, a, b, scale := SampleParams(r)
			got := c
			if a > 0 {
				got = scale * st2.Beta(a, b)
			}
			if got != want {
				t.Fatalf("record %d seed %d: plan %g, SampleLoss %g", r.EventID, seed, got, want)
			}
			// Both paths must leave the stream in the same state — the
			// draw-order invariant the engines' bit-determinism rests on.
			if st1.Uint64() != st2.Uint64() {
				t.Fatalf("record %d seed %d: stream states diverged", r.EventID, seed)
			}
		}
	}
}
