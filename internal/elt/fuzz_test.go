package elt

import (
	"bytes"
	"sort"
	"testing"
)

func mustEncode(f *testing.F, t *Table) []byte {
	f.Helper()
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRead drives the ELT codec with arbitrary bytes. Read normalizes
// unsorted input (sort + duplicate coalescing), so the round-trip
// contract is canonical-form stability: once decoded, WriteTo → Read →
// WriteTo must be byte-identical, and decoded tables must be sorted.
// The seed corpus is golden encodings — empty, typical, duplicate
// events — plus corruptions of each.
func FuzzRead(f *testing.F) {
	golden := []*Table{
		New(1, nil),
		New(7, []Record{
			{EventID: 3, MeanLoss: 100, SigmaI: 10, SigmaC: 5, ExposedValue: 1000},
			{EventID: 9, MeanLoss: 250.5, SigmaI: 0, SigmaC: 12, ExposedValue: 2000},
		}),
		// Duplicate event IDs coalesce in New; encode the raw duplicate
		// form by hand instead so the fuzzer sees sorted-with-duplicates
		// input too.
		{ContractID: 2, Records: []Record{
			{EventID: 5, MeanLoss: 1, ExposedValue: 10},
			{EventID: 5, MeanLoss: 2, ExposedValue: 20},
		}},
		// Unsorted on the wire: Read must normalize it.
		{ContractID: 3, Records: []Record{
			{EventID: 9, MeanLoss: 4, ExposedValue: 40},
			{EventID: 1, MeanLoss: 3, ExposedValue: 30},
		}},
	}
	for _, t := range golden {
		enc := mustEncode(f, t)
		f.Add(enc)
		if len(enc) > 8 {
			f.Add(enc[:len(enc)-7]) // truncated record stream
			corrupt := bytes.Clone(enc)
			corrupt[0] = 'X' // bad magic
			f.Add(corrupt)
			huge := bytes.Clone(enc)
			// Forged record count with no backing data: must error
			// without reserving the declared size.
			huge[8], huge[9], huge[10], huge[11] = 0xff, 0xff, 0xff, 0x0f
			f.Add(huge)
		}
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		t1, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: a clean error is the contract
		}
		if !sort.SliceIsSorted(t1.Records, func(i, j int) bool {
			return t1.Records[i].EventID < t1.Records[j].EventID
		}) {
			t.Fatal("decoded table is not sorted by event ID")
		}

		var b1 bytes.Buffer
		if _, err := t1.WriteTo(&b1); err != nil {
			t.Fatalf("re-encoding accepted table: %v", err)
		}
		t2, err := Read(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own encoding: %v", err)
		}
		if t2.ContractID != t1.ContractID || len(t2.Records) != len(t1.Records) {
			t.Fatalf("canonical round trip changed shape: %d/%d records", len(t1.Records), len(t2.Records))
		}
		var b2 bytes.Buffer
		if _, err := t2.WriteTo(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatal("WriteTo → Read → WriteTo is not byte-identical")
		}
	})
}
