// Command aggsim runs stage 2 only: aggregate analysis of a synthetic
// portfolio over a pre-simulated YELT, with a choice of engine —
// sequential baseline, native parallel, map/reduce over trial splits,
// the stateful reinstatements path, or the simulated many-core device
// with/without shared-memory chunking — and of trial-kernel layout
// (-kernel blocked|flat|indexed, bit-identical results).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/aggregate"
	"repro/internal/lossindex"
	"repro/internal/metrics"
	"repro/internal/synth"
	"repro/internal/yelt"
)

func main() {
	var (
		events    = flag.Int("events", 10_000, "stochastic catalogue size")
		contracts = flag.Int("contracts", 16, "number of contracts")
		trials    = flag.Int("trials", 100_000, "pre-simulated trial years")
		seed      = flag.Uint64("seed", 1, "master seed")
		workers   = flag.Int("workers", 0, "parallelism bound (0 = all cores)")
		engine    = flag.String("engine", "parallel", "sequential|parallel|chunked|naive|mapreduce|reinstatements")
		kernel    = flag.String("kernel", "blocked", "trial-kernel layout: blocked|flat|indexed (bit-identical results)")
		block     = flag.Int("block", 0, "blocked-kernel trial-block size (0 = engine default)")
		sampling  = flag.Bool("sampling", false, "secondary-uncertainty sampling (host engines only)")
		streaming = flag.Bool("stream", false, "stream trial batches instead of materializing the YELT (bit-identical results, bounded memory)")
		batch     = flag.Int("batch", 0, "streaming trial-batch size per worker (0 = engine default)")
		spill     = flag.Bool("spill", false, "spill the generated trial stream into diskstore shards and run the engine over the shards (implies -stream)")
		parts     = flag.Int("parts", 0, "spill shard count (0 = derived from the trial count)")
		csvOut    = flag.String("csv", "", "write the summary as CSV to this file")
	)
	flag.Parse()
	ctx := context.Background()
	if *spill {
		*streaming = true
	}

	occOnly := *engine == "chunked" || *engine == "naive"
	s, err := synth.Build(ctx, synth.Params{
		Seed:                 *seed,
		NumEvents:            *events,
		NumContracts:         *contracts,
		LocationsPerContract: 250,
		NumTrials:            *trials,
		MeanEventsPerYear:    10,
		OccurrenceOnly:       occOnly,
		TwoLayers:            true,
		Workers:              *workers,
		SkipYELT:             *streaming,
	})
	if err != nil {
		fail(err)
	}

	var eng aggregate.Engine
	var dev *aggregate.Chunked
	var reinst *aggregate.Reinstatements
	switch *engine {
	case "sequential":
		eng = aggregate.Sequential{}
	case "parallel":
		eng = aggregate.Parallel{}
	case "mapreduce":
		eng = aggregate.MapReduce{}
	case "reinstatements":
		reinst = &aggregate.Reinstatements{}
		eng = reinst
	case "chunked":
		dev = &aggregate.Chunked{}
		eng = dev
	case "naive":
		dev = &aggregate.Chunked{Naive: true}
		eng = dev
	default:
		fmt.Fprintf(os.Stderr, "aggsim: unknown engine %q\n", *engine)
		os.Exit(2)
	}
	var kern aggregate.Kernel
	switch *kernel {
	case "blocked":
		kern = aggregate.KernelBlocked
	case "flat":
		kern = aggregate.KernelFlat
	case "indexed":
		kern = aggregate.KernelIndexed
	default:
		fmt.Fprintf(os.Stderr, "aggsim: unknown kernel %q\n", *kernel)
		os.Exit(2)
	}

	// Pre-join the book into the event-major loss index once, before
	// the trial loop, and report it as its own data-volume line: this
	// is the scan-oriented layout every engine shares.
	idxStart := time.Now()
	idx, err := lossindex.Build(s.ELTs, s.Portfolio)
	if err != nil {
		fail(err)
	}
	idxBuild := time.Since(idxStart)

	in := &aggregate.Input{ELTs: s.ELTs, Portfolio: s.Portfolio, Index: idx}
	var gen *yelt.Generator
	var ds *yelt.DiskSource
	if *streaming {
		gen, err = s.YELTGenerator()
		if err != nil {
			fail(err)
		}
		in.Source = gen
	} else {
		in.YELT = s.YELT
	}
	if *spill {
		dir, err := os.MkdirTemp("", "aggsim-spill-*")
		if err != nil {
			fail(err)
		}
		defer os.RemoveAll(dir)
		nParts := *parts
		if nParts <= 0 {
			nParts = aggregate.DefaultSpillParts(*trials)
		}
		spillStart := time.Now()
		ds, err = yelt.SpillToDir(ctx, gen, dir, 0, nParts, 1, *workers)
		if err != nil {
			fail(err)
		}
		spillDur := time.Since(spillStart)
		spillBytes, err := ds.SizeBytes()
		if err != nil {
			fail(err)
		}
		in.Source = ds
		fmt.Printf("spill: shards=%d nodes=%d bytes=%s write=%v\n",
			ds.Shards(), ds.Nodes(), yelt.HumanBytes(float64(spillBytes)),
			spillDur.Round(time.Millisecond))
	}
	start := time.Now()
	res, err := eng.Run(ctx, in, aggregate.Config{
		Seed: *seed + 13, Sampling: *sampling, Workers: *workers, BatchTrials: *batch,
		Kernel: kern, TrialBlock: *block,
	})
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("loss-index: events=%d entries=%d size=%s build=%v\n",
		idx.NumRows(), idx.NumEntries(), yelt.HumanBytes(float64(idx.SizeBytes())),
		idxBuild.Round(time.Microsecond))
	occurrences := int64(0)
	switch {
	case ds != nil:
		// Spilled: count what the engine re-read from the shards.
		occurrences = ds.Scanned()
	case *streaming:
		occurrences = gen.Streamed()
	default:
		occurrences = int64(s.YELT.Len())
	}
	fmt.Printf("engine=%s trials=%d occurrences=%d elapsed=%v (%.0f trials/s)\n",
		eng.Name(), *trials, occurrences, elapsed.Round(time.Millisecond),
		float64(*trials)/elapsed.Seconds())
	if *streaming {
		// Single-pass engines stream each trial exactly once, so the
		// streamed count equals the occurrence count of the table the
		// run never built — giving the avoided-footprint ratio exactly.
		matBytes := yelt.TableBytes(*trials, occurrences)
		fmt.Printf("streaming: peak-resident=%s materialized-equivalent=%s (%.0fx smaller)\n",
			yelt.HumanBytes(float64(res.PeakResidentBytes)), yelt.HumanBytes(float64(matBytes)),
			float64(matBytes)/float64(res.PeakResidentBytes))
	}
	if reinst != nil {
		var total float64
		for _, p := range reinst.LastPremium {
			total += p
		}
		fmt.Printf("reinstatements: total premium=%.0f mean/trial=%.2f (standard terms: 1 reinstatement at 100%%, 5%% rate-on-line)\n",
			total, total/float64(len(reinst.LastPremium)))
	}
	if dev != nil {
		st := dev.LastStats
		fmt.Printf("device: blocks=%d blockCycles=%d global=%d shared=%d const=%d\n",
			st.Blocks, st.BlockCycles, st.GlobalAccesses, st.SharedAccesses, st.ConstAccesses)
	}
	sum, err := metrics.Summarize(res.Portfolio)
	if err != nil {
		fail(err)
	}
	fmt.Print(sum.String())
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fail(err)
		}
		if err := metrics.WriteSummaryCSV(f, sum); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("summary written to %s\n", *csvOut)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "aggsim: %v\n", err)
	os.Exit(1)
}
