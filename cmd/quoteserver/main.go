// Command quoteserver serves real-time per-contract quotes over a
// risk.Study — the paper's §II use case ("a 1 million trial aggregate
// simulation on a typical contract only takes 25 seconds and can
// therefore support real-time pricing") as a long-running HTTP/JSON
// service.
//
// Startup runs stage 1 (catalogue, ELTs, loss index) and pre-builds
// every per-contract quote layout, so the first quote is as fast as
// the thousandth; -warm=false defers that work to first demand.
// Quotes run on a bounded worker pool with admission control: beyond
// -queue waiting requests the server answers 429 immediately, and a
// request that cannot finish inside -timeout answers 503. SIGINT or
// SIGTERM begins a graceful drain: /v1/healthz flips to draining (so
// load balancers stop routing), the HTTP layer stops accepting, and
// in-flight quotes run to completion before exit.
//
// With -cube-dims the first /v1/portfolio or /v1/cube request also
// materializes the warehouse cube over those dimensions, after which
// GET /v1/cube?region=...&lob=... answers from pre-computed summaries
// — a dictionary lookup, no simulation.
//
// Endpoints: POST /v1/quote, GET /v1/portfolio, GET /v1/cube,
// GET /v1/healthz, GET /v1/statz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/risk"
)

func main() {
	var (
		addr = flag.String("addr", ":8087", "listen address")

		// Study sizing: the book the server quotes against.
		seed      = flag.Uint64("seed", 42, "master seed")
		events    = flag.Int("events", 10_000, "event catalogue size")
		contracts = flag.Int("contracts", 16, "contracts in the book")
		locations = flag.Int("locations", 250, "locations per contract")
		trials    = flag.Int("trials", 100_000, "portfolio simulation trials (stage 2/3 via /v1/portfolio)")

		// Serving tier.
		workers   = flag.Int("workers", 0, "quote worker pool size (0 = all cores)")
		queue     = flag.Int("queue", 0, "admission queue depth (0 = 2x workers)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request budget (queue wait + simulation)")
		defTrials = flag.Int("quote-trials", 100_000, "default trials per quote when the request omits it")
		maxTrials = flag.Int("max-quote-trials", 2_000_000, "cap on requested trials per quote")
		warm      = flag.Bool("warm", true, "pre-run stage 1 and build all quote layouts before listening")
		drainWait = flag.Duration("drain-timeout", time.Minute, "grace period for in-flight quotes on shutdown")
		cubeDims  = flag.String("cube-dims", "", "comma-separated warehouse cube dimensions (e.g. region,lob); empty disables /v1/cube")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	study := risk.NewStudy(risk.Config{
		Seed:                 *seed,
		Events:               *events,
		Contracts:            *contracts,
		LocationsPerContract: *locations,
		Trials:               *trials,
		// Each quote simulates single-threaded; the worker pool carries
		// the parallelism across concurrent requests.
		Workers:  1,
		CubeDims: splitDims(*cubeDims),
	})
	srv := serve.New(study, serve.Config{
		Workers:       *workers,
		QueueDepth:    *queue,
		Timeout:       *timeout,
		DefaultTrials: *defTrials,
		MaxTrials:     *maxTrials,
	})

	if *warm {
		log.Printf("warming: stage 1 + %d quote layouts (events=%d locations=%d)",
			study.NumContracts(), *events, *locations)
		t0 := time.Now()
		if err := srv.Warm(ctx); err != nil {
			log.Fatalf("warm-up: %v", err)
		}
		log.Printf("warm in %v", time.Since(t0).Round(time.Millisecond))
	}

	pool := *workers
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (pool=%d, timeout=%v)", *addr, pool, *timeout)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: refuse new quotes, let the HTTP layer finish
	// active handlers (each holds its job to completion), then retire
	// the idle worker pool.
	log.Printf("signal received; draining (up to %v)", *drainWait)
	srv.BeginDrain()
	sdCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(sdCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(sdCtx); err != nil {
		log.Printf("pool drain: %v", err)
		os.Exit(1)
	}
	fmt.Println("drained cleanly")
}

// splitDims parses a comma-separated dimension list, dropping empty
// segments so "-cube-dims region," means {region}.
func splitDims(s string) []string {
	var dims []string
	for _, d := range strings.Split(s, ",") {
		if d = strings.TrimSpace(d); d != "" {
			dims = append(dims, d)
		}
	}
	return dims
}
